# Empty dependencies file for social_triangle_census.
# This may be replaced when dependencies are built.
