file(REMOVE_RECURSE
  "CMakeFiles/social_triangle_census.dir/social_triangle_census.cpp.o"
  "CMakeFiles/social_triangle_census.dir/social_triangle_census.cpp.o.d"
  "social_triangle_census"
  "social_triangle_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_triangle_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
