# Empty compiler generated dependencies file for bipartite_cycle_monitor.
# This may be replaced when dependencies are built.
