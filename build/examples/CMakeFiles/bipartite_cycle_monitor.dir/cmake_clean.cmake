file(REMOVE_RECURSE
  "CMakeFiles/bipartite_cycle_monitor.dir/bipartite_cycle_monitor.cpp.o"
  "CMakeFiles/bipartite_cycle_monitor.dir/bipartite_cycle_monitor.cpp.o.d"
  "bipartite_cycle_monitor"
  "bipartite_cycle_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_cycle_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
