file(REMOVE_RECURSE
  "CMakeFiles/dynamic_cycle_tracker.dir/dynamic_cycle_tracker.cpp.o"
  "CMakeFiles/dynamic_cycle_tracker.dir/dynamic_cycle_tracker.cpp.o.d"
  "dynamic_cycle_tracker"
  "dynamic_cycle_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_cycle_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
