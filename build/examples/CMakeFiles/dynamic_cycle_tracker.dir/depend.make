# Empty dependencies file for dynamic_cycle_tracker.
# This may be replaced when dependencies are built.
