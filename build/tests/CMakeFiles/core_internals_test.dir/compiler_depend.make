# Empty compiler generated dependencies file for core_internals_test.
# This may be replaced when dependencies are built.
