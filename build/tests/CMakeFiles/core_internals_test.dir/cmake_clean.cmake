file(REMOVE_RECURSE
  "CMakeFiles/core_internals_test.dir/core_internals_test.cc.o"
  "CMakeFiles/core_internals_test.dir/core_internals_test.cc.o.d"
  "core_internals_test"
  "core_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
