file(REMOVE_RECURSE
  "CMakeFiles/diamond_counter_test.dir/diamond_counter_test.cc.o"
  "CMakeFiles/diamond_counter_test.dir/diamond_counter_test.cc.o.d"
  "diamond_counter_test"
  "diamond_counter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diamond_counter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
