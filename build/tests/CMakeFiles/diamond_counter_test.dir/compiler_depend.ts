# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for diamond_counter_test.
