# Empty compiler generated dependencies file for random_order_triangles_test.
# This may be replaced when dependencies are built.
