file(REMOVE_RECURSE
  "CMakeFiles/random_order_triangles_test.dir/random_order_triangles_test.cc.o"
  "CMakeFiles/random_order_triangles_test.dir/random_order_triangles_test.cc.o.d"
  "random_order_triangles_test"
  "random_order_triangles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_order_triangles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
