# Empty compiler generated dependencies file for arb_four_cycle_test.
# This may be replaced when dependencies are built.
