file(REMOVE_RECURSE
  "CMakeFiles/arb_four_cycle_test.dir/arb_four_cycle_test.cc.o"
  "CMakeFiles/arb_four_cycle_test.dir/arb_four_cycle_test.cc.o.d"
  "arb_four_cycle_test"
  "arb_four_cycle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arb_four_cycle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
