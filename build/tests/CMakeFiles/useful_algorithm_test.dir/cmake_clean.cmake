file(REMOVE_RECURSE
  "CMakeFiles/useful_algorithm_test.dir/useful_algorithm_test.cc.o"
  "CMakeFiles/useful_algorithm_test.dir/useful_algorithm_test.cc.o.d"
  "useful_algorithm_test"
  "useful_algorithm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/useful_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
