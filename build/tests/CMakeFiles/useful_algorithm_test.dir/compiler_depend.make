# Empty compiler generated dependencies file for useful_algorithm_test.
# This may be replaced when dependencies are built.
