file(REMOVE_RECURSE
  "CMakeFiles/amplify_test.dir/amplify_test.cc.o"
  "CMakeFiles/amplify_test.dir/amplify_test.cc.o.d"
  "amplify_test"
  "amplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
