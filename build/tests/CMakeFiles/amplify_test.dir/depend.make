# Empty dependencies file for amplify_test.
# This may be replaced when dependencies are built.
