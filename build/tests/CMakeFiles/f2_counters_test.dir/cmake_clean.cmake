file(REMOVE_RECURSE
  "CMakeFiles/f2_counters_test.dir/f2_counters_test.cc.o"
  "CMakeFiles/f2_counters_test.dir/f2_counters_test.cc.o.d"
  "f2_counters_test"
  "f2_counters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2_counters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
