# Empty compiler generated dependencies file for exp_e11_lb_construction_c4.
# This may be replaced when dependencies are built.
