file(REMOVE_RECURSE
  "CMakeFiles/exp_e11_lb_construction_c4.dir/exp_e11_lb_construction_c4.cc.o"
  "CMakeFiles/exp_e11_lb_construction_c4.dir/exp_e11_lb_construction_c4.cc.o.d"
  "exp_e11_lb_construction_c4"
  "exp_e11_lb_construction_c4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e11_lb_construction_c4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
