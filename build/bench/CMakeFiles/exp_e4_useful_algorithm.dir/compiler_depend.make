# Empty compiler generated dependencies file for exp_e4_useful_algorithm.
# This may be replaced when dependencies are built.
