file(REMOVE_RECURSE
  "CMakeFiles/exp_e4_useful_algorithm.dir/exp_e4_useful_algorithm.cc.o"
  "CMakeFiles/exp_e4_useful_algorithm.dir/exp_e4_useful_algorithm.cc.o.d"
  "exp_e4_useful_algorithm"
  "exp_e4_useful_algorithm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e4_useful_algorithm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
