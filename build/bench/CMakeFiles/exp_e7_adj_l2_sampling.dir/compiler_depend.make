# Empty compiler generated dependencies file for exp_e7_adj_l2_sampling.
# This may be replaced when dependencies are built.
