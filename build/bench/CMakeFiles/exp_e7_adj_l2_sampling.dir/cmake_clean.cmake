file(REMOVE_RECURSE
  "CMakeFiles/exp_e7_adj_l2_sampling.dir/exp_e7_adj_l2_sampling.cc.o"
  "CMakeFiles/exp_e7_adj_l2_sampling.dir/exp_e7_adj_l2_sampling.cc.o.d"
  "exp_e7_adj_l2_sampling"
  "exp_e7_adj_l2_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e7_adj_l2_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
