file(REMOVE_RECURSE
  "CMakeFiles/exp_e2_space_scaling_triangles.dir/exp_e2_space_scaling_triangles.cc.o"
  "CMakeFiles/exp_e2_space_scaling_triangles.dir/exp_e2_space_scaling_triangles.cc.o.d"
  "exp_e2_space_scaling_triangles"
  "exp_e2_space_scaling_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e2_space_scaling_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
