# Empty compiler generated dependencies file for exp_e2_space_scaling_triangles.
# This may be replaced when dependencies are built.
