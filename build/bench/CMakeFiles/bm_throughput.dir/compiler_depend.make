# Empty compiler generated dependencies file for bm_throughput.
# This may be replaced when dependencies are built.
