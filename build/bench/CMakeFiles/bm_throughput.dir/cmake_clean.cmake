file(REMOVE_RECURSE
  "CMakeFiles/bm_throughput.dir/bm_throughput.cc.o"
  "CMakeFiles/bm_throughput.dir/bm_throughput.cc.o.d"
  "bm_throughput"
  "bm_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
