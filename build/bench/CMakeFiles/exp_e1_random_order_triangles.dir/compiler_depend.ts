# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_e1_random_order_triangles.
