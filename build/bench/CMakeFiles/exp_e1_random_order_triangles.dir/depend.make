# Empty dependencies file for exp_e1_random_order_triangles.
# This may be replaced when dependencies are built.
