file(REMOVE_RECURSE
  "CMakeFiles/exp_e1_random_order_triangles.dir/exp_e1_random_order_triangles.cc.o"
  "CMakeFiles/exp_e1_random_order_triangles.dir/exp_e1_random_order_triangles.cc.o.d"
  "exp_e1_random_order_triangles"
  "exp_e1_random_order_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e1_random_order_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
