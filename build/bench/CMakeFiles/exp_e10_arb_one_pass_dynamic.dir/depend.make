# Empty dependencies file for exp_e10_arb_one_pass_dynamic.
# This may be replaced when dependencies are built.
