# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_e10_arb_one_pass_dynamic.
