file(REMOVE_RECURSE
  "CMakeFiles/exp_e10_arb_one_pass_dynamic.dir/exp_e10_arb_one_pass_dynamic.cc.o"
  "CMakeFiles/exp_e10_arb_one_pass_dynamic.dir/exp_e10_arb_one_pass_dynamic.cc.o.d"
  "exp_e10_arb_one_pass_dynamic"
  "exp_e10_arb_one_pass_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e10_arb_one_pass_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
