file(REMOVE_RECURSE
  "CMakeFiles/exp_e3_lb_construction_triangles.dir/exp_e3_lb_construction_triangles.cc.o"
  "CMakeFiles/exp_e3_lb_construction_triangles.dir/exp_e3_lb_construction_triangles.cc.o.d"
  "exp_e3_lb_construction_triangles"
  "exp_e3_lb_construction_triangles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e3_lb_construction_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
