# Empty dependencies file for exp_e3_lb_construction_triangles.
# This may be replaced when dependencies are built.
