file(REMOVE_RECURSE
  "CMakeFiles/exp_e12_structural_lemma.dir/exp_e12_structural_lemma.cc.o"
  "CMakeFiles/exp_e12_structural_lemma.dir/exp_e12_structural_lemma.cc.o.d"
  "exp_e12_structural_lemma"
  "exp_e12_structural_lemma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e12_structural_lemma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
