# Empty compiler generated dependencies file for exp_e12_structural_lemma.
# This may be replaced when dependencies are built.
