file(REMOVE_RECURSE
  "CMakeFiles/exp_e8_arb_three_pass.dir/exp_e8_arb_three_pass.cc.o"
  "CMakeFiles/exp_e8_arb_three_pass.dir/exp_e8_arb_three_pass.cc.o.d"
  "exp_e8_arb_three_pass"
  "exp_e8_arb_three_pass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e8_arb_three_pass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
