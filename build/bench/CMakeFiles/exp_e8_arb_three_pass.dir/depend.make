# Empty dependencies file for exp_e8_arb_three_pass.
# This may be replaced when dependencies are built.
