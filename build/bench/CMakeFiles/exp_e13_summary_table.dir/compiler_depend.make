# Empty compiler generated dependencies file for exp_e13_summary_table.
# This may be replaced when dependencies are built.
