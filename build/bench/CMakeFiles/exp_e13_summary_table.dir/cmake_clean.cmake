file(REMOVE_RECURSE
  "CMakeFiles/exp_e13_summary_table.dir/exp_e13_summary_table.cc.o"
  "CMakeFiles/exp_e13_summary_table.dir/exp_e13_summary_table.cc.o.d"
  "exp_e13_summary_table"
  "exp_e13_summary_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e13_summary_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
