# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_e13_summary_table.
