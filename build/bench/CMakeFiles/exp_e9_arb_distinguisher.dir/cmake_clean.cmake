file(REMOVE_RECURSE
  "CMakeFiles/exp_e9_arb_distinguisher.dir/exp_e9_arb_distinguisher.cc.o"
  "CMakeFiles/exp_e9_arb_distinguisher.dir/exp_e9_arb_distinguisher.cc.o.d"
  "exp_e9_arb_distinguisher"
  "exp_e9_arb_distinguisher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e9_arb_distinguisher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
