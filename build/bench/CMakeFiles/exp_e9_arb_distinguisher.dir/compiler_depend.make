# Empty compiler generated dependencies file for exp_e9_arb_distinguisher.
# This may be replaced when dependencies are built.
