file(REMOVE_RECURSE
  "CMakeFiles/exp_e6_adj_f2.dir/exp_e6_adj_f2.cc.o"
  "CMakeFiles/exp_e6_adj_f2.dir/exp_e6_adj_f2.cc.o.d"
  "exp_e6_adj_f2"
  "exp_e6_adj_f2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e6_adj_f2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
