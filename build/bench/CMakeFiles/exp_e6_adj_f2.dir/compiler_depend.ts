# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp_e6_adj_f2.
