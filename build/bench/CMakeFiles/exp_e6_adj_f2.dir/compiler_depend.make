# Empty compiler generated dependencies file for exp_e6_adj_f2.
# This may be replaced when dependencies are built.
