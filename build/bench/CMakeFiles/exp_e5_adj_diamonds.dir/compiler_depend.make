# Empty compiler generated dependencies file for exp_e5_adj_diamonds.
# This may be replaced when dependencies are built.
