file(REMOVE_RECURSE
  "CMakeFiles/exp_e5_adj_diamonds.dir/exp_e5_adj_diamonds.cc.o"
  "CMakeFiles/exp_e5_adj_diamonds.dir/exp_e5_adj_diamonds.cc.o.d"
  "exp_e5_adj_diamonds"
  "exp_e5_adj_diamonds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e5_adj_diamonds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
