file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_cli.dir/cyclestream_cli.cc.o"
  "CMakeFiles/cyclestream_cli.dir/cyclestream_cli.cc.o.d"
  "cyclestream_cli"
  "cyclestream_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
