# Empty dependencies file for cyclestream_cli.
# This may be replaced when dependencies are built.
