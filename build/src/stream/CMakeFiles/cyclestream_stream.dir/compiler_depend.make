# Empty compiler generated dependencies file for cyclestream_stream.
# This may be replaced when dependencies are built.
