file(REMOVE_RECURSE
  "libcyclestream_stream.a"
)
