file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_stream.dir/driver.cc.o"
  "CMakeFiles/cyclestream_stream.dir/driver.cc.o.d"
  "CMakeFiles/cyclestream_stream.dir/order.cc.o"
  "CMakeFiles/cyclestream_stream.dir/order.cc.o.d"
  "libcyclestream_stream.a"
  "libcyclestream_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
