file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_sketch.dir/ams_f2.cc.o"
  "CMakeFiles/cyclestream_sketch.dir/ams_f2.cc.o.d"
  "CMakeFiles/cyclestream_sketch.dir/count_sketch.cc.o"
  "CMakeFiles/cyclestream_sketch.dir/count_sketch.cc.o.d"
  "CMakeFiles/cyclestream_sketch.dir/l2_sampler.cc.o"
  "CMakeFiles/cyclestream_sketch.dir/l2_sampler.cc.o.d"
  "libcyclestream_sketch.a"
  "libcyclestream_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
