file(REMOVE_RECURSE
  "libcyclestream_sketch.a"
)
