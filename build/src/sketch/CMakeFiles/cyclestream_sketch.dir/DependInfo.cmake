
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/ams_f2.cc" "src/sketch/CMakeFiles/cyclestream_sketch.dir/ams_f2.cc.o" "gcc" "src/sketch/CMakeFiles/cyclestream_sketch.dir/ams_f2.cc.o.d"
  "/root/repo/src/sketch/count_sketch.cc" "src/sketch/CMakeFiles/cyclestream_sketch.dir/count_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/cyclestream_sketch.dir/count_sketch.cc.o.d"
  "/root/repo/src/sketch/l2_sampler.cc" "src/sketch/CMakeFiles/cyclestream_sketch.dir/l2_sampler.cc.o" "gcc" "src/sketch/CMakeFiles/cyclestream_sketch.dir/l2_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hash/CMakeFiles/cyclestream_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclestream_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
