# Empty dependencies file for cyclestream_sketch.
# This may be replaced when dependencies are built.
