file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_graph.dir/datasets.cc.o"
  "CMakeFiles/cyclestream_graph.dir/datasets.cc.o.d"
  "CMakeFiles/cyclestream_graph.dir/edge_list.cc.o"
  "CMakeFiles/cyclestream_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/cyclestream_graph.dir/exact.cc.o"
  "CMakeFiles/cyclestream_graph.dir/exact.cc.o.d"
  "CMakeFiles/cyclestream_graph.dir/graph.cc.o"
  "CMakeFiles/cyclestream_graph.dir/graph.cc.o.d"
  "CMakeFiles/cyclestream_graph.dir/io.cc.o"
  "CMakeFiles/cyclestream_graph.dir/io.cc.o.d"
  "libcyclestream_graph.a"
  "libcyclestream_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
