# Empty dependencies file for cyclestream_graph.
# This may be replaced when dependencies are built.
