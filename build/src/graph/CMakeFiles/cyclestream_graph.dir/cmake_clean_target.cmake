file(REMOVE_RECURSE
  "libcyclestream_graph.a"
)
