file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_core.dir/adj_f2_counter.cc.o"
  "CMakeFiles/cyclestream_core.dir/adj_f2_counter.cc.o.d"
  "CMakeFiles/cyclestream_core.dir/adj_l2_counter.cc.o"
  "CMakeFiles/cyclestream_core.dir/adj_l2_counter.cc.o.d"
  "CMakeFiles/cyclestream_core.dir/arb_distinguisher.cc.o"
  "CMakeFiles/cyclestream_core.dir/arb_distinguisher.cc.o.d"
  "CMakeFiles/cyclestream_core.dir/arb_f2_counter.cc.o"
  "CMakeFiles/cyclestream_core.dir/arb_f2_counter.cc.o.d"
  "CMakeFiles/cyclestream_core.dir/arb_three_pass.cc.o"
  "CMakeFiles/cyclestream_core.dir/arb_three_pass.cc.o.d"
  "CMakeFiles/cyclestream_core.dir/diamond_counter.cc.o"
  "CMakeFiles/cyclestream_core.dir/diamond_counter.cc.o.d"
  "CMakeFiles/cyclestream_core.dir/random_order_triangles.cc.o"
  "CMakeFiles/cyclestream_core.dir/random_order_triangles.cc.o.d"
  "CMakeFiles/cyclestream_core.dir/useful_algorithm.cc.o"
  "CMakeFiles/cyclestream_core.dir/useful_algorithm.cc.o.d"
  "libcyclestream_core.a"
  "libcyclestream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
