
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adj_f2_counter.cc" "src/core/CMakeFiles/cyclestream_core.dir/adj_f2_counter.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/adj_f2_counter.cc.o.d"
  "/root/repo/src/core/adj_l2_counter.cc" "src/core/CMakeFiles/cyclestream_core.dir/adj_l2_counter.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/adj_l2_counter.cc.o.d"
  "/root/repo/src/core/arb_distinguisher.cc" "src/core/CMakeFiles/cyclestream_core.dir/arb_distinguisher.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/arb_distinguisher.cc.o.d"
  "/root/repo/src/core/arb_f2_counter.cc" "src/core/CMakeFiles/cyclestream_core.dir/arb_f2_counter.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/arb_f2_counter.cc.o.d"
  "/root/repo/src/core/arb_three_pass.cc" "src/core/CMakeFiles/cyclestream_core.dir/arb_three_pass.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/arb_three_pass.cc.o.d"
  "/root/repo/src/core/diamond_counter.cc" "src/core/CMakeFiles/cyclestream_core.dir/diamond_counter.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/diamond_counter.cc.o.d"
  "/root/repo/src/core/random_order_triangles.cc" "src/core/CMakeFiles/cyclestream_core.dir/random_order_triangles.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/random_order_triangles.cc.o.d"
  "/root/repo/src/core/useful_algorithm.cc" "src/core/CMakeFiles/cyclestream_core.dir/useful_algorithm.cc.o" "gcc" "src/core/CMakeFiles/cyclestream_core.dir/useful_algorithm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stream/CMakeFiles/cyclestream_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/cyclestream_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cyclestream_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclestream_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cyclestream_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
