# Empty compiler generated dependencies file for cyclestream_core.
# This may be replaced when dependencies are built.
