file(REMOVE_RECURSE
  "libcyclestream_core.a"
)
