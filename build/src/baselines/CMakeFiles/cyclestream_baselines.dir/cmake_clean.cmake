file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_baselines.dir/bera_chakrabarti.cc.o"
  "CMakeFiles/cyclestream_baselines.dir/bera_chakrabarti.cc.o.d"
  "CMakeFiles/cyclestream_baselines.dir/cormode_jowhari.cc.o"
  "CMakeFiles/cyclestream_baselines.dir/cormode_jowhari.cc.o.d"
  "CMakeFiles/cyclestream_baselines.dir/naive_sampling.cc.o"
  "CMakeFiles/cyclestream_baselines.dir/naive_sampling.cc.o.d"
  "CMakeFiles/cyclestream_baselines.dir/triest.cc.o"
  "CMakeFiles/cyclestream_baselines.dir/triest.cc.o.d"
  "CMakeFiles/cyclestream_baselines.dir/wedge_sampler.cc.o"
  "CMakeFiles/cyclestream_baselines.dir/wedge_sampler.cc.o.d"
  "libcyclestream_baselines.a"
  "libcyclestream_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
