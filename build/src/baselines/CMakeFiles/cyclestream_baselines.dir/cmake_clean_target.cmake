file(REMOVE_RECURSE
  "libcyclestream_baselines.a"
)
