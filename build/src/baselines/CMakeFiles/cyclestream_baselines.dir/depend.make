# Empty dependencies file for cyclestream_baselines.
# This may be replaced when dependencies are built.
