file(REMOVE_RECURSE
  "libcyclestream_gen.a"
)
