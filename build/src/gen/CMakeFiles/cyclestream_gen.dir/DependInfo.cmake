
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/generators.cc" "src/gen/CMakeFiles/cyclestream_gen.dir/generators.cc.o" "gcc" "src/gen/CMakeFiles/cyclestream_gen.dir/generators.cc.o.d"
  "/root/repo/src/gen/lower_bound.cc" "src/gen/CMakeFiles/cyclestream_gen.dir/lower_bound.cc.o" "gcc" "src/gen/CMakeFiles/cyclestream_gen.dir/lower_bound.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/cyclestream_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/cyclestream_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cyclestream_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
