file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_gen.dir/generators.cc.o"
  "CMakeFiles/cyclestream_gen.dir/generators.cc.o.d"
  "CMakeFiles/cyclestream_gen.dir/lower_bound.cc.o"
  "CMakeFiles/cyclestream_gen.dir/lower_bound.cc.o.d"
  "libcyclestream_gen.a"
  "libcyclestream_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
