# Empty dependencies file for cyclestream_gen.
# This may be replaced when dependencies are built.
