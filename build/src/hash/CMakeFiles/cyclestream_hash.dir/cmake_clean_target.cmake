file(REMOVE_RECURSE
  "libcyclestream_hash.a"
)
