# Empty compiler generated dependencies file for cyclestream_hash.
# This may be replaced when dependencies are built.
