file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_hash.dir/kwise.cc.o"
  "CMakeFiles/cyclestream_hash.dir/kwise.cc.o.d"
  "CMakeFiles/cyclestream_hash.dir/rng.cc.o"
  "CMakeFiles/cyclestream_hash.dir/rng.cc.o.d"
  "CMakeFiles/cyclestream_hash.dir/tabulation.cc.o"
  "CMakeFiles/cyclestream_hash.dir/tabulation.cc.o.d"
  "libcyclestream_hash.a"
  "libcyclestream_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
