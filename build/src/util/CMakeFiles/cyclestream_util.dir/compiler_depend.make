# Empty compiler generated dependencies file for cyclestream_util.
# This may be replaced when dependencies are built.
