file(REMOVE_RECURSE
  "libcyclestream_util.a"
)
