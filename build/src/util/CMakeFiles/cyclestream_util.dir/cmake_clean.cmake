file(REMOVE_RECURSE
  "CMakeFiles/cyclestream_util.dir/flags.cc.o"
  "CMakeFiles/cyclestream_util.dir/flags.cc.o.d"
  "CMakeFiles/cyclestream_util.dir/logging.cc.o"
  "CMakeFiles/cyclestream_util.dir/logging.cc.o.d"
  "CMakeFiles/cyclestream_util.dir/stats.cc.o"
  "CMakeFiles/cyclestream_util.dir/stats.cc.o.d"
  "CMakeFiles/cyclestream_util.dir/table.cc.o"
  "CMakeFiles/cyclestream_util.dir/table.cc.o.d"
  "libcyclestream_util.a"
  "libcyclestream_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclestream_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
