#include <gtest/gtest.h>

#include <cmath>

#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/datasets.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "tests/test_util.h"
#include "util/stats.h"

namespace cyclestream {
namespace {

using ::cyclestream::testing::Clique;

RandomOrderTriangleCounter::Params MakeParams(const EdgeList& graph,
                                              double t_guess, double epsilon,
                                              std::uint64_t seed,
                                              double c = 1.0) {
  RandomOrderTriangleCounter::Params params;
  params.base.epsilon = epsilon;
  params.base.c = c;
  params.base.t_guess = std::max(1.0, t_guess);
  params.base.seed = seed;
  params.num_vertices = graph.num_vertices();
  return params;
}

double MedianEstimate(const EdgeList& graph, double t_guess, double epsilon,
                      int trials, double c = 1.0, double level_rate = -1.0,
                      double prefix_rate = -1.0) {
  std::vector<double> estimates;
  for (int t = 0; t < trials; ++t) {
    Rng rng(9000 + t);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    auto params = MakeParams(graph, t_guess, epsilon, 40 + t, c);
    params.level_rate = level_rate;
    params.prefix_rate = prefix_rate;
    estimates.push_back(CountTrianglesRandomOrder(stream, params).value);
  }
  return Summarize(estimates).median;
}

TEST(RandomOrderTrianglesTest, ExactRegimeOnSmallGraphs) {
  // Oversampled regime: a large c saturates every sampling rate at 1 (the
  // whole stream is stored) and a large T-guess puts the heavy threshold
  // p·√T above every t_e, so the light term alone recovers the exact count.
  for (const EdgeList& graph :
       {Clique(5), KarateClub(), testing::CycleGraph(8)}) {
    const Graph g(graph);
    const double exact = static_cast<double>(CountTriangles(g));
    Rng rng(1);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    const Estimate est = CountTrianglesRandomOrder(
        stream, MakeParams(graph, /*t_guess=*/1e6, 0.1, 7, /*c=*/1e4));
    EXPECT_NEAR(est.value, exact, 1e-6);
  }
}

TEST(RandomOrderTrianglesTest, TriangleFreeGraphGivesZero) {
  Rng rng(2);
  const EdgeList graph = CompleteBipartite(20, 20);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  const Estimate est =
      CountTrianglesRandomOrder(stream, MakeParams(graph, 16.0, 0.2, 3));
  EXPECT_EQ(est.value, 0.0);
}

TEST(RandomOrderTrianglesTest, MedianAccurateOnPlantedTriangles) {
  Rng gen(3);
  EdgeList graph = ErdosRenyiGnm(3000, 9000, gen);
  graph = PlantTriangles(std::move(graph), 400, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  const double median = MedianEstimate(graph, exact, 0.3, 15, /*c=*/2.0);
  EXPECT_NEAR(median, exact, 0.25 * exact);
}

TEST(RandomOrderTrianglesTest, MedianAccurateOnHeavyEdgeGraph) {
  // A "book": one edge in 500 triangles — the workload where heavy-edge
  // identification matters.
  Rng gen(4);
  EdgeList graph = ErdosRenyiGnm(2000, 6000, gen);
  graph = PlantBook(std::move(graph), 500, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  const double median = MedianEstimate(graph, exact, 0.3, 15, /*c=*/2.0);
  EXPECT_NEAR(median, exact, 0.3 * exact);
}

TEST(RandomOrderTrianglesTest, SpaceShrinksWithT) {
  // Same m, growing T: peak space must drop (the m/√T law, E2's shape).
  Rng gen(5);
  const EdgeList base = ErdosRenyiGnm(4000, 12000, gen);
  std::vector<std::size_t> spaces;
  for (const std::size_t t : {16u, 256u, 4096u}) {
    Rng g2(6);
    EdgeList graph = base;
    graph = PlantTriangles(std::move(graph), t, g2);
    Rng rng(7);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    auto params = MakeParams(graph, static_cast<double>(t), 0.3, 8);
    params.level_rate = 4.0;  // Keep vertex rates off the clamp.
    const Estimate est = CountTrianglesRandomOrder(stream, params);
    spaces.push_back(est.space_words);
  }
  EXPECT_GT(spaces[0], spaces[1]);
  EXPECT_GT(spaces[1], spaces[2]);
}

TEST(RandomOrderTrianglesTest, OracleFlagsThePlantedHeavyEdge) {
  Rng gen(8);
  EdgeList graph = ErdosRenyiGnm(1500, 4000, gen);
  const VertexId spine_u = graph.num_vertices();
  const VertexId spine_v = spine_u + 1;
  graph = PlantBook(std::move(graph), 400, gen);
  const double t_guess = static_cast<double>(CountTriangles(Graph(graph)));

  Rng rng(9);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  RandomOrderTriangleCounter counter(MakeParams(graph, t_guess, 0.25, 10, 2.0));
  RunEdgeStream(counter, stream);
  // The spine edge carries 400 triangles ≫ √T ≈ 21: must classify heavy.
  EXPECT_TRUE(counter.IsHeavy(Edge(spine_u, spine_v)));
  // A random page edge carries exactly 1 triangle: light.
  EXPECT_FALSE(counter.IsHeavy(Edge(spine_u, spine_v + 1)));
}

TEST(RandomOrderTrianglesTest, DiagnosticsAreConsistent) {
  Rng gen(11);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(500, 1000, gen), 50, gen);
  Rng rng(12);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  RandomOrderTriangleCounter counter(MakeParams(graph, 50.0, 0.3, 13));
  RunEdgeStream(counter, stream);
  const auto& diag = counter.diagnostics();
  EXPECT_DOUBLE_EQ(counter.Result().value,
                   diag.light_term + diag.heavy_term);
  EXPECT_GE(diag.candidate_heavy_edges, diag.oracle_heavy_in_p);
}

TEST(RandomOrderTrianglesTest, RobustToTGuessMisestimates) {
  Rng gen(14);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(2000, 5000, gen), 300, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  // 4x over- and under-estimates of T should still land in the ballpark.
  for (const double guess : {exact / 4.0, exact * 4.0}) {
    const double median = MedianEstimate(graph, guess, 0.3, 15, /*c=*/2.0);
    EXPECT_NEAR(median, exact, 0.4 * exact) << "guess=" << guess;
  }
}

}  // namespace
}  // namespace cyclestream
