// Tests for the multi-process sharded engine (src/engine/shard,
// src/engine/coordinator): the frame protocol's strict decode, the
// contiguous partitioner, the worker loop's checkpoint/kill/resume
// behavior, and the coordinator's flagship contract — every estimate,
// outcome, and stats field bit-identical to the single-process broker at
// any worker count, including after killing a worker at every epoch
// boundary and after a W-change restore from an epoch manifest.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "engine/broker.h"
#include "engine/coordinator.h"
#include "engine/query.h"
#include "engine/shard.h"
#include "engine/spec.h"
#include "gen/generators.h"
#include "gtest/gtest.h"
#include "stream/checkpoint.h"
#include "stream/order.h"
#include "util/serialize.h"

namespace cyclestream::engine {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "shard_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A 16-query arb-f2 sweep with mixed seeds, epsilons, and budgets (the
// budgets drive the admission edge cases under a capped controller).
std::vector<QuerySpec> MixedShardSpecs(VertexId num_vertices) {
  const double epsilons[] = {0.3, 0.4, 0.5, 0.6};
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 16; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kArbF2;
    spec.name = "arb-f2-" + std::to_string(i);
    spec.base.epsilon = epsilons[i % 4];
    spec.base.c = 1.0;
    spec.base.t_guess = 150.0;
    spec.base.seed = 300 + static_cast<std::uint64_t>(i);
    spec.num_vertices = num_vertices;
    spec.space_budget_words = 400 + 100 * static_cast<std::size_t>(i % 3);
    specs.push_back(std::move(spec));
  }
  return specs;
}

EdgeStream ShardStream(VertexId* num_vertices, std::size_t edges = 600) {
  Rng gen(31);
  EdgeList graph = PlantFourCycles(
      ErdosRenyiGnm(200, edges > 60 ? edges - 60 : edges, gen), 15, gen);
  *num_vertices = graph.num_vertices();
  Rng order(32);
  return MakeRandomOrderStream(graph, order);
}

// The oracle: the same specs through the single-process broker.
std::vector<QueryOutcome> BrokerOracle(const std::vector<QuerySpec>& specs,
                                       const EdgeStream& stream,
                                       const BudgetPolicy& budget,
                                       EngineStats* stats) {
  BrokerOptions options;
  options.budget = budget;
  StreamBroker broker(options);
  for (const QuerySpec& spec : specs) broker.AddQuery(spec);
  std::vector<QueryOutcome> outcomes = broker.RunEdgeQueries(stream);
  *stats = broker.stats();
  return outcomes;
}

void ExpectOutcomesIdentical(const std::vector<QueryOutcome>& want,
                             const std::vector<QueryOutcome>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE(want[i].spec.name);
    EXPECT_EQ(want[i].admission, got[i].admission);
    EXPECT_EQ(want[i].wave, got[i].wave);
    // Bit-identical, not approximately equal: the merge path must perform
    // exactly the additions the unsharded pass performs.
    EXPECT_EQ(want[i].estimate.value, got[i].estimate.value);
    EXPECT_EQ(want[i].estimate.space_words, got[i].estimate.space_words);
    EXPECT_EQ(want[i].passes, got[i].passes);
    EXPECT_EQ(want[i].items_delivered, got[i].items_delivered);
    EXPECT_EQ(want[i].space_peak_components, got[i].space_peak_components);
  }
}

void ExpectStatsIdentical(const EngineStats& want, const EngineStats& got) {
  EXPECT_EQ(want.source_items_read, got.source_items_read);
  EXPECT_EQ(want.items_delivered, got.items_delivered);
  EXPECT_EQ(want.physical_passes, got.physical_passes);
  EXPECT_EQ(want.waves, got.waves);
  EXPECT_EQ(want.queries_admitted, got.queries_admitted);
  EXPECT_EQ(want.queries_queued, got.queries_queued);
  EXPECT_EQ(want.queries_rejected, got.queries_rejected);
  EXPECT_EQ(want.budget_peak_words, got.budget_peak_words);
}

// ---------------------------------------------------------------------------
// Frame protocol
// ---------------------------------------------------------------------------

TEST(FrameTest, RoundTripsMultipleFrames) {
  std::string buf;
  AppendFrame(&buf, FrameType::kHeader, "hdr");
  AppendFrame(&buf, FrameType::kQueryState, std::string("a\0b", 3));
  AppendFrame(&buf, FrameType::kFooter, "");

  std::size_t pos = 0;
  FrameType type;
  std::string_view payload;
  std::string error;
  ASSERT_TRUE(ReadFrame(buf, &pos, &type, &payload, &error)) << error;
  EXPECT_EQ(type, FrameType::kHeader);
  EXPECT_EQ(payload, "hdr");
  ASSERT_TRUE(ReadFrame(buf, &pos, &type, &payload, &error)) << error;
  EXPECT_EQ(type, FrameType::kQueryState);
  EXPECT_EQ(payload, std::string_view("a\0b", 3));
  ASSERT_TRUE(ReadFrame(buf, &pos, &type, &payload, &error)) << error;
  EXPECT_EQ(type, FrameType::kFooter);
  EXPECT_TRUE(payload.empty());
  EXPECT_EQ(pos, buf.size());
}

TEST(FrameTest, RejectsCorruptionEverywhere) {
  std::string clean;
  AppendFrame(&clean, FrameType::kHeader, "payload-bytes");

  // Flip every byte in turn: magic, type, size, CRC, and payload damage
  // must all be caught.
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bad = clean;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    std::size_t pos = 0;
    FrameType type;
    std::string_view payload;
    std::string error;
    EXPECT_FALSE(ReadFrame(bad, &pos, &type, &payload, &error))
        << "byte " << i << " flipped but the frame still decoded";
    EXPECT_FALSE(error.empty());
  }

  // Truncation at every length.
  for (std::size_t len = 0; len < clean.size(); ++len) {
    std::size_t pos = 0;
    FrameType type;
    std::string_view payload;
    std::string error;
    EXPECT_FALSE(
        ReadFrame(std::string_view(clean).substr(0, len), &pos, &type,
                  &payload, &error))
        << "truncated to " << len << " bytes but still decoded";
  }
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

TEST(PartitionTest, ContiguousExhaustiveAndBalanced) {
  for (int w : {1, 2, 3, 7, 8}) {
    const std::vector<ShardRange> ranges = PartitionStream(100, w);
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(w));
    std::uint64_t expect_begin = 0;
    for (const ShardRange& r : ranges) {
      EXPECT_EQ(r.begin, expect_begin);
      expect_begin = r.end;
      EXPECT_GE(r.size(), 100u / static_cast<unsigned>(w));
      EXPECT_LE(r.size(), 100u / static_cast<unsigned>(w) + 1);
    }
    EXPECT_EQ(expect_begin, 100u);
  }
}

TEST(PartitionTest, MoreWorkersThanEdgesYieldsEmptyTails) {
  const std::vector<ShardRange> ranges = PartitionStream(5, 8);
  ASSERT_EQ(ranges.size(), 8u);
  EXPECT_EQ(TotalRangeEdges(ranges), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ranges[i].size(), 1u);
  for (int i = 5; i < 8; ++i) EXPECT_EQ(ranges[i].size(), 0u);
}

TEST(PartitionTest, AdvanceRangesSkipsConsumedPrefix) {
  const std::vector<ShardRange> ranges = {{0, 10}, {20, 25}, {30, 40}};
  EXPECT_EQ(AdvanceRanges(ranges, 0), ranges);
  EXPECT_EQ(AdvanceRanges(ranges, 10),
            (std::vector<ShardRange>{{20, 25}, {30, 40}}));
  EXPECT_EQ(AdvanceRanges(ranges, 12),
            (std::vector<ShardRange>{{22, 25}, {30, 40}}));
  // edges_done counts consumed edges, not stream positions: the three
  // ranges hold 10 + 5 + 10 = 25 edges in total.
  EXPECT_EQ(AdvanceRanges(ranges, 15), (std::vector<ShardRange>{{30, 40}}));
  EXPECT_EQ(AdvanceRanges(ranges, 20), (std::vector<ShardRange>{{35, 40}}));
  EXPECT_TRUE(AdvanceRanges(ranges, 25).empty());
}

TEST(PartitionTest, RangeListFormatRoundTrips) {
  const std::vector<ShardRange> ranges = {{0, 10}, {20, 25}, {30, 30}};
  std::vector<ShardRange> parsed;
  ASSERT_TRUE(ParseShardRanges(FormatShardRanges(ranges), &parsed));
  EXPECT_EQ(parsed, ranges);

  for (const char* bad :
       {"", "5", "5:", ":5", "5:4", "1:2,", ",1:2", "1:2,x:y", "1:2 ", "a"}) {
    std::vector<ShardRange> out;
    EXPECT_FALSE(ParseShardRanges(bad, &out)) << "'" << bad << "' parsed";
  }
}

// ---------------------------------------------------------------------------
// Shard state codec
// ---------------------------------------------------------------------------

ShardState SampleState() {
  ShardState state;
  state.header.worker_id = 2;
  state.header.num_workers = 4;
  state.header.stream_fingerprint = 0x1234567890abcdefULL;
  state.header.stream_length = 600;
  state.header.spec_fingerprint = 0xfeedfacecafef00dULL;
  state.header.edges_done = 150;
  state.header.epoch = 3;
  state.header.ranges = {{150, 300}};
  state.query_states.emplace_back("q0", std::string("\x01\x02\x03", 3));
  state.query_states.emplace_back("q1", std::string(200, 'z'));
  return state;
}

TEST(ShardStateTest, EncodeDecodeRoundTrips) {
  const ShardState state = SampleState();
  ShardState decoded;
  std::string error;
  ASSERT_TRUE(DecodeShardState(EncodeShardState(state), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.header, state.header);
  EXPECT_EQ(decoded.query_states, state.query_states);
}

TEST(ShardStateTest, EveryByteFlipIsRejectedWhole) {
  const std::string encoded = EncodeShardState(SampleState());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string bad = encoded;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    ShardState decoded;
    decoded.header.worker_id = 99;  // Sentinel: must stay untouched.
    std::string error;
    EXPECT_FALSE(DecodeShardState(bad, &decoded, &error))
        << "byte " << i << " flipped but the state still decoded";
    EXPECT_EQ(decoded.header.worker_id, 99u);
  }
}

TEST(ShardStateTest, RejectsTrailingBytesAndMissingFooter) {
  const ShardState state = SampleState();
  std::string encoded = EncodeShardState(state);
  ShardState decoded;
  std::string error;

  std::string trailing = encoded + "x";
  EXPECT_FALSE(DecodeShardState(trailing, &decoded, &error));

  // Drop the footer frame: truncation tripwire.
  std::string no_footer = encoded;
  StateWriter f;
  f.U32(2);
  std::string footer_frame;
  AppendFrame(&footer_frame, FrameType::kFooter, f.str());
  no_footer.resize(no_footer.size() - footer_frame.size());
  EXPECT_FALSE(DecodeShardState(no_footer, &decoded, &error));
}

TEST(ShardStateTest, SaveLoadIsAtomicAndStrict) {
  const std::string dir = TestDir("save_load");
  const std::string path = dir + "/state.bin";
  const ShardState state = SampleState();
  std::string error;
  ASSERT_TRUE(SaveShardState(path, state, &error)) << error;
  ShardState loaded;
  ASSERT_TRUE(LoadShardState(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.header, state.header);

  // A damaged file on disk is rejected, not half-loaded.
  std::string bytes = EncodeShardState(state);
  bytes[bytes.size() / 2] ^= 0x40;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_FALSE(LoadShardState(path, &loaded, &error));
  EXPECT_FALSE(LoadShardState(dir + "/missing.bin", &loaded, &error));
}

// ---------------------------------------------------------------------------
// Epoch manifest codec
// ---------------------------------------------------------------------------

TEST(EpochManifestTest, RoundTripsAndRejectsDamage) {
  const std::string dir = TestDir("manifest");
  EpochManifest manifest;
  manifest.num_workers = 3;
  manifest.stream_fingerprint = 0xabcULL;
  manifest.stream_length = 600;
  manifest.spec_fingerprint = 0xdefULL;
  manifest.epoch_edges = 50;
  manifest.worker_ranges = {{{0, 200}}, {{200, 400}}, {{400, 600}}};
  manifest.checkpoint_files = {"w0-s0.ckpt", "w0-s1.ckpt", "w0-s2.ckpt"};

  const std::string path = dir + "/epoch.manifest";
  std::string error;
  ASSERT_TRUE(SaveEpochManifest(path, manifest, &error)) << error;
  EpochManifest loaded;
  ASSERT_TRUE(LoadEpochManifest(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_workers, manifest.num_workers);
  EXPECT_EQ(loaded.stream_fingerprint, manifest.stream_fingerprint);
  EXPECT_EQ(loaded.stream_length, manifest.stream_length);
  EXPECT_EQ(loaded.spec_fingerprint, manifest.spec_fingerprint);
  EXPECT_EQ(loaded.epoch_edges, manifest.epoch_edges);
  EXPECT_EQ(loaded.worker_ranges, manifest.worker_ranges);
  EXPECT_EQ(loaded.checkpoint_files, manifest.checkpoint_files);

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes[bytes.size() / 3] ^= 0x10;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_FALSE(LoadEpochManifest(path, &loaded, &error));
}

// ---------------------------------------------------------------------------
// Coordinator: W=1 oracle and merge-order edge cases
// ---------------------------------------------------------------------------

ShardPlanOptions PlanFor(const std::string& dir, int workers) {
  ShardPlanOptions options;
  options.num_workers = workers;
  options.shard_dir = dir;
  return options;
}

TEST(CoordinatorTest, BitIdenticalToBrokerAtEveryWorkerCount) {
  VertexId n = 0;
  const EdgeStream stream = ShardStream(&n);
  const std::vector<QuerySpec> specs = MixedShardSpecs(n);

  // A capped controller so the 16-query sweep exercises queued waves and
  // rejects, not just a single wave.
  BudgetPolicy budget;
  budget.per_query_words = 550;   // Rejects the 600-word specs.
  budget.aggregate_words = 2000;  // Forces multiple waves.
  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, budget, &broker_stats);
  ASSERT_GT(broker_stats.waves, 1u);
  ASSERT_GT(broker_stats.queries_rejected, 0u);

  for (int w : {1, 2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(w));
    ShardPlanOptions options =
        PlanFor(TestDir("oracle_w" + std::to_string(w)), w);
    options.budget = budget;
    const ShardBatchResult result = RunShardedBatch(specs, stream, options);
    ExpectOutcomesIdentical(oracle, result.outcomes);
    ExpectStatsIdentical(broker_stats, result.stats);
    EXPECT_EQ(result.workers_recovered, 0u);
  }
}

TEST(CoordinatorTest, EmptyShardSlicesMergeAsIdentity) {
  // 5 edges, 8 workers: shards 5..7 process nothing and must merge as the
  // identity.
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(5);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(3);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, BudgetPolicy(), &broker_stats);
  const ShardBatchResult result =
      RunShardedBatch(specs, stream, PlanFor(TestDir("empty_slice"), 8));
  ExpectOutcomesIdentical(oracle, result.outcomes);
  ExpectStatsIdentical(broker_stats, result.stats);
}

TEST(CoordinatorTest, EmptyStreamRuns) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.clear();
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(2);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, BudgetPolicy(), &broker_stats);
  const ShardBatchResult result =
      RunShardedBatch(specs, stream, PlanFor(TestDir("empty_stream"), 4));
  ExpectOutcomesIdentical(oracle, result.outcomes);
}

TEST(CoordinatorDeathTest, RejectsNonMergeableKinds) {
  VertexId n = 0;
  const EdgeStream stream = ShardStream(&n);
  QuerySpec spec;
  spec.kind = QueryKind::kTriest;
  spec.name = "t0";
  spec.reservoir_capacity = 100;
  EXPECT_DEATH(
      RunShardedBatch({spec}, stream, PlanFor(TestDir("nonmergeable"), 2)),
      "not shard-mergeable");
}

// ---------------------------------------------------------------------------
// Worker kill + in-wave recovery
// ---------------------------------------------------------------------------

TEST(CoordinatorTest, KilledWorkerRecoversAtEveryEpochBoundary) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(120);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(4);
  for (QuerySpec& spec : specs) spec.space_budget_words = 0;

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, BudgetPolicy(), &broker_stats);

  const int workers = 3;  // 40 edges per shard.
  const std::uint64_t epoch = 16;
  for (int victim = 0; victim < workers; ++victim) {
    // Kill at every epoch boundary (multiples of `epoch`) and mid-epoch.
    for (std::uint64_t kill_at : {std::uint64_t{16}, std::uint64_t{32},
                                  std::uint64_t{7}, std::uint64_t{25}}) {
      SCOPED_TRACE("victim=" + std::to_string(victim) +
                   " kill_at=" + std::to_string(kill_at));
      ShardPlanOptions options = PlanFor(
          TestDir("kill_v" + std::to_string(victim) + "_e" +
                  std::to_string(kill_at)),
          workers);
      options.epoch_edges = epoch;
      options.kill_worker = victim;
      options.kill_after_edges = kill_at;
      const ShardBatchResult result = RunShardedBatch(specs, stream, options);
      EXPECT_EQ(result.workers_recovered, 1u);
      EXPECT_EQ(result.workers_launched,
                static_cast<std::uint64_t>(workers) + 1);
      ExpectOutcomesIdentical(oracle, result.outcomes);
      ExpectStatsIdentical(broker_stats, result.stats);
    }
  }
}

TEST(CoordinatorTest, KillWithoutCheckpointsRerunsTheShardFromScratch) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(90);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(2);
  for (QuerySpec& spec : specs) spec.space_budget_words = 0;

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, BudgetPolicy(), &broker_stats);

  ShardPlanOptions options = PlanFor(TestDir("kill_no_ckpt"), 3);
  options.kill_worker = 1;
  options.kill_after_edges = 11;  // No epoch cadence: recovery = full re-run.
  const ShardBatchResult result = RunShardedBatch(specs, stream, options);
  EXPECT_EQ(result.workers_recovered, 1u);
  ExpectOutcomesIdentical(oracle, result.outcomes);
}

// ---------------------------------------------------------------------------
// W-change restore from the epoch manifest
// ---------------------------------------------------------------------------

TEST(CoordinatorTest, CheckpointAtW4RestoresAtOtherWorkerCounts) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(250);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(6);
  for (QuerySpec& spec : specs) spec.space_budget_words = 0;

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, BudgetPolicy(), &broker_stats);

  // A W=4 run with an epoch cadence: afterwards the shard dir holds the
  // epoch manifest plus each shard's last boundary checkpoint (partial
  // progress — 250/4 edges per shard, epoch 20).
  const std::string dir = TestDir("wchange");
  ShardPlanOptions plan = PlanFor(dir, 4);
  plan.epoch_edges = 20;
  const ShardBatchResult original = RunShardedBatch(specs, stream, plan);
  ExpectOutcomesIdentical(oracle, original.outcomes);

  for (int w : {1, 2, 8}) {
    SCOPED_TRACE("restore_workers=" + std::to_string(w));
    ShardPlanOptions restore =
        PlanFor(TestDir("wchange_r" + std::to_string(w)), w);
    ShardBatchResult result;
    std::string error;
    ASSERT_TRUE(ResumeShardedBatch(dir + "/epoch.manifest", specs, stream,
                                   restore, &result, &error))
        << error;
    EXPECT_TRUE(result.resumed);
    ExpectOutcomesIdentical(oracle, result.outcomes);
    ExpectStatsIdentical(broker_stats, result.stats);
  }
}

TEST(CoordinatorTest, RestoreSurvivesAMissingShardCheckpoint) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(250);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(4);
  for (QuerySpec& spec : specs) spec.space_budget_words = 0;

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, BudgetPolicy(), &broker_stats);

  const std::string dir = TestDir("missing_ckpt");
  ShardPlanOptions plan = PlanFor(dir, 4);
  plan.epoch_edges = 20;
  RunShardedBatch(specs, stream, plan);
  // Lose one shard's checkpoint entirely: its whole slice re-runs.
  std::filesystem::remove(dir + "/w0-s2.ckpt");

  ShardBatchResult result;
  std::string error;
  ASSERT_TRUE(ResumeShardedBatch(dir + "/epoch.manifest", specs, stream,
                                 PlanFor(TestDir("missing_ckpt_r"), 3),
                                 &result, &error))
      << error;
  ExpectOutcomesIdentical(oracle, result.outcomes);
}

TEST(CoordinatorTest, RestoreRejectsMismatchedStreamAndSpecs) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(250);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(4);
  for (QuerySpec& spec : specs) spec.space_budget_words = 0;

  const std::string dir = TestDir("restore_reject");
  ShardPlanOptions plan = PlanFor(dir, 2);
  plan.epoch_edges = 20;
  RunShardedBatch(specs, stream, plan);
  const std::string manifest = dir + "/epoch.manifest";

  ShardBatchResult result;
  std::string error;

  // Wrong stream length.
  EdgeStream shorter = stream;
  shorter.resize(200);
  EXPECT_FALSE(ResumeShardedBatch(manifest, specs, shorter,
                                  PlanFor(TestDir("rr_len"), 2), &result,
                                  &error));

  // Same length, different contents.
  EdgeStream mutated = stream;
  std::swap(mutated.front(), mutated.back());
  EXPECT_FALSE(ResumeShardedBatch(manifest, specs, mutated,
                                  PlanFor(TestDir("rr_fp"), 2), &result,
                                  &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos);

  // Different query set (seed change flips the spec fingerprint).
  std::vector<QuerySpec> other = specs;
  other[0].base.seed ^= 1;
  EXPECT_FALSE(ResumeShardedBatch(manifest, other, stream,
                                  PlanFor(TestDir("rr_spec"), 2), &result,
                                  &error));

  // Multi-wave batches cannot be W-change restored.
  std::vector<QuerySpec> budgeted = specs;
  for (QuerySpec& spec : budgeted) spec.space_budget_words = 300;
  ShardPlanOptions capped = PlanFor(TestDir("rr_wave"), 2);
  capped.budget.aggregate_words = 500;
  EXPECT_FALSE(ResumeShardedBatch(manifest, budgeted, stream, capped,
                                  &result, &error));
  EXPECT_NE(error.find("single-wave"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Worker loop details
// ---------------------------------------------------------------------------

TEST(ShardWorkerTest, WritesCheckpointsAtEveryEpochBoundary) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(100);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(2);

  const std::string dir = TestDir("worker_epochs");
  ShardWorkerConfig config;
  config.specs = specs;
  config.edges = stream;
  config.ranges = {{0, 100}};
  config.stream_fingerprint = FingerprintEdgeStream(stream);
  config.spec_fingerprint = FingerprintSpecs(specs);
  config.block_edges = 7;  // Deliberately misaligned with the epoch.
  config.epoch_edges = 30;
  config.checkpoint_path = dir + "/w.ckpt";

  std::string error;
  const ShardWorkerOutcome outcome =
      RunShardWorker(config, dir + "/w.state", &error);
  ASSERT_TRUE(outcome.completed) << error;
  EXPECT_EQ(outcome.edges_done, 100u);
  EXPECT_EQ(outcome.checkpoints_written, 3u);  // At 30, 60, 90.

  ShardState ckpt;
  ASSERT_TRUE(LoadShardState(config.checkpoint_path, &ckpt, &error)) << error;
  EXPECT_EQ(ckpt.header.edges_done, 90u);
  EXPECT_EQ(ckpt.header.epoch, 3u);
  ShardState final_state;
  ASSERT_TRUE(LoadShardState(dir + "/w.state", &final_state, &error)) << error;
  EXPECT_EQ(final_state.header.edges_done, 100u);
}

TEST(ShardWorkerTest, ResumeFromRejectedCheckpointFallsBackToScratch) {
  VertexId n = 0;
  EdgeStream stream = ShardStream(&n);
  stream.resize(60);
  std::vector<QuerySpec> specs = MixedShardSpecs(n);
  specs.resize(2);

  const std::string dir = TestDir("worker_bad_resume");
  ShardWorkerConfig config;
  config.specs = specs;
  config.edges = stream;
  config.ranges = {{0, 60}};
  config.stream_fingerprint = FingerprintEdgeStream(stream);
  config.spec_fingerprint = FingerprintSpecs(specs);
  config.checkpoint_path = dir + "/w.ckpt";
  config.resume = true;

  // Garbage checkpoint on disk: the worker must warn, run from scratch,
  // and still complete.
  std::ofstream(config.checkpoint_path, std::ios::binary) << "not a frame";
  std::string error;
  const ShardWorkerOutcome outcome =
      RunShardWorker(config, dir + "/w.state", &error);
  ASSERT_TRUE(outcome.completed) << error;
  EXPECT_FALSE(outcome.resumed);
  EXPECT_EQ(outcome.edges_done, 60u);
}

// ---------------------------------------------------------------------------
// MergeFrom (the linearity primitive itself)
// ---------------------------------------------------------------------------

TEST(MergeFromTest, TwoHalvesMergeBitIdenticalToFullRun) {
  VertexId n = 0;
  const EdgeStream stream = ShardStream(&n);
  QuerySpec spec = MixedShardSpecs(n)[0];

  EdgeQuery full = MakeEdgeQuery(spec);
  full.algorithm->StartPass(0, stream.size());
  full.algorithm->ProcessEdgeBlock(0, stream, 0);
  full.algorithm->EndPass(0);

  const std::size_t half = stream.size() / 2;
  EdgeQuery lo = MakeEdgeQuery(spec);
  lo.algorithm->StartPass(0, stream.size());
  lo.algorithm->ProcessEdgeBlock(
      0, std::span<const Edge>(stream.data(), half), 0);
  lo.algorithm->EndPass(0);
  EdgeQuery hi = MakeEdgeQuery(spec);
  hi.algorithm->StartPass(0, stream.size());
  hi.algorithm->ProcessEdgeBlock(
      0, std::span<const Edge>(stream.data() + half, stream.size() - half),
      half);
  hi.algorithm->EndPass(0);

  ASSERT_TRUE(lo.algorithm->MergeFrom(*hi.algorithm));
  EXPECT_EQ(lo.result().value, full.result().value);
}

TEST(MergeFromTest, RejectsMismatchedConfigsAndForeignKinds) {
  VertexId n = 0;
  const EdgeStream stream = ShardStream(&n);
  const QuerySpec spec = MixedShardSpecs(n)[0];

  EdgeQuery a = MakeEdgeQuery(spec);
  QuerySpec other = spec;
  other.base.seed ^= 7;
  EdgeQuery b = MakeEdgeQuery(other);
  EXPECT_FALSE(a.algorithm->MergeFrom(*b.algorithm));

  QuerySpec triest;
  triest.kind = QueryKind::kTriest;
  triest.name = "t";
  triest.reservoir_capacity = 10;
  EdgeQuery c = MakeEdgeQuery(triest);
  EXPECT_FALSE(a.algorithm->MergeFrom(*c.algorithm));
  // The default implementation (non-mergeable kinds) always refuses.
  EXPECT_FALSE(c.algorithm->MergeFrom(*a.algorithm));
}

}  // namespace
}  // namespace cyclestream::engine
