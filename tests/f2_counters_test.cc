#include <gtest/gtest.h>

#include <cmath>

#include "core/adj_f2_counter.h"
#include "core/adj_l2_counter.h"
#include "core/arb_f2_counter.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/stats.h"

namespace cyclestream {
namespace {

// Dense random graph where T = Θ(n²·d⁴) dominates n² — the regime of
// Theorems 4.3 / 5.7.
Graph DenseGraph(VertexId n, double p, std::uint64_t seed) {
  Rng rng(seed);
  return Graph(ErdosRenyiGnp(n, p, rng));
}

TEST(AdjF2CounterTest, F2EstimateMatchesExactWedgeVector) {
  const Graph g = DenseGraph(300, 0.15, 1);
  const WedgeVector x = ComputeWedgeVector(g);
  const double f2 = static_cast<double>(WedgeVectorF2(x));

  AdjF2FourCycleCounter::Params params;
  params.base.epsilon = 0.2;
  params.base.t_guess = static_cast<double>(CountFourCyclesFromWedges(x));
  params.base.seed = 2;
  params.num_vertices = g.num_vertices();
  params.copies_per_group = 128;
  Rng rng(3);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  AdjF2FourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  EXPECT_NEAR(counter.F2Estimate(), f2, 0.2 * f2);
}

TEST(AdjF2CounterTest, F1EstimateMatchesExactCappedF1) {
  const Graph g = DenseGraph(250, 0.12, 4);
  const WedgeVector x = ComputeWedgeVector(g);
  AdjF2FourCycleCounter::Params params;
  params.base.epsilon = 0.25;  // cap = 4.
  params.base.t_guess = std::max<double>(1.0, CountFourCyclesFromWedges(x));
  params.base.seed = 5;
  params.num_vertices = g.num_vertices();
  params.copies_per_group = 8;
  params.pair_rate = 1.0;  // Exhaustive pairs: F1 must be exact.
  Rng rng(6);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  AdjF2FourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  const double exact_f1 = static_cast<double>(WedgeVectorCappedF1(x, 4));
  EXPECT_NEAR(counter.F1Estimate(), exact_f1, 1e-6);
}

TEST(AdjF2CounterTest, EndToEndOnDenseGraph) {
  const Graph g = DenseGraph(220, 0.25, 7);
  const double exact = static_cast<double>(CountFourCycles(g));
  std::vector<double> estimates;
  for (int t = 0; t < 7; ++t) {
    AdjF2FourCycleCounter::Params params;
    params.base.epsilon = 0.1;
    params.base.t_guess = exact;
    params.base.seed = 100 + t;
    params.num_vertices = g.num_vertices();
    params.copies_per_group = 96;
    Rng rng(8 + t);
    const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
    estimates.push_back(CountFourCyclesAdjF2(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).median, exact, 0.2 * exact);
}

TEST(AdjF2CounterTest, SubsampledF1IsUnbiasedEnough) {
  const Graph g = DenseGraph(250, 0.2, 9);
  const WedgeVector x = ComputeWedgeVector(g);
  const double exact_f1 = static_cast<double>(WedgeVectorCappedF1(x, 10));
  std::vector<double> estimates;
  for (int t = 0; t < 9; ++t) {
    AdjF2FourCycleCounter::Params params;
    params.base.epsilon = 0.1;  // cap = 10.
    params.base.t_guess = 1e9;  // Irrelevant here.
    params.base.seed = 200 + t;
    params.num_vertices = g.num_vertices();
    params.copies_per_group = 4;
    params.pair_rate = 0.3;
    Rng rng(10 + t);
    const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
    AdjF2FourCycleCounter counter(params);
    RunAdjacencyStream(counter, stream);
    estimates.push_back(counter.F1Estimate());
  }
  EXPECT_NEAR(Summarize(estimates).median, exact_f1, 0.1 * exact_f1);
}

TEST(ArbF2CounterTest, MatchesAdjacencyVariantSemantics) {
  // Same reduction, arbitrary order: F2 estimate should match the exact F2.
  const Graph g = DenseGraph(200, 0.2, 11);
  const WedgeVector x = ComputeWedgeVector(g);
  const double f2 = static_cast<double>(WedgeVectorF2(x));
  ArbF2FourCycleCounter::Params params;
  params.base.epsilon = 0.15;
  params.base.seed = 12;
  params.num_vertices = g.num_vertices();
  params.copies_per_group = 128;
  Rng rng(13);
  EdgeStream stream = g.edges();
  rng.Shuffle(stream);
  ArbF2FourCycleCounter counter(params);
  RunEdgeStream(counter, stream);
  EXPECT_NEAR(counter.F2Estimate(), f2, 0.2 * f2);
}

TEST(ArbF2CounterTest, DynamicDeletionsCancelExactly) {
  // Insert a dense graph, then delete a planted block: the counters must
  // equal a fresh run on the residual graph (same seeds).
  const Graph g = DenseGraph(150, 0.2, 14);
  ArbF2FourCycleCounter::Params params;
  params.base.epsilon = 0.2;
  params.base.seed = 15;
  params.num_vertices = g.num_vertices();
  params.copies_per_group = 32;

  ArbF2FourCycleCounter dynamic(params);
  for (const Edge& e : g.edges()) dynamic.Insert(e);
  // Delete every edge incident to vertices < 30.
  std::vector<Edge> kept;
  for (const Edge& e : g.edges()) {
    if (e.u < 30 || e.v < 30) {
      dynamic.Delete(e);
    } else {
      kept.push_back(e);
    }
  }
  ArbF2FourCycleCounter fresh(params);
  for (const Edge& e : kept) fresh.Insert(e);
  EXPECT_NEAR(dynamic.F2Estimate(), fresh.F2Estimate(), 1e-6);
}

TEST(ArbF2CounterTest, EndToEndInRegime) {
  const Graph g = DenseGraph(180, 0.3, 16);
  const double exact = static_cast<double>(CountFourCycles(g));
  std::vector<double> estimates;
  for (int t = 0; t < 7; ++t) {
    ArbF2FourCycleCounter::Params params;
    params.base.epsilon = 0.1;
    params.base.seed = 300 + t;
    params.num_vertices = g.num_vertices();
    params.copies_per_group = 64;
    Rng rng(17 + t);
    EdgeStream stream = g.edges();
    rng.Shuffle(stream);
    estimates.push_back(CountFourCyclesArbF2(stream, params).value);
  }
  // T̂ = F2/4 carries the +F1(z)/4 structural bias; in this dense regime
  // F1 ≲ a few percent of 4T.
  EXPECT_NEAR(Summarize(estimates).median, exact, 0.2 * exact);
}

TEST(AdjL2CounterTest, EndToEndOnDenseGraph) {
  const Graph g = DenseGraph(90, 0.35, 18);
  const double exact = static_cast<double>(CountFourCycles(g));
  std::vector<double> estimates;
  for (int t = 0; t < 5; ++t) {
    AdjL2FourCycleCounter::Params params;
    params.base.epsilon = 0.2;
    params.base.t_guess = exact;
    params.base.seed = 400 + t;
    params.num_vertices = g.num_vertices();
    params.sampler_copies = 160;
    Rng rng(19 + t);
    const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
    estimates.push_back(CountFourCyclesAdjL2(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).median, exact, 0.45 * exact);
}

TEST(AdjL2CounterTest, ReportsSamplesAndSpace) {
  const Graph g = DenseGraph(70, 0.3, 20);
  AdjL2FourCycleCounter::Params params;
  params.base.epsilon = 0.25;
  params.base.t_guess = 1000.0;
  params.base.seed = 21;
  params.num_vertices = g.num_vertices();
  params.sampler_copies = 64;
  Rng rng(22);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  AdjL2FourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  EXPECT_GT(counter.SamplesUsed(), 0u);
  EXPECT_GT(counter.Result().space_words, 0u);
}

}  // namespace
}  // namespace cyclestream
