// Property tests for the flat open-addressing wedge map (graph/flat_map.h)
// and the parallel/serial determinism of ComputeWedgeVector. The flat map
// replaced std::unordered_map in the exact-counting hot path; these tests
// pin down that every derived quantity (wedge counts, F₂, capped F₁,
// 4-cycle totals, diamond histogram) is exactly what the unordered_map
// formulation produced.

#include <algorithm>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "graph/exact.h"
#include "graph/flat_map.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "hash/rng.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

// Reference implementation: the historical unordered_map wedge vector.
std::unordered_map<std::uint64_t, std::uint32_t, Mix64Hash>
ReferenceWedgeVector(const Graph& g) {
  std::unordered_map<std::uint64_t, std::uint32_t, Mix64Hash> x;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = g.Neighbors(v);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        ++x[PairKey(neighbors[i], neighbors[j])];
      }
    }
  }
  return x;
}

std::vector<Graph> TestGraphs() {
  std::vector<Graph> graphs;
  Rng rng(2026);
  graphs.emplace_back(ErdosRenyiGnp(120, 0.08, rng));
  graphs.emplace_back(ErdosRenyiGnm(300, 900, rng));
  graphs.emplace_back(BarabasiAlbert(200, 4, rng));
  graphs.emplace_back(CompleteBipartite(9, 11));
  graphs.emplace_back(Grid2d(12, 12));
  EdgeList empty(5);
  empty.Finalize();
  graphs.emplace_back(empty);
  return graphs;
}

TEST(WedgeMapTest, FlatMapReproducesUnorderedMapEntries) {
  for (const Graph& g : TestGraphs()) {
    const WedgeVector flat = ComputeWedgeVector(g);
    const auto reference = ReferenceWedgeVector(g);
    ASSERT_EQ(flat.size(), reference.size());
    for (const auto& [key, count] : reference) {
      const std::uint32_t* found = flat.find(key);
      ASSERT_NE(found, nullptr) << "missing pair key " << key;
      ASSERT_EQ(*found, count);
    }
  }
}

TEST(WedgeMapTest, DerivedQuantitiesMatchReference) {
  for (const Graph& g : TestGraphs()) {
    const auto reference = ReferenceWedgeVector(g);

    std::uint64_t ref_f2 = 0, ref_capped_f1 = 0, ref_c4_twice = 0;
    const std::uint32_t cap = 3;
    for (const auto& [key, count] : reference) {
      ref_f2 += static_cast<std::uint64_t>(count) * count;
      ref_capped_f1 += std::min(count, cap);
      ref_c4_twice += static_cast<std::uint64_t>(count) * (count - 1) / 2;
    }

    const WedgeVector x = ComputeWedgeVector(g);
    EXPECT_EQ(WedgeVectorF2(x), ref_f2);
    EXPECT_EQ(WedgeVectorCappedF1(x, cap), ref_capped_f1);
    EXPECT_EQ(CountFourCyclesFromWedges(x), ref_c4_twice / 2);
    EXPECT_EQ(CountFourCycles(g), ref_c4_twice / 2);
  }
}

TEST(WedgeMapTest, DiamondHistogramMatchesReference) {
  for (const Graph& g : TestGraphs()) {
    std::map<std::uint32_t, std::uint64_t> reference;
    for (const auto& [key, count] : ReferenceWedgeVector(g)) {
      if (count >= 2) ++reference[count];
    }
    EXPECT_EQ(DiamondHistogram(g), reference);
  }
}

TEST(WedgeMapTest, PerEdgeFourCycleCountsSumToFourC4) {
  for (const Graph& g : TestGraphs()) {
    const auto per_edge = PerEdgeFourCycleCounts(g);
    std::uint64_t total = 0;
    for (std::uint64_t t : per_edge) total += t;
    EXPECT_EQ(total, 4 * CountFourCycles(g));
  }
}

TEST(WedgeMapTest, ParallelComputeWedgeVectorEqualsSerial) {
  // Determinism across thread counts: the parallel chunked merge must
  // produce a map with identical contents at 1 and 8 threads. Graphs big
  // enough to clear the parallel threshold (2^16 wedges).
  Rng rng(7);
  const Graph big(ErdosRenyiGnm(2000, 12000, rng));
  const Graph skewed(BarabasiAlbert(1500, 8, rng));

  const int saved = DefaultThreads();
  for (const Graph* g : {&big, &skewed}) {
    SetDefaultThreads(1);
    const WedgeVector serial = ComputeWedgeVector(*g);
    SetDefaultThreads(8);
    const WedgeVector parallel = ComputeWedgeVector(*g);
    SetDefaultThreads(saved);

    ASSERT_EQ(serial.size(), parallel.size());
    std::uint64_t checked = 0;
    for (const auto& [key, count] : serial) {
      const std::uint32_t* found = parallel.find(key);
      ASSERT_NE(found, nullptr);
      ASSERT_EQ(*found, count);
      ++checked;
    }
    EXPECT_EQ(checked, serial.size());
    EXPECT_EQ(WedgeVectorF2(serial), WedgeVectorF2(parallel));
  }
}

TEST(WedgeMapTest, ParallelDiamondHistogramEqualsSerial) {
  Rng rng(11);
  const Graph g(ErdosRenyiGnm(2000, 12000, rng));
  const int saved = DefaultThreads();
  SetDefaultThreads(1);
  const auto serial = DiamondHistogram(g);
  SetDefaultThreads(8);
  const auto parallel = DiamondHistogram(g);
  SetDefaultThreads(saved);
  EXPECT_EQ(serial, parallel);
}

// ---------------------------------------------------------------------------
// FlatMap64 unit behavior: growth, collisions, iteration.

TEST(FlatMap64Test, GrowthAndCollisionStress) {
  FlatMap64<std::uint32_t> map;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;
  std::uint64_t s = 33;
  for (int i = 0; i < 20000; ++i) {
    // Cluster keys to force collisions and repeated increments.
    const std::uint64_t key = SplitMix64(s) % 4096;
    ++map[key];
    ++reference[key];
  }
  ASSERT_EQ(map.size(), reference.size());
  for (const auto& [key, count] : reference) {
    const std::uint32_t* found = map.find(key);
    ASSERT_NE(found, nullptr);
    ASSERT_EQ(*found, count);
    ASSERT_EQ(map.at(key), count);
    ASSERT_TRUE(map.contains(key));
  }
  EXPECT_FALSE(map.contains(1ULL << 40));
  EXPECT_EQ(map.find(1ULL << 40), nullptr);
  EXPECT_THROW(map.at(1ULL << 40), std::out_of_range);

  // Iteration visits each occupied slot exactly once.
  std::uint64_t visited = 0, total = 0;
  for (const auto& [key, value] : map) {
    ++visited;
    total += value;
    ASSERT_EQ(reference.at(key), value);
  }
  EXPECT_EQ(visited, reference.size());
  EXPECT_EQ(total, 20000u);
}

TEST(FlatMap64Test, ReserveAndClear) {
  FlatMap64<std::uint32_t> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  EXPECT_GE(cap * 3 / 4, 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) map[k] = static_cast<uint32_t>(k);
  EXPECT_EQ(map.capacity(), cap);  // No rehash within the reserve budget.
  EXPECT_EQ(map.size(), 1000u);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_FALSE(map.contains(5));
}

TEST(FlatMap64Test, VisitSlotRangeCoversAllEntriesOnce) {
  FlatMap64<std::uint32_t> map;
  std::uint64_t s = 5;
  for (int i = 0; i < 5000; ++i) ++map[SplitMix64(s) % 2000];

  std::unordered_map<std::uint64_t, std::uint32_t> seen;
  const std::size_t cap = map.capacity();
  const std::size_t step = cap / 7 + 1;
  for (std::size_t begin = 0; begin < cap; begin += step) {
    map.VisitSlotRange(begin, std::min(begin + step, cap),
                       [&seen](std::uint64_t key, std::uint32_t value) {
                         auto [it, inserted] = seen.emplace(key, value);
                         ASSERT_TRUE(inserted) << "slot visited twice";
                       });
  }
  ASSERT_EQ(seen.size(), map.size());
  for (const auto& [key, value] : seen) EXPECT_EQ(map.at(key), value);
}

}  // namespace
}  // namespace cyclestream
