#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "core/amplify.h"
#include "core/arb_distinguisher.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

TEST(AmplifyMedianTest, MedianKillsOutlierRuns) {
  // A fake estimator that is wildly wrong on some seeds: the median must
  // land on the common value. The copies run concurrently, hence the atomic.
  std::atomic<int> calls{0};
  const Estimate e = AmplifyMedian(0.05, 1, [&calls](std::uint64_t seed) {
    calls.fetch_add(1, std::memory_order_relaxed);
    Estimate out;
    out.value = (seed % 5 == 0) ? 1e9 : 100.0;
    out.space_words = 10;
    return out;
  });
  EXPECT_DOUBLE_EQ(e.value, 100.0);
  EXPECT_EQ(e.space_words, static_cast<std::size_t>(10 * calls.load()));
  EXPECT_GE(calls.load(), 3);
  EXPECT_EQ(calls.load() % 2, 1);  // Odd copy count.
}

TEST(AmplifyMedianTest, StabilizesTriangleCounter) {
  Rng gen(1);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(1500, 3000, gen), 400, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  Rng rng(2);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  const Estimate e = AmplifyMedian(0.1, 3, [&](std::uint64_t seed) {
    RandomOrderTriangleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.c = 1.5;
    params.base.t_guess = exact;
    params.base.seed = seed;
    params.num_vertices = graph.num_vertices();
    return CountTrianglesRandomOrder(stream, params);
  });
  EXPECT_NEAR(e.value, exact, 0.25 * exact);
}

TEST(AmplifyMajorityTest, BoostsDistinguisher) {
  Rng gen(4);
  EdgeList base(1);
  base.Finalize();
  const EdgeList cyclic = PlantFourCycles(std::move(base), 60, gen);
  Rng rng(5);
  EdgeStream stream = cyclic.edges();
  rng.Shuffle(stream);
  const bool found = AmplifyMajority(0.05, 6, [&](std::uint64_t seed) {
    ArbTwoPassDistinguisher::Params params;
    params.base.t_guess = 60.0;
    params.base.c = 1.0;
    params.base.seed = seed;
    params.num_vertices = cyclic.num_vertices();
    return DistinguishFourCycles(stream, params);
  });
  EXPECT_TRUE(found);
}

TEST(AmplifyMajorityTest, MajorityOfConstantRuns) {
  EXPECT_TRUE(AmplifyMajority(0.2, 1, [](std::uint64_t) { return true; }));
  EXPECT_FALSE(AmplifyMajority(0.2, 1, [](std::uint64_t) { return false; }));
}

// Serial (--threads=1) and parallel (--threads=8) amplified runs must be
// bit-identical: copy i always gets AmplifySeed(seed, i) and the reduction
// happens in index order. Exercised across three core algorithms.
class AmplifyDeterminismTest : public ::testing::Test {
 protected:
  ~AmplifyDeterminismTest() override { SetDefaultThreads(0); }

  template <typename RunFn>
  static void ExpectBitIdentical(double delta, std::uint64_t seed,
                                 const RunFn& run) {
    SetDefaultThreads(1);
    const Estimate serial = AmplifyMedian(delta, seed, run);
    SetDefaultThreads(8);
    const Estimate parallel = AmplifyMedian(delta, seed, run);
    // Bit-level equality, not EXPECT_DOUBLE_EQ's ULP tolerance.
    EXPECT_EQ(serial.value, parallel.value);
    EXPECT_EQ(serial.space_words, parallel.space_words);
  }
};

TEST_F(AmplifyDeterminismTest, RandomOrderTriangles) {
  Rng gen(11);
  const EdgeList graph =
      PlantTriangles(ErdosRenyiGnm(1200, 2400, gen), 300, gen);
  Rng order(12);
  const EdgeStream stream = MakeRandomOrderStream(graph, order);
  const double t = static_cast<double>(CountTriangles(Graph(graph)));
  ExpectBitIdentical(0.05, 21, [&](std::uint64_t seed) {
    RandomOrderTriangleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.t_guess = std::max(1.0, t);
    params.base.seed = seed;
    params.num_vertices = graph.num_vertices();
    return CountTrianglesRandomOrder(stream, params);
  });
}

TEST_F(AmplifyDeterminismTest, ArbThreePassFourCycles) {
  Rng gen(13);
  EdgeList graph = PlantFourCycles(ErdosRenyiGnm(800, 2400, gen), 200, gen);
  Rng order(14);
  EdgeStream stream = graph.edges();
  order.Shuffle(stream);
  const double t = static_cast<double>(CountFourCycles(Graph(graph)));
  ExpectBitIdentical(0.05, 22, [&](std::uint64_t seed) {
    ArbThreePassFourCycleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.t_guess = std::max(1.0, t);
    params.base.seed = seed;
    params.num_vertices = graph.num_vertices();
    return CountFourCyclesArbThreePass(stream, params);
  });
}

TEST_F(AmplifyDeterminismTest, AdjacencyDiamonds) {
  Rng gen(15);
  const Graph g(PlantDiamonds(ErdosRenyiGnm(1000, 3000, gen),
                              {DiamondSpec{8, 25}}, gen));
  Rng order(16);
  const AdjacencyStream stream = MakeAdjacencyStream(g, order);
  const double t = static_cast<double>(CountFourCycles(g));
  ExpectBitIdentical(0.05, 23, [&](std::uint64_t seed) {
    DiamondFourCycleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.t_guess = std::max(1.0, t);
    params.base.seed = seed;
    params.num_vertices = g.num_vertices();
    return CountFourCyclesDiamond(stream, params);
  });
}

}  // namespace
}  // namespace cyclestream
