#include <gtest/gtest.h>

#include "core/amplify.h"
#include "core/arb_distinguisher.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"

namespace cyclestream {
namespace {

TEST(AmplifyMedianTest, MedianKillsOutlierRuns) {
  // A fake estimator that is wildly wrong on some seeds: the median must
  // land on the common value.
  int calls = 0;
  const Estimate e = AmplifyMedian(0.05, 1, [&calls](std::uint64_t seed) {
    ++calls;
    Estimate out;
    out.value = (seed % 5 == 0) ? 1e9 : 100.0;
    out.space_words = 10;
    return out;
  });
  EXPECT_DOUBLE_EQ(e.value, 100.0);
  EXPECT_EQ(e.space_words, static_cast<std::size_t>(10 * calls));
  EXPECT_GE(calls, 3);
  EXPECT_EQ(calls % 2, 1);  // Odd copy count.
}

TEST(AmplifyMedianTest, StabilizesTriangleCounter) {
  Rng gen(1);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(1500, 3000, gen), 400, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  Rng rng(2);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  const Estimate e = AmplifyMedian(0.1, 3, [&](std::uint64_t seed) {
    RandomOrderTriangleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.c = 1.5;
    params.base.t_guess = exact;
    params.base.seed = seed;
    params.num_vertices = graph.num_vertices();
    return CountTrianglesRandomOrder(stream, params);
  });
  EXPECT_NEAR(e.value, exact, 0.25 * exact);
}

TEST(AmplifyMajorityTest, BoostsDistinguisher) {
  Rng gen(4);
  EdgeList base(1);
  base.Finalize();
  const EdgeList cyclic = PlantFourCycles(std::move(base), 60, gen);
  Rng rng(5);
  EdgeStream stream = cyclic.edges();
  rng.Shuffle(stream);
  const bool found = AmplifyMajority(0.05, 6, [&](std::uint64_t seed) {
    ArbTwoPassDistinguisher::Params params;
    params.base.t_guess = 60.0;
    params.base.c = 1.0;
    params.base.seed = seed;
    params.num_vertices = cyclic.num_vertices();
    return DistinguishFourCycles(stream, params);
  });
  EXPECT_TRUE(found);
}

TEST(AmplifyMajorityTest, MajorityOfConstantRuns) {
  EXPECT_TRUE(AmplifyMajority(0.2, 1, [](std::uint64_t) { return true; }));
  EXPECT_FALSE(AmplifyMajority(0.2, 1, [](std::uint64_t) { return false; }));
}

}  // namespace
}  // namespace cyclestream
