#include <gtest/gtest.h>

#include <cmath>

#include "gen/generators.h"
#include "gen/lower_bound.h"
#include "graph/exact.h"
#include "graph/graph.h"

namespace cyclestream {
namespace {

TEST(ErdosRenyiGnmTest, ExactEdgeCount) {
  Rng rng(1);
  const EdgeList g = ErdosRenyiGnm(100, 500, rng);
  EXPECT_EQ(g.num_edges(), 500u);
  EXPECT_EQ(g.num_vertices(), 100u);
}

TEST(ErdosRenyiGnmTest, CompleteGraphRequest) {
  Rng rng(2);
  const EdgeList g = ErdosRenyiGnm(10, 45, rng);
  EXPECT_EQ(g.num_edges(), 45u);
}

TEST(ErdosRenyiGnpTest, EdgeCountConcentrates) {
  Rng rng(3);
  const double p = 0.01;
  const EdgeList g = ErdosRenyiGnp(500, p, rng);
  const double expected = p * 500 * 499 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              5 * std::sqrt(expected));
}

TEST(ErdosRenyiGnpTest, ExtremeProbabilities) {
  Rng rng(4);
  EXPECT_EQ(ErdosRenyiGnp(50, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(ErdosRenyiGnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(ErdosRenyiGnpTest, DegreesRoughlyUniform) {
  Rng rng(5);
  const EdgeList list = ErdosRenyiGnp(400, 0.05, rng);
  const Graph g(list);
  // Mean degree ≈ 0.05·399 ≈ 20; no vertex should be wildly off.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LT(g.Degree(v), 60u);
  }
}

TEST(BarabasiAlbertTest, EdgeCountAndSkew) {
  Rng rng(6);
  const EdgeList list = BarabasiAlbert(2000, 3, rng);
  const Graph g(list);
  EXPECT_EQ(g.num_vertices(), 2000u);
  // m0 seed edges + 3 per subsequent vertex.
  EXPECT_EQ(list.num_edges(), 3u + 3u * (2000u - 4u));
  // Preferential attachment should create hubs far above the mean (~6).
  EXPECT_GT(g.MaxDegree(), 40u);
}

TEST(ChungLuTest, AverageDegreeApproximatelyMatches) {
  Rng rng(7);
  const EdgeList g = ChungLuPowerLaw(3000, 10.0, 2.5, rng);
  const double avg = 2.0 * static_cast<double>(g.num_edges()) / 3000.0;
  EXPECT_GT(avg, 6.0);
  EXPECT_LT(avg, 14.0);
}

TEST(ChungLuTest, ProducesSkewedDegrees) {
  Rng rng(8);
  const Graph g(ChungLuPowerLaw(3000, 8.0, 2.2, rng));
  EXPECT_GT(g.MaxDegree(), 50u);
}

TEST(CompleteBipartiteTest, CountsAreExact) {
  const EdgeList list = CompleteBipartite(4, 6);
  const Graph g(list);
  EXPECT_EQ(g.num_edges(), 24u);
  EXPECT_EQ(CountTriangles(g), 0u);
  // C(4,2)·C(6,2) = 6·15 = 90.
  EXPECT_EQ(CountFourCycles(g), 90u);
}

TEST(Grid2dTest, CountsAreExact) {
  const Graph g(Grid2d(5, 7));
  EXPECT_EQ(g.num_vertices(), 35u);
  EXPECT_EQ(g.num_edges(), 5u * 6u + 4u * 7u);
  EXPECT_EQ(CountTriangles(g), 0u);
  EXPECT_EQ(CountFourCycles(g), 4u * 6u);  // Unit squares only.
}

TEST(PlantTrianglesTest, ExactTriangleCount) {
  Rng rng(9);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantTriangles(std::move(base), 42, rng));
  EXPECT_EQ(CountTriangles(g), 42u);
  EXPECT_EQ(CountFourCycles(g), 0u);
}

TEST(PlantBookTest, SpineIsHeavy) {
  Rng rng(10);
  EdgeList base(1);
  base.Finalize();
  const EdgeList list = PlantBook(std::move(base), 50, rng);
  const Graph g(list);
  EXPECT_EQ(CountTriangles(g), 50u);
  // The spine edge (first two fresh vertices) has 50 common neighbors.
  EXPECT_EQ(g.CommonNeighborCount(1, 2), 50u);
}

TEST(PlantDiamondsTest, FourCycleArithmetic) {
  Rng rng(11);
  EdgeList base(1);
  base.Finalize();
  // 3 diamonds of size 4 (C(4,2)=6 cycles each) + 2 of size 2 (1 each).
  const EdgeList list = PlantDiamonds(
      std::move(base), {DiamondSpec{4, 3}, DiamondSpec{2, 2}}, rng);
  EXPECT_EQ(CountFourCycles(Graph(list)), 3u * 6u + 2u * 1u);
}

TEST(PlantThetaTest, CountsAndHeavySpine) {
  Rng rng(30);
  EdgeList base(1);
  base.Finalize();
  const std::size_t k = 50;
  const EdgeList list = PlantTheta(std::move(base), k, rng);
  const Graph g(list);
  // 2k cycles through the spine + k on the u side + k on the v side.
  EXPECT_EQ(CountFourCycles(g), 4 * k);
  const VertexId u = 1, v = 2;  // First fresh vertices after the base.
  EXPECT_EQ(CountFourCyclesThroughEdge(g, u, v), 2 * k);
}

TEST(PlantFourCyclesTest, ExactCount) {
  Rng rng(12);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantFourCycles(std::move(base), 17, rng));
  EXPECT_EQ(CountFourCycles(g), 17u);
  EXPECT_EQ(CountTriangles(g), 0u);
}

TEST(FourCycleFreeRandomTest, IsActuallyC4Free) {
  Rng rng(13);
  const EdgeList list = FourCycleFreeRandom(300, 600, false, rng);
  EXPECT_GT(list.num_edges(), 100u);
  EXPECT_EQ(CountFourCycles(Graph(list)), 0u);
}

TEST(FourCycleFreeRandomTest, TriangleFreeVariant) {
  Rng rng(14);
  const EdgeList list = FourCycleFreeRandom(300, 500, true, rng);
  const Graph g(list);
  EXPECT_EQ(CountFourCycles(g), 0u);
  EXPECT_EQ(CountTriangles(g), 0u);
}

TEST(DisjointUnionTest, OffsetsAndCounts) {
  Rng rng(15);
  EdgeList a(1);
  a.Finalize();
  const EdgeList tri = PlantTriangles(std::move(a), 2, rng);
  EdgeList b(1);
  b.Finalize();
  const EdgeList cyc = PlantFourCycles(std::move(b), 3, rng);
  const Graph g(DisjointUnion({tri, cyc}));
  EXPECT_EQ(CountTriangles(g), 2u);
  EXPECT_EQ(CountFourCycles(g), 3u);
}

TEST(RandomTreeTest, AcyclicAndConnectedSize) {
  Rng rng(16);
  const EdgeList list = RandomTree(500, rng);
  EXPECT_EQ(list.num_edges(), 499u);
  const Graph g(list);
  EXPECT_EQ(CountTriangles(g), 0u);
  EXPECT_EQ(CountFourCycles(g), 0u);
}

TEST(WattsStrogatzTest, LatticeLimitIsDeterministicRing) {
  Rng rng(40);
  const Graph g(WattsStrogatz(100, 4, 0.0, rng));
  EXPECT_EQ(g.num_edges(), 200u);  // n·k/2.
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(g.Degree(v), 4u);
  // Ring lattice with k=4: each vertex closes one triangle per step pair;
  // total n triangles.
  EXPECT_EQ(CountTriangles(g), 100u);
}

TEST(WattsStrogatzTest, RewiringKeepsEdgeBudgetClose) {
  Rng rng(41);
  const EdgeList g = WattsStrogatz(2000, 6, 0.2, rng);
  EXPECT_GE(g.num_edges(), 5800u);
  EXPECT_LE(g.num_edges(), 6000u);
}

class TriangleGadgetTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriangleGadgetTest, PlantedBitControlsTriangleCount) {
  const std::uint64_t t = GetParam();
  Rng rng(17 + t);
  const auto planted = MakeTriangleLowerBoundGadget(12, t, true, rng);
  EXPECT_EQ(CountTriangles(Graph(planted.graph)), t);
  Rng rng2(18 + t);
  const auto empty = MakeTriangleLowerBoundGadget(12, t, false, rng2);
  EXPECT_EQ(CountTriangles(Graph(empty.graph)), 0u);
}

INSTANTIATE_TEST_SUITE_P(TSweep, TriangleGadgetTest,
                         ::testing::Values(1, 2, 5, 10, 25));

TEST(TriangleGadgetTest, StarVerticesShareNeighborhood) {
  Rng rng(19);
  const auto gadget = MakeTriangleLowerBoundGadget(8, 4, true, rng);
  const Graph g(gadget.graph);
  // u* and v* have identical W-neighborhoods of size T.
  EXPECT_EQ(g.CommonNeighborCount(gadget.u_star, gadget.v_star), 4u);
}

TEST(FourCycleGadgetTest, IntersectionControlsCycles) {
  Rng rng(20);
  const auto yes = MakeFourCycleLowerBoundGadget(20, 8, 0.5, true, rng);
  EXPECT_EQ(CountFourCycles(Graph(yes.graph)), yes.expected_four_cycles);
  EXPECT_EQ(yes.expected_four_cycles, 28u);  // C(8,2).
  Rng rng2(21);
  const auto no = MakeFourCycleLowerBoundGadget(20, 8, 0.5, false, rng2);
  EXPECT_EQ(CountFourCycles(Graph(no.graph)), 0u);
}

}  // namespace
}  // namespace cyclestream
