#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>

#include "baselines/triest.h"
#include "core/arb_f2_counter.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "hash/rng.h"
#include "sketch/reservoir.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "stream/fault.h"
#include "stream/order.h"
#include "tests/test_util.h"
#include "util/crc32.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

std::string MakeTempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

Snapshot SampleSnapshot() {
  Snapshot snap;
  snap.algorithm_id = "test/1";
  snap.stream_kind = 0;
  snap.stream_fingerprint = 0x1234567890abcdefULL;
  snap.stream_length = 100;
  snap.pass = 1;
  snap.position = 42;
  snap.elements_processed = 142;
  snap.state = std::string("\x01\x02\x03\x04 state bytes", 17);
  return snap;
}

TEST(Crc32Test, KnownVector) {
  // The IEEE 802.3 check value for the standard "123456789" test string.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(SnapshotCodecTest, RoundTrip) {
  const Snapshot snap = SampleSnapshot();
  const std::string encoded = EncodeSnapshot(snap);
  std::string error;
  auto decoded = DecodeSnapshot(encoded, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->algorithm_id, snap.algorithm_id);
  EXPECT_EQ(decoded->stream_kind, snap.stream_kind);
  EXPECT_EQ(decoded->stream_fingerprint, snap.stream_fingerprint);
  EXPECT_EQ(decoded->stream_length, snap.stream_length);
  EXPECT_EQ(decoded->pass, snap.pass);
  EXPECT_EQ(decoded->position, snap.position);
  EXPECT_EQ(decoded->elements_processed, snap.elements_processed);
  EXPECT_EQ(decoded->state, snap.state);
}

// The restore-safety contract: a snapshot with ANY byte damaged must be
// rejected. Header bytes are caught by field validation, payload bytes by
// the CRC; this sweep proves there is no undetected offset.
TEST(SnapshotCodecTest, EveryByteFlipIsRejected) {
  const std::string encoded = EncodeSnapshot(SampleSnapshot());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string damaged = encoded;
    damaged[i] = static_cast<char>(damaged[i] ^ 0x5a);
    std::string error;
    EXPECT_FALSE(DecodeSnapshot(damaged, &error).has_value())
        << "byte flip at offset " << i << " was not detected";
    EXPECT_FALSE(error.empty());
  }
}

TEST(SnapshotCodecTest, EveryTruncationIsRejected) {
  const std::string encoded = EncodeSnapshot(SampleSnapshot());
  for (std::size_t len = 0; len < encoded.size(); ++len) {
    std::string error;
    EXPECT_FALSE(
        DecodeSnapshot(std::string_view(encoded).substr(0, len), &error)
            .has_value())
        << "truncation to " << len << " bytes was not detected";
  }
}

TEST(SnapshotCodecTest, VersionMismatchIsRejected) {
  std::string encoded = EncodeSnapshot(SampleSnapshot());
  // The version field is the u32 after the 8-byte magic; it is validated
  // directly (not CRC-covered), so patch it in place.
  encoded[8] = static_cast<char>(kSnapshotVersion + 1);
  std::string error;
  EXPECT_FALSE(DecodeSnapshot(encoded, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SnapshotFileTest, FailedWriteKeepsPreviousSnapshot) {
  const std::string dir = MakeTempDir("ckpt_atomic");
  const std::string path = dir + "/snap.ckpt";
  Snapshot first = SampleSnapshot();
  std::string error;
  ASSERT_TRUE(SaveSnapshot(path, first, &error)) << error;

  Snapshot second = SampleSnapshot();
  second.position = 99;
  WriteFault fault;
  fault.fail_io = true;
  EXPECT_FALSE(SaveSnapshot(path, second, &error, &fault));

  auto loaded = LoadSnapshot(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->position, first.position);
}

TEST(SnapshotFileTest, CorruptAndTruncatedFilesAreRejected) {
  const std::string dir = MakeTempDir("ckpt_damage");
  std::string error;
  const std::string encoded = EncodeSnapshot(SampleSnapshot());
  for (std::size_t offset : {std::size_t{0}, std::size_t{9},
                             std::size_t{24}, encoded.size() - 1}) {
    const std::string path = dir + "/corrupt.ckpt";
    WriteFault fault;
    fault.corrupt_byte = static_cast<std::int64_t>(offset);
    ASSERT_TRUE(SaveSnapshot(path, SampleSnapshot(), &error, &fault));
    EXPECT_FALSE(LoadSnapshot(path, &error).has_value())
        << "corruption at byte " << offset << " was not detected";
  }
  for (std::size_t size : {std::size_t{0}, std::size_t{10},
                           encoded.size() / 2, encoded.size() - 1}) {
    const std::string path = dir + "/truncated.ckpt";
    WriteFault fault;
    fault.truncate_to = static_cast<std::int64_t>(size);
    ASSERT_TRUE(SaveSnapshot(path, SampleSnapshot(), &error, &fault));
    EXPECT_FALSE(LoadSnapshot(path, &error).has_value())
        << "truncation to " << size << " bytes was not detected";
  }
  EXPECT_FALSE(LoadSnapshot(dir + "/missing.ckpt", &error).has_value());
}

TEST(FaultPlanTest, KillPointIsDeterministicAndInRange) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const std::uint64_t a = FaultPlan::PickKillPoint(seed, 360);
    const std::uint64_t b = FaultPlan::PickKillPoint(seed, 360);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 1u);
    EXPECT_LE(a, 360u);
  }
}

TEST(ReservoirTest, OfferReportsEvictedItem) {
  // Capacity 1 makes the eviction observable: whenever Add evicts, the
  // evicted item must be the (single) previous occupant.
  Reservoir<int> res(1, Rng(17));
  auto first = res.Add(1000);
  EXPECT_TRUE(first.inserted);
  EXPECT_FALSE(first.evicted);
  EXPECT_FALSE(first.evicted_item.has_value());
  int current = 1000;
  bool saw_eviction = false;
  for (int v = 1001; v < 1100; ++v) {
    const auto offer = res.Add(v);
    EXPECT_EQ(offer.evicted, offer.evicted_item.has_value());
    if (offer.evicted) {
      saw_eviction = true;
      EXPECT_EQ(*offer.evicted_item, current);
      EXPECT_TRUE(offer.inserted);
      current = v;
    }
    ASSERT_EQ(res.items().size(), 1u);
    EXPECT_EQ(res.items()[0], current);
  }
  EXPECT_TRUE(saw_eviction);
}

TEST(ReservoirTest, SaveRestoreContinuesIdentically) {
  Reservoir<int> original(8, Rng(5));
  for (int v = 0; v < 50; ++v) original.Add(v);

  StateWriter w;
  original.SaveState(w, [](StateWriter& sw, int v) { sw.I64(v); });
  const std::string blob = w.Take();

  Reservoir<int> restored(8, Rng(5));
  StateReader r(blob);
  ASSERT_TRUE(restored.RestoreState(
      r, [](StateReader& sr) { return static_cast<int>(sr.I64()); }));
  ASSERT_TRUE(r.AtEnd());

  for (int v = 50; v < 200; ++v) {
    original.Add(v);
    restored.Add(v);
  }
  EXPECT_EQ(original.seen(), restored.seen());
  EXPECT_EQ(original.items(), restored.items());
}

TEST(ReservoirTest, RestoreRejectsCapacityMismatch) {
  Reservoir<int> original(8, Rng(5));
  original.Add(1);
  StateWriter w;
  original.SaveState(w, [](StateWriter& sw, int v) { sw.I64(v); });
  const std::string blob = w.Take();

  Reservoir<int> other(16, Rng(5));
  StateReader r(blob);
  EXPECT_FALSE(other.RestoreState(
      r, [](StateReader& sr) { return static_cast<int>(sr.I64()); }));
  EXPECT_EQ(other.items().size(), 0u);
}

// ---------------------------------------------------------------------------
// Crash/resume property tests
// ---------------------------------------------------------------------------

ArbThreePassFourCycleCounter::Params ArbParams(VertexId n) {
  ArbThreePassFourCycleCounter::Params params;
  params.base.epsilon = 0.5;
  params.base.t_guess = 64.0;
  params.base.seed = 11;
  params.num_vertices = n;
  return params;
}

// Sweeps EVERY kill point of a (small) E8-style three-pass run: kill after
// element k, resume from the last checkpoint, and require the resumed
// estimate and space audit to be bit-identical to the uninterrupted golden
// run. This is the in-process version of the CI crash-resume smoke job.
TEST(CrashResumeTest, EveryKillPointResumesBitIdenticalArbThreePass) {
  Rng gen_rng(7);
  const EdgeList graph = ErdosRenyiGnm(36, 90, gen_rng);
  EdgeStream stream = graph.edges();
  Rng order_rng(9);
  order_rng.Shuffle(stream);

  ArbThreePassFourCycleCounter golden(ArbParams(graph.num_vertices()));
  RunEdgeStream(golden, stream);
  const double golden_value = golden.Result().value;
  const std::size_t golden_space = golden.Result().space_words;
  const std::size_t golden_audit = golden.AuditSpace();

  const std::string dir = MakeTempDir("crash_resume_arb3");
  const std::uint64_t total = 3 * stream.size();
  for (std::uint64_t kill = 1; kill < total; ++kill) {
    ArbThreePassFourCycleCounter victim(ArbParams(graph.num_vertices()));
    CheckpointPolicy policy;
    policy.directory = dir;
    policy.every_elements = 1;
    FaultPlan faults;
    faults.KillAfterElements(kill);
    RunOptions kill_options;
    kill_options.checkpoint = &policy;
    kill_options.faults = &faults;
    const RunOutcome killed = RunEdgeStream(victim, stream, kill_options);
    ASSERT_FALSE(killed.completed);
    // every_elements=1 writes one snapshot per element, plus one extra at
    // each pass boundary crossed (at_pass_end defaults on).
    ASSERT_GE(killed.checkpoints_written, kill);
    ASSERT_FALSE(killed.checkpoint_path.empty());

    ArbThreePassFourCycleCounter resumed(ArbParams(graph.num_vertices()));
    RunOptions resume_options;
    resume_options.resume_from = killed.checkpoint_path;
    const RunOutcome outcome = RunEdgeStream(resumed, stream, resume_options);
    ASSERT_TRUE(outcome.resumed) << "kill point " << kill;
    ASSERT_TRUE(outcome.completed);
    // EXPECT_EQ on doubles is exact (bitwise for non-NaN): the resumed run
    // must reproduce the golden estimate to the last bit, not approximately.
    EXPECT_EQ(resumed.Result().value, golden_value) << "kill point " << kill;
    EXPECT_EQ(resumed.Result().space_words, golden_space)
        << "kill point " << kill;
    EXPECT_EQ(resumed.AuditSpace(), golden_audit) << "kill point " << kill;
  }
}

DiamondFourCycleCounter::Params DiamondParams(VertexId n) {
  DiamondFourCycleCounter::Params params;
  params.base.epsilon = 0.5;
  params.base.t_guess = 64.0;
  params.base.seed = 23;
  params.num_vertices = n;
  return params;
}

// Same sweep for the adjacency-list model (E5-style diamond counter),
// covering the ProcessList driver path and the heavier diamond state.
TEST(CrashResumeTest, EveryKillPointResumesBitIdenticalDiamond) {
  Rng gen_rng(13);
  const EdgeList graph = ErdosRenyiGnm(24, 72, gen_rng);
  const Graph g(graph);
  Rng order_rng(15);
  const AdjacencyStream stream = MakeAdjacencyStream(g, order_rng);

  DiamondFourCycleCounter golden(DiamondParams(g.num_vertices()));
  RunAdjacencyStream(golden, stream);
  const double golden_value = golden.Result().value;
  const std::size_t golden_audit = golden.AuditSpace();

  const std::string dir = MakeTempDir("crash_resume_diamond");
  const std::uint64_t total = 2 * stream.size();
  for (std::uint64_t kill = 1; kill < total; ++kill) {
    DiamondFourCycleCounter victim(DiamondParams(g.num_vertices()));
    CheckpointPolicy policy;
    policy.directory = dir;
    policy.every_elements = 1;
    FaultPlan faults;
    faults.KillAfterElements(kill);
    RunOptions kill_options;
    kill_options.checkpoint = &policy;
    kill_options.faults = &faults;
    const RunOutcome killed = RunAdjacencyStream(victim, stream, kill_options);
    ASSERT_FALSE(killed.completed);
    ASSERT_FALSE(killed.checkpoint_path.empty());

    DiamondFourCycleCounter resumed(DiamondParams(g.num_vertices()));
    RunOptions resume_options;
    resume_options.resume_from = killed.checkpoint_path;
    const RunOutcome outcome =
        RunAdjacencyStream(resumed, stream, resume_options);
    ASSERT_TRUE(outcome.resumed) << "kill point " << kill;
    EXPECT_EQ(resumed.Result().value, golden_value) << "kill point " << kill;
    EXPECT_EQ(resumed.AuditSpace(), golden_audit) << "kill point " << kill;
  }
}

// Flips every byte of a real mid-run snapshot and requires the resume to be
// rejected — with the run falling back to a from-scratch execution that
// still produces the golden result. Never a partial or silent restore.
TEST(CrashResumeTest, CorruptSnapshotAlwaysRejectedWithScratchFallback) {
  Rng gen_rng(7);
  const EdgeList graph = ErdosRenyiGnm(20, 40, gen_rng);
  EdgeStream stream = graph.edges();
  Rng order_rng(9);
  order_rng.Shuffle(stream);

  ArbThreePassFourCycleCounter golden(ArbParams(graph.num_vertices()));
  RunEdgeStream(golden, stream);
  const double golden_value = golden.Result().value;

  // Take one snapshot mid-pass-1 (after half the elements).
  const std::string dir = MakeTempDir("crash_resume_corrupt");
  ArbThreePassFourCycleCounter victim(ArbParams(graph.num_vertices()));
  CheckpointPolicy policy;
  policy.directory = dir;
  policy.every_elements = 1;
  FaultPlan faults;
  faults.KillAfterElements(stream.size() + stream.size() / 2);
  RunOptions kill_options;
  kill_options.checkpoint = &policy;
  kill_options.faults = &faults;
  const RunOutcome killed = RunEdgeStream(victim, stream, kill_options);
  ASSERT_FALSE(killed.completed);

  std::string encoded;
  {
    std::ifstream in(killed.checkpoint_path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    encoded = buf.str();
  }
  ASSERT_FALSE(encoded.empty());

  // Sampling every byte keeps the test fast while still covering the
  // header, the length fields, the CRC, and the state blob.
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string damaged = encoded;
    damaged[i] = static_cast<char>(damaged[i] ^ 0xff);
    const std::string path = dir + "/damaged.ckpt";
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(damaged.data(),
                static_cast<std::streamsize>(damaged.size()));
    }
    ArbThreePassFourCycleCounter resumed(ArbParams(graph.num_vertices()));
    RunOptions resume_options;
    resume_options.resume_from = path;
    const RunOutcome outcome = RunEdgeStream(resumed, stream, resume_options);
    ASSERT_TRUE(outcome.resume_rejected)
        << "byte flip at offset " << i << " was restored";
    ASSERT_FALSE(outcome.resumed);
    // Fallback ran from scratch and is still correct.
    ASSERT_EQ(resumed.Result().value, golden_value);
  }
}

// Cross-configuration rejects: a snapshot must only restore into the exact
// (algorithm, params, stream) it was taken from.
TEST(CrashResumeTest, MismatchedResumeIsRejected) {
  Rng gen_rng(7);
  const EdgeList graph = ErdosRenyiGnm(20, 40, gen_rng);
  EdgeStream stream = graph.edges();
  Rng order_rng(9);
  order_rng.Shuffle(stream);

  const std::string dir = MakeTempDir("crash_resume_mismatch");
  ArbThreePassFourCycleCounter victim(ArbParams(graph.num_vertices()));
  CheckpointPolicy policy;
  policy.directory = dir;
  policy.every_elements = 1;
  FaultPlan faults;
  faults.KillAfterElements(stream.size() / 2);
  RunOptions kill_options;
  kill_options.checkpoint = &policy;
  kill_options.faults = &faults;
  const RunOutcome killed = RunEdgeStream(victim, stream, kill_options);
  ASSERT_FALSE(killed.completed);

  // Different seed: config fingerprint inside the state blob must reject.
  {
    auto params = ArbParams(graph.num_vertices());
    params.base.seed = 999;
    ArbThreePassFourCycleCounter other(params);
    RunOptions options;
    options.resume_from = killed.checkpoint_path;
    const RunOutcome outcome = RunEdgeStream(other, stream, options);
    EXPECT_TRUE(outcome.resume_rejected);
    EXPECT_FALSE(outcome.resumed);
  }
  // Different stream order: the stream fingerprint must reject.
  {
    EdgeStream other_stream = graph.edges();
    Rng other_rng(1234);
    other_rng.Shuffle(other_stream);
    ASSERT_NE(other_stream, stream);
    ArbThreePassFourCycleCounter other(ArbParams(graph.num_vertices()));
    RunOptions options;
    options.resume_from = killed.checkpoint_path;
    const RunOutcome outcome = RunEdgeStream(other, other_stream, options);
    EXPECT_TRUE(outcome.resume_rejected);
  }
  // Different algorithm: the algorithm id must reject.
  {
    Triest::Params params;
    params.reservoir_capacity = 16;
    params.seed = 11;
    Triest other(params);
    RunOptions options;
    options.resume_from = killed.checkpoint_path;
    const RunOutcome outcome = RunEdgeStream(other, stream, options);
    EXPECT_TRUE(outcome.resume_rejected);
  }
}

ArbF2FourCycleCounter::Params ArbF2Params(VertexId n, SketchBackend backend,
                                          int shards) {
  ArbF2FourCycleCounter::Params params;
  params.base.epsilon = 0.5;
  params.base.t_guess = 64.0;
  params.base.seed = 29;
  params.num_vertices = n;
  params.sketch_backend = backend;
  params.intra_shards = shards;
  return params;
}

// Kill-point sweep for a *sharded* query spec: the checkpointing driver path
// is strictly per-edge, so a block+sharded configuration must checkpoint and
// resume exactly like the scalar one — and every resumed estimate must match
// the scalar golden run bit for bit.
TEST(CrashResumeTest, EveryKillPointResumesBitIdenticalShardedArbF2) {
  Rng gen_rng(19);
  const EdgeList graph = ErdosRenyiGnm(24, 60, gen_rng);
  EdgeStream stream = graph.edges();
  Rng order_rng(20);
  order_rng.Shuffle(stream);

  ArbF2FourCycleCounter golden(
      ArbF2Params(graph.num_vertices(), SketchBackend::kScalar, 1));
  RunEdgeStream(golden, stream);
  const double golden_value = golden.Result().value;
  const std::size_t golden_space = golden.Result().space_words;

  const std::string dir = MakeTempDir("crash_resume_sharded_arbf2");
  for (std::uint64_t kill = 1; kill < stream.size(); ++kill) {
    ArbF2FourCycleCounter victim(
        ArbF2Params(graph.num_vertices(), SketchBackend::kBlock, 4));
    CheckpointPolicy policy;
    policy.directory = dir;
    policy.every_elements = 1;
    FaultPlan faults;
    faults.KillAfterElements(kill);
    RunOptions kill_options;
    kill_options.checkpoint = &policy;
    kill_options.faults = &faults;
    const RunOutcome killed = RunEdgeStream(victim, stream, kill_options);
    ASSERT_FALSE(killed.completed);
    ASSERT_FALSE(killed.checkpoint_path.empty());

    // Resume into a *different* shard count: snapshots are canonical
    // (merge-then-save), so the shard count is free to change across the
    // crash.
    ArbF2FourCycleCounter resumed(
        ArbF2Params(graph.num_vertices(), SketchBackend::kBlock, 8));
    RunOptions resume_options;
    resume_options.resume_from = killed.checkpoint_path;
    const RunOutcome outcome = RunEdgeStream(resumed, stream, resume_options);
    ASSERT_TRUE(outcome.resumed) << "kill point " << kill;
    ASSERT_TRUE(outcome.completed);
    EXPECT_EQ(resumed.Result().value, golden_value) << "kill point " << kill;
    EXPECT_EQ(resumed.Result().space_words, golden_space)
        << "kill point " << kill;
  }
}

// Mid-pass snapshot of a sharded counter with *live* (unfolded) shard
// scratch: SaveState must write the canonical merged form, and that snapshot
// must restore into any shard count and finish to the golden result.
TEST(CrashResumeTest, ShardedArbF2MidPassSnapshotRestoresIntoAnyShardCount) {
  Rng gen_rng(33);
  const EdgeList graph = ErdosRenyiGnm(40, 160, gen_rng);
  EdgeStream stream = graph.edges();
  Rng order_rng(34);
  order_rng.Shuffle(stream);
  const std::size_t half = stream.size() / 2;

  ArbF2FourCycleCounter golden(
      ArbF2Params(graph.num_vertices(), SketchBackend::kScalar, 1));
  RunEdgeStream(golden, stream);
  const double golden_value = golden.Result().value;

  // Feed the first half in blocks through a 4-shard counter and snapshot
  // while the per-shard scratch is still live (no EndPass yet).
  ArbF2FourCycleCounter source(
      ArbF2Params(graph.num_vertices(), SketchBackend::kBlock, 4));
  source.StartPass(0, stream.size());
  constexpr std::size_t kBlock = 32;
  for (std::size_t i = 0; i < half; i += kBlock) {
    const std::size_t n = std::min(kBlock, half - i);
    source.ProcessEdgeBlock(0, std::span<const Edge>(stream.data() + i, n), i);
  }
  StateWriter w;
  ASSERT_TRUE(source.SaveState(w));
  const std::string snapshot = w.str();

  for (const int shards : {1, 4, 8}) {
    SCOPED_TRACE("restore shards=" + std::to_string(shards));
    ArbF2FourCycleCounter resumed(
        ArbF2Params(graph.num_vertices(), SketchBackend::kBlock, shards));
    resumed.StartPass(0, stream.size());
    StateReader r(snapshot);
    ASSERT_TRUE(resumed.RestoreState(r));
    for (std::size_t i = half; i < stream.size(); i += kBlock) {
      const std::size_t n = std::min(kBlock, stream.size() - i);
      resumed.ProcessEdgeBlock(0, std::span<const Edge>(stream.data() + i, n),
                               i);
    }
    resumed.EndPass(0);
    EXPECT_EQ(resumed.Result().value, golden_value);
  }
}

// A simulated EIO on a checkpoint write must not disturb the run: the
// previous snapshot survives, the failure is counted, and the final result
// is unaffected.
TEST(CrashResumeTest, CheckpointWriteFailureDoesNotDisturbRun) {
  Rng gen_rng(7);
  const EdgeList graph = ErdosRenyiGnm(20, 40, gen_rng);
  EdgeStream stream = graph.edges();
  Rng order_rng(9);
  order_rng.Shuffle(stream);

  ArbThreePassFourCycleCounter golden(ArbParams(graph.num_vertices()));
  RunEdgeStream(golden, stream);

  const std::string dir = MakeTempDir("crash_resume_eio");
  ArbThreePassFourCycleCounter counter(ArbParams(graph.num_vertices()));
  CheckpointPolicy policy;
  policy.directory = dir;
  policy.every_elements = 7;
  FaultPlan faults;
  faults.FailCheckpointWrite(1);  // Second write hits a simulated EIO.
  RunOptions options;
  options.checkpoint = &policy;
  options.faults = &faults;
  const RunOutcome outcome = RunEdgeStream(counter, stream, options);
  ASSERT_TRUE(outcome.completed);
  EXPECT_EQ(outcome.checkpoint_failures, 1u);
  EXPECT_GT(outcome.checkpoints_written, 0u);
  EXPECT_EQ(counter.Result().value, golden.Result().value);
}

}  // namespace
}  // namespace cyclestream
