#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "hash/rng.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/l2_sampler.h"
#include "sketch/median_of_means.h"
#include "sketch/reservoir.h"

namespace cyclestream {
namespace {

TEST(MedianOfMeansTest, SingleGroupIsMean) {
  EXPECT_DOUBLE_EQ(MedianOfMeans({1.0, 2.0, 3.0, 4.0}, 1), 2.5);
}

TEST(MedianOfMeansTest, MedianKillsOutlierGroup) {
  // Three groups of two: means 1, 2, 1000 -> median 2.
  EXPECT_DOUBLE_EQ(MedianOfMeans({1.0, 1.0, 2.0, 2.0, 1000.0, 1000.0}, 3),
                   2.0);
}

TEST(AmsF2Test, ExactOnPointMass) {
  AmsF2 sketch(5, 40, 1);
  sketch.Update(123, 7.0);
  // A single coordinate: every basic estimator returns exactly 49.
  EXPECT_NEAR(sketch.Estimate(), 49.0, 1e-9);
}

TEST(AmsF2Test, ApproximatesF2OfRandomVector) {
  Rng rng(2);
  std::map<std::uint64_t, double> x;
  for (int i = 0; i < 500; ++i) {
    x[static_cast<std::uint64_t>(i)] = static_cast<double>(rng.UniformInt(9)) + 1.0;
  }
  double f2 = 0.0;
  AmsF2 sketch(9, 200, 3);
  for (const auto& [key, value] : x) {
    sketch.Update(key, value);
    f2 += value * value;
  }
  EXPECT_NEAR(sketch.Estimate(), f2, 0.25 * f2);
}

TEST(AmsF2Test, TurnstileDeletesCancel) {
  AmsF2 sketch(5, 20, 4);
  for (int i = 0; i < 100; ++i) sketch.Update(i, 5.0);
  for (int i = 0; i < 100; ++i) sketch.Update(i, -5.0);
  EXPECT_NEAR(sketch.Estimate(), 0.0, 1e-9);
}

TEST(AmsF2Test, UnbiasednessOverSeeds) {
  // Average many independent single-estimator sketches of a known vector.
  std::map<std::uint64_t, double> x = {{1, 3.0}, {2, -4.0}, {3, 1.0}};
  const double f2 = 9.0 + 16.0 + 1.0;
  double total = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    AmsF2 sketch(1, 1, 100 + static_cast<std::uint64_t>(t));
    for (const auto& [key, value] : x) sketch.Update(key, value);
    total += sketch.Estimate();
  }
  EXPECT_NEAR(total / trials, f2, 0.1 * f2);
}

TEST(CountSketchTest, PointQueriesOnSparseVector) {
  CountSketch sketch(5, 256, 7);
  sketch.Update(10, 100.0);
  sketch.Update(20, -50.0);
  sketch.Update(30, 25.0);
  EXPECT_NEAR(sketch.Query(10), 100.0, 1e-9);
  EXPECT_NEAR(sketch.Query(20), -50.0, 1e-9);
  EXPECT_NEAR(sketch.Query(99), 0.0, 1e-9);
}

TEST(CountSketchTest, HeavyHitterSurvivesNoise) {
  Rng rng(8);
  CountSketch sketch(7, 512, 9);
  sketch.Update(424242, 1000.0);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(static_cast<std::uint64_t>(i), 1.0);
  }
  EXPECT_NEAR(sketch.Query(424242), 1000.0, 100.0);
}

TEST(CountSketchTest, TurnstileDeletesCancel) {
  CountSketch sketch(5, 128, 10);
  sketch.Update(5, 10.0);
  sketch.Update(5, -10.0);
  EXPECT_NEAR(sketch.Query(5), 0.0, 1e-9);
}

TEST(ReservoirTest, KeepsEverythingUnderCapacity) {
  Reservoir<int> res(10, Rng(11));
  for (int i = 0; i < 7; ++i) res.Add(i);
  EXPECT_EQ(res.items().size(), 7u);
}

TEST(ReservoirTest, CapacityNeverExceeded) {
  Reservoir<int> res(10, Rng(12));
  for (int i = 0; i < 1000; ++i) res.Add(i);
  EXPECT_EQ(res.items().size(), 10u);
  EXPECT_EQ(res.seen(), 1000u);
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Each of 50 items should survive in a size-10 reservoir w.p. 1/5.
  std::vector<int> hits(50, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    Reservoir<int> res(10, Rng(100 + t));
    for (int i = 0; i < 50; ++i) res.Add(i);
    for (int kept : res.items()) ++hits[kept];
  }
  for (int h : hits) {
    EXPECT_NEAR(h / static_cast<double>(trials), 0.2, 0.02);
  }
}

TEST(L2SamplerTest, FindsDominantCoordinate) {
  L2Sampler::Config config;
  config.copies = 32;
  config.sketch_width = 256;
  L2Sampler sampler(config, 13);
  sampler.Update(777, 100.0);  // Dominant: x² fraction ≈ 10000/10900.
  for (int i = 0; i < 100; ++i) {
    sampler.Update(static_cast<std::uint64_t>(i), 3.0);
  }
  const auto sample = sampler.Draw();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->key, 777u);
  EXPECT_NEAR(sample->value_estimate, 100.0, 25.0);
}

TEST(L2SamplerTest, F2EstimateIsSane) {
  L2Sampler::Config config;
  config.copies = 8;
  L2Sampler sampler(config, 14);
  double f2 = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double v = (i % 5) + 1.0;
    sampler.Update(static_cast<std::uint64_t>(i), v);
    f2 += v * v;
  }
  EXPECT_NEAR(sampler.EstimateF2(), f2, 0.3 * f2);
}

TEST(L2SamplerTest, SamplingDistributionTracksSquaredMass) {
  // Vector with x_a = 8, x_b = 4, many unit coordinates: over many sampler
  // instantiations, a should be drawn ≈ 4× as often as b.
  int count_a = 0, count_b = 0, total = 0;
  for (int t = 0; t < 400; ++t) {
    L2Sampler::Config config;
    config.copies = 8;
    config.sketch_width = 128;
    L2Sampler sampler(config, 500 + static_cast<std::uint64_t>(t));
    sampler.Update(1000001, 8.0);
    sampler.Update(1000002, 4.0);
    for (int i = 0; i < 40; ++i) {
      sampler.Update(static_cast<std::uint64_t>(i), 1.0);
    }
    for (const auto& s : sampler.DrawAll()) {
      ++total;
      if (s.key == 1000001u) ++count_a;
      if (s.key == 1000002u) ++count_b;
    }
  }
  ASSERT_GT(total, 50);
  // P[a]/P[b] should be near 64/16 = 4 (loose tolerance: this is a
  // statistical property of an approximate sampler).
  ASSERT_GT(count_b, 0);
  const double ratio = static_cast<double>(count_a) / count_b;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 9.0);
}

}  // namespace
}  // namespace cyclestream
