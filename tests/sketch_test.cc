#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "hash/kwise_kernels.h"
#include "hash/rng.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/l2_sampler.h"
#include "sketch/median_of_means.h"
#include "sketch/reservoir.h"
#include "sketch/sharded.h"
#include "sketch/sketch_backend.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

// Serialized state bytes — the strongest equality on a sketch: identical
// bytes mean identical counters bit for bit.
template <typename Sketch>
std::string StateBytes(const Sketch& sketch) {
  StateWriter w;
  sketch.SaveState(w);
  return w.str();
}

std::vector<std::uint64_t> UpdateKeys(std::size_t count, std::uint64_t seed) {
  std::vector<std::uint64_t> keys(count);
  std::uint64_t s = seed;
  for (auto& k : keys) k = SplitMix64(s) % 997;  // Repeated keys.
  return keys;
}

TEST(MedianOfMeansTest, SingleGroupIsMean) {
  EXPECT_DOUBLE_EQ(MedianOfMeans({1.0, 2.0, 3.0, 4.0}, 1), 2.5);
}

TEST(MedianOfMeansTest, MedianKillsOutlierGroup) {
  // Three groups of two: means 1, 2, 1000 -> median 2.
  EXPECT_DOUBLE_EQ(MedianOfMeans({1.0, 1.0, 2.0, 2.0, 1000.0, 1000.0}, 3),
                   2.0);
}

TEST(AmsF2Test, ExactOnPointMass) {
  AmsF2 sketch(5, 40, 1);
  sketch.Update(123, 7.0);
  // A single coordinate: every basic estimator returns exactly 49.
  EXPECT_NEAR(sketch.Estimate(), 49.0, 1e-9);
}

TEST(AmsF2Test, ApproximatesF2OfRandomVector) {
  Rng rng(2);
  std::map<std::uint64_t, double> x;
  for (int i = 0; i < 500; ++i) {
    x[static_cast<std::uint64_t>(i)] = static_cast<double>(rng.UniformInt(9)) + 1.0;
  }
  double f2 = 0.0;
  AmsF2 sketch(9, 200, 3);
  for (const auto& [key, value] : x) {
    sketch.Update(key, value);
    f2 += value * value;
  }
  EXPECT_NEAR(sketch.Estimate(), f2, 0.25 * f2);
}

TEST(AmsF2Test, TurnstileDeletesCancel) {
  AmsF2 sketch(5, 20, 4);
  for (int i = 0; i < 100; ++i) sketch.Update(i, 5.0);
  for (int i = 0; i < 100; ++i) sketch.Update(i, -5.0);
  EXPECT_NEAR(sketch.Estimate(), 0.0, 1e-9);
}

TEST(AmsF2Test, UnbiasednessOverSeeds) {
  // Average many independent single-estimator sketches of a known vector.
  std::map<std::uint64_t, double> x = {{1, 3.0}, {2, -4.0}, {3, 1.0}};
  const double f2 = 9.0 + 16.0 + 1.0;
  double total = 0.0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    AmsF2 sketch(1, 1, 100 + static_cast<std::uint64_t>(t));
    for (const auto& [key, value] : x) sketch.Update(key, value);
    total += sketch.Estimate();
  }
  EXPECT_NEAR(total / trials, f2, 0.1 * f2);
}

TEST(CountSketchTest, PointQueriesOnSparseVector) {
  CountSketch sketch(5, 256, 7);
  sketch.Update(10, 100.0);
  sketch.Update(20, -50.0);
  sketch.Update(30, 25.0);
  EXPECT_NEAR(sketch.Query(10), 100.0, 1e-9);
  EXPECT_NEAR(sketch.Query(20), -50.0, 1e-9);
  EXPECT_NEAR(sketch.Query(99), 0.0, 1e-9);
}

TEST(CountSketchTest, HeavyHitterSurvivesNoise) {
  Rng rng(8);
  CountSketch sketch(7, 512, 9);
  sketch.Update(424242, 1000.0);
  for (int i = 0; i < 2000; ++i) {
    sketch.Update(static_cast<std::uint64_t>(i), 1.0);
  }
  EXPECT_NEAR(sketch.Query(424242), 1000.0, 100.0);
}

TEST(CountSketchTest, TurnstileDeletesCancel) {
  CountSketch sketch(5, 128, 10);
  sketch.Update(5, 10.0);
  sketch.Update(5, -10.0);
  EXPECT_NEAR(sketch.Query(5), 0.0, 1e-9);
}

TEST(ReservoirTest, KeepsEverythingUnderCapacity) {
  Reservoir<int> res(10, Rng(11));
  for (int i = 0; i < 7; ++i) res.Add(i);
  EXPECT_EQ(res.items().size(), 7u);
}

TEST(ReservoirTest, CapacityNeverExceeded) {
  Reservoir<int> res(10, Rng(12));
  for (int i = 0; i < 1000; ++i) res.Add(i);
  EXPECT_EQ(res.items().size(), 10u);
  EXPECT_EQ(res.seen(), 1000u);
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Each of 50 items should survive in a size-10 reservoir w.p. 1/5.
  std::vector<int> hits(50, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    Reservoir<int> res(10, Rng(100 + t));
    for (int i = 0; i < 50; ++i) res.Add(i);
    for (int kept : res.items()) ++hits[kept];
  }
  for (int h : hits) {
    EXPECT_NEAR(h / static_cast<double>(trials), 0.2, 0.02);
  }
}

TEST(L2SamplerTest, FindsDominantCoordinate) {
  L2Sampler::Config config;
  config.copies = 32;
  config.sketch_width = 256;
  L2Sampler sampler(config, 13);
  sampler.Update(777, 100.0);  // Dominant: x² fraction ≈ 10000/10900.
  for (int i = 0; i < 100; ++i) {
    sampler.Update(static_cast<std::uint64_t>(i), 3.0);
  }
  const auto sample = sampler.Draw();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->key, 777u);
  EXPECT_NEAR(sample->value_estimate, 100.0, 25.0);
}

TEST(L2SamplerTest, F2EstimateIsSane) {
  L2Sampler::Config config;
  config.copies = 8;
  L2Sampler sampler(config, 14);
  double f2 = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double v = (i % 5) + 1.0;
    sampler.Update(static_cast<std::uint64_t>(i), v);
    f2 += v * v;
  }
  EXPECT_NEAR(sampler.EstimateF2(), f2, 0.3 * f2);
}

TEST(L2SamplerTest, SamplingDistributionTracksSquaredMass) {
  // Vector with x_a = 8, x_b = 4, many unit coordinates: over many sampler
  // instantiations, a should be drawn ≈ 4× as often as b.
  int count_a = 0, count_b = 0, total = 0;
  for (int t = 0; t < 400; ++t) {
    L2Sampler::Config config;
    config.copies = 8;
    config.sketch_width = 128;
    L2Sampler sampler(config, 500 + static_cast<std::uint64_t>(t));
    sampler.Update(1000001, 8.0);
    sampler.Update(1000002, 4.0);
    for (int i = 0; i < 40; ++i) {
      sampler.Update(static_cast<std::uint64_t>(i), 1.0);
    }
    for (const auto& s : sampler.DrawAll()) {
      ++total;
      if (s.key == 1000001u) ++count_a;
      if (s.key == 1000002u) ++count_b;
    }
  }
  ASSERT_GT(total, 50);
  // P[a]/P[b] should be near 64/16 = 4 (loose tolerance: this is a
  // statistical property of an approximate sampler).
  ASSERT_GT(count_b, 0);
  const double ratio = static_cast<double>(count_a) / count_b;
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 9.0);
}

// ---------------------------------------------------------------------------
// Block-update equivalence: UpdateBlock must leave the sketch in a state that
// is bit-identical (serialized bytes) to the same keys fed one at a time.
// ---------------------------------------------------------------------------

TEST(SketchBlockTest, AmsF2UpdateBlockMatchesPerKey) {
  for (std::size_t block : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                            std::size_t{1000}}) {
    const auto keys = UpdateKeys(2048, 0xB10C + block);
    AmsF2 per_key(7, 96, 21);
    AmsF2 blocked(7, 96, 21);
    for (std::uint64_t k : keys) per_key.Update(k, 1.0);
    std::span<const std::uint64_t> rest(keys);
    while (!rest.empty()) {
      const std::size_t n = std::min(block, rest.size());
      blocked.UpdateBlock(rest.subspan(0, n), 1.0);
      rest = rest.subspan(n);
    }
    EXPECT_EQ(StateBytes(per_key), StateBytes(blocked)) << "block=" << block;
    EXPECT_EQ(per_key.Estimate(), blocked.Estimate()) << "block=" << block;
  }
}

TEST(SketchBlockTest, CountSketchUpdateBlockMatchesPerKey) {
  // Both a power-of-two width (mask path) and a non-power width (mod path).
  for (std::size_t width : {std::size_t{512}, std::size_t{100}}) {
    for (double delta : {1.0, -3.0}) {
      const auto keys = UpdateKeys(1536, 0xC5 + width);
      CountSketch per_key(5, width, 33);
      CountSketch blocked(5, width, 33);
      for (std::uint64_t k : keys) per_key.Update(k, delta);
      // Deliberately ragged block sizes (not divisible by any lane width).
      std::span<const std::uint64_t> rest(keys);
      std::size_t step = 1;
      while (!rest.empty()) {
        const std::size_t n = std::min(step, rest.size());
        blocked.UpdateBlock(rest.subspan(0, n), delta);
        rest = rest.subspan(n);
        step = step * 2 + 1;  // 1, 3, 7, 15, ...
      }
      EXPECT_EQ(StateBytes(per_key), StateBytes(blocked))
          << "width=" << width << " delta=" << delta;
      EXPECT_EQ(per_key.Query(keys[0]), blocked.Query(keys[0]));
    }
  }
}

TEST(SketchBlockTest, L2SamplerUpdateBlockMatchesPerKey) {
  L2Sampler::Config config;
  config.copies = 8;
  config.sketch_width = 128;
  const auto keys = UpdateKeys(800, 0x12);
  L2Sampler per_key(config, 44);
  L2Sampler blocked(config, 44);
  for (std::uint64_t k : keys) per_key.Update(k, 1.0);
  std::span<const std::uint64_t> rest(keys);
  while (!rest.empty()) {
    const std::size_t n = std::min<std::size_t>(37, rest.size());
    blocked.UpdateBlock(rest.subspan(0, n), 1.0);
    rest = rest.subspan(n);
  }
  EXPECT_EQ(StateBytes(per_key), StateBytes(blocked));
  EXPECT_EQ(per_key.EstimateF2(), blocked.EstimateF2());
  const auto a = per_key.Draw();
  const auto b = blocked.Draw();
  ASSERT_EQ(a.has_value(), b.has_value());
  if (a.has_value()) {
    EXPECT_EQ(a->key, b->key);
    EXPECT_EQ(a->value_estimate, b->value_estimate);
  }
}

TEST(SketchBlockTest, EmptyBlockIsANoOp) {
  AmsF2 ams(5, 40, 1);
  CountSketch cs(5, 128, 2);
  L2Sampler::Config config;
  L2Sampler sampler(config, 3);
  const std::string ams_before = StateBytes(ams);
  const std::string cs_before = StateBytes(cs);
  const std::string sampler_before = StateBytes(sampler);
  ams.UpdateBlock({}, 1.0);
  cs.UpdateBlock({}, 1.0);
  sampler.UpdateBlock({}, 1.0);
  EXPECT_EQ(StateBytes(ams), ams_before);
  EXPECT_EQ(StateBytes(cs), cs_before);
  EXPECT_EQ(StateBytes(sampler), sampler_before);
}

TEST(SketchBlockTest, BlockPathBitIdenticalAcrossSimdTiers) {
  // Same key sequence through the forced-scalar kernels and through the
  // auto-dispatched (AVX2/AVX-512 when available) kernels: serialized sketch
  // state must agree byte for byte.
  const auto keys = UpdateKeys(4096, 0x51D);
  const SketchSimdMode saved = GetSketchSimdMode();
  SetSketchSimdMode(SketchSimdMode::kScalar);
  AmsF2 scalar_ams(7, 96, 5);
  CountSketch scalar_cs(5, 100, 6);
  scalar_ams.UpdateBlock(keys, 1.0);
  scalar_cs.UpdateBlock(keys, -2.0);
  SetSketchSimdMode(SketchSimdMode::kAuto);
  AmsF2 auto_ams(7, 96, 5);
  CountSketch auto_cs(5, 100, 6);
  auto_ams.UpdateBlock(keys, 1.0);
  auto_cs.UpdateBlock(keys, -2.0);
  SetSketchSimdMode(saved);
  EXPECT_EQ(StateBytes(scalar_ams), StateBytes(auto_ams));
  EXPECT_EQ(StateBytes(scalar_cs), StateBytes(auto_cs));
}

// ---------------------------------------------------------------------------
// ShardedSketch: merged state must match the unsharded sketch bit for bit at
// every shard count, and checkpoints must restore across shard counts.
// ---------------------------------------------------------------------------

TEST(ShardedSketchTest, MergedStateMatchesUnshardedAcrossShardCounts) {
  SetDefaultThreads(8);
  const auto keys = UpdateKeys(3000, 0x5A4D);
  AmsF2 ref_ams(7, 96, 77);
  CountSketch ref_cs(5, 512, 78);
  std::span<const std::uint64_t> rest(keys);
  while (!rest.empty()) {
    const std::size_t n = std::min<std::size_t>(512, rest.size());
    ref_ams.UpdateBlock(rest.subspan(0, n), 1.0);
    ref_cs.UpdateBlock(rest.subspan(0, n), 1.0);
    rest = rest.subspan(n);
  }
  for (int shards : {1, 4, 8}) {
    ShardedSketch<AmsF2> sharded_ams([] { return AmsF2(7, 96, 77); }, shards);
    ShardedSketch<CountSketch> sharded_cs(
        [] { return CountSketch(5, 512, 78); }, shards);
    std::span<const std::uint64_t> r2(keys);
    while (!r2.empty()) {
      const std::size_t n = std::min<std::size_t>(512, r2.size());
      sharded_ams.UpdateBlock(r2.subspan(0, n), 1.0);
      sharded_cs.UpdateBlock(r2.subspan(0, n), 1.0);
      r2 = r2.subspan(n);
    }
    EXPECT_EQ(StateBytes(ref_ams), StateBytes(sharded_ams.Merged()))
        << "shards=" << shards;
    EXPECT_EQ(StateBytes(ref_cs), StateBytes(sharded_cs.Merged()))
        << "shards=" << shards;
    // The wrapper's own SaveState is the canonical merged form.
    StateWriter w;
    sharded_ams.SaveState(w);
    EXPECT_EQ(StateBytes(ref_ams), w.str()) << "shards=" << shards;
  }
}

TEST(ShardedSketchTest, CheckpointRestoresIntoAnyShardCount) {
  SetDefaultThreads(8);
  const auto head = UpdateKeys(1200, 0xAA);
  const auto tail = UpdateKeys(1300, 0xBB);
  // Reference: all keys through a single unsharded sketch.
  AmsF2 ref(7, 96, 91);
  ref.UpdateBlock(head, 1.0);
  ref.UpdateBlock(tail, 1.0);
  // Checkpoint a 4-shard sketch mid-stream with live (unmerged) shards.
  auto factory = [] { return AmsF2(7, 96, 91); };
  ShardedSketch<AmsF2> source(factory, 4);
  source.UpdateBlock(head, 1.0);
  StateWriter w;
  source.SaveState(w);
  const std::string snapshot = w.str();
  // Restore into different shard counts and finish the stream in each.
  for (int shards : {1, 4, 8}) {
    ShardedSketch<AmsF2> resumed(factory, shards);
    StateReader r(snapshot);
    ASSERT_TRUE(resumed.RestoreState(r)) << "shards=" << shards;
    resumed.UpdateBlock(tail, 1.0);
    EXPECT_EQ(StateBytes(ref), StateBytes(resumed.Merged()))
        << "shards=" << shards;
  }
}

}  // namespace
}  // namespace cyclestream
