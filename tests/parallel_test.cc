#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cyclestream {
namespace {

// Restores the process-wide thread budget after each test so suites do not
// leak configuration into each other.
class ParallelTest : public ::testing::Test {
 protected:
  ~ParallelTest() override { SetDefaultThreads(0); }
};

TEST_F(ParallelTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  auto doubled = pool.Submit([] { return 21 * 2; });
  auto text = pool.Submit([] { return std::string("done"); });
  EXPECT_EQ(doubled.get(), 42);
  EXPECT_EQ(text.get(), "done");
}

TEST_F(ParallelTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      futures.push_back(pool.Submit(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    }
    pool.Shutdown();  // Must run everything already queued, then join.
    EXPECT_EQ(ran.load(), 64);
    pool.Shutdown();  // Idempotent.
  }
  for (auto& f : futures) f.get();  // All futures are satisfied.
}

TEST_F(ParallelTest, DestructorActsAsShutdown) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST_F(ParallelTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  auto failing = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto healthy = pool.Submit([] { return 7; });
  EXPECT_THROW(failing.get(), std::runtime_error);
  EXPECT_EQ(healthy.get(), 7);  // One failure does not poison the pool.
}

TEST_F(ParallelTest, NestedSubmitDoesNotDeadlock) {
  // A task submitting further work into its own pool must not deadlock,
  // even on a single-worker pool (the nested task is queued, not awaited
  // from inside the worker).
  ThreadPool pool(1);
  std::atomic<int> inner_ran{0};
  auto outer = pool.Submit([&pool, &inner_ran] {
    pool.Submit([&inner_ran] {
      inner_ran.fetch_add(1, std::memory_order_relaxed);
    });
  });
  outer.get();
  pool.Shutdown();  // Drains the nested task.
  EXPECT_EQ(inner_ran.load(), 1);
}

TEST_F(ParallelTest, ParallelForCoversEveryIndexOnce) {
  SetDefaultThreads(8);
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ParallelForRethrowsFirstException) {
  SetDefaultThreads(4);
  EXPECT_THROW(ParallelFor(256,
                           [](std::size_t i) {
                             if (i == 100) {
                               throw std::runtime_error("item 100 failed");
                             }
                           }),
               std::runtime_error);
}

TEST_F(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  SetDefaultThreads(2);  // One worker + caller: nesting must not wait on it.
  std::atomic<int> total{0};
  ParallelFor(8, [&total](std::size_t) {
    ParallelFor(8, [&total](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST_F(ParallelTest, ParallelMapMatchesSerialAtAnyThreadCount) {
  auto square = [](std::size_t i) {
    return static_cast<double>(i) * static_cast<double>(i);
  };
  SetDefaultThreads(1);
  const std::vector<double> serial = ParallelMap(257, square);
  for (const int threads : {2, 5, 8}) {
    SetDefaultThreads(threads);
    EXPECT_EQ(ParallelMap(257, square), serial) << threads << " threads";
  }
}

TEST_F(ParallelTest, ParallelMapHandlesEmptyAndSingleton) {
  SetDefaultThreads(8);
  EXPECT_TRUE(ParallelMap(0, [](std::size_t i) { return i; }).empty());
  const auto one = ParallelMap(1, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

TEST_F(ParallelTest, DefaultThreadsResolvesToAtLeastOne) {
  SetDefaultThreads(0);
  EXPECT_GE(DefaultThreads(), 1);
  SetDefaultThreads(3);
  EXPECT_EQ(DefaultThreads(), 3);
}

TEST_F(ParallelTest, PoolActuallyRunsConcurrently) {
  // With 4 threads, 4 sleeping items must overlap: total wall clock well
  // under the serial 4 x 50ms. Generous bound to stay CI-safe.
  SetDefaultThreads(4);
  const auto start = std::chrono::steady_clock::now();
  ParallelFor(4, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            150);
}

}  // namespace
}  // namespace cyclestream
