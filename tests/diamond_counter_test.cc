#include <gtest/gtest.h>

#include <cmath>

#include "core/diamond_counter.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/stats.h"

namespace cyclestream {
namespace {

DiamondFourCycleCounter::Params MakeParams(const Graph& g, double t_guess,
                                           double epsilon, std::uint64_t seed,
                                           double c = 1.0) {
  DiamondFourCycleCounter::Params params;
  params.base.epsilon = epsilon;
  params.base.c = c;
  params.base.t_guess = std::max(1.0, t_guess);
  params.base.seed = seed;
  params.num_vertices = g.num_vertices();
  return params;
}

double MedianEstimate(const Graph& g, double t_guess, double epsilon,
                      int trials, double c = 1.0, int max_shifts = -1) {
  std::vector<double> estimates;
  for (int t = 0; t < trials; ++t) {
    Rng rng(7000 + t);
    const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
    auto params = MakeParams(g, t_guess, epsilon, 60 + t, c);
    params.max_shifts = max_shifts;
    estimates.push_back(CountFourCyclesDiamond(stream, params).value);
  }
  return Summarize(estimates).median;
}

TEST(DiamondCounterTest, ExactRegimeOnPlantedDiamonds) {
  // Saturated rates (huge c): d̂ = d exactly, the Useful instances run at
  // p = 1, and the only slack left is the shift/window bookkeeping, which
  // must not lose diamonds that sit strictly inside some window.
  Rng gen(1);
  EdgeList base(1);
  base.Finalize();
  const EdgeList list =
      PlantDiamonds(std::move(base), {DiamondSpec{6, 10}}, gen);
  const Graph g(list);
  const double exact = static_cast<double>(CountFourCycles(g));  // 150.
  ASSERT_EQ(exact, 150.0);
  Rng rng(2);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  const Estimate est = CountFourCyclesDiamond(
      stream, MakeParams(g, exact, 0.2, 3, /*c=*/1e5));
  EXPECT_NEAR(est.value, exact, 0.1 * exact);
}

TEST(DiamondCounterTest, MixedDiamondSizes) {
  Rng gen(4);
  EdgeList base(1);
  base.Finalize();
  const EdgeList list = PlantDiamonds(
      std::move(base),
      {DiamondSpec{2, 40}, DiamondSpec{5, 12}, DiamondSpec{17, 3}}, gen);
  const Graph g(list);
  const double exact = static_cast<double>(CountFourCycles(g));
  Rng rng(5);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  const Estimate est = CountFourCyclesDiamond(
      stream, MakeParams(g, exact, 0.15, 6, /*c=*/1e5));
  EXPECT_NEAR(est.value, exact, 0.15 * exact);
}

TEST(DiamondCounterTest, MedianAccurateUnderRealSampling) {
  // Moderate c so pv/pe are genuinely < 1 for the relevant classes.
  Rng gen(7);
  EdgeList base = ErdosRenyiGnm(800, 1600, gen);
  const EdgeList list = PlantDiamonds(
      std::move(base), {DiamondSpec{12, 30}, DiamondSpec{4, 50}}, gen);
  const Graph g(list);
  const double exact = static_cast<double>(CountFourCycles(g));
  const double median = MedianEstimate(g, exact, 0.25, 10, /*c=*/3.0);
  EXPECT_NEAR(median, exact, 0.35 * exact);
}

TEST(DiamondCounterTest, FourCycleFreeGivesNearZero) {
  Rng gen(8);
  const Graph g(FourCycleFreeRandom(400, 800, false, gen));
  ASSERT_EQ(CountFourCycles(g), 0u);
  Rng rng(9);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  const Estimate est =
      CountFourCyclesDiamond(stream, MakeParams(g, 64.0, 0.25, 10, 2.0));
  EXPECT_LT(est.value, 32.0);
}

TEST(DiamondCounterTest, ShiftEstimatesExposed) {
  Rng gen(11);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{3, 5}}, gen));
  Rng rng(12);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  DiamondFourCycleCounter counter(MakeParams(g, 15.0, 0.2, 13, 1e4));
  RunAdjacencyStream(counter, stream);
  EXPECT_FALSE(counter.ShiftEstimates().empty());
  // The result is max-over-shifts / 2.
  double best = 0.0;
  for (double s : counter.ShiftEstimates()) best = std::max(best, s);
  EXPECT_DOUBLE_EQ(counter.Result().value, best / 2.0);
}

TEST(DiamondCounterTest, SpaceShrinksWithT) {
  // At fixed m, planting more cycles (larger T-guess) must cut the space.
  Rng gen(14);
  const EdgeList base = ErdosRenyiGnm(3000, 9000, gen);
  std::vector<std::size_t> spaces;
  for (const std::uint32_t h : {4u, 16u, 64u}) {
    Rng g2(15);
    EdgeList graph = base;
    const Graph g(PlantDiamonds(std::move(graph), {DiamondSpec{h, 20}}, g2));
    const double t = static_cast<double>(CountFourCycles(g));
    Rng rng(16);
    const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
    auto params = MakeParams(g, t, 0.3, 17, 1.0);
    params.max_shifts = 2;
    const Estimate est = CountFourCyclesDiamond(stream, params);
    spaces.push_back(est.space_words);
  }
  EXPECT_GT(spaces.front(), spaces.back());
}

}  // namespace
}  // namespace cyclestream
