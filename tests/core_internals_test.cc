// Deterministic small-case checks of the algorithmic internals: exact
// scaling identities at saturated rates, boundary/window arithmetic, and
// the subsampling equation of §5.1. These complement the statistical tests
// with cases whose outcomes are computable by hand.

#include <gtest/gtest.h>

#include <cmath>

#include "core/adj_f2_counter.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "tests/test_util.h"

namespace cyclestream {
namespace {

using ::cyclestream::testing::Clique;
using ::cyclestream::testing::CycleGraph;

// ---------- §2.1 internals ----------

// At saturated rates the estimator decomposes exactly: all-light graphs are
// counted entirely by the light term.
TEST(RandomOrderInternals, LightTermCarriesAllLightGraphs) {
  Rng gen(1);
  EdgeList graph = PlantTriangles(EdgeList(1), 30, gen);
  Rng rng(2);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  RandomOrderTriangleCounter::Params params;
  params.base.epsilon = 0.2;
  params.base.c = 1e5;
  params.base.t_guess = 1e8;  // Heavy cut far above every t_e = 1.
  params.base.seed = 3;
  params.num_vertices = graph.num_vertices();
  RandomOrderTriangleCounter counter(params);
  RunEdgeStream(counter, stream);
  EXPECT_NEAR(counter.diagnostics().light_term, 30.0, 1e-9);
  EXPECT_NEAR(counter.diagnostics().heavy_term, 0.0, 1e-9);
}

// Book spines (one heavy edge per triangle) must flow through the heavy
// term with coefficient 1 (both companions light): at saturated rates the
// estimate recovers nearly all of T, losing only spines that arrive inside
// the earliest prefix (the P-eligibility window).
TEST(RandomOrderInternals, BookSpinesCountedViaHeavyTerm) {
  Rng gen(4);
  EdgeList graph(1);
  graph.Finalize();
  for (int i = 0; i < 40; ++i) graph = PlantBook(std::move(graph), 30, gen);
  const Graph g(graph);
  const double exact = static_cast<double>(CountTriangles(g));  // 1200.
  ASSERT_EQ(exact, 1200.0);

  Rng rng(5);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  RandomOrderTriangleCounter::Params params;
  params.base.epsilon = 0.2;
  params.base.c = 1e5;          // Vertex/edge rates saturate (p = 1).
  params.base.t_guess = 400.0;  // Cut = sqrt(400) = 20 < t_e(spine) = 30.
  params.base.seed = 6;
  params.num_vertices = graph.num_vertices();
  RandomOrderTriangleCounter counter(params);
  RunEdgeStream(counter, stream);
  // Every triangle has its spine heavy and both page edges light: the light
  // term is 0 and the heavy term carries everything whose spine entered P.
  EXPECT_NEAR(counter.diagnostics().light_term, 0.0, 1e-9);
  EXPECT_LE(counter.Result().value, exact + 1e-9);
  EXPECT_GE(counter.Result().value, 0.8 * exact);
}

// ---------- §4.1 internals ----------

// Window arithmetic: a diamond whose size sits dead-center in a class
// window must be counted by some shift; one at a boundary must never be
// counted twice within one shift (the estimate never exceeds (1+eps)·2T
// before halving).
TEST(DiamondInternals, EstimateBoundedByWindowDisjointness) {
  Rng gen(7);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{8, 6}}, gen));
  const double exact = static_cast<double>(CountFourCycles(g));
  for (int shift_count : {1, 4, -1}) {
    const AdjacencyStream stream = MakeAdjacencyStreamById(g);
    DiamondFourCycleCounter::Params params;
    params.base.epsilon = 0.2;
    params.base.c = 1e5;
    params.base.t_guess = exact;
    params.base.seed = 9;
    params.num_vertices = g.num_vertices();
    params.max_shifts = shift_count;
    DiamondFourCycleCounter counter(params);
    RunAdjacencyStream(counter, stream);
    // Every per-shift sum counts each diamond at most once: sum <= 2T(1+eps).
    for (double s : counter.ShiftEstimates()) {
      EXPECT_LE(s, 2.0 * exact * 1.25 + 1e-6);
    }
    if (shift_count == 1) {
      // Size-8 diamonds fall in the first shift's window *gap* — a single
      // shift legitimately misses them (this is why the shifts exist).
      EXPECT_LE(counter.Result().value, exact);
    } else {
      // With the full shift complement some shift's window covers size 8
      // and the best shift captures everything at saturated rates.
      EXPECT_NEAR(counter.Result().value, exact, 0.1 * exact);
    }
  }
}

// A graph whose diamonds all have size exactly 2 (disjoint C4s) exercises
// the smallest class and its guarded normalization.
TEST(DiamondInternals, SmallestClassHandlesSizeTwoDiamonds) {
  Rng gen(10);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantFourCycles(std::move(base), 25, gen));
  const AdjacencyStream stream = MakeAdjacencyStreamById(g);
  DiamondFourCycleCounter::Params params;
  params.base.epsilon = 0.2;
  params.base.c = 1e5;
  params.base.t_guess = 25.0;
  params.base.seed = 11;
  params.num_vertices = g.num_vertices();
  const Estimate est = CountFourCyclesDiamond(stream, params);
  EXPECT_NEAR(est.value, 25.0, 2.5);
}

// ---------- §4.2 internals ----------

// On a graph with an empty wedge vector, F2 and F1 estimates must be 0.
TEST(AdjF2Internals, NoWedgesMeansZero) {
  EdgeList matching(8);
  matching.Add(0, 1);
  matching.Add(2, 3);
  matching.Add(4, 5);
  matching.Add(6, 7);
  matching.Finalize();
  const Graph g(matching);
  const AdjacencyStream stream = MakeAdjacencyStreamById(g);
  AdjF2FourCycleCounter::Params params;
  params.base.epsilon = 0.25;
  params.base.t_guess = 1.0;
  params.base.seed = 12;
  params.num_vertices = 8;
  params.copies_per_group = 8;
  params.pair_rate = 1.0;
  AdjF2FourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  EXPECT_NEAR(counter.F2Estimate(), 0.0, 1e-9);
  EXPECT_NEAR(counter.F1Estimate(), 0.0, 1e-9);
  EXPECT_EQ(counter.Result().value, 0.0);
}

// A single wedge (path of length 2): F2(x) = 1 exactly, for every copy —
// the basic estimator is deterministic on unit vectors (Z = ±1, 2Z² = 2,
// E over signs is 1... actually Z = ±1/2·2 = ±1 ⇒ 2Z²= 2).
// The exact value: one pair {u,v} with x=1 ⇒ F2 = 1; the estimator returns
// 2Z² where Z = (α_u β_v + α_v β_u)/2 ∈ {-1, 0, +1}. So individual copies
// vary; the median-of-means over many copies lands near 1.
TEST(AdjF2Internals, SingleWedgeF2NearOne) {
  EdgeList wedge(3);
  wedge.Add(0, 1);
  wedge.Add(1, 2);
  wedge.Finalize();
  const Graph g(wedge);
  const AdjacencyStream stream = MakeAdjacencyStreamById(g);
  AdjF2FourCycleCounter::Params params;
  params.base.epsilon = 0.25;
  params.base.t_guess = 1.0;
  params.base.seed = 13;
  params.num_vertices = 3;
  params.copies_per_group = 512;
  params.pair_rate = 1.0;
  AdjF2FourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  EXPECT_NEAR(counter.F2Estimate(), 1.0, 0.35);
  EXPECT_NEAR(counter.F1Estimate(), 1.0, 1e-9);
}

// ---------- Cross-checks on classic graphs ----------

TEST(ClassicGraphs, C6HasNoFourCyclesUnderEveryCounter) {
  const Graph g(CycleGraph(6));
  const AdjacencyStream stream = MakeAdjacencyStreamById(g);
  DiamondFourCycleCounter::Params params;
  params.base.epsilon = 0.25;
  params.base.c = 1e4;
  params.base.t_guess = 1.0;
  params.base.seed = 14;
  params.num_vertices = 6;
  EXPECT_NEAR(CountFourCyclesDiamond(stream, params).value, 0.0, 0.6);

  AdjF2FourCycleCounter::Params f2;
  f2.base.epsilon = 0.25;
  f2.base.t_guess = 1.0;
  f2.base.seed = 15;
  f2.num_vertices = 6;
  f2.copies_per_group = 256;
  f2.pair_rate = 1.0;
  AdjF2FourCycleCounter counter(f2);
  RunAdjacencyStream(counter, stream);
  // F2 = 6 (each of the 6 second-neighbor pairs has x = 1... in C6 each
  // pair at distance 2 has exactly one common neighbor, and the three
  // antipodal pairs have two). Exact: 6 pairs x=1, 3 pairs x=2 ⇒ wait —
  // antipodal vertices in C6 have two common neighbors? Vertex 0 and 3:
  // neighbors {1,5} and {2,4}: disjoint ⇒ x=0. Distance-2 pairs: {0,2}
  // share vertex 1 only ⇒ x=1; there are 6 such pairs ⇒ F2 = 6, T = 0.
  const WedgeVector x = ComputeWedgeVector(g);
  EXPECT_EQ(WedgeVectorF2(x), 6u);
  EXPECT_NEAR(counter.F2Estimate(), 6.0, 2.5);
  EXPECT_EQ(CountFourCyclesFromWedges(x), 0u);
}

}  // namespace
}  // namespace cyclestream
