#ifndef CYCLESTREAM_TESTS_TEST_UTIL_H_
#define CYCLESTREAM_TESTS_TEST_UTIL_H_

#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"

namespace cyclestream::testing {

/// K_n clique.
inline EdgeList Clique(VertexId n) {
  EdgeList list(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) list.Add(u, v);
  }
  list.Finalize();
  return list;
}

/// Cycle graph C_n.
inline EdgeList CycleGraph(VertexId n) {
  EdgeList list(n);
  for (VertexId v = 0; v < n; ++v) list.Add(v, (v + 1) % n);
  list.Finalize();
  return list;
}

/// Star K_{1,n-1} centered at 0.
inline EdgeList Star(VertexId n) {
  EdgeList list(n);
  for (VertexId v = 1; v < n; ++v) list.Add(0, v);
  list.Finalize();
  return list;
}

/// Path P_n.
inline EdgeList Path(VertexId n) {
  EdgeList list(n);
  for (VertexId v = 0; v + 1 < n; ++v) list.Add(v, v + 1);
  list.Finalize();
  return list;
}

}  // namespace cyclestream::testing

#endif  // CYCLESTREAM_TESTS_TEST_UTIL_H_
