// Property-based tests (parameterized sweeps) over the statistical
// invariants the library's components promise:
//   - generator counts match closed forms across parameter grids,
//   - exact-counter identities hold on random graphs,
//   - estimators are unbiased / concentrate across seed sweeps,
//   - stream orderings preserve multisets under every seed,
//   - hash-derived sampling matches its nominal rate across rates.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/random_order_triangles.h"
#include "core/useful_algorithm.h"
#include "gen/generators.h"
#include "gen/lower_bound.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "hash/kwise.h"
#include "stream/order.h"
#include "util/stats.h"

namespace cyclestream {
namespace {

// ---------- Generator closed forms ----------

class CompleteBipartiteProperty
    : public ::testing::TestWithParam<std::pair<VertexId, VertexId>> {};

TEST_P(CompleteBipartiteProperty, CycleCountClosedForm) {
  const auto [a, b] = GetParam();
  const Graph g(CompleteBipartite(a, b));
  const std::uint64_t expected = static_cast<std::uint64_t>(a) * (a - 1) / 2 *
                                 b * (b - 1) / 2;
  EXPECT_EQ(CountFourCycles(g), expected);
  EXPECT_EQ(CountTriangles(g), 0u);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(a) * b);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompleteBipartiteProperty,
    ::testing::Values(std::pair<VertexId, VertexId>{2, 2},
                      std::pair<VertexId, VertexId>{2, 9},
                      std::pair<VertexId, VertexId>{5, 5},
                      std::pair<VertexId, VertexId>{3, 17},
                      std::pair<VertexId, VertexId>{10, 12}));

class CliqueProperty : public ::testing::TestWithParam<VertexId> {};

TEST_P(CliqueProperty, CountClosedForms) {
  const VertexId n = GetParam();
  EdgeList list(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) list.Add(u, v);
  }
  list.Finalize();
  const Graph g(list);
  // K_n: C(n,3) triangles, 3·C(n,4) four-cycles.
  const std::uint64_t nn = n;
  EXPECT_EQ(CountTriangles(g), nn * (nn - 1) * (nn - 2) / 6);
  EXPECT_EQ(CountFourCycles(g),
            3 * (nn * (nn - 1) * (nn - 2) * (nn - 3) / 24));
  // Per-edge triangle count: every edge in n-2 triangles.
  for (const auto t_e : PerEdgeTriangleCounts(g)) {
    EXPECT_EQ(t_e, nn - 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CliqueProperty,
                         ::testing::Values(3, 4, 5, 7, 10, 16));

class DiamondPackProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DiamondPackProperty, CycleArithmeticAndHistogram) {
  const std::uint32_t h = GetParam();
  Rng rng(h);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{h, 7}}, rng));
  EXPECT_EQ(CountFourCycles(g),
            7ull * h * (h - 1) / 2);
  const auto hist = DiamondHistogram(g);
  // K_{2,2} is self-dual: both diagonals of each copy are size-2 diamonds.
  EXPECT_EQ(hist.at(h), h == 2 ? 14u : 7u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DiamondPackProperty,
                         ::testing::Values(2, 3, 5, 9, 17, 33));

// ---------- Exact-counter identities on random graphs ----------

class ExactIdentityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactIdentityProperty, WedgeVectorIdentities) {
  Rng rng(GetParam());
  const Graph g(ErdosRenyiGnm(200, 800, rng));
  const WedgeVector x = ComputeWedgeVector(g);
  // Σ x_uv = #wedges.
  std::uint64_t f1 = 0;
  for (const auto& [key, count] : x) {
    (void)key;
    f1 += count;
  }
  EXPECT_EQ(f1, CountWedges(g));
  // C4 = ½ Σ C(x,2); cross-check against the per-edge counts.
  const std::uint64_t c4 = CountFourCyclesFromWedges(x);
  const auto per_edge = PerEdgeFourCycleCounts(g);
  const std::uint64_t sum =
      std::accumulate(per_edge.begin(), per_edge.end(), std::uint64_t{0});
  EXPECT_EQ(sum, 4 * c4);
  // Triangles from per-edge counts: Σ t_e = 3T.
  const auto tri_edge = PerEdgeTriangleCounts(g);
  const std::uint64_t tri_sum =
      std::accumulate(tri_edge.begin(), tri_edge.end(), std::uint64_t{0});
  EXPECT_EQ(tri_sum, 3 * CountTriangles(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactIdentityProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST_P(ExactIdentityProperty, HeavinessProfilePartitionsAllCycles) {
  Rng rng(GetParam() + 100);
  const Graph g(ErdosRenyiGnm(150, 900, rng));
  const auto profile = ProfileFourCycleHeaviness(g, 3);
  std::uint64_t sum = 0;
  for (int i = 0; i <= 4; ++i) sum += profile.with_bad[i];
  EXPECT_EQ(sum, profile.total);
  EXPECT_EQ(profile.total, CountFourCycles(g));
}

// ---------- Sampling rates ----------

class BernoulliRateProperty : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliRateProperty, KWiseKeepMatchesRate) {
  const double rate = GetParam();
  KWiseHash hash(8, 1234 + static_cast<std::uint64_t>(rate * 1000));
  int kept = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    kept += hash.Keep(static_cast<std::uint64_t>(i), rate) ? 1 : 0;
  }
  EXPECT_NEAR(kept / static_cast<double>(n), rate,
              5 * std::sqrt(rate * (1 - rate) / n) + 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Rates, BernoulliRateProperty,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.9));

// ---------- Stream orderings ----------

class OrderingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderingProperty, RandomOrderPreservesMultiset) {
  Rng gen(GetParam());
  const EdgeList graph = ErdosRenyiGnm(60, 200, gen);
  Rng rng(GetParam() * 7 + 1);
  EdgeStream stream = MakeRandomOrderStream(graph, rng);
  std::sort(stream.begin(), stream.end());
  EXPECT_TRUE(
      std::equal(stream.begin(), stream.end(), graph.edges().begin()));
}

TEST_P(OrderingProperty, AdjacencyStreamHasConsistentDegrees) {
  Rng gen(GetParam() + 50);
  const Graph g(ErdosRenyiGnm(80, 300, gen));
  Rng rng(GetParam() * 13 + 5);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  for (const AdjacencyList& list : stream) {
    EXPECT_EQ(list.neighbors.size(), g.Degree(list.vertex));
    for (VertexId w : list.neighbors) {
      EXPECT_TRUE(g.HasEdge(list.vertex, w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderingProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- Estimator unbiasedness sweeps ----------

// The rough (light-triangle) estimator of §2.1 with everything light should
// average to T across seeds, for several prefix rates.
class RoughEstimatorProperty : public ::testing::TestWithParam<double> {};

TEST_P(RoughEstimatorProperty, MeanConvergesToTrianglesAcrossSeeds) {
  const double prefix_rate = GetParam();
  Rng gen(99);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(800, 1600, gen), 300, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  std::vector<double> estimates;
  for (int t = 0; t < 40; ++t) {
    Rng rng(1000 + t);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    RandomOrderTriangleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.c = 1.0;
    // Huge T-guess: heavy machinery off (threshold above every t_e), pure
    // prefix sampling via the explicit rate override.
    params.base.t_guess = 1e9;
    params.base.seed = 2000 + t;
    params.num_vertices = graph.num_vertices();
    params.prefix_rate = prefix_rate;
    estimates.push_back(CountTrianglesRandomOrder(stream, params).value);
  }
  const Summary s = Summarize(std::move(estimates));
  EXPECT_NEAR(s.mean, exact, 0.25 * exact) << "rate=" << prefix_rate;
}

INSTANTIATE_TEST_SUITE_P(Rates, RoughEstimatorProperty,
                         ::testing::Values(0.2, 0.35, 0.5));

// The Useful Algorithm is unbiased across p.
class UsefulUnbiasedProperty : public ::testing::TestWithParam<double> {};

TEST_P(UsefulUnbiasedProperty, MeanConvergesToW) {
  const double p = GetParam();
  Rng gen(5);
  struct E {
    std::uint64_t a, b;
    double w;
  };
  std::vector<E> edges;
  const std::uint64_t n = 150;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t a = gen.UniformInt(n), b = gen.UniformInt(n);
    if (a != b) edges.push_back({a, b, 1.0});
  }
  double w = 0;
  for (const auto& e : edges) w += e.w;

  std::vector<double> estimates;
  for (int t = 0; t < 120; ++t) {
    Rng rng(3000 + t);
    std::vector<bool> r1(n), r2(n);
    for (std::uint64_t v = 0; v < n; ++v) {
      r1[v] = rng.Bernoulli(p);
      r2[v] = rng.Bernoulli(p);
    }
    std::vector<std::vector<E>> adj(n);
    for (const auto& e : edges) {
      adj[e.a].push_back(e);
      adj[e.b].push_back(e);
    }
    UsefulAlgorithm useful(UsefulAlgorithm::Config{p, 2.0 * w});
    for (std::uint64_t v = 0; v < n; ++v) {
      std::vector<UsefulAlgorithm::IncidentEdge> revealed;
      for (const auto& e : adj[v]) {
        const std::uint64_t u = e.a == v ? e.b : e.a;
        if (r1[u] || r2[u]) {
          revealed.push_back(
              UsefulAlgorithm::IncidentEdge{u, e.w, r1[u], r2[u]});
        }
      }
      useful.OnVertex(v, r1[v], r2[v], revealed);
    }
    estimates.push_back(useful.Estimate());
  }
  EXPECT_NEAR(Summarize(std::move(estimates)).mean, w, 0.1 * w)
      << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, UsefulUnbiasedProperty,
                         ::testing::Values(0.3, 0.5, 0.8, 1.0));

// ---------- Lower-bound gadget sweeps ----------

class GadgetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GadgetProperty, TriangleGadgetEdgeBudget) {
  const std::uint64_t t = GetParam();
  Rng rng(t + 7);
  const VertexId n = 16;
  const auto gadget = MakeTriangleLowerBoundGadget(n, t, true, rng);
  // m = |E_x| + 2nT with |E_x| ≈ n²/2: check the budget is in range.
  const double ex_edges =
      static_cast<double>(gadget.graph.num_edges()) - 2.0 * n * t;
  EXPECT_NEAR(ex_edges, n * n / 2.0, 4.0 * std::sqrt(n * n / 4.0) + 2.0);
  // W-vertices have degree <= 2 and only u*/v* share a W neighborhood.
  const Graph g(gadget.graph);
  for (VertexId w = 2 * n; w < g.num_vertices(); ++w) {
    EXPECT_LE(g.Degree(w), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Ts, GadgetProperty, ::testing::Values(1, 3, 9, 27));

}  // namespace
}  // namespace cyclestream
