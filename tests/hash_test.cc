#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "hash/kwise.h"
#include "hash/rng.h"
#include "hash/tabulation.h"

namespace cyclestream {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(13), 13u);
  }
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 5 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, BinomialSmallNExactPath) {
  Rng rng(13);
  double total = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(rng.Binomial(20, 0.25));
  }
  EXPECT_NEAR(total / trials, 5.0, 0.1);
}

TEST(RngTest, BinomialLargeNNormalPath) {
  Rng rng(17);
  double total = 0.0;
  const int trials = 5000;
  for (int i = 0; i < trials; ++i) {
    const auto draw = rng.Binomial(100000, 0.5);
    EXPECT_LE(draw, 100000u);
    total += static_cast<double>(draw);
  }
  EXPECT_NEAR(total / trials, 50000.0, 100.0);
}

TEST(RngTest, NormalMeanAndVariance) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(99);
  Rng f1 = parent.Fork(1);
  Rng f2 = parent.Fork(2);
  Rng f1_again = parent.Fork(1);
  EXPECT_EQ(f1.Next(), f1_again.Next());
  EXPECT_NE(f1.Next(), f2.Next());
}

TEST(KWiseHashTest, DeterministicAndInRange) {
  KWiseHash h(4, 1234);
  for (std::uint64_t x = 0; x < 1000; ++x) {
    const auto v = h(x);
    EXPECT_LT(v, KWiseHash::kPrime);
    EXPECT_EQ(v, h(x));
  }
}

TEST(KWiseHashTest, DifferentSeedsGiveDifferentFunctions) {
  KWiseHash a(4, 1), b(4, 2);
  int same = 0;
  for (std::uint64_t x = 0; x < 256; ++x) same += (a(x) == b(x)) ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(KWiseHashTest, ToUnitIsRoughlyUniform) {
  KWiseHash h(4, 77);
  double sum = 0.0;
  const int n = 100000;
  for (int x = 0; x < n; ++x) sum += h.ToUnit(static_cast<std::uint64_t>(x));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(KWiseHashTest, KeepMatchesRate) {
  KWiseHash h(2, 13);
  int kept = 0;
  const int n = 100000;
  for (int x = 0; x < n; ++x) {
    kept += h.Keep(static_cast<std::uint64_t>(x), 0.2) ? 1 : 0;
  }
  EXPECT_NEAR(kept / static_cast<double>(n), 0.2, 0.01);
}

TEST(KWiseHashTest, SignsAreBalancedAndPairwiseUncorrelated) {
  KWiseHash h(4, 2024);
  const int n = 20000;
  double sum = 0.0;
  for (int x = 0; x < n; ++x) sum += h.Sign(static_cast<std::uint64_t>(x));
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  // Pairwise products should also average to ~0 (2-wise independence).
  double pair_sum = 0.0;
  for (int x = 0; x < n; ++x) {
    pair_sum += h.Sign(static_cast<std::uint64_t>(x)) *
                h.Sign(static_cast<std::uint64_t>(x + n));
  }
  EXPECT_NEAR(pair_sum / n, 0.0, 0.03);
}

// Statistical spot-check of 4-wise independence: for 4-wise independent
// signs, E[s(a)s(b)s(c)s(d)] = 0 over distinct keys. Average over many
// quadruples and many functions.
TEST(KWiseHashTest, FourWiseProductVanishes) {
  double total = 0.0;
  const int functions = 64;
  const int quads = 256;
  for (int f = 0; f < functions; ++f) {
    KWiseHash h(4, 1000 + static_cast<std::uint64_t>(f));
    double acc = 0.0;
    for (int q = 0; q < quads; ++q) {
      const std::uint64_t base = static_cast<std::uint64_t>(q) * 4;
      acc += h.Sign(base) * h.Sign(base + 1) * h.Sign(base + 2) *
             h.Sign(base + 3);
    }
    total += acc / quads;
  }
  EXPECT_NEAR(total / functions, 0.0, 0.02);
}

TEST(TabulationHashTest, DeterministicAndUniform) {
  TabulationHash h(555);
  EXPECT_EQ(h(12345), h(12345));
  double sum = 0.0;
  const int n = 100000;
  for (int x = 0; x < n; ++x) sum += h.ToUnit(static_cast<std::uint64_t>(x));
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(TabulationHashTest, AvalancheOnSingleByteChange) {
  TabulationHash h(9);
  int diff_bits = 0;
  // Spread the keys so the flipped byte takes many distinct values (the
  // XORed pair of table entries is fresh randomness for each value).
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const std::uint64_t x = i * 0x9e3779b97f4a7c15ULL;
    diff_bits += __builtin_popcountll(h(x) ^ h(x ^ 0xff00ULL));
  }
  // Expect roughly 32 differing bits on average.
  EXPECT_NEAR(diff_bits / 4096.0, 32.0, 1.5);
}

}  // namespace
}  // namespace cyclestream
