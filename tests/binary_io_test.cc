// Tests for the binary edge-stream format (graph/binary_io.h): byte-level
// round trips, and the validation contract — a damaged file is rejected
// with a descriptive error, never served as a silently shorter or wrong
// stream.

#include "graph/binary_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "gen/generators.h"
#include "graph/edge_list.h"
#include "gtest/gtest.h"
#include "util/crc32.h"

namespace cyclestream {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(BinaryIoTest, RoundTripEdgeList) {
  Rng rng(1);
  const EdgeList graph = BarabasiAlbert(500, 4, rng);
  const std::string path = TempPath("roundtrip.bin");
  std::string error;
  ASSERT_TRUE(WriteBinaryEdgeStream(graph, path, &error)) << error;

  BinaryEdgeReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_EQ(reader.num_vertices(), graph.num_vertices());
  ASSERT_EQ(reader.num_edges(), graph.num_edges());
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    EXPECT_EQ(reader.edges()[i], graph.edges()[i]) << "edge " << i;
  }
  const EdgeList back = reader.ToEdgeList();
  EXPECT_EQ(back.num_vertices(), graph.num_vertices());
  EXPECT_EQ(back.num_edges(), graph.num_edges());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, PreservesOrderAndDuplicates) {
  // A .bin file is a *stream*: order and duplicates are payload, not noise.
  const std::vector<Edge> stream = {{2, 3}, {0, 1}, {2, 3}, {1, 4}};
  const std::string path = TempPath("stream.bin");
  std::string error;
  ASSERT_TRUE(WriteBinaryEdgeStream(stream.data(), stream.size(), 5, path,
                                    &error))
      << error;
  BinaryEdgeReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  ASSERT_EQ(reader.num_edges(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(reader.edges()[i], stream[i]) << "position " << i;
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, EmptyStream) {
  const std::string path = TempPath("empty.bin");
  std::string error;
  ASSERT_TRUE(WriteBinaryEdgeStream(nullptr, 0, 7, path, &error)) << error;
  BinaryEdgeReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_EQ(reader.num_vertices(), 7u);
  EXPECT_EQ(reader.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileRejected) {
  BinaryEdgeReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open("/nonexistent/stream.bin", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(reader.is_open());
}

class BinaryIoDamageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("damage.bin");
    const std::vector<Edge> stream = {{0, 1}, {1, 2}, {0, 3}};
    std::string error;
    ASSERT_TRUE(
        WriteBinaryEdgeStream(stream.data(), stream.size(), 4, path_, &error))
        << error;
    bytes_ = ReadFile(path_);
    ASSERT_EQ(bytes_.size(), kBinaryEdgeHeaderSize + 3 * sizeof(Edge));
  }

  void TearDown() override { std::remove(path_.c_str()); }

  // Writes the (damaged) bytes back and expects Open to fail with a
  // non-empty error mentioning `expect_substring`.
  void ExpectRejected(const std::string& bytes,
                      const std::string& expect_substring) {
    WriteFile(path_, bytes);
    BinaryEdgeReader reader;
    std::string error;
    EXPECT_FALSE(reader.Open(path_, &error));
    EXPECT_NE(error.find(expect_substring), std::string::npos)
        << "error was: " << error;
    EXPECT_FALSE(reader.is_open());
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(BinaryIoDamageTest, TruncatedPayloadRejected) {
  ExpectRejected(bytes_.substr(0, bytes_.size() - 3), "size mismatch");
}

TEST_F(BinaryIoDamageTest, TruncatedHeaderRejected) {
  ExpectRejected(bytes_.substr(0, kBinaryEdgeHeaderSize - 1), "truncated");
}

TEST_F(BinaryIoDamageTest, TrailingGarbageRejected) {
  ExpectRejected(bytes_ + "x", "size mismatch");
}

TEST_F(BinaryIoDamageTest, PayloadBitFlipFailsCrc) {
  std::string damaged = bytes_;
  damaged[kBinaryEdgeHeaderSize + 5] ^= 0x40;  // Flip a payload bit...
  // ...that still yields canonical edges, so only the CRC can catch it.
  ExpectRejected(damaged, "CRC");
}

TEST_F(BinaryIoDamageTest, BadMagicRejected) {
  std::string damaged = bytes_;
  damaged[0] = 'X';
  ExpectRejected(damaged, "magic");
}

TEST_F(BinaryIoDamageTest, UnknownVersionRejected) {
  std::string damaged = bytes_;
  damaged[8] = 0x7f;  // version u32 at offset 8 (little-endian).
  ExpectRejected(damaged, "version");
}

TEST_F(BinaryIoDamageTest, NonCanonicalEdgeRejected) {
  // Rewrite edge 0 as (1, 1) — a self-loop — patching bytes directly to
  // bypass the writer's own canonical CHECK, and fix up the CRC so only
  // the per-edge canonical-form check can reject it.
  std::string damaged = bytes_;
  std::uint32_t one = 1;
  std::memcpy(damaged.data() + kBinaryEdgeHeaderSize, &one, 4);
  std::memcpy(damaged.data() + kBinaryEdgeHeaderSize + 4, &one, 4);
  const std::uint32_t crc =
      Crc32(std::string_view(damaged.data() + kBinaryEdgeHeaderSize,
                             damaged.size() - kBinaryEdgeHeaderSize));
  std::memcpy(damaged.data() + 24, &crc, 4);
  ExpectRejected(damaged, "canonical");
}

TEST_F(BinaryIoDamageTest, OutOfRangeVertexRejected) {
  // Patch num_vertices down to 2 so edge (0, 3) is out of range; the CRC
  // stays valid (it covers only the payload).
  std::string damaged = bytes_;
  std::uint32_t n = 2;
  std::memcpy(damaged.data() + 12, &n, 4);
  ExpectRejected(damaged, "canonical");
}

TEST_F(BinaryIoDamageTest, WrappingEdgeCountRejected) {
  // Forge num_edges = 2^61 + 3: the expected-size product (num_edges * 8)
  // wraps modulo 2^64 to exactly this file's 24 payload bytes, so a reader
  // that only compared expected_size == file_size accepted the header and
  // then walked 2^61 edges straight off the end of the mapping. The bound
  // against the actually-mapped payload must reject it first.
  std::string damaged = bytes_;
  const std::uint64_t forged = (std::uint64_t{1} << 61) + 3;
  std::memcpy(damaged.data() + 16, &forged, 8);
  ExpectRejected(damaged, "overflows the file-size computation");
}

TEST_F(BinaryIoDamageTest, SaturatedEdgeCountRejected) {
  std::string damaged = bytes_;
  const std::uint64_t forged = ~std::uint64_t{0};
  std::memcpy(damaged.data() + 16, &forged, 8);
  ExpectRejected(damaged, "overflows the file-size computation");
}

TEST(BinaryIoTest, LoadEdgeListBinaryConvenience) {
  Rng rng(2);
  const EdgeList graph = ErdosRenyiGnm(100, 300, rng);
  const std::string path = TempPath("load.bin");
  ASSERT_TRUE(WriteBinaryEdgeStream(graph, path));
  const auto loaded = LoadEdgeListBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), graph.num_edges());
  EXPECT_EQ(loaded->num_vertices(), graph.num_vertices());
  EXPECT_FALSE(LoadEdgeListBinary("/nonexistent/stream.bin").has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cyclestream
