// Regression tests for the strict QuerySpec text codec (src/engine/spec).
// The old `serve` parser accepted trailing garbage (`seed=5x` parsed as 5)
// and wrapped negatives through std::stoull (`seed=-1`, `budget=-1` became
// enormous unsigned values); the strict parser rejects both with a
// `label:line:` error. The codec is also the coordinator→worker wire
// format, so Write -> Parse must round-trip losslessly.

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "engine/query.h"
#include "engine/spec.h"
#include "gtest/gtest.h"

namespace cyclestream::engine {
namespace {

// Parses one spec-file body; returns the error ("" on success).
std::string ParseError(const std::string& body,
                       std::vector<QuerySpec>* specs = nullptr) {
  std::istringstream in(body);
  std::vector<QuerySpec> local;
  std::string error;
  if (ParseSpecStream(in, "<spec>", QuerySpec(), specs ? specs : &local,
                      &error)) {
    return "";
  }
  return error;
}

TEST(SpecParseTest, ParsesAWellFormedLine) {
  std::vector<QuerySpec> specs;
  ASSERT_EQ(ParseError("name=q0 kind=arb-f2 seed=5 budget=128 epsilon=0.25\n"
                       "# comment only\n"
                       "\n"
                       "name=q1 kind=triest reservoir=50  # trailing comment\n",
                       &specs),
            "");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "q0");
  EXPECT_EQ(specs[0].kind, QueryKind::kArbF2);
  EXPECT_EQ(specs[0].base.seed, 5u);
  EXPECT_EQ(specs[0].space_budget_words, 128u);
  EXPECT_EQ(specs[0].base.epsilon, 0.25);
  EXPECT_EQ(specs[1].name, "q1");
  EXPECT_EQ(specs[1].kind, QueryKind::kTriest);
  EXPECT_EQ(specs[1].reservoir_capacity, 50u);
}

TEST(SpecParseTest, RejectsTrailingGarbageOnUnsignedKeys) {
  // The old parser's std::stoull consumed the leading digits and silently
  // dropped the rest: seed=5x "parsed" as 5.
  const std::string error = ParseError("name=q0 kind=arb-f2 seed=5x\n");
  EXPECT_NE(error.find("<spec>:1:"), std::string::npos) << error;
  EXPECT_NE(error.find("seed"), std::string::npos) << error;
  EXPECT_NE(error.find("5x"), std::string::npos) << error;
}

TEST(SpecParseTest, RejectsNegativesOnUnsignedKeys) {
  // std::stoull accepts a leading '-' and wraps: seed=-1 became 2^64-1.
  for (const char* line :
       {"name=q0 kind=arb-f2 seed=-1\n", "name=q0 kind=arb-f2 budget=-1\n",
        "name=q0 kind=triest reservoir=-5\n",
        "name=q0 kind=arb-f2 num_vertices=-1\n"}) {
    const std::string error = ParseError(line);
    EXPECT_NE(error.find("<spec>:1:"), std::string::npos)
        << "'" << line << "' -> " << error;
    EXPECT_NE(error.find("non-negative"), std::string::npos)
        << "'" << line << "' -> " << error;
  }
  // '+' prefixes are equally non-canonical.
  EXPECT_NE(ParseError("name=q0 kind=arb-f2 seed=+3\n"), "");
}

TEST(SpecParseTest, RejectsMalformedDoublesAndUnknownKeys) {
  EXPECT_NE(ParseError("name=q0 kind=arb-f2 epsilon=abc\n"), "");
  EXPECT_NE(ParseError("name=q0 kind=arb-f2 epsilon=0.5junk\n"), "");
  EXPECT_NE(ParseError("name=q0 kind=arb-f2 wibble=3\n"), "");
  EXPECT_NE(ParseError("name=q0 kind=arb-f2 epsilon\n"), "");
  EXPECT_NE(ParseError("name=q0 kind=not-a-kind\n"), "");
}

TEST(SpecParseTest, RequiresNameAndKind) {
  EXPECT_NE(ParseError("kind=arb-f2 seed=1\n"), "");
  EXPECT_NE(ParseError("name=q0 seed=1\n"), "");
}

TEST(SpecParseTest, ErrorsCarryTheRightLineNumber) {
  const std::string error = ParseError(
      "name=q0 kind=arb-f2\n"
      "# fine\n"
      "name=q2 kind=arb-f2 seed=9z\n");
  EXPECT_NE(error.find("<spec>:3:"), std::string::npos) << error;

  // Lines before the bad one are kept (documented partial-parse contract).
  std::vector<QuerySpec> specs;
  ParseError("name=q0 kind=arb-f2\nname=q1 kind=arb-f2 seed=9z\n", &specs);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "q0");
}

TEST(SpecParseTest, WriteThenParseIsLossless) {
  std::vector<QuerySpec> specs;
  QuerySpec spec;
  spec.name = "gnarly";
  spec.kind = QueryKind::kArbF2;
  spec.base.epsilon = 1.0 / 3.0;  // Not representable in short decimal.
  spec.base.c = 2.7182818284590452;
  spec.base.t_guess = 123456789.000000123;
  spec.base.seed = ~std::uint64_t{0} - 1;
  spec.num_vertices = 4096;
  spec.space_budget_words = 777;
  spec.level_rate = 0.1;  // 0.1 is inexact in binary.
  spec.prefix_rate = -1.0;
  spec.reservoir_capacity = 31337;
  spec.intra_shards = 4;
  specs.push_back(spec);
  QuerySpec other = spec;
  other.name = "plain";
  other.base.epsilon = 0.5;
  specs.push_back(other);

  const std::string dir = ::testing::TempDir() + "cli_spec_test";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/specs.txt";
  std::string error;
  ASSERT_TRUE(WriteSpecFile(path, specs, &error)) << error;

  std::vector<QuerySpec> parsed;
  ASSERT_TRUE(ParseSpecFile(path, QuerySpec(), &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    EXPECT_EQ(parsed[i].name, specs[i].name);
    EXPECT_EQ(parsed[i].kind, specs[i].kind);
    // Bitwise double equality: the %.17g round trip must be exact.
    EXPECT_EQ(parsed[i].base.epsilon, specs[i].base.epsilon);
    EXPECT_EQ(parsed[i].base.c, specs[i].base.c);
    EXPECT_EQ(parsed[i].base.t_guess, specs[i].base.t_guess);
    EXPECT_EQ(parsed[i].base.seed, specs[i].base.seed);
    EXPECT_EQ(parsed[i].num_vertices, specs[i].num_vertices);
    EXPECT_EQ(parsed[i].space_budget_words, specs[i].space_budget_words);
    EXPECT_EQ(parsed[i].level_rate, specs[i].level_rate);
    EXPECT_EQ(parsed[i].prefix_rate, specs[i].prefix_rate);
    EXPECT_EQ(parsed[i].reservoir_capacity, specs[i].reservoir_capacity);
    EXPECT_EQ(parsed[i].intra_shards, specs[i].intra_shards);
  }
  EXPECT_EQ(FingerprintSpecs(parsed), FingerprintSpecs(specs));
}

TEST(SpecFingerprintTest, BindsResultAffectingFieldsOnly) {
  std::vector<QuerySpec> specs;
  QuerySpec spec;
  spec.name = "q";
  spec.kind = QueryKind::kArbF2;
  spec.base.seed = 3;
  specs.push_back(spec);
  const std::uint64_t base_fp = FingerprintSpecs(specs);

  // Throughput knobs don't change results, so they don't change the
  // fingerprint (a worker may legitimately run a different backend).
  specs[0].intra_shards = 8;
  EXPECT_EQ(FingerprintSpecs(specs), base_fp);

  specs[0].base.seed = 4;
  EXPECT_NE(FingerprintSpecs(specs), base_fp);
  specs[0].base.seed = 3;
  specs[0].space_budget_words = 9;
  EXPECT_NE(FingerprintSpecs(specs), base_fp);
}

}  // namespace
}  // namespace cyclestream::engine
