#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <string>

#include "stream/driver.h"
#include "stream/order.h"
#include "stream/space.h"

namespace cyclestream {
namespace {

TEST(SpaceTrackerTest, NamedComponentsSumIntoTotals) {
  SpaceTracker tracker;
  tracker.SetComponent("levels", 100);
  tracker.SetComponent("candidates", 7);
  EXPECT_EQ(tracker.Current(), 107u);
  EXPECT_EQ(tracker.Peak(), 107u);
  EXPECT_EQ(tracker.Component("levels"), 100u);
  EXPECT_EQ(tracker.Component("candidates"), 7u);
  EXPECT_EQ(tracker.Component("never-charged"), 0u);
}

TEST(SpaceTrackerTest, ChargeAndReleaseAdjustOneComponent) {
  SpaceTracker tracker;
  tracker.Charge("reservoir", 10);
  tracker.Charge("reservoir", 5);
  EXPECT_EQ(tracker.Component("reservoir"), 15u);
  tracker.Release("reservoir", 12);
  EXPECT_EQ(tracker.Component("reservoir"), 3u);
  EXPECT_EQ(tracker.Current(), 3u);
  EXPECT_EQ(tracker.Peak(), 15u);
}

TEST(SpaceTrackerDeathTest, ReleaseUnderflowAborts) {
  SpaceTracker tracker;
  tracker.Charge("reservoir", 2);
  EXPECT_DEATH(tracker.Release("reservoir", 3), "underflow");
}

TEST(SpaceTrackerTest, PeakComponentsSnapshotTheMomentOfThePeak) {
  SpaceTracker tracker;
  tracker.SetBaseline(4);
  tracker.SetComponent("a", 10);
  tracker.SetComponent("b", 20);  // Peak: a=10, b=20 (+baseline).
  tracker.SetComponent("a", 1);   // Below peak; snapshot must not move.
  EXPECT_EQ(tracker.Peak(), 34u);
  EXPECT_EQ(tracker.Current(), 25u);
  const std::map<std::string, std::size_t, std::less<>> expected = {
      {"a", 10}, {"b", 20}, {"baseline", 4}};
  EXPECT_EQ(tracker.PeakComponents(), expected);
}

TEST(SpaceTrackerTest, LegacyUpdateMatchesHistoricalSingleBucketTracker) {
  SpaceTracker tracker;
  tracker.Update(10);
  tracker.Update(50);
  tracker.Update(20);
  EXPECT_EQ(tracker.Peak(), 50u);
  EXPECT_EQ(tracker.Current(), 20u);
  tracker.SetBaseline(5);
  EXPECT_EQ(tracker.Peak(), 55u);
  EXPECT_EQ(tracker.Current(), 25u);
}

// Regression: Reset() used to keep baseline_, so a reused tracker
// double-counted the previous run's hash-seed baseline into every
// subsequent reading.
TEST(SpaceTrackerTest, ResetClearsBaseline) {
  SpaceTracker tracker;
  tracker.SetBaseline(16);
  tracker.SetComponent("state", 100);
  tracker.Reset();
  EXPECT_EQ(tracker.Peak(), 0u);
  EXPECT_EQ(tracker.Current(), 0u);
  tracker.SetComponent("state", 10);
  EXPECT_EQ(tracker.Peak(), 10u) << "stale baseline leaked through Reset()";
}

// Toy algorithm with *correct* incremental accounting: stores every edge,
// charges 2 words per edge, and audits by walking the stored vector.
class CorrectlyAccountedAlgorithm : public EdgeStreamAlgorithm {
 public:
  int NumPasses() const override { return 1; }
  void StartPass(int, std::size_t) override {}
  void ProcessEdge(int, const Edge& e, std::size_t) override {
    stored_.push_back(e);
    space_.Charge("stored", 2);
  }
  void EndPass(int) override {}
  std::size_t AuditSpace() const override { return 2 * stored_.size(); }
  const SpaceTracker* space_tracker() const override { return &space_; }

 protected:
  std::vector<Edge> stored_;
  SpaceTracker space_;
};

// Same state, but the accounting under-charges — the bug class the audit
// exists to catch.
class UnderchargedAlgorithm : public CorrectlyAccountedAlgorithm {
 public:
  void ProcessEdge(int, const Edge& e, std::size_t) override {
    stored_.push_back(e);
    space_.Charge("stored", 1);  // Claims half the true footprint.
  }
};

EdgeStream TestStream() {
  EdgeStream stream;
  for (VertexId v = 1; v < 8; ++v) stream.push_back(Edge(0, v));
  return stream;
}

TEST(SpaceAuditTest, DriverAcceptsCorrectAccounting) {
  SetSpaceAudit(true);
  ResetStreamStats();
  CorrectlyAccountedAlgorithm alg;
  RunEdgeStream(alg, TestStream());
  EXPECT_EQ(GlobalStreamStats().audits_passed, 1u);
  SetSpaceAudit(false);
}

TEST(SpaceAuditDeathTest, DriverAbortsOnDriftedAccounting) {
  SetSpaceAudit(true);
  UnderchargedAlgorithm alg;
  EXPECT_DEATH(RunEdgeStream(alg, TestStream()), "space audit failed");
  SetSpaceAudit(false);
}

TEST(SpaceAuditTest, DisabledAuditIgnoresDrift) {
  SetSpaceAudit(false);
  ResetStreamStats();
  UnderchargedAlgorithm alg;
  RunEdgeStream(alg, TestStream());  // No abort: the cross-check is off.
  EXPECT_EQ(GlobalStreamStats().audits_passed, 0u);
}

TEST(SpaceAuditTest, AlgorithmsWithoutTheHookAreSkipped) {
  SetSpaceAudit(true);
  ResetStreamStats();
  class NoHook : public EdgeStreamAlgorithm {
   public:
    int NumPasses() const override { return 1; }
    void StartPass(int, std::size_t) override {}
    void ProcessEdge(int, const Edge&, std::size_t) override {}
    void EndPass(int) override {}
  };
  NoHook alg;
  RunEdgeStream(alg, TestStream());
  EXPECT_EQ(GlobalStreamStats().audits_passed, 0u);
  SetSpaceAudit(false);
}

}  // namespace
}  // namespace cyclestream
