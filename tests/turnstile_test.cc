#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/arb_f2_counter.h"
#include "core/turnstile_f2.h"
#include "engine/broker.h"
#include "engine/query.h"
#include "engine/spec.h"
#include "gen/generators.h"
#include "graph/binary_io.h"
#include "hash/rng.h"
#include "stream/driver.h"
#include "stream/dynamic/turnstile.h"
#include "stream/dynamic/turnstile_io.h"
#include "stream/fault.h"
#include "stream/order.h"
#include "stream/window/window.h"
#include "tests/test_util.h"
#include "util/crc32.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

std::string MakeTempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Recomputes the header CRC over the (possibly patched) payload so a test
// can violate exactly one validation rule at a time.
void FixupCrc(std::string* bytes) {
  const std::uint32_t crc =
      Crc32(std::string_view(*bytes).substr(kTurnstileHeaderSize));
  std::memcpy(bytes->data() + 24, &crc, 4);
}

TurnstileStream SampleStream() {
  TurnstileStream s;
  s.emplace_back(Edge(0, 1), TurnstileOp::kInsert);
  s.emplace_back(Edge(1, 2), TurnstileOp::kInsert);
  s.emplace_back(Edge(0, 2), TurnstileOp::kInsert);
  s.emplace_back(Edge(1, 2), TurnstileOp::kDelete);
  s.emplace_back(Edge(1, 3), TurnstileOp::kInsert);
  return s;
}

TEST(TurnstileIoTest, RoundTripPreservesStream) {
  const std::string dir = MakeTempDir("turnstile_roundtrip");
  const std::string path = dir + "/s.bin";
  const TurnstileStream original = SampleStream();
  std::string error;
  ASSERT_TRUE(WriteTurnstileStream(original, 4, path, &error)) << error;

  TurnstileBinaryReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  EXPECT_EQ(reader.num_vertices(), 4u);
  EXPECT_EQ(reader.format_version(), kBinaryTurnstileVersion);
  EXPECT_EQ(reader.stream(), original);
}

TEST(TurnstileIoTest, SniffReportsVersions) {
  const std::string dir = MakeTempDir("turnstile_sniff");
  const std::string v2 = dir + "/v2.bin";
  ASSERT_TRUE(WriteTurnstileStream(SampleStream(), 4, v2));
  EXPECT_EQ(SniffBinaryFormatVersion(v2), kBinaryTurnstileVersion);

  const std::string v1 = dir + "/v1.bin";
  const std::vector<Edge> edges = {Edge(0, 1), Edge(1, 2)};
  ASSERT_TRUE(WriteBinaryEdgeStream(edges.data(), edges.size(), 3, v1));
  EXPECT_EQ(SniffBinaryFormatVersion(v1), kBinaryEdgeVersion);

  const std::string junk = dir + "/junk.bin";
  WriteFileBytes(junk, "not a cyclestream file");
  EXPECT_EQ(SniffBinaryFormatVersion(junk), 0u);
  EXPECT_EQ(SniffBinaryFormatVersion(dir + "/missing.bin"), 0u);
}

// Each reader must name the other's format instead of misparsing it.
TEST(TurnstileIoTest, ReadersRejectTheOtherVersionWithPointedErrors) {
  const std::string dir = MakeTempDir("turnstile_cross_version");
  const std::string v2 = dir + "/v2.bin";
  ASSERT_TRUE(WriteTurnstileStream(SampleStream(), 4, v2));
  const std::string v1 = dir + "/v1.bin";
  const std::vector<Edge> edges = {Edge(0, 1), Edge(1, 2)};
  ASSERT_TRUE(WriteBinaryEdgeStream(edges.data(), edges.size(), 3, v1));

  BinaryEdgeReader edge_reader;
  std::string error;
  EXPECT_FALSE(edge_reader.Open(v2, &error));
  EXPECT_NE(error.find("turnstile"), std::string::npos) << error;

  TurnstileBinaryReader turnstile_reader;
  error.clear();
  EXPECT_FALSE(turnstile_reader.Open(v1, &error));
  EXPECT_NE(error.find("insert-only"), std::string::npos) << error;
}

TEST(TurnstileIoTest, RejectsInvalidOpByte) {
  const std::string dir = MakeTempDir("turnstile_bad_op");
  const std::string path = dir + "/s.bin";
  ASSERT_TRUE(WriteTurnstileStream(SampleStream(), 4, path));
  std::string bytes = ReadFileBytes(path);
  // Second record's op byte; patch the CRC so only the op rule trips.
  bytes[kTurnstileHeaderSize + kTurnstileRecordSize] = 2;
  FixupCrc(&bytes);
  WriteFileBytes(path, bytes);

  TurnstileBinaryReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &error));
  EXPECT_NE(error.find("op byte"), std::string::npos) << error;
}

TEST(TurnstileIoTest, RejectsCorruptPayloadTruncationAndConcatenation) {
  const std::string dir = MakeTempDir("turnstile_damage");
  const std::string path = dir + "/s.bin";
  ASSERT_TRUE(WriteTurnstileStream(SampleStream(), 4, path));
  const std::string good = ReadFileBytes(path);

  std::string error;
  {  // CRC catches payload corruption.
    std::string bad = good;
    bad[kTurnstileHeaderSize + 3] ^= 0x40;
    WriteFileBytes(path, bad);
    TurnstileBinaryReader reader;
    EXPECT_FALSE(reader.Open(path, &error));
  }
  {  // Exact-size check catches truncation...
    WriteFileBytes(path, good.substr(0, good.size() - 1));
    TurnstileBinaryReader reader;
    EXPECT_FALSE(reader.Open(path, &error));
  }
  {  // ...and concatenated streams (v2+v2 and v2+v1 alike).
    WriteFileBytes(path, good + good);
    TurnstileBinaryReader reader;
    EXPECT_FALSE(reader.Open(path, &error));
    EXPECT_NE(error.find("concatenated"), std::string::npos) << error;
  }
  {
    const std::string v1 = dir + "/v1.bin";
    const std::vector<Edge> edges = {Edge(0, 1)};
    ASSERT_TRUE(WriteBinaryEdgeStream(edges.data(), edges.size(), 2, v1));
    WriteFileBytes(path, good + ReadFileBytes(v1));
    TurnstileBinaryReader reader;
    EXPECT_FALSE(reader.Open(path, &error));
  }
}

TEST(TurnstileIoTest, StrictModeRejectsUnmatchedDelete) {
  const std::string dir = MakeTempDir("turnstile_unmatched");
  const std::string path = dir + "/s.bin";
  TurnstileStream s;
  s.emplace_back(Edge(0, 1), TurnstileOp::kInsert);
  s.emplace_back(Edge(1, 2), TurnstileOp::kDelete);  // Never inserted.
  ASSERT_TRUE(WriteTurnstileStream(s, 3, path));

  TurnstileBinaryReader strict;
  std::string error;
  EXPECT_FALSE(strict.Open(path, &error));
  EXPECT_NE(error.find("unmatched delete"), std::string::npos) << error;

  TurnstileBinaryReader lax;
  lax.set_strict(false);
  ASSERT_TRUE(lax.Open(path, &error)) << error;
  EXPECT_EQ(lax.stream(), s);
}

TEST(LiveEdgesTest, CountsMultiplicityAndPreservesFirstInsertionOrder) {
  TurnstileStream s;
  s.emplace_back(Edge(2, 3), TurnstileOp::kInsert);
  s.emplace_back(Edge(0, 1), TurnstileOp::kInsert);
  s.emplace_back(Edge(0, 1), TurnstileOp::kInsert);  // Multiplicity 2.
  s.emplace_back(Edge(2, 3), TurnstileOp::kDelete);
  s.emplace_back(Edge(0, 1), TurnstileOp::kDelete);  // Still live (1 left).
  s.emplace_back(Edge(4, 5), TurnstileOp::kDelete);  // Unmatched: clamped.
  s.emplace_back(Edge(2, 3), TurnstileOp::kInsert);  // Re-inserted.
  const std::vector<Edge> live = LiveEdges(s);
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], Edge(2, 3));  // First-insertion order.
  EXPECT_EQ(live[1], Edge(0, 1));
}

TEST(TurnstileStreamTest, FingerprintIsSensitiveToOps) {
  const TurnstileStream a = SampleStream();
  TurnstileStream b = a;
  b[3].op = TurnstileOp::kInsert;  // Same edges, one op flipped.
  EXPECT_NE(FingerprintTurnstileStream(a), FingerprintTurnstileStream(b));
  const TurnstileStream inserts =
      TurnstileFromEdges(std::vector<Edge>{Edge(0, 1), Edge(1, 2)});
  EXPECT_NE(FingerprintTurnstileStream(a), FingerprintTurnstileStream(inserts));
}

ApproxConfig TestBase(std::uint64_t seed) {
  ApproxConfig base;
  base.epsilon = 0.3;
  base.c = 1.0;
  base.t_guess = 50.0;
  base.seed = seed;
  return base;
}

// On an insert-only stream the turnstile c4 wrapper must be bit-identical
// to the arb-f2 edge kind with the same Params — same seed chain, same
// update order, same accumulators.
TEST(TurnstileEquivalenceTest, InsertOnlyC4MatchesArbF2) {
  Rng gen_rng(11);
  const EdgeList graph = ErdosRenyiGnm(40, 160, gen_rng);
  EdgeStream edges = graph.edges();
  Rng order_rng(5);
  order_rng.Shuffle(edges);

  ArbF2FourCycleCounter::Params p;
  p.base = TestBase(21);
  p.num_vertices = graph.num_vertices();

  ArbF2FourCycleCounter reference(p);
  RunEdgeStream(reference, edges);

  TurnstileF2FourCycleCounter turnstile(p);
  RunTurnstileStream(turnstile, TurnstileFromEdges(edges));

  EXPECT_EQ(turnstile.Result().value, reference.Result().value);
}

// The headline cancellation contract: inserting A then B, then deleting B
// again, leaves estimates bit-identical to inserting A alone — for both
// turnstile kinds, at every thread x intra-shard combination (the signed
// block kernels must preserve it too).
TEST(TurnstileCancellationTest, DeletesCancelExactlyAtAnyThreadShardCount) {
  Rng gen_rng(3);
  const EdgeList graph = ErdosRenyiGnm(50, 260, gen_rng);
  EdgeStream edges = graph.edges();
  Rng order_rng(9);
  order_rng.Shuffle(edges);
  const std::size_t half = edges.size() / 2;

  TurnstileStream cancelled = TurnstileFromEdges(edges);
  for (std::size_t i = edges.size(); i-- > half;) {
    cancelled.emplace_back(edges[i], TurnstileOp::kDelete);
  }
  const TurnstileStream insert_only = TurnstileFromEdges(
      std::span<const Edge>(edges.data(), half));

  const int saved_threads = DefaultThreads();
  for (int threads : {1, 8}) {
    SetDefaultThreads(threads);
    for (int shards : {1, 4}) {
      TurnstileF2TriangleCounter::Params tp;
      tp.base = TestBase(77);
      tp.num_vertices = graph.num_vertices();
      tp.sketch_backend = SketchBackend::kBlock;
      tp.intra_shards = shards;
      TurnstileF2TriangleCounter tri_cancelled(tp);
      RunTurnstileStream(tri_cancelled, cancelled);
      TurnstileF2TriangleCounter tri_inserts(tp);
      RunTurnstileStream(tri_inserts, insert_only);
      EXPECT_EQ(tri_cancelled.Result().value, tri_inserts.Result().value)
          << "triangle kind, threads=" << threads << " shards=" << shards;

      TurnstileF2FourCycleCounter::Params cp;
      cp.base = TestBase(78);
      cp.num_vertices = graph.num_vertices();
      cp.sketch_backend = SketchBackend::kBlock;
      cp.intra_shards = shards;
      TurnstileF2FourCycleCounter c4_cancelled(cp);
      RunTurnstileStream(c4_cancelled, cancelled);
      TurnstileF2FourCycleCounter c4_inserts(cp);
      RunTurnstileStream(c4_inserts, insert_only);
      EXPECT_EQ(c4_cancelled.Result().value, c4_inserts.Result().value)
          << "c4 kind, threads=" << threads << " shards=" << shards;
    }
  }
  SetDefaultThreads(saved_threads);
}

// Full cancellation drives every estimate to the empty-graph value.
TEST(TurnstileCancellationTest, FullCancellationYieldsEmptyGraphEstimate) {
  const EdgeList graph = testing::Clique(8);
  TurnstileStream stream = TurnstileFromEdges(graph.edges());
  for (const Edge& e : graph.edges()) {
    stream.emplace_back(e, TurnstileOp::kDelete);
  }
  TurnstileF2TriangleCounter::Params p;
  p.base = TestBase(5);
  p.num_vertices = graph.num_vertices();
  TurnstileF2TriangleCounter alg(p);
  RunTurnstileStream(alg, stream);
  EXPECT_EQ(alg.Result().value, 0.0);
}

// Block vs scalar delivery of the same signed stream must agree bitwise
// (the DESIGN.md §13 contract extended to the turnstile update path).
TEST(TurnstileBlockTest, BlockAndScalarBackendsAreBitIdentical) {
  Rng gen_rng(13);
  const EdgeList graph = ErdosRenyiGnm(40, 200, gen_rng);
  TurnstileStream stream = TurnstileFromEdges(graph.edges());
  for (std::size_t i = 0; i < graph.edges().size(); i += 3) {
    stream.emplace_back(graph.edges()[i], TurnstileOp::kDelete);
  }

  TurnstileF2TriangleCounter::Params p;
  p.base = TestBase(31);
  p.num_vertices = graph.num_vertices();
  p.sketch_backend = SketchBackend::kScalar;
  TurnstileF2TriangleCounter scalar(p);
  RunTurnstileStream(scalar, stream);

  p.sketch_backend = SketchBackend::kBlock;
  p.intra_shards = 4;
  TurnstileF2TriangleCounter block(p);
  RunTurnstileStream(block, stream);

  EXPECT_EQ(scalar.Result().value, block.Result().value);
}

TurnstileAlgorithmFactory TriangleFactory(VertexId n, std::uint64_t seed) {
  TurnstileF2TriangleCounter::Params p;
  p.base = TestBase(seed);
  p.num_vertices = n;
  return [p] { return std::make_unique<TurnstileF2TriangleCounter>(p); };
}

// A window covering the whole stream (no bucket ever retired) folds back
// to exactly the unwindowed state — linearity in action.
TEST(WindowTest, WholeStreamWindowMatchesUnwindowed) {
  Rng gen_rng(17);
  const EdgeList graph = ErdosRenyiGnm(40, 160, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());

  auto factory = TriangleFactory(graph.num_vertices(), 101);
  std::unique_ptr<TurnstileStreamAlgorithm> plain = factory();
  RunTurnstileStream(*plain, stream);

  SlidingWindowAlgorithm windowed(factory, factory()->CheckpointId(),
                                  stream.size(), 4);
  ASSERT_EQ(stream.size() % 4, 0u) << "pick a stream length divisible by 4";
  RunTurnstileStream(windowed, stream);

  EXPECT_EQ(windowed.Result().value, plain->Result().value);
}

// The windowed estimate must equal a fresh instance replaying exactly the
// updates inside the live buckets — the suffix-replay oracle, on a stream
// three windows long (so retirement has happened repeatedly).
TEST(WindowTest, MatchesSuffixReplayOracle) {
  Rng gen_rng(23);
  const EdgeList graph = ErdosRenyiGnm(50, 240, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());
  const std::uint64_t kWindow = 80;
  const std::uint64_t kBuckets = 4;
  const std::uint64_t width = kWindow / kBuckets;

  auto factory = TriangleFactory(graph.num_vertices(), 55);
  SlidingWindowAlgorithm windowed(factory, factory()->CheckpointId(), kWindow,
                                  kBuckets);
  RunTurnstileStream(windowed, stream);

  // Live buckets after the run: the last position's bucket and its
  // kBuckets-1 predecessors.
  const std::uint64_t last_bucket = (stream.size() - 1) / width;
  const std::uint64_t first_live =
      last_bucket + 1 >= kBuckets ? (last_bucket + 1 - kBuckets) * width : 0;
  std::unique_ptr<TurnstileStreamAlgorithm> oracle = factory();
  const TurnstileStream suffix(stream.begin() + first_live, stream.end());
  RunTurnstileStream(*oracle, suffix);

  EXPECT_EQ(windowed.Result().value, oracle->Result().value);
}

// Bucket contents are fixed stream positions, so the estimate must not
// depend on how the driver batches updates into blocks.
TEST(WindowTest, BlockSizeInvariance) {
  Rng gen_rng(29);
  const EdgeList graph = ErdosRenyiGnm(40, 180, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());

  auto factory = TriangleFactory(graph.num_vertices(), 61);
  double reference = 0.0;
  bool have_reference = false;
  for (std::size_t block : {1, 3, 7, 64, 1024}) {
    SlidingWindowAlgorithm windowed(factory, factory()->CheckpointId(), 60, 3);
    windowed.StartPass(0, stream.size());
    for (std::size_t pos = 0; pos < stream.size(); pos += block) {
      const std::size_t n = std::min(block, stream.size() - pos);
      windowed.ProcessUpdateBlock(
          0, std::span<const TurnstileUpdate>(stream.data() + pos, n), pos);
    }
    windowed.EndPass(0);
    if (!have_reference) {
      reference = windowed.Result().value;
      have_reference = true;
    } else {
      EXPECT_EQ(windowed.Result().value, reference) << "block=" << block;
    }
  }
}

// Satellite (c): the checkpoint kill-point sweep for a windowed query.
// Kill + resume at every bucket boundary (and just off it) must reproduce
// the uninterrupted run's estimate bit-for-bit.
TEST(WindowCheckpointTest, KillPointSweepAtEveryBucketBoundary) {
  Rng gen_rng(41);
  const EdgeList graph = ErdosRenyiGnm(30, 120, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());
  const std::uint64_t kWindow = 40;
  const std::uint64_t kBuckets = 4;
  const std::uint64_t width = kWindow / kBuckets;

  auto factory = TriangleFactory(graph.num_vertices(), 71);
  SlidingWindowAlgorithm golden(factory, factory()->CheckpointId(), kWindow,
                                kBuckets);
  RunTurnstileStream(golden, stream);
  const double golden_value = golden.Result().value;

  const std::string dir = MakeTempDir("window_kill_sweep");
  std::vector<std::uint64_t> kill_points;
  for (std::uint64_t pos = width; pos < stream.size(); pos += width) {
    kill_points.push_back(pos);       // Exactly at a bucket boundary.
    kill_points.push_back(pos + 1);   // Just after (bucket freshly opened).
  }
  for (const std::uint64_t kill : kill_points) {
    CheckpointPolicy policy;
    policy.directory = dir;
    policy.every_elements = 1;
    FaultPlan faults;
    faults.KillAfterElements(kill);
    RunOptions kill_options;
    kill_options.checkpoint = &policy;
    kill_options.faults = &faults;
    SlidingWindowAlgorithm victim(factory, factory()->CheckpointId(), kWindow,
                                  kBuckets);
    const RunOutcome killed = RunTurnstileStream(victim, stream, kill_options);
    ASSERT_FALSE(killed.completed) << "kill point " << kill;
    ASSERT_FALSE(killed.checkpoint_path.empty()) << "kill point " << kill;

    SlidingWindowAlgorithm resumed(factory, factory()->CheckpointId(), kWindow,
                                   kBuckets);
    RunOptions resume_options;
    resume_options.resume_from = killed.checkpoint_path;
    const RunOutcome outcome =
        RunTurnstileStream(resumed, stream, resume_options);
    ASSERT_TRUE(outcome.completed);
    ASSERT_TRUE(outcome.resumed) << "kill point " << kill;
    EXPECT_EQ(resumed.Result().value, golden_value) << "kill point " << kill;
  }
}

// A snapshot from a different window geometry must be rejected, falling
// back to a from-scratch run that still matches the golden value.
TEST(WindowCheckpointTest, MismatchedWindowConfigRejectsResume) {
  Rng gen_rng(43);
  const EdgeList graph = ErdosRenyiGnm(30, 120, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());
  auto factory = TriangleFactory(graph.num_vertices(), 73);

  const std::string dir = MakeTempDir("window_mismatch");
  CheckpointPolicy policy;
  policy.directory = dir;
  policy.every_elements = 1;
  FaultPlan faults;
  faults.KillAfterElements(stream.size() / 2);
  RunOptions kill_options;
  kill_options.checkpoint = &policy;
  kill_options.faults = &faults;
  SlidingWindowAlgorithm victim(factory, factory()->CheckpointId(), 40, 4);
  const RunOutcome killed = RunTurnstileStream(victim, stream, kill_options);
  ASSERT_FALSE(killed.completed);

  SlidingWindowAlgorithm golden(factory, factory()->CheckpointId(), 40, 2);
  RunTurnstileStream(golden, stream);

  SlidingWindowAlgorithm other(factory, factory()->CheckpointId(), 40, 2);
  RunOptions options;
  options.resume_from = killed.checkpoint_path;
  const RunOutcome outcome = RunTurnstileStream(other, stream, options);
  EXPECT_TRUE(outcome.resume_rejected);
  EXPECT_FALSE(outcome.resumed);
  EXPECT_EQ(other.Result().value, golden.Result().value);
}

// Decay must equal the hand-driven oracle: process an epoch, rescale by
// 2^-k, process the next epoch — per the scheduled-rescale definition.
TEST(DecayTest, MatchesEpochBoundaryOracle) {
  Rng gen_rng(47);
  const EdgeList graph = ErdosRenyiGnm(40, 200, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());
  const std::uint64_t kEpoch = 64;
  const std::uint32_t kLog2 = 3;

  auto factory = TriangleFactory(graph.num_vertices(), 81);
  DecayAlgorithm decayed(factory(), kEpoch, kLog2);
  RunTurnstileStream(decayed, stream);

  std::unique_ptr<TurnstileStreamAlgorithm> oracle = factory();
  oracle->StartPass(0, stream.size());
  for (std::size_t pos = 0; pos < stream.size(); ++pos) {
    if (pos > 0 && pos % kEpoch == 0) {
      ASSERT_TRUE(oracle->Rescale(std::ldexp(1.0, -static_cast<int>(kLog2))));
    }
    oracle->ProcessUpdate(0, stream[pos], pos);
  }
  oracle->EndPass(0);

  EXPECT_EQ(decayed.Result().value, oracle->Result().value);
}

TEST(DecayTest, BlockSizeInvariance) {
  Rng gen_rng(53);
  const EdgeList graph = ErdosRenyiGnm(40, 200, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());

  auto factory = TriangleFactory(graph.num_vertices(), 91);
  double reference = 0.0;
  bool have_reference = false;
  for (std::size_t block : {1, 5, 63, 64, 65, 512}) {
    DecayAlgorithm decayed(factory(), 64, 2);
    decayed.StartPass(0, stream.size());
    for (std::size_t pos = 0; pos < stream.size(); pos += block) {
      const std::size_t n = std::min(block, stream.size() - pos);
      decayed.ProcessUpdateBlock(
          0, std::span<const TurnstileUpdate>(stream.data() + pos, n), pos);
    }
    decayed.EndPass(0);
    if (!have_reference) {
      reference = decayed.Result().value;
      have_reference = true;
    } else {
      EXPECT_EQ(decayed.Result().value, reference) << "block=" << block;
    }
  }
}

// The broker's turnstile path must be bit-identical to standalone runs and
// export the window/decay knobs into the per-query manifest sections.
TEST(EngineTurnstileTest, BrokerMatchesStandaloneAndExportsKnobs) {
  Rng gen_rng(59);
  const EdgeList graph = ErdosRenyiGnm(40, 160, gen_rng);
  const TurnstileStream stream = TurnstileFromEdges(graph.edges());

  engine::QuerySpec windowed;
  windowed.name = "win";
  windowed.kind = engine::QueryKind::kTurnstileF2Triangle;
  windowed.base = TestBase(7);
  windowed.num_vertices = graph.num_vertices();
  windowed.window_edges = 80;
  windowed.window_buckets = 4;

  engine::QuerySpec decayed;
  decayed.name = "dec";
  decayed.kind = engine::QueryKind::kTurnstileF2C4;
  decayed.base = TestBase(8);
  decayed.num_vertices = graph.num_vertices();
  decayed.decay_epoch_edges = 50;
  decayed.decay_log2 = 2;

  engine::StreamBroker broker;
  broker.AddQuery(windowed);
  broker.AddQuery(decayed);
  const std::vector<engine::QueryOutcome> outcomes =
      broker.RunTurnstileQueries(stream);
  ASSERT_EQ(outcomes.size(), 2u);

  {
    engine::TurnstileQuery standalone = engine::MakeTurnstileQuery(windowed);
    RunTurnstileStream(*standalone.algorithm, stream);
    EXPECT_EQ(outcomes[0].estimate.value, standalone.result().value);
  }
  {
    engine::TurnstileQuery standalone = engine::MakeTurnstileQuery(decayed);
    RunTurnstileStream(*standalone.algorithm, stream);
    EXPECT_EQ(outcomes[1].estimate.value, standalone.result().value);
  }

  RunManifest manifest("turnstile_test");
  engine::ExportToManifest(outcomes, broker.stats(), manifest);
  const std::string json = manifest.DeterministicJson();
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"window_buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"decay_epoch\""), std::string::npos);
  EXPECT_NE(json.find("\"decay_log2\""), std::string::npos);
}

TEST(EngineTurnstileTest, RunTurnstileQueriesRejectsOtherFamilies) {
  engine::QuerySpec spec;
  spec.name = "edge";
  spec.kind = engine::QueryKind::kArbF2;
  spec.num_vertices = 8;
  engine::StreamBroker broker;
  broker.AddQuery(spec);
  EXPECT_DEATH(broker.RunTurnstileQueries(TurnstileStream{}),
               "non-turnstile");
}

// Spec-codec coverage for the windowing keys: strict parsing, the
// validation matrix, and the lossless Format -> Parse round trip.
TEST(TurnstileSpecTest, WindowingValidationAndRoundTrip) {
  const engine::QuerySpec defaults;
  auto parse = [&](const std::string& line, std::vector<engine::QuerySpec>* out,
                   std::string* error) {
    std::istringstream in(line);
    return engine::ParseSpecStream(in, "<spec>", defaults, out, error);
  };

  std::vector<engine::QuerySpec> specs;
  std::string error;
  ASSERT_TRUE(parse("name=q kind=turnstile-f2-triangle num_vertices=10 "
                    "window=40 window_buckets=4",
                    &specs, &error))
      << error;
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].window_edges, 40u);
  EXPECT_EQ(specs[0].window_buckets, 4u);

  // Round trip preserves every windowing field bit-for-bit.
  specs[0].decay_epoch_edges = 0;
  const std::string line = engine::FormatSpecLine(specs[0]);
  std::vector<engine::QuerySpec> reparsed;
  ASSERT_TRUE(parse(line, &reparsed, &error)) << error;
  ASSERT_EQ(reparsed.size(), 1u);
  EXPECT_EQ(reparsed[0].window_edges, specs[0].window_edges);
  EXPECT_EQ(reparsed[0].window_buckets, specs[0].window_buckets);
  EXPECT_EQ(engine::FingerprintSpecs(reparsed),
            engine::FingerprintSpecs(specs));

  // Fingerprint changes when a result-affecting windowing knob changes.
  std::vector<engine::QuerySpec> other = specs;
  other[0].window_edges = 80;
  EXPECT_NE(engine::FingerprintSpecs(other), engine::FingerprintSpecs(specs));

  struct BadCase {
    const char* line;
    const char* needle;
  };
  const BadCase bad_cases[] = {
      {"name=q kind=arb-f2 window=40", "turnstile"},
      {"name=q kind=turnstile-f2-c4 window=40 window_buckets=7", "multiple"},
      {"name=q kind=turnstile-f2-c4 window=40 decay_epoch=10 decay_log2=2",
       "mutually exclusive"},
      {"name=q kind=turnstile-f2-c4 decay_epoch=10", "decay_log2"},
      {"name=q kind=turnstile-f2-c4 decay_epoch=10 decay_log2=33", "[0, 32]"},
      {"name=q kind=turnstile-f2-c4 decay_log2=2", "decay_epoch"},
  };
  for (const BadCase& c : bad_cases) {
    std::vector<engine::QuerySpec> ignored;
    error.clear();
    EXPECT_FALSE(parse(c.line, &ignored, &error)) << c.line;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.line << " -> " << error;
  }
}

}  // namespace
}  // namespace cyclestream
