// End-to-end integration tests: every estimator against exact ground truth
// on shared mid-size workloads, with fixed seeds and bounded error
// envelopes. These are the "does the whole pipeline hold together" checks —
// generator → stream ordering → algorithm → estimate.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bera_chakrabarti.h"
#include "baselines/cormode_jowhari.h"
#include "baselines/naive_sampling.h"
#include "baselines/triest.h"
#include "core/adj_f2_counter.h"
#include "core/arb_distinguisher.h"
#include "core/arb_f2_counter.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "gen/lower_bound.h"
#include "graph/datasets.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/stats.h"

namespace cyclestream {
namespace {

// Shared triangle workload: ER noise + planted triangles + one heavy edge.
class TriangleWorkload : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng gen(42);
    graph_ = new EdgeList(PlantBook(
        PlantTriangles(ErdosRenyiGnm(3000, 6000, gen), 800, gen), 300, gen));
    exact_ = static_cast<double>(CountTriangles(Graph(*graph_)));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static const EdgeList* graph_;
  static double exact_;
};
const EdgeList* TriangleWorkload::graph_ = nullptr;
double TriangleWorkload::exact_ = 0;

TEST_F(TriangleWorkload, RandomOrderCounterMedianWithin20Percent) {
  std::vector<double> estimates;
  for (int t = 0; t < 11; ++t) {
    Rng rng(100 + t);
    const EdgeStream stream = MakeRandomOrderStream(*graph_, rng);
    RandomOrderTriangleCounter::Params params;
    params.base.epsilon = 0.25;
    params.base.c = 2.0;
    params.base.t_guess = exact_;
    params.base.seed = 500 + t;
    params.num_vertices = graph_->num_vertices();
    estimates.push_back(CountTrianglesRandomOrder(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).median, exact_, 0.2 * exact_);
}

TEST_F(TriangleWorkload, CormodeJowhariUndercountsHeavyWorkload) {
  // 300 of ~1500 triangles ride one edge: the capped estimator must lose a
  // visible fraction (this is the paper's motivation, not a bug).
  std::vector<double> estimates;
  for (int t = 0; t < 11; ++t) {
    Rng rng(200 + t);
    const EdgeStream stream = MakeRandomOrderStream(*graph_, rng);
    CormodeJowhariCounter::Params params;
    params.base.epsilon = 0.25;
    params.base.c = 2.0;
    params.base.t_guess = exact_;
    params.base.seed = 600 + t;
    estimates.push_back(CountTrianglesCormodeJowhari(stream, params).value);
  }
  EXPECT_LT(Summarize(estimates).median, 0.95 * exact_);
}

TEST_F(TriangleWorkload, TriestTracksWithGenerousReservoir) {
  Rng rng(7);
  const EdgeStream stream = MakeRandomOrderStream(*graph_, rng);
  Triest::Params params;
  params.reservoir_capacity = graph_->num_edges() / 2;
  params.seed = 8;
  Triest algo(params);
  RunEdgeStream(algo, stream);
  EXPECT_NEAR(algo.EstimateTriangles(), exact_, 0.2 * exact_);
}

// Shared 4-cycle workload (sparse): ER + diamonds.
class FourCycleWorkload : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng gen(43);
    graph_ = new EdgeList(PlantDiamonds(ErdosRenyiGnm(1500, 3000, gen),
                                        {DiamondSpec{8, 30}}, gen));
    g_ = new Graph(*graph_);
    exact_ = static_cast<double>(CountFourCycles(*g_));
  }
  static void TearDownTestSuite() {
    delete g_;
    delete graph_;
    g_ = nullptr;
    graph_ = nullptr;
  }
  static const EdgeList* graph_;
  static const Graph* g_;
  static double exact_;
};
const EdgeList* FourCycleWorkload::graph_ = nullptr;
const Graph* FourCycleWorkload::g_ = nullptr;
double FourCycleWorkload::exact_ = 0;

TEST_F(FourCycleWorkload, DiamondCounterMedianWithin25Percent) {
  std::vector<double> estimates;
  for (int t = 0; t < 9; ++t) {
    Rng rng(300 + t);
    const AdjacencyStream stream = MakeAdjacencyStream(*g_, rng);
    DiamondFourCycleCounter::Params params;
    params.base.epsilon = 0.25;
    params.base.c = 3.0;
    params.base.t_guess = exact_;
    params.base.seed = 700 + t;
    params.num_vertices = g_->num_vertices();
    estimates.push_back(CountFourCyclesDiamond(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).median, exact_, 0.25 * exact_);
}

TEST_F(FourCycleWorkload, ThreePassCounterMedianWithin25Percent) {
  std::vector<double> estimates;
  for (int t = 0; t < 9; ++t) {
    Rng rng(400 + t);
    EdgeStream stream = g_->edges();
    rng.Shuffle(stream);
    ArbThreePassFourCycleCounter::Params params;
    params.base.epsilon = 0.3;
    params.base.c = 1.5;
    params.base.t_guess = exact_;
    params.base.seed = 800 + t;
    params.num_vertices = g_->num_vertices();
    estimates.push_back(CountFourCyclesArbThreePass(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).median, exact_, 0.25 * exact_);
}

TEST_F(FourCycleWorkload, BeraChakrabartiMeanWithin25Percent) {
  std::vector<double> estimates;
  for (int t = 0; t < 9; ++t) {
    Rng rng(500 + t);
    EdgeStream stream = g_->edges();
    rng.Shuffle(stream);
    BeraChakrabartiCounter::Params params;
    params.base.epsilon = 0.25;
    params.base.t_guess = exact_;
    params.base.seed = 900 + t;
    params.num_pairs = 200000;
    estimates.push_back(CountFourCyclesBeraChakrabarti(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).mean, exact_, 0.25 * exact_);
}

TEST_F(FourCycleWorkload, DistinguisherFindsCyclesHere) {
  int hits = 0;
  for (int t = 0; t < 10; ++t) {
    Rng rng(600 + t);
    EdgeStream stream = g_->edges();
    rng.Shuffle(stream);
    ArbTwoPassDistinguisher::Params params;
    params.base.t_guess = exact_;
    params.base.c = 3.0;
    params.base.seed = 1000 + t;
    params.num_vertices = g_->num_vertices();
    hits += DistinguishFourCycles(stream, params) ? 1 : 0;
  }
  EXPECT_GE(hits, 7);
}

// The lower-bound gadgets must be *stream-model agnostic*: every counter
// should get the right answer on them given enough space (they are hard for
// SMALL space, not adversarial to correctness).
TEST(GadgetCrossCheck, TriangleGadgetCountedCorrectlyAtFullSpace) {
  Rng rng(1);
  const auto gadget = MakeTriangleLowerBoundGadget(20, 8, true, rng);
  Rng order(2);
  const EdgeStream stream = MakeRandomOrderStream(gadget.graph, order);
  RandomOrderTriangleCounter::Params params;
  params.base.epsilon = 0.2;
  params.base.c = 1e4;  // Saturated: exact regime.
  params.base.t_guess = 1e6;
  params.base.seed = 3;
  params.num_vertices = gadget.graph.num_vertices();
  EXPECT_NEAR(CountTrianglesRandomOrder(stream, params).value, 8.0, 1e-6);
}

TEST(GadgetCrossCheck, FourCycleGadgetDistinguishedAtFullSpace) {
  Rng rng(4);
  const auto yes = MakeFourCycleLowerBoundGadget(50, 10, 0.5, true, rng);
  const auto no = MakeFourCycleLowerBoundGadget(50, 10, 0.5, false, rng);
  ArbTwoPassDistinguisher::Params params;
  params.base.t_guess = 1.0;  // p = 1.
  params.base.c = 2.0;
  params.base.seed = 5;
  params.num_vertices = yes.graph.num_vertices();
  Rng order(6);
  EdgeStream sy = yes.graph.edges();
  order.Shuffle(sy);
  EXPECT_TRUE(DistinguishFourCycles(sy, params));
  EdgeStream sn = no.graph.edges();
  order.Shuffle(sn);
  EXPECT_FALSE(DistinguishFourCycles(sn, params));
}

// Cross-model consistency: the adjacency-list F2 counter and the
// arbitrary-order F2 counter estimate the same quantity; on a dense graph
// their estimates must agree with each other (and the truth) within noise.
TEST(CrossModelConsistency, F2CountersAgree) {
  Rng gen(7);
  const Graph g(ErdosRenyiGnp(160, 0.3, gen));
  const double exact = static_cast<double>(CountFourCycles(g));

  Rng rng(8);
  const AdjacencyStream adj_stream = MakeAdjacencyStream(g, rng);
  AdjF2FourCycleCounter::Params adj_params;
  adj_params.base.epsilon = 0.15;
  adj_params.base.t_guess = exact;
  adj_params.base.seed = 9;
  adj_params.num_vertices = g.num_vertices();
  adj_params.copies_per_group = 128;
  const double adj_est = CountFourCyclesAdjF2(adj_stream, adj_params).value;

  EdgeStream arb_stream = g.edges();
  rng.Shuffle(arb_stream);
  ArbF2FourCycleCounter::Params arb_params;
  arb_params.base.epsilon = 0.15;
  arb_params.base.seed = 10;
  arb_params.num_vertices = g.num_vertices();
  arb_params.copies_per_group = 128;
  const double arb_est = CountFourCyclesArbF2(arb_stream, arb_params).value;

  EXPECT_NEAR(adj_est, exact, 0.25 * exact);
  EXPECT_NEAR(arb_est, exact, 0.25 * exact);
}

// Degenerate inputs should not crash or return garbage.
TEST(DegenerateInputs, EmptyGraph) {
  EdgeList empty(10);
  empty.Finalize();
  Rng rng(1);
  const EdgeStream stream = MakeRandomOrderStream(empty, rng);
  RandomOrderTriangleCounter::Params params;
  params.base.t_guess = 1.0;
  params.num_vertices = 10;
  EXPECT_EQ(CountTrianglesRandomOrder(stream, params).value, 0.0);
}

TEST(DegenerateInputs, SingleEdge) {
  EdgeList g(2);
  g.Add(0, 1);
  g.Finalize();
  Rng rng(2);
  const EdgeStream stream = MakeRandomOrderStream(g, rng);
  RandomOrderTriangleCounter::Params params;
  params.base.t_guess = 1.0;
  params.num_vertices = 2;
  EXPECT_EQ(CountTrianglesRandomOrder(stream, params).value, 0.0);

  ArbTwoPassDistinguisher::Params dparams;
  dparams.base.t_guess = 1.0;
  dparams.num_vertices = 2;
  EXPECT_FALSE(DistinguishFourCycles(stream, dparams));
}

TEST(DegenerateInputs, StarHasNoCycles) {
  EdgeList star(100);
  for (VertexId v = 1; v < 100; ++v) star.Add(0, v);
  star.Finalize();
  const Graph sg(star);
  Rng rng(3);
  const AdjacencyStream stream = MakeAdjacencyStream(sg, rng);
  DiamondFourCycleCounter::Params params;
  params.base.t_guess = 4.0;
  params.base.epsilon = 0.25;
  params.num_vertices = 100;
  EXPECT_LT(CountFourCyclesDiamond(stream, params).value, 2.0);
}

TEST(DegenerateInputs, KarateEveryAlgorithmRuns) {
  // Smoke: the full API surface over the one real dataset.
  const EdgeList graph = KarateClub();
  const Graph g(graph);
  Rng rng(4);
  const EdgeStream es = MakeRandomOrderStream(graph, rng);
  const AdjacencyStream as = MakeAdjacencyStream(g, rng);

  RandomOrderTriangleCounter::Params tri;
  tri.base.t_guess = 45;
  tri.num_vertices = 34;
  EXPECT_GE(CountTrianglesRandomOrder(es, tri).value, 0.0);

  DiamondFourCycleCounter::Params dia;
  dia.base.t_guess = 154;
  dia.num_vertices = 34;
  EXPECT_GE(CountFourCyclesDiamond(as, dia).value, 0.0);

  AdjF2FourCycleCounter::Params f2;
  f2.base.t_guess = 154;
  f2.num_vertices = 34;
  f2.copies_per_group = 16;
  EXPECT_GE(CountFourCyclesAdjF2(as, f2).value, 0.0);

  ArbThreePassFourCycleCounter::Params tp;
  tp.base.t_guess = 154;
  tp.num_vertices = 34;
  EXPECT_GE(CountFourCyclesArbThreePass(es, tp).value, 0.0);
}

}  // namespace
}  // namespace cyclestream
