// Bit-identity tests for the batched hash bank (hash/kwise_bank.h) against
// the scalar KWiseHash reference, and for the sketches rebuilt on top of it
// (AmsF2, CountSketch) against hand-rolled scalar formulations. These are
// the enforcement half of the bank's "bit-identical contract": the SoA
// layout and lazy Mersenne reduction are pure implementation details and
// must never change a single output bit.

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "hash/kwise.h"
#include "hash/kwise_bank.h"
#include "hash/kwise_kernels.h"
#include "hash/rng.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/median_of_means.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

constexpr std::uint64_t kP = KWiseHash::kPrime;

// Keys that exercise the input reduction: zero, small, just below/at/above
// the prime, and full-width values where x mod p differs from x.
std::vector<std::uint64_t> ProbeKeys() {
  std::vector<std::uint64_t> keys = {0,     1,          2,       41,
                                     kP - 1, kP,        kP + 5,  1ULL << 62,
                                     ~0ULL, ~0ULL - 17, 0xDEADBEEFCAFEBABEULL};
  std::uint64_t s = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 64; ++i) keys.push_back(SplitMix64(s));
  return keys;
}

std::vector<std::uint64_t> MakeSeeds(std::size_t n, std::uint64_t base) {
  std::vector<std::uint64_t> seeds(n);
  std::uint64_t s = base;
  for (std::size_t i = 0; i < n; ++i) seeds[i] = SplitMix64(s);
  return seeds;
}

TEST(KWiseHashBankTest, EvalAllBitIdenticalToScalar) {
  const auto keys = ProbeKeys();
  for (int k : {2, 4, 8}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{128}}) {
      const auto seeds = MakeSeeds(n, 0xABCDEF01ULL * k + n);
      const KWiseHashBank bank(k, seeds);
      std::vector<KWiseHash> scalar;
      scalar.reserve(n);
      for (std::size_t i = 0; i < n; ++i) scalar.emplace_back(k, seeds[i]);

      std::vector<std::uint64_t> out(n);
      for (std::uint64_t x : keys) {
        bank.EvalAll(x, out.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(out[i], scalar[i](x))
              << "k=" << k << " n=" << n << " i=" << i << " x=" << x;
          ASSERT_EQ(bank.Eval(i, x), scalar[i](x));
        }
      }
    }
  }
}

TEST(KWiseHashBankTest, SignAllBitIdenticalToScalar) {
  const auto keys = ProbeKeys();
  for (int k : {2, 4}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{128}}) {
      const auto seeds = MakeSeeds(n, 0x5151ULL + 31 * k + n);
      const KWiseHashBank bank(k, seeds);
      std::vector<KWiseHash> scalar;
      for (std::size_t i = 0; i < n; ++i) scalar.emplace_back(k, seeds[i]);

      std::vector<signed char> signs(n);
      for (std::uint64_t x : keys) {
        bank.SignAll(x, signs.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(static_cast<int>(signs[i]), scalar[i].Sign(x))
              << "k=" << k << " n=" << n << " i=" << i << " x=" << x;
        }
      }
    }
  }
}

TEST(KWiseHashBankTest, ToUnitAllBitIdenticalToScalar) {
  const auto keys = ProbeKeys();
  for (int k : {2, 8}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{128}}) {
      const auto seeds = MakeSeeds(n, 0x7777ULL + 13 * k + n);
      const KWiseHashBank bank(k, seeds);
      std::vector<KWiseHash> scalar;
      for (std::size_t i = 0; i < n; ++i) scalar.emplace_back(k, seeds[i]);

      std::vector<double> units(n);
      for (std::uint64_t x : keys) {
        bank.ToUnitAll(x, units.data());
        for (std::size_t i = 0; i < n; ++i) {
          // Bit-level equality of doubles, not approximate.
          ASSERT_EQ(units[i], scalar[i].ToUnit(x));
          ASSERT_EQ(bank.ToUnit(i, x), scalar[i].ToUnit(x));
        }
      }
    }
  }
}

TEST(KWiseHashBankTest, AccumulateSignedMatchesScalarUpdateLoop) {
  // Both the k = 4 fused fast path and the general-k tile path must produce
  // exactly the floating-point sums a scalar per-copy loop produces.
  const auto keys = ProbeKeys();
  for (int k : {4, 6}) {
    for (std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{128}}) {
      const auto seeds = MakeSeeds(n, 0x4242ULL + 7 * k + n);
      const KWiseHashBank bank(k, seeds);
      std::vector<KWiseHash> scalar;
      for (std::size_t i = 0; i < n; ++i) scalar.emplace_back(k, seeds[i]);

      std::vector<double> banked(n, 0.0), reference(n, 0.0);
      double delta = 1.0;
      for (std::uint64_t x : keys) {
        bank.AccumulateSigned(x, delta, banked.data());
        for (std::size_t i = 0; i < n; ++i) {
          reference[i] += scalar[i].Sign(x) > 0 ? delta : -delta;
        }
        delta = -delta * 1.25;  // Exercise negative and non-unit deltas.
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(banked[i], reference[i]) << "k=" << k << " n=" << n;
      }
    }
  }
}

TEST(KWiseHashBankTest, CoefficientDerivationMatchesScalarSpace) {
  // SpaceWords must equal the sum over members of the scalar accounting.
  const auto seeds = MakeSeeds(17, 99);
  const KWiseHashBank bank(5, seeds);
  EXPECT_EQ(bank.SpaceWords(), 17u * 5u);
  EXPECT_EQ(bank.size(), 17u);
  EXPECT_EQ(bank.k(), 5);
}

// ---------------------------------------------------------------------------
// Block-kernel equivalence matrix: every SIMD tier × block size × bank shape
// must be bit-identical to the per-key reference paths. SketchSimdMode is
// process-global, so each test restores kAuto on exit.

class ScopedSimdMode {
 public:
  explicit ScopedSimdMode(SketchSimdMode mode) : saved_(GetSketchSimdMode()) {
    SetSketchSimdMode(mode);
  }
  ~ScopedSimdMode() { SetSketchSimdMode(saved_); }

 private:
  SketchSimdMode saved_;
};

const std::vector<SketchSimdMode>& TierMatrix() {
  // kAvx2 / kAuto silently fall back to scalar on machines without the ISA,
  // so the matrix is safe (if redundant) everywhere.
  static const std::vector<SketchSimdMode> kModes = {
      SketchSimdMode::kScalar, SketchSimdMode::kAvx2, SketchSimdMode::kAuto};
  return kModes;
}

std::vector<std::uint64_t> BlockKeys(std::size_t count, std::uint64_t seed) {
  std::vector<std::uint64_t> keys = ProbeKeys();
  std::uint64_t s = seed;
  while (keys.size() < count) keys.push_back(SplitMix64(s));
  keys.resize(count);
  return keys;
}

TEST(KWiseBankBlockTest, EvalBlockBitIdenticalAcrossTiersAndShapes) {
  for (SketchSimdMode mode : TierMatrix()) {
    ScopedSimdMode scoped(mode);
    for (int k : {1, 2, 3, 4, 6}) {
      for (std::size_t n : {std::size_t{5}, std::size_t{16}, std::size_t{129}}) {
        const auto seeds = MakeSeeds(n, 0xB10CULL + 17 * k + n);
        const KWiseHashBank bank(k, seeds);
        for (std::size_t block : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}, std::size_t{4096}}) {
          const auto keys = BlockKeys(block, 0xC0FFEEULL + block);
          std::vector<std::uint64_t> got(block * n, ~0ULL);
          bank.EvalBlock(keys, got.data());
          std::vector<std::uint64_t> want(n);
          for (std::size_t b = 0; b < block; ++b) {
            bank.EvalAll(keys[b], want.data());
            for (std::size_t i = 0; i < n; ++i) {
              ASSERT_EQ(got[b * n + i], want[i])
                  << "tier=" << ActiveSketchKernels() << " k=" << k
                  << " n=" << n << " block=" << block << " b=" << b
                  << " i=" << i;
            }
          }
        }
      }
    }
  }
}

TEST(KWiseBankBlockTest, AccumulateSignedBlockBitIdenticalAcrossTiers) {
  for (SketchSimdMode mode : TierMatrix()) {
    ScopedSimdMode scoped(mode);
    for (int k : {2, 4, 6}) {
      for (std::size_t n : {std::size_t{5}, std::size_t{16}, std::size_t{129},
                            std::size_t{1152}}) {
        const auto seeds = MakeSeeds(n, 0xACC0ULL + 5 * k + n);
        const KWiseHashBank bank(k, seeds);
        for (std::size_t block : {std::size_t{1}, std::size_t{3},
                                  std::size_t{8}, std::size_t{4096}}) {
          const auto keys = BlockKeys(block, 0xFEEDULL + block);
          std::vector<double> got(n, 0.0), want(n, 0.0);
          const double delta = (block % 2) ? 1.0 : -0.75;
          bank.AccumulateSignedBlock(keys, delta, got.data());
          for (std::uint64_t key : keys) {
            bank.AccumulateSigned(key, delta, want.data());
          }
          for (std::size_t i = 0; i < n; ++i) {
            ASSERT_EQ(got[i], want[i])
                << "tier=" << ActiveSketchKernels() << " k=" << k << " n=" << n
                << " block=" << block << " i=" << i;
          }
        }
      }
    }
  }
}

TEST(KWiseBankBlockTest, EmptyBlocksAreNoOps) {
  const auto seeds = MakeSeeds(9, 0xE117ULL);
  const KWiseHashBank bank(4, seeds);
  std::vector<double> counters(9, 3.5);
  bank.AccumulateSignedBlock({}, 2.0, counters.data());
  for (double c : counters) EXPECT_EQ(c, 3.5);
  bank.EvalBlock({}, nullptr);  // Must not touch the null output.
  const KWiseHashBank empty;
  std::vector<std::uint64_t> keys = {1, 2, 3};
  empty.AccumulateSignedBlock(keys, 1.0, counters.data());
  empty.EvalBlock(keys, nullptr);
  for (double c : counters) EXPECT_EQ(c, 3.5);
}

TEST(KWiseBankBlockTest, RestoredBankBlockPathsMatchConstructed) {
  // A bank adopted via RestoreState must rebuild its derived split tables:
  // block results have to match the originally constructed bank even when
  // the tables were warm before restore.
  const auto seeds = MakeSeeds(16, 0x2E57ULL);
  const KWiseHashBank bank(4, seeds);
  const auto keys = BlockKeys(64, 0x2E58ULL);
  std::vector<double> want(16, 0.0);
  bank.AccumulateSignedBlock(keys, 1.0, want.data());

  StateWriter w;
  bank.SaveState(w);

  KWiseHashBank restored;
  StateReader r1(w.str());
  ASSERT_TRUE(restored.RestoreState(r1));
  std::vector<double> got(16, 0.0);
  restored.AccumulateSignedBlock(keys, 1.0, got.data());
  for (std::size_t i = 0; i < 16; ++i) ASSERT_EQ(got[i], want[i]);
}

// ---------------------------------------------------------------------------
// Sketch-level golden tests: the rebuilt sketches must equal a from-scratch
// scalar formulation that replicates the historical seed chains.

TEST(AmsF2GoldenTest, MatchesScalarFormulationBitExactly) {
  const std::size_t groups = 5, per_group = 6;
  const std::uint64_t seed = 0xF00DULL;
  AmsF2 sketch(groups, per_group, seed);

  // Scalar reference: same seed chain (one SplitMix64 draw per estimator),
  // one 4-wise sign hash and one running sum Z per estimator.
  const std::size_t total = groups * per_group;
  const auto seeds = MakeSeeds(total, seed);
  std::vector<KWiseHash> signs;
  for (std::size_t i = 0; i < total; ++i) signs.emplace_back(4, seeds[i]);
  std::vector<double> z(total, 0.0);

  std::uint64_t s = 123;
  for (int step = 0; step < 500; ++step) {
    const std::uint64_t key = SplitMix64(s) % 97;  // Repeated keys.
    const double delta = (step % 5 == 0) ? -1.0 : 1.0;
    sketch.Update(key, delta);
    for (std::size_t i = 0; i < total; ++i) {
      z[i] += signs[i].Sign(key) > 0 ? delta : -delta;
    }
  }

  std::vector<double> squares(total);
  for (std::size_t i = 0; i < total; ++i) squares[i] = z[i] * z[i];
  EXPECT_EQ(sketch.Estimate(), MedianOfMeans(squares, groups));
}

TEST(CountSketchGoldenTest, MatchesScalarFormulationBitExactly) {
  for (std::size_t width : {512u, 100u}) {  // Power-of-two mask and modulo.
    const std::size_t depth = 5;
    const std::uint64_t seed = 0xBEEFULL + width;
    CountSketch sketch(depth, width, seed);

    // Scalar reference replicating the interleaved per-row seed chain.
    std::uint64_t s = seed;
    std::vector<KWiseHash> buckets, row_signs;
    for (std::size_t r = 0; r < depth; ++r) {
      buckets.emplace_back(2, SplitMix64(s));
      row_signs.emplace_back(4, SplitMix64(s));
    }
    std::vector<double> table(depth * width, 0.0);

    std::uint64_t keystate = 7;
    for (int step = 0; step < 400; ++step) {
      const std::uint64_t key = SplitMix64(keystate) % 61;
      const double delta = (step % 3 == 0) ? -2.5 : 1.0;
      sketch.Update(key, delta);
      for (std::size_t r = 0; r < depth; ++r) {
        const std::uint64_t b = buckets[r](key) % width;
        table[r * width + b] += row_signs[r].Sign(key) > 0 ? delta : -delta;
      }
    }

    // Every key estimate must match the reference median computation.
    for (std::uint64_t key = 0; key < 61; ++key) {
      std::vector<double> rows(depth);
      for (std::size_t r = 0; r < depth; ++r) {
        const double cell = table[r * width + buckets[r](key) % width];
        rows[r] = row_signs[r].Sign(key) > 0 ? cell : -cell;
      }
      std::nth_element(rows.begin(), rows.begin() + rows.size() / 2,
                       rows.end());
      ASSERT_EQ(sketch.Query(key), rows[rows.size() / 2])
          << "width=" << width << " key=" << key;
    }
  }
}

TEST(CountSketchGoldenTest, UpdateAndQueryEqualsUpdateThenQuery) {
  CountSketch a(5, 512, 42);
  CountSketch b(5, 512, 42);
  std::uint64_t s = 9;
  for (int step = 0; step < 300; ++step) {
    const std::uint64_t key = SplitMix64(s) % 40;
    const double delta = (step & 1) ? 1.5 : -0.5;
    const double qa = a.UpdateAndQuery(key, delta);
    b.Update(key, delta);
    ASSERT_EQ(qa, b.Query(key));
  }
}

}  // namespace
}  // namespace cyclestream
