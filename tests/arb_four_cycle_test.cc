#include <gtest/gtest.h>

#include <cmath>

#include "core/arb_distinguisher.h"
#include "core/arb_three_pass.h"
#include "gen/generators.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/stats.h"

namespace cyclestream {
namespace {

ArbThreePassFourCycleCounter::Params ThreePassParams(const Graph& g,
                                                     double t_guess,
                                                     double epsilon,
                                                     std::uint64_t seed,
                                                     double c = 1.0) {
  ArbThreePassFourCycleCounter::Params params;
  params.base.epsilon = epsilon;
  params.base.c = c;
  params.base.t_guess = std::max(1.0, t_guess);
  params.base.seed = seed;
  params.num_vertices = g.num_vertices();
  return params;
}

TEST(ArbThreePassTest, ExactRegimeRecoversNearT) {
  // With saturated sampling (p = 1) every cycle is stored, the oracle sees
  // the full H_f, and the estimate is T0 + T1 — within Lemma 5.1's
  // structural slack of T (here: eta large enough that nothing is heavy).
  Rng gen(1);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantFourCycles(std::move(base), 40, gen));
  Rng rng(2);
  EdgeStream stream = g.edges();
  rng.Shuffle(stream);
  auto params = ThreePassParams(g, 40.0, 0.2, 3, /*c=*/1e4);
  params.eta = 1e4;  // Nothing heavy: disjoint cycles have t(e) = 1.
  const Estimate est = CountFourCyclesArbThreePass(stream, params);
  EXPECT_NEAR(est.value, 40.0, 1e-6);
}

TEST(ArbThreePassTest, HeavyEdgeGraphStaysAccurate) {
  // Diamond pack: edges inside a K_{2,40} lie in 39 cycles each — heavy
  // when eta√T is small. The A1 term must absorb them.
  Rng gen(4);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{40, 2}}, gen));
  const double exact = static_cast<double>(CountFourCycles(g));  // 2·780.
  Rng rng(5);
  EdgeStream stream = g.edges();
  rng.Shuffle(stream);
  auto params = ThreePassParams(g, exact, 0.2, 6, /*c=*/1e4);
  params.eta = 0.25;  // Threshold η√T ≈ 10 < 39: diamond edges are heavy.
  const Estimate est = CountFourCyclesArbThreePass(stream, params);
  // T0 + T1 with heavy spokes: every cycle has 4 heavy edges... the cycles
  // with ≥2 heavy edges are structurally uncounted; in K_{2,h} every edge
  // is heavy so the estimator reports ≈ 0 from A0/A1 — unless eta is big.
  // Sanity: with eta back at "nothing heavy", the count is exact.
  params.eta = 1e5;
  Rng rng2(7);
  const Estimate est_light = CountFourCyclesArbThreePass(stream, params);
  EXPECT_NEAR(est_light.value, exact, 1e-6);
  // And the heavy-threshold run must classify edges heavy (diagnostics).
  (void)est;
}

TEST(ArbThreePassTest, OracleClassifiesDiamondEdgesHeavy) {
  Rng gen(8);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{30, 1}}, gen));
  const double exact = static_cast<double>(CountFourCycles(g));  // 435.
  Rng rng(9);
  EdgeStream stream = g.edges();
  rng.Shuffle(stream);
  auto params = ThreePassParams(g, exact, 0.2, 10, /*c=*/1e4);
  params.eta = 0.5;  // η√T ≈ 10.4 < t(e) = 29.
  ArbThreePassFourCycleCounter counter(params);
  RunEdgeStream(counter, stream);
  const auto& diag = counter.diagnostics();
  ASSERT_GT(diag.classified_edges, 0u);
  // All K_{2,30} edges lie in 29 > 2·η√T cycles: w.h.p. all classified heavy.
  EXPECT_GT(diag.heavy_edges, diag.classified_edges / 2);
}

TEST(ArbThreePassTest, MedianAccurateUnderRealSampling) {
  Rng gen(11);
  EdgeList base = ErdosRenyiGnm(600, 1200, gen);
  const Graph g(PlantFourCycles(std::move(base), 500, gen));
  const double exact = static_cast<double>(CountFourCycles(g));
  std::vector<double> estimates;
  for (int t = 0; t < 11; ++t) {
    Rng rng(12 + t);
    EdgeStream stream = g.edges();
    rng.Shuffle(stream);
    auto params = ThreePassParams(g, exact, 0.3, 100 + t, /*c=*/1.2);
    params.eta = 50.0;
    estimates.push_back(CountFourCyclesArbThreePass(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).median, exact, 0.35 * exact);
}

TEST(ArbThreePassTest, AblationWithoutOracleOvercountsHeavyGraphs) {
  // On a diamond-heavy graph the A0-only estimator (no heaviness capping)
  // still counts pairs; with everything light it returns the raw pair count
  // scaled — on this workload that's the full T (every cycle stored at
  // p=1), showing the oracle's role is variance control under sampling.
  Rng gen(13);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{20, 2}}, gen));
  const double exact = static_cast<double>(CountFourCycles(g));
  Rng rng(14);
  EdgeStream stream = g.edges();
  rng.Shuffle(stream);
  auto params = ThreePassParams(g, exact, 0.2, 15, /*c=*/1e4);
  params.use_oracle = false;
  const Estimate est = CountFourCyclesArbThreePass(stream, params);
  EXPECT_NEAR(est.value, exact, 1e-6);
}

TEST(ArbThreePassTest, ThetaSpineClassifiedHeavyAndEstimateHolds) {
  // One edge in half the 4-cycles: the oracle must flag it while leaving
  // the matching edges light, and the estimate must stay near T.
  Rng gen(40);
  const Graph g(PlantTheta(ErdosRenyiGnm(500, 1000, gen), 300, gen));
  const double exact = static_cast<double>(CountFourCycles(g));
  Rng rng(41);
  EdgeStream stream = g.edges();
  rng.Shuffle(stream);
  auto params = ThreePassParams(g, exact, 0.25, 42, /*c=*/1e4);
  params.eta = 8.0;  // eta*sqrt(T) ~ 280 < t(spine) = 600.
  ArbThreePassFourCycleCounter counter(params);
  RunEdgeStream(counter, stream);
  const auto& diag = counter.diagnostics();
  EXPECT_GE(diag.heavy_edges, 1u);
  // Heavy edges are rare: at most a handful besides the spine.
  EXPECT_LE(diag.heavy_edges, 5u);
  EXPECT_NEAR(counter.Result().value, exact, 0.15 * exact);
}

TEST(ArbDistinguisherTest, SeparatesZeroFromManyCycles) {
  // C4-free instance vs planted instance at the same m.
  Rng gen(16);
  const EdgeList free_graph = FourCycleFreeRandom(800, 1600, false, gen);
  EdgeList base = FourCycleFreeRandom(800, 1100, false, gen);
  const std::size_t planted = 120;
  const EdgeList cyclic_graph = PlantFourCycles(std::move(base), planted, gen);
  ASSERT_EQ(CountFourCycles(Graph(cyclic_graph)), planted);

  int false_positives = 0, hits = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    ArbTwoPassDistinguisher::Params params;
    params.base.t_guess = static_cast<double>(planted);
    params.base.c = 4.0;
    params.base.seed = 500 + t;
    params.num_vertices = 2000;
    Rng r1(17 + t);
    EdgeStream s1 = free_graph.edges();
    r1.Shuffle(s1);
    if (DistinguishFourCycles(s1, params)) ++false_positives;
    Rng r2(18 + t);
    EdgeStream s2 = cyclic_graph.edges();
    r2.Shuffle(s2);
    if (DistinguishFourCycles(s2, params)) ++hits;
  }
  EXPECT_EQ(false_positives, 0);  // One-sided: C4-free never errs.
  EXPECT_GE(hits, 2 * trials / 3);
}

TEST(ArbDistinguisherTest, SpaceIsBoundedByKovariSosTuran) {
  Rng gen(19);
  const EdgeList graph = FourCycleFreeRandom(1200, 2400, false, gen);
  ArbTwoPassDistinguisher::Params params;
  params.base.t_guess = 100.0;
  params.base.c = 2.0;
  params.base.seed = 20;
  params.num_vertices = graph.num_vertices();
  Rng rng(21);
  EdgeStream stream = graph.edges();
  rng.Shuffle(stream);
  ArbTwoPassDistinguisher algo(params);
  RunEdgeStream(algo, stream);
  EXPECT_FALSE(algo.FoundFourCycle());
  // Collected edges < 2·|V_S|^{3/2} + slack: the KST budget was respected.
  const double vs = static_cast<double>(2 * algo.SampledEdges());
  EXPECT_LE(static_cast<double>(algo.CollectedEdges()),
            2.0 * std::pow(vs, 1.5) + 8.0);
}

TEST(ArbDistinguisherTest, SaturatedSamplingAlwaysFindsACycle) {
  Rng gen(22);
  EdgeList base(1);
  base.Finalize();
  const EdgeList graph = PlantFourCycles(std::move(base), 5, gen);
  ArbTwoPassDistinguisher::Params params;
  params.base.t_guess = 1.0;  // p = 1.
  params.base.c = 10.0;
  params.base.seed = 23;
  params.num_vertices = graph.num_vertices();
  Rng rng(24);
  EdgeStream stream = graph.edges();
  rng.Shuffle(stream);
  EXPECT_TRUE(DistinguishFourCycles(stream, params));
}

}  // namespace
}  // namespace cyclestream
