// Tests for the multi-query stream engine (src/engine): the broker's
// determinism contract (every query bit-identical to a standalone run of
// the same spec, at any thread count), the admission/budget layer's
// reject/queue semantics, the shared-pass accounting, and the manifest
// export.

#include <cstddef>
#include <string>
#include <vector>

#include "engine/broker.h"
#include "engine/budget.h"
#include "engine/query.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "gtest/gtest.h"
#include "stream/driver.h"
#include "stream/order.h"
#include "util/metrics.h"
#include "util/parallel.h"

namespace cyclestream::engine {
namespace {

// Restores the process-wide thread default on scope exit so tests don't
// leak their --threads choice into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) { SetDefaultThreads(threads); }
  ~ScopedThreads() { SetDefaultThreads(0); }
};

// The ISSUE's flagship scenario: a 16-query sweep mixing every edge-stream
// kind, including multi-pass algorithms.
std::vector<QuerySpec> MixedEdgeSpecs(VertexId num_vertices) {
  const QueryKind kinds[] = {
      QueryKind::kRandomOrderTriangles, QueryKind::kTriest,
      QueryKind::kCormodeJowhari,       QueryKind::kArbF2,
      QueryKind::kArbThreePass,         QueryKind::kBeraChakrabarti,
  };
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 16; ++i) {
    QuerySpec spec;
    spec.kind = kinds[i % (sizeof(kinds) / sizeof(kinds[0]))];
    spec.name = std::string(QueryKindName(spec.kind)) + "-" +
                std::to_string(i);
    spec.base.epsilon = 0.4;
    spec.base.c = 1.0;
    spec.base.t_guess = 120.0;
    spec.base.seed = 900 + static_cast<std::uint64_t>(i);
    spec.num_vertices = num_vertices;
    spec.reservoir_capacity = 500;
    specs.push_back(std::move(spec));
  }
  return specs;
}

EdgeStream MixedSweepStream(EdgeList* graph_out) {
  Rng gen(21);
  EdgeList graph = PlantFourCycles(
      PlantTriangles(ErdosRenyiGnm(400, 1200, gen), 80, gen), 80, gen);
  Rng order(22);
  EdgeStream stream = MakeRandomOrderStream(graph, order);
  *graph_out = std::move(graph);
  return stream;
}

TEST(EngineTest, MixedSweepBitIdenticalToStandaloneAtAnyThreadCount) {
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);
  const std::vector<QuerySpec> specs = MixedEdgeSpecs(graph.num_vertices());

  // Ground truth: each spec standalone through the ordinary driver.
  std::vector<Estimate> standalone;
  for (const QuerySpec& spec : specs) {
    EdgeQuery query = MakeEdgeQuery(spec);
    RunEdgeStream(*query.algorithm, stream);
    standalone.push_back(query.result());
  }

  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedThreads scoped(threads);
    StreamBroker broker;
    for (const QuerySpec& spec : specs) broker.AddQuery(spec);
    const std::vector<QueryOutcome> outcomes = broker.RunEdgeQueries(stream);
    ASSERT_EQ(outcomes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE(specs[i].name);
      EXPECT_EQ(outcomes[i].admission, AdmissionOutcome::kAdmitted);
      EXPECT_EQ(outcomes[i].wave, 0);
      // Bit-identical, not approximately equal.
      EXPECT_EQ(outcomes[i].estimate.value, standalone[i].value);
      EXPECT_EQ(outcomes[i].estimate.space_words, standalone[i].space_words);
      EXPECT_EQ(outcomes[i].items_delivered,
                static_cast<std::uint64_t>(outcomes[i].passes) *
                    stream.size());
    }

    // Shared-pass accounting: one physical read per logical pass number —
    // the deepest query (arb-three-pass) sets the read count for the wave.
    const EngineStats& stats = broker.stats();
    EXPECT_EQ(stats.waves, 1u);
    EXPECT_EQ(stats.physical_passes, 3u);
    EXPECT_EQ(stats.source_items_read, 3 * stream.size());
    EXPECT_EQ(stats.queries_admitted, 16u);
    EXPECT_EQ(stats.queries_queued, 0u);
    EXPECT_EQ(stats.queries_rejected, 0u);
    std::uint64_t expected_delivered = 0;
    for (const QueryOutcome& out : outcomes) {
      expected_delivered += out.items_delivered;
    }
    EXPECT_EQ(stats.items_delivered, expected_delivered);
  }
}

TEST(EngineTest, AdjacencyQueriesBitIdenticalToStandalone) {
  Rng gen(31);
  const Graph g(PlantDiamonds(ErdosRenyiGnm(100, 300, gen),
                              {DiamondSpec{5, 6}}, gen));
  Rng order(32);
  const AdjacencyStream stream = MakeAdjacencyStream(g, order);

  const QueryKind kinds[] = {QueryKind::kAdjDiamond, QueryKind::kAdjF2,
                             QueryKind::kAdjL2, QueryKind::kAdjDiamond};
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 4; ++i) {
    QuerySpec spec;
    spec.kind = kinds[i];
    spec.name = std::string(QueryKindName(spec.kind)) + "-" +
                std::to_string(i);
    spec.base.epsilon = 0.6;
    spec.base.t_guess = 100.0;
    spec.base.seed = 50 + static_cast<std::uint64_t>(i);
    spec.num_vertices = g.num_vertices();
    specs.push_back(std::move(spec));
  }

  std::vector<Estimate> standalone;
  for (const QuerySpec& spec : specs) {
    AdjacencyQuery query = MakeAdjacencyQuery(spec);
    RunAdjacencyStream(*query.algorithm, stream);
    standalone.push_back(query.result());
  }

  for (const int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ScopedThreads scoped(threads);
    StreamBroker broker;
    for (const QuerySpec& spec : specs) broker.AddQuery(spec);
    const std::vector<QueryOutcome> outcomes =
        broker.RunAdjacencyQueries(stream);
    ASSERT_EQ(outcomes.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      SCOPED_TRACE(specs[i].name);
      EXPECT_EQ(outcomes[i].estimate.value, standalone[i].value);
      EXPECT_EQ(outcomes[i].estimate.space_words, standalone[i].space_words);
    }
  }
}

TEST(EngineTest, SingleSharedReadForOnePassQueries) {
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);
  StreamBroker broker;
  for (int i = 0; i < 5; ++i) {
    QuerySpec spec;
    spec.name = "triest-" + std::to_string(i);
    spec.kind = QueryKind::kTriest;
    spec.base.seed = static_cast<std::uint64_t>(i);
    spec.reservoir_capacity = 100;
    broker.AddQuery(std::move(spec));
  }
  broker.RunEdgeQueries(stream);
  // Five one-pass queries, one physical read: the point of the engine.
  EXPECT_EQ(broker.stats().physical_passes, 1u);
  EXPECT_EQ(broker.stats().source_items_read, stream.size());
  EXPECT_EQ(broker.stats().items_delivered, 5 * stream.size());
}

QuerySpec BudgetedTriest(const std::string& name, std::uint64_t seed,
                         std::size_t budget_words) {
  QuerySpec spec;
  spec.name = name;
  spec.kind = QueryKind::kTriest;
  spec.base.seed = seed;
  spec.reservoir_capacity = 100;
  spec.space_budget_words = budget_words;
  return spec;
}

TEST(EngineTest, BudgetRejectsDeclarationOverPerQueryCap) {
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);
  BrokerOptions options;
  options.budget.per_query_words = 1000;
  StreamBroker broker(options);
  broker.AddQuery(BudgetedTriest("fits", 1, 800));
  broker.AddQuery(BudgetedTriest("too-big", 2, 5000));
  const auto outcomes = broker.RunEdgeQueries(stream);

  EXPECT_EQ(outcomes[0].admission, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(outcomes[0].wave, 0);
  EXPECT_GT(outcomes[0].estimate.space_words, 0u);

  EXPECT_EQ(outcomes[1].admission, AdmissionOutcome::kRejected);
  EXPECT_EQ(outcomes[1].wave, -1);
  EXPECT_EQ(outcomes[1].estimate.value, 0.0);
  EXPECT_EQ(outcomes[1].items_delivered, 0u);

  EXPECT_EQ(broker.stats().queries_admitted, 1u);
  EXPECT_EQ(broker.stats().queries_rejected, 1u);
  EXPECT_EQ(broker.stats().waves, 1u);
}

TEST(EngineTest, UnbudgetedQueryRejectedUnderAggregateCap) {
  // With an aggregate budget in force, a query that declares nothing can't
  // be admitted — the controller has no figure to reserve for it.
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);
  BrokerOptions options;
  options.budget.aggregate_words = 10000;
  StreamBroker broker(options);
  broker.AddQuery(BudgetedTriest("undeclared", 1, 0));
  const auto outcomes = broker.RunEdgeQueries(stream);
  EXPECT_EQ(outcomes[0].admission, AdmissionOutcome::kRejected);
  EXPECT_EQ(broker.stats().queries_rejected, 1u);
}

TEST(EngineTest, QueuedQueryRunsInLaterWaveWithIdenticalResult) {
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);

  // Standalone references for both specs.
  const QuerySpec first = BudgetedTriest("first", 7, 800);
  const QuerySpec second = BudgetedTriest("second", 8, 800);
  std::vector<Estimate> standalone;
  for (const QuerySpec* spec : {&first, &second}) {
    EdgeQuery query = MakeEdgeQuery(*spec);
    RunEdgeStream(*query.algorithm, stream);
    standalone.push_back(query.result());
  }

  // Aggregate headroom fits one 800-word reservation at a time, so the
  // second spec queues in wave 0 and runs alone in wave 1.
  BrokerOptions options;
  options.budget.aggregate_words = 1000;
  StreamBroker broker(options);
  broker.AddQuery(first);
  broker.AddQuery(second);
  const auto outcomes = broker.RunEdgeQueries(stream);

  EXPECT_EQ(outcomes[0].admission, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(outcomes[0].wave, 0);
  EXPECT_EQ(outcomes[1].admission, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(outcomes[1].wave, 1);

  // Queuing delays a query; it must not change its answer.
  EXPECT_EQ(outcomes[0].estimate.value, standalone[0].value);
  EXPECT_EQ(outcomes[1].estimate.value, standalone[1].value);

  const EngineStats& stats = broker.stats();
  EXPECT_EQ(stats.waves, 2u);
  EXPECT_EQ(stats.queries_admitted, 2u);
  EXPECT_EQ(stats.queries_queued, 1u);
  EXPECT_EQ(stats.queries_rejected, 0u);
  EXPECT_EQ(stats.budget_peak_words, 800u);
  // Two waves, one-pass queries: two physical reads of the stream.
  EXPECT_EQ(stats.source_items_read, 2 * stream.size());
}

TEST(EngineTest, VectorEdgeSourceZeroMaxEdgesIsEmptyAndDoesNotAdvance) {
  // Degenerate batch request: NextBlock(0) must report an empty block
  // without consuming anything, so a later sane-sized request still sees
  // the whole stream.
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);
  VectorEdgeSource source(stream);
  std::size_t count = 123;
  EXPECT_EQ(source.NextBlock(0, &count), nullptr);
  EXPECT_EQ(count, 0u);
  std::size_t total = 0;
  for (const Edge* block = source.NextBlock(4096, &count); block != nullptr;
       block = source.NextBlock(4096, &count)) {
    total += count;
  }
  EXPECT_EQ(total, stream.size());
}

TEST(EngineTest, ShardedBlockBackendBitIdenticalToStandaloneScalar) {
  // The tentpole determinism contract end-to-end: an arb-f2 query using the
  // batched SIMD kernels and intra-query shards through the broker must
  // reproduce, bit for bit, the estimate of the same spec run standalone
  // through the plain per-edge driver with the scalar backend.
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);

  QuerySpec spec;
  spec.name = "arb-f2-sharded";
  spec.kind = QueryKind::kArbF2;
  spec.base.epsilon = 0.4;
  spec.base.t_guess = 120.0;
  spec.base.seed = 777;
  spec.num_vertices = graph.num_vertices();

  EdgeQuery standalone = MakeEdgeQuery(spec);  // Default: scalar, 1 shard.
  RunEdgeStream(*standalone.algorithm, stream);
  const Estimate reference = standalone.result();

  ScopedThreads scoped(8);
  for (const int shards : {1, 4, 8}) {
    SCOPED_TRACE("intra_shards=" + std::to_string(shards));
    QuerySpec sharded = spec;
    sharded.sketch_backend = SketchBackend::kBlock;
    sharded.intra_shards = shards;
    StreamBroker broker;
    broker.AddQuery(sharded);
    const auto outcomes = broker.RunEdgeQueries(stream);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].admission, AdmissionOutcome::kAdmitted);
    EXPECT_EQ(outcomes[0].estimate.value, reference.value);
    EXPECT_EQ(outcomes[0].estimate.space_words, reference.space_words);
  }
}

TEST(EngineTest, ShardedBlockBackendManifestMatchesScalarBackend) {
  // Deterministic manifests must not leak the backend/shard choice: a block
  // +sharded run and a scalar run of the same specs export identical JSON.
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);

  auto run = [&](SketchBackend backend, int shards) {
    ScopedThreads scoped(backend == SketchBackend::kBlock ? 8 : 1);
    StreamBroker broker;
    for (int i = 0; i < 3; ++i) {
      QuerySpec spec;
      spec.name = "arb-f2-" + std::to_string(i);
      spec.kind = QueryKind::kArbF2;
      spec.base.epsilon = 0.5;
      spec.base.t_guess = 120.0;
      spec.base.seed = 40 + static_cast<std::uint64_t>(i);
      spec.num_vertices = graph.num_vertices();
      spec.sketch_backend = backend;
      spec.intra_shards = shards;
      broker.AddQuery(std::move(spec));
    }
    const auto outcomes = broker.RunEdgeQueries(stream);
    RunManifest manifest("engine_test");
    ExportToManifest(outcomes, broker.stats(), manifest);
    return manifest.DeterministicJson();
  };

  const std::string scalar = run(SketchBackend::kScalar, 1);
  EXPECT_EQ(scalar, run(SketchBackend::kBlock, 1));
  EXPECT_EQ(scalar, run(SketchBackend::kBlock, 8));
}

TEST(EngineTest, ManifestExportIsThreadCountInvariant) {
  EdgeList graph;
  const EdgeStream stream = MixedSweepStream(&graph);
  const std::vector<QuerySpec> specs = MixedEdgeSpecs(graph.num_vertices());

  std::vector<std::string> jsons;
  for (const int threads : {1, 4}) {
    ScopedThreads scoped(threads);
    StreamBroker broker;
    for (const QuerySpec& spec : specs) broker.AddQuery(spec);
    const auto outcomes = broker.RunEdgeQueries(stream);
    RunManifest manifest("engine_test");
    ExportToManifest(outcomes, broker.stats(), manifest);
    jsons.push_back(manifest.DeterministicJson());
  }
  EXPECT_EQ(jsons[0], jsons[1]);
  // The per-query sections must actually be there.
  EXPECT_NE(jsons[0].find("\"queries\""), std::string::npos);
  EXPECT_NE(jsons[0].find("\"triest-1\""), std::string::npos);
  EXPECT_NE(jsons[0].find("\"engine.source_items_read\""), std::string::npos);
}

TEST(AdmissionLedgerTest, TracksOutstandingReservations) {
  BudgetPolicy policy;
  policy.aggregate_words = 1000;
  AdmissionController controller(policy);
  EXPECT_EQ(controller.outstanding_reservations(), 0u);
  ASSERT_EQ(controller.Offer(400), AdmissionOutcome::kAdmitted);
  ASSERT_EQ(controller.Offer(400), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(controller.outstanding_reservations(), 2u);
  EXPECT_EQ(controller.reserved_words(), 800u);
  controller.Release(400);
  EXPECT_EQ(controller.outstanding_reservations(), 1u);
  controller.Release(400);
  EXPECT_EQ(controller.outstanding_reservations(), 0u);
  EXPECT_EQ(controller.reserved_words(), 0u);
  // Unbudgeted queries reserve nothing, so releasing 0 is always a no-op.
  controller.Release(0);
  EXPECT_EQ(controller.outstanding_reservations(), 0u);
}

// The supervisor's wave-retirement path (DESIGN.md §15): when a wave is
// poisoned mid-flight (retry exhaustion) or retired during a drain, every
// admitted slot's reservation is released exactly once — and the queued
// tail must then admit against the *restored* headroom, not a leaked or
// double-counted one.
TEST(AdmissionLedgerTest, MidWaveRetirementRestoresHeadroomExactly) {
  BudgetPolicy policy;
  policy.aggregate_words = 1000;
  AdmissionController controller(policy);
  // Wave 0 admits two queries and queues a third.
  ASSERT_EQ(controller.Offer(400), AdmissionOutcome::kAdmitted);
  ASSERT_EQ(controller.Offer(400), AdmissionOutcome::kAdmitted);
  ASSERT_EQ(controller.Offer(600), AdmissionOutcome::kQueued);
  EXPECT_EQ(controller.outstanding_reservations(), 2u);

  // The wave is poisoned: the supervisor retires every admitted slot.
  controller.Release(400);
  controller.Release(400);
  EXPECT_EQ(controller.outstanding_reservations(), 0u);
  EXPECT_EQ(controller.reserved_words(), 0u);

  // The queued query now admits into the full restored headroom, and the
  // peak still remembers the retired wave's high-water mark.
  EXPECT_EQ(controller.Offer(600), AdmissionOutcome::kAdmitted);
  EXPECT_EQ(controller.reserved_words(), 600u);
  EXPECT_EQ(controller.peak_reserved_words(), 800u);
  controller.Release(600);
  EXPECT_EQ(controller.outstanding_reservations(), 0u);
}

// Regression: Release used to subtract blindly from the tracker, so a
// double release (or releasing a size that was never admitted) silently
// inflated the aggregate headroom every later wave admitted against. The
// ledger turns both into an immediate abort.
TEST(AdmissionLedgerDeathTest, DoubleReleaseAborts) {
  BudgetPolicy policy;
  policy.aggregate_words = 1000;
  AdmissionController controller(policy);
  ASSERT_EQ(controller.Offer(400), AdmissionOutcome::kAdmitted);
  controller.Release(400);
  EXPECT_DEATH(controller.Release(400), "no outstanding reservation");
}

TEST(AdmissionLedgerDeathTest, WrongSizeReleaseAborts) {
  BudgetPolicy policy;
  policy.aggregate_words = 1000;
  AdmissionController controller(policy);
  ASSERT_EQ(controller.Offer(400), AdmissionOutcome::kAdmitted);
  EXPECT_DEATH(controller.Release(300), "no outstanding reservation");
  // Queued and rejected offers reserve nothing, so they are not releasable.
  AdmissionController capped(policy);
  ASSERT_EQ(capped.Offer(900), AdmissionOutcome::kAdmitted);
  ASSERT_EQ(capped.Offer(900), AdmissionOutcome::kQueued);
  ASSERT_EQ(capped.Offer(2000), AdmissionOutcome::kRejected);
  capped.Release(900);
  EXPECT_DEATH(capped.Release(900), "no outstanding reservation");
}

}  // namespace
}  // namespace cyclestream::engine
