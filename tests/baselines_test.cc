#include <gtest/gtest.h>

#include <cmath>

#include "baselines/bera_chakrabarti.h"
#include "baselines/cormode_jowhari.h"
#include "baselines/naive_sampling.h"
#include "baselines/triest.h"
#include "baselines/wedge_sampler.h"
#include "gen/generators.h"
#include "graph/datasets.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "stream/order.h"
#include "util/stats.h"

namespace cyclestream {
namespace {

TEST(TriestTest, ExactWhenReservoirHoldsEverything) {
  const EdgeList graph = KarateClub();
  for (const auto variant : {Triest::Variant::kBase, Triest::Variant::kImproved}) {
    Rng rng(1);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    Triest::Params params;
    params.reservoir_capacity = 1000;  // > m.
    params.variant = variant;
    params.seed = 2;
    Triest triest(params);
    RunEdgeStream(triest, stream);
    EXPECT_NEAR(triest.EstimateTriangles(), 45.0, 1e-9);
  }
}

TEST(TriestTest, ImprovedIsAccurateUnderMemoryPressure) {
  Rng gen(3);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(2000, 8000, gen), 300, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  std::vector<double> estimates;
  for (int t = 0; t < 15; ++t) {
    Rng rng(10 + t);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    Triest::Params params;
    params.reservoir_capacity = 2000;  // m/4ish.
    params.variant = Triest::Variant::kImproved;
    params.seed = 20 + t;
    Triest triest(params);
    RunEdgeStream(triest, stream);
    estimates.push_back(triest.EstimateTriangles());
  }
  EXPECT_NEAR(Summarize(estimates).median, exact, 0.35 * exact);
}

TEST(TriestTest, BaseVariantUnbiasedOverTrials) {
  Rng gen(4);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(800, 2400, gen), 150, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  std::vector<double> estimates;
  for (int t = 0; t < 40; ++t) {
    Rng rng(30 + t);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    Triest::Params params;
    params.reservoir_capacity = 1200;
    params.variant = Triest::Variant::kBase;
    params.seed = 40 + t;
    Triest triest(params);
    RunEdgeStream(triest, stream);
    estimates.push_back(triest.EstimateTriangles());
  }
  EXPECT_NEAR(Summarize(estimates).mean, exact, 0.35 * exact);
}

TEST(CormodeJowhariTest, AccurateOnLightGraphs) {
  Rng gen(5);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(2000, 6000, gen), 400, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  std::vector<double> estimates;
  for (int t = 0; t < 15; ++t) {
    Rng rng(50 + t);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    CormodeJowhariCounter::Params params;
    params.base.epsilon = 0.2;
    params.base.c = 2.0;
    params.base.t_guess = exact;
    params.base.seed = 60 + t;
    estimates.push_back(CountTrianglesCormodeJowhari(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).median, exact, 0.35 * exact);
}

TEST(CormodeJowhariTest, HeavyEdgeGraphUnderestimates) {
  // The (3+ε) weakness: when most triangles share one edge, the cap
  // suppresses their contribution and the estimate falls well below T —
  // precisely the barrier the §2.1 algorithm was built to break.
  Rng gen(6);
  EdgeList graph = PlantBook(ErdosRenyiGnm(2000, 6000, gen), 600, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  std::vector<double> estimates;
  for (int t = 0; t < 15; ++t) {
    Rng rng(70 + t);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    CormodeJowhariCounter::Params params;
    params.base.epsilon = 0.2;
    params.base.c = 2.0;
    params.base.t_guess = exact;
    params.base.seed = 80 + t;
    estimates.push_back(CountTrianglesCormodeJowhari(stream, params).value);
  }
  EXPECT_LT(Summarize(estimates).median, 0.75 * exact);
}

TEST(NaiveSamplingTest, UnbiasedTriangles) {
  Rng gen(7);
  EdgeList graph = PlantTriangles(ErdosRenyiGnm(500, 1500, gen), 2000, gen);
  const double exact = static_cast<double>(CountTriangles(Graph(graph)));
  std::vector<double> estimates;
  for (int t = 0; t < 30; ++t) {
    Rng rng(90 + t);
    const EdgeStream stream = MakeRandomOrderStream(graph, rng);
    estimates.push_back(
        NaiveSampleTriangles(stream, {0.5, 100 + static_cast<std::uint64_t>(t)})
            .value);
  }
  EXPECT_NEAR(Summarize(estimates).mean, exact, 0.2 * exact);
}

TEST(NaiveSamplingTest, UnbiasedFourCycles) {
  Rng gen(8);
  EdgeList base(1);
  base.Finalize();
  EdgeList graph = PlantFourCycles(std::move(base), 3000, gen);
  std::vector<double> estimates;
  for (int t = 0; t < 30; ++t) {
    Rng rng(110 + t);
    EdgeStream stream = graph.edges();
    rng.Shuffle(stream);
    estimates.push_back(
        NaiveSampleFourCycles(stream, {0.6, 200 + static_cast<std::uint64_t>(t)})
            .value);
  }
  EXPECT_NEAR(Summarize(estimates).mean, 3000.0, 0.2 * 3000.0);
}

TEST(NaiveSamplingTest, FullSampleIsExact) {
  const EdgeList graph = KarateClub();
  Rng rng(9);
  const EdgeStream stream = MakeRandomOrderStream(graph, rng);
  EXPECT_DOUBLE_EQ(NaiveSampleTriangles(stream, {1.0, 1}).value, 45.0);
}

TEST(BeraChakrabartiTest, UnbiasedOnPlantedCycles) {
  Rng gen(10);
  EdgeList base = ErdosRenyiGnm(500, 800, gen);
  const Graph g(PlantFourCycles(std::move(base), 400, gen));
  const double exact = static_cast<double>(CountFourCycles(g));
  std::vector<double> estimates;
  for (int t = 0; t < 15; ++t) {
    Rng rng(120 + t);
    EdgeStream stream = g.edges();
    rng.Shuffle(stream);
    BeraChakrabartiCounter::Params params;
    params.base.epsilon = 0.2;
    params.base.t_guess = exact;
    params.base.seed = 130 + t;
    params.num_pairs = 300000;
    estimates.push_back(CountFourCyclesBeraChakrabarti(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).mean, exact, 0.3 * exact);
}

TEST(WedgeSamplerTest, ExactAtFullRates) {
  Rng gen(20);
  EdgeList base(1);
  base.Finalize();
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{5, 8}}, gen));
  const double exact = static_cast<double>(CountFourCycles(g));
  Rng rng(21);
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  WedgeSamplingFourCycleCounter::Params params;
  params.base.seed = 22;
  params.num_vertices = g.num_vertices();
  params.vertex_rate = 1.0;
  params.edge_rate = 1.0;
  EXPECT_NEAR(CountFourCyclesWedgeSampling(stream, params).value, exact,
              1e-9);
}

TEST(WedgeSamplerTest, UnbiasedUnderSampling) {
  Rng gen(23);
  EdgeList base = ErdosRenyiGnm(400, 800, gen);
  const Graph g(PlantDiamonds(std::move(base), {DiamondSpec{6, 20}}, gen));
  const double exact = static_cast<double>(CountFourCycles(g));
  std::vector<double> estimates;
  for (int t = 0; t < 40; ++t) {
    Rng rng(24 + t);
    const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
    WedgeSamplingFourCycleCounter::Params params;
    params.base.seed = 100 + t;
    params.num_vertices = g.num_vertices();
    params.vertex_rate = 0.6;
    params.edge_rate = 0.6;
    estimates.push_back(CountFourCyclesWedgeSampling(stream, params).value);
  }
  EXPECT_NEAR(Summarize(estimates).mean, exact, 0.2 * exact);
}

TEST(BeraChakrabartiTest, ZeroOnCycleFreeGraph) {
  Rng gen(11);
  const EdgeList graph = FourCycleFreeRandom(400, 800, false, gen);
  Rng rng(12);
  EdgeStream stream = graph.edges();
  rng.Shuffle(stream);
  BeraChakrabartiCounter::Params params;
  params.base.t_guess = 100.0;
  params.base.seed = 13;
  params.num_pairs = 50000;
  EXPECT_DOUBLE_EQ(CountFourCyclesBeraChakrabarti(stream, params).value, 0.0);
}

}  // namespace
}  // namespace cyclestream
