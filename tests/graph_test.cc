#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <streambuf>

#include "graph/datasets.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/types.h"
#include "tests/test_util.h"

namespace cyclestream {
namespace {

using ::cyclestream::testing::Clique;
using ::cyclestream::testing::CycleGraph;
using ::cyclestream::testing::Path;
using ::cyclestream::testing::Star;

TEST(EdgeTest, CanonicalForm) {
  const Edge e(5, 2);
  EXPECT_EQ(e.u, 2u);
  EXPECT_EQ(e.v, 5u);
  EXPECT_EQ(e, Edge(2, 5));
  EXPECT_EQ(e.Other(2u), 5u);
  EXPECT_EQ(e.Other(5u), 2u);
  EXPECT_TRUE(e.Touches(2));
  EXPECT_FALSE(e.Touches(3));
}

TEST(EdgeTest, KeyRoundTrip) {
  const Edge e(17, 123456);
  EXPECT_EQ(PairFromKey(e.Key()), e);
  EXPECT_EQ(PairKey(123456, 17), e.Key());
}

TEST(EdgeListTest, DedupAndValidation) {
  EdgeList list(5);
  list.Add(0, 1);
  list.Add(1, 0);  // Duplicate after canonicalization.
  list.Add(2, 3);
  list.Finalize();
  EXPECT_EQ(list.num_edges(), 2u);
  EXPECT_TRUE(list.finalized());
}

TEST(EdgeListTest, FromPairsDropsSelfLoops) {
  const EdgeList list = EdgeList::FromPairs(4, {{0, 0}, {1, 2}, {2, 1}});
  EXPECT_EQ(list.num_edges(), 1u);
}

TEST(EdgeListTest, GrowsVertexCount) {
  EdgeList list(2);
  list.Add(0, 9);
  list.Finalize();
  EXPECT_EQ(list.num_vertices(), 10u);
}

TEST(GraphTest, CsrBasics) {
  const Graph g(Clique(4));
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.MaxDegree(), 3u);
  EXPECT_TRUE(g.HasEdge(1, 3));
  EXPECT_FALSE(g.HasEdge(0, 0));
  const auto nbrs = g.Neighbors(2);
  EXPECT_EQ(nbrs.size(), 3u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphTest, EmptyGraph) {
  EdgeList empty(3);
  empty.Finalize();
  const Graph g(empty);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(CountTriangles(g), 0u);
  EXPECT_EQ(CountFourCycles(g), 0u);
}

TEST(GraphTest, CommonNeighborCount) {
  const Graph g(Clique(5));
  EXPECT_EQ(g.CommonNeighborCount(0, 1), 3u);
}

struct CountCase {
  const char* name;
  EdgeList graph;
  std::uint64_t triangles;
  std::uint64_t four_cycles;
  std::uint64_t wedges;
};

class ExactCountTest : public ::testing::TestWithParam<CountCase> {};

TEST_P(ExactCountTest, CountsMatch) {
  const auto& param = GetParam();
  const Graph g(param.graph);
  EXPECT_EQ(CountTriangles(g), param.triangles) << param.name;
  EXPECT_EQ(CountFourCycles(g), param.four_cycles) << param.name;
  EXPECT_EQ(CountWedges(g), param.wedges) << param.name;
}

// K4: C(4,3)=4 triangles; three 4-cycles; wedges = 4·C(3,2)=12.
// K5: 10 triangles; 4-cycles = 3·C(5,4)=15; wedges = 5·C(4,2)=30.
// C4: one 4-cycle. C5: no 4-cycle. Star/path: nothing but wedges.
INSTANTIATE_TEST_SUITE_P(
    Families, ExactCountTest,
    ::testing::Values(
        CountCase{"K3", Clique(3), 1, 0, 3},
        CountCase{"K4", Clique(4), 4, 3, 12},
        CountCase{"K5", Clique(5), 10, 15, 30},
        CountCase{"C4", CycleGraph(4), 0, 1, 4},
        CountCase{"C5", CycleGraph(5), 0, 0, 5},
        CountCase{"C6", CycleGraph(6), 0, 0, 6},
        CountCase{"Star10", Star(10), 0, 0, 36},
        CountCase{"Path10", Path(10), 0, 0, 8}),
    [](const ::testing::TestParamInfo<CountCase>& info) {
      return info.param.name;
    });

TEST(ExactCountTest, KarateClub) {
  const Graph g(KarateClub());
  EXPECT_EQ(g.num_vertices(), 34u);
  EXPECT_EQ(g.num_edges(), 78u);
  EXPECT_EQ(CountTriangles(g), 45u);
  // Transitivity of the karate club is 3·45/528 ≈ 0.2556.
  EXPECT_NEAR(Transitivity(g), 0.2556, 0.001);
}

TEST(ExactCountTest, PerEdgeTriangleCountsSumToThreeT) {
  const Graph g(KarateClub());
  const auto counts = PerEdgeTriangleCounts(g);
  std::uint64_t sum = 0;
  for (auto c : counts) sum += c;
  EXPECT_EQ(sum, 3 * CountTriangles(g));
}

TEST(ExactCountTest, PerEdgeFourCycleCountsSumToFourT) {
  const Graph g(Clique(6));
  const auto counts = PerEdgeFourCycleCounts(g);
  std::uint64_t sum = 0;
  for (auto c : counts) sum += c;
  EXPECT_EQ(sum, 4 * CountFourCycles(g));
}

TEST(ExactCountTest, FourCyclesThroughEdgeInC4) {
  const Graph g(CycleGraph(4));
  EXPECT_EQ(CountFourCyclesThroughEdge(g, 0, 1), 1u);
}

TEST(ExactCountTest, FourCyclesThroughEdgeInK4) {
  const Graph g(Clique(4));
  // Each K4 edge lies in exactly 2 of the 3 four-cycles.
  EXPECT_EQ(CountFourCyclesThroughEdge(g, 0, 1), 2u);
}

TEST(WedgeVectorTest, CompleteBipartiteK23) {
  // K_{2,3}: sides {0,1}, {2,3,4}. x_{01} = 3, x_{uv} = 2 for pairs within
  // the size-3 side.
  EdgeList list(5);
  for (VertexId a : {0u, 1u}) {
    for (VertexId b : {2u, 3u, 4u}) list.Add(a, b);
  }
  list.Finalize();
  const Graph g(list);
  const WedgeVector x = ComputeWedgeVector(g);
  EXPECT_EQ(x.at(PairKey(0, 1)), 3u);
  EXPECT_EQ(x.at(PairKey(2, 3)), 2u);
  EXPECT_EQ(x.at(PairKey(2, 4)), 2u);
  EXPECT_EQ(x.at(PairKey(3, 4)), 2u);
  EXPECT_EQ(x.size(), 4u);
  // C(3,2) + 3·C(2,2)... : pairs {0,1}:C(3,2)=3 cycles counted once each +
  // three pairs with C(2,2)=1: total/2 = (3+3)/2 = 3 four-cycles.
  EXPECT_EQ(CountFourCyclesFromWedges(x), 3u);
  EXPECT_EQ(WedgeVectorF2(x), 9u + 3u * 4u);
  EXPECT_EQ(WedgeVectorCappedF1(x, 2), 2u + 3u * 2u);
}

TEST(DiamondHistogramTest, PlantedDiamond) {
  // One diamond of size 3 = K_{2,3}.
  EdgeList list(5);
  for (VertexId a : {0u, 1u}) {
    for (VertexId b : {2u, 3u, 4u}) list.Add(a, b);
  }
  list.Finalize();
  const auto hist = DiamondHistogram(Graph(list));
  EXPECT_EQ(hist.at(3), 1u);   // The (0,1) diamond.
  EXPECT_EQ(hist.at(2), 3u);   // The three within-side pairs.
}

TEST(HeavinessProfileTest, TotalsMatchExactCount) {
  const Graph g(Clique(7));
  const auto profile = ProfileFourCycleHeaviness(g, /*threshold=*/1);
  EXPECT_EQ(profile.total, CountFourCycles(g));
  // Threshold 1: every edge of every cycle is "bad".
  EXPECT_EQ(profile.with_bad[4], profile.total);
}

TEST(HeavinessProfileTest, HighThresholdMeansNoBadEdges) {
  const Graph g(Clique(6));
  const auto profile = ProfileFourCycleHeaviness(g, /*threshold=*/1000000);
  EXPECT_EQ(profile.bad_edges, 0u);
  EXPECT_EQ(profile.with_bad[0], profile.total);
}

TEST(IoTest, RoundTrip) {
  EdgeList original = KarateClub();
  const std::string path = ::testing::TempDir() + "/karate.txt";
  ASSERT_TRUE(SaveEdgeListText(original, path));
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), original.num_edges());
  EXPECT_EQ(CountTriangles(Graph(*loaded)), 45u);
  std::remove(path.c_str());
}

TEST(IoTest, ParsesCommentsAndRemapsIds) {
  const std::string path = ::testing::TempDir() + "/toy.txt";
  {
    std::ofstream out(path);
    out << "# comment line\n100 200\n200 300  # trailing comment\n\n";
  }
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 3u);
  EXPECT_EQ(loaded->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(LoadEdgeListText("/nonexistent/file.txt").has_value());
}

// Regression: stream extraction into std::uint64_t accepts a leading '-'
// and wraps (strtoull semantics), so "-3" used to densify as 2^64 - 3 and
// load without complaint. Negative ids must reject the whole file.
TEST(IoTest, NegativeVertexIdIsRejected) {
  const std::string path = ::testing::TempDir() + "/negative.txt";
  {
    std::ofstream out(path);
    out << "1 2\n-3 4\n";
  }
  EXPECT_FALSE(LoadEdgeListText(path).has_value());
  std::remove(path.c_str());
}

TEST(IoTest, NonNumericVertexIdIsRejected) {
  const std::string path = ::testing::TempDir() + "/nonnumeric.txt";
  {
    std::ofstream out(path);
    out << "1 2\nfoo 4\n";
  }
  EXPECT_FALSE(LoadEdgeListText(path).has_value());
  {
    std::ofstream out(path);
    out << "1 2\n3x 4\n";  // Numeric prefix with junk glued on.
  }
  EXPECT_FALSE(LoadEdgeListText(path).has_value());
  std::remove(path.c_str());
}

TEST(IoTest, TrailingGarbageLoadsEndpointsAndContinues) {
  const std::string path = ::testing::TempDir() + "/weighted.txt";
  {
    std::ofstream out(path);
    // SNAP-style extras (weights / timestamps) after the endpoints.
    out << "1 2 0.75\n2 3 1588000000\n";
  }
  auto loaded = LoadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 3u);
  EXPECT_EQ(loaded->num_edges(), 2u);
  std::remove(path.c_str());
}

TEST(IoTest, StreamOverloadParses) {
  std::istringstream in("0 1\n1 2\n");
  auto loaded = LoadEdgeListText(in, "<memory>");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_vertices(), 3u);
  EXPECT_EQ(loaded->num_edges(), 2u);
}

TEST(IoTest, SelfLoopsDroppedWithoutDensifying) {
  // Policy: self-loops are dropped (warn-and-drop), and their endpoints are
  // checked before densification — a vertex mentioned only in self-loops
  // must not survive as an isolated vertex.
  std::istringstream in("5 5\n1 2\n7 7\n2 3\n");
  auto loaded = LoadEdgeListText(in, "<memory>");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_EQ(loaded->num_vertices(), 3u);  // Only {1, 2, 3} densified.
}

TEST(IoTest, DuplicateEdgesDropped) {
  // "2 1" duplicates "1 2" after canonicalization; both copies plus the
  // literal repeat collapse to one edge.
  std::istringstream in("1 2\n2 1\n1 2\n2 3\n");
  auto loaded = LoadEdgeListText(in, "<memory>");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->num_edges(), 2u);
  EXPECT_EQ(loaded->num_vertices(), 3u);
}

// Regression: LoadEdgeListText is implemented on the streaming
// ForEachEdgeText, and the two must keep identical warn-and-drop policy.
// Feed both paths an input exercising every drop rule and require the
// streaming stats to match the materialized EdgeList exactly.
TEST(IoTest, StreamingStatsMatchVectorPath) {
  const std::string input =
      "# header\n"
      "5 5\n"      // Self-loop: dropped, endpoints not densified.
      "1 2\n"
      "2 1\n"      // Duplicate of 1-2 after canonicalization.
      "1 2\n"      // Literal duplicate.
      "2 3\n"
      "7 7\n"      // Another self-loop.
      "9 3\n";
  std::istringstream vec_in(input);
  const auto loaded = LoadEdgeListText(vec_in, "<memory>");
  ASSERT_TRUE(loaded.has_value());

  std::istringstream stream_in(input);
  std::size_t delivered = 0;
  const auto stats =
      ForEachEdgeText(stream_in, "<memory>", [&](const Edge&) {
        ++delivered;
      });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->edges, loaded->num_edges());
  EXPECT_EQ(stats->edges, delivered);
  EXPECT_EQ(stats->num_vertices, loaded->num_vertices());
  EXPECT_EQ(stats->self_loops, 2u);
  EXPECT_EQ(stats->duplicates, 2u);
}

// The streaming path must reject a mid-file error like the vector path,
// even though a prefix was already delivered.
TEST(IoTest, StreamingPathRejectsMalformedLine) {
  std::istringstream in("0 1\n1 2\nbogus x\n");
  std::size_t delivered = 0;
  const auto stats = ForEachEdgeText(in, "<memory>", [&](const Edge&) {
    ++delivered;
  });
  EXPECT_FALSE(stats.has_value());
  EXPECT_EQ(delivered, 2u);  // The contract: discard state on failure.
}

// Streambuf that serves a prefix of real data, then fails the underlying
// read (as a disk error would), driving the istream's badbit.
class FailingAfterPrefixBuf : public std::streambuf {
 public:
  explicit FailingAfterPrefixBuf(std::string prefix)
      : prefix_(std::move(prefix)) {
    setg(prefix_.data(), prefix_.data(), prefix_.data() + prefix_.size());
  }

 protected:
  int_type underflow() override { throw std::ios_base::failure("io error"); }

 private:
  std::string prefix_;
};

// Regression: the getline loop used to treat *any* stream termination as a
// clean EOF, so a mid-file read error returned a silently truncated graph
// and every count computed on it was quietly wrong. A bad stream must fail
// the load outright.
TEST(IoTest, ReadErrorMidFileRejectsTruncatedGraph) {
  FailingAfterPrefixBuf buf("0 1\n1 2\n2 3\n");
  std::istream in(&buf);
  EXPECT_FALSE(LoadEdgeListText(in, "<failing>").has_value());
  EXPECT_TRUE(in.bad());
}

}  // namespace
}  // namespace cyclestream
