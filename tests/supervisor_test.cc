// Tests for the supervision layer (src/engine/supervisor): deterministic
// retry backoff, the daemon manifest codec, heartbeat append/read
// (including torn tails), wait-status decoding, and the supervised batch's
// flagship contracts — bit-identity with the single-process broker at any
// worker count, identity preserved across kill-injection retries, retry
// exhaustion poisoning only the wave (never the daemon), and drain/crash
// resume completing to the byte-identical result.

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "engine/broker.h"
#include "engine/coordinator.h"
#include "engine/query.h"
#include "engine/shard.h"
#include "engine/spec.h"
#include "engine/supervisor.h"
#include "gen/generators.h"
#include "gtest/gtest.h"
#include "stream/checkpoint.h"
#include "stream/order.h"

namespace cyclestream::engine {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "supervisor_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Clears both drain latches on entry and exit so a drain test can never
// leak its request into a later test (the latches are process-global).
class DrainLatchGuard {
 public:
  DrainLatchGuard() { Reset(); }
  ~DrainLatchGuard() { Reset(); }

 private:
  static void Reset() {
    ClearSupervisorDrainRequest();
    ClearWorkerDrainRequest();
  }
};

// An 8-query arb-f2 batch whose budgets, under SupervisedBudget(), split
// into multiple waves with one queued tail and one reject.
std::vector<QuerySpec> SupervisedSpecs(VertexId num_vertices) {
  std::vector<QuerySpec> specs;
  for (int i = 0; i < 8; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kArbF2;
    spec.name = "arb-f2-" + std::to_string(i);
    spec.base.epsilon = 0.3 + 0.1 * (i % 3);
    spec.base.c = 1.0;
    spec.base.t_guess = 150.0;
    spec.base.seed = 900 + static_cast<std::uint64_t>(i);
    spec.num_vertices = num_vertices;
    spec.space_budget_words = i == 7 ? 5000 : 400 + 100 * (i % 3);
    specs.push_back(std::move(spec));
  }
  return specs;
}

BudgetPolicy SupervisedBudget() {
  BudgetPolicy budget;
  budget.per_query_words = 700;   // Rejects the 5000-word spec.
  budget.aggregate_words = 1100;  // ~2 queries per wave.
  return budget;
}

EdgeStream SupervisorStream(VertexId* num_vertices) {
  Rng gen(47);
  EdgeList graph = PlantFourCycles(ErdosRenyiGnm(180, 500, gen), 12, gen);
  *num_vertices = graph.num_vertices();
  Rng order(48);
  return MakeRandomOrderStream(graph, order);
}

std::vector<QueryOutcome> BrokerOracle(const std::vector<QuerySpec>& specs,
                                       const EdgeStream& stream,
                                       const BudgetPolicy& budget,
                                       EngineStats* stats) {
  BrokerOptions options;
  options.budget = budget;
  StreamBroker broker(options);
  for (const QuerySpec& spec : specs) broker.AddQuery(spec);
  std::vector<QueryOutcome> outcomes = broker.RunEdgeQueries(stream);
  *stats = broker.stats();
  return outcomes;
}

void ExpectOutcomesIdentical(const std::vector<QueryOutcome>& want,
                             const std::vector<QueryOutcome>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    SCOPED_TRACE(want[i].spec.name);
    EXPECT_EQ(want[i].admission, got[i].admission);
    EXPECT_EQ(want[i].wave, got[i].wave);
    EXPECT_FALSE(got[i].poisoned);
    // Bit-identical: supervision must only add recovery around the
    // workers, never perturb a single merged addition.
    EXPECT_EQ(want[i].estimate.value, got[i].estimate.value);
    EXPECT_EQ(want[i].estimate.space_words, got[i].estimate.space_words);
    EXPECT_EQ(want[i].passes, got[i].passes);
    EXPECT_EQ(want[i].items_delivered, got[i].items_delivered);
  }
}

void ExpectStatsIdentical(const EngineStats& want, const EngineStats& got) {
  EXPECT_EQ(want.source_items_read, got.source_items_read);
  EXPECT_EQ(want.items_delivered, got.items_delivered);
  EXPECT_EQ(want.physical_passes, got.physical_passes);
  EXPECT_EQ(want.waves, got.waves);
  EXPECT_EQ(want.queries_admitted, got.queries_admitted);
  EXPECT_EQ(want.queries_queued, got.queries_queued);
  EXPECT_EQ(want.queries_rejected, got.queries_rejected);
  EXPECT_EQ(want.budget_peak_words, got.budget_peak_words);
}

SupervisorOptions InProcessOptions(const std::string& dir, int workers) {
  SupervisorOptions options;
  options.plan.num_workers = workers;
  options.plan.shard_dir = dir;
  options.plan.budget = SupervisedBudget();
  options.plan.block_edges = 64;
  options.plan.epoch_edges = 50;
  options.sleep_in_backoff = false;  // Account, don't wall-clock-sleep.
  return options;
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

TEST(BackoffTest, DeterministicAndWithinJitterSpan) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.backoff_cap_ms = 10000;
  policy.jitter_seed = 42;
  for (int attempt = 2; attempt <= 9; ++attempt) {
    SCOPED_TRACE("attempt=" + std::to_string(attempt));
    const std::uint64_t ms = ComputeBackoffMs(policy, 3, 1, attempt);
    // Same inputs, same backoff: retries are reproducible by design.
    EXPECT_EQ(ms, ComputeBackoffMs(policy, 3, 1, attempt));
    const std::uint64_t floor =
        std::min(policy.backoff_cap_ms,
                 policy.base_backoff_ms << (attempt - 2));
    EXPECT_GE(ms, floor);
    EXPECT_LE(ms, floor + policy.base_backoff_ms / 2);
  }
}

TEST(BackoffTest, CapsSaturatingShift) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.backoff_cap_ms = 1500;
  // attempt 70 would shift by 68 — far past any representable doubling.
  const std::uint64_t ms = ComputeBackoffMs(policy, 0, 0, 70);
  EXPECT_GE(ms, policy.backoff_cap_ms);
  EXPECT_LE(ms, policy.backoff_cap_ms + policy.base_backoff_ms / 2);
}

TEST(BackoffTest, JitterDecorrelatesWorkers) {
  RetryPolicy policy;
  policy.base_backoff_ms = 1000;  // Jitter span [0, 500]: room to differ.
  std::set<std::uint64_t> seen;
  for (std::uint32_t worker = 0; worker < 8; ++worker) {
    seen.insert(ComputeBackoffMs(policy, 0, worker, 2));
  }
  EXPECT_GT(seen.size(), 1u) << "every worker drew the same jitter";
}

TEST(BackoffDeathTest, FirstLaunchHasNoBackoff) {
  EXPECT_DEATH(ComputeBackoffMs(RetryPolicy{}, 0, 0, 1),
               "backoff precedes a retry");
}

// ---------------------------------------------------------------------------
// Daemon manifest codec
// ---------------------------------------------------------------------------

DaemonManifest SampleManifest() {
  DaemonManifest m;
  m.stream_fingerprint = 0xDEADBEEFCAFEF00D;
  m.stream_length = 500;
  m.batch_spec_fingerprint = 0x1234567890ABCDEF;
  m.num_workers = 4;
  m.epoch_edges = 50;
  m.block_edges = 64;
  m.aggregate_words = 1100;
  m.per_query_words = 700;
  m.waves_started = 3;
  m.drained = 1;
  m.pending_slots = {4, 5, 6};
  return m;
}

TEST(DaemonManifestTest, RoundTrips) {
  const std::string dir = TestDir("manifest_roundtrip");
  const std::string path = DaemonManifestPath(dir);
  const DaemonManifest want = SampleManifest();
  std::string error;
  ASSERT_TRUE(SaveDaemonManifest(path, want, &error)) << error;

  DaemonManifest got;
  ASSERT_TRUE(LoadDaemonManifest(path, &got, &error)) << error;
  EXPECT_EQ(got.stream_fingerprint, want.stream_fingerprint);
  EXPECT_EQ(got.stream_length, want.stream_length);
  EXPECT_EQ(got.batch_spec_fingerprint, want.batch_spec_fingerprint);
  EXPECT_EQ(got.num_workers, want.num_workers);
  EXPECT_EQ(got.epoch_edges, want.epoch_edges);
  EXPECT_EQ(got.block_edges, want.block_edges);
  EXPECT_EQ(got.aggregate_words, want.aggregate_words);
  EXPECT_EQ(got.per_query_words, want.per_query_words);
  EXPECT_EQ(got.waves_started, want.waves_started);
  EXPECT_EQ(got.drained, want.drained);
  EXPECT_EQ(got.completed, want.completed);
  EXPECT_EQ(got.pending_slots, want.pending_slots);
}

TEST(DaemonManifestTest, EveryTruncationAndByteFlipIsRejected) {
  const std::string dir = TestDir("manifest_damage");
  const std::string path = DaemonManifestPath(dir);
  std::string error;
  ASSERT_TRUE(SaveDaemonManifest(path, SampleManifest(), &error)) << error;
  std::string encoded;
  {
    std::ifstream in(path, std::ios::binary);
    encoded.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(encoded.empty());

  const std::string damaged_path = dir + "/damaged.manifest";
  auto rejects = [&](const std::string& bytes) {
    std::ofstream out(damaged_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.close();
    DaemonManifest m;
    std::string err;
    return !LoadDaemonManifest(damaged_path, &m, &err);
  };
  for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
    EXPECT_TRUE(rejects(encoded.substr(0, cut))) << "truncation at " << cut;
  }
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    std::string flipped = encoded;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_TRUE(rejects(flipped)) << "byte flip at " << i;
  }
  EXPECT_TRUE(rejects(encoded + "x")) << "trailing garbage accepted";
}

// ---------------------------------------------------------------------------
// Heartbeats
// ---------------------------------------------------------------------------

TEST(HeartbeatTest, ReadsTheLastBeacon) {
  const std::string path = TestDir("heartbeat") + "/w0-s0.hb";
  HeartbeatRecord none;
  EXPECT_FALSE(ReadLastHeartbeat(path, &none));

  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    HeartbeatRecord hb;
    hb.worker_id = 2;
    hb.edges_done = 100 * seq;
    hb.seq = seq;
    ASSERT_TRUE(AppendHeartbeat(path, hb));
  }
  HeartbeatRecord last;
  ASSERT_TRUE(ReadLastHeartbeat(path, &last));
  EXPECT_EQ(last.worker_id, 2u);
  EXPECT_EQ(last.edges_done, 300u);
  EXPECT_EQ(last.seq, 3u);
}

TEST(HeartbeatTest, ToleratesATornTail) {
  const std::string path = TestDir("heartbeat_torn") + "/w0-s1.hb";
  HeartbeatRecord hb;
  hb.worker_id = 1;
  hb.edges_done = 64;
  hb.seq = 1;
  ASSERT_TRUE(AppendHeartbeat(path, hb));
  hb.edges_done = 128;
  hb.seq = 2;
  ASSERT_TRUE(AppendHeartbeat(path, hb));
  {
    // A worker SIGKILLed mid-append leaves a torn frame at the tail.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("CYSF\x04\x00\x00", 7);
  }
  HeartbeatRecord last;
  ASSERT_TRUE(ReadLastHeartbeat(path, &last));
  EXPECT_EQ(last.edges_done, 128u);
  EXPECT_EQ(last.seq, 2u);
}

// ---------------------------------------------------------------------------
// Wait-status decoding (satellite: signal vs exit vs sentinel)
// ---------------------------------------------------------------------------

int WaitForChild(pid_t pid) {
  int status = 0;
  EXPECT_EQ(waitpid(pid, &status, 0), pid);
  return status;
}

TEST(WaitStatusTest, DistinguishesExitSignalAndSentinel) {
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) _exit(0);
  EXPECT_EQ(DescribeWaitStatus(WaitForChild(pid)), "exited 0");

  pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) _exit(kKilledExitCode);
  EXPECT_EQ(DescribeWaitStatus(WaitForChild(pid)),
            "exited 86 (fault-injection kill sentinel)");

  pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) _exit(kDrainExitCode);
  EXPECT_EQ(DescribeWaitStatus(WaitForChild(pid)),
            "exited 85 (drain acknowledged)");

  pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    raise(SIGKILL);
    _exit(1);
  }
  const std::string described = DescribeWaitStatus(WaitForChild(pid));
  EXPECT_NE(described.find("killed by signal 9"), std::string::npos)
      << described;
}

// ---------------------------------------------------------------------------
// Supervised batch: bit-identity with the broker
// ---------------------------------------------------------------------------

TEST(SupervisedBatchTest, BitIdenticalToBrokerAtEveryWorkerCount) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, SupervisedBudget(), &broker_stats);
  ASSERT_GT(broker_stats.waves, 1u);
  ASSERT_GT(broker_stats.queries_rejected, 0u);

  for (int w : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(w));
    SupervisorOptions options =
        InProcessOptions(TestDir("oracle_w" + std::to_string(w)), w);
    SupervisedBatchResult result;
    std::string error;
    ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &result, &error))
        << error;
    EXPECT_FALSE(result.drained);
    EXPECT_TRUE(result.poisoned_waves.empty());
    EXPECT_EQ(result.counters.retries, 0u);
    EXPECT_EQ(result.counters.waves_completed, broker_stats.waves);
    ExpectOutcomesIdentical(oracle, result.outcomes);
    ExpectStatsIdentical(broker_stats, result.stats);

    // The supervisor marked the batch complete in its manifest.
    DaemonManifest m;
    ASSERT_TRUE(LoadDaemonManifest(
        DaemonManifestPath(options.plan.shard_dir), &m, &error))
        << error;
    EXPECT_EQ(m.completed, 1);
    EXPECT_EQ(m.drained, 0);
    EXPECT_TRUE(m.pending_slots.empty());
  }
}

TEST(SupervisedBatchTest, KillInjectionRetriesToTheIdenticalResult) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, SupervisedBudget(), &broker_stats);

  // Kill worker 1 of 3 mid-epoch on its first attempt; the retry resumes
  // from its last epoch checkpoint and must land on the same bits.
  SupervisorOptions options = InProcessOptions(TestDir("kill_retry"), 3);
  options.plan.kill_worker = 1;
  options.plan.kill_after_edges = 55;
  SupervisedBatchResult result;
  std::string error;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &result, &error))
      << error;
  EXPECT_EQ(result.counters.retries, 1u);
  EXPECT_GT(result.counters.backoff_ms_total, 0u);
  EXPECT_TRUE(result.poisoned_waves.empty());
  ExpectOutcomesIdentical(oracle, result.outcomes);
  ExpectStatsIdentical(broker_stats, result.stats);
}

// ---------------------------------------------------------------------------
// Retry exhaustion: poison the wave, never the daemon
// ---------------------------------------------------------------------------

TEST(SupervisedBatchTest, RetryExhaustionPoisonsOnlyTheWave) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, SupervisedBudget(), &broker_stats);
  ASSERT_GT(broker_stats.waves, 1u);

  // One attempt, a guaranteed kill: wave 0 exhausts its budget instantly.
  SupervisorOptions options = InProcessOptions(TestDir("poison"), 2);
  options.retry.max_attempts = 1;
  options.plan.kill_worker = 0;
  options.plan.kill_after_edges = 55;
  SupervisedBatchResult result;
  std::string error;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &result, &error))
      << error;

  ASSERT_EQ(result.poisoned_waves, std::vector<int>{0});
  EXPECT_EQ(result.counters.waves_poisoned, 1u);
  EXPECT_EQ(result.counters.waves_completed, broker_stats.waves - 1);
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    SCOPED_TRACE(oracle[i].spec.name);
    EXPECT_EQ(result.outcomes[i].admission, oracle[i].admission);
    EXPECT_EQ(result.outcomes[i].wave, oracle[i].wave);
    if (oracle[i].wave == 0 &&
        oracle[i].admission == AdmissionOutcome::kAdmitted) {
      // The poisoned wave's slots: admitted, no estimate.
      EXPECT_TRUE(result.outcomes[i].poisoned);
    } else if (oracle[i].admission == AdmissionOutcome::kAdmitted) {
      // Later waves completed normally — bit-identical to the oracle, so
      // the poisoned wave's released reservations were accounted exactly.
      EXPECT_FALSE(result.outcomes[i].poisoned);
      EXPECT_EQ(result.outcomes[i].estimate.value, oracle[i].estimate.value);
    }
  }
}

// ---------------------------------------------------------------------------
// Drain + resume
// ---------------------------------------------------------------------------

TEST(SupervisedBatchTest, DrainBeforeLaunchThenResumeIsBitIdentical) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, SupervisedBudget(), &broker_stats);

  const std::string dir = TestDir("drain_resume");
  SupervisorOptions options = InProcessOptions(dir, 2);
  RequestSupervisorDrain();  // Latched before the run: drains at wave 0.
  SupervisedBatchResult drained;
  std::string error;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &drained, &error))
      << error;
  EXPECT_TRUE(drained.drained);
  EXPECT_EQ(drained.counters.drains, 1u);
  EXPECT_EQ(drained.counters.waves_completed, 0u);

  DaemonManifest m;
  ASSERT_TRUE(LoadDaemonManifest(DaemonManifestPath(dir), &m, &error))
      << error;
  EXPECT_EQ(m.drained, 1);
  EXPECT_EQ(m.completed, 0);
  EXPECT_EQ(m.waves_started, 1u);

  ClearSupervisorDrainRequest();
  ClearWorkerDrainRequest();
  options.resume = true;
  SupervisedBatchResult resumed;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &resumed, &error))
      << error;
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.drained);
  ExpectOutcomesIdentical(oracle, resumed.outcomes);
  ExpectStatsIdentical(broker_stats, resumed.stats);
}

TEST(SupervisedBatchTest, ResumeOfACompletedBatchRelaunchesNothing) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, SupervisedBudget(), &broker_stats);

  const std::string dir = TestDir("resume_complete");
  SupervisorOptions options = InProcessOptions(dir, 2);
  SupervisedBatchResult first;
  std::string error;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &first, &error))
      << error;
  ExpectOutcomesIdentical(oracle, first.outcomes);

  // Every wave's state files already validate: the resume collects them
  // all and launches zero workers.
  options.resume = true;
  SupervisedBatchResult resumed;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &resumed, &error))
      << error;
  EXPECT_EQ(resumed.counters.workers_launched, 0u);
  EXPECT_EQ(resumed.counters.states_collected, broker_stats.waves * 2);
  ExpectOutcomesIdentical(oracle, resumed.outcomes);
  ExpectStatsIdentical(broker_stats, resumed.stats);
}

// Emulates a daemon crash (SIGKILL — no drain manifest rewrite) at every
// wave frontier: the completed prefix's state files survive, later waves'
// are deleted, and the manifest says wave k was started. Resume must
// finish the batch bit-identically, relaunching only the missing work.
TEST(SupervisedBatchTest, CrashAtEveryWaveFrontierResumesBitIdentical) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);
  const int workers = 2;

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, SupervisedBudget(), &broker_stats);
  const auto waves = static_cast<int>(broker_stats.waves);
  ASSERT_GT(waves, 1);

  // Pending slots after wave k = every slot the broker placed in a later
  // wave (ascending — the supervisor scans pending in slot order).
  auto pending_after = [&](int k) {
    std::vector<std::uint64_t> pending;
    for (std::size_t i = 0; i < oracle.size(); ++i) {
      if (oracle[i].admission == AdmissionOutcome::kAdmitted &&
          oracle[i].wave > k) {
        pending.push_back(i);
      }
    }
    return pending;
  };

  // A full golden run supplies the surviving state files.
  const std::string golden_dir = TestDir("crash_golden");
  SupervisorOptions golden_options = InProcessOptions(golden_dir, workers);
  SupervisedBatchResult golden;
  std::string error;
  ASSERT_TRUE(
      RunSupervisedBatch(specs, stream, golden_options, &golden, &error))
      << error;

  for (int crash_wave = 0; crash_wave < waves; ++crash_wave) {
    SCOPED_TRACE("crash at wave " + std::to_string(crash_wave));
    const std::string dir =
        TestDir("crash_w" + std::to_string(crash_wave));
    // State files for waves before the crash survive; the crashed wave
    // and everything later never ran.
    for (int wave = 0; wave < crash_wave; ++wave) {
      for (int s = 0; s < workers; ++s) {
        std::string name = "w";
        name += std::to_string(wave);
        name += "-s";
        name += std::to_string(s);
        name += ".state";
        std::filesystem::copy_file(golden_dir + "/" + name,
                                   dir + "/" + name);
      }
    }
    DaemonManifest crash;
    crash.stream_fingerprint = FingerprintEdgeStream(stream);
    crash.stream_length = stream.size();
    crash.batch_spec_fingerprint = FingerprintSpecs(specs);
    crash.num_workers = workers;
    crash.epoch_edges = golden_options.plan.epoch_edges;
    crash.block_edges = golden_options.plan.block_edges;
    crash.aggregate_words = golden_options.plan.budget.aggregate_words;
    crash.per_query_words = golden_options.plan.budget.per_query_words;
    crash.waves_started = static_cast<std::uint32_t>(crash_wave) + 1;
    crash.pending_slots = pending_after(crash_wave);
    ASSERT_TRUE(SaveDaemonManifest(DaemonManifestPath(dir), crash, &error))
        << error;

    SupervisorOptions options = InProcessOptions(dir, workers);
    options.resume = true;
    SupervisedBatchResult resumed;
    ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &resumed, &error))
        << error;
    EXPECT_TRUE(resumed.resumed);
    // Only the crashed-and-later waves launch workers.
    EXPECT_EQ(resumed.counters.workers_launched,
              static_cast<std::uint64_t>(waves - crash_wave) * workers);
    ExpectOutcomesIdentical(oracle, resumed.outcomes);
    ExpectStatsIdentical(broker_stats, resumed.stats);
  }
}

TEST(SupervisedBatchTest, ResumeRelaunchesOnlyTheMissingShard) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);

  EngineStats broker_stats;
  const std::vector<QueryOutcome> oracle =
      BrokerOracle(specs, stream, SupervisedBudget(), &broker_stats);

  const std::string dir = TestDir("partial_wave");
  SupervisorOptions options = InProcessOptions(dir, 2);
  SupervisedBatchResult first;
  std::string error;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &first, &error))
      << error;

  // Lose one shard of wave 0: the resume recollects everything else and
  // re-runs just that slice.
  ASSERT_TRUE(std::filesystem::remove(dir + "/w0-s1.state"));
  options.resume = true;
  SupervisedBatchResult resumed;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &resumed, &error))
      << error;
  EXPECT_EQ(resumed.counters.workers_launched, 1u);
  ExpectOutcomesIdentical(oracle, resumed.outcomes);
  ExpectStatsIdentical(broker_stats, resumed.stats);
}

TEST(SupervisedBatchTest, ResumeValidatesManifestAgainstTheBatch) {
  DrainLatchGuard guard;
  VertexId n = 0;
  const EdgeStream stream = SupervisorStream(&n);
  const std::vector<QuerySpec> specs = SupervisedSpecs(n);

  const std::string dir = TestDir("resume_reject");
  SupervisorOptions options = InProcessOptions(dir, 2);
  SupervisedBatchResult result;
  std::string error;
  ASSERT_TRUE(RunSupervisedBatch(specs, stream, options, &result, &error))
      << error;
  options.resume = true;

  {
    // A different stream under the same manifest.
    EdgeStream other = stream;
    other.pop_back();
    SupervisedBatchResult r;
    std::string err;
    EXPECT_FALSE(RunSupervisedBatch(specs, other, options, &r, &err));
    EXPECT_NE(err.find("different stream"), std::string::npos) << err;
  }
  {
    // A different query batch.
    std::vector<QuerySpec> other = specs;
    other[0].base.seed ^= 1;
    SupervisedBatchResult r;
    std::string err;
    EXPECT_FALSE(RunSupervisedBatch(other, stream, options, &r, &err));
    EXPECT_NE(err.find("spec fingerprint"), std::string::npos) << err;
  }
  {
    // A different execution plan (worker count).
    SupervisorOptions other = options;
    other.plan.num_workers = 3;
    SupervisedBatchResult r;
    std::string err;
    EXPECT_FALSE(RunSupervisedBatch(specs, stream, other, &r, &err));
    EXPECT_NE(err.find("execution plan mismatch"), std::string::npos) << err;
  }
  {
    // No manifest at all.
    SupervisorOptions other = options;
    other.plan.shard_dir = TestDir("resume_reject_empty");
    SupervisedBatchResult r;
    std::string err;
    EXPECT_FALSE(RunSupervisedBatch(specs, stream, other, &r, &err));
  }
}

}  // namespace
}  // namespace cyclestream::engine
