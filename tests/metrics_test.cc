#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gen/generators.h"
#include "stream/driver.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/table.h"

namespace cyclestream {
namespace {

TEST(MetricsRegistryTest, CountersGaugesAndLabels) {
  MetricsRegistry m;
  EXPECT_TRUE(m.empty());
  m.Inc("edges");
  m.Inc("edges", 4);
  m.SetInt("rows", 12);
  m.Set("slope", -0.5);
  m.SetStr("workload", "ba");
  EXPECT_EQ(m.GetInt("edges"), 5);
  EXPECT_EQ(m.GetInt("rows"), 12);
  EXPECT_DOUBLE_EQ(m.GetDouble("slope"), -0.5);
  EXPECT_TRUE(m.Has("workload"));
  EXPECT_FALSE(m.Has("absent"));
  EXPECT_EQ(m.GetInt("absent"), 0);
  EXPECT_DOUBLE_EQ(m.GetDouble("absent"), 0.0);
  m.Clear();
  EXPECT_TRUE(m.empty());
}

TEST(MetricsRegistryTest, DeterministicJsonSortsKeysAndExcludesTimings) {
  MetricsRegistry m;
  m.SetInt("zebra", 1);
  m.SetInt("apple", 2);
  m.SetTiming("wall.seconds", 3.14);
  const std::string json = m.DeterministicJson();
  EXPECT_LT(json.find("apple"), json.find("zebra"));
  EXPECT_EQ(json.find("wall.seconds"), std::string::npos);
}

TEST(MetricsRegistryTest, InsertionOrderDoesNotChangeJson) {
  MetricsRegistry a, b;
  a.SetInt("x", 1);
  a.Set("y", 2.5);
  b.Set("y", 2.5);
  b.SetInt("x", 1);
  EXPECT_EQ(a.DeterministicJson(), b.DeterministicJson());
}

RunManifest MakeManifest(int threads) {
  SetDefaultThreads(threads);
  ResetStreamStats();
  // A real (deterministic) stream run, so stream.* stats are populated the
  // same way the experiment drivers populate them.
  Rng rng(7);
  const EdgeList graph = ErdosRenyiGnm(100, 300, rng);

  RunManifest manifest("TEST");
  manifest.SetThreads(threads);
  manifest.SetConfig({{"seed", "7"}, {"quick", "true"}});
  manifest.metrics().SetInt("graph.edges",
                            static_cast<std::int64_t>(graph.num_edges()));
  manifest.metrics().SetTiming("wall.seconds", threads * 0.25);
  Table t({"k", "v"});
  t.AddRow({"edges", Table::Int(static_cast<std::int64_t>(graph.num_edges()))});
  manifest.AddTable("results", t);
  return manifest;
}

TEST(RunManifestTest, DeterministicJsonIsThreadCountInvariant) {
  const std::string at1 = MakeManifest(1).DeterministicJson();
  const std::string at8 = MakeManifest(8).DeterministicJson();
  SetDefaultThreads(1);
  EXPECT_EQ(at1, at8);
  // And the thread count / git stamp / timings really are absent.
  EXPECT_EQ(at1.find("threads"), std::string::npos);
  EXPECT_EQ(at1.find("git"), std::string::npos);
  EXPECT_EQ(at1.find("wall.seconds"), std::string::npos);
}

TEST(RunManifestTest, FullManifestCarriesEnvironmentAndTables) {
  RunManifest manifest("E99");
  manifest.SetThreads(4);
  manifest.SetConfig({{"trials", "3"}});
  Table t({"a", "b"});
  t.set_title("demo");
  t.AddRow({"1", "2"});
  manifest.AddTable("demo_table", t);
  std::ostringstream os;
  manifest.Write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"experiment\": \"E99\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"git\""), std::string::npos);
  EXPECT_NE(json.find("\"demo_table\""), std::string::npos);
  EXPECT_NE(json.find("\"trials\": \"3\""), std::string::npos);
}

TEST(RunManifestTest, WriteFileRoundTrips) {
  RunManifest manifest("FILE");
  manifest.metrics().SetInt("x", 42);
  const std::string path =
      ::testing::TempDir() + "/cyclestream_manifest_test.json";
  ASSERT_TRUE(manifest.WriteFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("\"x\": 42"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunManifestTest, WriteFileFailsCleanlyOnBadPath) {
  RunManifest manifest("FILE");
  EXPECT_FALSE(manifest.WriteFile("/nonexistent-dir/manifest.json"));
}

TEST(BuildGitDescribeTest, IsNonEmpty) {
  EXPECT_NE(std::string(BuildGitDescribe()), "");
}

}  // namespace
}  // namespace cyclestream
