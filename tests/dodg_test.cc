// Property tests for the DODG exact backend (graph/dodg.h): on ~50 seeded
// graph families — structured, random, power-law, adversarial lower-bound
// gadgets, dirty inputs — the DODG triangle and 4-cycle counts must equal
// the naive oracles bit for bit, across {scalar, auto-SIMD} kernels ×
// {1, 8} threads × {default, tiny} hub range. The tiny hub range forces the
// sparse-tail intersection kernels even on small graphs; the default range
// puts every vertex of a small graph on the dense bitmap path.

#include "graph/dodg.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "gen/generators.h"
#include "gen/lower_bound.h"
#include "graph/binary_io.h"
#include "graph/datasets.h"
#include "graph/edge_list.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "gtest/gtest.h"
#include "hash/rng.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

struct NamedGraph {
  std::string name;
  EdgeList graph;
};

EdgeList Clique(VertexId n) {
  EdgeList g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.Add(u, v);
  }
  g.Finalize();
  return g;
}

EdgeList CycleGraph(VertexId n) {
  EdgeList g(n);
  for (VertexId u = 0; u + 1 < n; ++u) g.Add(u, u + 1);
  if (n > 2) g.Add(n - 1, 0);
  g.Finalize();
  return g;
}

EdgeList PathGraph(VertexId n) {
  EdgeList g(n);
  for (VertexId u = 0; u + 1 < n; ++u) g.Add(u, u + 1);
  g.Finalize();
  return g;
}

// Restores process-wide knobs the matrix below mutates, so a failing
// assertion cannot leak scalar mode or a thread budget into other tests.
struct KnobGuard {
  ~KnobGuard() {
    SetExactSimdMode(ExactSimdMode::kAuto);
    SetExactBackend(ExactBackend::kNaive);
    SetDefaultThreads(0);
  }
};

// The full determinism matrix for one graph: naive oracle once, then DODG
// under every combination of kernels, thread budget, and hub range.
void ExpectBackendsAgree(const NamedGraph& g) {
  SetExactBackend(ExactBackend::kNaive);
  SetDefaultThreads(1);
  const Graph reference(g.graph);
  const std::uint64_t triangles = CountTriangles(reference);
  const std::uint64_t four_cycles = CountFourCycles(reference);

  for (const ExactSimdMode mode :
       {ExactSimdMode::kScalar, ExactSimdMode::kAuto}) {
    SetExactSimdMode(mode);
    for (const int threads : {1, 8}) {
      SetDefaultThreads(threads);
      for (const VertexId hub : {VertexId{0}, VertexId{3}}) {
        DodgGraph::Options options;
        options.hub_range = hub;
        const DodgGraph dodg = DodgGraph::Build(g.graph, options);
        const std::string context =
            g.name + " [kernels=" + ActiveExactKernels() +
            " threads=" + std::to_string(threads) +
            " hub=" + std::to_string(dodg.hub_range()) + "]";
        EXPECT_EQ(dodg.num_vertices(), g.graph.num_vertices()) << context;
        EXPECT_EQ(dodg.num_edges(), g.graph.num_edges()) << context;
        EXPECT_EQ(dodg.CountTriangles(), triangles) << context;
        EXPECT_EQ(dodg.CountFourCycles(), four_cycles) << context;
      }
    }
  }
  SetExactSimdMode(ExactSimdMode::kAuto);
  SetDefaultThreads(1);
}

void RunFamilies(const std::vector<NamedGraph>& families) {
  for (const NamedGraph& g : families) ExpectBackendsAgree(g);
}

TEST(DodgPropertyTest, StructuredFamilies) {
  KnobGuard guard;
  std::vector<NamedGraph> families;
  {
    EdgeList empty(0);
    empty.Finalize();
    families.push_back({"empty", std::move(empty)});
  }
  {
    EdgeList isolated(10);
    isolated.Finalize();
    families.push_back({"isolated-vertices", std::move(isolated)});
  }
  {
    EdgeList single(2);
    single.Add(0, 1);
    single.Finalize();
    families.push_back({"single-edge", std::move(single)});
  }
  families.push_back({"path-50", PathGraph(50)});
  families.push_back({"cycle-4", CycleGraph(4)});
  families.push_back({"cycle-5", CycleGraph(5)});
  families.push_back({"cycle-60", CycleGraph(60)});
  families.push_back({"clique-5", Clique(5)});
  families.push_back({"clique-17", Clique(17)});
  // K40: rows of 39 neighbors exercise the 8-wide SIMD block loop + tail.
  families.push_back({"clique-40", Clique(40)});
  families.push_back({"star-1x20", CompleteBipartite(1, 20)});
  families.push_back({"bipartite-3x4", CompleteBipartite(3, 4)});
  families.push_back({"bipartite-8x8", CompleteBipartite(8, 8)});
  families.push_back({"grid-5x7", Grid2d(5, 7)});
  families.push_back({"grid-12x12", Grid2d(12, 12)});
  families.push_back({"karate", KarateClub()});
  {
    Rng rng(11);
    families.push_back({"tree-100", RandomTree(100, rng)});
  }
  {
    Rng rng(12);
    families.push_back({"tree-400", RandomTree(400, rng)});
  }
  {
    Rng rng(13);
    std::vector<EdgeList> parts;
    parts.push_back(Clique(6));
    parts.push_back(Grid2d(4, 4));
    parts.push_back(RandomTree(30, rng));
    families.push_back({"disjoint-union", DisjointUnion(parts)});
  }
  ASSERT_GE(families.size(), 19u);
  RunFamilies(families);
}

TEST(DodgPropertyTest, RandomFamilies) {
  KnobGuard guard;
  std::vector<NamedGraph> families;
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    Rng rng(seed);
    families.push_back({"er-100-300-s" + std::to_string(seed),
                        ErdosRenyiGnm(100, 300, rng)});
  }
  for (const std::uint64_t seed : {6, 7}) {
    Rng rng(seed);
    families.push_back({"er-300-2000-s" + std::to_string(seed),
                        ErdosRenyiGnm(300, 2000, rng)});
  }
  for (const std::uint64_t seed : {8, 9}) {
    Rng rng(seed);
    families.push_back(
        {"gnp-200-s" + std::to_string(seed), ErdosRenyiGnp(200, 0.05, rng)});
  }
  for (const std::uint64_t seed : {10, 11, 12}) {
    Rng rng(seed);
    families.push_back(
        {"ba-200-3-s" + std::to_string(seed), BarabasiAlbert(200, 3, rng)});
  }
  {
    Rng rng(13);
    families.push_back({"ba-500-8", BarabasiAlbert(500, 8, rng)});
  }
  for (const std::uint64_t seed : {14, 15}) {
    Rng rng(seed);
    families.push_back({"chung-lu-300-s" + std::to_string(seed),
                        ChungLuPowerLaw(300, 8.0, 2.5, rng)});
  }
  for (const std::uint64_t seed : {16, 17}) {
    Rng rng(seed);
    families.push_back({"ws-200-6-s" + std::to_string(seed),
                        WattsStrogatz(200, 6, 0.1, rng)});
  }
  for (const std::uint64_t seed : {18, 19}) {
    Rng rng(seed);
    families.push_back({"c4free-200-s" + std::to_string(seed),
                        FourCycleFreeRandom(200, 600, false, rng)});
  }
  {
    Rng rng(20);
    families.push_back({"c4free-trifree-200",
                        FourCycleFreeRandom(200, 600, true, rng)});
  }
  ASSERT_GE(families.size(), 18u);
  RunFamilies(families);
}

TEST(DodgPropertyTest, PlantedAndAdversarialFamilies) {
  KnobGuard guard;
  std::vector<NamedGraph> families;
  const auto base = [] {
    Rng rng(30);
    return ErdosRenyiGnm(80, 160, rng);
  };
  {
    Rng rng(31);
    families.push_back({"plant-triangles", PlantTriangles(base(), 20, rng)});
  }
  {
    Rng rng(32);
    families.push_back({"plant-book", PlantBook(base(), 15, rng)});
  }
  {
    Rng rng(33);
    families.push_back(
        {"plant-diamonds",
         PlantDiamonds(base(), {{4, 3}, {8, 2}}, rng)});
  }
  {
    Rng rng(34);
    families.push_back({"plant-c4", PlantFourCycles(base(), 25, rng)});
  }
  {
    Rng rng(35);
    families.push_back({"plant-theta", PlantTheta(base(), 12, rng)});
  }
  for (const bool planted : {false, true}) {
    Rng rng(36);
    TriangleGadget gadget = MakeTriangleLowerBoundGadget(6, 5, planted, rng);
    families.push_back(
        {std::string("lb-triangle-") + (planted ? "planted" : "empty"),
         std::move(gadget.graph)});
  }
  for (const bool intersecting : {false, true}) {
    Rng rng(37);
    FourCycleGadget gadget =
        MakeFourCycleLowerBoundGadget(4, 5, 0.5, intersecting, rng);
    families.push_back(
        {std::string("lb-c4-") + (intersecting ? "intersecting" : "disjoint"),
         std::move(gadget.graph)});
  }
  // The planted structures carry known counts — sanity-check one of each so
  // the oracle agreement above isn't vacuously comparing two zeros.
  {
    Rng rng(38);
    const TriangleGadget gadget = MakeTriangleLowerBoundGadget(6, 5, true, rng);
    const DodgGraph dodg = DodgGraph::Build(gadget.graph);
    EXPECT_EQ(dodg.CountTriangles(), gadget.expected_triangles);
  }
  {
    Rng rng(39);
    const FourCycleGadget gadget =
        MakeFourCycleLowerBoundGadget(4, 5, 0.5, true, rng);
    const DodgGraph dodg = DodgGraph::Build(gadget.graph);
    EXPECT_EQ(dodg.CountFourCycles(), gadget.expected_four_cycles);
  }
  ASSERT_GE(families.size(), 9u);
  RunFamilies(families);
}

TEST(DodgPropertyTest, DirtyInputsMatchEdgeListCleanup) {
  KnobGuard guard;
  // Raw pairs with self-loops, duplicates (in both orientations), and ids
  // beyond the declared vertex count: FromPairs must apply exactly the
  // EdgeList::FromPairs cleanup, so the counts match the naive backend.
  Rng rng(40);
  const EdgeList clean = ErdosRenyiGnm(60, 200, rng);
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (const Edge& e : clean.edges()) {
    pairs.emplace_back(e.u, e.v);
    if (rng.UniformDouble() < 0.3) pairs.emplace_back(e.v, e.u);  // Duplicate.
    if (rng.UniformDouble() < 0.1) pairs.emplace_back(e.u, e.u);  // Self-loop.
  }
  pairs.emplace_back(70, 75);  // Beyond the declared n=60.
  pairs.emplace_back(75, 70);

  const EdgeList cleaned = EdgeList::FromPairs(60, pairs);
  const Graph reference(cleaned);
  SetExactBackend(ExactBackend::kNaive);
  const std::uint64_t triangles = CountTriangles(reference);
  const std::uint64_t four_cycles = CountFourCycles(reference);

  const DodgGraph dodg = DodgGraph::FromPairs(60, pairs);
  EXPECT_EQ(dodg.num_vertices(), cleaned.num_vertices());
  EXPECT_EQ(dodg.num_edges(), cleaned.num_edges());
  EXPECT_EQ(dodg.CountTriangles(), triangles);
  EXPECT_EQ(dodg.CountFourCycles(), four_cycles);
}

TEST(DodgPropertyTest, BinaryStreamWithDuplicatesFeedsBuildDirectly) {
  KnobGuard guard;
  // The scale path: a .bin stream (duplicates legal) mmaps straight into
  // Build without an EdgeList. Duplicates must collapse to the same counts.
  Rng rng(41);
  const EdgeList graph = BarabasiAlbert(300, 4, rng);
  std::vector<Edge> stream(graph.edges());
  for (std::size_t i = 0; i < graph.num_edges(); i += 3) {
    stream.push_back(graph.edges()[i]);  // Every third edge twice.
  }
  const std::string path =
      ::testing::TempDir() + "/dodg_dup_stream.bin";
  std::string error;
  ASSERT_TRUE(WriteBinaryEdgeStream(stream.data(), stream.size(),
                                    graph.num_vertices(), path, &error))
      << error;
  BinaryEdgeReader reader;
  ASSERT_TRUE(reader.Open(path, &error)) << error;
  ASSERT_EQ(reader.num_edges(), stream.size());

  const DodgGraph dodg = DodgGraph::Build(
      reader.edges(), reader.num_edges(), reader.num_vertices());
  EXPECT_EQ(dodg.num_edges(), graph.num_edges());
  SetExactBackend(ExactBackend::kNaive);
  const Graph reference(graph);
  EXPECT_EQ(dodg.CountTriangles(), CountTriangles(reference));
  EXPECT_EQ(dodg.CountFourCycles(), CountFourCycles(reference));
  std::remove(path.c_str());
}

TEST(DodgTest, StructureInvariants) {
  KnobGuard guard;
  Rng rng(42);
  const EdgeList graph = BarabasiAlbert(200, 3, rng);
  const DodgGraph dodg = DodgGraph::Build(graph);
  const VertexId n = dodg.num_vertices();
  ASSERT_EQ(n, graph.num_vertices());
  std::size_t total_out = 0;
  for (VertexId v = 0; v < n; ++v) {
    // Degree-descending relabel: degrees are non-increasing in new-id order.
    if (v > 0) {
      EXPECT_GE(dodg.Degree(v - 1), dodg.Degree(v)) << v;
    }
    const auto out = dodg.OutNeighbors(v);
    const auto up = dodg.UpNeighbors(v);
    EXPECT_EQ(out.size() + up.size(), dodg.Degree(v)) << v;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_LT(out[i], v) << v;  // Out-edges point at smaller (hub) ids.
      if (i > 0) {
        EXPECT_LT(out[i - 1], out[i]) << v;  // Sorted, unique.
      }
    }
    for (std::size_t i = 0; i < up.size(); ++i) {
      EXPECT_GT(up[i], v) << v;
      if (i > 0) {
        EXPECT_LT(up[i - 1], up[i]) << v;
      }
    }
    total_out += out.size();
  }
  EXPECT_EQ(total_out, dodg.num_edges());  // Each edge oriented exactly once.
  // The relabeling is a permutation.
  std::vector<bool> seen(n, false);
  for (const VertexId id : dodg.new_ids()) {
    ASSERT_LT(id, n);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
  }
}

TEST(DodgTest, BackendSelectorRoutesExactEntryPoints) {
  KnobGuard guard;
  Rng rng(43);
  const EdgeList graph = ErdosRenyiGnm(150, 900, rng);
  const Graph g(graph);
  SetExactBackend(ExactBackend::kNaive);
  const std::uint64_t triangles = CountTriangles(g);
  const std::uint64_t four_cycles = CountFourCycles(g);
  ASSERT_GT(triangles, 0u);
  ASSERT_GT(four_cycles, 0u);
  // The same public entry points must return identical counts through the
  // DODG backend — this is what every experiment driver relies on.
  SetExactBackend(ExactBackend::kDodg);
  EXPECT_EQ(CountTriangles(g), triangles);
  EXPECT_EQ(CountFourCycles(g), four_cycles);
}

TEST(DodgTest, BackendParsingRoundTrips) {
  EXPECT_EQ(ParseExactBackend("naive"), ExactBackend::kNaive);
  EXPECT_EQ(ParseExactBackend("dodg"), ExactBackend::kDodg);
  EXPECT_FALSE(ParseExactBackend("simd").has_value());
  EXPECT_FALSE(ParseExactBackend("").has_value());
  EXPECT_STREQ(ExactBackendName(ExactBackend::kNaive), "naive");
  EXPECT_STREQ(ExactBackendName(ExactBackend::kDodg), "dodg");
}

TEST(DodgTest, KernelNameMatchesSimdMode) {
  KnobGuard guard;
  SetExactSimdMode(ExactSimdMode::kScalar);
  EXPECT_STREQ(ActiveExactKernels(), "scalar");
  SetExactSimdMode(ExactSimdMode::kAuto);
  // Auto resolves to whatever this build/CPU supports; both are valid, but
  // the name must be one of the two dispatchable kernel sets.
  const std::string name = ActiveExactKernels();
  EXPECT_TRUE(name == "avx2" || name == "scalar") << name;
}

}  // namespace
}  // namespace cyclestream
