#include <gtest/gtest.h>

#include <sstream>

#include "util/flags.h"
#include "util/stats.h"
#include "util/table.h"

namespace cyclestream {
namespace {

TEST(SummarizeTest, EmptyInput) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const Summary s = Summarize({7.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummarizeTest, KnownStatistics) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811388, 1e-6);
}

TEST(SummarizeTest, MedianOfEvenCount) {
  const Summary s = Summarize({1.0, 2.0, 3.0, 10.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(QuantileSorted(sorted, 0.25), 2.5);
}

TEST(RelativeErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(RelativeError(110.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90.0, 100.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(5.0, 0.0), 5.0);
}

TEST(RunningStatTest, MatchesBatch) {
  RunningStat rs;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) rs.Add(v);
  EXPECT_EQ(rs.Count(), 5u);
  EXPECT_DOUBLE_EQ(rs.Mean(), 3.0);
  EXPECT_NEAR(rs.Variance(), 2.5, 1e-12);
}

TEST(TableTest, RendersAlignedRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22222"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Int(42), "42");
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Pct(0.1234, 1), "12.3%");
}

TEST(FlagParserTest, ParsesAllSyntaxes) {
  const char* argv[] = {"prog",    "--alpha=3",  "--beta", "7",
                        "--gamma", "--delta=0.5", "pos1"};
  FlagParser flags(7, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetInt("beta", 0), 7);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("delta", 0.0), 0.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagParserTest, DefaultsAndUnused) {
  const char* argv[] = {"prog", "--typo=1"};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("trials", 30), 30);
  const auto unused = flags.Unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(FlagParserTest, UnusedIsSorted) {
  const char* argv[] = {"prog", "--zeta=1", "--alpha=2", "--mid=3"};
  FlagParser flags(4, const_cast<char**>(argv));
  EXPECT_EQ(flags.Unused(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

// Regression: "--t_guess=" (empty value) used to parse as 0 via atoll /
// atof, silently turning a fat-fingered flag into a zero threshold. An
// empty value on a numeric flag is a usage error and must abort.
TEST(FlagParserDeathTest, EmptyNumericValueAborts) {
  const char* argv[] = {"prog", "--t_guess="};
  FlagParser flags(2, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetInt("t_guess", 100), "expects an integer");
  EXPECT_DEATH(flags.GetDouble("t_guess", 100.0), "expects a number");
}

TEST(FlagParserTest, GetCountParsesNonNegativeValues) {
  const char* argv[] = {"prog", "--reservoir", "42", "--budget-words", "0"};
  FlagParser flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetCount("reservoir", 7), 42u);
  EXPECT_EQ(flags.GetCount("budget-words", 7), 0u);
  EXPECT_EQ(flags.GetCount("absent", 7), 7u);
  // The full uint64 range is representable (GetInt would overflow).
  const char* argv2[] = {"prog", "--seed", "18446744073709551615"};
  FlagParser flags2(3, const_cast<char**>(argv2));
  EXPECT_EQ(flags2.GetCount("seed", 0), ~std::uint64_t{0});
}

// Regression: CLI size flags were read through GetInt and cast straight to
// size_t, so "--reservoir -5" wrapped to an enormous capacity and
// "--budget-words -1" became a budget no admission cap could ever bind.
// GetCount aborts on any sign or garbage instead.
TEST(FlagParserDeathTest, GetCountRejectsSignsAndGarbage) {
  const char* argv[] = {"prog", "--reservoir", "-5", "--budget-words", "+3",
                        "--queries", "2x"};
  FlagParser flags(7, const_cast<char**>(argv));
  EXPECT_DEATH(flags.GetCount("reservoir", 0), "non-negative integer");
  EXPECT_DEATH(flags.GetCount("budget-words", 0), "non-negative integer");
  EXPECT_DEATH(flags.GetCount("queries", 0), "non-negative integer");
}

}  // namespace
}  // namespace cyclestream
