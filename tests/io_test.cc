// Tests for the EINTR-safe raw-I/O layer (src/util/io): resume loops
// under injected EINTR storms and short transfers, the durable atomic
// write's tmp+fsync+rename+dir-fsync sequence (the parent-directory fsync
// is the regression target — rename is atomic but not durable without
// it), and the append path heartbeats ride on.

#include <fcntl.h>
#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "stream/checkpoint.h"
#include "util/io.h"

namespace cyclestream::io {
namespace {

std::string TestDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "io_test_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Installs fault injection for one scope; restores the previous pointer
// (and asserts the faults were actually consumed where the test says so).
class ScopedFaults {
 public:
  explicit ScopedFaults(SyscallFaults* faults)
      : prev_(ExchangeSyscallFaults(faults)) {}
  ~ScopedFaults() { ExchangeSyscallFaults(prev_); }

 private:
  SyscallFaults* prev_;
};

std::string PatternBytes(std::size_t n) {
  std::string data(n, '\0');
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = static_cast<char>((i * 131 + 7) & 0xFF);
  }
  return data;
}

TEST(IoTest, WriteFullSurvivesEintrStormAndShortWrites) {
  const std::string path = TestDir("write_full") + "/data";
  const std::string want = PatternBytes(10000);

  SyscallFaults faults;
  faults.eintr_writes = 25;
  faults.short_write_cap = 137;  // Forces ~73 partial transfers.
  {
    ScopedFaults scoped(&faults);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(WriteFull(fd, want.data(), want.size()));
    ::close(fd);
  }
  EXPECT_EQ(faults.eintr_writes, 0) << "EINTR budget not consumed";

  std::string got;
  std::string error;
  ASSERT_TRUE(ReadFileToString(path, &got, &error)) << error;
  EXPECT_EQ(got, want);
}

TEST(IoTest, ReadFullSurvivesEintrStormAndShortReads) {
  const std::string path = TestDir("read_full") + "/data";
  const std::string want = PatternBytes(10000);
  std::string error;
  ASSERT_TRUE(WriteFileAtomic(path, want, &error)) << error;

  SyscallFaults faults;
  faults.eintr_reads = 25;
  faults.short_read_cap = 113;
  ScopedFaults scoped(&faults);
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  std::string got(want.size(), '\0');
  std::size_t n = 0;
  ASSERT_TRUE(ReadFull(fd, got.data(), got.size(), &n));
  ::close(fd);
  EXPECT_EQ(n, want.size());
  EXPECT_EQ(got, want);
  EXPECT_EQ(faults.eintr_reads, 0) << "EINTR budget not consumed";
}

TEST(IoTest, ReadFullReportsEofShortOfRequest) {
  const std::string path = TestDir("read_eof") + "/data";
  std::string error;
  ASSERT_TRUE(WriteFileAtomic(path, "abc", &error)) << error;
  const int fd = ::open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  char buf[16];
  std::size_t n = 0;
  // EOF before the request is filled is success with got < n, not an error.
  ASSERT_TRUE(ReadFull(fd, buf, sizeof(buf), &n));
  ::close(fd);
  EXPECT_EQ(n, 3u);
}

TEST(IoTest, ReadFileToStringReportsMissingFile) {
  std::string out;
  std::string error;
  EXPECT_FALSE(
      ReadFileToString(TestDir("missing") + "/nope", &out, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

TEST(IoTest, DirNameHandlesEveryShape) {
  EXPECT_EQ(DirName("/a/b/c"), "/a/b");
  EXPECT_EQ(DirName("/top"), "/");
  EXPECT_EQ(DirName("bare"), ".");
  EXPECT_EQ(DirName("rel/file"), "rel");
}

// The satellite regression: WriteFileAtomic must fsync the *parent
// directory* after the rename — without it a crash right after rename can
// lose the directory entry entirely.
TEST(IoTest, WriteFileAtomicFsyncsFileThenParentDirectory) {
  const std::string dir = TestDir("durable");
  const std::string path = dir + "/state.bin";

  SyscallFaults faults;
  {
    ScopedFaults scoped(&faults);
    std::string error;
    ASSERT_TRUE(WriteFileAtomic(path, PatternBytes(500), &error)) << error;
  }
  // Exactly two fsyncs, in order: the tmp file's contents, then the
  // directory entry the rename landed in.
  ASSERT_EQ(faults.fsynced.size(), 2u);
  EXPECT_EQ(faults.fsynced[0], path + ".tmp");
  EXPECT_EQ(faults.fsynced[1], dir);
}

TEST(IoTest, WriteFileAtomicSurvivesFaultsAndReplacesAtomically) {
  const std::string dir = TestDir("atomic");
  const std::string path = dir + "/state.bin";
  std::string error;
  ASSERT_TRUE(WriteFileAtomic(path, "old contents", &error)) << error;

  const std::string want = PatternBytes(4000);
  SyscallFaults faults;
  faults.eintr_writes = 10;
  faults.eintr_fsyncs = 5;
  faults.short_write_cap = 61;
  {
    ScopedFaults scoped(&faults);
    ASSERT_TRUE(WriteFileAtomic(path, want, &error)) << error;
  }
  EXPECT_EQ(faults.eintr_writes, 0);
  EXPECT_EQ(faults.eintr_fsyncs, 0);

  std::string got;
  ASSERT_TRUE(ReadFileToString(path, &got, &error)) << error;
  EXPECT_EQ(got, want);
  // No tmp residue: success cleans up the staging file via rename.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(IoTest, AppendToFileCreatesAndAppends) {
  const std::string path = TestDir("append") + "/log";
  std::string error;
  ASSERT_TRUE(AppendToFile(path, "one", &error)) << error;
  SyscallFaults faults;
  faults.eintr_writes = 4;
  faults.short_write_cap = 1;  // Byte-at-a-time: the resume loop again.
  {
    ScopedFaults scoped(&faults);
    ASSERT_TRUE(AppendToFile(path, "two", &error)) << error;
  }
  std::string got;
  ASSERT_TRUE(ReadFileToString(path, &got, &error)) << error;
  EXPECT_EQ(got, "onetwo");
}

// The checkpoint layer rides on the same wrappers: a snapshot written
// under an EINTR storm must restore bit-identically (this is the seam the
// supervisor's own SIGTERM handler interrupts in practice).
TEST(IoTest, SnapshotSurvivesEintrStorm) {
  const std::string path = TestDir("snapshot") + "/snap.bin";
  cyclestream::Snapshot snap;
  snap.algorithm_id = "io-test/v1";
  snap.stream_fingerprint = 0xABCD;
  snap.stream_length = 100;
  snap.pass = 1;
  snap.position = 50;
  snap.elements_processed = 150;
  snap.state = PatternBytes(3000);

  SyscallFaults faults;
  faults.eintr_writes = 8;
  faults.eintr_fsyncs = 3;
  faults.short_write_cap = 97;
  std::string error;
  {
    ScopedFaults scoped(&faults);
    ASSERT_TRUE(cyclestream::SaveSnapshot(path, snap, &error)) << error;
  }
  // The snapshot path is durable end to end: file fsync + dir fsync.
  ASSERT_GE(faults.fsynced.size(), 2u);
  EXPECT_EQ(faults.fsynced.back(), DirName(path));

  faults.eintr_reads = 8;
  faults.short_read_cap = 89;
  std::optional<cyclestream::Snapshot> restored;
  {
    ScopedFaults scoped(&faults);
    restored = cyclestream::LoadSnapshot(path, &error);
  }
  ASSERT_TRUE(restored.has_value()) << error;
  EXPECT_EQ(restored->algorithm_id, snap.algorithm_id);
  EXPECT_EQ(restored->state, snap.state);
  EXPECT_EQ(restored->position, snap.position);
  EXPECT_EQ(restored->elements_processed, snap.elements_processed);
}

}  // namespace
}  // namespace cyclestream::io
