#include <gtest/gtest.h>

#include <cmath>
#include <algorithm>
#include <map>

#include "gen/generators.h"
#include "graph/datasets.h"
#include "stream/driver.h"
#include "stream/order.h"
#include "stream/space.h"
#include "tests/test_util.h"

namespace cyclestream {
namespace {

using ::cyclestream::testing::Clique;

TEST(RandomOrderTest, IsPermutationOfEdges) {
  Rng rng(1);
  const EdgeList list = KarateClub();
  EdgeStream stream = MakeRandomOrderStream(list, rng);
  ASSERT_EQ(stream.size(), list.num_edges());
  std::sort(stream.begin(), stream.end());
  EXPECT_TRUE(std::equal(stream.begin(), stream.end(), list.edges().begin()));
}

TEST(RandomOrderTest, DifferentSeedsGiveDifferentOrders) {
  Rng rng1(1), rng2(2);
  const EdgeList list = KarateClub();
  const EdgeStream a = MakeRandomOrderStream(list, rng1);
  const EdgeStream b = MakeRandomOrderStream(list, rng2);
  EXPECT_NE(a, b);
}

TEST(RandomOrderTest, FirstPositionIsUniform) {
  // Over many shuffles, each edge should appear first ~uniformly.
  const EdgeList list = Clique(5);  // 10 edges.
  std::map<std::uint64_t, int> first_counts;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    Rng rng(1000 + t);
    const EdgeStream stream = MakeRandomOrderStream(list, rng);
    ++first_counts[stream[0].Key()];
  }
  for (const auto& [key, count] : first_counts) {
    (void)key;
    EXPECT_NEAR(count, trials / 10, 5 * std::sqrt(trials / 10.0));
  }
}

TEST(ArbitraryOrderTest, SortedAndReverse) {
  Rng rng(3);
  const EdgeList list = KarateClub();
  const EdgeStream sorted =
      MakeArbitraryOrderStream(list, ArbitraryOrder::kSorted, rng);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  const EdgeStream reversed =
      MakeArbitraryOrderStream(list, ArbitraryOrder::kReverseSorted, rng);
  EXPECT_TRUE(std::is_sorted(reversed.rbegin(), reversed.rend()));
}

TEST(AdjacencyStreamTest, EachEdgeAppearsTwice) {
  Rng rng(4);
  const Graph g(KarateClub());
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  ASSERT_EQ(stream.size(), g.num_vertices());
  std::map<std::uint64_t, int> appearances;
  for (const AdjacencyList& list : stream) {
    for (VertexId w : list.neighbors) {
      ++appearances[Edge(list.vertex, w).Key()];
    }
  }
  EXPECT_EQ(appearances.size(), g.num_edges());
  for (const auto& [key, count] : appearances) {
    (void)key;
    EXPECT_EQ(count, 2);
  }
}

TEST(AdjacencyStreamTest, EveryVertexAppearsOnce) {
  Rng rng(5);
  const Graph g(KarateClub());
  const AdjacencyStream stream = MakeAdjacencyStream(g, rng);
  std::vector<bool> seen(g.num_vertices(), false);
  for (const AdjacencyList& list : stream) {
    EXPECT_FALSE(seen[list.vertex]);
    seen[list.vertex] = true;
  }
}

TEST(AdjacencyStreamTest, ByIdVariantIsDeterministic) {
  const Graph g(Clique(4));
  const AdjacencyStream stream = MakeAdjacencyStreamById(g);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(stream[v].vertex, v);
    EXPECT_EQ(stream[v].neighbors.size(), 3u);
  }
}

// Driver delivers passes and positions in order.
class RecordingAlgorithm : public EdgeStreamAlgorithm {
 public:
  int NumPasses() const override { return 2; }
  void StartPass(int pass, std::size_t len) override {
    starts.push_back(pass);
    lengths.push_back(len);
  }
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override {
    (void)e;
    events.emplace_back(pass, position);
  }
  void EndPass(int pass) override { ends.push_back(pass); }

  std::vector<int> starts, ends;
  std::vector<std::size_t> lengths;
  std::vector<std::pair<int, std::size_t>> events;
};

TEST(DriverTest, PassesAndPositions) {
  Rng rng(6);
  const EdgeStream stream = MakeRandomOrderStream(Clique(4), rng);
  RecordingAlgorithm alg;
  RunEdgeStream(alg, stream);
  EXPECT_EQ(alg.starts, (std::vector<int>{0, 1}));
  EXPECT_EQ(alg.ends, (std::vector<int>{0, 1}));
  ASSERT_EQ(alg.events.size(), 12u);
  EXPECT_EQ(alg.events[0], (std::pair<int, std::size_t>{0, 0}));
  EXPECT_EQ(alg.events[6], (std::pair<int, std::size_t>{1, 0}));
  EXPECT_EQ(alg.lengths, (std::vector<std::size_t>{6, 6}));
}

TEST(SpaceTrackerTest, TracksPeakAndBaseline) {
  SpaceTracker tracker;
  tracker.Update(10);
  tracker.Update(50);
  tracker.Update(20);
  EXPECT_EQ(tracker.Peak(), 50u);
  EXPECT_EQ(tracker.Current(), 20u);
  tracker.SetBaseline(5);
  EXPECT_EQ(tracker.Peak(), 55u);
  // Reset() returns the tracker to its freshly-constructed state, baseline
  // included — a reused tracker must not double-count the previous run's
  // hash-seed baseline.
  tracker.Reset();
  EXPECT_EQ(tracker.Peak(), 0u);
  EXPECT_EQ(tracker.Current(), 0u);
}

}  // namespace
}  // namespace cyclestream
