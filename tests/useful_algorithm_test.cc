#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "core/useful_algorithm.h"
#include "hash/rng.h"

namespace cyclestream {
namespace {

// Test harness: an explicit weighted graph on vertices {0..n-1} processed in
// id order; R1/R2 sampled by the harness; the harness reveals, at each
// vertex's arrival, its edges to R1 ∪ R2 — exactly the §3 input model.
struct WeightedEdge {
  std::uint64_t a, b;
  double w;
};

double RunUseful(const std::vector<WeightedEdge>& edges, std::uint64_t n,
                 double p, double m_cap, std::uint64_t seed,
                 std::size_t* heavy_tracked = nullptr) {
  Rng rng(seed);
  std::unordered_set<std::uint64_t> r1, r2;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (rng.Bernoulli(p)) r1.insert(v);
    if (rng.Bernoulli(p)) r2.insert(v);
  }
  // Adjacency.
  std::vector<std::vector<WeightedEdge>> adj(n);
  for (const auto& e : edges) {
    adj[e.a].push_back(e);
    adj[e.b].push_back(e);
  }
  UsefulAlgorithm useful(UsefulAlgorithm::Config{p, m_cap});
  for (std::uint64_t v = 0; v < n; ++v) {
    std::vector<UsefulAlgorithm::IncidentEdge> revealed;
    for (const auto& e : adj[v]) {
      const std::uint64_t u = e.a == v ? e.b : e.a;
      const bool in_r1 = r1.count(u) > 0;
      const bool in_r2 = r2.count(u) > 0;
      if (!in_r1 && !in_r2) continue;
      revealed.push_back(
          UsefulAlgorithm::IncidentEdge{u, e.w, in_r1, in_r2});
    }
    useful.OnVertex(v, r1.count(v) > 0, r2.count(v) > 0, revealed);
  }
  if (heavy_tracked != nullptr) *heavy_tracked = useful.NumTrackedHeavy();
  return useful.Estimate();
}

TEST(UsefulAlgorithmTest, ExactWhenPIsOne) {
  // Any graph: with p = 1, AL + AH recovers W exactly.
  std::vector<WeightedEdge> edges = {
      {0, 1, 1.0}, {0, 2, 2.0}, {1, 2, 1.5}, {3, 4, 1.0}, {2, 5, 3.0}};
  double w = 0.0;
  for (const auto& e : edges) w += e.w;
  EXPECT_NEAR(RunUseful(edges, 6, 1.0, 100.0, 1), w, 1e-9);
}

TEST(UsefulAlgorithmTest, ExactWhenPIsOneWithHeavyVertices) {
  // A hub with huge in-weight trips the heavy path; p = 1 must stay exact.
  std::vector<WeightedEdge> edges;
  for (std::uint64_t v = 1; v <= 60; ++v) edges.push_back({0, v, 1.0});
  std::size_t tracked = 0;
  // m_cap small so the hub (in-weight up to 60) is heavy: p√M = 5.
  EXPECT_NEAR(RunUseful(edges, 61, 1.0, 25.0, 2, &tracked), 60.0, 1e-9);
  EXPECT_GE(tracked, 1u);
}

TEST(UsefulAlgorithmTest, UnbiasedOverSeeds) {
  // Average the estimate over many R draws; should converge to W.
  std::vector<WeightedEdge> edges;
  Rng gen(3);
  const std::uint64_t n = 120;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t a = gen.UniformInt(n);
    const std::uint64_t b = gen.UniformInt(n);
    if (a == b) continue;
    edges.push_back({a, b, 1.0 + gen.UniformDouble()});
  }
  double w = 0.0;
  for (const auto& e : edges) w += e.w;
  double total = 0.0;
  const int trials = 600;
  for (int t = 0; t < trials; ++t) {
    total += RunUseful(edges, n, 0.5, 2.0 * w, 100 + t);
  }
  EXPECT_NEAR(total / trials, w, 0.05 * w);
}

TEST(UsefulAlgorithmTest, AdditiveErrorWithinEpsilonM) {
  // Lemma 3.1a: W ≤ M ⇒ Ŵ = W ± εM whp. Use generous p and check the
  // deviation across seeds stays within a small multiple of the bound.
  std::vector<WeightedEdge> edges;
  Rng gen(4);
  const std::uint64_t n = 200;
  for (std::uint64_t v = 1; v < n; ++v) {
    edges.push_back({gen.UniformInt(v), v, 1.0});
  }
  const double w = static_cast<double>(edges.size());
  const double m_cap = 1.5 * w;
  int failures = 0;
  const int trials = 60;
  for (int t = 0; t < trials; ++t) {
    const double est = RunUseful(edges, n, 0.6, m_cap, 1000 + t);
    if (std::abs(est - w) > 0.35 * m_cap) ++failures;
  }
  EXPECT_LE(failures, 3);
}

TEST(UsefulAlgorithmTest, SeparatesHeavyFromLightTotals) {
  // Lemma 3.1 b/c: graphs with W >= 2M rarely report Ŵ < M and vice versa.
  std::vector<WeightedEdge> big, small;
  Rng gen(5);
  const std::uint64_t n = 300;
  for (int i = 0; i < 900; ++i) {
    const std::uint64_t a = gen.UniformInt(n), b = gen.UniformInt(n);
    if (a == b) continue;
    big.push_back({a, b, 1.0});
    if (i < 60) small.push_back({a, b, 1.0});
  }
  const double m_cap = 300.0;  // big: W≈900 ≥ 2M; small: W≈60 ≤ M/2.
  int big_wrong = 0, small_wrong = 0;
  for (int t = 0; t < 40; ++t) {
    if (RunUseful(big, n, 0.7, m_cap, 2000 + t) < m_cap) ++big_wrong;
    if (RunUseful(small, n, 0.7, m_cap, 3000 + t) >= m_cap) ++small_wrong;
  }
  EXPECT_LE(big_wrong, 2);
  EXPECT_LE(small_wrong, 2);
}

TEST(UsefulAlgorithmTest, SpaceScalesWithTrackedHeavies) {
  std::vector<WeightedEdge> edges;
  for (std::uint64_t v = 1; v <= 50; ++v) edges.push_back({0, v, 1.0});
  UsefulAlgorithm useful(UsefulAlgorithm::Config{1.0, 4.0});
  // Drive directly; vertex 0 arrives first, then the spokes.
  std::vector<UsefulAlgorithm::IncidentEdge> zero_edges;
  for (std::uint64_t v = 1; v <= 50; ++v) {
    zero_edges.push_back(UsefulAlgorithm::IncidentEdge{v, 1.0, true, true});
  }
  useful.OnVertex(0, true, true, zero_edges);
  for (std::uint64_t v = 1; v <= 50; ++v) {
    UsefulAlgorithm::IncidentEdge e{0, 1.0, true, true};
    useful.OnVertex(v, true, true, std::span(&e, 1));
  }
  EXPECT_EQ(useful.NumTrackedHeavy(), 1u);  // Only the hub.
  EXPECT_NEAR(useful.Estimate(), 50.0, 1e-9);
  EXPECT_GT(useful.SpaceWords(), 50u);  // Seen-marks dominate.
}

}  // namespace
}  // namespace cyclestream
