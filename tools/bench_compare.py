#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files.

Matches benchmarks by name, normalizes time units, and prints a ratio table
(current / baseline; > 1 means slower). Report-only by default so noisy CI
machines don't block merges; pass --fail-on-regression to turn regressions
beyond --threshold into a nonzero exit for strict local gating.

A benchmark present in only one of the two files (new benchmark, or one
removed since the baseline) is warned about on stderr and skipped — it can
never be a regression, and it must not crash the comparison.

Usage:
  tools/bench_compare.py BENCH_baseline.json current.json
  tools/bench_compare.py BENCH_baseline.json current.json \
      --fail-on-regression --threshold 1.25
  tools/bench_compare.py --self-test
"""

import argparse
import json
import sys
import tempfile

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: time_ns} for the real-time column of one JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        scale = _UNIT_TO_NS.get(b.get("time_unit", "ns"), 1.0)
        out[b["name"]] = {
            "real_ns": b["real_time"] * scale,
            "cpu_ns": b["cpu_time"] * scale,
        }
    return out


def format_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def compare(baseline, current, metric="cpu", threshold=1.25, out=sys.stdout,
            err=sys.stderr):
    """Compares two {name: {real_ns, cpu_ns}} dicts.

    Prints the ratio table to `out` and one-sided warnings to `err`.
    Returns (matched_names, regressions) where regressions is a list of
    (name, ratio) pairs beyond `threshold`.
    """
    key = "cpu_ns" if metric == "cpu" else "real_ns"
    matched = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    # One-sided benchmarks are skipped, loudly: a rename or deletion that
    # silently shrank the comparison set would defeat the regression gate.
    for name in only_baseline:
        print(f"warning: {name}: only in baseline (removed or renamed?); "
              "skipped", file=err)
    for name in only_current:
        print(f"warning: {name}: only in current run (no baseline yet); "
              "skipped", file=err)

    regressions = []
    if not matched:
        print("No benchmarks in common between the two files.", file=out)
        return matched, regressions

    name_width = max(len(n) for n in matched)
    header = (f"{'benchmark':<{name_width}}  {'baseline':>10}  "
              f"{'current':>10}  {'ratio':>7}  status")
    print(header, file=out)
    print("-" * len(header), file=out)

    for name in matched:
        base_ns = baseline[name][key]
        cur_ns = current[name][key]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        if ratio > threshold:
            status = "REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1 / threshold:
            status = "improved"
        else:
            status = "ok"
        print(f"{name:<{name_width}}  {format_ns(base_ns):>10}  "
              f"{format_ns(cur_ns):>10}  {ratio:>6.2f}x  {status}",
              file=out)
    return matched, regressions


def self_test():
    """Pytest-free smoke test of the comparison logic (run by CI)."""
    import io

    def entry(ns):
        return {"real_ns": ns, "cpu_ns": ns}

    # Regression detection and ratio math.
    out, err = io.StringIO(), io.StringIO()
    matched, regressions = compare(
        {"a": entry(100), "b": entry(100), "c": entry(100)},
        {"a": entry(100), "b": entry(200), "c": entry(50)},
        threshold=1.25, out=out, err=err)
    assert matched == ["a", "b", "c"], matched
    assert regressions == [("b", 2.0)], regressions
    assert "REGRESSION" in out.getvalue()
    assert "improved" in out.getvalue()
    assert err.getvalue() == "", err.getvalue()

    # One-sided benchmarks: warned on stderr, skipped, never a regression.
    out, err = io.StringIO(), io.StringIO()
    matched, regressions = compare(
        {"shared": entry(100), "removed": entry(100)},
        {"shared": entry(100), "added": entry(1)},
        out=out, err=err)
    assert matched == ["shared"], matched
    assert regressions == [], regressions
    assert "removed: only in baseline" in err.getvalue(), err.getvalue()
    assert "added: only in current" in err.getvalue(), err.getvalue()

    # Fully disjoint files: no crash, no regressions, explicit message.
    out, err = io.StringIO(), io.StringIO()
    matched, regressions = compare(
        {"x": entry(100)}, {"y": entry(100)}, out=out, err=err)
    assert matched == [] and regressions == []
    assert "No benchmarks in common" in out.getvalue()

    # End-to-end through real files: unit normalization and the aggregate-
    # row filter.
    baseline_json = {"benchmarks": [
        {"name": "bm", "real_time": 1.0, "cpu_time": 1.0, "time_unit": "ms"},
        {"name": "bm_mean", "real_time": 9.0, "cpu_time": 9.0,
         "time_unit": "ms", "run_type": "aggregate"},
    ]}
    current_json = {"benchmarks": [
        {"name": "bm", "real_time": 1500.0, "cpu_time": 1500.0,
         "time_unit": "us"},
    ]}
    with tempfile.NamedTemporaryFile("w", suffix=".json") as fb, \
            tempfile.NamedTemporaryFile("w", suffix=".json") as fc:
        json.dump(baseline_json, fb)
        json.dump(current_json, fc)
        fb.flush()
        fc.flush()
        baseline = load_benchmarks(fb.name)
        current = load_benchmarks(fc.name)
    assert list(baseline) == ["bm"], baseline  # Aggregate row dropped.
    out, err = io.StringIO(), io.StringIO()
    _, regressions = compare(baseline, current, out=out, err=err)
    assert regressions == [("bm", 1.5)], regressions  # 1.5ms vs 1.0ms.

    print("bench_compare self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files by benchmark name.")
    parser.add_argument("baseline", nargs="?",
                        help="baseline JSON (committed reference)")
    parser.add_argument("current", nargs="?", help="freshly measured JSON")
    parser.add_argument("--metric", choices=["cpu", "real"], default="cpu",
                        help="time column to compare (default: cpu)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="ratio above which a benchmark counts as a "
                             "regression (default: 1.25)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any matched benchmark regresses "
                             "beyond the threshold (default: report only)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in smoke test and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current are required (or --self-test)")

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    matched, regressions = compare(baseline, current, metric=args.metric,
                                   threshold=args.threshold)
    if not matched:
        return 1

    print()
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.2f}x ({args.metric} time):")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        if args.fail_on_regression:
            return 1
        print("(report-only mode; pass --fail-on-regression to gate)")
    else:
        print(f"No regressions beyond {args.threshold:.2f}x "
              f"({args.metric} time) across {len(matched)} benchmarks.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
