#!/usr/bin/env python3
"""Compare two google-benchmark JSON result files.

Matches benchmarks by name, normalizes time units, and prints a ratio table
(current / baseline; > 1 means slower). Report-only by default so noisy CI
machines don't block merges; pass --fail-on-regression to turn regressions
beyond --threshold into a nonzero exit for strict local gating.

Usage:
  tools/bench_compare.py BENCH_baseline.json current.json
  tools/bench_compare.py BENCH_baseline.json current.json \
      --fail-on-regression --threshold 1.25
"""

import argparse
import json
import sys

_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    """Returns {name: time_ns} for the real-time column of one JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if b.get("run_type") == "aggregate":
            continue
        scale = _UNIT_TO_NS.get(b.get("time_unit", "ns"), 1.0)
        out[b["name"]] = {
            "real_ns": b["real_time"] * scale,
            "cpu_ns": b["cpu_time"] * scale,
        }
    return out


def format_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two google-benchmark JSON files by benchmark name.")
    parser.add_argument("baseline", help="baseline JSON (committed reference)")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument("--metric", choices=["cpu", "real"], default="cpu",
                        help="time column to compare (default: cpu)")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="ratio above which a benchmark counts as a "
                             "regression (default: 1.25)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any matched benchmark regresses "
                             "beyond the threshold (default: report only)")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)
    key = "cpu_ns" if args.metric == "cpu" else "real_ns"

    matched = sorted(set(baseline) & set(current))
    only_baseline = sorted(set(baseline) - set(current))
    only_current = sorted(set(current) - set(baseline))

    if not matched:
        print("No benchmarks in common between the two files.")
        return 1

    name_width = max(len(n) for n in matched)
    header = (f"{'benchmark':<{name_width}}  {'baseline':>10}  "
              f"{'current':>10}  {'ratio':>7}  status")
    print(header)
    print("-" * len(header))

    regressions = []
    for name in matched:
        base_ns = baseline[name][key]
        cur_ns = current[name][key]
        ratio = cur_ns / base_ns if base_ns > 0 else float("inf")
        if ratio > args.threshold:
            status = "REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1 / args.threshold:
            status = "improved"
        else:
            status = "ok"
        print(f"{name:<{name_width}}  {format_ns(base_ns):>10}  "
              f"{format_ns(cur_ns):>10}  {ratio:>6.2f}x  {status}")

    for name in only_baseline:
        print(f"{name:<{name_width}}  (missing from current run)")
    for name in only_current:
        print(f"{name:<{name_width}}  (new; no baseline)")

    print()
    if regressions:
        print(f"{len(regressions)} regression(s) beyond "
              f"{args.threshold:.2f}x ({args.metric} time):")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        if args.fail_on_regression:
            return 1
        print("(report-only mode; pass --fail-on-regression to gate)")
    else:
        print(f"No regressions beyond {args.threshold:.2f}x "
              f"({args.metric} time) across {len(matched)} benchmarks.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
