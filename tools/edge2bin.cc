// edge2bin — converts text edge lists to the binary edge-stream format
// (graph/binary_io.h) and back, and text turnstile streams to the binary
// turnstile format v2 (stream/dynamic/turnstile_io.h) and back.
//
//   edge2bin IN.txt OUT.bin [--num_vertices N]
//   edge2bin --turnstile IN.txt OUT.bin [--num_vertices N]
//   edge2bin --to-text IN.bin OUT.txt      (auto-detects v1 vs v2)
//
// The text parser here deliberately differs from LoadEdgeListText: vertex
// ids are taken *literally* (no densification), duplicates are kept, and
// edge order is preserved — a .bin file is a stream, not a graph, and the
// conversion must be invertible. For a file produced by SaveEdgeListText
// (e.g. `cyclestream_cli generate`), text -> bin -> text reproduces the
// original byte-for-byte, which CI asserts with `diff`.
//
// Turnstile text streams are one update per line: `+ u v` (insert) or
// `- u v` (delete), with an optional
// "# cyclestream turnstile stream: N vertices, M updates" header comment.
// The same byte-for-byte round-trip contract holds (--turnstile -> --to-text
// diffs clean), and --to-text refuses concatenated/mixed-version files via
// the readers' exact-size checks.
//
// The vertex count comes from --num_vertices, else from the
// "# cyclestream edge list: N vertices, ..." (or turnstile) header comment,
// else from max(id)+1. Self-loops are errors (the binary formats cannot
// represent them); reversed endpoints (u > v) are canonicalized with a
// counted warning.

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/binary_io.h"
#include "graph/types.h"
#include "stream/dynamic/turnstile.h"
#include "stream/dynamic/turnstile_io.h"
#include "util/crc32.h"
#include "util/flags.h"

namespace cyclestream {
namespace {

int Usage() {
  std::cerr << "usage: edge2bin IN.txt OUT.bin [--num_vertices N]\n"
               "       edge2bin --turnstile IN.txt OUT.bin [--num_vertices N]\n"
               "         (turnstile text: one `+ u v` or `- u v` per line)\n"
               "       edge2bin --to-text IN.bin OUT.txt\n"
               "         (auto-detects the v1 edge vs v2 turnstile format)\n";
  return 2;
}

bool ParseVertex(const std::string& token, std::uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out, 10);
  return ec == std::errc() && ptr == token.data() + token.size();
}

// Recognizes SaveEdgeListText's header comment and extracts N.
bool ParseHeaderComment(const std::string& line, std::uint64_t* n) {
  constexpr char kPrefix[] = "# cyclestream edge list: ";
  if (line.rfind(kPrefix, 0) != 0) return false;
  const std::size_t start = sizeof(kPrefix) - 1;
  const std::size_t end = line.find(' ', start);
  if (end == std::string::npos ||
      line.compare(end, 9, " vertices") != 0) {
    return false;
  }
  return ParseVertex(line.substr(start, end - start), n);
}

int TextToBin(const std::string& in_path, const std::string& out_path,
              std::int64_t num_vertices_flag) {
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "error: cannot open " << in_path << "\n";
    return 1;
  }
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  // Header placeholder; patched once the CRC and counts are known.
  char header[kBinaryEdgeHeaderSize] = {};
  out.write(header, sizeof(header));

  auto fail = [&out_path](const std::string& message) {
    std::cerr << "error: " << message << "\n";
    std::remove(out_path.c_str());
    return 1;
  };

  Crc32Accumulator crc;
  std::vector<Edge> buffer;
  buffer.reserve(1 << 16);
  auto flush = [&] {
    const char* bytes = reinterpret_cast<const char*>(buffer.data());
    const std::size_t size = buffer.size() * sizeof(Edge);
    crc.Update(bytes, size);
    out.write(bytes, static_cast<std::streamsize>(size));
    buffer.clear();
  };

  std::uint64_t header_vertices = 0;
  bool have_header_vertices = false;
  std::uint64_t count = 0;
  std::uint64_t max_id = 0;
  std::uint64_t swapped = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!have_header_vertices && count == 0 &&
        ParseHeaderComment(line, &header_vertices)) {
      have_header_vertices = true;
    }
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string ta, tb;
    if (!(ls >> ta)) continue;  // Blank or comment-only line.
    std::uint64_t a = 0, b = 0;
    if (!(ls >> tb) || !ParseVertex(ta, &a) || !ParseVertex(tb, &b)) {
      return fail(in_path + ":" + std::to_string(lineno) +
                  ": malformed line");
    }
    if (a == b) {
      return fail(in_path + ":" + std::to_string(lineno) + ": self-loop " +
                  std::to_string(a) +
                  " (the binary stream format cannot represent it)");
    }
    if (a > b) {
      std::swap(a, b);
      ++swapped;
    }
    if (b > 0xffffffffull) {
      return fail(in_path + ":" + std::to_string(lineno) + ": vertex id " +
                  std::to_string(b) + " exceeds 32 bits");
    }
    max_id = std::max(max_id, b);
    buffer.emplace_back(static_cast<VertexId>(a), static_cast<VertexId>(b));
    ++count;
    if (buffer.size() == buffer.capacity()) flush();
  }
  if (in.bad()) {
    return fail(in_path + ": read error after line " + std::to_string(lineno));
  }
  flush();

  std::uint64_t num_vertices = count > 0 ? max_id + 1 : 0;
  if (num_vertices_flag > 0) {
    num_vertices = static_cast<std::uint64_t>(num_vertices_flag);
  } else if (have_header_vertices) {
    num_vertices = header_vertices;
  }
  if (num_vertices > 0xffffffffull) {
    return fail("vertex count " + std::to_string(num_vertices) +
                " exceeds 32 bits");
  }
  if (count > 0 && max_id >= num_vertices) {
    return fail("vertex id " + std::to_string(max_id) +
                " out of range for num_vertices=" +
                std::to_string(num_vertices));
  }
  if (swapped > 0) {
    std::cerr << "warning: " << in_path << ": canonicalized " << swapped
              << " reversed edge" << (swapped == 1 ? "" : "s") << "\n";
  }

  // Patch the real header (same layout as WriteBinaryEdgeStream).
  constexpr char kMagic[8] = {'C', 'Y', 'S', 'B', 'I', 'N', '\x01', '\n'};
  std::memcpy(header, kMagic, sizeof(kMagic));
  const std::uint32_t version = kBinaryEdgeVersion;
  const std::uint32_t n32 = static_cast<std::uint32_t>(num_vertices);
  const std::uint32_t crc32 = crc.Final();
  std::memcpy(header + 8, &version, 4);
  std::memcpy(header + 12, &n32, 4);
  std::memcpy(header + 16, &count, 8);
  std::memcpy(header + 24, &crc32, 4);
  out.seekp(0);
  out.write(header, sizeof(header));
  out.flush();
  if (!out) return fail("write failed: " + out_path);
  std::cerr << "wrote " << out_path << ": n=" << num_vertices
            << " m=" << count << "\n";
  return 0;
}

// Recognizes the turnstile text header comment and extracts N.
bool ParseTurnstileHeaderComment(const std::string& line, std::uint64_t* n) {
  constexpr char kPrefix[] = "# cyclestream turnstile stream: ";
  if (line.rfind(kPrefix, 0) != 0) return false;
  const std::size_t start = sizeof(kPrefix) - 1;
  const std::size_t end = line.find(' ', start);
  if (end == std::string::npos ||
      line.compare(end, 9, " vertices") != 0) {
    return false;
  }
  return ParseVertex(line.substr(start, end - start), n);
}

int TurnstileTextToBin(const std::string& in_path, const std::string& out_path,
                       std::int64_t num_vertices_flag) {
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "error: cannot open " << in_path << "\n";
    return 1;
  }
  auto fail = [](const std::string& message) {
    std::cerr << "error: " << message << "\n";
    return 1;
  };

  TurnstileStream stream;
  std::uint64_t header_vertices = 0;
  bool have_header_vertices = false;
  std::uint64_t max_id = 0;
  std::uint64_t swapped = 0;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!have_header_vertices && stream.empty() &&
        ParseTurnstileHeaderComment(line, &header_vertices)) {
      have_header_vertices = true;
    }
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string top, ta, tb;
    if (!(ls >> top)) continue;  // Blank or comment-only line.
    if (top != "+" && top != "-") {
      return fail(in_path + ":" + std::to_string(lineno) +
                  ": turnstile lines start with + (insert) or - (delete)");
    }
    std::uint64_t a = 0, b = 0;
    if (!(ls >> ta >> tb) || !ParseVertex(ta, &a) || !ParseVertex(tb, &b)) {
      return fail(in_path + ":" + std::to_string(lineno) +
                  ": malformed line");
    }
    if (a == b) {
      return fail(in_path + ":" + std::to_string(lineno) + ": self-loop " +
                  std::to_string(a) +
                  " (the binary stream format cannot represent it)");
    }
    if (a > b) {
      std::swap(a, b);
      ++swapped;
    }
    if (b > 0xffffffffull) {
      return fail(in_path + ":" + std::to_string(lineno) + ": vertex id " +
                  std::to_string(b) + " exceeds 32 bits");
    }
    max_id = std::max(max_id, b);
    stream.emplace_back(
        Edge(static_cast<VertexId>(a), static_cast<VertexId>(b)),
        top == "+" ? TurnstileOp::kInsert : TurnstileOp::kDelete);
  }
  if (in.bad()) {
    return fail(in_path + ": read error after line " + std::to_string(lineno));
  }

  std::uint64_t num_vertices = stream.empty() ? 0 : max_id + 1;
  if (num_vertices_flag > 0) {
    num_vertices = static_cast<std::uint64_t>(num_vertices_flag);
  } else if (have_header_vertices) {
    num_vertices = header_vertices;
  }
  if (num_vertices > 0xffffffffull) {
    return fail("vertex count " + std::to_string(num_vertices) +
                " exceeds 32 bits");
  }
  if (!stream.empty() && max_id >= num_vertices) {
    return fail("vertex id " + std::to_string(max_id) +
                " out of range for num_vertices=" +
                std::to_string(num_vertices));
  }
  if (swapped > 0) {
    std::cerr << "warning: " << in_path << ": canonicalized " << swapped
              << " reversed edge" << (swapped == 1 ? "" : "s") << "\n";
  }

  std::string error;
  if (!WriteTurnstileStream(stream, static_cast<VertexId>(num_vertices),
                            out_path, &error)) {
    return fail(error);
  }
  std::cerr << "wrote " << out_path << ": n=" << num_vertices
            << " updates=" << stream.size() << " (turnstile v2)\n";
  return 0;
}

int TurnstileBinToText(const std::string& in_path,
                       const std::string& out_path) {
  TurnstileBinaryReader reader;
  // Pass-through tool: any well-formed v2 file must convert, including
  // streams with unmatched deletes that the strict query-path ingest would
  // reject.
  reader.set_strict(false);
  std::string error;
  if (!reader.Open(in_path, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  out << "# cyclestream turnstile stream: " << reader.num_vertices()
      << " vertices, " << reader.num_updates() << " updates\n";
  for (const TurnstileUpdate& u : reader.stream()) {
    out << (u.op == TurnstileOp::kInsert ? '+' : '-') << ' ' << u.edge.u
        << ' ' << u.edge.v << '\n';
  }
  out.flush();
  if (!out) {
    std::cerr << "error: write failed: " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << ": n=" << reader.num_vertices()
            << " updates=" << reader.num_updates() << "\n";
  return 0;
}

int BinToText(const std::string& in_path, const std::string& out_path) {
  BinaryEdgeReader reader;
  std::string error;
  if (!reader.Open(in_path, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open " << out_path << " for writing\n";
    return 1;
  }
  // Same shape as SaveEdgeListText, so bin -> text of a converted
  // generator file diffs clean against the original.
  out << "# cyclestream edge list: " << reader.num_vertices() << " vertices, "
      << reader.num_edges() << " edges\n";
  const Edge* edges = reader.edges();
  for (std::size_t i = 0; i < reader.num_edges(); ++i) {
    out << edges[i].u << ' ' << edges[i].v << '\n';
  }
  out.flush();
  if (!out) {
    std::cerr << "error: write failed: " << out_path << "\n";
    return 1;
  }
  std::cerr << "wrote " << out_path << ": n=" << reader.num_vertices()
            << " m=" << reader.num_edges() << "\n";
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  // FlagParser's `--flag value` syntax makes a bare `--to-text IN.bin`
  // swallow the input path as the flag value; reconstruct the positionals
  // so both `--to-text IN OUT` and `--to-text=1 IN OUT` work.
  const std::string to_text_value = flags.GetString("to-text", "");
  const bool to_text = !to_text_value.empty();
  const std::string turnstile_value = flags.GetString("turnstile", "");
  const bool turnstile = !turnstile_value.empty();
  std::vector<std::string> paths;
  if (to_text && to_text_value != "true" && to_text_value != "1") {
    paths.push_back(to_text_value);  // The swallowed input path.
  }
  if (turnstile && turnstile_value != "true" && turnstile_value != "1") {
    paths.push_back(turnstile_value);  // Likewise for a bare --turnstile.
  }
  paths.insert(paths.end(), flags.positional().begin(),
               flags.positional().end());
  if (paths.size() != 2) return Usage();
  if (to_text) {
    // The magic byte picks the decoder, so `--to-text` inverts whichever
    // emit mode produced the file.
    if (SniffBinaryFormatVersion(paths[0]) == kBinaryTurnstileVersion) {
      return TurnstileBinToText(paths[0], paths[1]);
    }
    return BinToText(paths[0], paths[1]);
  }
  if (turnstile) {
    return TurnstileTextToBin(paths[0], paths[1],
                              flags.GetInt("num_vertices", 0));
  }
  return TextToBin(paths[0], paths[1], flags.GetInt("num_vertices", 0));
}

}  // namespace
}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
