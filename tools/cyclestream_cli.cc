// cyclestream_cli — command-line front end for the library.
//
//   cyclestream_cli stats    --graph g.txt
//   cyclestream_cli count    --graph g.txt --target triangles
//                            [--algorithm exact|random-order|triest|cj]
//   cyclestream_cli count    --graph g.txt --target c4
//                            [--algorithm exact|diamonds|f2|l2|three-pass|
//                             arb-f2|bc|wedge]
//   cyclestream_cli generate --model er|gnp|ba|chung-lu|ws|grid
//                            --n 10000 [--m 50000 | --p 0.01 | --deg 6]
//                            --out g.txt
//   cyclestream_cli sweep    --graph g.txt|g.bin --algorithms a,b,c
//                            --queries 16 [--order shuffled|file]
//                            [--per-query-budget W] [--aggregate-budget W]
//   cyclestream_cli serve    --graph g.txt|g.bin --spec queries.txt
//
// Graphs are SNAP-format text edge lists, or binary edge streams (.bin,
// see graph/binary_io.h and tools/edge2bin). All estimators print the
// estimate, the exact count (unless --no-exact), and the peak space.
//
// `sweep` and `serve` run many estimators over ONE shared stream read per
// logical pass via the engine's StreamBroker: sweep generates a query
// matrix (round-robin over --algorithms, seeds S, S+1, ...), serve reads
// explicit QuerySpecs from a file of `key=value` lines.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/bera_chakrabarti.h"
#include "baselines/cormode_jowhari.h"
#include "baselines/triest.h"
#include "baselines/wedge_sampler.h"
#include "engine/broker.h"
#include "engine/budget.h"
#include "engine/coordinator.h"
#include "engine/query.h"
#include "engine/shard.h"
#include "engine/spec.h"
#include "engine/supervisor.h"
#include "core/adj_f2_counter.h"
#include "core/adj_l2_counter.h"
#include "core/amplify.h"
#include "core/arb_f2_counter.h"
#include "core/arb_three_pass.h"
#include "core/diamond_counter.h"
#include "core/random_order_triangles.h"
#include "gen/generators.h"
#include "graph/binary_io.h"
#include "graph/datasets.h"
#include "graph/dodg.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "stream/checkpoint.h"
#include "stream/driver.h"
#include "stream/dynamic/turnstile.h"
#include "stream/dynamic/turnstile_io.h"
#include "stream/order.h"
#include "util/flags.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/timer.h"

namespace cyclestream {
namespace {

int Usage() {
  std::cerr <<
      "usage: cyclestream_cli "
      "<stats|count|exact|generate|sweep|serve|shard> [flags]\n"
      "  stats    --graph FILE | --karate\n"
      "  exact    --graph FILE [--target triangles|c4|both]\n"
      "           [--exact_backend naive|dodg] [--hub-range H]\n"
      "           .bin graphs mmap straight into the DODG CSR build\n"
      "  count    --graph FILE --target triangles|c4 [--algorithm NAME]\n"
      "           [--epsilon E] [--t-guess T] [--seed S] [--no-exact]\n"
      "           [--delta D]   amplify: median of ~2*ln(1/D) parallel copies\n"
      "  generate --model er|gnp|ba|chung-lu|ws|grid --n N\n"
      "           [--m M | --p P | --deg D] [--seed S] --out FILE\n"
      "  sweep    --graph FILE --algorithms a,b,... --queries N\n"
      "           [--order shuffled|file] [--epsilon E] [--t-guess T]\n"
      "           [--seed S] [--budget-words W] [--per-query-budget W]\n"
      "           [--aggregate-budget W] [--block-edges B] [--no-exact]\n"
      "           [--sketch_backend scalar|block] [--intra_threads N]\n"
      "           block backend batches sketch updates through the SIMD\n"
      "           kernels; N>1 splits each block across per-thread shards\n"
      "           (bit-identical estimates either way)\n"
      "           one shared stream read serves all N queries per pass;\n"
      "           kinds: random-order triest cormode-jowhari arb-f2\n"
      "                  arb-three-pass bera-chakrabarti (edge family)\n"
      "                  adj-diamond adj-f2 adj-l2 (adjacency family)\n"
      "                  turnstile-f2-triangle turnstile-f2-c4 (turnstile\n"
      "                  family: dynamic insert/delete streams; a .bin v2\n"
      "                  file from `edge2bin --turnstile` streams in file\n"
      "                  order, any insert-only graph is wrapped)\n"
      "           turnstile-only time-decay knobs (mutually exclusive):\n"
      "           [--window W --window-buckets B]   estimate over the last\n"
      "           W updates via B merged sketch buckets (B divides W)\n"
      "           [--decay-epoch K --decay-log2 D]   multiply the sketch by\n"
      "           2^-D every K updates (exact power-of-two decay)\n"
      "  serve    --graph FILE --spec FILE   QuerySpecs from key=value lines\n"
      "           (name= kind= [seed=] [budget=] [epsilon=] [c=] [t_guess=]\n"
      "            [level_rate=] [prefix_rate=] [reservoir=]\n"
      "            [num_vertices=] [sketch_backend=] [intra_shards=]\n"
      "            [window=] [window_buckets=] [decay_epoch=] [decay_log2=])\n"
      "           --daemon   supervised always-on mode over the sharded\n"
      "           engine (takes the `shard` flags, plus):\n"
      "           [--max-retries N] [--backoff-ms B] [--backoff-cap-ms C]\n"
      "           [--shard-deadline-ms D] [--wave-deadline-ms D]\n"
      "           [--heartbeat-edges K] [--throttle-ms T] [--resume]\n"
      "           [--hang-shard I --hang-edges E]   fault injection\n"
      "           SIGTERM/SIGINT drain at the next epoch boundary (exit 3);\n"
      "           --resume finishes a drained or crashed batch with a\n"
      "           byte-identical deterministic manifest\n"
      "  shard    --graph FILE --shard-dir DIR [--shards W]\n"
      "           [--spec FILE | --algorithms arb-f2 --queries N]\n"
      "           [--launch inprocess|subprocess] [--worker-binary BIN]\n"
      "           [--epoch-edges K] [--kill-shard I --kill-edges E]\n"
      "           [--order shuffled|file] [--per-query-budget W]\n"
      "           [--aggregate-budget W] [--block-edges B] [--no-exact]\n"
      "           multi-process engine: W workers each sketch one\n"
      "           contiguous stream slice; the coordinator merges the\n"
      "           shard states (bit-identical to --shards 1 at any W);\n"
      "           subprocess launch needs a .bin graph and --order file;\n"
      "           kinds must be shard-mergeable (arb-f2)\n"
      "  common:  --threads N   worker threads (0 = all cores, 1 = serial)\n"
      "           --json_out FILE   write a structured run manifest\n"
      "           --json_det_out FILE   write the deterministic manifest\n"
      "           --checkpoint_dir DIR --checkpoint_every K [--resume]\n"
      "           [--kill_after N]   snapshot/resume (see DESIGN.md §10)\n"
      "           .bin graphs (tools/edge2bin) mmap in zero-copy\n";
  return 2;
}

// Reads the shared sketch-update knobs into `spec`. Returns false (after
// printing an error) on a bad --sketch_backend value.
bool ApplySketchBackendFlags(FlagParser& flags, engine::QuerySpec* spec) {
  const std::string backend = flags.GetString("sketch_backend", "scalar");
  const auto parsed = ParseSketchBackend(backend);
  if (!parsed.has_value()) {
    std::cerr << "error: --sketch_backend must be scalar or block, got '"
              << backend << "'\n";
    return false;
  }
  spec->sketch_backend = *parsed;
  spec->intra_shards =
      std::max(1, static_cast<int>(flags.GetInt("intra_threads", 1)));
  return true;
}

bool IsBinaryGraphPath(const std::string& path) {
  return path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
}

EdgeList LoadGraph(FlagParser& flags, bool* ok) {
  *ok = true;
  if (flags.GetBool("karate", false)) return KarateClub();
  const std::string path = flags.GetString("graph", "");
  if (path.empty()) {
    std::cerr << "error: --graph FILE (or --karate) is required\n";
    *ok = false;
    return EdgeList();
  }
  auto loaded = IsBinaryGraphPath(path) ? LoadEdgeListBinary(path)
                                        : LoadEdgeListText(path);
  if (!loaded) {
    std::cerr << "error: cannot load " << path << "\n";
    *ok = false;
    return EdgeList();
  }
  return std::move(*loaded);
}

int RunStats(FlagParser& flags, RunManifest& manifest) {
  bool ok = false;
  const EdgeList graph = LoadGraph(flags, &ok);
  if (!ok) return 1;
  const Graph g(graph);
  Table t({"statistic", "value"});
  t.AddRow({"vertices", Table::Int(g.num_vertices())});
  t.AddRow({"edges", Table::Int(static_cast<std::int64_t>(g.num_edges()))});
  t.AddRow({"max degree", Table::Int(static_cast<std::int64_t>(g.MaxDegree()))});
  t.AddRow({"wedges", Table::Int(static_cast<std::int64_t>(CountWedges(g)))});
  t.AddRow({"triangles", Table::Int(static_cast<std::int64_t>(CountTriangles(g)))});
  t.AddRow({"four-cycles", Table::Int(static_cast<std::int64_t>(CountFourCycles(g)))});
  t.AddRow({"transitivity", Table::Num(Transitivity(g), 4)});
  const auto hist = DiamondHistogram(g);
  std::uint32_t max_diamond = 0;
  for (const auto& [size, count] : hist) {
    (void)count;
    max_diamond = std::max(max_diamond, size);
  }
  t.AddRow({"largest diamond", Table::Int(max_diamond)});
  t.Print(std::cout);
  manifest.AddTable("stats", t);
  manifest.metrics().SetInt("graph.vertices", g.num_vertices());
  manifest.metrics().SetInt("graph.edges",
                            static_cast<std::int64_t>(g.num_edges()));
  return 0;
}

// Exact-count front end: the scale path for ground truth. With the dodg
// backend a .bin graph (tools/edge2bin) feeds the mmap'd edge array
// straight into the DODG CSR build — no text parse, no EdgeList. Counts,
// sizes, and the backend go into the deterministic manifest (identical
// across ISAs and thread counts); kernel choice and timings stay on stderr
// and in the timing section.
int RunExact(FlagParser& flags, RunManifest& manifest) {
  const std::string target = flags.GetString("target", "both");
  if (target != "triangles" && target != "c4" && target != "both") {
    std::cerr << "error: --target must be triangles, c4, or both\n";
    return Usage();
  }
  const ExactBackend backend = GetExactBackend();
  const bool want_triangles = target != "c4";
  const bool want_c4 = target != "triangles";

  VertexId num_vertices = 0;
  std::size_t num_edges = 0;
  std::uint64_t triangles = 0;
  std::uint64_t four_cycles = 0;
  double build_seconds = 0.0;
  double count_seconds = 0.0;

  if (backend == ExactBackend::kDodg) {
    DodgGraph::Options options;
    options.hub_range =
        static_cast<VertexId>(flags.GetInt("hub-range", 0));
    const std::string path = flags.GetString("graph", "");
    Timer build_timer;
    DodgGraph dodg;
    if (flags.GetBool("karate", false)) {
      dodg = DodgGraph::Build(KarateClub(), options);
    } else if (path.empty()) {
      std::cerr << "error: --graph FILE (or --karate) is required\n";
      return 1;
    } else if (IsBinaryGraphPath(path)) {
      BinaryEdgeReader reader;
      std::string error;
      if (!reader.Open(path, &error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      dodg = DodgGraph::Build(reader.edges(), reader.num_edges(),
                              reader.num_vertices(), options);
    } else {
      auto loaded = LoadEdgeListText(path);
      if (!loaded) {
        std::cerr << "error: cannot load " << path << "\n";
        return 1;
      }
      dodg = DodgGraph::Build(*loaded, options);
    }
    build_seconds = build_timer.Seconds();
    std::cerr << "exact backend: dodg (kernels: " << ActiveExactKernels()
              << ", hub range " << dodg.hub_range() << ")\n";
    num_vertices = dodg.num_vertices();
    num_edges = dodg.num_edges();
    Timer count_timer;
    if (want_triangles) triangles = dodg.CountTriangles();
    if (want_c4) four_cycles = dodg.CountFourCycles();
    count_seconds = count_timer.Seconds();
  } else {
    bool ok = false;
    const EdgeList graph = LoadGraph(flags, &ok);
    if (!ok) return 1;
    Timer build_timer;
    const Graph g(graph);
    build_seconds = build_timer.Seconds();
    std::cerr << "exact backend: naive\n";
    num_vertices = g.num_vertices();
    num_edges = g.num_edges();
    Timer count_timer;
    if (want_triangles) triangles = CountTriangles(g);
    if (want_c4) four_cycles = CountFourCycles(g);
    count_seconds = count_timer.Seconds();
  }

  Table t({"statistic", "value"});
  t.AddRow({"backend", ExactBackendName(backend)});
  t.AddRow({"vertices", Table::Int(num_vertices)});
  t.AddRow({"edges", Table::Int(static_cast<std::int64_t>(num_edges))});
  if (want_triangles) {
    t.AddRow({"triangles", Table::Int(static_cast<std::int64_t>(triangles))});
  }
  if (want_c4) {
    t.AddRow(
        {"four-cycles", Table::Int(static_cast<std::int64_t>(four_cycles))});
  }
  t.Print(std::cout);
  std::cerr << "build " << build_seconds << "s, count " << count_seconds
            << "s\n";
  manifest.AddTable("exact", t);
  manifest.metrics().SetInt("graph.vertices", num_vertices);
  manifest.metrics().SetInt("graph.edges",
                            static_cast<std::int64_t>(num_edges));
  if (want_triangles) {
    manifest.metrics().SetInt("exact.triangles",
                              static_cast<std::int64_t>(triangles));
  }
  if (want_c4) {
    manifest.metrics().SetInt("exact.c4",
                              static_cast<std::int64_t>(four_cycles));
  }
  manifest.metrics().SetTiming("exact.build_seconds", build_seconds);
  manifest.metrics().SetTiming("exact.count_seconds", count_seconds);
  return 0;
}

int RunCount(FlagParser& flags, RunManifest& manifest) {
  bool ok = false;
  const EdgeList graph = LoadGraph(flags, &ok);
  if (!ok) return 1;
  const Graph g(graph);
  const std::string target = flags.GetString("target", "triangles");
  const std::string algo = flags.GetString("algorithm", "exact");
  const double epsilon = flags.GetDouble("epsilon", 0.2);
  const std::uint64_t seed = flags.GetCount("seed", 1);
  const bool show_exact = !flags.GetBool("no-exact", false);
  // --delta > 0 amplifies: median over ~2·ln(1/δ) copies, run in parallel
  // on the --threads budget; each copy replays the same materialized
  // stream with its own derived seed.
  const double delta = flags.GetDouble("delta", 0.0);

  double exact = -1.0;
  if (show_exact || flags.GetDouble("t-guess", 0) <= 0) {
    exact = target == "triangles"
                ? static_cast<double>(CountTriangles(g))
                : static_cast<double>(CountFourCycles(g));
  }
  const double t_guess =
      flags.GetDouble("t-guess", std::max(1.0, exact));

  ApproxConfig base;
  base.epsilon = epsilon;
  base.t_guess = std::max(1.0, t_guess);
  base.seed = seed;
  base.c = flags.GetDouble("c", 2.0);

  Rng order_rng(seed ^ 0x5eedULL);
  Estimate est;
  int passes = 1;
  // Each estimator becomes a seed -> Estimate runner over a stream that is
  // materialized once, up front, and shared read-only — so an amplified
  // count (--delta) can replay the same stream from many threads at once.
  std::function<Estimate(std::uint64_t)> runner;
  EdgeStream edge_stream;
  AdjacencyStream adj_stream;
  const VertexId num_vertices = g.num_vertices();
  if (algo == "exact") {
    est.value = target == "triangles"
                    ? static_cast<double>(CountTriangles(g))
                    : static_cast<double>(CountFourCycles(g));
    est.space_words = 2 * g.num_edges();
    passes = 0;
  } else if (target == "triangles") {
    edge_stream = MakeRandomOrderStream(graph, order_rng);
    const EdgeStream& stream = edge_stream;
    if (algo == "random-order") {
      runner = [&stream, base, num_vertices](std::uint64_t s) {
        RandomOrderTriangleCounter::Params params;
        params.base = base;
        params.base.seed = s;
        params.num_vertices = num_vertices;
        return CountTrianglesRandomOrder(stream, params);
      };
    } else if (algo == "triest") {
      const std::size_t reservoir = static_cast<std::size_t>(
          flags.GetCount("reservoir", g.num_edges() / 4));
      runner = [&stream, reservoir](std::uint64_t s) {
        Triest::Params params;
        params.reservoir_capacity = reservoir;
        params.seed = s;
        Triest t(params);
        RunEdgeStream(t, stream);
        return t.Result();
      };
    } else if (algo == "cj") {
      runner = [&stream, base](std::uint64_t s) {
        CormodeJowhariCounter::Params params;
        params.base = base;
        params.base.seed = s;
        return CountTrianglesCormodeJowhari(stream, params);
      };
    } else {
      std::cerr << "unknown triangle algorithm: " << algo << "\n";
      return Usage();
    }
  } else if (target == "c4") {
    if (algo == "diamonds" || algo == "f2" || algo == "l2" ||
        algo == "wedge") {
      adj_stream = MakeAdjacencyStream(g, order_rng);
      const AdjacencyStream& stream = adj_stream;
      passes = algo == "diamonds" || algo == "wedge" ? 2 : 1;
      if (algo == "diamonds") {
        runner = [&stream, base, num_vertices](std::uint64_t s) {
          DiamondFourCycleCounter::Params params;
          params.base = base;
          params.base.seed = s;
          params.num_vertices = num_vertices;
          return CountFourCyclesDiamond(stream, params);
        };
      } else if (algo == "f2") {
        runner = [&stream, base, num_vertices](std::uint64_t s) {
          AdjF2FourCycleCounter::Params params;
          params.base = base;
          params.base.seed = s;
          params.num_vertices = num_vertices;
          return CountFourCyclesAdjF2(stream, params);
        };
      } else if (algo == "l2") {
        runner = [&stream, base, num_vertices](std::uint64_t s) {
          AdjL2FourCycleCounter::Params params;
          params.base = base;
          params.base.seed = s;
          params.num_vertices = num_vertices;
          return CountFourCyclesAdjL2(stream, params);
        };
      } else {
        const double vertex_rate = flags.GetDouble("vertex-rate", 0.5);
        const double edge_rate = flags.GetDouble("edge-rate", 0.5);
        runner = [&stream, base, num_vertices, vertex_rate,
                  edge_rate](std::uint64_t s) {
          WedgeSamplingFourCycleCounter::Params params;
          params.base = base;
          params.base.seed = s;
          params.num_vertices = num_vertices;
          params.vertex_rate = vertex_rate;
          params.edge_rate = edge_rate;
          return CountFourCyclesWedgeSampling(stream, params);
        };
      }
    } else {
      edge_stream = graph.edges();
      order_rng.Shuffle(edge_stream);
      const EdgeStream& stream = edge_stream;
      if (algo == "three-pass") {
        runner = [&stream, base, num_vertices](std::uint64_t s) {
          ArbThreePassFourCycleCounter::Params params;
          params.base = base;
          params.base.seed = s;
          params.num_vertices = num_vertices;
          return CountFourCyclesArbThreePass(stream, params);
        };
        passes = 3;
      } else if (algo == "arb-f2") {
        runner = [&stream, base, num_vertices](std::uint64_t s) {
          ArbF2FourCycleCounter::Params params;
          params.base = base;
          params.base.seed = s;
          params.num_vertices = num_vertices;
          return CountFourCyclesArbF2(stream, params);
        };
      } else if (algo == "bc") {
        runner = [&stream, base](std::uint64_t s) {
          BeraChakrabartiCounter::Params params;
          params.base = base;
          params.base.seed = s;
          return CountFourCyclesBeraChakrabarti(stream, params);
        };
        passes = 2;
      } else {
        std::cerr << "unknown c4 algorithm: " << algo << "\n";
        return Usage();
      }
    }
  } else {
    std::cerr << "unknown target: " << target << "\n";
    return Usage();
  }
  if (runner != nullptr) {
    est = delta > 0 ? AmplifyMedian(delta, seed, runner) : runner(seed);
  }

  Table t({"quantity", "value"});
  t.AddRow({"algorithm", algo});
  t.AddRow({"passes", Table::Int(passes)});
  if (delta > 0 && algo != "exact") {
    t.AddRow({"amplified copies", Table::Int(AmplifyCopies(delta))});
  }
  t.AddRow({"estimate", Table::Num(est.value, 1)});
  if (show_exact && exact >= 0 && algo != "exact") {
    t.AddRow({"exact", Table::Num(exact, 1)});
    t.AddRow({"relative error",
              Table::Pct(exact > 0 ? std::abs(est.value - exact) / exact
                                   : est.value)});
  }
  t.AddRow({"peak space (words)",
            Table::Int(static_cast<std::int64_t>(est.space_words))});
  t.AddRow({"stream size (words)",
            Table::Int(2 * static_cast<std::int64_t>(g.num_edges()))});
  t.Print(std::cout);
  manifest.AddTable("count", t);
  manifest.metrics().Set("estimate", est.value);
  if (show_exact && exact >= 0) manifest.metrics().Set("exact", exact);
  manifest.metrics().SetInt("space_words",
                            static_cast<std::int64_t>(est.space_words));
  manifest.metrics().SetInt("passes", passes);
  return 0;
}

// Loads the batch graph for the engine front ends (text, .bin, or karate).
// On success `*graph` holds the edges, and when the source was a .bin file
// `*binary` is true and `*reader` keeps the mmap open so file-order
// streaming stays zero-copy.
bool LoadBatchGraph(FlagParser& flags, BinaryEdgeReader* reader,
                    EdgeList* graph, bool* binary) {
  const std::string path = flags.GetString("graph", "");
  const bool karate = flags.GetBool("karate", false);
  *binary = !karate && IsBinaryGraphPath(path);
  if (karate) {
    *graph = KarateClub();
  } else if (path.empty()) {
    std::cerr << "error: --graph FILE (or --karate) is required\n";
    return false;
  } else if (*binary) {
    std::string error;
    if (!reader->Open(path, &error)) {
      std::cerr << "error: " << error << "\n";
      return false;
    }
    *graph = reader->ToEdgeList();
  } else {
    auto loaded = LoadEdgeListText(path);
    if (!loaded) {
      std::cerr << "error: cannot load " << path << "\n";
      return false;
    }
    *graph = std::move(*loaded);
  }
  return true;
}

// Exact counts computed lazily per target: the default t_guess, and the
// reference for the printed relative errors.
class ExactCache {
 public:
  explicit ExactCache(const Graph& g) : g_(g) {}

  double For(engine::QueryKind kind) {
    if (engine::QueryKindTarget(kind) == "triangles") {
      if (triangles_ < 0) triangles_ = static_cast<double>(CountTriangles(g_));
      return triangles_;
    }
    if (c4_ < 0) c4_ = static_cast<double>(CountFourCycles(g_));
    return c4_;
  }

  double triangles() const { return triangles_; }
  double c4() const { return c4_; }

 private:
  const Graph& g_;
  double triangles_ = -1.0;
  double c4_ = -1.0;
};

// The shared tail of every engine front end (`sweep`, `serve`, `shard`):
// the per-query outcome table plus the manifest export. Identical printing
// and export keep the sharded engine's manifests comparable with the
// broker's.
void PrintEngineOutcomes(const std::vector<engine::QueryOutcome>& outcomes,
                         const engine::EngineStats& stats, bool show_exact,
                         ExactCache& exact, RunManifest& manifest) {
  Table t({"query", "kind", "admission", "wave", "estimate", "rel.err",
           "space(w)"});
  for (const engine::QueryOutcome& out : outcomes) {
    const bool ran =
        out.admission == engine::AdmissionOutcome::kAdmitted && !out.poisoned;
    std::string rel = "-";
    if (ran && show_exact) {
      const double truth = exact.For(out.spec.kind);
      rel = Table::Pct(truth > 0
                           ? std::abs(out.estimate.value - truth) / truth
                           : out.estimate.value);
    }
    t.AddRow({out.spec.name, std::string(engine::QueryKindName(out.spec.kind)),
              out.poisoned
                  ? std::string("poisoned")
                  : std::string(engine::AdmissionOutcomeName(out.admission)),
              Table::Int(out.wave),
              ran ? Table::Num(out.estimate.value, 1) : "-", rel,
              ran ? Table::Int(static_cast<std::int64_t>(
                        out.estimate.space_words))
                  : "-"});
  }
  t.set_title("engine batch: " + std::to_string(outcomes.size()) +
              " queries, " + std::to_string(stats.physical_passes) +
              " physical stream reads");
  t.Print(std::cout);
  manifest.AddTable("engine", t);
  engine::ExportToManifest(outcomes, stats, manifest);
  if (show_exact && exact.triangles() >= 0) {
    manifest.metrics().Set("exact.triangles", exact.triangles());
  }
  if (show_exact && exact.c4() >= 0) {
    manifest.metrics().Set("exact.c4", exact.c4());
  }
}

// Which of the three stream families a kind consumes (one batch = one
// stream, so every spec in a batch must agree).
int StreamFamily(engine::QueryKind kind) {
  if (engine::IsTurnstileKind(kind)) return 2;
  return engine::IsEdgeKind(kind) ? 0 : 1;
}

// Turnstile half of the engine-batch driver. A .bin v2 file (edge2bin
// --turnstile) streams its insert/delete records in file order — the update
// order is semantic (strict ingest requires every delete to follow a live
// insert), so --order does not apply to it. Any insert-only source (text,
// .bin v1, karate) is wrapped via TurnstileFromEdges with the usual --order
// handling. Ground truth is the *live* graph after every update (LiveEdges),
// which is what the estimates approximate.
int RunTurnstileBatch(FlagParser& flags, RunManifest& manifest,
                      std::vector<engine::QuerySpec> specs) {
  const std::string path = flags.GetString("graph", "");
  const bool karate = flags.GetBool("karate", false);
  const std::uint64_t seed = flags.GetCount("seed", 1);
  const std::string order = flags.GetString("order", "shuffled");
  if (order != "shuffled" && order != "file") {
    std::cerr << "error: --order must be shuffled or file\n";
    return 1;
  }

  TurnstileStream stream;
  VertexId stream_vertices = 0;
  std::uint32_t format_version = 0;
  if (!karate && !path.empty() && IsBinaryGraphPath(path) &&
      SniffBinaryFormatVersion(path) == kBinaryTurnstileVersion) {
    TurnstileBinaryReader turnstile_reader;
    std::string error;
    if (!turnstile_reader.Open(path, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    stream_vertices = turnstile_reader.num_vertices();
    format_version = turnstile_reader.format_version();
    stream = turnstile_reader.TakeStream();
  } else {
    BinaryEdgeReader reader;
    EdgeList graph;
    bool binary = false;
    if (!LoadBatchGraph(flags, &reader, &graph, &binary)) return 1;
    if (binary) format_version = reader.format_version();
    stream_vertices = graph.num_vertices();
    if (order == "file") {
      stream = TurnstileFromEdges(graph.edges());
    } else {
      Rng order_rng(seed ^ 0x5eedULL);
      const EdgeStream shuffled = MakeRandomOrderStream(graph, order_rng);
      stream = TurnstileFromEdges(shuffled);
    }
  }
  if (format_version != 0) {
    manifest.metrics().SetInt("stream.format_version",
                              static_cast<std::int64_t>(format_version));
  }
  manifest.metrics().SetInt("stream.updates",
                            static_cast<std::int64_t>(stream.size()));

  const std::vector<Edge> live = LiveEdges(stream);
  EdgeList live_list(stream_vertices);
  for (const Edge& e : live) live_list.Add(e.u, e.v);
  live_list.Finalize();
  const Graph g(live_list);
  const bool show_exact = !flags.GetBool("no-exact", false);
  ExactCache exact(g);

  engine::BrokerOptions options;
  options.block_size =
      static_cast<std::size_t>(flags.GetCount("block-edges", 4096));
  options.budget.per_query_words =
      static_cast<std::size_t>(flags.GetCount("per-query-budget", 0));
  options.budget.aggregate_words =
      static_cast<std::size_t>(flags.GetCount("aggregate-budget", 0));
  engine::StreamBroker broker(options);
  for (engine::QuerySpec& spec : specs) {
    if (spec.num_vertices == 0) spec.num_vertices = stream_vertices;
    if (spec.base.t_guess <= 1.0) {
      spec.base.t_guess = std::max(1.0, exact.For(spec.kind));
    }
    broker.AddQuery(spec);
  }

  const std::vector<engine::QueryOutcome> outcomes =
      broker.RunTurnstileQueries(stream);
  PrintEngineOutcomes(outcomes, broker.stats(), show_exact, exact, manifest);
  return 0;
}

// Shared engine-batch driver behind `sweep` and `serve`: loads the graph
// (text, .bin, or karate), fills spec defaults (n, t_guess from the exact
// count of each query's target), builds the stream of the batch's family,
// runs the broker, and prints/exports per-query outcomes. Everything
// printed and exported is deterministic at any --threads.
int RunEngineBatch(FlagParser& flags, RunManifest& manifest,
                   std::vector<engine::QuerySpec> specs) {
  if (specs.empty()) {
    std::cerr << "error: no queries to run\n";
    return 1;
  }
  const int family = StreamFamily(specs[0].kind);
  for (const engine::QuerySpec& spec : specs) {
    if (StreamFamily(spec.kind) != family) {
      std::cerr << "error: query '" << spec.name << "' ("
                << engine::QueryKindName(spec.kind)
                << ") mixes stream families; one batch = one stream\n";
      return 1;
    }
  }
  if (family == 2) return RunTurnstileBatch(flags, manifest, std::move(specs));
  const bool edge_family = family == 0;

  BinaryEdgeReader reader;
  EdgeList graph;
  bool binary = false;
  if (!LoadBatchGraph(flags, &reader, &graph, &binary)) return 1;
  if (binary) {
    manifest.metrics().SetInt("stream.format_version",
                              static_cast<std::int64_t>(reader.format_version()));
  }
  const Graph g(graph);

  const std::uint64_t seed = flags.GetCount("seed", 1);
  const std::string order = flags.GetString("order", "shuffled");
  if (order != "shuffled" && order != "file") {
    std::cerr << "error: --order must be shuffled or file\n";
    return 1;
  }
  const bool show_exact = !flags.GetBool("no-exact", false);
  ExactCache exact(g);

  engine::BrokerOptions options;
  options.block_size =
      static_cast<std::size_t>(flags.GetCount("block-edges", 4096));
  options.budget.per_query_words =
      static_cast<std::size_t>(flags.GetCount("per-query-budget", 0));
  options.budget.aggregate_words =
      static_cast<std::size_t>(flags.GetCount("aggregate-budget", 0));
  engine::StreamBroker broker(options);
  for (engine::QuerySpec& spec : specs) {
    if (spec.num_vertices == 0) spec.num_vertices = g.num_vertices();
    if (spec.base.t_guess <= 1.0) {
      spec.base.t_guess = std::max(1.0, exact.For(spec.kind));
    }
    broker.AddQuery(spec);
  }

  std::vector<engine::QueryOutcome> outcomes;
  if (edge_family) {
    if (binary && order == "file") {
      // Zero-copy: blocks point straight into the mmap'd .bin payload.
      engine::BinaryEdgeSource source(reader);
      outcomes = broker.RunEdgeQueries(source);
    } else if (order == "file") {
      EdgeStream stream = graph.edges();
      outcomes = broker.RunEdgeQueries(stream);
    } else {
      Rng order_rng(seed ^ 0x5eedULL);
      const EdgeStream stream = MakeRandomOrderStream(graph, order_rng);
      outcomes = broker.RunEdgeQueries(stream);
    }
  } else {
    Rng order_rng(seed ^ 0x5eedULL);
    const AdjacencyStream stream = MakeAdjacencyStream(g, order_rng);
    outcomes = broker.RunAdjacencyQueries(stream);
  }

  PrintEngineOutcomes(outcomes, broker.stats(), show_exact, exact, manifest);
  return 0;
}

int RunSweep(FlagParser& flags, RunManifest& manifest) {
  const std::string algos =
      flags.GetString("algorithms", "random-order,triest,cormode-jowhari");
  std::vector<engine::QueryKind> kinds;
  std::size_t start = 0;
  while (start <= algos.size()) {
    std::size_t comma = algos.find(',', start);
    if (comma == std::string::npos) comma = algos.size();
    const std::string name = algos.substr(start, comma - start);
    if (!name.empty()) {
      const auto kind = engine::ParseQueryKind(name);
      if (!kind.has_value()) {
        std::cerr << "error: unknown algorithm '" << name << "'\n";
        return Usage();
      }
      kinds.push_back(*kind);
    }
    start = comma + 1;
  }
  if (kinds.empty()) {
    std::cerr << "error: --algorithms must name at least one algorithm\n";
    return Usage();
  }

  const int num_queries =
      static_cast<int>(flags.GetCount("queries", 16));
  engine::QuerySpec base;
  base.base.epsilon = flags.GetDouble("epsilon", 0.2);
  base.base.c = flags.GetDouble("c", 2.0);
  base.base.t_guess = flags.GetDouble("t-guess", 0.0);
  base.reservoir_capacity =
      static_cast<std::size_t>(flags.GetCount("reservoir", 1000));
  base.level_rate = flags.GetDouble("level-rate", -1.0);
  base.prefix_rate = flags.GetDouble("prefix-rate", -1.0);
  base.space_budget_words =
      static_cast<std::size_t>(flags.GetCount("budget-words", 0));
  if (!ApplySketchBackendFlags(flags, &base)) return Usage();
  base.window_edges = flags.GetCount("window", 0);
  base.window_buckets = flags.GetCount("window-buckets", 8);
  base.decay_epoch_edges = flags.GetCount("decay-epoch", 0);
  base.decay_log2 =
      static_cast<std::uint32_t>(flags.GetCount("decay-log2", 0));
  const std::uint64_t seed = flags.GetCount("seed", 1);

  std::vector<engine::QuerySpec> specs;
  for (int i = 0; i < num_queries; ++i) {
    engine::QuerySpec spec = base;
    spec.kind = kinds[static_cast<std::size_t>(i) % kinds.size()];
    spec.name =
        std::string(engine::QueryKindName(spec.kind)) + "-" + std::to_string(i);
    spec.base.seed = seed + static_cast<std::uint64_t>(i);
    std::string windowing_error;
    if (!engine::ValidateSpecWindowing(spec, &windowing_error)) {
      std::cerr << "error: " << windowing_error << "\n";
      return 1;
    }
    specs.push_back(std::move(spec));
  }
  return RunEngineBatch(flags, manifest, std::move(specs));
}

// Spec-file front end shared by `serve` and `shard` (the engine's strict
// parser: trailing garbage and wrapped negatives are hard errors with a
// `file:line:` message, not silently mangled values).
bool LoadSpecFile(FlagParser& flags, const std::string& spec_path,
                  std::vector<engine::QuerySpec>* specs) {
  engine::QuerySpec defaults;
  defaults.base.epsilon = flags.GetDouble("epsilon", 0.2);
  defaults.base.c = flags.GetDouble("c", 2.0);
  defaults.base.t_guess = flags.GetDouble("t-guess", 0.0);
  defaults.base.seed = flags.GetCount("seed", 1);
  if (!ApplySketchBackendFlags(flags, &defaults)) return false;
  std::string error;
  if (!engine::ParseSpecFile(spec_path, defaults, specs, &error)) {
    std::cerr << "error: " << error << "\n";
    return false;
  }
  return true;
}

int RunDaemon(FlagParser& flags, RunManifest& manifest);

int RunServe(FlagParser& flags, RunManifest& manifest) {
  // --daemon: supervised always-on mode over the sharded engine (retries,
  // deadlines, drain/resume) — the shard front end handles --spec itself.
  if (flags.GetBool("daemon", false)) return RunDaemon(flags, manifest);
  const std::string spec_path = flags.GetString("spec", "");
  if (spec_path.empty()) {
    std::cerr << "error: --spec FILE is required\n";
    return Usage();
  }
  std::vector<engine::QuerySpec> specs;
  if (!LoadSpecFile(flags, spec_path, &specs)) return 1;
  return RunEngineBatch(flags, manifest, std::move(specs));
}

// Everything the sharded front ends (`shard`, `serve --daemon`) need
// prepared before execution: resolved specs, the stream (mmap'd .bin or
// materialized), the execution plan, and the exact-count cache for
// printing. Owns the graph/reader so `edges` stays valid.
struct ShardSetup {
  std::vector<engine::QuerySpec> specs;
  BinaryEdgeReader reader;
  EdgeList graph;
  std::optional<Graph> g;
  std::optional<ExactCache> exact;
  EdgeStream materialized;
  std::span<const Edge> edges;
  engine::ShardPlanOptions plan;
  bool show_exact = true;
};

// Shared `shard`/`serve --daemon` front end: parses the spec/graph/stream
// flags into `setup`. Returns -1 on success, else the exit code to return.
int PrepareShardRun(FlagParser& flags, ShardSetup* setup) {
  const int num_workers = static_cast<int>(flags.GetCount("shards", 1));
  if (num_workers < 1) {
    std::cerr << "error: --shards must be >= 1\n";
    return 1;
  }
  const std::string shard_dir = flags.GetString("shard-dir", "");
  if (shard_dir.empty()) {
    std::cerr << "error: --shard-dir DIR is required\n";
    return Usage();
  }
  std::error_code ec;
  std::filesystem::create_directories(shard_dir, ec);

  const std::string launch = flags.GetString("launch", "inprocess");
  if (launch != "inprocess" && launch != "subprocess") {
    std::cerr << "error: --launch must be inprocess or subprocess\n";
    return 1;
  }

  // Specs: an explicit file, or a sweep-style generated matrix (defaults
  // to arb-f2, the shard-mergeable kind).
  std::vector<engine::QuerySpec>& specs = setup->specs;
  const std::string spec_path = flags.GetString("spec", "");
  if (!spec_path.empty()) {
    if (!LoadSpecFile(flags, spec_path, &specs)) return 1;
  } else {
    const int num_queries = static_cast<int>(flags.GetCount("queries", 4));
    engine::QuerySpec base;
    base.base.epsilon = flags.GetDouble("epsilon", 0.2);
    base.base.c = flags.GetDouble("c", 2.0);
    base.base.t_guess = flags.GetDouble("t-guess", 0.0);
    base.space_budget_words =
        static_cast<std::size_t>(flags.GetCount("budget-words", 0));
    if (!ApplySketchBackendFlags(flags, &base)) return Usage();
    const std::uint64_t seed = flags.GetCount("seed", 1);
    const std::string algos = flags.GetString("algorithms", "arb-f2");
    std::vector<engine::QueryKind> kinds;
    std::size_t start = 0;
    while (start <= algos.size()) {
      std::size_t comma = algos.find(',', start);
      if (comma == std::string::npos) comma = algos.size();
      const std::string name = algos.substr(start, comma - start);
      if (!name.empty()) {
        const auto kind = engine::ParseQueryKind(name);
        if (!kind.has_value()) {
          std::cerr << "error: unknown algorithm '" << name << "'\n";
          return Usage();
        }
        kinds.push_back(*kind);
      }
      start = comma + 1;
    }
    if (kinds.empty()) kinds.push_back(engine::QueryKind::kArbF2);
    for (int i = 0; i < num_queries; ++i) {
      engine::QuerySpec spec = base;
      spec.kind = kinds[static_cast<std::size_t>(i) % kinds.size()];
      spec.name = std::string(engine::QueryKindName(spec.kind)) + "-" +
                  std::to_string(i);
      spec.base.seed = seed + static_cast<std::uint64_t>(i);
      specs.push_back(std::move(spec));
    }
  }
  if (specs.empty()) {
    std::cerr << "error: no queries to run\n";
    return 1;
  }
  for (const engine::QuerySpec& spec : specs) {
    if (engine::IsTurnstileKind(spec.kind)) {
      // Honest scoping, not an oversight: the coordinator's slices, state
      // files, and resume protocol are built around the v1 edge stream.
      // Turnstile batches run single-process through `serve`/`sweep`.
      std::cerr << "error: query '" << spec.name << "' ("
                << engine::QueryKindName(spec.kind)
                << ") is a turnstile kind; the multi-process shard "
                   "coordinator and `serve --daemon` do not support "
                   "turnstile streams — use `serve` or `sweep`\n";
      return 1;
    }
    if (!engine::IsEdgeKind(spec.kind) ||
        !engine::IsShardMergeableKind(spec.kind)) {
      std::cerr << "error: query '" << spec.name << "' ("
                << engine::QueryKindName(spec.kind)
                << ") is not shard-mergeable; `shard` supports arb-f2\n";
      return 1;
    }
  }

  BinaryEdgeReader& reader = setup->reader;
  EdgeList& graph = setup->graph;
  bool binary = false;
  if (!LoadBatchGraph(flags, &reader, &graph, &binary)) return 1;
  setup->g.emplace(graph);
  const Graph& g = *setup->g;
  const std::uint64_t seed = flags.GetCount("seed", 1);
  const std::string order = flags.GetString("order", "shuffled");
  if (order != "shuffled" && order != "file") {
    std::cerr << "error: --order must be shuffled or file\n";
    return 1;
  }
  setup->show_exact = !flags.GetBool("no-exact", false);
  setup->exact.emplace(g);
  ExactCache& exact = *setup->exact;
  for (engine::QuerySpec& spec : specs) {
    if (spec.num_vertices == 0) spec.num_vertices = g.num_vertices();
    if (spec.base.t_guess <= 1.0) {
      spec.base.t_guess = std::max(1.0, exact.For(spec.kind));
    }
  }

  engine::ShardPlanOptions& options = setup->plan;
  options.num_workers = num_workers;
  options.block_edges =
      static_cast<std::size_t>(flags.GetCount("block-edges", 4096));
  options.budget.per_query_words =
      static_cast<std::size_t>(flags.GetCount("per-query-budget", 0));
  options.budget.aggregate_words =
      static_cast<std::size_t>(flags.GetCount("aggregate-budget", 0));
  options.epoch_edges = flags.GetCount("epoch-edges", 0);
  options.shard_dir = shard_dir;
  options.launch = launch == "subprocess" ? engine::ShardLaunch::kSubprocess
                                          : engine::ShardLaunch::kInProcess;
  options.worker_binary = flags.GetString("worker-binary", "");
  options.kill_worker = static_cast<int>(flags.GetInt("kill-shard", -1));
  options.kill_after_edges = flags.GetCount("kill-edges", 0);

  // The stream. Subprocess workers mmap the .bin themselves, so the
  // coordinator must stream the same bytes in the same order: binary
  // file-order only.
  if (options.launch == engine::ShardLaunch::kSubprocess) {
    if (!binary || order != "file") {
      std::cerr << "error: --launch subprocess needs a .bin graph and "
                   "--order file (workers stream the file directly)\n";
      return 1;
    }
    options.stream_path = flags.GetString("graph", "");
    setup->edges = std::span<const Edge>(reader.edges(), reader.num_edges());
  } else if (order == "file") {
    setup->materialized = graph.edges();
    setup->edges = setup->materialized;
  } else {
    Rng order_rng(seed ^ 0x5eedULL);
    setup->materialized = MakeRandomOrderStream(graph, order_rng);
    setup->edges = setup->materialized;
  }
  return -1;
}

// `shard`: the multi-process engine front end. Same spec preparation and
// output as `sweep`/`serve`, but execution goes through the shard
// coordinator — results are bit-identical to --shards 1 at any worker
// count, so the deterministic manifest is too (the shard execution-policy
// flags are excluded from it like --threads).
int RunShard(FlagParser& flags, RunManifest& manifest) {
  ShardSetup setup;
  const int rc = PrepareShardRun(flags, &setup);
  if (rc >= 0) return rc;

  const engine::ShardBatchResult result =
      engine::RunShardedBatch(setup.specs, setup.edges, setup.plan);
  std::cerr << "shard: " << setup.plan.num_workers << " worker(s), "
            << result.workers_launched << " launch(es), "
            << result.workers_recovered << " recovered\n";
  manifest.metrics().SetExecution(
      "shard.workers_launched",
      static_cast<std::int64_t>(result.workers_launched));
  manifest.metrics().SetExecution(
      "shard.workers_recovered",
      static_cast<std::int64_t>(result.workers_recovered));
  PrintEngineOutcomes(result.outcomes, result.stats, setup.show_exact,
                      *setup.exact, manifest);
  return 0;
}

// `serve --daemon`: the supervised always-on serving mode (DESIGN.md §15).
// Same front end as `shard`, executed under engine/supervisor: per-worker
// retry with deterministic backoff, watchdog deadlines for hung
// subprocesses, graceful SIGTERM/SIGINT drain, and `--resume` to finish a
// drained or crashed batch with a byte-identical deterministic manifest.
int RunDaemon(FlagParser& flags, RunManifest& manifest) {
  ShardSetup setup;
  const int rc = PrepareShardRun(flags, &setup);
  if (rc >= 0) return rc;

  engine::SupervisorOptions opt;
  opt.plan = setup.plan;
  opt.retry.max_attempts =
      std::max(1, static_cast<int>(flags.GetCount("max-retries", 3)));
  opt.retry.base_backoff_ms = flags.GetCount("backoff-ms", 50);
  opt.retry.backoff_cap_ms = flags.GetCount("backoff-cap-ms", 2000);
  opt.deadline.shard_deadline_ms = flags.GetCount("shard-deadline-ms", 0);
  opt.deadline.wave_deadline_ms = flags.GetCount("wave-deadline-ms", 0);
  opt.heartbeat_edges = flags.GetCount("heartbeat-edges", 0);
  opt.resume = flags.GetBool("resume", false);
  opt.hang_worker = static_cast<int>(flags.GetInt("hang-shard", -1));
  opt.hang_after_edges = flags.GetCount("hang-edges", 0);
  opt.throttle_ms_per_block = flags.GetCount("throttle-ms", 0);

  engine::InstallDrainHandlers();
  engine::SupervisedBatchResult result;
  std::string error;
  if (!engine::RunSupervisedBatch(setup.specs, setup.edges, opt, &result,
                                  &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  ExportSupervisorCounters(result.counters, manifest);
  std::cerr << "daemon: " << result.counters.waves_completed
            << " wave(s) completed, " << result.counters.retries
            << " retr(ies), " << result.counters.deadline_kills
            << " deadline kill(s)\n";
  if (result.drained) {
    // No manifest on a drained run: partial results must never be mistaken
    // for the batch's. Exit 3 so Main skips --json_out/--json_det_out.
    std::cerr << "daemon: drained mid-batch; rerun with --resume to finish "
                 "(state in "
              << setup.plan.shard_dir << ")\n";
    return 3;
  }
  for (int wave : result.poisoned_waves) {
    std::cerr << "daemon: wave " << wave
              << " poisoned (retry budget exhausted)\n";
  }
  PrintEngineOutcomes(result.outcomes, result.stats, setup.show_exact,
                      *setup.exact, manifest);
  return 0;
}

// `shard-worker`: the subprocess half of `shard --launch subprocess`. Not
// meant for direct use; it recomputes the stream and spec fingerprints
// from its input files (an end-to-end codec check — the coordinator
// rejects the state if either disagrees with its own).
int RunShardWorkerCommand(FlagParser& flags) {
  const std::string stream_path = flags.GetString("stream", "");
  const std::string spec_path = flags.GetString("spec-file", "");
  const std::string state_out = flags.GetString("state-out", "");
  if (stream_path.empty() || spec_path.empty() || state_out.empty()) {
    std::cerr << "error: shard-worker needs --stream, --spec-file, and "
                 "--state-out\n";
    return 1;
  }
  BinaryEdgeReader reader;
  std::string error;
  if (!reader.Open(stream_path, &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  const std::span<const Edge> edges(reader.edges(), reader.num_edges());

  engine::ShardWorkerConfig config;
  // The coordinator's spec file is fully resolved (every key explicit), so
  // the defaults here never matter.
  if (!engine::ParseSpecFile(spec_path, engine::QuerySpec(), &config.specs,
                             &error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (!engine::ParseShardRanges(flags.GetString("ranges", ""),
                                &config.ranges)) {
    std::cerr << "error: --ranges must be begin:end[,begin:end...]\n";
    return 1;
  }
  config.edges = edges;
  config.worker_id = static_cast<std::uint32_t>(flags.GetCount("worker", 0));
  config.num_workers =
      static_cast<std::uint32_t>(flags.GetCount("workers", 1));
  config.stream_fingerprint = FingerprintEdgeStream(edges);
  config.spec_fingerprint = engine::FingerprintSpecs(config.specs);
  config.block_edges =
      static_cast<std::size_t>(flags.GetCount("block-edges", 4096));
  config.epoch_edges = flags.GetCount("epoch-edges", 0);
  config.checkpoint_path = flags.GetString("checkpoint", "");
  config.resume = flags.GetBool("resume", false);
  config.die_after_edges =
      flags.GetCount("die-after-edges", engine::kNoDeath);
  config.hang_after_edges =
      flags.GetCount("hang-after-edges", engine::kNoDeath);
  config.heartbeat_edges = flags.GetCount("heartbeat-edges", 0);
  config.heartbeat_path = flags.GetString("heartbeat", "");
  config.throttle_ms_per_block = flags.GetCount("throttle-ms", 0);

  // A supervisor's SIGTERM must drain, not kill: the handler latches the
  // worker drain flag, the loop checkpoints at the next epoch boundary,
  // and the exit code acknowledges the drain.
  engine::IgnoreSigpipe();
  engine::InstallDrainHandlers();

  const engine::ShardWorkerOutcome outcome =
      engine::RunShardWorker(config, state_out, &error);
  if (outcome.drained) return engine::kDrainExitCode;
  if (!outcome.completed) {
    if (config.die_after_edges != engine::kNoDeath &&
        outcome.edges_done == config.die_after_edges) {
      // Injected death: die the way a real crash would (no state file, no
      // cleanup) so the coordinator's recovery path sees the real thing.
      std::_Exit(kKilledExitCode);
    }
    std::cerr << "error: " << (error.empty() ? "worker failed" : error)
              << "\n";
    return 1;
  }
  return 0;
}

int RunGenerate(FlagParser& flags, RunManifest& manifest) {
  const std::string model = flags.GetString("model", "er");
  const VertexId n = static_cast<VertexId>(flags.GetInt("n", 10000));
  const std::uint64_t seed = flags.GetInt("seed", 1);
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::cerr << "error: --out FILE is required\n";
    return Usage();
  }
  Rng rng(seed);
  EdgeList graph;
  if (model == "er") {
    graph = ErdosRenyiGnm(
        n, static_cast<std::size_t>(flags.GetInt("m", 4 * n)), rng);
  } else if (model == "gnp") {
    graph = ErdosRenyiGnp(n, flags.GetDouble("p", 0.001), rng);
  } else if (model == "ba") {
    graph = BarabasiAlbert(
        n, static_cast<std::size_t>(flags.GetInt("deg", 5)), rng);
  } else if (model == "chung-lu") {
    graph = ChungLuPowerLaw(n, flags.GetDouble("deg", 8.0),
                            flags.GetDouble("beta", 2.5), rng);
  } else if (model == "ws") {
    graph = WattsStrogatz(
        n, static_cast<std::uint32_t>(flags.GetInt("k", 6)),
        flags.GetDouble("rewire", 0.1), rng);
  } else if (model == "grid") {
    const VertexId side = static_cast<VertexId>(
        std::max<std::int64_t>(2, flags.GetInt("side", 100)));
    graph = Grid2d(side, side);
  } else {
    std::cerr << "unknown model: " << model << "\n";
    return Usage();
  }
  if (!SaveEdgeListText(graph, out)) {
    std::cerr << "error: cannot write " << out << "\n";
    return 1;
  }
  std::cout << "wrote " << out << ": n=" << graph.num_vertices()
            << " m=" << graph.num_edges() << "\n";
  manifest.metrics().SetInt("graph.vertices", graph.num_vertices());
  manifest.metrics().SetInt("graph.edges",
                            static_cast<std::int64_t>(graph.num_edges()));
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.positional().empty()) return Usage();
  // Workers skip the manifest/teardown machinery: their only output is the
  // state file, and they may _Exit mid-stream under fault injection.
  if (flags.positional()[0] == "shard-worker") {
    return RunShardWorkerCommand(flags);
  }
  int threads = ApplyThreadsFlag(flags);
  const bool checkpointing = ApplyCheckpointFlags(flags, &threads);
  ApplyExactBackendFlag(flags);
  const std::string command = flags.positional()[0];
  const std::string json_out = flags.GetString("json_out", "");
  const std::string json_det_out = flags.GetString("json_det_out", "");
  RunManifest manifest("cli." + command);
  manifest.SetThreads(threads);
  ResetStreamStats();
  int rc;
  if (command == "stats") {
    rc = RunStats(flags, manifest);
  } else if (command == "exact") {
    rc = RunExact(flags, manifest);
  } else if (command == "count") {
    rc = RunCount(flags, manifest);
  } else if (command == "generate") {
    rc = RunGenerate(flags, manifest);
  } else if (command == "sweep") {
    rc = RunSweep(flags, manifest);
  } else if (command == "serve") {
    rc = RunServe(flags, manifest);
  } else if (command == "shard") {
    rc = RunShard(flags, manifest);
  } else {
    return Usage();
  }
  const StreamStats stats = GlobalStreamStats();
  if (checkpointing || stats.checkpoints_written > 0 || stats.restores > 0 ||
      stats.checkpoint_failures > 0 || stats.restore_rejects > 0) {
    MetricsRegistry& m = manifest.metrics();
    m.SetExecution("stream.checkpoints_written",
                   static_cast<std::int64_t>(stats.checkpoints_written));
    m.SetExecution("stream.checkpoint_failures",
                   static_cast<std::int64_t>(stats.checkpoint_failures));
    m.SetExecution("stream.restores",
                   static_cast<std::int64_t>(stats.restores));
    m.SetExecution("stream.restore_rejects",
                   static_cast<std::int64_t>(stats.restore_rejects));
  }
  manifest.SetConfig(flags.values());
  WarnUnusedFlags(flags, std::cerr);
  if (rc == 0 && !json_out.empty()) {
    if (!manifest.WriteFile(json_out)) {
      std::cerr << "error: cannot write " << json_out << "\n";
      return 1;
    }
    std::cerr << "run manifest written to " << json_out << "\n";
  }
  if (rc == 0 && !json_det_out.empty()) {
    std::ofstream out(json_det_out);
    if (out) out << manifest.DeterministicJson();
    if (!out) {
      std::cerr << "error: cannot write " << json_det_out << "\n";
      return 1;
    }
    std::cerr << "deterministic manifest written to " << json_det_out << "\n";
  }
  return rc;
}

}  // namespace
}  // namespace cyclestream

int main(int argc, char** argv) { return cyclestream::Main(argc, argv); }
