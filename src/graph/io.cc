#include "graph/io.h"

#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "graph/types.h"
#include "util/logging.h"

namespace cyclestream {

std::optional<EdgeList> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    LOG(WARNING) << "cannot open edge list file: " << path;
    return std::nullopt;
  }
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto densify = [&remap](std::uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::vector<std::pair<VertexId, VertexId>> pairs;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::uint64_t a, b;
    if (!(ls >> a)) continue;  // Blank or comment-only line.
    if (!(ls >> b)) {
      LOG(WARNING) << path << ":" << lineno << ": malformed line";
      return std::nullopt;
    }
    pairs.emplace_back(densify(a), densify(b));
  }
  return EdgeList::FromPairs(static_cast<VertexId>(remap.size()), pairs);
}

bool SaveEdgeListText(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# cyclestream edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace cyclestream
