#include "graph/io.h"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "graph/types.h"
#include "util/logging.h"

namespace cyclestream {

std::optional<EdgeList> LoadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    LOG(WARNING) << "cannot open edge list file: " << path;
    return std::nullopt;
  }
  return LoadEdgeListText(in, path);
}

std::optional<EdgeTextReadStats> ForEachEdgeText(
    const std::string& path, const std::function<void(const Edge&)>& fn) {
  std::ifstream in(path);
  if (!in) {
    LOG(WARNING) << "cannot open edge list file: " << path;
    return std::nullopt;
  }
  return ForEachEdgeText(in, path, fn);
}

std::optional<EdgeTextReadStats> ForEachEdgeText(
    std::istream& in, const std::string& path,
    const std::function<void(const Edge&)>& fn) {
  std::unordered_map<std::uint64_t, VertexId> remap;
  auto densify = [&remap](std::uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<VertexId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  // Endpoints are parsed as tokens and validated as unsigned decimal
  // integers. Stream extraction into std::uint64_t must not be used here:
  // it accepts a leading '-' and wraps (strtoull semantics), so a corrupt
  // "-3" would silently densify as 2^64 - 3 and distort every estimate
  // computed on the loaded graph.
  auto parse_vertex = [&path](const std::string& token, std::size_t lineno,
                              std::uint64_t* out) {
    if (token.empty() || token[0] == '-') {
      LOG(WARNING) << path << ":" << lineno
                   << ": negative vertex id '" << token << "' rejected";
      return false;
    }
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), *out, 10);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      LOG(WARNING) << path << ":" << lineno << ": invalid vertex id '"
                   << token << "'";
      return false;
    }
    return true;
  };

  std::unordered_set<std::uint64_t> seen_edges;
  EdgeTextReadStats stats;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string ta, tb;
    if (!(ls >> ta)) continue;  // Blank or comment-only line.
    if (!(ls >> tb)) {
      LOG(WARNING) << path << ":" << lineno << ": malformed line";
      return std::nullopt;
    }
    std::uint64_t a = 0, b = 0;
    if (!parse_vertex(ta, lineno, &a) || !parse_vertex(tb, lineno, &b)) {
      return std::nullopt;
    }
    std::string extra;
    if (ls >> extra) {
      // Common in the wild (weights, timestamps); load the endpoints but
      // say so, once per offending line.
      LOG(WARNING) << path << ":" << lineno
                   << ": trailing garbage after endpoints ignored: '" << extra
                   << "'";
    }
    if (a == b) {
      // Policy: warn and drop. The endpoints are checked before densify so a
      // vertex mentioned only in self-loops does not become an isolated
      // vertex of the loaded graph.
      ++stats.self_loops;
      continue;
    }
    const Edge e(densify(a), densify(b));
    if (!seen_edges.insert(e.Key()).second) {
      ++stats.duplicates;
      continue;
    }
    ++stats.edges;
    fn(e);
  }
  // getline loops end with eofbit AND failbit set on a clean end-of-file;
  // badbit is different — it means the underlying read itself failed (I/O
  // error, disk eviction). Treating it as EOF would return a silently
  // truncated graph, and every count computed downstream would be quietly
  // wrong, so a bad stream is a load failure.
  if (in.bad()) {
    LOG(WARNING) << path << ": read error after line " << lineno
                 << " (truncated input rejected)";
    return std::nullopt;
  }
  if (stats.self_loops > 0) {
    LOG(WARNING) << path << ": dropped " << stats.self_loops << " self-loop"
                 << (stats.self_loops == 1 ? "" : "s");
  }
  if (stats.duplicates > 0) {
    LOG(WARNING) << path << ": dropped " << stats.duplicates
                 << " duplicate edge" << (stats.duplicates == 1 ? "" : "s");
  }
  stats.num_vertices = static_cast<VertexId>(remap.size());
  return stats;
}

std::optional<EdgeList> LoadEdgeListText(std::istream& in,
                                         const std::string& path) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  const auto stats = ForEachEdgeText(in, path, [&pairs](const Edge& e) {
    pairs.emplace_back(e.u, e.v);
  });
  if (!stats.has_value()) return std::nullopt;
  return EdgeList::FromPairs(stats->num_vertices, pairs);
}

bool SaveEdgeListText(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# cyclestream edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.u << ' ' << e.v << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace cyclestream
