#include "graph/dodg.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>

#include "graph/dodg_kernels.h"
#include "graph/intersect.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/parallel.h"

namespace cyclestream {

namespace internal {

std::uint64_t IntersectScalar(const VertexId* a, std::size_t na,
                              const VertexId* b, std::size_t nb) {
  return SortedIntersectionCount({a, na}, {b, nb});
}

std::uint64_t AndPopcountScalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

}  // namespace internal

namespace {

ExactBackend g_exact_backend = ExactBackend::kNaive;
ExactSimdMode g_simd_mode = ExactSimdMode::kAuto;

struct KernelTable {
  internal::IntersectFn intersect;
  internal::AndPopcountFn and_popcount;
  const char* name;
};

KernelTable PickKernels() {
#if defined(CYCLESTREAM_HAVE_AVX2)
  if (g_simd_mode == ExactSimdMode::kAuto &&
      __builtin_cpu_supports("avx2")) {
    return {&internal::IntersectAvx2, &internal::AndPopcountAvx2, "avx2"};
  }
#endif
  return {&internal::IntersectScalar, &internal::AndPopcountScalar, "scalar"};
}

/// Sorts 64-bit keys: per-chunk std::sort on the default pool, then pairwise
/// merge rounds. The result is a sorted array either way, so the partition
/// (which depends on the thread budget) cannot leak into any count.
void ParallelSortKeys(std::vector<std::uint64_t>& keys) {
  const std::size_t n = keys.size();
  const int threads = DefaultThreads();
  if (threads <= 1 || n < (std::size_t{1} << 15)) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  std::size_t parts = 1;
  while (parts < static_cast<std::size_t>(threads)) parts <<= 1;
  std::vector<std::size_t> bounds(parts + 1);
  for (std::size_t i = 0; i <= parts; ++i) bounds[i] = n * i / parts;
  ParallelFor(parts, [&](std::size_t i) {
    std::sort(keys.begin() + bounds[i], keys.begin() + bounds[i + 1]);
  });
  std::vector<std::uint64_t> scratch(n);
  std::vector<std::uint64_t>* src = &keys;
  std::vector<std::uint64_t>* dst = &scratch;
  for (std::size_t width = 1; width < parts; width <<= 1) {
    const std::size_t pairs = parts / (2 * width);
    ParallelFor(pairs, [&](std::size_t p) {
      const std::size_t lo = bounds[2 * width * p];
      const std::size_t mid = bounds[2 * width * p + width];
      const std::size_t hi = bounds[2 * width * p + 2 * width];
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo);
    });
    std::swap(src, dst);
  }
  if (src != &keys) keys.swap(scratch);
}

/// Splits [0, cost.size()) into up to `target` contiguous ranges of roughly
/// equal total cost (each item also pays 1 so empty-cost vertices still
/// spread). Returns the boundary vertices, first 0, last n.
std::vector<VertexId> CostBalancedBounds(const std::vector<std::uint64_t>& cost,
                                         std::size_t target) {
  const std::size_t n = cost.size();
  std::uint64_t total = n;
  for (const std::uint64_t c : cost) total += c;
  const std::uint64_t per =
      std::max<std::uint64_t>(1, total / std::max<std::size_t>(1, target));
  std::vector<VertexId> bounds{0};
  std::uint64_t acc = 0;
  for (std::size_t v = 0; v < n; ++v) {
    acc += cost[v] + 1;
    if (acc >= per && v + 1 < n) {
      bounds.push_back(static_cast<VertexId>(v + 1));
      acc = 0;
    }
  }
  bounds.push_back(static_cast<VertexId>(n));
  return bounds;
}

std::size_t ChunkTarget() {
  return static_cast<std::size_t>(DefaultThreads()) * 4;
}

}  // namespace

DodgGraph DodgGraph::Build(const Edge* edges, std::size_t count,
                           VertexId num_vertices, const Options& options) {
  DodgGraph g;
  const std::size_t n = num_vertices;

  // 1. Pack to 64-bit keys (u in the high half), validating the canonical
  //    invariant the binary reader and EdgeList both guarantee.
  std::vector<std::uint64_t> keys(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Edge& e = edges[i];
    CHECK(e.u < e.v && e.v < num_vertices)
        << "non-canonical edge (" << e.u << ", " << e.v << ") at index " << i
        << " for vertex count " << num_vertices;
    keys[i] = e.Key();
  }

  // 2. Parallel in-place sort; duplicates become adjacent.
  ParallelSortKeys(keys);

  // 3. Fused dedup + degree count: one scan compacts unique edges in place
  //    and tallies both endpoint degrees.
  std::vector<VertexId> degree(n, 0);
  std::size_t m = 0;
  std::uint64_t prev = ~std::uint64_t{0};
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t k = keys[i];
    if (k == prev) continue;
    prev = k;
    keys[m++] = k;
    ++degree[static_cast<VertexId>(k >> 32)];
    ++degree[static_cast<VertexId>(k)];
  }
  keys.resize(m);

  // 4. Degree-descending relabel, ties by original id ascending: sort
  //    (~degree, id) pairs so position == new id.
  std::vector<std::uint64_t> rank(n);
  for (std::size_t v = 0; v < n; ++v) {
    rank[v] = (static_cast<std::uint64_t>(~degree[v]) << 32) | v;
  }
  ParallelSortKeys(rank);
  g.new_id_.resize(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    g.new_id_[static_cast<VertexId>(rank[pos])] = static_cast<VertexId>(pos);
  }

  // 5. CSR by counting sort: offsets from the relabeled degrees, then one
  //    scatter pass over the unique edges fills both directions.
  g.offsets_.assign(n + 1, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    const VertexId old_v = static_cast<VertexId>(rank[pos]);
    g.offsets_[pos + 1] = g.offsets_[pos] + degree[old_v];
    g.max_degree_ = std::max<std::size_t>(g.max_degree_, degree[old_v]);
  }
  g.adjacency_.resize(2 * m);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::size_t i = 0; i < m; ++i) {
    const VertexId a = g.new_id_[static_cast<VertexId>(keys[i] >> 32)];
    const VertexId b = g.new_id_[static_cast<VertexId>(keys[i])];
    g.adjacency_[cursor[a]++] = b;
    g.adjacency_[cursor[b]++] = a;
  }

  // 6. Sort each row and record the out/up split (first neighbor > v);
  //    row-sort work is balanced by d·log d across contiguous chunks.
  g.split_.assign(n, 0);
  g.num_vertices_ = num_vertices;
  g.num_edges_ = m;
  if (n > 0) {
    std::vector<std::uint64_t> sort_cost(n);
    for (std::size_t v = 0; v < n; ++v) {
      const std::uint64_t d = g.offsets_[v + 1] - g.offsets_[v];
      sort_cost[v] = d == 0 ? 0 : d * (64 - __builtin_clzll(d));
    }
    const std::vector<VertexId> bounds =
        CostBalancedBounds(sort_cost, ChunkTarget());
    ParallelFor(bounds.size() - 1, [&](std::size_t c) {
      for (VertexId v = bounds[c]; v < bounds[c + 1]; ++v) {
        VertexId* row = g.adjacency_.data() + g.offsets_[v];
        VertexId* end = g.adjacency_.data() + g.offsets_[v + 1];
        std::sort(row, end);
        g.split_[v] =
            g.offsets_[v] +
            static_cast<std::uint64_t>(std::lower_bound(row, end, v) - row);
      }
    });
  }

  // 7. Hub bitmaps: for new ids u < H every out-neighbor is itself < u < H,
  //    so an H-bit row per hub represents its out-neighborhood exactly.
  const VertexId h = options.hub_range == 0 ? kDefaultHubRange
                                            : options.hub_range;
  g.hub_range_ = static_cast<VertexId>(
      std::min<std::size_t>(h, static_cast<std::size_t>(num_vertices)));
  g.hub_words_ = (static_cast<std::size_t>(g.hub_range_) + 63) / 64;
  g.hub_bits_.assign(static_cast<std::size_t>(g.hub_range_) * g.hub_words_, 0);
  for (VertexId u = 0; u < g.hub_range_; ++u) {
    std::uint64_t* row = g.hub_bits_.data() + std::size_t{u} * g.hub_words_;
    for (const VertexId v : g.OutNeighbors(u)) {
      row[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
  }
  return g;
}

DodgGraph DodgGraph::Build(const EdgeList& edges, const Options& options) {
  return Build(edges.edges().data(), edges.num_edges(), edges.num_vertices(),
               options);
}

DodgGraph DodgGraph::FromPairs(
    VertexId num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    const Options& options) {
  std::vector<Edge> edges;
  edges.reserve(pairs.size());
  VertexId n = num_vertices;
  for (const auto& [a, b] : pairs) {
    if (a == b) continue;  // Self-loops cannot close a triangle or 4-cycle.
    edges.emplace_back(a, b);
    n = std::max({n, a + 1, b + 1});
  }
  return Build(edges.data(), edges.size(), n, options);
}

std::uint64_t DodgGraph::CountTriangles() const {
  const std::size_t n = num_vertices_;
  if (n == 0 || num_edges_ == 0) return 0;
  const KernelTable kernels = PickKernels();
  const VertexId h = hub_range_;

  // Cost per vertex: words ANDed for hub rows, merge length for the tail.
  std::vector<std::uint64_t> cost(n, 0);
  {
    const std::vector<VertexId> bounds = CostBalancedBounds(
        std::vector<std::uint64_t>(n, 1), ChunkTarget());
    ParallelFor(bounds.size() - 1, [&](std::size_t c) {
      for (VertexId u = bounds[c]; u < bounds[c + 1]; ++u) {
        const std::span<const VertexId> out_u = OutNeighbors(u);
        std::uint64_t acc = 0;
        if (u < h) {
          for (const VertexId v : out_u) acc += (v >> 6) + 1;
        } else {
          for (const VertexId v : out_u) {
            acc += out_u.size() + OutNeighbors(v).size();
          }
        }
        cost[u] = acc;
      }
    });
  }

  const std::vector<VertexId> bounds = CostBalancedBounds(cost, ChunkTarget());
  const std::vector<std::uint64_t> partial = ParallelMap(
      bounds.size() - 1, [&](std::size_t c) -> std::uint64_t {
        std::uint64_t sum = 0;
        for (VertexId u = bounds[c]; u < bounds[c + 1]; ++u) {
          const std::span<const VertexId> out_u = OutNeighbors(u);
          if (u < h) {
            const std::uint64_t* row_u =
                hub_bits_.data() + std::size_t{u} * hub_words_;
            for (const VertexId v : out_u) {
              // out(v) ⊆ [0, v), so words past v/64 are zero in row v.
              sum += kernels.and_popcount(
                  row_u, hub_bits_.data() + std::size_t{v} * hub_words_,
                  (static_cast<std::size_t>(v) >> 6) + 1);
            }
          } else {
            for (const VertexId v : out_u) {
              const std::span<const VertexId> out_v = OutNeighbors(v);
              sum += kernels.intersect(out_u.data(), out_u.size(),
                                       out_v.data(), out_v.size());
            }
          }
        }
        return sum;
      });
  return std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
}

std::uint64_t DodgGraph::CountFourCycles() const {
  const std::size_t n = num_vertices_;
  if (n == 0 || num_edges_ == 0) return 0;

  // Chiba–Nishizeki out-wedge enumeration: vertex u owns the 4-cycles in
  // which it has the minimum id. For each such u, count wedges u–v–w with
  // v, w > u; every pair of wedges sharing the far endpoint w closes one
  // owned cycle.
  std::vector<std::uint64_t> cost(n, 0);
  {
    const std::vector<VertexId> bounds = CostBalancedBounds(
        std::vector<std::uint64_t>(n, 1), ChunkTarget());
    ParallelFor(bounds.size() - 1, [&](std::size_t c) {
      for (VertexId u = bounds[c]; u < bounds[c + 1]; ++u) {
        std::uint64_t acc = 0;
        for (const VertexId v : UpNeighbors(u)) acc += Degree(v);
        cost[u] = acc;
      }
    });
  }

  const std::vector<VertexId> bounds = CostBalancedBounds(cost, ChunkTarget());
  const std::vector<std::uint64_t> partial = ParallelMap(
      bounds.size() - 1, [&](std::size_t c) -> std::uint64_t {
        std::vector<VertexId> wedge_count(n, 0);
        std::vector<VertexId> touched;
        std::uint64_t sum = 0;
        for (VertexId u = bounds[c]; u < bounds[c + 1]; ++u) {
          for (const VertexId v : UpNeighbors(u)) {
            const std::span<const VertexId> row = Neighbors(v);
            for (std::size_t i = GallopLowerBound(row, 0, u + 1);
                 i < row.size(); ++i) {
              const VertexId w = row[i];
              if (wedge_count[w]++ == 0) touched.push_back(w);
            }
          }
          for (const VertexId w : touched) {
            const std::uint64_t x = wedge_count[w];
            sum += x * (x - 1) / 2;
            wedge_count[w] = 0;
          }
          touched.clear();
        }
        return sum;
      });
  return std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
}

void SetExactBackend(ExactBackend backend) { g_exact_backend = backend; }

ExactBackend GetExactBackend() { return g_exact_backend; }

std::optional<ExactBackend> ParseExactBackend(std::string_view name) {
  if (name == "naive") return ExactBackend::kNaive;
  if (name == "dodg") return ExactBackend::kDodg;
  return std::nullopt;
}

const char* ExactBackendName(ExactBackend backend) {
  return backend == ExactBackend::kDodg ? "dodg" : "naive";
}

ExactBackend ApplyExactBackendFlag(FlagParser& flags) {
  const std::string name = flags.GetString("exact_backend", "naive");
  const std::optional<ExactBackend> parsed = ParseExactBackend(name);
  CHECK(parsed.has_value()) << "unknown --exact_backend '" << name
                            << "' (expected naive or dodg)";
  SetExactBackend(*parsed);
  return *parsed;
}

void SetExactSimdMode(ExactSimdMode mode) { g_simd_mode = mode; }

ExactSimdMode GetExactSimdMode() { return g_simd_mode; }

const char* ActiveExactKernels() { return PickKernels().name; }

}  // namespace cyclestream
