#ifndef CYCLESTREAM_GRAPH_EDGE_LIST_H_
#define CYCLESTREAM_GRAPH_EDGE_LIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace cyclestream {

/// A simple undirected graph as a list of canonical edges plus a vertex
/// count. This is the interchange format: generators produce EdgeLists,
/// streams are orderings of an EdgeList, and Graph (CSR) is built from one.
///
/// Invariants (established by Finalize or the named constructors):
///   - every edge has u < v < num_vertices
///   - no duplicate edges
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Builds a validated EdgeList from raw pairs: canonicalizes, drops
  /// self-loops and duplicates, and grows the vertex count to cover all ids.
  static EdgeList FromPairs(
      VertexId num_vertices,
      const std::vector<std::pair<VertexId, VertexId>>& pairs);

  /// Adds an edge (canonicalized). Self-loops are rejected with a CHECK.
  /// Duplicate detection is deferred to Finalize for speed.
  void Add(VertexId a, VertexId b);

  /// Sorts, deduplicates, and validates. Must be called after a sequence of
  /// Add()s before handing the list to a Graph/stream. Idempotent.
  void Finalize();

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(std::size_t i) const { return edges_[i]; }

  /// Raises the vertex count (never lowers it).
  void EnsureVertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  bool finalized() const { return finalized_; }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  bool finalized_ = false;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_EDGE_LIST_H_
