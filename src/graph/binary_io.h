#ifndef CYCLESTREAM_GRAPH_BINARY_IO_H_
#define CYCLESTREAM_GRAPH_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace cyclestream {

/// Binary edge-stream format (".bin"): the stream-engine ingest path reads
/// raw `Edge` blocks straight out of a read-only mmap instead of re-parsing
/// text. The format is a *stream* format — edge order is preserved exactly
/// (an EdgeStream is a meaningful permutation), and duplicates are legal.
///
/// Wire layout (little-endian, 32-byte header):
///
///   offset  0  magic[8]      = "CYSBIN\x01\n"
///   offset  8  u32 version   = 1
///   offset 12  u32 num_vertices
///   offset 16  u64 num_edges
///   offset 24  u32 crc32     CRC-32 (IEEE) of the payload bytes
///   offset 28  u32 reserved  = 0
///   offset 32  payload       num_edges * 8 bytes: u32 u, u32 v per edge
///
/// Every edge must satisfy u < v < num_vertices (canonical form, no
/// self-loops). The reader validates the magic, version, exact file size,
/// payload CRC, and every edge before exposing anything; a corrupt or
/// truncated file is rejected with a descriptive error, never a silently
/// shorter stream. The payload starts at offset 32, so the mmap'd bytes are
/// suitably aligned to reinterpret as an Edge array (zero-copy).

inline constexpr std::uint32_t kBinaryEdgeVersion = 1;
inline constexpr std::size_t kBinaryEdgeHeaderSize = 32;

/// Version 2 is the turnstile (insert/delete) stream format; it shares the
/// "CYSBIN" magic prefix and 32-byte header shape but carries 9-byte
/// op-tagged records and is read by TurnstileBinaryReader
/// (stream/dynamic/turnstile_io.h), never by BinaryEdgeReader.
inline constexpr std::uint32_t kBinaryTurnstileVersion = 2;

/// Peeks at the magic of `path` without validating anything else: returns
/// the format version byte (1 for edge streams, 2 for turnstile streams)
/// when the file starts with a "CYSBIN" magic, 0 otherwise (missing,
/// short, or foreign file). Used to dispatch .bin inputs to the right
/// reader and to export `stream.format_version` into run manifests.
std::uint32_t SniffBinaryFormatVersion(const std::string& path);

/// Writes `count` edges (order preserved) as a binary edge stream. Edges
/// must already be canonical (u < v < num_vertices); a violation is a
/// programming error and aborts. Returns false and sets `*error` on I/O
/// failure.
bool WriteBinaryEdgeStream(const Edge* edges, std::size_t count,
                           VertexId num_vertices, const std::string& path,
                           std::string* error = nullptr);

/// Convenience: writes a finalized EdgeList (its canonical edge order).
bool WriteBinaryEdgeStream(const EdgeList& edges, const std::string& path,
                           std::string* error = nullptr);

/// mmap-backed zero-copy reader. Open() maps the file read-only and fully
/// validates it (header, size, CRC, per-edge canonical form); afterwards
/// `edges()` is a borrowed pointer into the mapping, valid until the reader
/// is destroyed or reset by another Open().
class BinaryEdgeReader {
 public:
  BinaryEdgeReader() = default;
  ~BinaryEdgeReader();

  BinaryEdgeReader(const BinaryEdgeReader&) = delete;
  BinaryEdgeReader& operator=(const BinaryEdgeReader&) = delete;
  BinaryEdgeReader(BinaryEdgeReader&& other) noexcept;
  BinaryEdgeReader& operator=(BinaryEdgeReader&& other) noexcept;

  /// Maps and validates `path`. False (with `*error` set) on any problem;
  /// the reader is left empty in that case.
  bool Open(const std::string& path, std::string* error);

  bool is_open() const { return map_ != nullptr; }
  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_edges() const { return num_edges_; }

  /// Format version of the open file (kBinaryEdgeVersion; 0 when not
  /// open). Exported into run manifests as `stream.format_version`.
  std::uint32_t format_version() const { return format_version_; }

  /// The full edge stream, zero-copy (nullptr when empty or not open).
  const Edge* edges() const { return edges_; }

  /// Materializes a validated EdgeList (canonicalized, deduplicated) — for
  /// consumers that need the interchange type rather than the raw stream.
  EdgeList ToEdgeList() const;

 private:
  void Close();

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  const Edge* edges_ = nullptr;
  std::size_t num_edges_ = 0;
  VertexId num_vertices_ = 0;
  std::uint32_t format_version_ = 0;
};

/// Convenience: reads a binary edge stream into an EdgeList. Returns
/// nullopt (with a logged warning) on any validation failure.
std::optional<EdgeList> LoadEdgeListBinary(const std::string& path);

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_BINARY_IO_H_
