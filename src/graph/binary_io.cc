#include "graph/binary_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <fstream>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace cyclestream {
namespace {

// The zero-copy reader reinterprets the mapped payload as an Edge array, so
// the on-disk layout must be exactly the in-memory layout.
static_assert(std::is_trivially_copyable_v<Edge>);
static_assert(sizeof(Edge) == 8, "Edge must pack to two u32 words");
static_assert(std::endian::native == std::endian::little,
              "binary edge streams assume a little-endian host");

constexpr char kMagic[8] = {'C', 'Y', 'S', 'B', 'I', 'N', '\x01', '\n'};
constexpr char kMagicPrefix[6] = {'C', 'Y', 'S', 'B', 'I', 'N'};

void PutU32(char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

std::uint32_t GetU32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool WriteBinaryEdgeStream(const Edge* edges, std::size_t count,
                           VertexId num_vertices, const std::string& path,
                           std::string* error) {
  for (std::size_t i = 0; i < count; ++i) {
    CHECK(edges[i].u < edges[i].v && edges[i].v < num_vertices)
        << "WriteBinaryEdgeStream: edge " << i << " (" << edges[i].u << ","
        << edges[i].v << ") is not canonical for n=" << num_vertices;
  }
  const char* payload = reinterpret_cast<const char*>(edges);
  const std::size_t payload_size = count * sizeof(Edge);

  char header[kBinaryEdgeHeaderSize] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + 8, kBinaryEdgeVersion);
  PutU32(header + 12, num_vertices);
  PutU64(header + 16, static_cast<std::uint64_t>(count));
  PutU32(header + 24, Crc32(std::string_view(payload, payload_size)));
  PutU32(header + 28, 0);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "cannot open for writing: " + path);
  out.write(header, sizeof(header));
  out.write(payload, static_cast<std::streamsize>(payload_size));
  out.flush();
  if (!out) return Fail(error, "write failed: " + path);
  return true;
}

bool WriteBinaryEdgeStream(const EdgeList& edges, const std::string& path,
                           std::string* error) {
  return WriteBinaryEdgeStream(edges.edges().data(), edges.num_edges(),
                               edges.num_vertices(), path, error);
}

BinaryEdgeReader::~BinaryEdgeReader() { Close(); }

BinaryEdgeReader::BinaryEdgeReader(BinaryEdgeReader&& other) noexcept {
  *this = std::move(other);
}

BinaryEdgeReader& BinaryEdgeReader::operator=(
    BinaryEdgeReader&& other) noexcept {
  if (this != &other) {
    Close();
    map_ = std::exchange(other.map_, nullptr);
    map_size_ = std::exchange(other.map_size_, 0);
    edges_ = std::exchange(other.edges_, nullptr);
    num_edges_ = std::exchange(other.num_edges_, 0);
    num_vertices_ = std::exchange(other.num_vertices_, 0);
    format_version_ = std::exchange(other.format_version_, 0);
  }
  return *this;
}

void BinaryEdgeReader::Close() {
  if (map_ != nullptr) {
    ::munmap(map_, map_size_);
    map_ = nullptr;
  }
  map_size_ = 0;
  edges_ = nullptr;
  num_edges_ = 0;
  num_vertices_ = 0;
  format_version_ = 0;
}

bool BinaryEdgeReader::Open(const std::string& path, std::string* error) {
  Close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Fail(error, "cannot open: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Fail(error, "cannot stat: " + path);
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (file_size < kBinaryEdgeHeaderSize) {
    ::close(fd);
    return Fail(error, path + ": truncated (smaller than the 32-byte header)");
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) return Fail(error, "mmap failed: " + path);

  const char* base = static_cast<const char*>(map);
  auto reject = [&](std::string message) {
    ::munmap(map, file_size);
    return Fail(error, path + ": " + std::move(message));
  };
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    // A sibling cyclestream format deserves a pointed error, not a generic
    // bad-magic one: a v2 (turnstile) stream fed to the v1 edge reader is
    // the classic cross-wiring mistake and must name the fix.
    if (std::memcmp(base, kMagicPrefix, sizeof(kMagicPrefix)) == 0) {
      const auto magic_version =
          static_cast<unsigned>(static_cast<unsigned char>(base[6]));
      if (magic_version == kBinaryTurnstileVersion) {
        return reject(
            "this is a turnstile (v2) stream; the v1 edge reader cannot "
            "ingest insert/delete records — use a turnstile-* query kind or "
            "the turnstile reader");
      }
      return reject("unsupported cyclestream binary magic version " +
                    std::to_string(magic_version) + " (this reader handles v" +
                    std::to_string(kBinaryEdgeVersion) + ")");
    }
    return reject("not a cyclestream binary edge stream (bad magic)");
  }
  const std::uint32_t version = GetU32(base + 8);
  if (version != kBinaryEdgeVersion) {
    return reject("unsupported format version " + std::to_string(version) +
                  " (expected " + std::to_string(kBinaryEdgeVersion) + ")");
  }
  const VertexId num_vertices = GetU32(base + 12);
  const std::uint64_t num_edges = GetU64(base + 16);
  const std::uint32_t crc = GetU32(base + 24);
  // A forged num_edges near 2^64 wraps the expected-size product modulo
  // 2^64, so a tiny file could slide past the exact-size check below and
  // send the per-edge validation loop reading far out of bounds. Reject any
  // count whose byte size is not even representable; ordinary mismatches
  // (truncation, trailing garbage) still fall through to the exact check
  // and keep its descriptive error.
  constexpr std::uint64_t kMaxDeclaredEdges =
      (~std::uint64_t{0} - kBinaryEdgeHeaderSize) / sizeof(Edge);
  if (num_edges > kMaxDeclaredEdges) {
    return reject("header declares " + std::to_string(num_edges) +
                  " edges, which overflows the file-size computation "
                  "(forged or corrupt header)");
  }
  const std::uint64_t expected_size =
      kBinaryEdgeHeaderSize + num_edges * sizeof(Edge);
  if (file_size != expected_size) {
    return reject("size mismatch: header declares " +
                  std::to_string(num_edges) + " edges (" +
                  std::to_string(expected_size) + " bytes) but the file has " +
                  std::to_string(file_size) +
                  " bytes (truncated or trailing garbage)");
  }
  const char* payload = base + kBinaryEdgeHeaderSize;
  const std::size_t payload_size = file_size - kBinaryEdgeHeaderSize;
  if (Crc32(std::string_view(payload, payload_size)) != crc) {
    return reject("payload CRC mismatch (corrupt file)");
  }
  const Edge* edges = reinterpret_cast<const Edge*>(payload);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    if (!(edges[i].u < edges[i].v && edges[i].v < num_vertices)) {
      return reject("edge " + std::to_string(i) + " (" +
                    std::to_string(edges[i].u) + "," +
                    std::to_string(edges[i].v) +
                    ") is not canonical for n=" + std::to_string(num_vertices));
    }
  }

  map_ = map;
  map_size_ = file_size;
  edges_ = num_edges > 0 ? edges : nullptr;
  num_edges_ = static_cast<std::size_t>(num_edges);
  num_vertices_ = num_vertices;
  format_version_ = version;
  return true;
}

std::uint32_t SniffBinaryFormatVersion(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic)) return 0;
  if (std::memcmp(magic, kMagicPrefix, sizeof(kMagicPrefix)) != 0) return 0;
  if (magic[7] != '\n') return 0;
  return static_cast<std::uint32_t>(static_cast<unsigned char>(magic[6]));
}

EdgeList BinaryEdgeReader::ToEdgeList() const {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(num_edges_);
  for (std::size_t i = 0; i < num_edges_; ++i) {
    pairs.emplace_back(edges_[i].u, edges_[i].v);
  }
  return EdgeList::FromPairs(num_vertices_, pairs);
}

std::optional<EdgeList> LoadEdgeListBinary(const std::string& path) {
  BinaryEdgeReader reader;
  std::string error;
  if (!reader.Open(path, &error)) {
    LOG(WARNING) << "cannot load binary edge stream: " << error;
    return std::nullopt;
  }
  return reader.ToEdgeList();
}

}  // namespace cyclestream
