#include "graph/exact.h"

#include <algorithm>
#include <unordered_set>

#include "graph/dodg.h"
#include "graph/intersect.h"
#include "util/check.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

// Degree-based total order used to orient edges for triangle counting:
// u precedes v if deg(u) < deg(v), ties broken by id. Orienting every edge
// from the lower-ranked endpoint bounds out-degrees by O(√m), giving the
// O(m^{3/2}) "forward" algorithm.
struct RankOrder {
  const Graph* g;
  bool operator()(VertexId a, VertexId b) const {
    const auto da = g->Degree(a), db = g->Degree(b);
    if (da != db) return da < db;
    return a < b;
  }
};

inline std::uint64_t Choose2(std::uint64_t x) { return x * (x - 1) / 2; }

}  // namespace

std::uint64_t CountTriangles(const Graph& g) {
  if (GetExactBackend() == ExactBackend::kDodg) {
    return DodgGraph::Build(g.edges().data(), g.num_edges(), g.num_vertices())
        .CountTriangles();
  }
  const VertexId n = g.num_vertices();
  RankOrder before{&g};
  // Oriented adjacency: out[v] = higher-ranked neighbors of v, sorted by id.
  std::vector<std::vector<VertexId>> out(n);
  for (const Edge& e : g.edges()) {
    if (before(e.u, e.v)) {
      out[e.u].push_back(e.v);
    } else {
      out[e.v].push_back(e.u);
    }
  }
  for (auto& list : out) std::sort(list.begin(), list.end());

  std::uint64_t triangles = 0;
  for (const Edge& e : g.edges()) {
    const VertexId lo = before(e.u, e.v) ? e.u : e.v;
    const VertexId hi = lo == e.u ? e.v : e.u;
    // Triangles where this edge's two companions are both higher-ranked than
    // `lo`: intersect out[lo] with out[hi]; each triangle is counted exactly
    // once, at its lowest-ranked vertex's two outgoing edges... more simply,
    // intersecting out-lists over all edges counts each triangle once at the
    // edge joining its two lowest-ranked vertices.
    const auto& a = out[lo];
    const auto& b = out[hi];
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] < b[j]) {
        ++i;
      } else if (a[i] > b[j]) {
        ++j;
      } else {
        ++triangles;
        ++i;
        ++j;
      }
    }
  }
  return triangles;
}

std::vector<std::uint64_t> PerEdgeTriangleCounts(const Graph& g) {
  std::vector<std::uint64_t> counts;
  counts.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    counts.push_back(g.CommonNeighborCount(e.u, e.v));
  }
  return counts;
}

std::uint64_t CountWedges(const Graph& g) {
  std::uint64_t wedges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    wedges += Choose2(g.Degree(v));
  }
  return wedges;
}

double Transitivity(const Graph& g) {
  const std::uint64_t wedges = CountWedges(g);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) /
         static_cast<double>(wedges);
}

namespace {

// Accumulates the wedges centered at vertices [first, last) into x.
void AccumulateWedges(const Graph& g, VertexId first, VertexId last,
                      WedgeVector& x) {
  for (VertexId w = first; w < last; ++w) {
    const auto nbrs = g.Neighbors(w);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        ++x[PairKey(nbrs[i], nbrs[j])];
      }
    }
  }
}

// Splits [0, n) into up to `want` contiguous vertex ranges of roughly equal
// wedge work (Σ C(deg, 2)); returns the range boundaries.
std::vector<VertexId> WedgeBalancedChunks(const Graph& g, int want) {
  const std::uint64_t total = CountWedges(g);
  const std::uint64_t per_chunk =
      std::max<std::uint64_t>(1, total / static_cast<std::uint64_t>(want));
  std::vector<VertexId> bounds{0};
  std::uint64_t acc = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    acc += Choose2(g.Degree(v));
    if (acc >= per_chunk && v + 1 < g.num_vertices()) {
      bounds.push_back(v + 1);
      acc = 0;
    }
  }
  bounds.push_back(g.num_vertices());
  return bounds;
}

}  // namespace

WedgeVector ComputeWedgeVector(const Graph& g) {
  const std::uint64_t wedges = CountWedges(g);
  const int threads = DefaultThreads();
  WedgeVector x;
  // Heuristic reserve: most wedge endpoints repeat, so #pairs <= #wedges.
  x.reserve(std::min<std::uint64_t>(wedges, 1u << 24));
  // Parallel path only when the work amortizes the per-chunk maps; wedge
  // counts are integer sums, so the merged contents are identical to the
  // serial fill at any thread count.
  if (threads <= 1 || wedges < (1u << 16)) {
    AccumulateWedges(g, 0, g.num_vertices(), x);
    return x;
  }
  const std::vector<VertexId> bounds = WedgeBalancedChunks(g, 4 * threads);
  const std::size_t chunks = bounds.size() - 1;
  std::vector<WedgeVector> partial = ParallelMap(chunks, [&](std::size_t c) {
    WedgeVector local;
    AccumulateWedges(g, bounds[c], bounds[c + 1], local);
    return local;
  });
  // Deterministic merge: chunk-index order.
  for (const WedgeVector& local : partial) {
    for (const auto& [key, count] : local) x[key] += count;
  }
  return x;
}

std::uint64_t CountFourCyclesFromWedges(const WedgeVector& x) {
  std::uint64_t twice = 0;
  for (const auto& [key, count] : x) {
    (void)key;
    twice += Choose2(count);
  }
  CHECK_EQ(twice % 2, 0u);
  return twice / 2;
}

std::uint64_t CountFourCycles(const Graph& g) {
  if (GetExactBackend() == ExactBackend::kDodg) {
    return DodgGraph::Build(g.edges().data(), g.num_edges(), g.num_vertices())
        .CountFourCycles();
  }
  return CountFourCyclesFromWedges(ComputeWedgeVector(g));
}

std::uint64_t CountFourCyclesThroughEdge(const Graph& g, VertexId u,
                                         VertexId v) {
  // A 4-cycle through (u,v) is a path u - x - w - v with all four vertices
  // distinct. Enumerate w ∈ Γ(v)\{u}, then x ∈ Γ(w) ∩ Γ(u) \ {v}.
  const auto nu = g.Neighbors(u);
  const bool v_in_nu = SortedContains(nu, v);
  std::uint64_t count = 0;
  for (VertexId w : g.Neighbors(v)) {
    if (w == u) continue;
    const auto nw = g.Neighbors(w);
    std::uint64_t common = SortedIntersectionCount(nw, nu);
    // Drop the x = v solution: v ∈ Γ(w) always holds (w is v's neighbor),
    // so it was counted iff v ∈ Γ(u) too.
    if (v_in_nu && common > 0) --common;
    count += common;
  }
  return count;
}

std::vector<std::uint64_t> PerEdgeFourCycleCounts(const Graph& g) {
  std::vector<std::uint64_t> counts;
  counts.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    counts.push_back(CountFourCyclesThroughEdge(g, e.u, e.v));
  }
  return counts;
}

std::map<std::uint32_t, std::uint64_t> DiamondHistogram(const Graph& g) {
  const WedgeVector x = ComputeWedgeVector(g);
  std::map<std::uint32_t, std::uint64_t> hist;
  const int threads = DefaultThreads();
  if (threads <= 1 || x.size() < (1u << 16)) {
    for (const auto& [key, count] : x) {
      (void)key;
      if (count >= 2) ++hist[count];
    }
    return hist;
  }
  // Shard the flat table by slot range; per-shard histograms merge by
  // integer addition (in shard order, though any order gives the same map).
  const std::size_t shards = static_cast<std::size_t>(4 * threads);
  const std::size_t per_shard = (x.capacity() + shards - 1) / shards;
  auto partial = ParallelMap(shards, [&](std::size_t s) {
    std::map<std::uint32_t, std::uint64_t> local;
    x.VisitSlotRange(s * per_shard, (s + 1) * per_shard,
                     [&local](std::uint64_t, std::uint32_t count) {
                       if (count >= 2) ++local[count];
                     });
    return local;
  });
  for (const auto& local : partial) {
    for (const auto& [size, n] : local) hist[size] += n;
  }
  return hist;
}

std::uint64_t WedgeVectorF2(const WedgeVector& x) {
  std::uint64_t f2 = 0;
  for (const auto& [key, count] : x) {
    (void)key;
    f2 += static_cast<std::uint64_t>(count) * count;
  }
  return f2;
}

std::uint64_t WedgeVectorCappedF1(const WedgeVector& x, std::uint32_t cap) {
  std::uint64_t f1 = 0;
  for (const auto& [key, count] : x) {
    (void)key;
    f1 += std::min(count, cap);
  }
  return f1;
}

FourCycleHeavinessProfile ProfileFourCycleHeaviness(const Graph& g,
                                                    std::uint64_t threshold) {
  FourCycleHeavinessProfile profile;
  const auto per_edge = PerEdgeFourCycleCounts(g);
  std::unordered_set<std::uint64_t, Mix64Hash> heavy;
  for (std::size_t i = 0; i < per_edge.size(); ++i) {
    if (per_edge[i] >= threshold) heavy.insert(g.edges()[i].Key());
  }
  profile.bad_edges = heavy.size();
  auto is_heavy = [&heavy](VertexId a, VertexId b) {
    return heavy.count(Edge(a, b).Key()) > 0;
  };

  // Enumerate each 4-cycle once: for every diagonal pair {u,v} list the
  // common neighbors; each unordered pair {a,b} of common neighbors is a
  // cycle u-a-v-b. Count the cycle only from its lexicographically smaller
  // diagonal to avoid the factor-2 double count.
  const WedgeVector x = ComputeWedgeVector(g);
  std::vector<VertexId> common;
  for (const auto& [key, count] : x) {
    if (count < 2) continue;
    const Edge diag = PairFromKey(key);
    common.clear();
    // Recover the common neighborhood by sorted intersection.
    const auto na = g.Neighbors(diag.u);
    const auto nb = g.Neighbors(diag.v);
    std::size_t i = 0, j = 0;
    while (i < na.size() && j < nb.size()) {
      if (na[i] < nb[j]) {
        ++i;
      } else if (na[i] > nb[j]) {
        ++j;
      } else {
        common.push_back(na[i]);
        ++i;
        ++j;
      }
    }
    CHECK_EQ(common.size(), count);
    for (std::size_t a = 0; a < common.size(); ++a) {
      for (std::size_t b = a + 1; b < common.size(); ++b) {
        // Other diagonal: {common[a], common[b]}.
        if (PairKey(common[a], common[b]) < key) continue;  // Counted there.
        ++profile.total;
        int bad = 0;
        bad += is_heavy(diag.u, common[a]) ? 1 : 0;
        bad += is_heavy(common[a], diag.v) ? 1 : 0;
        bad += is_heavy(diag.v, common[b]) ? 1 : 0;
        bad += is_heavy(common[b], diag.u) ? 1 : 0;
        ++profile.with_bad[bad];
      }
    }
  }
  return profile;
}

}  // namespace cyclestream
