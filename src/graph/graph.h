#ifndef CYCLESTREAM_GRAPH_GRAPH_H_
#define CYCLESTREAM_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace cyclestream {

/// Immutable undirected graph in compressed-sparse-row form. Neighbor lists
/// are sorted, enabling O(log d) adjacency queries and linear-time sorted
/// intersections (the workhorse of the exact counters).
class Graph {
 public:
  Graph() = default;

  /// Builds from a finalized EdgeList.
  explicit Graph(const EdgeList& edges);

  VertexId num_vertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  std::size_t num_edges() const { return adjacency_.size() / 2; }

  /// Sorted neighbors of v.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return std::span<const VertexId>(adjacency_.data() + offsets_[v],
                                     offsets_[v + 1] - offsets_[v]);
  }

  std::size_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  std::size_t MaxDegree() const { return max_degree_; }

  /// O(log d) adjacency test.
  bool HasEdge(VertexId a, VertexId b) const;

  /// |Γ(a) ∩ Γ(b)| via sorted-list intersection.
  std::size_t CommonNeighborCount(VertexId a, VertexId b) const;

  /// The canonical edge list this graph was built from (sorted).
  const std::vector<Edge>& edges() const { return edge_list_; }

 private:
  std::vector<std::size_t> offsets_;   // n+1 entries.
  std::vector<VertexId> adjacency_;    // 2m entries, sorted per vertex.
  std::vector<Edge> edge_list_;        // m canonical edges, sorted.
  std::size_t max_degree_ = 0;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_GRAPH_H_
