#ifndef CYCLESTREAM_GRAPH_DODG_H_
#define CYCLESTREAM_GRAPH_DODG_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"

namespace cyclestream {

class FlagParser;

/// High-throughput exact counting on a Degree-Oriented Directed Graph.
///
/// The naive oracles in graph/exact.h are the correctness reference but cap
/// experiment scale at ~10 M edges/s (triangles) and ~2.7 M/s (4-cycles).
/// DodgGraph is the production backend for exact ground truth at 100 M+
/// edges (DESIGN.md §12):
///
///   1. the raw edge array is sorted in place in parallel (chunk sort +
///      pairwise merge rounds on the util/parallel pool),
///   2. deduplication, degree counting, and CSR construction happen in one
///      fused scan (self-loops are dropped, duplicates collapse),
///   3. vertices are relabeled in degree-descending order and every edge is
///      oriented from the higher new id to the lower one — out-neighbors of
///      any vertex therefore have smaller ids (hubs cluster near 0) and
///      out-degrees are bounded by O(√m),
///   4. triangles are counted per directed edge (u→v) as |N⁺(u) ∩ N⁺(v)|
///      with a two-range split: edges inside the hub range [0, H) intersect
///      precomputed H-bit adjacency bitmaps (AVX2 AND+popcount), everything
///      else runs the vectorized sorted-merge / galloping kernel,
///   5. 4-cycles use out-wedge enumeration in DODG order (Chiba–Nishizeki):
///      vertex u owns exactly the cycles in which it has the minimum id, so
///      every cycle is counted once, in O(Σ_e min-degree) total work.
///
/// Counts are exact 64-bit integers accumulated per cost-balanced vertex
/// chunk and reduced in chunk order, so results are bit-identical at every
/// thread count and across the scalar/AVX2 kernels (asserted by
/// tests/dodg_test.cc and the CI cpu-dispatch legs).
struct DodgOptions {
  /// Width H of the dense hub range. Vertices with new id < H store their
  /// out-neighborhood as an H-bit bitmap (out-neighbors of a hub are
  /// themselves hubs, so the bitmap is lossless). 0 = default (min(n,
  /// kDefaultHubRange)). Tests shrink it to force the sparse-tail kernels
  /// onto small graphs.
  VertexId hub_range = 0;
};

class DodgGraph {
 public:
  using Options = DodgOptions;

  static constexpr VertexId kDefaultHubRange = 8192;

  DodgGraph() = default;

  /// Builds from a raw edge array (for example straight out of a mmap'd
  /// binary edge stream, BinaryEdgeReader::edges() — no text parse, no
  /// EdgeList materialization). Edges must be canonical (u < v <
  /// num_vertices, the binary-reader invariant); duplicates are legal and
  /// collapse.
  static DodgGraph Build(const Edge* edges, std::size_t count,
                         VertexId num_vertices, const Options& options = Options());

  /// Builds from an EdgeList (finalized or not; duplicates collapse).
  static DodgGraph Build(const EdgeList& edges, const Options& options = Options());

  /// Builds from arbitrary raw pairs: self-loops are dropped, order is
  /// canonicalized, duplicates collapse, and the vertex count grows to
  /// cover every id — the same cleanup EdgeList::FromPairs performs, so the
  /// counts match the naive backend on dirty input too.
  static DodgGraph FromPairs(
      VertexId num_vertices,
      const std::vector<std::pair<VertexId, VertexId>>& pairs,
      const Options& options = Options());

  VertexId num_vertices() const { return num_vertices_; }
  /// Unique undirected edges after dedup.
  std::size_t num_edges() const { return num_edges_; }
  /// The dense hub range H actually in use.
  VertexId hub_range() const { return hub_range_; }
  /// Degree (full, undirected) of new id v.
  std::size_t Degree(VertexId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }
  std::size_t MaxDegree() const { return max_degree_; }

  /// All neighbors of new id v, ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }
  /// Neighbors with smaller new id (the DODG out-edges), ascending.
  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            static_cast<std::size_t>(split_[v] - offsets_[v])};
  }
  /// Neighbors with larger new id, ascending.
  std::span<const VertexId> UpNeighbors(VertexId v) const {
    return {adjacency_.data() + split_[v],
            static_cast<std::size_t>(offsets_[v + 1] - split_[v])};
  }
  /// new_id[original_id] — the degree-descending relabeling.
  const std::vector<VertexId>& new_ids() const { return new_id_; }

  /// Exact triangle count (two-range dense/sparse intersection).
  std::uint64_t CountTriangles() const;
  /// Exact 4-cycle count (out-wedge enumeration in DODG order).
  std::uint64_t CountFourCycles() const;

 private:
  VertexId num_vertices_ = 0;
  std::size_t num_edges_ = 0;
  VertexId hub_range_ = 0;
  std::size_t max_degree_ = 0;
  std::vector<std::uint64_t> offsets_;  // n+1 row offsets into adjacency_.
  std::vector<VertexId> adjacency_;     // 2m neighbors, sorted per row.
  std::vector<std::uint64_t> split_;    // First up-neighbor index per row.
  std::vector<VertexId> new_id_;        // original id -> new id.
  std::vector<std::uint64_t> hub_bits_;  // H rows of ceil(H/64) words.
  std::size_t hub_words_ = 0;            // Words per hub bitmap row.
};

/// Process-wide backend selector for the exact counters. CountTriangles /
/// CountFourCycles (graph/exact.h) consult this, so every experiment
/// driver, the CLI, and the engine's exact-reference path switch together
/// via one `--exact_backend={naive,dodg}` flag.
enum class ExactBackend {
  kNaive,  // The reference oracles in graph/exact.cc (default).
  kDodg,   // The DODG/SIMD backend above.
};

/// Sets / reads the process-wide backend. Like SetDefaultThreads: call once
/// at startup, before counting work is in flight.
void SetExactBackend(ExactBackend backend);
ExactBackend GetExactBackend();

/// "naive" / "dodg" — nullopt for anything else.
std::optional<ExactBackend> ParseExactBackend(std::string_view name);
const char* ExactBackendName(ExactBackend backend);

/// Reads `--exact_backend` (default naive) and installs it process-wide;
/// aborts with a clear message on an unknown value. Every experiment
/// binary calls this from its shared context, the CLI from Main.
ExactBackend ApplyExactBackendFlag(FlagParser& flags);

/// Runtime SIMD-dispatch control. kAuto picks AVX2 when both the build and
/// the CPU support it; kScalar forces the portable kernels (the CI
/// cpu-dispatch matrix builds with -DCYCLESTREAM_DISABLE_AVX2=ON instead,
/// which removes the AVX2 kernels entirely). Counts are bit-identical
/// either way; this exists so one test process can exercise both paths.
enum class ExactSimdMode { kAuto, kScalar };
void SetExactSimdMode(ExactSimdMode mode);
ExactSimdMode GetExactSimdMode();

/// Name of the kernel set the next count will use: "avx2" or "scalar".
/// Diagnostic only — keep it out of deterministic manifests, which are
/// compared byte-for-byte across ISAs.
const char* ActiveExactKernels();

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_DODG_H_
