#ifndef CYCLESTREAM_GRAPH_FLAT_MAP_H_
#define CYCLESTREAM_GRAPH_FLAT_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace cyclestream {

/// Open-addressing hash map from 64-bit keys to small trivially-copyable
/// values: power-of-two capacity, Mix64 finalizer, linear probing. One flat
/// slot array, no per-entry allocation, no separate chaining — the wedge
/// vector's hot `++x[PairKey(u,v)]` becomes a mix, a masked index, and a
/// short probe walk over contiguous memory.
///
/// The all-ones key (~0) is reserved as the empty-slot sentinel. `PairKey`
/// can never produce it (it would require two equal endpoints of id 2³²−1,
/// and pair keys are formed from *distinct* vertices), so the wedge vector
/// and every per-vertex index in this codebase can use the map unrestricted.
///
/// Deliberately minimal: insert/lookup/iterate only — no erase. Iteration
/// order is the slot order (a function of the key set and the insertion
/// history, not of pointer values), so repeated runs over the same data
/// iterate identically.
template <typename V>
class FlatMap64 {
 public:
  /// Reserved empty-slot sentinel; never usable as a key.
  static constexpr std::uint64_t kEmptyKey = ~0ull;

  struct Slot {
    std::uint64_t key = kEmptyKey;
    V value{};
  };

  FlatMap64() = default;

  /// Pre-sizes for `expected` entries (capacity is the next power of two
  /// that keeps the load factor under ~0.75).
  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap * 3 / 4 < expected) cap <<= 1;
    if (cap > slots_.size()) Rehash(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Slots allocated (diagnostics / space accounting).
  std::size_t capacity() const { return slots_.size(); }

  /// Inserts a default-constructed value if absent; returns the value slot.
  V& operator[](std::uint64_t key) {
    assert(key != kEmptyKey);
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = Probe(key);
    if (slots_[i].key == kEmptyKey) {
      slots_[i].key = key;
      ++size_;
    }
    return slots_[i].value;
  }

  /// Pointer to the value, or nullptr if absent.
  const V* find(std::uint64_t key) const {
    if (slots_.empty()) return nullptr;
    const std::size_t i = Probe(key);
    return slots_[i].key == key ? &slots_[i].value : nullptr;
  }
  V* find(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  const V& at(std::uint64_t key) const {
    const V* v = find(key);
    if (v == nullptr) throw std::out_of_range("FlatMap64::at: missing key");
    return *v;
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  void clear() {
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  /// Forward iterator over occupied slots; dereferences to a `Slot` whose
  /// public `key`/`value` members support `for (const auto& [k, v] : map)`.
  class const_iterator {
   public:
    const_iterator(const Slot* p, const Slot* end) : p_(p), end_(end) {
      SkipEmpty();
    }
    const Slot& operator*() const { return *p_; }
    const Slot* operator->() const { return p_; }
    const_iterator& operator++() {
      ++p_;
      SkipEmpty();
      return *this;
    }
    bool operator==(const const_iterator& o) const { return p_ == o.p_; }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }

   private:
    void SkipEmpty() {
      while (p_ != end_ && p_->key == kEmptyKey) ++p_;
    }
    const Slot* p_;
    const Slot* end_;
  };

  /// Visits occupied slots with index in [begin, end) of the slot array, in
  /// index order — the sharded-iteration hook for parallel consumers (each
  /// shard reads a disjoint contiguous slot range).
  template <typename Fn>
  void VisitSlotRange(std::size_t begin, std::size_t end, Fn&& fn) const {
    end = std::min(end, slots_.size());
    for (std::size_t i = begin; i < end; ++i) {
      if (slots_[i].key != kEmptyKey) fn(slots_[i].key, slots_[i].value);
    }
  }

  const_iterator begin() const {
    return const_iterator(slots_.data(), slots_.data() + slots_.size());
  }
  const_iterator end() const {
    return const_iterator(slots_.data() + slots_.size(),
                          slots_.data() + slots_.size());
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  /// First slot that either holds `key` or is empty (the insert position).
  std::size_t Probe(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Mix64(key) & mask;
    while (slots_[i].key != key && slots_[i].key != kEmptyKey) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    for (const Slot& s : old) {
      if (s.key == kEmptyKey) continue;
      const std::size_t mask = slots_.size() - 1;
      std::size_t i = Mix64(s.key) & mask;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_FLAT_MAP_H_
