#include "graph/graph.h"

#include <algorithm>

#include "graph/intersect.h"
#include "util/check.h"

namespace cyclestream {

Graph::Graph(const EdgeList& edges) {
  CHECK(edges.finalized()) << "EdgeList must be finalized before Graph()";
  const VertexId n = edges.num_vertices();
  edge_list_ = edges.edges();

  std::vector<std::size_t> degree(n, 0);
  for (const Edge& e : edge_list_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
    max_degree_ = std::max(max_degree_, degree[v]);
  }
  adjacency_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edge_list_) {
    adjacency_[cursor[e.u]++] = e.v;
    adjacency_[cursor[e.v]++] = e.u;
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

bool Graph::HasEdge(VertexId a, VertexId b) const {
  if (a >= num_vertices() || b >= num_vertices()) return false;
  // Search the smaller list.
  if (Degree(a) > Degree(b)) std::swap(a, b);
  const auto nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::size_t Graph::CommonNeighborCount(VertexId a, VertexId b) const {
  // Merge intersection with a galloping fast path for skewed degree pairs
  // (see graph/intersect.h).
  return static_cast<std::size_t>(
      SortedIntersectionCount(Neighbors(a), Neighbors(b)));
}

}  // namespace cyclestream
