#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace cyclestream {

Graph::Graph(const EdgeList& edges) {
  CHECK(edges.finalized()) << "EdgeList must be finalized before Graph()";
  const VertexId n = edges.num_vertices();
  edge_list_ = edges.edges();

  std::vector<std::size_t> degree(n, 0);
  for (const Edge& e : edge_list_) {
    ++degree[e.u];
    ++degree[e.v];
  }
  offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + degree[v];
    max_degree_ = std::max(max_degree_, degree[v]);
  }
  adjacency_.resize(offsets_[n]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edge_list_) {
    adjacency_[cursor[e.u]++] = e.v;
    adjacency_[cursor[e.v]++] = e.u;
  }
  for (VertexId v = 0; v < n; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

bool Graph::HasEdge(VertexId a, VertexId b) const {
  if (a >= num_vertices() || b >= num_vertices()) return false;
  // Search the smaller list.
  if (Degree(a) > Degree(b)) std::swap(a, b);
  const auto nbrs = Neighbors(a);
  return std::binary_search(nbrs.begin(), nbrs.end(), b);
}

std::size_t Graph::CommonNeighborCount(VertexId a, VertexId b) const {
  const auto na = Neighbors(a);
  const auto nb = Neighbors(b);
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) {
      ++i;
    } else if (na[i] > nb[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace cyclestream
