#ifndef CYCLESTREAM_GRAPH_TYPES_H_
#define CYCLESTREAM_GRAPH_TYPES_H_

#include <cstdint>
#include <functional>

namespace cyclestream {

/// Vertex identifier. Graphs are always on the vertex set {0, ..., n-1}.
using VertexId = std::uint32_t;

/// Invalid/absent vertex sentinel.
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

/// An undirected edge stored in canonical form (u < v). Self-loops are not
/// representable; the builders reject them.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  Edge() = default;
  /// Canonicalizes the endpoint order.
  Edge(VertexId a, VertexId b) : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge& a, const Edge& b) = default;
  friend auto operator<=>(const Edge& a, const Edge& b) = default;

  /// Packs the edge into a single 64-bit key (u in the high half). Hash maps
  /// over edges key on this.
  std::uint64_t Key() const {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  }

  /// Given one endpoint, returns the other. The argument must be an endpoint.
  VertexId Other(VertexId x) const { return x == u ? v : u; }

  /// True if `x` is one of the endpoints.
  bool Touches(VertexId x) const { return x == u || x == v; }
};

/// Packs an *unordered* vertex pair (not necessarily an edge) into a 64-bit
/// key; used for wedge-count maps x_{uv}.
inline std::uint64_t PairKey(VertexId a, VertexId b) {
  if (a > b) {
    const VertexId t = a;
    a = b;
    b = t;
  }
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Unpacks a PairKey.
inline Edge PairFromKey(std::uint64_t key) {
  return Edge(static_cast<VertexId>(key >> 32),
              static_cast<VertexId>(key & 0xffffffffULL));
}

/// SplitMix64 finalizer: avalanche-mixes a 64-bit key. Shared by the
/// std::unordered_* hasher below and the open-addressing FlatMap64.
inline std::uint64_t Mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixing hasher for 64-bit keys in std::unordered_* containers (the identity
/// hash of libstdc++ clusters badly on packed pair keys).
struct Mix64Hash {
  std::size_t operator()(std::uint64_t x) const {
    return static_cast<std::size_t>(Mix64(x));
  }
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_TYPES_H_
