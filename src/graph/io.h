#ifndef CYCLESTREAM_GRAPH_IO_H_
#define CYCLESTREAM_GRAPH_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/edge_list.h"

namespace cyclestream {

/// Loads a graph from a SNAP-style text edge list: one "u v" pair per line,
/// '#' starts a comment, blank lines ignored, arbitrary non-contiguous vertex
/// ids are densified to {0..n-1}. Self-loops are dropped with a counted
/// warning (their endpoints are not densified, so a vertex mentioned only in
/// self-loops does not appear in the graph); duplicate edges are dropped
/// with a counted warning. Returns nullopt if the file cannot be opened,
/// contains a malformed line, or the underlying read fails mid-file (a
/// truncated read is an error, never a silently shorter graph).
std::optional<EdgeList> LoadEdgeListText(const std::string& path);

/// Same parser over an already-open stream; `name` labels warnings.
/// Exposed so tests (and in-memory callers) can exercise the exact
/// file-loading code path without touching the filesystem.
std::optional<EdgeList> LoadEdgeListText(std::istream& in,
                                         const std::string& name);

/// Writes the edge list in the same format (with a small header comment).
/// Returns false on IO failure.
bool SaveEdgeListText(const EdgeList& edges, const std::string& path);

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_IO_H_
