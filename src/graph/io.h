#ifndef CYCLESTREAM_GRAPH_IO_H_
#define CYCLESTREAM_GRAPH_IO_H_

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "graph/edge_list.h"

namespace cyclestream {

/// Outcome of one streaming text parse (ForEachEdgeText).
struct EdgeTextReadStats {
  VertexId num_vertices = 0;   // Densified vertex count.
  std::size_t edges = 0;       // Edges delivered to the callback.
  std::size_t self_loops = 0;  // Dropped with a counted warning.
  std::size_t duplicates = 0;  // Dropped with a counted warning.
};

/// Streaming edge source over a SNAP-style text edge list: invokes `fn`
/// once per kept edge, in file order, with the same densification,
/// self-loop/duplicate warn-and-drop policy, and strict error handling as
/// LoadEdgeListText — but without materializing the edge vector, so
/// single-pass consumers (and the stream engine's ingest path) can process
/// edges as they are parsed. Deduplication still needs the seen-edge set,
/// so memory is O(m) keys, not O(m) Edge records plus keys. Returns nullopt
/// on any parse or read failure (after possibly delivering a prefix of the
/// edges — single-pass consumers must discard their state on failure).
std::optional<EdgeTextReadStats> ForEachEdgeText(
    std::istream& in, const std::string& name,
    const std::function<void(const Edge&)>& fn);

/// File-path convenience overload.
std::optional<EdgeTextReadStats> ForEachEdgeText(
    const std::string& path, const std::function<void(const Edge&)>& fn);

/// Loads a graph from a SNAP-style text edge list: one "u v" pair per line,
/// '#' starts a comment, blank lines ignored, arbitrary non-contiguous vertex
/// ids are densified to {0..n-1}. Self-loops are dropped with a counted
/// warning (their endpoints are not densified, so a vertex mentioned only in
/// self-loops does not appear in the graph); duplicate edges are dropped
/// with a counted warning. Returns nullopt if the file cannot be opened,
/// contains a malformed line, or the underlying read fails mid-file (a
/// truncated read is an error, never a silently shorter graph).
/// Implemented on ForEachEdgeText; the two paths keep identical warn-and-
/// drop semantics by construction.
std::optional<EdgeList> LoadEdgeListText(const std::string& path);

/// Same parser over an already-open stream; `name` labels warnings.
/// Exposed so tests (and in-memory callers) can exercise the exact
/// file-loading code path without touching the filesystem.
std::optional<EdgeList> LoadEdgeListText(std::istream& in,
                                         const std::string& name);

/// Writes the edge list in the same format (with a small header comment).
/// Returns false on IO failure.
bool SaveEdgeListText(const EdgeList& edges, const std::string& path);

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_IO_H_
