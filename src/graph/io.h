#ifndef CYCLESTREAM_GRAPH_IO_H_
#define CYCLESTREAM_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/edge_list.h"

namespace cyclestream {

/// Loads a graph from a SNAP-style text edge list: one "u v" pair per line,
/// '#' starts a comment, blank lines ignored, arbitrary non-contiguous vertex
/// ids are densified to {0..n-1}. Self-loops and duplicate edges are dropped.
/// Returns nullopt if the file cannot be opened or contains a malformed line.
std::optional<EdgeList> LoadEdgeListText(const std::string& path);

/// Writes the edge list in the same format (with a small header comment).
/// Returns false on IO failure.
bool SaveEdgeListText(const EdgeList& edges, const std::string& path);

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_IO_H_
