#ifndef CYCLESTREAM_GRAPH_INTERSECT_H_
#define CYCLESTREAM_GRAPH_INTERSECT_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/types.h"

namespace cyclestream {

/// Index of the first element of `b` at or after `pos` that is >= x, found by
/// exponential (galloping) probe followed by a binary search over the probed
/// window. O(log d) where d is the distance advanced, so a full intersection
/// pass costs O(|small| · log |large|) instead of O(|small| + |large|).
inline std::size_t GallopLowerBound(std::span<const VertexId> b,
                                    std::size_t pos, VertexId x) {
  std::size_t step = 1;
  std::size_t hi = pos;
  while (hi < b.size() && b[hi] < x) {
    pos = hi + 1;
    hi += step;
    step <<= 1;
  }
  hi = std::min(hi, b.size());
  return static_cast<std::size_t>(
      std::lower_bound(b.begin() + pos, b.begin() + hi, x) - b.begin());
}

/// |a ∩ b| for sorted, duplicate-free id lists. Linear two-pointer merge for
/// comparably sized inputs; when one list is kGallopRatio× longer, gallops
/// through the long list instead — the regime adjacency lists hit whenever a
/// hub neighbors a low-degree vertex.
inline constexpr std::size_t kGallopRatio = 8;

inline std::uint64_t SortedIntersectionCount(std::span<const VertexId> a,
                                             std::span<const VertexId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  std::uint64_t count = 0;
  if (b.size() >= kGallopRatio * a.size()) {
    std::size_t pos = 0;
    for (const VertexId x : a) {
      pos = GallopLowerBound(b, pos, x);
      if (pos == b.size()) break;
      if (b[pos] == x) {
        ++count;
        ++pos;
      }
    }
    return count;
  }
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

/// True iff sorted list `a` contains x.
inline bool SortedContains(std::span<const VertexId> a, VertexId x) {
  return std::binary_search(a.begin(), a.end(), x);
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_INTERSECT_H_
