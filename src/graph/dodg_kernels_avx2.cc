// AVX2 kernels for the DODG exact backend — the only translation unit
// compiled with -mavx2, so these functions must only ever be *called* after
// the runtime dispatch in dodg.cc has confirmed CPU support. Both kernels
// compute exactly the integer results of their scalar twins, just wider.

#include "graph/dodg_kernels.h"

#if defined(CYCLESTREAM_HAVE_AVX2)

#include <immintrin.h>

#include "graph/intersect.h"

namespace cyclestream::internal {

namespace {

/// Compares an 8-lane block of `a` against all 8 rotations of a block of
/// `b` and returns the number of matching lanes. Sorted duplicate-free
/// inputs mean every equality is a distinct intersection element.
inline int BlockMatches(__m256i va, __m256i vb) {
  const __m256i rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  __m256i matched = _mm256_cmpeq_epi32(va, vb);
  __m256i r = vb;
  for (int k = 1; k < 8; ++k) {
    r = _mm256_permutevar8x32_epi32(r, rot);
    matched = _mm256_or_si256(matched, _mm256_cmpeq_epi32(va, r));
  }
  return __builtin_popcount(static_cast<unsigned>(
      _mm256_movemask_ps(_mm256_castsi256_ps(matched))));
}

}  // namespace

std::uint64_t IntersectAvx2(const VertexId* a, std::size_t na,
                            const VertexId* b, std::size_t nb) {
  if (na > nb) {
    const VertexId* tp = a;
    a = b;
    b = tp;
    const std::size_t ts = na;
    na = nb;
    nb = ts;
  }
  if (na == 0) return 0;
  // Heavily skewed pairs (hub vs. leaf) are better served by galloping than
  // by streaming the whole long list through SIMD blocks; same cutover as
  // the scalar path so both backends do identical arithmetic.
  if (nb >= kGallopRatio * na) {
    return SortedIntersectionCount({a, na}, {b, nb});
  }

  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i + 8 <= na && j + 8 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    count += static_cast<std::uint64_t>(BlockMatches(va, vb));
    // Advance whichever block's maximum is smaller: every unseen element of
    // the other list is strictly larger than everything just retired.
    const VertexId amax = a[i + 7];
    const VertexId bmax = b[j + 7];
    if (amax <= bmax) i += 8;
    if (bmax <= amax) j += 8;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::uint64_t AndPopcountAvx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words) {
  std::size_t i = 0;
  std::uint64_t total = 0;
  if (words >= 8) {
    // Mula nibble-LUT popcount: per-byte counts via two table lookups, then
    // horizontal sums into four 64-bit lanes with SAD against zero.
    const __m256i lut =
        _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                         0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low_mask = _mm256_set1_epi8(0x0f);
    const __m256i zero = _mm256_setzero_si256();
    __m256i acc = zero;
    for (; i + 4 <= words; i += 4) {
      const __m256i va =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
      const __m256i vb =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
      const __m256i v = _mm256_and_si256(va, vb);
      const __m256i lo = _mm256_and_si256(v, low_mask);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
      const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                             _mm256_shuffle_epi8(lut, hi));
      acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, zero));
    }
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
    total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  }
  for (; i < words; ++i) {
    total += static_cast<std::uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return total;
}

}  // namespace cyclestream::internal

#endif  // CYCLESTREAM_HAVE_AVX2
