#ifndef CYCLESTREAM_GRAPH_DATASETS_H_
#define CYCLESTREAM_GRAPH_DATASETS_H_

#include "graph/edge_list.h"

namespace cyclestream {

/// Zachary's karate club network (34 vertices, 78 edges, 45 triangles) —
/// the classic small social network, embedded so examples and tests have one
/// *real* graph available without any data download.
EdgeList KarateClub();

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_DATASETS_H_
