#include "graph/edge_list.h"

#include <algorithm>

#include "util/check.h"

namespace cyclestream {

EdgeList EdgeList::FromPairs(
    VertexId num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& pairs) {
  EdgeList list(num_vertices);
  for (const auto& [a, b] : pairs) {
    if (a == b) continue;  // Drop self-loops silently in the lenient builder.
    list.edges_.emplace_back(a, b);
    list.EnsureVertices(std::max(a, b) + 1);
  }
  list.Finalize();
  return list;
}

void EdgeList::Add(VertexId a, VertexId b) {
  CHECK_NE(a, b) << "self-loop";
  edges_.emplace_back(a, b);
  EnsureVertices(std::max(a, b) + 1);
  finalized_ = false;
}

void EdgeList::Finalize() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  if (!edges_.empty()) {
    CHECK_LT(edges_.back().v, num_vertices_) << "edge endpoint out of range";
  }
  finalized_ = true;
}

}  // namespace cyclestream
