#ifndef CYCLESTREAM_GRAPH_EXACT_H_
#define CYCLESTREAM_GRAPH_EXACT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/flat_map.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace cyclestream {

/// Exact offline counters. These provide ground truth for every experiment
/// and test in the library. Notation follows the paper: T is the number of
/// triangles or 4-cycles, x_{uv} = |Γ(u) ∩ Γ(v)| is the wedge vector
/// (§4.2), a (u,v)-diamond of size h is K_{2,h} between {u,v} and their h
/// common neighbors and contains C(h,2) 4-cycles (§4.1).

/// Number of triangles, via the forward algorithm (O(m^{3/2})).
std::uint64_t CountTriangles(const Graph& g);

/// t_e for each edge (indexed like g.edges()): the number of triangles
/// containing that edge, i.e. |Γ(u) ∩ Γ(v)|.
std::vector<std::uint64_t> PerEdgeTriangleCounts(const Graph& g);

/// Number of length-2 paths (wedges): Σ_v C(deg(v), 2).
std::uint64_t CountWedges(const Graph& g);

/// Global clustering coefficient (transitivity): 3T / #wedges; 0 if no wedge.
double Transitivity(const Graph& g);

/// The wedge vector x: for every unordered pair {u,v} with at least one
/// common neighbor, x[PairKey(u,v)] = |Γ(u) ∩ Γ(v)|. Cost Σ_v C(deg v, 2)
/// time and one map entry per pair with a common neighbor. Stored in an
/// open-addressing flat map (see flat_map.h) — the increment in the inner
/// wedge loop is a masked probe into one contiguous array.
///
/// When the process-wide thread budget (`SetDefaultThreads`) exceeds 1,
/// ComputeWedgeVector partitions the center vertices into wedge-balanced
/// chunks, accumulates per-chunk maps in parallel, and merges them serially
/// in chunk-index order. Wedge counts are integer sums, so the map contents
/// are identical at every thread count.
using WedgeVector = FlatMap64<std::uint32_t>;
WedgeVector ComputeWedgeVector(const Graph& g);

/// Number of 4-cycles: C4 = ½ Σ_{u<v} C(x_{uv}, 2). (Each 4-cycle is counted
/// once per diagonal pair, and it has two diagonals.)
std::uint64_t CountFourCycles(const Graph& g);

/// Same, but from a precomputed wedge vector (avoids recomputation when both
/// the count and the vector are needed).
std::uint64_t CountFourCyclesFromWedges(const WedgeVector& x);

/// Number of 4-cycles that contain the edge (u,v). The edge need not exist in
/// g for the formula, but callers always pass real edges.
std::uint64_t CountFourCyclesThroughEdge(const Graph& g, VertexId u,
                                         VertexId v);

/// t(e) for every edge (indexed like g.edges()): per-edge 4-cycle counts.
/// Σ_e t(e) = 4·C4.
std::vector<std::uint64_t> PerEdgeFourCycleCounts(const Graph& g);

/// Diamond-size histogram: histogram[h] = number of vertex pairs {u,v} with
/// exactly h >= 2 common neighbors (i.e. the number of diamonds of size h).
std::map<std::uint32_t, std::uint64_t> DiamondHistogram(const Graph& g);

/// F2 of the wedge vector: Σ x_{uv}^2. The §4.2 algorithms estimate this.
std::uint64_t WedgeVectorF2(const WedgeVector& x);

/// F1 of the capped vector z with z_{uv} = min(x_{uv}, cap): Σ z_{uv}.
std::uint64_t WedgeVectorCappedF1(const WedgeVector& x, std::uint32_t cap);

/// Structural quantities for the Lemma 5.1 experiment: given a heaviness
/// threshold, counts 4-cycles by their number of "bad" (heavy) edges.
struct FourCycleHeavinessProfile {
  std::uint64_t total = 0;             // All 4-cycles.
  std::uint64_t with_bad[5] = {0, 0, 0, 0, 0};  // Indexed by #bad edges (0-4).
  std::uint64_t bad_edges = 0;         // Number of edges over the threshold.
};

/// Enumerates all 4-cycles (cost ~ Σ over wedges; intended for small/medium
/// graphs) and classifies them by how many of their edges lie in at least
/// `threshold` 4-cycles. Used to validate Lemma 5.1 empirically.
FourCycleHeavinessProfile ProfileFourCycleHeaviness(const Graph& g,
                                                    std::uint64_t threshold);

}  // namespace cyclestream

#endif  // CYCLESTREAM_GRAPH_EXACT_H_
