#ifndef CYCLESTREAM_GRAPH_DODG_KERNELS_H_
#define CYCLESTREAM_GRAPH_DODG_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "graph/types.h"

// Internal kernel surface for the DODG exact backend. dodg.cc dispatches
// between the portable implementations (defined there) and the AVX2 ones
// (defined in dodg_kernels_avx2.cc, the only TU compiled with -mavx2;
// present only when CYCLESTREAM_HAVE_AVX2 is defined by the build). Every
// kernel pair returns bit-identical counts — the AVX2 versions are pure
// reorderings of the same integer arithmetic.

namespace cyclestream::internal {

/// |a ∩ b| for sorted duplicate-free id lists.
using IntersectFn = std::uint64_t (*)(const VertexId* a, std::size_t na,
                                      const VertexId* b, std::size_t nb);

/// popcount(a & b) over `words` 64-bit words.
using AndPopcountFn = std::uint64_t (*)(const std::uint64_t* a,
                                        const std::uint64_t* b,
                                        std::size_t words);

std::uint64_t IntersectScalar(const VertexId* a, std::size_t na,
                              const VertexId* b, std::size_t nb);
std::uint64_t AndPopcountScalar(const std::uint64_t* a, const std::uint64_t* b,
                                std::size_t words);

#if defined(CYCLESTREAM_HAVE_AVX2)
std::uint64_t IntersectAvx2(const VertexId* a, std::size_t na,
                            const VertexId* b, std::size_t nb);
std::uint64_t AndPopcountAvx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t words);
#endif

}  // namespace cyclestream::internal

#endif  // CYCLESTREAM_GRAPH_DODG_KERNELS_H_
