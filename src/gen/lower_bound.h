#ifndef CYCLESTREAM_GEN_LOWER_BOUND_H_
#define CYCLESTREAM_GEN_LOWER_BOUND_H_

#include <cstdint>

#include "graph/edge_list.h"
#include "hash/rng.h"

namespace cyclestream {

/// The §2.2 / Figure 1 lower-bound construction for triangle counting in
/// random-order streams. Tripartite graph on (U, V, W): |U| = |V| = n,
/// |W| = 2nT. Every r ∈ U ∪ V gets T neighbors in W; all neighborhoods are
/// pairwise disjoint except Γ(u_{i*}) = Γ(v_{j*}), which are identical.
/// A random bipartite pattern E_x ⊆ U × V is added (each pair present w.p.
/// 1/2), with the (i*, j*) entry forced to `planted_bit`. The graph contains
/// exactly T triangles if planted_bit is true and none otherwise — yet the
/// identity of (i*, j*) is information-theoretically hidden in any short
/// prefix of a random-order stream (Theorem 2.6).
struct TriangleGadget {
  EdgeList graph;
  VertexId u_star = 0;     // Vertex id of u_{i*}.
  VertexId v_star = 0;     // Vertex id of v_{j*}.
  bool planted_bit = false;
  std::uint64_t expected_triangles = 0;  // T if planted, else 0.
};

/// Builds the gadget. Vertex layout: U = [0, n), V = [n, 2n),
/// W = [2n, 2n + 2nT).
TriangleGadget MakeTriangleLowerBoundGadget(VertexId n, std::uint64_t t,
                                            bool planted_bit, Rng& rng);

/// The §5.4 lower-bound construction for 4-cycle counting (reduction from
/// set disjointness). Two special vertices u and w plus `num_groups` groups
/// of `k` vertices. Alice's string s1 adds k edges u–V_i per set bit; Bob's
/// string s2 adds k edges V_j–w per set bit. If the strings intersect in one
/// index the graph contains C(k,2) four-cycles; if disjoint, none.
struct FourCycleGadget {
  EdgeList graph;
  VertexId u = 0;
  VertexId w = 0;
  bool intersecting = false;
  std::uint64_t expected_four_cycles = 0;  // C(k,2) · #shared indices.
};

/// Builds the gadget with random strings of the given density; if
/// `intersecting`, one shared index is forced (and removed elsewhere so the
/// disjoint case stays disjoint).
FourCycleGadget MakeFourCycleLowerBoundGadget(std::uint32_t num_groups,
                                              std::uint32_t k, double density,
                                              bool intersecting, Rng& rng);

}  // namespace cyclestream

#endif  // CYCLESTREAM_GEN_LOWER_BOUND_H_
