#ifndef CYCLESTREAM_GEN_GENERATORS_H_
#define CYCLESTREAM_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "hash/rng.h"

namespace cyclestream {

/// Synthetic graph generators. These stand in for the public SNAP graphs the
/// streaming-triangles literature evaluates on (no network access in this
/// environment; see DESIGN.md §4): Barabási–Albert and Chung–Lu produce the
/// heavy-tailed degree distributions of social/web graphs, Erdős–Rényi gives
/// the unstructured control, and the planted-structure generators let
/// experiments sweep the subgraph count T independently of m — something no
/// fixed real graph allows.

/// Erdős–Rényi G(n, m): exactly m distinct uniform edges.
EdgeList ErdosRenyiGnm(VertexId n, std::size_t m, Rng& rng);

/// Erdős–Rényi G(n, p): each edge present independently with probability p.
/// Uses geometric skipping, O(n + m) expected time.
EdgeList ErdosRenyiGnp(VertexId n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: vertices arrive one at a time and
/// attach to `edges_per_vertex` existing vertices chosen proportionally to
/// degree. Heavy-tailed degrees, many triangles around hubs.
EdgeList BarabasiAlbert(VertexId n, std::size_t edges_per_vertex, Rng& rng);

/// Chung–Lu model with power-law expected degrees: weight(i) ∝ (i+i0)^{-1/(β-1)}
/// scaled so the expected average degree is `avg_degree`; edge {i,j} appears
/// with probability min(1, w_i w_j / Σw). β in (2, 3] matches social networks.
EdgeList ChungLuPowerLaw(VertexId n, double avg_degree, double beta, Rng& rng);

/// Complete bipartite graph K_{a,b} (vertex ids: side A = 0..a-1,
/// side B = a..a+b-1). Contains C(a,2)·C(b,2) four-cycles and no triangles.
EdgeList CompleteBipartite(VertexId a, VertexId b);

/// 2D grid graph (rows × cols, 4-neighborhood). Every internal square is a
/// 4-cycle; triangle-free. Models the "road network" regime.
EdgeList Grid2d(VertexId rows, VertexId cols);

/// Adds `count` vertex-disjoint triangles on fresh vertices to `base`.
/// If the base graph is triangle-free the result has exactly `count`
/// triangles. Returns the modified edge list.
EdgeList PlantTriangles(EdgeList base, std::size_t count, Rng& rng);

/// A "book" graph: one spine edge (u,v) plus `pages` fresh common neighbors.
/// The spine edge is contained in `pages` triangles — the canonical heavy
/// edge of §2.1. Appends the structure to `base` on fresh vertices.
EdgeList PlantBook(EdgeList base, std::size_t pages, Rng& rng);

/// Specification for a pack of planted diamonds (K_{2,h} blocks, §4.1).
struct DiamondSpec {
  std::uint32_t size = 2;   // h = number of common neighbors (>= 2).
  std::size_t count = 1;    // How many vertex-disjoint copies.
};

/// Appends vertex-disjoint diamonds to `base`. A diamond of size h adds
/// 2 + h fresh vertices, 2h edges and C(h,2) four-cycles.
EdgeList PlantDiamonds(EdgeList base, const std::vector<DiamondSpec>& specs,
                       Rng& rng);

/// Adds `count` vertex-disjoint 4-cycles on fresh vertices.
EdgeList PlantFourCycles(EdgeList base, std::size_t count, Rng& rng);

/// Theta gadget: one edge (u,v) plus k fresh neighbors x_i of u and k fresh
/// neighbors y_i of v, connected by the two matchings x_i—y_i and
/// x_i—y_{i+1}. The spine (u,v) lies in 2k of the gadget's ~4k 4-cycles —
/// the canonical *heavy edge* for 4-cycle counting (§5.1): t(spine) = 2k
/// ≫ η√T while every other gadget edge is light.
EdgeList PlantTheta(EdgeList base, std::size_t k, Rng& rng);

/// Random graph that is certified 4-cycle-free: G(n,m) edges are inserted
/// greedily, skipping any edge that would close a 4-cycle (or a triangle if
/// `also_triangle_free`). May return fewer than m edges on dense requests.
EdgeList FourCycleFreeRandom(VertexId n, std::size_t target_m, bool also_triangle_free,
                             Rng& rng);

/// Disjoint union of `parts` (vertex ids shifted); convenience for building
/// experiment workloads.
EdgeList DisjointUnion(const std::vector<EdgeList>& parts);

/// Random tree on n vertices (uniform attachment). Triangle- and C4-free.
EdgeList RandomTree(VertexId n, Rng& rng);

/// Watts–Strogatz small-world graph: a ring lattice where every vertex
/// connects to its k nearest neighbors (k even), with each edge's far
/// endpoint rewired to a uniform vertex with probability beta. High
/// clustering at small beta — the classic "social network" control.
EdgeList WattsStrogatz(VertexId n, std::uint32_t k, double beta, Rng& rng);

}  // namespace cyclestream

#endif  // CYCLESTREAM_GEN_GENERATORS_H_
