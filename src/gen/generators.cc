#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/check.h"

namespace cyclestream {
namespace {

// Maximum possible edges for n vertices; guards against impossible requests.
std::uint64_t MaxEdges(VertexId n) {
  return static_cast<std::uint64_t>(n) * (n - 1) / 2;
}

}  // namespace

EdgeList ErdosRenyiGnm(VertexId n, std::size_t m, Rng& rng) {
  CHECK_GE(n, 2u);
  CHECK_LE(m, MaxEdges(n)) << "G(n,m) request exceeds complete graph";
  EdgeList list(n);
  std::unordered_set<std::uint64_t, Mix64Hash> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const VertexId a = static_cast<VertexId>(rng.UniformInt(n));
    const VertexId b = static_cast<VertexId>(rng.UniformInt(n));
    if (a == b) continue;
    if (seen.insert(PairKey(a, b)).second) list.Add(a, b);
  }
  list.Finalize();
  return list;
}

EdgeList ErdosRenyiGnp(VertexId n, double p, Rng& rng) {
  CHECK_GE(n, 2u);
  CHECK_GE(p, 0.0);
  CHECK_LE(p, 1.0);
  EdgeList list(n);
  if (p <= 0.0) {
    list.Finalize();
    return list;
  }
  if (p >= 1.0) {
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) list.Add(u, v);
    }
    list.Finalize();
    return list;
  }
  // Geometric skipping over the lexicographic enumeration of pairs.
  const double log1mp = std::log1p(-p);
  std::uint64_t index = 0;  // Next candidate pair index.
  const std::uint64_t total = MaxEdges(n);
  while (true) {
    const double u = 1.0 - rng.UniformDouble();  // (0, 1].
    const std::uint64_t skip =
        static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
    index += skip;
    if (index >= total) break;
    // Decode pair index -> (row, col) in the upper triangle.
    // Row r occupies indices [r*n - r*(r+1)/2, ...) of length n-1-r.
    VertexId r = 0;
    std::uint64_t rem = index;
    // Binary search the row.
    VertexId lo = 0, hi = n - 1;
    while (lo < hi) {
      const VertexId mid = lo + (hi - lo) / 2;
      const std::uint64_t start =
          static_cast<std::uint64_t>(mid) * n -
          static_cast<std::uint64_t>(mid) * (mid + 1) / 2;
      if (start <= index) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    r = lo - 1;
    rem = index - (static_cast<std::uint64_t>(r) * n -
                   static_cast<std::uint64_t>(r) * (r + 1) / 2);
    const VertexId c = static_cast<VertexId>(r + 1 + rem);
    list.Add(r, c);
    ++index;
  }
  list.Finalize();
  return list;
}

EdgeList BarabasiAlbert(VertexId n, std::size_t edges_per_vertex, Rng& rng) {
  CHECK_GE(edges_per_vertex, 1u);
  CHECK_GT(n, edges_per_vertex);
  EdgeList list(n);
  // `targets` holds one entry per edge endpoint: sampling uniformly from it
  // is sampling proportionally to degree.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(2 * n * edges_per_vertex);
  // Seed: a star among the first m0+1 vertices so the pool is non-empty.
  const VertexId m0 = static_cast<VertexId>(edges_per_vertex);
  for (VertexId v = 1; v <= m0; ++v) {
    list.Add(0, v);
    endpoint_pool.push_back(0);
    endpoint_pool.push_back(v);
  }
  std::unordered_set<VertexId> picked;
  for (VertexId v = m0 + 1; v < n; ++v) {
    picked.clear();
    while (picked.size() < edges_per_vertex) {
      const VertexId target =
          endpoint_pool[rng.UniformInt(endpoint_pool.size())];
      if (target != v) picked.insert(target);
    }
    for (VertexId target : picked) {
      list.Add(v, target);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(target);
    }
  }
  list.Finalize();
  return list;
}

EdgeList ChungLuPowerLaw(VertexId n, double avg_degree, double beta,
                         Rng& rng) {
  CHECK_GE(n, 2u);
  CHECK_GT(beta, 2.0);
  // Power-law weights w_i ∝ (i + i0)^{-1/(beta-1)}, descending in i, scaled
  // to hit the requested average degree.
  const double exponent = -1.0 / (beta - 1.0);
  std::vector<double> w(n);
  double sum = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    w[i] = std::pow(static_cast<double>(i) + 1.0, exponent);
    sum += w[i];
  }
  const double scale = avg_degree * static_cast<double>(n) / sum;
  for (auto& wi : w) wi *= scale;
  sum *= scale;

  // Miller–Hagberg style sampling: weights are sorted descending, so for
  // fixed i the probabilities p_ij = min(1, w_i w_j / S) are non-increasing
  // in j; sample with geometric skips at rate q = p(i, j_current), accepting
  // with probability p_ij / q.
  EdgeList list(n);
  for (VertexId i = 0; i + 1 < n; ++i) {
    VertexId j = i + 1;
    double p = std::min(1.0, w[i] * w[j] / sum);
    while (j < n && p > 0.0) {
      if (p < 1.0) {
        const double u = 1.0 - rng.UniformDouble();
        const double skip = std::floor(std::log(u) / std::log1p(-p));
        // Guard against inf/NaN for very small p.
        if (!(skip >= 0.0) || skip > static_cast<double>(n)) break;
        j += static_cast<VertexId>(skip);
      }
      if (j >= n) break;
      const double pj = std::min(1.0, w[i] * w[j] / sum);
      if (rng.UniformDouble() < pj / p) list.Add(i, j);
      p = pj;
      ++j;
    }
  }
  list.Finalize();
  return list;
}

EdgeList CompleteBipartite(VertexId a, VertexId b) {
  CHECK_GE(a, 1u);
  CHECK_GE(b, 1u);
  EdgeList list(a + b);
  for (VertexId i = 0; i < a; ++i) {
    for (VertexId j = 0; j < b; ++j) list.Add(i, a + j);
  }
  list.Finalize();
  return list;
}

EdgeList Grid2d(VertexId rows, VertexId cols) {
  CHECK_GE(rows, 1u);
  CHECK_GE(cols, 1u);
  EdgeList list(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) list.Add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) list.Add(id(r, c), id(r + 1, c));
    }
  }
  list.Finalize();
  return list;
}

EdgeList PlantTriangles(EdgeList base, std::size_t count, Rng& rng) {
  (void)rng;
  VertexId next = base.num_vertices();
  for (std::size_t i = 0; i < count; ++i) {
    base.Add(next, next + 1);
    base.Add(next + 1, next + 2);
    base.Add(next, next + 2);
    next += 3;
  }
  base.Finalize();
  return base;
}

EdgeList PlantBook(EdgeList base, std::size_t pages, Rng& rng) {
  (void)rng;
  CHECK_GE(pages, 1u);
  const VertexId u = base.num_vertices();
  const VertexId v = u + 1;
  base.Add(u, v);
  for (std::size_t p = 0; p < pages; ++p) {
    const VertexId w = v + 1 + static_cast<VertexId>(p);
    base.Add(u, w);
    base.Add(v, w);
  }
  base.Finalize();
  return base;
}

EdgeList PlantDiamonds(EdgeList base, const std::vector<DiamondSpec>& specs,
                       Rng& rng) {
  (void)rng;
  VertexId next = base.num_vertices();
  for (const DiamondSpec& spec : specs) {
    CHECK_GE(spec.size, 2u);
    for (std::size_t c = 0; c < spec.count; ++c) {
      const VertexId u = next;
      const VertexId v = next + 1;
      next += 2;
      for (std::uint32_t h = 0; h < spec.size; ++h) {
        const VertexId w = next++;
        base.Add(u, w);
        base.Add(v, w);
      }
    }
  }
  base.Finalize();
  return base;
}

EdgeList PlantFourCycles(EdgeList base, std::size_t count, Rng& rng) {
  (void)rng;
  VertexId next = base.num_vertices();
  for (std::size_t i = 0; i < count; ++i) {
    base.Add(next, next + 1);
    base.Add(next + 1, next + 2);
    base.Add(next + 2, next + 3);
    base.Add(next, next + 3);
    next += 4;
  }
  base.Finalize();
  return base;
}

EdgeList PlantTheta(EdgeList base, std::size_t k, Rng& rng) {
  (void)rng;
  CHECK_GE(k, 2u);
  const VertexId u = base.num_vertices();
  const VertexId v = u + 1;
  const VertexId x0 = v + 1;
  const VertexId y0 = x0 + static_cast<VertexId>(k);
  base.Add(u, v);
  for (std::size_t i = 0; i < k; ++i) {
    const VertexId xi = x0 + static_cast<VertexId>(i);
    const VertexId yi = y0 + static_cast<VertexId>(i);
    const VertexId yi1 = y0 + static_cast<VertexId>((i + 1) % k);
    base.Add(u, xi);
    base.Add(v, yi);
    base.Add(xi, yi);
    base.Add(xi, yi1);
  }
  base.Finalize();
  return base;
}

EdgeList FourCycleFreeRandom(VertexId n, std::size_t target_m,
                             bool also_triangle_free, Rng& rng) {
  CHECK_GE(n, 2u);
  // Greedy insertion with incremental adjacency sets; an edge (u,v) closes a
  // 4-cycle iff u and some neighbor of v already share a neighbor, i.e. iff
  // there is a path of length 3 between u and v; it closes a triangle iff
  // they share a neighbor. Both are checked against the partial graph.
  std::vector<std::unordered_set<VertexId>> adj(n);
  EdgeList list(n);
  std::size_t added = 0;
  // Bound attempts so dense/impossible requests terminate.
  const std::size_t max_attempts = 64 * (target_m + 16);
  std::size_t attempts = 0;
  auto share_neighbor = [&adj](VertexId a, VertexId b) {
    const auto& sa = adj[a].size() <= adj[b].size() ? adj[a] : adj[b];
    const auto& sb = adj[a].size() <= adj[b].size() ? adj[b] : adj[a];
    for (VertexId w : sa) {
      if (sb.count(w)) return true;
    }
    return false;
  };
  while (added < target_m && attempts < max_attempts) {
    ++attempts;
    const VertexId a = static_cast<VertexId>(rng.UniformInt(n));
    const VertexId b = static_cast<VertexId>(rng.UniformInt(n));
    if (a == b || adj[a].count(b)) continue;
    if (also_triangle_free && share_neighbor(a, b)) continue;
    // Path of length 3: some neighbor w of b has a common neighbor with a
    // (other than b), or a and b share two neighbors (C4 via a wedge pair).
    bool closes_c4 = false;
    // a - x - w - b with x in Γ(a), w in Γ(b), (x,w) edge.
    for (VertexId w : adj[b]) {
      if (w == a) continue;
      for (VertexId x : adj[w]) {
        if (x != b && x != a && adj[a].count(x)) {
          closes_c4 = true;
          break;
        }
      }
      if (closes_c4) break;
    }
    // Two common neighbors would make (a,b) a diamond diagonal; the C4
    // a-x-b-y exists already only if (a,b) need not be an edge — adding the
    // edge (a,b) does not create that cycle, so no extra check needed.
    if (closes_c4) continue;
    adj[a].insert(b);
    adj[b].insert(a);
    list.Add(a, b);
    ++added;
  }
  list.Finalize();
  return list;
}

EdgeList DisjointUnion(const std::vector<EdgeList>& parts) {
  EdgeList out;
  VertexId offset = 0;
  for (const EdgeList& part : parts) {
    for (const Edge& e : part.edges()) {
      out.Add(offset + e.u, offset + e.v);
    }
    offset += part.num_vertices();
    out.EnsureVertices(offset);
  }
  out.Finalize();
  return out;
}

EdgeList RandomTree(VertexId n, Rng& rng) {
  CHECK_GE(n, 1u);
  EdgeList list(n);
  for (VertexId v = 1; v < n; ++v) {
    list.Add(v, static_cast<VertexId>(rng.UniformInt(v)));
  }
  list.Finalize();
  return list;
}

EdgeList WattsStrogatz(VertexId n, std::uint32_t k, double beta, Rng& rng) {
  CHECK_GE(n, 4u);
  CHECK_EQ(k % 2, 0u);
  CHECK_GE(k, 2u);
  CHECK_LT(k, n);
  CHECK_GE(beta, 0.0);
  CHECK_LE(beta, 1.0);
  std::unordered_set<std::uint64_t, Mix64Hash> present;
  EdgeList list(n);
  auto try_add = [&](VertexId a, VertexId b) {
    if (a == b) return false;
    if (!present.insert(PairKey(a, b)).second) return false;
    list.Add(a, b);
    return true;
  };
  for (VertexId v = 0; v < n; ++v) {
    for (std::uint32_t j = 1; j <= k / 2; ++j) {
      const VertexId nbr = static_cast<VertexId>((v + j) % n);
      if (rng.Bernoulli(beta)) {
        // Rewire: pick a fresh uniform far endpoint (retry on collisions).
        bool added = false;
        for (int attempt = 0; attempt < 32 && !added; ++attempt) {
          added = try_add(v, static_cast<VertexId>(rng.UniformInt(n)));
        }
        if (!added) try_add(v, nbr);  // Fall back to the lattice edge.
      } else {
        try_add(v, nbr);
      }
    }
  }
  list.Finalize();
  return list;
}

}  // namespace cyclestream
