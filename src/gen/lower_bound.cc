#include "gen/lower_bound.h"

#include <numeric>
#include <vector>

#include "util/check.h"

namespace cyclestream {

TriangleGadget MakeTriangleLowerBoundGadget(VertexId n, std::uint64_t t,
                                            bool planted_bit, Rng& rng) {
  CHECK_GE(n, 2u);
  CHECK_GE(t, 1u);
  TriangleGadget gadget;
  gadget.planted_bit = planted_bit;
  gadget.expected_triangles = planted_bit ? t : 0;

  const VertexId w_base = 2 * n;
  const std::uint64_t w_count = 2ull * n * t;
  EdgeList list(static_cast<VertexId>(w_base + w_count));

  // Random disjoint neighborhoods in W: shuffle W and hand out consecutive
  // blocks of size T. u_{i*} and v_{j*} receive the *same* block.
  std::vector<VertexId> w_pool(w_count);
  std::iota(w_pool.begin(), w_pool.end(), w_base);
  rng.Shuffle(w_pool);

  const VertexId i_star = static_cast<VertexId>(rng.UniformInt(n));
  const VertexId j_star = static_cast<VertexId>(rng.UniformInt(n));
  gadget.u_star = i_star;
  gadget.v_star = static_cast<VertexId>(n + j_star);

  std::size_t next_block = 0;
  auto take_block = [&]() {
    const std::size_t start = next_block * t;
    next_block++;
    CHECK_LE(start + t, w_pool.size());
    return start;
  };

  // U side: every u_i gets a fresh block; remember u_{i*}'s block.
  std::size_t star_block_start = 0;
  for (VertexId i = 0; i < n; ++i) {
    const std::size_t start = take_block();
    if (i == i_star) star_block_start = start;
    for (std::uint64_t z = 0; z < t; ++z) {
      list.Add(i, w_pool[start + z]);
    }
  }
  // V side: v_{j*} mirrors u_{i*}'s neighborhood, everyone else fresh.
  for (VertexId j = 0; j < n; ++j) {
    const VertexId vj = static_cast<VertexId>(n + j);
    const std::size_t start = (j == j_star) ? star_block_start : take_block();
    for (std::uint64_t z = 0; z < t; ++z) {
      list.Add(vj, w_pool[start + z]);
    }
  }

  // Random bipartite pattern E_x with the starred entry forced.
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = 0; j < n; ++j) {
      bool bit;
      if (i == i_star && j == j_star) {
        bit = planted_bit;
      } else {
        bit = rng.Bernoulli(0.5);
      }
      if (bit) list.Add(i, static_cast<VertexId>(n + j));
    }
  }

  list.Finalize();
  gadget.graph = std::move(list);
  return gadget;
}

FourCycleGadget MakeFourCycleLowerBoundGadget(std::uint32_t num_groups,
                                              std::uint32_t k, double density,
                                              bool intersecting, Rng& rng) {
  CHECK_GE(num_groups, 1u);
  CHECK_GE(k, 2u);
  FourCycleGadget gadget;
  gadget.u = 0;
  gadget.w = 1;
  gadget.intersecting = intersecting;

  std::vector<bool> s1(num_groups), s2(num_groups);
  for (std::uint32_t i = 0; i < num_groups; ++i) {
    s1[i] = rng.Bernoulli(density);
    s2[i] = rng.Bernoulli(density);
    if (s1[i] && s2[i]) s2[i] = false;  // Keep the base strings disjoint.
  }
  if (intersecting) {
    const std::uint32_t shared =
        static_cast<std::uint32_t>(rng.UniformInt(num_groups));
    s1[shared] = true;
    s2[shared] = true;
    gadget.expected_four_cycles =
        static_cast<std::uint64_t>(k) * (k - 1) / 2;
  } else {
    gadget.expected_four_cycles = 0;
  }

  EdgeList list(static_cast<VertexId>(2 + num_groups * k));
  for (std::uint32_t i = 0; i < num_groups; ++i) {
    const VertexId group_base = static_cast<VertexId>(2 + i * k);
    for (std::uint32_t z = 0; z < k; ++z) {
      if (s1[i]) list.Add(gadget.u, group_base + z);
      if (s2[i]) list.Add(gadget.w, group_base + z);
    }
  }
  list.Finalize();
  gadget.graph = std::move(list);
  return gadget;
}

}  // namespace cyclestream
