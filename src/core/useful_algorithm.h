#ifndef CYCLESTREAM_CORE_USEFUL_ALGORITHM_H_
#define CYCLESTREAM_CORE_USEFUL_ALGORITHM_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "graph/types.h"

namespace cyclestream {

class StateWriter;
class StateReader;

/// The "Useful Algorithm" of §3: estimates the total edge weight W of a
/// weighted graph G' = (V', E') (weights in [1, λ]) observed as a *vertex*
/// stream in which, on the arrival of vertex v, all edges between v and the
/// pre-sampled vertex sets R1, R2 are revealed. R1 and R2 are independent
/// p-samples of V'.
///
/// Guarantees (Lemma 3.1, w.h.p., for p ≥ λ·c·log n / (ε²√M)):
///   a. if W ≤ M then the returned Ŵ = W ± εM,
///   b. if Ŵ < M then W ≤ 2M,
///   c. if Ŵ ≥ M then W ≥ M/2.
///
/// Mechanics: every edge is directed toward its earlier endpoint, so
/// Σ_v w_in(v) = W. Edges into R1 classify vertices as heavy
/// (w_in_1(v) ≥ p√M) or light at their arrival; edges into R2 estimate the
/// total light in-weight (AL) and, for heavy vertices in R2, the exact
/// in-weight via dedicated counters (the a(v) of the paper). The two
/// independent sets exist purely to decouple the classification from the
/// estimation.
///
/// The caller drives the stream: one OnVertex call per arriving vertex, with
/// the incident edges to R1 ∪ R2. The caller owns the sampling of R1/R2 (it
/// knows the vertex universe); this class only needs the membership flags on
/// each revealed edge and on the arriving vertex itself.
class UsefulAlgorithm {
 public:
  struct Config {
    double p = 1.0;        // Sampling probability of R1 and R2.
    double m_cap = 1.0;    // The scale M.
    /// When true, the caller supplies each revealed edge's
    /// `neighbor_arrived` flag and this instance keeps no seen-set of its
    /// own. Callers running many parallel instances over the same vertex
    /// stream (the §4.1 size classes) share one arrival bitmap this way
    /// instead of paying |R| marks per instance.
    bool external_arrivals = false;
  };

  explicit UsefulAlgorithm(const Config& config);

  /// One revealed edge between the arriving vertex and u ∈ R1 ∪ R2.
  struct IncidentEdge {
    std::uint64_t neighbor = 0;  // Key of u.
    double weight = 1.0;         // w(vu) ∈ [1, λ].
    bool in_r1 = false;
    bool in_r2 = false;          // Not mutually exclusive with in_r1.
    bool neighbor_arrived = false;  // Used only with external_arrivals.
  };

  /// Processes the arrival of vertex `v_key`. `edges` lists every edge
  /// between v and R1 ∪ R2 (regardless of whether the neighbor has already
  /// arrived — the algorithm tracks arrivals itself). The v_in_r* flags give
  /// v's own membership.
  void OnVertex(std::uint64_t v_key, bool v_in_r1, bool v_in_r2,
                std::span<const IncidentEdge> edges);

  /// Ŵ = (AL + AH) / p.
  double Estimate() const;

  /// Heavy-classification decision for the whole observed graph: Ŵ ≥ M.
  bool IsHeavy() const { return Estimate() >= config_.m_cap; }

  /// Words retained: seen-marks for R-vertices (internal mode only) plus
  /// one counter per tracked heavy vertex plus the global counters.
  std::size_t SpaceWords() const;

  std::size_t NumTrackedHeavy() const { return heavy_in_r2_.size(); }

  /// Checkpoint serialization. The restore verifies the config fingerprint
  /// before touching any member; `heavy_in_r2_` round-trips with its exact
  /// iteration order because Estimate() subtracts the tracked counters in
  /// that order.
  void SaveState(StateWriter& w) const;
  bool RestoreState(StateReader& r);

 private:
  Config config_;
  double heavy_threshold_ = 0.0;  // p√M.

  std::unordered_set<std::uint64_t, Mix64Hash> seen_r_;   // Arrived R-vertices.
  std::unordered_map<std::uint64_t, double, Mix64Hash> heavy_in_r2_;  // a(v).
  double a_total_ = 0.0;   // A : Σ w_out_2(v).
  double a_heavy_ = 0.0;   // AH: Σ over heavy v of w_in_2(v).
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_USEFUL_ALGORITHM_H_
