#include "core/arb_three_pass.h"

#include <algorithm>
#include <cmath>

#include "hash/rng.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

using AdjMap = std::unordered_map<VertexId, std::vector<VertexId>>;

void WriteAdjMap(StateWriter& w, const AdjMap& m) {
  WriteUnordered(w, m, [](StateWriter& sw, const auto& kv) {
    sw.U32(kv.first);
    sw.Vec(kv.second);
  });
}

bool ReadAdjMap(StateReader& r, AdjMap* m) {
  std::size_t buckets = 0;
  std::vector<std::pair<VertexId, std::vector<VertexId>>> elems;
  if (!ReadUnordered(r, &buckets, &elems, [](StateReader& sr) {
        std::pair<VertexId, std::vector<VertexId>> kv;
        kv.first = sr.U32();
        sr.Vec(&kv.second);
        return kv;
      })) {
    return false;
  }
  RestoreUnorderedOrder(*m, buckets, elems, [](AdjMap& c, const auto& kv) {
    c.emplace(kv.first, kv.second);
  });
  return true;
}

// Order-sensitive 64-bit mix for dedup keys over pairs of edge keys.
std::uint64_t MixPair(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL;
  x ^= (b + 0x165667b19e3779f9ULL) + (x << 6) + (x >> 2);
  x *= 0xbf58476d1ce4e5b9ULL;
  return x ^ (x >> 29);
}

}  // namespace

ArbThreePassFourCycleCounter::ArbThreePassFourCycleCounter(
    const Params& params)
    : params_(params),
      s0_hash_(8, params.base.seed ^ 0x5330ULL),
      q1_hash_(8, params.base.seed ^ 0x5131ULL),
      q2_hash_(8, params.base.seed ^ 0x5132ULL),
      sub_hash_(8, params.base.seed ^ 0x5347ULL) {
  CHECK_GE(params.num_vertices, 2u);
  CHECK_GT(params.base.epsilon, 0.0);
  CHECK_GE(params.base.t_guess, 1.0);
  CHECK_GT(params.eta, 0.0);

  const double eps = params.base.epsilon;
  const double log_n =
      std::log2(static_cast<double>(params.num_vertices) + 2.0);
  p_ = std::min(1.0, params.rate_scale * params.base.c * log_n /
                         (eps * eps * std::pow(params.base.t_guess, 0.25)));

  // The paper's q: p(0.4+q)² = q, so both copies of a doubly-incident
  // sampled vertex enter R with probability exactly (p(0.4+q))² — restoring
  // the independence the Useful Algorithm assumes. Real solutions require
  // p ≲ 0.55; above that, saturate q at its 0.2 cap (the residual pair
  // correlation only perturbs constants, and p that large means we are in a
  // near-exhaustive regime anyway).
  const double disc = (1.0 - 0.8 * p_) * (1.0 - 0.8 * p_) - 0.64 * p_ * p_;
  if (p_ < 0.5 && disc >= 0.0) {
    subsample_q_ = ((1.0 - 0.8 * p_) - std::sqrt(disc)) / (2.0 * p_);
    subsample_q_ = std::clamp(subsample_q_, 0.0, 0.2);
  } else {
    subsample_q_ = 0.2;
  }
  p_prime_ = p_ * (0.4 + subsample_q_);
  m_cap_ = params.eta * std::sqrt(params.base.t_guess);
}

void ArbThreePassFourCycleCounter::StartPass(int pass,
                                             std::size_t stream_length) {
  (void)stream_length;
  if (pass == 2 && params_.use_oracle) PreparePassThree();
}

void ArbThreePassFourCycleCounter::ProcessEdge(int pass, const Edge& e,
                                               std::size_t position) {
  switch (pass) {
    case 0: {
      if (InS0(e)) {
        if (s0_set_.insert(e.Key()).second) {
          s0_adj_[e.u].push_back(e.v);
          s0_adj_[e.v].push_back(e.u);
        }
      }
      auto collect = [this, &e](bool in_q_u, bool in_q_v,
                                std::unordered_map<
                                    VertexId, std::vector<VertexId>>& rev,
                                std::unordered_set<std::uint64_t, Mix64Hash>&
                                    edge_set,
                                std::size_t& size) {
        if (!in_q_u && !in_q_v) return;
        if (!edge_set.insert(e.Key()).second) return;
        ++size;
        // Reverse index: far vertex -> sampled vertices adjacent to it.
        if (in_q_u) rev[e.v].push_back(e.u);
        if (in_q_v) rev[e.u].push_back(e.v);
      };
      collect(InQ1(e.u), InQ1(e.v), s1_rev_, s1_edges_, s1_size_);
      collect(InQ2(e.u), InQ2(e.v), s2_rev_, s2_edges_, s2_size_);
      break;
    }
    case 1: {
      if (cycle_cap_hit_) break;
      // Does e = (u,v) close a 3-path u - x - w - v inside S0?
      auto iu = s0_adj_.find(e.u);
      auto iv = s0_adj_.find(e.v);
      if (iu == s0_adj_.end() || iv == s0_adj_.end()) break;
      for (VertexId x : iu->second) {
        if (x == e.v) continue;
        for (VertexId w : iv->second) {
          if (w == e.u || w == x || w == e.v || x == e.u) continue;
          if (s0_set_.count(Edge(x, w).Key()) == 0) continue;
          StoredCycle cycle;
          cycle.witness = e;
          cycle.others[0] = Edge(e.u, x);
          cycle.others[1] = Edge(x, w);
          cycle.others[2] = Edge(w, e.v);
          cycles_.push_back(cycle);
          if (params_.max_stored_cycles > 0 &&
              cycles_.size() >= params_.max_stored_cycles) {
            cycle_cap_hit_ = true;
            LOG(WARNING) << "stored-cycle cap reached ("
                         << params_.max_stored_cycles
                         << "); estimate will be truncated";
          }
        }
        if (cycle_cap_hit_) break;
      }
      break;
    }
    case 2: {
      if (!params_.use_oracle) break;
      // (1) H_f vertex arrival: edges touching any target endpoint.
      const bool touches_u = targets_by_endpoint_.count(e.u) > 0;
      const bool touches_v = targets_by_endpoint_.count(e.v) > 0;
      if (touches_u || touches_v) {
        arrivals_.emplace(e.Key(), position);
      }
      // (2) Certificate witness bookkeeping: remember edges incident to any
      // R-member far endpoint (shared across targets).
      if (far_vertices_.count(e.u) > 0 || far_vertices_.count(e.v) > 0) {
        far_incident_.insert(e.Key());
      }
      // (3) e as the closing edge (c,d): records the H_f edge when its g1
      // endpoint arrived earlier.
      auto certify = [this](VertexId far, VertexId other) {
        auto it = rmembers_by_far_.find(far);
        if (it == rmembers_by_far_.end()) return;
        for (const RMemberRef& ref : it->second) {
          const Edge& f = targets_[ref.target_idx].f;
          if (other == f.u || other == f.v) continue;  // Degenerate cycle.
          const VertexId member_side =
              ref.member.Touches(f.u) ? f.u : f.v;
          const VertexId g1_side = member_side == f.u ? f.v : f.u;
          const Edge g1(g1_side, other);
          if (g1 == f) continue;
          if (arrivals_.count(g1.Key()) == 0) continue;  // Handled in (4).
          Target::Observation obs;
          obs.g1_key = g1.Key();
          obs.g2_key = ref.member.Key();
          obs.g2_in_r1 = ref.in_r1;
          obs.g2_in_r2 = ref.in_r2;
          Target& target = targets_[ref.target_idx];
          if (target.seen_pairs.insert(MixPair(obs.g1_key, obs.g2_key))
                  .second) {
            target.observations.push_back(obs);
          }
        }
      };
      certify(e.u, e.v);
      certify(e.v, e.u);
      // (4) e as the H_f vertex g1 = (gs, c) whose closing edge (c, d)
      // arrived earlier: pair it with each R-member on the other side of
      // every target at gs.
      auto late_g1 = [this, &e](VertexId gs, VertexId c) {
        auto targets_it = targets_by_endpoint_.find(gs);
        if (targets_it == targets_by_endpoint_.end()) return;
        for (const std::size_t target_idx : targets_it->second) {
          Target& target = targets_[target_idx];
          const Edge& f = target.f;
          if (c == f.u || c == f.v) continue;  // e is f itself or degenerate.
          const int other_side_index = gs == f.u ? 1 : 0;
          auto refs_it = refs_by_target_side_.find(f.Key());
          if (refs_it == refs_by_target_side_.end()) continue;
          for (const SideRef& ref : refs_it->second[other_side_index]) {
            const VertexId member_side =
                other_side_index == 0 ? f.u : f.v;
            const VertexId d = ref.member.Other(member_side);
            if (d == c) continue;  // Degenerate.
            if (far_incident_.count(Edge(c, d).Key()) == 0) continue;
            Target::Observation obs;
            obs.g1_key = e.Key();
            obs.g2_key = ref.member.Key();
            obs.g2_in_r1 = ref.in_r1;
            obs.g2_in_r2 = ref.in_r2;
            if (target.seen_pairs.insert(MixPair(obs.g1_key, obs.g2_key))
                    .second) {
              target.observations.push_back(obs);
            }
          }
        }
      };
      if (touches_u) late_g1(e.u, e.v);
      if (touches_v) late_g1(e.v, e.u);
      break;
    }
    default:
      CHECK(false) << "unexpected pass " << pass;
  }

  if ((position & 0xff) == 0) UpdateSpace();
}

void ArbThreePassFourCycleCounter::UpdateSpace() {
  // far_incident first: it is the only component that shrinks (EndPass
  // drops it), and folding the shrink before the other components' growth
  // keeps every intermediate total bounded by the true before/after sums —
  // otherwise a transient mix (grown arrivals + stale far_incident) would
  // register as a phantom peak.
  space_.SetComponent("far_incident", far_incident_.size());
  space_.SetComponent("s0", 2 * s0_set_.size());
  space_.SetComponent("s1_s2", 2 * (s1_size_ + s2_size_));
  space_.SetComponent("cycles", 8 * cycles_.size());
  space_.SetComponent("arrivals", 2 * arrivals_.size());
  std::size_t obs_words = 0;
  for (const Target& target : targets_) {
    obs_words += 4 * target.observations.size();
  }
  space_.SetComponent("observations", obs_words);
}

std::size_t ArbThreePassFourCycleCounter::AuditSpace() const {
  // Walks the real containers. Deliberately sizes S1/S2 from the edge sets
  // themselves, not the s1_size_/s2_size_ counters the accounting uses —
  // the audit exists to catch exactly that kind of counter drift.
  std::size_t words = 2 * s0_set_.size() +
                      2 * (s1_edges_.size() + s2_edges_.size()) +
                      8 * cycles_.size() + 2 * arrivals_.size() +
                      far_incident_.size();
  for (const Target& target : targets_) {
    words += 4 * target.observations.size();
  }
  return words;
}

bool ArbThreePassFourCycleCounter::SubsampleKeep(std::size_t target_idx,
                                                 int which_r, VertexId v,
                                                 int side, bool both) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(v) << 20) ^
      (static_cast<std::uint64_t>(target_idx) * 0x100000001b3ULL) ^
      (static_cast<std::uint64_t>(which_r) << 62);
  const double u = sub_hash_.ToUnit(key);
  if (both) {
    // f(v,e): 0 -> first copy, 1 -> second, 2 -> both, 3 -> neither.
    if (u < 0.4) return side == 0;
    if (u < 0.8) return side == 1;
    if (u < 0.8 + subsample_q_) return true;
    return false;
  }
  // g(v,e): keep with probability 0.4 + q.
  return u < 0.4 + subsample_q_;
}

void ArbThreePassFourCycleCounter::RMembership(std::size_t target_idx,
                                               const Edge& g, bool* in_r1,
                                               bool* in_r2) const {
  const Edge& f = targets_[target_idx].f;
  const VertexId side_vertex = g.Touches(f.u) ? f.u : f.v;
  const VertexId v = g.Other(side_vertex);
  const int side = side_vertex == f.u ? 0 : 1;
  const VertexId other_side = side_vertex == f.u ? f.v : f.u;
  *in_r1 = false;
  *in_r2 = false;
  if (v == f.u || v == f.v) return;  // "Vertex involved in e itself": ignore.
  if (InQ1(v)) {
    const bool both = s1_edges_.count(Edge(v, other_side).Key()) > 0;
    *in_r1 = SubsampleKeep(target_idx, 1, v, side, both);
  }
  if (InQ2(v)) {
    const bool both = s2_edges_.count(Edge(v, other_side).Key()) > 0;
    *in_r2 = SubsampleKeep(target_idx, 2, v, side, both);
  }
}

void ArbThreePassFourCycleCounter::PreparePassThree() {
  oracle_prepared_ = true;
  targets_.clear();
  target_index_.clear();
  targets_by_endpoint_.clear();
  rmembers_by_far_.clear();
  arrivals_.clear();
  far_incident_.clear();
  far_vertices_.clear();
  refs_by_target_side_.clear();

  auto add_target = [this](const Edge& f) {
    if (target_index_.count(f.Key()) > 0) return;
    const std::size_t idx = targets_.size();
    target_index_.emplace(f.Key(), idx);
    Target target;
    target.f = f;
    targets_.push_back(std::move(target));
    targets_by_endpoint_[f.u].push_back(idx);
    targets_by_endpoint_[f.v].push_back(idx);
  };
  for (const StoredCycle& cycle : cycles_) {
    add_target(cycle.witness);
    for (const Edge& g : cycle.others) add_target(g);
  }

  // Enumerate R-members per target: H_f vertices (v, c), c ∈ {f.u, f.v},
  // with v in Q1/Q2 surviving the f/g subsampling. Indexed by far endpoint
  // v so closing edges can find them in O(1).
  for (std::size_t idx = 0; idx < targets_.size(); ++idx) {
    const Edge f = targets_[idx].f;
    for (const VertexId c : {f.u, f.v}) {
      auto consider = [&](const std::unordered_map<
                          VertexId, std::vector<VertexId>>& rev) {
        auto it = rev.find(c);
        if (it == rev.end()) return;
        for (VertexId v : it->second) {
          if (v == f.u || v == f.v) continue;
          const Edge member(v, c);
          bool in_r1 = false, in_r2 = false;
          RMembership(idx, member, &in_r1, &in_r2);
          if (!in_r1 && !in_r2) continue;
          // Merge duplicate refs for the same member (v may be in both
          // reverse indexes).
          auto& refs = rmembers_by_far_[v];
          bool merged = false;
          for (RMemberRef& ref : refs) {
            if (ref.target_idx == idx && ref.member == member) {
              ref.in_r1 = ref.in_r1 || in_r1;
              ref.in_r2 = ref.in_r2 || in_r2;
              merged = true;
              break;
            }
          }
          if (!merged) refs.push_back(RMemberRef{idx, member, in_r1, in_r2});
          far_vertices_.insert(v);
          // Side-indexed view for the late-g1 path.
          const int side_index = c == f.u ? 0 : 1;
          auto& side_refs = refs_by_target_side_[f.Key()][side_index];
          bool side_merged = false;
          for (SideRef& sr : side_refs) {
            if (sr.member == member) {
              sr.in_r1 = sr.in_r1 || in_r1;
              sr.in_r2 = sr.in_r2 || in_r2;
              side_merged = true;
              break;
            }
          }
          if (!side_merged) side_refs.push_back(SideRef{member, in_r1, in_r2});
        }
      };
      consider(s1_rev_);
      consider(s2_rev_);
    }
  }
}

void ArbThreePassFourCycleCounter::FinishOracles() {
  std::unordered_map<std::uint64_t, bool, Mix64Hash> heavy_by_edge;
  for (Target& target : targets_) {
    // Assemble the H_f vertex set (edges of G) with arrival positions and
    // per-vertex reveal lists, then replay the §3 recurrence in order.
    struct HVertex {
      std::size_t position = 0;
      bool in_r1 = false, in_r2 = false;
      std::vector<UsefulAlgorithm::IncidentEdge> reveals;
    };
    std::unordered_map<std::uint64_t, HVertex, Mix64Hash> vertices;
    auto vertex_slot = [&](std::uint64_t key) -> HVertex& {
      auto [it, inserted] = vertices.try_emplace(key);
      if (inserted) {
        auto pos_it = arrivals_.find(key);
        CHECK(pos_it != arrivals_.end()) << "H_f vertex never arrived";
        it->second.position = pos_it->second;
        bool r1 = false, r2 = false;
        RMembership(target_index_.at(target.f.Key()), PairFromKey(key), &r1,
                    &r2);
        it->second.in_r1 = r1;
        it->second.in_r2 = r2;
      }
      return it->second;
    };
    for (const Target::Observation& obs : target.observations) {
      HVertex& g1 = vertex_slot(obs.g1_key);
      g1.reveals.push_back(UsefulAlgorithm::IncidentEdge{
          obs.g2_key, 1.0, obs.g2_in_r1, obs.g2_in_r2});
      HVertex& g2 = vertex_slot(obs.g2_key);
      const HVertex& g1_ref = vertices.at(obs.g1_key);
      if (g1_ref.in_r1 || g1_ref.in_r2) {
        g2.reveals.push_back(UsefulAlgorithm::IncidentEdge{
            obs.g1_key, 1.0, g1_ref.in_r1, g1_ref.in_r2});
      }
    }
    std::vector<std::pair<std::uint64_t, const HVertex*>> ordered;
    ordered.reserve(vertices.size());
    for (const auto& [key, hv] : vertices) ordered.emplace_back(key, &hv);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                return a.second->position < b.second->position;
              });
    UsefulAlgorithm useful(UsefulAlgorithm::Config{p_prime_, m_cap_});
    for (const auto& [key, hv] : ordered) {
      useful.OnVertex(key, hv->in_r1, hv->in_r2, hv->reveals);
    }
    target.heavy = useful.Estimate() >= m_cap_;
    heavy_by_edge[target.f.Key()] = target.heavy;
    if (target.heavy) ++diagnostics_.heavy_edges;
  }
  diagnostics_.classified_edges = targets_.size();

  auto is_heavy = [&heavy_by_edge, this](const Edge& e) {
    if (!params_.use_oracle) return false;
    auto it = heavy_by_edge.find(e.Key());
    return it != heavy_by_edge.end() && it->second;
  };
  double a0 = 0.0, a1 = 0.0;
  for (const StoredCycle& cycle : cycles_) {
    const bool witness_heavy = is_heavy(cycle.witness);
    int others_heavy = 0;
    for (const Edge& g : cycle.others) others_heavy += is_heavy(g) ? 1 : 0;
    if (!witness_heavy && others_heavy == 0) {
      a0 += 1.0;
    } else if (witness_heavy && others_heavy == 0) {
      a1 += 1.0;
    }
  }
  diagnostics_.a0 = a0;
  diagnostics_.a1 = a1;
  diagnostics_.stored_cycles = cycles_.size();
  diagnostics_.p = p_;
  const double p3 = p_ * p_ * p_;
  result_.value = a0 / (4.0 * p3) + a1 / p3;
}

void ArbThreePassFourCycleCounter::EndPass(int pass) {
  if (pass == 2 || (!params_.use_oracle && pass == 1)) {
    if (params_.use_oracle) {
      FinishOracles();
    } else {
      double a0 = static_cast<double>(cycles_.size());
      diagnostics_.a0 = a0;
      diagnostics_.stored_cycles = cycles_.size();
      diagnostics_.p = p_;
      result_.value = a0 / (4.0 * p_ * p_ * p_);
    }
    // The certificate-witness set is dead weight once the run is over, and
    // the end-of-run footprint has never counted it — drop the container so
    // the accounting and the audit walk agree on the final state.
    far_incident_.clear();
    UpdateSpace();
    result_.space_words = space_.Peak();
  }
}

bool ArbThreePassFourCycleCounter::SaveState(StateWriter& w) const {
  // Config fingerprint: everything the constructor derives state from.
  // RestoreState verifies these before touching any member, so a snapshot
  // from a differently-parameterized run is rejected without mutation.
  w.U32(params_.num_vertices);
  w.Double(params_.eta);
  w.Double(params_.rate_scale);
  w.Bool(params_.use_oracle);
  w.Size(params_.max_stored_cycles);
  w.Double(params_.base.epsilon);
  w.Double(params_.base.c);
  w.Double(params_.base.t_guess);
  w.U64(params_.base.seed);
  w.Double(p_);
  w.Double(p_prime_);
  w.Double(subsample_q_);
  w.Double(m_cap_);

  // Pass-1 collections (vector orders inside the reverse indexes feed the
  // pass-2/pass-3 enumeration order and must round-trip exactly).
  WriteU64Set(w, s0_set_);
  WriteAdjMap(w, s0_adj_);
  WriteU64Set(w, s1_edges_);
  WriteU64Set(w, s2_edges_);
  WriteAdjMap(w, s1_rev_);
  WriteAdjMap(w, s2_rev_);
  w.Size(s1_size_);
  w.Size(s2_size_);

  // Pass-2 collections.
  w.Vec(cycles_);
  w.Bool(cycle_cap_hit_);

  // Pass-3 oracle state. The derived indexes (targets_, rmembers_by_far_,
  // refs_by_target_side_, ...) are a pure function of the pass-1 state and
  // are rebuilt via PreparePassThree() on restore; only the
  // stream-dependent observations are serialized.
  w.Bool(oracle_prepared_);
  if (oracle_prepared_) {
    WriteUnordered(w, arrivals_, [](StateWriter& sw, const auto& kv) {
      sw.U64(kv.first);
      sw.Size(kv.second);
    });
    WriteU64Set(w, far_incident_);
    w.Size(targets_.size());
    for (const Target& target : targets_) {
      w.U64(target.f.Key());
      w.Size(target.observations.size());
      for (const Target::Observation& obs : target.observations) {
        w.U64(obs.g1_key);
        w.U64(obs.g2_key);
        w.Bool(obs.g2_in_r1);
        w.Bool(obs.g2_in_r2);
      }
      WriteU64Set(w, target.seen_pairs);
    }
  }

  space_.SaveState(w);
  return true;
}

bool ArbThreePassFourCycleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices || r.Double() != params_.eta ||
      r.Double() != params_.rate_scale || r.Bool() != params_.use_oracle ||
      r.Size() != params_.max_stored_cycles ||
      r.Double() != params_.base.epsilon || r.Double() != params_.base.c ||
      r.Double() != params_.base.t_guess || r.U64() != params_.base.seed ||
      r.Double() != p_ || r.Double() != p_prime_ ||
      r.Double() != subsample_q_ || r.Double() != m_cap_ || !r.ok()) {
    return r.Fail();
  }

  if (!ReadU64Set(r, &s0_set_) || !ReadAdjMap(r, &s0_adj_) ||
      !ReadU64Set(r, &s1_edges_) || !ReadU64Set(r, &s2_edges_) ||
      !ReadAdjMap(r, &s1_rev_) || !ReadAdjMap(r, &s2_rev_)) {
    return false;
  }
  s1_size_ = r.Size();
  s2_size_ = r.Size();

  if (!r.Vec(&cycles_)) return false;
  cycle_cap_hit_ = r.Bool();

  oracle_prepared_ = r.Bool();
  if (!r.ok()) return false;
  if (oracle_prepared_) {
    // Rebuild the derived oracle indexes from the restored pass-1 state,
    // then lay the stream-dependent observations back over them.
    PreparePassThree();
    std::size_t buckets = 0;
    std::vector<std::pair<std::uint64_t, std::size_t>> arrival_elems;
    if (!ReadUnordered(r, &buckets, &arrival_elems, [](StateReader& sr) {
          std::pair<std::uint64_t, std::size_t> kv;
          kv.first = sr.U64();
          kv.second = sr.Size();
          return kv;
        })) {
      return false;
    }
    RestoreUnorderedOrder(arrivals_, buckets, arrival_elems,
                          [](auto& c, const auto& kv) {
                            c.emplace(kv.first, kv.second);
                          });
    if (!ReadU64Set(r, &far_incident_)) return false;
    if (r.Size() != targets_.size()) return r.Fail();
    for (Target& target : targets_) {
      if (r.U64() != target.f.Key()) return r.Fail();
      const std::size_t num_obs = r.Size();
      if (!r.ok() || num_obs > r.Remaining()) return r.Fail();
      target.observations.clear();
      target.observations.reserve(num_obs);
      for (std::size_t i = 0; i < num_obs; ++i) {
        Target::Observation obs;
        obs.g1_key = r.U64();
        obs.g2_key = r.U64();
        obs.g2_in_r1 = r.Bool();
        obs.g2_in_r2 = r.Bool();
        target.observations.push_back(obs);
      }
      if (!ReadU64Set(r, &target.seen_pairs)) return false;
    }
  }

  return space_.RestoreState(r);
}

Estimate CountFourCyclesArbThreePass(
    const EdgeStream& stream,
    const ArbThreePassFourCycleCounter::Params& params) {
  ArbThreePassFourCycleCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
