#ifndef CYCLESTREAM_CORE_DIAMOND_COUNTER_H_
#define CYCLESTREAM_CORE_DIAMOND_COUNTER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/useful_algorithm.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// The §4.1 algorithm (Theorem 4.2): two passes over an adjacency-list
/// stream, Õ(ε⁻⁵·m/√T) space, (1+ε)-approximation of the 4-cycle count.
///
/// Core idea: count 4-cycles grouped into *diamonds* — a (u,v)-diamond of
/// size h is the K_{2,h} between {u,v} and h common neighbors and contains
/// C(h,2) 4-cycles. Estimating diamonds by size class (rather than cycles
/// individually) collapses the variance caused by large diamonds.
///
/// Per size class sk (levels k with geometric growth, repeated over
/// O(1/ε) boundary shifts s = (1+ε)^ℓ so no diamond mass is lost at class
/// boundaries):
///   Pass 1: sample two independent vertex sets V¹, V² at rate
///           pv ∝ sk/√T per class, and per sampled vertex sample its
///           incident edges at rate pe ∝ 1/sk (sets E¹, E²).
///   Pass 2: when v's list arrives, a(u,v) = #2-paths u–w–v with uw ∈ E
///           estimates d̂(u,v) = a(u,v)/pe for each sampled u; pairs with
///           d̂ inside the (shift-adjusted) class window form the edges of
///           the weighted graph H_sk (weight ≈ C(d̂,2), normalized), whose
///           total weight the §3 Useful Algorithm estimates with V¹/V² as
///           its R1/R2.
/// The class estimates are summed per shift; the maximum over shifts,
/// halved (each 4-cycle lies in exactly two diamonds), is the answer.
class DiamondFourCycleCounter : public AdjacencyStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    /// Scales pv = min(1, vertex_rate_scale·c·ε⁻²·sk/√T). The paper's rate
    /// carries a log³n factor which saturates at laptop scale; it is folded
    /// into this knob (default 1.0 ⇒ no log factor).
    double vertex_rate_scale = 1.0;
    /// Scales pe = min(1, edge_rate_scale·c·log₂n·ε⁻²/sk).
    double edge_rate_scale = 1.0;
    /// Limits the number of boundary shifts actually run (paper:
    /// ⌈log_{1+ε}2⌉ ≈ 1/ε of them). <= 0 means the full complement.
    int max_shifts = -1;
  };

  explicit DiamondFourCycleCounter(const Params& params);
  ~DiamondFourCycleCounter() override;

  // AdjacencyStreamAlgorithm:
  int NumPasses() const override { return 2; }
  void StartPass(int pass, std::size_t num_lists) override;
  void ProcessList(int pass, const AdjacencyList& list,
                   std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "diamond/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  /// Final estimate; valid after both passes.
  Estimate Result() const { return result_; }

  /// Per-shift sums Σ_k T̂_sk (diagnostics; the result is max/2).
  const std::vector<double>& ShiftEstimates() const { return shift_sums_; }

 private:
  struct ClassInstance;  // One (shift, level) estimator.
  /// Cross-instance shared state: the V¹/V² membership hash banks (one
  /// batched evaluation per list instead of one scalar eval per instance),
  /// and the common reverse index + pass-2 accumulator that every
  /// *saturated* class (pv ≥ 1 and pe ≥ 1 — sampling accepts everything,
  /// so all such classes hold identical samples) shares instead of
  /// rebuilding. Estimates are bit-identical to the per-instance layout;
  /// see the .cc for the argument.
  struct SharedState;

  void UpdateSpace();

  Params params_;
  std::vector<bool> arrived_;  // Shared pass-2 arrival bitmap.
  std::vector<std::unique_ptr<ClassInstance>> instances_;
  std::unique_ptr<SharedState> shared_;
  std::vector<double> shift_sums_;
  int num_shifts_ = 0;
  SpaceTracker space_;
  Estimate result_;
};

/// Convenience wrapper: runs the counter over `stream`.
Estimate CountFourCyclesDiamond(const AdjacencyStream& stream,
                                const DiamondFourCycleCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_DIAMOND_COUNTER_H_
