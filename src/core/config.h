#ifndef CYCLESTREAM_CORE_CONFIG_H_
#define CYCLESTREAM_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

// Estimate lives at the stream layer now (stream/space.h) so stream-level
// interfaces can return it; re-exported here because the algorithm layers
// have always named it via this header.
#include "stream/space.h"

namespace cyclestream {

/// Shared knobs for the paper's approximation algorithms.
///
/// `t_guess` is the advance estimate of T (the number of triangles or
/// 4-cycles) that parameterizes sampling rates. The paper: "Obviously, we do
/// not know T in advance, but this convention is widely adopted in the
/// literature. ... In practice, the quantities in the algorithms would be
/// initialized based on a lower or upper bound (as appropriate) for T."
/// Robustness experiments feed deliberate misestimates.
///
/// `c` is the oversampling constant appearing in the sampling probabilities
/// (the paper's c); larger c = more space, higher success probability. The
/// paper's log n factors are included in the rates; c scales them.
struct ApproxConfig {
  double epsilon = 0.1;
  double c = 1.0;
  double t_guess = 1.0;
  std::uint64_t seed = 0;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_CONFIG_H_
