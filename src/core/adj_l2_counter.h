#ifndef CYCLESTREAM_CORE_ADJ_L2_COUNTER_H_
#define CYCLESTREAM_CORE_ADJ_L2_COUNTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "sketch/l2_sampler.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// The §4.2.4 algorithm (Theorem 4.3b): one pass over an adjacency-list
/// stream, Õ(Δ + ε⁻²·n²/T) space, (1+ε)-approximation of the 4-cycle count
/// via ℓ₂ sampling of the wedge vector x.
///
/// Each adjacency list of length ℓ is buffered (the Δ term) and expanded
/// into C(ℓ,2) increments of x, which feed (a) an AMS F₂ sketch and (b) a
/// bank of ℓ₂-sampler copies. Post-processing draws samples (uv, x̂_uv)
/// with P[uv] ∝ x_uv², sets X = 1 with probability (x̂_uv−1)/(4·x̂_uv), and
/// returns T̂ = mean(X)·F̂₂(x), using E[X] = T/F₂(x).
class AdjL2FourCycleCounter : public AdjacencyStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    /// ℓ₂-sampler copies (each yields ~ε successful samples); <= 0 derives
    /// from ε and the F₂/T ratio implied by t_guess.
    int sampler_copies = -1;
    std::size_t sketch_width = 512;
    std::size_t sketch_depth = 5;
  };

  explicit AdjL2FourCycleCounter(const Params& params);
  ~AdjL2FourCycleCounter() override;

  // AdjacencyStreamAlgorithm:
  int NumPasses() const override { return 1; }
  void StartPass(int pass, std::size_t num_lists) override;
  void ProcessList(int pass, const AdjacencyList& list,
                   std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "adjl2/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  Estimate Result() const { return result_; }

  /// Number of successful ℓ₂ samples used (diagnostics).
  std::size_t SamplesUsed() const { return samples_used_; }

 private:
  Params params_;
  std::unique_ptr<L2Sampler> sampler_;
  std::size_t max_list_len_ = 0;  // Realized Δ (for the space report).
  std::size_t samples_used_ = 0;
  SpaceTracker space_;
  Estimate result_;
};

/// Convenience wrapper.
Estimate CountFourCyclesAdjL2(const AdjacencyStream& stream,
                              const AdjL2FourCycleCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_ADJ_L2_COUNTER_H_
