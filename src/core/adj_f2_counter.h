#ifndef CYCLESTREAM_CORE_ADJ_F2_COUNTER_H_
#define CYCLESTREAM_CORE_ADJ_F2_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// The §4.2 algorithm (Theorem 4.3a): one pass over an adjacency-list
/// stream, Õ(ε⁻⁴·n⁴/T²) space, (1+ε)-approximation of the 4-cycle count —
/// polylog space once T = Ω(n²/ε²).
///
/// Reduction: with x the wedge vector (x_{uv} = |Γ(u)∩Γ(v)|) and
/// z_{uv} = min(x_{uv}, 1/ε),
///     F₂(x) = F₁(z) + 4T ± 4εT          (Lemma 4.4)
/// so  T̂ = (F̂₂(x) − F̂₁(z)) / 4.
///
/// F₂(x) is estimated by the paper's specialized AMS estimator, computable
/// with four counters per basic copy in the adjacency model: while list t
/// streams, accumulate A_t = Σ α_u, B_t = Σ β_u, C_t = Σ α_u β_u over
/// u ∈ Γ(t) (α, β 4-wise independent signs); at the end of the list add
/// (A_t·B_t − C_t)/2 to the copy's running Z. Then E[Z²] = F₂(x), and
/// median-of-means over copies gives the (1+γ) guarantee with
/// γ = ε·min(1, εT/n²).
///
/// F₁(z) is estimated by sampling vertex pairs at rate p ∝ ε⁻⁴n²/T²·log n
/// and counting each sampled pair's common neighbors (capped at 1/ε) with
/// O(1) state per pair.
///
/// Memory layout: the estimator copies are structure-of-arrays, copy-minor —
/// sign caches as alpha[v·C + c], per-list accumulators as a[c]/b[c]/c[c] —
/// so the inner per-neighbor loop is three contiguous C-length sweeps.
/// Bit-identical to the historical array-of-structs layout (each slot sees
/// the same additions in the same order).
class AdjF2FourCycleCounter : public AdjacencyStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    /// Basic estimators per median group; <= 0 derives ⌈2/γ²⌉ (capped at
    /// 4096) from the config.
    int copies_per_group = -1;
    /// Median groups.
    int groups = 9;
    /// Pair-sampling rate override for the F₁(z) part; <= 0 derives the
    /// paper's rate (clamped to 1).
    double pair_rate = -1.0;
  };

  explicit AdjF2FourCycleCounter(const Params& params);

  // AdjacencyStreamAlgorithm:
  int NumPasses() const override { return 1; }
  void StartPass(int pass, std::size_t num_lists) override;
  void ProcessList(int pass, const AdjacencyList& list,
                   std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "adjf2/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  Estimate Result() const { return result_; }

  /// Component estimates (diagnostics).
  double F2Estimate() const { return f2_estimate_; }
  double F1Estimate() const { return f1_estimate_; }

 private:
  struct SampledPair {
    VertexId u = 0;
    VertexId v = 0;
    std::uint32_t z = 0;             // min(common neighbors so far, cap).
    std::uint64_t stamp_u = ~0ull;   // List position where u was last seen.
    std::uint64_t stamp_v = ~0ull;
    std::uint64_t counted = ~0ull;   // Guard against double-count per list.
  };

  void UpdateSpace();

  Params params_;
  std::uint32_t z_cap_ = 1;
  double pair_rate_ = 1.0;

  std::size_t num_copies_ = 0;
  // 4-wise ±1 sign caches, copy-minor (alpha_[v·C + c]), evaluated once per
  // vertex at construction through a KWiseHashBank (see
  // ArbF2FourCycleCounter for the space-accounting rationale).
  std::vector<signed char> alpha_;
  std::vector<signed char> beta_;
  std::vector<double> acc_a_;  // Current-list A per copy.
  std::vector<double> acc_b_;
  std::vector<double> acc_c_;
  std::vector<double> z_;      // Running Σ_t (A_t·B_t − C_t)/2 per copy.
  mutable std::vector<double> square_scratch_;
  std::vector<SampledPair> pairs_;
  std::unordered_map<VertexId, std::vector<std::uint32_t>> pairs_by_vertex_;

  double f2_estimate_ = 0.0;
  double f1_estimate_ = 0.0;
  SpaceTracker space_;
  Estimate result_;
};

/// Convenience wrapper.
Estimate CountFourCyclesAdjF2(const AdjacencyStream& stream,
                              const AdjF2FourCycleCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_ADJ_F2_COUNTER_H_
