#ifndef CYCLESTREAM_CORE_ARB_DISTINGUISHER_H_
#define CYCLESTREAM_CORE_ARB_DISTINGUISHER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "hash/kwise.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// The §5.2 algorithm (Theorem 5.6): two passes over an arbitrary-order
/// stream, Õ(m^{3/2}/T^{3/4}) space, distinguishes graphs with no 4-cycles
/// from graphs with at least T of them (success probability ≥ 2/3).
///
/// Pass 1 samples edges at rate p = c/√T (set S). If the graph has T
/// 4-cycles then with constant probability S contains two vertex-disjoint
/// edges of one 4-cycle (Lemma 5.5, using the structural Lemma 5.1 to
/// discount heavy pairs). Pass 2 collects edges of the subgraph induced by
/// S's endpoints: by the Kővári–Sós–Turán bound (Lemma 5.4), a C4-free
/// graph on |V_S| vertices has < 2|V_S|^{3/2} edges, so either a 4-cycle
/// appears within the budget or the instance is declared C4-free.
class ArbTwoPassDistinguisher : public EdgeStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;    // Uses t_guess (the T to distinguish against),
                          // c, and seed; epsilon is unused.
    VertexId num_vertices = 0;
    /// Override for the edge-collection cap; <= 0 means 2·|V_S|^{3/2}.
    std::size_t collect_cap = 0;
  };

  explicit ArbTwoPassDistinguisher(const Params& params);

  // EdgeStreamAlgorithm:
  int NumPasses() const override { return 2; }
  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "arbdist/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  /// True iff a 4-cycle was found (declare "at least T 4-cycles").
  bool FoundFourCycle() const { return found_; }

  std::size_t SpaceWords() const { return space_.Peak(); }

  std::size_t SampledEdges() const { return sample_.size(); }
  std::size_t CollectedEdges() const { return collected_count_; }

 private:
  /// Inserts an edge into the collected subgraph and reports whether it
  /// closes a 4-cycle (a length-3 path between its endpoints existed).
  bool InsertAndCheck(const Edge& e);

  Params params_;
  double p_ = 1.0;
  KWiseHash sample_hash_;

  std::vector<Edge> sample_;                          // S.
  std::unordered_set<VertexId> sampled_vertices_;     // V_S.
  std::unordered_map<VertexId, std::vector<VertexId>> collected_adj_;
  std::unordered_set<std::uint64_t, Mix64Hash> collected_set_;
  std::size_t collected_count_ = 0;
  std::size_t collect_cap_ = 0;
  bool found_ = false;
  SpaceTracker space_;
};

/// Convenience wrapper: returns true iff a 4-cycle was found.
bool DistinguishFourCycles(const EdgeStream& stream,
                           const ArbTwoPassDistinguisher::Params& params,
                           std::size_t* space_words = nullptr);

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_ARB_DISTINGUISHER_H_
