#include "core/diamond_counter.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

#include "graph/flat_map.h"
#include "hash/kwise.h"
#include "hash/kwise_bank.h"
#include "hash/rng.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

namespace {

// Normalization for class weights: C(sk,2) guarded away from zero so the
// smallest class (sk near 1) stays well-defined. The normalization cancels
// exactly when converting Ŵ back to a cycle count.
double ClassNorm(double sk) { return std::max(sk * (sk - 1.0) / 2.0, 0.5); }

double Choose2(double x) { return x * (x - 1.0) / 2.0; }

// CSR reverse index over (w, owner) pairs appended during pass 1: for each
// vertex w, the sampled owners u with (u → w) ∈ E. The stable sort keeps
// each w's owners in append order — exactly the order the historical
// per-w `std::vector` held them — so pass-2 accumulation sequences are
// unchanged.
struct RevIndex {
  std::vector<std::pair<VertexId, VertexId>> pairs;  // Pass-1 append order.
  FlatMap64<std::uint64_t> ranges;  // w → begin << 32 | count.
  std::vector<VertexId> owners;     // CSR payload.

  void Build() {
    std::stable_sort(
        pairs.begin(), pairs.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    owners.resize(pairs.size());
    ranges.reserve(pairs.size() / 2 + 1);
    for (std::size_t i = 0; i < pairs.size();) {
      std::size_t j = i;
      while (j < pairs.size() && pairs[j].first == pairs[i].first) {
        owners[j] = pairs[j].second;
        ++j;
      }
      ranges[pairs[i].first] =
          (static_cast<std::uint64_t>(i) << 32) | (j - i);
      i = j;
    }
    pairs.clear();
    pairs.shrink_to_fit();
  }

  std::span<const VertexId> Find(VertexId w) const {
    const std::uint64_t* r = ranges.find(w);
    if (r == nullptr) return {};
    return {owners.data() + (*r >> 32),
            static_cast<std::size_t>(*r & 0xffffffffULL)};
  }
};

// RevIndex checkpoint codec. Both phases round-trip: the pass-1 append-order
// `pairs`, and the post-Build CSR (`owners` + `ranges`). The FlatMap64 is
// lookup-only, so content-equal restore suffices; the insertion-order replay
// below reproduces the slot layout anyway.
void WriteRevIndex(StateWriter& w, const RevIndex& rev) {
  w.Size(rev.pairs.size());
  for (const auto& [vertex, owner] : rev.pairs) {
    w.U32(vertex);
    w.U32(owner);
  }
  w.Vec(rev.owners);
  w.Size(rev.ranges.size());
  for (const auto& [key, value] : rev.ranges) {
    w.U64(key);
    w.U64(value);
  }
}

bool ReadRevIndex(StateReader& r, RevIndex* rev) {
  const std::size_t num_pairs = r.Size();
  if (!r.ok() || num_pairs > r.Remaining() / 8) return r.Fail();
  rev->pairs.clear();
  rev->pairs.reserve(num_pairs);
  for (std::size_t i = 0; i < num_pairs; ++i) {
    const VertexId vertex = r.U32();
    const VertexId owner = r.U32();
    rev->pairs.emplace_back(vertex, owner);
  }
  if (!r.Vec(&rev->owners)) return false;
  const std::size_t num_ranges = r.Size();
  if (!r.ok() || num_ranges > r.Remaining() / 16) return r.Fail();
  rev->ranges = FlatMap64<std::uint64_t>();
  rev->ranges.reserve(num_ranges);
  for (std::size_t i = 0; i < num_ranges; ++i) {
    const std::uint64_t key = r.U64();
    if (key == FlatMap64<std::uint64_t>::kEmptyKey) return r.Fail();
    rev->ranges[key] = r.U64();
  }
  return r.ok();
}

// Empty-but-bucketed scratch maps: only the bucket count is state (contents
// are cleared at the top of every list), but it controls the iteration order
// of future insertions, which feeds FP-sensitive emit loops.
template <typename Map>
void WriteScratchBuckets(StateWriter& w, const Map& map) {
  w.Size(map.bucket_count());
}
template <typename Map>
void RestoreScratchBuckets(Map& map, std::size_t buckets) {
  map.clear();
  if (map.bucket_count() != buckets) map.rehash(buckets);
}

}  // namespace

/// One (shift, level) size-class estimator. Saturated classes (pv ≥ 1 and
/// pe ≥ 1) sample nothing away, so their reverse index and pass-2
/// accumulators are identical across classes; they read the counter-level
/// shared copies instead of owning any.
struct DiamondFourCycleCounter::ClassInstance {
  int shift_index = 0;
  double sk = 1.0;       // Class base size.
  double pv = 1.0;       // Vertex sampling rate (both V¹ and V²).
  double pe = 1.0;       // Edge sampling rate within sampled vertices.
  double lo = 0.0;       // Window: lo <= d̂ < hi.
  double hi = 0.0;

  KWiseHash e1_hash;     // E¹ per-(owner, neighbor) sampling.
  KWiseHash e2_hash;
  bool saturated = false;

  RevIndex rev1;
  RevIndex rev2;
  std::size_t e1_size = 0;
  std::size_t e2_size = 0;

  UsefulAlgorithm useful;

  // Pass-2 per-vertex scratch: a(u, v) accumulators. Kept as
  // std::unordered_map because the emit order below follows its iteration
  // order, which feeds floating-point accumulation inside `useful` — the
  // container (and thus the order) must match the historical code exactly.
  std::unordered_map<VertexId, std::uint32_t> a1_scratch;
  std::unordered_map<VertexId, std::uint32_t> a2_scratch;

  // Reused across lists (cleared, capacity kept).
  std::vector<UsefulAlgorithm::IncidentEdge> revealed;

  ClassInstance(int shift, double sk_in, double pv_in, double pe_in,
                double epsilon, double m_cap, std::uint64_t seed)
      : shift_index(shift),
        sk(sk_in),
        pv(pv_in),
        pe(pe_in),
        lo((1.0 + epsilon / 6.0) * sk_in),
        hi(2.0 * (1.0 - epsilon / 6.0) * sk_in),
        e1_hash(8, seed ^ 0x33ULL),
        e2_hash(8, seed ^ 0x44ULL),
        saturated(pv_in >= 1.0 && pe_in >= 1.0),
        useful(UsefulAlgorithm::Config{pv_in, m_cap,
                                       /*external_arrivals=*/true}) {}

  void EmitAndObserve(const AdjacencyList& list,
                      const std::vector<bool>& arrived, bool in1, bool in2,
                      std::span<const std::pair<VertexId, std::uint32_t>> r1,
                      std::span<const std::pair<VertexId, std::uint32_t>> r2) {
    // Assemble the revealed H-edges between v and R1 ∪ R2. A vertex u in
    // both samples is revealed through both roles independently (the paper
    // runs "two copies in parallel"); split into two half-edges so each
    // role uses its own d̂.
    revealed.clear();
    const double norm = ClassNorm(sk);
    auto emit = [&](VertexId u, std::uint32_t a_count, bool r1_role,
                    bool r2_role) {
      const double d_hat = static_cast<double>(a_count) / pe;
      if (d_hat < lo || d_hat >= hi) return;
      UsefulAlgorithm::IncidentEdge edge;
      edge.neighbor = u;
      edge.weight = Choose2(d_hat) / norm;
      edge.in_r1 = r1_role;
      edge.in_r2 = r2_role;
      edge.neighbor_arrived = arrived[u];
      revealed.push_back(edge);
    };
    for (const auto& [u, count] : r1) emit(u, count, true, false);
    for (const auto& [u, count] : r2) emit(u, count, false, true);
    useful.OnVertex(list.vertex, in1, in2, revealed);
  }

  void Pass2Own(const AdjacencyList& list, const std::vector<bool>& arrived,
                bool in1, bool in2,
                std::vector<std::pair<VertexId, std::uint32_t>>& order1,
                std::vector<std::pair<VertexId, std::uint32_t>>& order2) {
    a1_scratch.clear();
    a2_scratch.clear();
    for (VertexId w : list.neighbors) {
      for (VertexId u : rev1.Find(w)) {
        if (u != list.vertex) ++a1_scratch[u];
      }
      for (VertexId u : rev2.Find(w)) {
        if (u != list.vertex) ++a2_scratch[u];
      }
    }
    order1.clear();
    order2.clear();
    for (const auto& [u, count] : a1_scratch) order1.emplace_back(u, count);
    for (const auto& [u, count] : a2_scratch) order2.emplace_back(u, count);
    EmitAndObserve(list, arrived, in1, in2, order1, order2);
  }

  /// T̂_sk = Ŵ_sk · norm (the normalization cancels).
  double ClassEstimate() const { return useful.Estimate() * ClassNorm(sk); }

  std::size_t SpaceWords() const {
    return 2 * (e1_size + e2_size) + useful.SpaceWords() + 4 * 8;
  }
};

/// Cross-instance shared state.
///
/// Membership banks: instance i's historical `v1_hash`/`v2_hash` (8-wise,
/// seeds inst_seed ^ 0x11 / ^ 0x22) become hash i of the v1/v2 banks — one
/// batched evaluation per arriving list instead of one scalar Horner per
/// instance, with bit-identical values.
///
/// Saturated classes: when pv ≥ 1 and pe ≥ 1 every membership and edge test
/// passes, so each such class's rev1, rev2 and pass-2 scratch maps would be
/// built by *exactly the same operation sequence* — the maps (including
/// their iteration order, which feeds the FP-sensitive emit loop) are
/// interchangeable. One shared reverse index and one shared scratch stand
/// in for all of them.
struct DiamondFourCycleCounter::SharedState {
  KWiseHashBank v1_bank;
  KWiseHashBank v2_bank;
  std::vector<double> v1_scratch;
  std::vector<double> v2_scratch;

  std::size_t num_saturated = 0;
  RevIndex rev;  // The saturated classes' common reverse index.
  std::unordered_map<VertexId, std::uint32_t> scratch;
  // Scratch contents snapshotted in map-iteration order (one iteration,
  // consumed by every saturated instance).
  std::vector<std::pair<VertexId, std::uint32_t>> order;

  // Per-instance emit staging, reused across lists.
  std::vector<std::pair<VertexId, std::uint32_t>> order1;
  std::vector<std::pair<VertexId, std::uint32_t>> order2;
};

DiamondFourCycleCounter::DiamondFourCycleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.base.t_guess, 1.0);
  CHECK_GT(params.base.epsilon, 0.0);
  CHECK_GE(params.num_vertices, 2u);

  const double eps = params.base.epsilon;
  const double sqrt_t = std::sqrt(params.base.t_guess);
  const double log_n =
      std::log2(static_cast<double>(params.num_vertices) + 2.0);

  int full_shifts =
      static_cast<int>(std::ceil(std::log(2.0) / std::log1p(eps)));
  full_shifts = std::max(full_shifts, 1);
  num_shifts_ =
      params.max_shifts > 0 ? std::min(params.max_shifts, full_shifts)
                            : full_shifts;

  const int max_level = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(params.num_vertices)))));

  std::uint64_t seed = params.base.seed ^ 0x4449414dULL;  // "DIAM"
  std::vector<std::uint64_t> v1_seeds;
  std::vector<std::uint64_t> v2_seeds;
  for (int shift = 0; shift < num_shifts_; ++shift) {
    const double s = std::pow(1.0 + eps, shift);
    for (int k = 0; k <= max_level; ++k) {
      const double sk = s * std::pow(2.0, k);
      if (sk > static_cast<double>(params.num_vertices)) break;
      const double pv = std::min(
          1.0, params.vertex_rate_scale * params.base.c * sk /
                   (sqrt_t * eps * eps));
      const double pe = std::min(
          1.0, params.edge_rate_scale * params.base.c * log_n /
                   (eps * eps * sk));
      const double m_cap = 2.0 * params.base.t_guess / ClassNorm(sk);
      const std::uint64_t inst_seed = SplitMix64(seed);
      v1_seeds.push_back(inst_seed ^ 0x11ULL);
      v2_seeds.push_back(inst_seed ^ 0x22ULL);
      instances_.push_back(std::make_unique<ClassInstance>(
          shift, sk, pv, pe, eps, m_cap, inst_seed));
    }
  }
  shift_sums_.assign(static_cast<std::size_t>(num_shifts_), 0.0);

  shared_ = std::make_unique<SharedState>();
  shared_->v1_bank = KWiseHashBank(/*k=*/8, v1_seeds);
  shared_->v2_bank = KWiseHashBank(/*k=*/8, v2_seeds);
  shared_->v1_scratch.resize(instances_.size());
  shared_->v2_scratch.resize(instances_.size());
  for (const auto& instance : instances_) {
    if (instance->saturated) ++shared_->num_saturated;
  }
}

DiamondFourCycleCounter::~DiamondFourCycleCounter() = default;

void DiamondFourCycleCounter::StartPass(int pass, std::size_t num_lists) {
  (void)num_lists;
  if (pass == 1) {
    // One arrival bitmap shared by every class instance (the per-instance
    // seen-sets would otherwise dominate the space of saturated classes).
    arrived_.assign(params_.num_vertices, false);
  }
}

void DiamondFourCycleCounter::ProcessList(int pass, const AdjacencyList& list,
                                          std::size_t position) {
  SharedState& sh = *shared_;
  const std::size_t m = instances_.size();
  sh.v1_bank.ToUnitAll(list.vertex, sh.v1_scratch.data());
  sh.v2_bank.ToUnitAll(list.vertex, sh.v2_scratch.data());

  if (pass == 0) {
    if (sh.num_saturated > 0) {
      for (VertexId w : list.neighbors) {
        sh.rev.pairs.emplace_back(w, list.vertex);
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      ClassInstance& inst = *instances_[i];
      if (inst.saturated) {
        // Membership and edge sampling both always accept; only the size
        // accounting advances (the shared index holds the pairs).
        inst.e1_size += list.neighbors.size();
        inst.e2_size += list.neighbors.size();
        continue;
      }
      const bool in1 = sh.v1_scratch[i] < inst.pv;
      const bool in2 = sh.v2_scratch[i] < inst.pv;
      if (!in1 && !in2) continue;
      if (inst.pe >= 1.0) {
        // Edge sampling accepts everything: skip the hash evaluations.
        if (in1) {
          for (VertexId w : list.neighbors) {
            inst.rev1.pairs.emplace_back(w, list.vertex);
          }
          inst.e1_size += list.neighbors.size();
        }
        if (in2) {
          for (VertexId w : list.neighbors) {
            inst.rev2.pairs.emplace_back(w, list.vertex);
          }
          inst.e2_size += list.neighbors.size();
        }
      } else {
        for (VertexId w : list.neighbors) {
          const std::uint64_t key =
              (static_cast<std::uint64_t>(list.vertex) << 32) | w;
          if (in1 && inst.e1_hash.ToUnit(key) < inst.pe) {
            inst.rev1.pairs.emplace_back(w, list.vertex);
            ++inst.e1_size;
          }
          if (in2 && inst.e2_hash.ToUnit(key) < inst.pe) {
            inst.rev2.pairs.emplace_back(w, list.vertex);
            ++inst.e2_size;
          }
        }
      }
    }
  } else {
    if (sh.num_saturated > 0) {
      // Accumulate a(u, v) once on behalf of every saturated instance: the
      // operation sequence below is exactly the sequence each instance's
      // own scratch map historically saw, so iteration order (and the FP
      // emit order derived from it) is preserved.
      sh.scratch.clear();
      for (VertexId w : list.neighbors) {
        for (VertexId u : sh.rev.Find(w)) {
          if (u != list.vertex) ++sh.scratch[u];
        }
      }
      sh.order.clear();
      for (const auto& [u, count] : sh.scratch) sh.order.emplace_back(u, count);
    }
    for (std::size_t i = 0; i < m; ++i) {
      ClassInstance& inst = *instances_[i];
      const bool in1 = sh.v1_scratch[i] < inst.pv;
      const bool in2 = sh.v2_scratch[i] < inst.pv;
      if (inst.saturated) {
        // R1 and R2 accumulators are identical for saturated classes; the
        // shared snapshot serves both emit roles.
        inst.EmitAndObserve(list, arrived_, in1, in2, sh.order, sh.order);
      } else {
        inst.Pass2Own(list, arrived_, in1, in2, sh.order1, sh.order2);
      }
    }
  }
  if (pass == 1) arrived_[list.vertex] = true;
  if ((position & 0xff) == 0 || pass == 1) UpdateSpace();
}

void DiamondFourCycleCounter::UpdateSpace() {
  space_.SetComponent("arrived_bitmap", arrived_.size() / 64 + 1);
  std::size_t inst_words = 0;
  for (const auto& instance : instances_) {
    inst_words += instance->SpaceWords();
  }
  space_.SetComponent("instances", inst_words);
}

std::size_t DiamondFourCycleCounter::AuditSpace() const {
  // Derives the per-instance edge-sample sizes from the real reverse-index
  // containers rather than the e1_size/e2_size counters the accounting
  // increments — `owners` after Build(), `pairs` before. Saturated classes
  // logically own two full copies of the shared index (the sharing is an
  // implementation optimization; the accounting charges the idealized
  // per-instance layout).
  std::size_t words = arrived_.size() / 64 + 1;
  const std::size_t shared_pairs =
      shared_->rev.owners.size() + shared_->rev.pairs.size();
  for (const auto& instance : instances_) {
    std::size_t stored1 = 0;
    std::size_t stored2 = 0;
    if (instance->saturated) {
      stored1 = shared_pairs;
      stored2 = shared_pairs;
    } else {
      stored1 = instance->rev1.owners.size() + instance->rev1.pairs.size();
      stored2 = instance->rev2.owners.size() + instance->rev2.pairs.size();
    }
    words += 2 * (stored1 + stored2) + instance->useful.SpaceWords() + 4 * 8;
  }
  return words;
}

void DiamondFourCycleCounter::EndPass(int pass) {
  if (pass != 1) {
    // Pass-1 → pass-2 boundary: freeze the append-order pair lists into
    // CSR reverse indexes.
    if (shared_->num_saturated > 0) shared_->rev.Build();
    for (auto& instance : instances_) {
      if (!instance->saturated) {
        instance->rev1.Build();
        instance->rev2.Build();
      }
    }
    return;
  }
  std::fill(shift_sums_.begin(), shift_sums_.end(), 0.0);
  for (const auto& instance : instances_) {
    shift_sums_[static_cast<std::size_t>(instance->shift_index)] +=
        instance->ClassEstimate();
  }
  const double best =
      *std::max_element(shift_sums_.begin(), shift_sums_.end());
  UpdateSpace();

  result_.value = best / 2.0;  // Each 4-cycle lies in exactly two diamonds.
  result_.space_words = space_.Peak();
}

bool DiamondFourCycleCounter::SaveState(StateWriter& w) const {
  // Config fingerprint: everything the constructor derives sampling rates,
  // windows, and hash seeds from. A resume against a differently-configured
  // instance must be rejected before any member is touched.
  w.U32(params_.num_vertices);
  w.Double(params_.vertex_rate_scale);
  w.Double(params_.edge_rate_scale);
  w.I64(params_.max_shifts);
  w.Double(params_.base.epsilon);
  w.Double(params_.base.c);
  w.Double(params_.base.t_guess);
  w.U64(params_.base.seed);
  w.I64(num_shifts_);
  w.Size(instances_.size());

  w.VecBool(arrived_);
  for (const auto& instance : instances_) {
    const ClassInstance& inst = *instance;
    // Per-instance fingerprint (derived, but cheap insurance that the
    // snapshot's class layout matches this binary's).
    w.I64(inst.shift_index);
    w.Double(inst.sk);
    w.Double(inst.pv);
    w.Double(inst.pe);
    w.Bool(inst.saturated);
    WriteRevIndex(w, inst.rev1);
    WriteRevIndex(w, inst.rev2);
    w.Size(inst.e1_size);
    w.Size(inst.e2_size);
    inst.useful.SaveState(w);
    WriteScratchBuckets(w, inst.a1_scratch);
    WriteScratchBuckets(w, inst.a2_scratch);
  }
  WriteRevIndex(w, shared_->rev);
  WriteScratchBuckets(w, shared_->scratch);
  space_.SaveState(w);
  return true;
}

bool DiamondFourCycleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices ||
      r.Double() != params_.vertex_rate_scale ||
      r.Double() != params_.edge_rate_scale ||
      r.I64() != params_.max_shifts ||
      r.Double() != params_.base.epsilon || r.Double() != params_.base.c ||
      r.Double() != params_.base.t_guess || r.U64() != params_.base.seed ||
      r.I64() != num_shifts_ || r.Size() != instances_.size()) {
    return r.Fail();
  }
  if (!r.VecBool(&arrived_)) return false;
  for (auto& instance : instances_) {
    ClassInstance& inst = *instance;
    if (r.I64() != inst.shift_index || r.Double() != inst.sk ||
        r.Double() != inst.pv || r.Double() != inst.pe ||
        r.Bool() != inst.saturated) {
      return r.Fail();
    }
    if (!ReadRevIndex(r, &inst.rev1) || !ReadRevIndex(r, &inst.rev2)) {
      return false;
    }
    inst.e1_size = r.Size();
    inst.e2_size = r.Size();
    if (!r.ok() || !inst.useful.RestoreState(r)) return false;
    const std::size_t a1_buckets = r.Size();
    const std::size_t a2_buckets = r.Size();
    if (!r.ok()) return false;
    RestoreScratchBuckets(inst.a1_scratch, a1_buckets);
    RestoreScratchBuckets(inst.a2_scratch, a2_buckets);
  }
  if (!ReadRevIndex(r, &shared_->rev)) return false;
  const std::size_t scratch_buckets = r.Size();
  if (!r.ok()) return false;
  RestoreScratchBuckets(shared_->scratch, scratch_buckets);
  return space_.RestoreState(r);
}

Estimate CountFourCyclesDiamond(
    const AdjacencyStream& stream,
    const DiamondFourCycleCounter::Params& params) {
  DiamondFourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
