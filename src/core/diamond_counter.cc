#include "core/diamond_counter.h"

#include <algorithm>
#include <cmath>

#include "hash/rng.h"
#include "util/check.h"

namespace cyclestream {

namespace {

// Normalization for class weights: C(sk,2) guarded away from zero so the
// smallest class (sk near 1) stays well-defined. The normalization cancels
// exactly when converting Ŵ back to a cycle count.
double ClassNorm(double sk) { return std::max(sk * (sk - 1.0) / 2.0, 0.5); }

double Choose2(double x) { return x * (x - 1.0) / 2.0; }

}  // namespace

/// One (shift, level) size-class estimator: its own vertex/edge samples and
/// its own Useful-Algorithm instance.
struct DiamondFourCycleCounter::ClassInstance {
  int shift_index = 0;
  double sk = 1.0;       // Class base size.
  double pv = 1.0;       // Vertex sampling rate (both V¹ and V²).
  double pe = 1.0;       // Edge sampling rate within sampled vertices.
  double lo = 0.0;       // Window: lo <= d̂ < hi.
  double hi = 0.0;

  KWiseHash v1_hash;     // V¹ membership.
  KWiseHash v2_hash;     // V² membership.
  KWiseHash e1_hash;     // E¹ per-(owner, neighbor) sampling.
  KWiseHash e2_hash;

  // Reverse indexes built in pass 1: for each vertex w, the sampled owners
  // u with (u → w) ∈ E. Used in pass 2 to accumulate a(u, v) as v's list
  // streams by.
  std::unordered_map<VertexId, std::vector<VertexId>> rev1;
  std::unordered_map<VertexId, std::vector<VertexId>> rev2;
  std::size_t e1_size = 0;
  std::size_t e2_size = 0;

  UsefulAlgorithm useful;

  // Pass-2 per-vertex scratch: a(u, v) accumulators.
  std::unordered_map<VertexId, std::uint32_t> a1_scratch;
  std::unordered_map<VertexId, std::uint32_t> a2_scratch;

  ClassInstance(int shift, double sk_in, double pv_in, double pe_in,
                double epsilon, double m_cap, std::uint64_t seed)
      : shift_index(shift),
        sk(sk_in),
        pv(pv_in),
        pe(pe_in),
        lo((1.0 + epsilon / 6.0) * sk_in),
        hi(2.0 * (1.0 - epsilon / 6.0) * sk_in),
        v1_hash(8, seed ^ 0x11ULL),
        v2_hash(8, seed ^ 0x22ULL),
        e1_hash(8, seed ^ 0x33ULL),
        e2_hash(8, seed ^ 0x44ULL),
        useful(UsefulAlgorithm::Config{pv_in, m_cap,
                                       /*external_arrivals=*/true}) {}

  bool InV1(VertexId v) const { return v1_hash.ToUnit(v) < pv; }
  bool InV2(VertexId v) const { return v2_hash.ToUnit(v) < pv; }

  void Pass1List(const AdjacencyList& list) {
    const bool in1 = InV1(list.vertex);
    const bool in2 = InV2(list.vertex);
    if (!in1 && !in2) return;
    for (VertexId w : list.neighbors) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(list.vertex) << 32) | w;
      if (in1 && e1_hash.ToUnit(key) < pe) {
        rev1[w].push_back(list.vertex);
        ++e1_size;
      }
      if (in2 && e2_hash.ToUnit(key) < pe) {
        rev2[w].push_back(list.vertex);
        ++e2_size;
      }
    }
  }

  void Pass2List(const AdjacencyList& list,
                 const std::vector<bool>& arrived) {
    a1_scratch.clear();
    a2_scratch.clear();
    for (VertexId w : list.neighbors) {
      if (auto it = rev1.find(w); it != rev1.end()) {
        for (VertexId u : it->second) {
          if (u != list.vertex) ++a1_scratch[u];
        }
      }
      if (auto it = rev2.find(w); it != rev2.end()) {
        for (VertexId u : it->second) {
          if (u != list.vertex) ++a2_scratch[u];
        }
      }
    }
    // Assemble the revealed H-edges between v and R1 ∪ R2. A vertex u in
    // both samples is revealed through both roles independently (the paper
    // runs "two copies in parallel"); split into two half-edges so each
    // role uses its own d̂.
    std::vector<UsefulAlgorithm::IncidentEdge> revealed;
    const double norm = ClassNorm(sk);
    auto emit = [&](VertexId u, std::uint32_t a_count, bool r1, bool r2) {
      const double d_hat = static_cast<double>(a_count) / pe;
      if (d_hat < lo || d_hat >= hi) return;
      UsefulAlgorithm::IncidentEdge edge;
      edge.neighbor = u;
      edge.weight = Choose2(d_hat) / norm;
      edge.in_r1 = r1;
      edge.in_r2 = r2;
      edge.neighbor_arrived = arrived[u];
      revealed.push_back(edge);
    };
    for (const auto& [u, count] : a1_scratch) emit(u, count, true, false);
    for (const auto& [u, count] : a2_scratch) emit(u, count, false, true);

    useful.OnVertex(list.vertex, InV1(list.vertex), InV2(list.vertex),
                    revealed);
  }

  /// T̂_sk = Ŵ_sk · norm (the normalization cancels).
  double ClassEstimate() const { return useful.Estimate() * ClassNorm(sk); }

  std::size_t SpaceWords() const {
    return 2 * (e1_size + e2_size) + useful.SpaceWords() + 4 * 8;
  }
};

DiamondFourCycleCounter::DiamondFourCycleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.base.t_guess, 1.0);
  CHECK_GT(params.base.epsilon, 0.0);
  CHECK_GE(params.num_vertices, 2u);

  const double eps = params.base.epsilon;
  const double sqrt_t = std::sqrt(params.base.t_guess);
  const double log_n =
      std::log2(static_cast<double>(params.num_vertices) + 2.0);

  int full_shifts =
      static_cast<int>(std::ceil(std::log(2.0) / std::log1p(eps)));
  full_shifts = std::max(full_shifts, 1);
  num_shifts_ =
      params.max_shifts > 0 ? std::min(params.max_shifts, full_shifts)
                            : full_shifts;

  const int max_level = std::max(
      1, static_cast<int>(
             std::ceil(std::log2(static_cast<double>(params.num_vertices)))));

  std::uint64_t seed = params.base.seed ^ 0x4449414dULL;  // "DIAM"
  for (int shift = 0; shift < num_shifts_; ++shift) {
    const double s = std::pow(1.0 + eps, shift);
    for (int k = 0; k <= max_level; ++k) {
      const double sk = s * std::pow(2.0, k);
      if (sk > static_cast<double>(params.num_vertices)) break;
      const double pv = std::min(
          1.0, params.vertex_rate_scale * params.base.c * sk /
                   (sqrt_t * eps * eps));
      const double pe = std::min(
          1.0, params.edge_rate_scale * params.base.c * log_n /
                   (eps * eps * sk));
      const double m_cap = 2.0 * params.base.t_guess / ClassNorm(sk);
      instances_.push_back(std::make_unique<ClassInstance>(
          shift, sk, pv, pe, eps, m_cap, SplitMix64(seed)));
    }
  }
  shift_sums_.assign(static_cast<std::size_t>(num_shifts_), 0.0);
}

DiamondFourCycleCounter::~DiamondFourCycleCounter() = default;

void DiamondFourCycleCounter::StartPass(int pass, std::size_t num_lists) {
  (void)num_lists;
  if (pass == 1) {
    // One arrival bitmap shared by every class instance (the per-instance
    // seen-sets would otherwise dominate the space of saturated classes).
    arrived_.assign(params_.num_vertices, false);
  }
}

void DiamondFourCycleCounter::ProcessList(int pass, const AdjacencyList& list,
                                          std::size_t position) {
  (void)position;
  for (auto& instance : instances_) {
    if (pass == 0) {
      instance->Pass1List(list);
    } else {
      instance->Pass2List(list, arrived_);
    }
  }
  if (pass == 1) arrived_[list.vertex] = true;
  if ((position & 0xff) == 0 || pass == 1) {
    std::size_t words = arrived_.size() / 64 + 1;
    for (const auto& instance : instances_) words += instance->SpaceWords();
    space_.Update(words);
  }
}

void DiamondFourCycleCounter::EndPass(int pass) {
  if (pass != 1) return;
  std::fill(shift_sums_.begin(), shift_sums_.end(), 0.0);
  for (const auto& instance : instances_) {
    shift_sums_[static_cast<std::size_t>(instance->shift_index)] +=
        instance->ClassEstimate();
  }
  const double best =
      *std::max_element(shift_sums_.begin(), shift_sums_.end());
  std::size_t words = arrived_.size() / 64 + 1;
  for (const auto& instance : instances_) words += instance->SpaceWords();
  space_.Update(words);

  result_.value = best / 2.0;  // Each 4-cycle lies in exactly two diamonds.
  result_.space_words = space_.Peak();
}

Estimate CountFourCyclesDiamond(
    const AdjacencyStream& stream,
    const DiamondFourCycleCounter::Params& params) {
  DiamondFourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
