#ifndef CYCLESTREAM_CORE_ARB_THREE_PASS_H_
#define CYCLESTREAM_CORE_ARB_THREE_PASS_H_

#include <cstdint>
#include <array>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "core/useful_algorithm.h"
#include "hash/kwise.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// The §5.1 algorithm (Theorem 5.3): three passes over an arbitrary-order
/// edge stream, Õ(m/T^{1/4}) space, (1+ε)-approximation of the 4-cycle
/// count. First sublinear-space arbitrary-order 4-cycle counter for any
/// T = ω(1).
///
/// Pass 1: sample edge set S0 and two vertex sets Q1, Q2 (rate
///         p = c·log n/(ε²·T^{1/4})), collecting all edges incident to
///         Q1/Q2 as S1/S2.
/// Pass 2: every stream edge e that completes three S0-edges into a 4-cycle
///         is stored with its cycle τ.
/// Pass 3: every edge of every stored cycle is classified heavy/light by an
///         oracle: for edge f, the graph H_f has the edges sharing an
///         endpoint with f as vertices and the 4-cycles through f as edges;
///         |E(H_f)| — the number of 4-cycles on f — is estimated by the §3
///         Useful Algorithm with R1/R2 derived from S1/S2 via the paper's
///         f/g subsampling (which restores sample independence). f is heavy
///         iff the estimate is ≥ η√T.
/// Output: A0/(4p³) + A1/p³, where A0 counts stored (e,τ) with no heavy
///         edge and A1 those with e heavy and the rest light. By the
///         structural Lemma 5.1 at most a 82/η fraction of cycles have ≥2
///         heavy edges, so these two terms capture (1−O(1/η))·T.
///
/// Implementation note (see DESIGN.md §4): the paper leaves the online
/// observation of H_f's edges implicit. Here each H_f edge
/// (f₁=(b,c), f₂=(a,d)) — certified by the closing edge (c,d) — is recorded
/// when its certificate and both endpoints have streamed by, and the §3
/// recurrence is evaluated at end of pass 3 over the recorded observations
/// in true arrival order. This yields exactly the estimate the idealized
/// Useful Algorithm would produce with H_f vertex order = stream order.
class ArbThreePassFourCycleCounter : public EdgeStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    /// Heaviness scale η of Lemma 5.1 (structural loss ≤ 164/η of T).
    double eta = 24.0;
    /// Scales the sampling rate p.
    double rate_scale = 1.0;
    /// Ablation switch: classify every edge light (estimate = A0-only).
    bool use_oracle = true;
    /// Safety cap on stored cycles (0 = unlimited).
    std::size_t max_stored_cycles = 1u << 20;
  };

  explicit ArbThreePassFourCycleCounter(const Params& params);

  // EdgeStreamAlgorithm:
  int NumPasses() const override { return 3; }
  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "arb3pass/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  Estimate Result() const { return result_; }

  struct Diagnostics {
    std::size_t stored_cycles = 0;
    std::size_t classified_edges = 0;
    std::size_t heavy_edges = 0;
    double a0 = 0.0;
    double a1 = 0.0;
    double p = 0.0;
  };
  const Diagnostics& diagnostics() const { return diagnostics_; }

 private:
  struct StoredCycle {
    Edge witness;            // The pass-2 edge e.
    Edge others[3];          // The three S0 edges of τ.
  };

  /// Oracle bookkeeping for one classification target f = (a,b).
  struct Target {
    Edge f;
    // H_f-edge observations: (g1 = non-R-certified endpoint, g2 = R member).
    struct Observation {
      std::uint64_t g1_key = 0;
      std::uint64_t g2_key = 0;
      bool g2_in_r1 = false;
      bool g2_in_r2 = false;
    };
    std::vector<Observation> observations;
    std::unordered_set<std::uint64_t, Mix64Hash> seen_pairs;  // Dedup.
    bool heavy = false;
  };

  bool InQ1(VertexId v) const { return q1_hash_.ToUnit(v) < p_; }
  bool InQ2(VertexId v) const { return q2_hash_.ToUnit(v) < p_; }
  bool InS0(const Edge& e) const { return s0_hash_.ToUnit(e.Key()) < p_; }

  /// f/g subsampling (§5.1): is the H_f-vertex "edge (v,c)" kept in R given
  /// that v ∈ Q (already required)? `both` says whether v has edges to both
  /// endpoints of f; `side` identifies which copy this is (0: edge to f.u,
  /// 1: edge to f.v).
  bool SubsampleKeep(std::size_t target_idx, int which_r, VertexId v,
                     int side, bool both) const;

  /// Full R-membership test for H_f vertex (v, c) where c ∈ {f.u, f.v}.
  void RMembership(std::size_t target_idx, const Edge& g, bool* in_r1,
                   bool* in_r2) const;

  void PreparePassThree();
  void RecordCertificate(std::size_t target_idx, const Edge& g1,
                         const Edge& g2, std::size_t g1_arrived);
  void FinishOracles();
  void UpdateSpace();

  Params params_;
  double p_ = 1.0;
  double p_prime_ = 1.0;     // Effective R rate after subsampling.
  double subsample_q_ = 0.0; // The paper's q.
  double m_cap_ = 1.0;       // η√T oracle scale.

  KWiseHash s0_hash_;
  KWiseHash q1_hash_;
  KWiseHash q2_hash_;
  KWiseHash sub_hash_;       // Drives the f/g subsampling.

  // Pass-1 collections. S1/S2 (edges incident to Q1/Q2) are stored as a
  // membership set plus a reverse index far-vertex -> sampled neighbors,
  // which is what the pass-3 oracle needs.
  std::unordered_set<std::uint64_t, Mix64Hash> s0_set_;
  std::unordered_map<VertexId, std::vector<VertexId>> s0_adj_;
  std::unordered_set<std::uint64_t, Mix64Hash> s1_edges_;
  std::unordered_set<std::uint64_t, Mix64Hash> s2_edges_;
  std::unordered_map<VertexId, std::vector<VertexId>> s1_rev_;
  std::unordered_map<VertexId, std::vector<VertexId>> s2_rev_;
  std::size_t s1_size_ = 0;
  std::size_t s2_size_ = 0;

  // Pass-2 collections.
  std::vector<StoredCycle> cycles_;
  bool cycle_cap_hit_ = false;

  // Whether PreparePassThree has run (drives what a checkpoint must carry:
  // the derived oracle indexes are rebuilt from pass-1 state on restore,
  // but only if they had been built when the snapshot was taken).
  bool oracle_prepared_ = false;

  // Pass-3 oracle state.
  std::vector<Target> targets_;
  std::unordered_map<std::uint64_t, std::size_t, Mix64Hash> target_index_;
  // Vertex -> targets having it as an endpoint.
  std::unordered_map<VertexId, std::vector<std::size_t>> targets_by_endpoint_;
  // Far endpoint d -> (target, R-member edge (d, side)). Built before pass 3.
  struct RMemberRef {
    std::size_t target_idx = 0;
    Edge member;        // The R-member H_f vertex (an edge of G).
    bool in_r1 = false;
    bool in_r2 = false;
  };
  std::unordered_map<VertexId, std::vector<RMemberRef>> rmembers_by_far_;
  // Arrival positions of edges incident to any target endpoint.
  std::unordered_map<std::uint64_t, std::size_t, Mix64Hash> arrivals_;
  // Keys of already-arrived edges incident to any R-member far endpoint —
  // the certificate witnesses. Shared (deduped) across all targets, so an
  // H_f edge can be recorded at whichever of its two witnesses (the
  // H_f-vertex g1 or the closing edge ek) arrives later, with no pending
  // queues.
  std::unordered_set<std::uint64_t, Mix64Hash> far_incident_;
  // Far endpoints that appear in at least one RMemberRef (gates insertion
  // into far_incident_).
  std::unordered_set<VertexId> far_vertices_;
  // Per-target refs grouped by which endpoint of f the member touches
  // (0: f.u side, 1: f.v side) — used when g1 arrives after its
  // certificate.
  struct SideRef {
    Edge member;
    bool in_r1 = false;
    bool in_r2 = false;
  };
  std::unordered_map<std::uint64_t, std::array<std::vector<SideRef>, 2>,
                     Mix64Hash>
      refs_by_target_side_;

  SpaceTracker space_;
  Estimate result_;
  Diagnostics diagnostics_;
};

/// Convenience wrapper.
Estimate CountFourCyclesArbThreePass(
    const EdgeStream& stream, const ArbThreePassFourCycleCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_ARB_THREE_PASS_H_
