#include "core/arb_distinguisher.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

ArbTwoPassDistinguisher::ArbTwoPassDistinguisher(const Params& params)
    : params_(params), sample_hash_(8, params.base.seed ^ 0x4453ULL) {
  CHECK_GE(params.base.t_guess, 1.0);
  p_ = std::min(1.0, params.base.c / std::sqrt(params.base.t_guess));
}

void ArbTwoPassDistinguisher::StartPass(int pass, std::size_t stream_length) {
  (void)stream_length;
  if (pass == 1) {
    collect_cap_ =
        params_.collect_cap > 0
            ? params_.collect_cap
            : static_cast<std::size_t>(
                  2.0 * std::pow(static_cast<double>(sampled_vertices_.size()),
                                 1.5)) +
                  4;
  }
}

bool ArbTwoPassDistinguisher::InsertAndCheck(const Edge& e) {
  if (!collected_set_.insert(e.Key()).second) return false;
  // A new 4-cycle through (u,v) is a pre-existing path u - x - w - v.
  bool closes = false;
  auto iu = collected_adj_.find(e.u);
  auto iv = collected_adj_.find(e.v);
  if (iu != collected_adj_.end() && iv != collected_adj_.end()) {
    for (VertexId x : iu->second) {
      if (x == e.v) continue;
      for (VertexId w : iv->second) {
        if (w == e.u || w == x) continue;
        if (collected_set_.count(Edge(x, w).Key()) > 0) {
          closes = true;
          break;
        }
      }
      if (closes) break;
    }
  }
  collected_adj_[e.u].push_back(e.v);
  collected_adj_[e.v].push_back(e.u);
  ++collected_count_;
  return closes;
}

void ArbTwoPassDistinguisher::ProcessEdge(int pass, const Edge& e,
                                          std::size_t position) {
  (void)position;
  if (pass == 0) {
    if (sample_hash_.ToUnit(e.Key()) < p_) {
      sample_.push_back(e);
      sampled_vertices_.insert(e.u);
      sampled_vertices_.insert(e.v);
    }
  } else {
    if (found_ || collected_count_ >= collect_cap_) return;
    if (sampled_vertices_.count(e.u) == 0 ||
        sampled_vertices_.count(e.v) == 0) {
      return;
    }
    if (InsertAndCheck(e)) found_ = true;
  }
  space_.SetComponent("sample", 2 * sample_.size());
  space_.SetComponent("sampled_vertices", sampled_vertices_.size());
  space_.SetComponent("collected", 2 * collected_count_);
}

void ArbTwoPassDistinguisher::EndPass(int pass) { (void)pass; }

std::size_t ArbTwoPassDistinguisher::AuditSpace() const {
  // Sizes the collected subgraph from the edge set itself, not the
  // collected_count_ counter the accounting uses — the audit exists to
  // catch that kind of drift.
  return 2 * sample_.size() + sampled_vertices_.size() +
         2 * collected_set_.size();
}

bool ArbTwoPassDistinguisher::SaveState(StateWriter& w) const {
  w.U32(params_.num_vertices);
  w.Size(params_.collect_cap);
  w.Double(p_);
  w.Double(params_.base.t_guess);
  w.Double(params_.base.c);
  w.U64(params_.base.seed);
  w.Vec(sample_);
  WriteUnordered(w, sampled_vertices_,
                 [](StateWriter& sw, VertexId v) { sw.U32(v); });
  WriteUnordered(w, collected_adj_, [](StateWriter& sw, const auto& kv) {
    sw.U32(kv.first);
    sw.Vec(kv.second);
  });
  WriteU64Set(w, collected_set_);
  w.Size(collected_count_);
  w.Size(collect_cap_);
  w.Bool(found_);
  space_.SaveState(w);
  return true;
}

bool ArbTwoPassDistinguisher::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices || r.Size() != params_.collect_cap ||
      r.Double() != p_ || r.Double() != params_.base.t_guess ||
      r.Double() != params_.base.c || r.U64() != params_.base.seed) {
    return r.Fail();
  }
  std::vector<Edge> sample;
  if (!r.Vec(&sample)) return false;
  std::size_t sv_buckets = 0;
  std::vector<VertexId> sv_elems;
  if (!ReadUnordered(r, &sv_buckets, &sv_elems,
                     [](StateReader& sr) { return sr.U32(); })) {
    return false;
  }
  std::size_t adj_buckets = 0;
  std::vector<std::pair<VertexId, std::vector<VertexId>>> adj_elems;
  if (!ReadUnordered(r, &adj_buckets, &adj_elems, [](StateReader& sr) {
        const VertexId key = sr.U32();
        std::vector<VertexId> neighbors;
        sr.Vec(&neighbors);
        return std::make_pair(key, std::move(neighbors));
      })) {
    return false;
  }
  std::unordered_set<std::uint64_t, Mix64Hash> collected;
  if (!ReadU64Set(r, &collected)) return false;
  const std::size_t count = r.Size();
  const std::size_t cap = r.Size();
  const bool found = r.Bool();
  if (!r.ok()) return false;
  sample_ = std::move(sample);
  RestoreUnorderedOrder(sampled_vertices_, sv_buckets, sv_elems,
                        [](auto& c, VertexId v) { c.insert(v); });
  RestoreUnorderedOrder(collected_adj_, adj_buckets, adj_elems,
                        [](auto& c, const auto& kv) { c.insert(kv); });
  collected_set_ = std::move(collected);
  collected_count_ = count;
  collect_cap_ = cap;
  found_ = found;
  return space_.RestoreState(r);
}

bool DistinguishFourCycles(const EdgeStream& stream,
                           const ArbTwoPassDistinguisher::Params& params,
                           std::size_t* space_words) {
  ArbTwoPassDistinguisher algo(params);
  RunEdgeStream(algo, stream);
  if (space_words != nullptr) *space_words = algo.SpaceWords();
  return algo.FoundFourCycle();
}

}  // namespace cyclestream
