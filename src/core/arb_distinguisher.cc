#include "core/arb_distinguisher.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cyclestream {

ArbTwoPassDistinguisher::ArbTwoPassDistinguisher(const Params& params)
    : params_(params), sample_hash_(8, params.base.seed ^ 0x4453ULL) {
  CHECK_GE(params.base.t_guess, 1.0);
  p_ = std::min(1.0, params.base.c / std::sqrt(params.base.t_guess));
}

void ArbTwoPassDistinguisher::StartPass(int pass, std::size_t stream_length) {
  (void)stream_length;
  if (pass == 1) {
    collect_cap_ =
        params_.collect_cap > 0
            ? params_.collect_cap
            : static_cast<std::size_t>(
                  2.0 * std::pow(static_cast<double>(sampled_vertices_.size()),
                                 1.5)) +
                  4;
  }
}

bool ArbTwoPassDistinguisher::InsertAndCheck(const Edge& e) {
  if (!collected_set_.insert(e.Key()).second) return false;
  // A new 4-cycle through (u,v) is a pre-existing path u - x - w - v.
  bool closes = false;
  auto iu = collected_adj_.find(e.u);
  auto iv = collected_adj_.find(e.v);
  if (iu != collected_adj_.end() && iv != collected_adj_.end()) {
    for (VertexId x : iu->second) {
      if (x == e.v) continue;
      for (VertexId w : iv->second) {
        if (w == e.u || w == x) continue;
        if (collected_set_.count(Edge(x, w).Key()) > 0) {
          closes = true;
          break;
        }
      }
      if (closes) break;
    }
  }
  collected_adj_[e.u].push_back(e.v);
  collected_adj_[e.v].push_back(e.u);
  ++collected_count_;
  return closes;
}

void ArbTwoPassDistinguisher::ProcessEdge(int pass, const Edge& e,
                                          std::size_t position) {
  (void)position;
  if (pass == 0) {
    if (sample_hash_.ToUnit(e.Key()) < p_) {
      sample_.push_back(e);
      sampled_vertices_.insert(e.u);
      sampled_vertices_.insert(e.v);
    }
  } else {
    if (found_ || collected_count_ >= collect_cap_) return;
    if (sampled_vertices_.count(e.u) == 0 ||
        sampled_vertices_.count(e.v) == 0) {
      return;
    }
    if (InsertAndCheck(e)) found_ = true;
  }
  space_.SetComponent("sample", 2 * sample_.size());
  space_.SetComponent("sampled_vertices", sampled_vertices_.size());
  space_.SetComponent("collected", 2 * collected_count_);
}

void ArbTwoPassDistinguisher::EndPass(int pass) { (void)pass; }

std::size_t ArbTwoPassDistinguisher::AuditSpace() const {
  // Sizes the collected subgraph from the edge set itself, not the
  // collected_count_ counter the accounting uses — the audit exists to
  // catch that kind of drift.
  return 2 * sample_.size() + sampled_vertices_.size() +
         2 * collected_set_.size();
}

bool DistinguishFourCycles(const EdgeStream& stream,
                           const ArbTwoPassDistinguisher::Params& params,
                           std::size_t* space_words) {
  ArbTwoPassDistinguisher algo(params);
  RunEdgeStream(algo, stream);
  if (space_words != nullptr) *space_words = algo.SpaceWords();
  return algo.FoundFourCycle();
}

}  // namespace cyclestream
