#ifndef CYCLESTREAM_CORE_TURNSTILE_F2_H_
#define CYCLESTREAM_CORE_TURNSTILE_F2_H_

#include <cstdint>
#include <vector>

#include "core/arb_f2_counter.h"
#include "core/config.h"
#include "sketch/sketch_backend.h"
#include "stream/dynamic/turnstile.h"

namespace cyclestream {

/// Dynamic-model estimators (query kinds `turnstile-f2-c4` and
/// `turnstile-f2-triangle`). Both are linear sketches of the signed edge
/// indicator vector x (x_e = inserts − deletes of e), which is the whole
/// point of the turnstile subsystem: a deletion is the insertion applied
/// with sign −1, so cancellation, shard merges, checkpoints, window-bucket
/// folds, and decay rescaling all compose exactly. See DESIGN.md §16.

/// Four-cycle counting in the turnstile model: the paper's Thm 5.7
/// estimator verbatim — ArbF2FourCycleCounter is already "correct in the
/// dynamic setting" (its header), this wrapper is the op-aware stream
/// adapter. On an insert-only turnstile stream the inner state, and hence
/// the estimate, is bit-identical to the arb-f2 query kind with the same
/// Params (same seed chain, same accumulator layout, same update order).
class TurnstileF2FourCycleCounter : public TurnstileStreamAlgorithm {
 public:
  using Params = ArbF2FourCycleCounter::Params;

  explicit TurnstileF2FourCycleCounter(const Params& params)
      : inner_(params) {}

  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessUpdate(int pass, const TurnstileUpdate& u,
                     std::size_t position) override;
  /// Batched delivery: splits the block into an edge span plus a ±1 sign
  /// span and feeds the counter's signed sharded path, preserving the
  /// scalar≡block bit-identity contract at any intra_shards count.
  void ProcessUpdateBlock(int pass, std::span<const TurnstileUpdate> updates,
                          std::size_t base_position) override;
  void EndPass(int pass) override;
  Estimate Result() const override { return inner_.Result(); }
  bool Rescale(double factor) override;
  std::string_view CheckpointId() const override { return "turnstile-c4/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;
  bool MergeFrom(const TurnstileStreamAlgorithm& other) override;

  const ArbF2FourCycleCounter& inner() const { return inner_; }

 private:
  ArbF2FourCycleCounter inner_;
  // Block-conversion scratch (derived working memory, never serialized).
  std::vector<Edge> edge_scratch_;
  std::vector<double> sign_scratch_;
};

/// Triangle counting in the turnstile model via the cubic sign sketch:
/// each copy keeps the single counter Z_c = Σ_e x_e·σ_c(u)·σ_c(v) with
/// 6-wise independent ±1 vertex signs σ_c. For an ordered triple of
/// distinct stream edges the sign product survives expectation only when
/// the three edges close a triangle (each vertex appears exactly twice,
/// σ² = 1), and each triangle is hit by 3! orderings, so E[Z³] = 6T —
/// 6-wise independence is exactly enough for the third moment. The
/// estimate is MedianOfMeans over the per-copy basics Z_c³/6. Space is
/// O(1) counters per copy (plus the per-vertex sign cache), the state is
/// linear in x, and deletions are sign −1 updates — the triangle-side
/// counterpart the insert-only algorithms (A–D) cannot offer.
class TurnstileF2TriangleCounter : public TurnstileStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    int copies_per_group = -1;  // <= 0 derives ⌈2/ε²⌉ capped at 512.
    int groups = 9;
    /// Same block/shard throughput knobs (and the same bit-identity
    /// contract) as ArbF2FourCycleCounter::Params.
    SketchBackend sketch_backend = SketchBackend::kScalar;
    int intra_shards = 1;
  };

  explicit TurnstileF2TriangleCounter(const Params& params);

  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessUpdate(int pass, const TurnstileUpdate& u,
                     std::size_t position) override;
  void ProcessUpdateBlock(int pass, std::span<const TurnstileUpdate> updates,
                          std::size_t base_position) override;
  void EndPass(int pass) override;
  Estimate Result() const override;
  bool Rescale(double factor) override;
  std::string_view CheckpointId() const override { return "turnstile-tri/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;
  bool MergeFrom(const TurnstileStreamAlgorithm& other) override;

 private:
  void Apply(const Edge& e, double sign, double* z) const;
  void FoldShardExtras();

  Params params_;
  std::size_t num_copies_ = 0;
  // ±1 sign cache, copy-minor: sigma_[v·C + c] for vertex v, copy c.
  std::vector<signed char> sigma_;
  // Per-copy counters Z_c (exact integers while |Z| < 2^53).
  std::vector<double> z_;
  // Per-shard counter scratch for block delivery, mirroring the arb-f2
  // layout: shard s > 0 writes shard_extras_[s-1], folded in fixed order.
  std::vector<std::vector<double>> shard_extras_;
  mutable std::vector<double> cube_scratch_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_TURNSTILE_F2_H_
