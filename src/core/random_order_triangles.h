#ifndef CYCLESTREAM_CORE_RANDOM_ORDER_TRIANGLES_H_
#define CYCLESTREAM_CORE_RANDOM_ORDER_TRIANGLES_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "hash/kwise.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// The §2.1 algorithm (Theorem 2.1): one pass over a *randomly ordered* edge
/// stream, Õ(ε⁻²·m/√T) space, (1+ε)-approximation of the triangle count.
///
/// Components (names follow the paper):
///  - Level structures (i = 0..log√T): vertex samples V_i at rate
///    p_i = min(1, cv/2^i), and E_i = edges incident to V_i among the first
///    q_i·m stream positions, q_i = 2^i/√T. An edge arriving after position
///    q_i·m that closes a triangle with two E_i edges enters the candidate
///    set P — the paper's novel mechanism for spotting heavy edges online in
///    a random-order stream.
///  - Rough estimator: S = the first r·m stream edges (r = c·ε⁻¹/√T); C =
///    edges closing a triangle with two S edges. Estimates the count of
///    triangles whose edges are all light.
///  - Oracle: O = E_{log√T} (the top level, built over the whole stream);
///    e is heavy iff t_e^O ≥ p·√T where p = p_{log√T}. The oracle is a
///    function of the sampled set, not the stream order.
///
/// Final estimate:
///   (1/3r²)·Σ_{e∈C_L} t_e^{S_L}
///     + (1/p)·Σ_{e∈P_H} ( t_{e,0}^O + t_{e,1}^O/2 + t_{e,2}^O/3 )
/// where the coefficients undo the multiple counting of triangles with
/// several heavy edges.
///
/// Practical notes:
///  - `t_guess` stands in for T (paper convention).
///  - The theoretical vertex-sampling constant is 10·c·ε⁻²·log n, which
///    saturates p_i = 1 on laptop-scale graphs; `level_rate` exposes the
///    cv constant directly (default: c·ε⁻²·log₂n) so space/accuracy
///    trade-offs are measurable. All clamping behavior matches the paper
///    (probabilities and prefix fractions cap at 1).
class RandomOrderTriangleCounter : public EdgeStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    /// Override for cv in p_i = min(1, cv/2^i); <= 0 means use the default
    /// c·ε⁻²·log₂(n).
    double level_rate = -1.0;
    /// Override for r in S = first r·m edges; <= 0 means c·ε⁻¹/√T.
    double prefix_rate = -1.0;
  };

  explicit RandomOrderTriangleCounter(const Params& params);

  // EdgeStreamAlgorithm:
  int NumPasses() const override { return 1; }
  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "randtri/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  /// Final estimate; valid after the pass completes.
  Estimate Result() const { return result_; }

  /// Oracle heaviness of an edge (exposed for the oracle-quality tests).
  /// Valid after the pass.
  bool IsHeavy(const Edge& e) const;

  /// Diagnostics for the ablation experiment.
  struct Diagnostics {
    double light_term = 0.0;
    double heavy_term = 0.0;
    std::size_t candidate_heavy_edges = 0;  // |P|
    std::size_t oracle_heavy_in_p = 0;      // |P_H|
    std::size_t rough_set_size = 0;         // |C|
  };
  const Diagnostics& diagnostics() const { return diagnostics_; }

 private:
  struct Level {
    double p = 1.0;                 // Vertex sampling probability.
    double q = 1.0;                 // Prefix fraction.
    std::size_t prefix_edges = 0;   // q·m, fixed at StartPass.
    KWiseHash vertex_hash;          // Defines V_i = {v : h(v) < p}.
    std::unordered_set<std::uint64_t, Mix64Hash> edges;  // E_i keys.
    std::unordered_map<VertexId, std::vector<VertexId>> adj;  // E_i adjacency.

    Level(double p_in, double q_in, KWiseHash hash)
        : p(p_in), q(q_in), vertex_hash(std::move(hash)) {}

    bool InVi(VertexId v) const { return vertex_hash.ToUnit(v) < p; }
    void AddEdge(const Edge& e);
    /// t_e^{E_i} >= 1 ?
    bool ClosesTriangle(const Edge& e) const;
  };

  // Oracle helpers (level L is the oracle set O).
  std::uint64_t OracleTriangleCount(const Edge& e) const;  // t_e^O, memoized.
  std::vector<VertexId> OracleCommonNeighbors(const Edge& e) const;

  double TermLight() const;
  double TermHeavy();
  void UpdateSpace();

  Params params_;
  int num_levels_ = 1;       // L+1 level structures.
  double p_oracle_ = 1.0;    // p_{log√T} after clamping.
  double heavy_cut_ = 0.0;   // p·√T oracle threshold.
  double r_ = 1.0;           // Prefix rate for S.
  std::size_t s_prefix_edges_ = 0;

  std::vector<Level> levels_;
  std::vector<Edge> s_edges_;  // S.
  std::unordered_map<VertexId, std::vector<VertexId>> s_adj_;
  std::unordered_set<std::uint64_t, Mix64Hash> c_set_;  // C keys.
  std::vector<Edge> c_edges_;
  std::unordered_set<std::uint64_t, Mix64Hash> p_set_;  // P keys.
  std::vector<Edge> p_edges_;

  mutable std::unordered_map<std::uint64_t, std::uint64_t, Mix64Hash>
      oracle_cache_;

  SpaceTracker space_;
  Estimate result_;
  Diagnostics diagnostics_;
  bool finished_ = false;
};

/// Convenience wrapper: runs the counter over `stream` and returns the
/// estimate.
Estimate CountTrianglesRandomOrder(const EdgeStream& stream,
                                   const RandomOrderTriangleCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_RANDOM_ORDER_TRIANGLES_H_
