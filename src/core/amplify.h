#ifndef CYCLESTREAM_CORE_AMPLIFY_H_
#define CYCLESTREAM_CORE_AMPLIFY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "util/check.h"
#include "util/parallel.h"

namespace cyclestream {

/// Number of independent copies for a 1−δ success probability:
/// ceil(2·log(1/δ)), forced odd so the median is a single run's output.
inline int AmplifyCopies(double delta) {
  CHECK_GT(delta, 0.0);
  CHECK_LT(delta, 1.0);
  const int copies =
      static_cast<int>(std::ceil(2.0 * std::log(1.0 / delta))) | 1;
  return std::max(copies, 1);
}

/// Derived seed for amplification copy i — a pure function of (seed, i), so
/// copy i draws the same randomness whether it runs serially or on a pool
/// thread.
inline std::uint64_t AmplifySeed(std::uint64_t seed, int copy) {
  return seed + 0x9e3779b9ULL * static_cast<std::uint64_t>(copy + 1);
}

/// Success-probability amplification, as the paper prescribes after
/// Theorems 5.3 and 5.6: "by running Θ(log 1/δ) copies of the algorithm in
/// parallel and taking the median of their outputs, we can increase the
/// success probability to 1 − δ."
///
/// `run` maps a seed to one independent Estimate (typically: construct the
/// algorithm with that seed and replay the stream). Space is the sum over
/// copies — the copies run in parallel in the model, so their space adds.
///
/// The copies genuinely run in parallel on the process-wide pool
/// (`SetDefaultThreads`); `run` is invoked concurrently and must be
/// thread-safe — capture shared streams/graphs by const reference only and
/// keep all mutable state inside the call. Copy i always receives
/// AmplifySeed(seed, i) and the copies are reduced in index order, so the
/// returned Estimate is bit-identical at every thread count.
///
///   Estimate e = AmplifyMedian(0.05, seed, [&](std::uint64_t s) {
///     auto p = params; p.base.seed = s;
///     return CountFourCyclesArbThreePass(stream, p);
///   });
template <typename RunFn>
Estimate AmplifyMedian(double delta, std::uint64_t seed, RunFn run) {
  const int copies = AmplifyCopies(delta);
  const std::vector<Estimate> estimates = ParallelMap(
      static_cast<std::size_t>(copies), [&run, seed](std::size_t i) {
        return run(AmplifySeed(seed, static_cast<int>(i)));
      });
  std::vector<double> values;
  values.reserve(estimates.size());
  std::size_t space = 0;
  for (const Estimate& e : estimates) {
    values.push_back(e.value);
    space += e.space_words;
  }
  std::nth_element(values.begin(), values.begin() + values.size() / 2,
                   values.end());
  Estimate out;
  out.value = values[values.size() / 2];
  out.space_words = space;
  return out;
}

/// Majority-vote amplification for boolean distinguishers (Theorem 5.6's
/// variant). Returns the majority answer over Θ(log 1/δ) copies. Copies run
/// in parallel under the same contract as AmplifyMedian.
template <typename RunFn>
bool AmplifyMajority(double delta, std::uint64_t seed, RunFn run) {
  const int copies = AmplifyCopies(delta);
  const std::vector<char> votes = ParallelMap(
      static_cast<std::size_t>(copies), [&run, seed](std::size_t i) {
        return static_cast<char>(run(AmplifySeed(seed, static_cast<int>(i))));
      });
  int yes = 0;
  for (const char vote : votes) yes += vote ? 1 : 0;
  return 2 * yes > copies;
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_AMPLIFY_H_
