#ifndef CYCLESTREAM_CORE_AMPLIFY_H_
#define CYCLESTREAM_CORE_AMPLIFY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/config.h"
#include "util/check.h"

namespace cyclestream {

/// Success-probability amplification, as the paper prescribes after
/// Theorems 5.3 and 5.6: "by running Θ(log 1/δ) copies of the algorithm in
/// parallel and taking the median of their outputs, we can increase the
/// success probability to 1 − δ."
///
/// `run` maps a seed to one independent Estimate (typically: construct the
/// algorithm with that seed and replay the stream). Space is the sum over
/// copies — the copies run in parallel in the model, so their space adds.
///
///   Estimate e = AmplifyMedian(0.05, seed, [&](std::uint64_t s) {
///     auto p = params; p.base.seed = s;
///     return CountFourCyclesArbThreePass(stream, p);
///   });
template <typename RunFn>
Estimate AmplifyMedian(double delta, std::uint64_t seed, RunFn run) {
  CHECK_GT(delta, 0.0);
  CHECK_LT(delta, 1.0);
  // ceil(c·log(1/δ)) copies, odd so the median is a single run's output.
  int copies = static_cast<int>(std::ceil(2.0 * std::log(1.0 / delta))) | 1;
  copies = std::max(copies, 1);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(copies));
  std::size_t space = 0;
  for (int i = 0; i < copies; ++i) {
    const Estimate e = run(seed + 0x9e3779b9ULL * (i + 1));
    values.push_back(e.value);
    space += e.space_words;
  }
  std::nth_element(values.begin(), values.begin() + values.size() / 2,
                   values.end());
  Estimate out;
  out.value = values[values.size() / 2];
  out.space_words = space;
  return out;
}

/// Majority-vote amplification for boolean distinguishers (Theorem 5.6's
/// variant). Returns the majority answer over Θ(log 1/δ) copies.
template <typename RunFn>
bool AmplifyMajority(double delta, std::uint64_t seed, RunFn run) {
  CHECK_GT(delta, 0.0);
  CHECK_LT(delta, 1.0);
  int copies = static_cast<int>(std::ceil(2.0 * std::log(1.0 / delta))) | 1;
  copies = std::max(copies, 1);
  int yes = 0;
  for (int i = 0; i < copies; ++i) {
    yes += run(seed + 0x9e3779b9ULL * (i + 1)) ? 1 : 0;
  }
  return 2 * yes > copies;
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_AMPLIFY_H_
