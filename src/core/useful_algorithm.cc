#include "core/useful_algorithm.h"

#include <cmath>

#include "util/check.h"

namespace cyclestream {

UsefulAlgorithm::UsefulAlgorithm(const Config& config) : config_(config) {
  CHECK_GT(config.p, 0.0);
  CHECK_LE(config.p, 1.0);
  CHECK_GT(config.m_cap, 0.0);
  heavy_threshold_ = config.p * std::sqrt(config.m_cap);
}

void UsefulAlgorithm::OnVertex(std::uint64_t v_key, bool v_in_r1,
                               bool v_in_r2,
                               std::span<const IncidentEdge> edges) {
  double w_out_2 = 0.0;  // Edges v -> already-arrived u ∈ R2.
  double w_in_1 = 0.0;   // Edges from not-yet-arrived u ∈ R1 into v.
  double w_in_2 = 0.0;   // Edges from not-yet-arrived u ∈ R2 into v.
  for (const IncidentEdge& e : edges) {
    const bool arrived = config_.external_arrivals
                             ? e.neighbor_arrived
                             : seen_r_.count(e.neighbor) > 0;
    if (arrived) {
      if (e.in_r2) w_out_2 += e.weight;
      // Arrived heavy R2 neighbors accumulate their exact in-weight a(u):
      // the edge v -> u points into u (u is earlier).
      if (e.in_r2) {
        auto it = heavy_in_r2_.find(e.neighbor);
        if (it != heavy_in_r2_.end()) it->second += e.weight;
      }
    } else {
      if (e.in_r1) w_in_1 += e.weight;
      if (e.in_r2) w_in_2 += e.weight;
    }
  }
  // A accumulates w_out_2 over every vertex; at end of stream
  // A = Σ_{u ∈ R2} w_in(u).
  a_total_ += w_out_2;

  if (w_in_1 >= heavy_threshold_) {
    // v is heavy. If v ∈ R2, track its exact in-weight from now on.
    if (v_in_r2) heavy_in_r2_.emplace(v_key, 0.0);
    a_heavy_ += w_in_2;
  }

  if (!config_.external_arrivals && (v_in_r1 || v_in_r2)) {
    seen_r_.insert(v_key);
  }
}

double UsefulAlgorithm::Estimate() const {
  double a_light = a_total_;
  for (const auto& [key, a_v] : heavy_in_r2_) {
    (void)key;
    a_light -= a_v;
  }
  return (a_light + a_heavy_) / config_.p;
}

std::size_t UsefulAlgorithm::SpaceWords() const {
  return seen_r_.size() + 2 * heavy_in_r2_.size() + 4;
}

}  // namespace cyclestream
