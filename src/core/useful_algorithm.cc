#include "core/useful_algorithm.h"

#include <cmath>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

UsefulAlgorithm::UsefulAlgorithm(const Config& config) : config_(config) {
  CHECK_GT(config.p, 0.0);
  CHECK_LE(config.p, 1.0);
  CHECK_GT(config.m_cap, 0.0);
  heavy_threshold_ = config.p * std::sqrt(config.m_cap);
}

void UsefulAlgorithm::OnVertex(std::uint64_t v_key, bool v_in_r1,
                               bool v_in_r2,
                               std::span<const IncidentEdge> edges) {
  double w_out_2 = 0.0;  // Edges v -> already-arrived u ∈ R2.
  double w_in_1 = 0.0;   // Edges from not-yet-arrived u ∈ R1 into v.
  double w_in_2 = 0.0;   // Edges from not-yet-arrived u ∈ R2 into v.
  for (const IncidentEdge& e : edges) {
    const bool arrived = config_.external_arrivals
                             ? e.neighbor_arrived
                             : seen_r_.count(e.neighbor) > 0;
    if (arrived) {
      if (e.in_r2) w_out_2 += e.weight;
      // Arrived heavy R2 neighbors accumulate their exact in-weight a(u):
      // the edge v -> u points into u (u is earlier).
      if (e.in_r2) {
        auto it = heavy_in_r2_.find(e.neighbor);
        if (it != heavy_in_r2_.end()) it->second += e.weight;
      }
    } else {
      if (e.in_r1) w_in_1 += e.weight;
      if (e.in_r2) w_in_2 += e.weight;
    }
  }
  // A accumulates w_out_2 over every vertex; at end of stream
  // A = Σ_{u ∈ R2} w_in(u).
  a_total_ += w_out_2;

  if (w_in_1 >= heavy_threshold_) {
    // v is heavy. If v ∈ R2, track its exact in-weight from now on.
    if (v_in_r2) heavy_in_r2_.emplace(v_key, 0.0);
    a_heavy_ += w_in_2;
  }

  if (!config_.external_arrivals && (v_in_r1 || v_in_r2)) {
    seen_r_.insert(v_key);
  }
}

double UsefulAlgorithm::Estimate() const {
  double a_light = a_total_;
  for (const auto& [key, a_v] : heavy_in_r2_) {
    (void)key;
    a_light -= a_v;
  }
  return (a_light + a_heavy_) / config_.p;
}

std::size_t UsefulAlgorithm::SpaceWords() const {
  return seen_r_.size() + 2 * heavy_in_r2_.size() + 4;
}

void UsefulAlgorithm::SaveState(StateWriter& w) const {
  w.Double(config_.p);
  w.Double(config_.m_cap);
  w.Bool(config_.external_arrivals);
  WriteU64Set(w, seen_r_);
  WriteUnordered(w, heavy_in_r2_, [](StateWriter& sw, const auto& kv) {
    sw.U64(kv.first);
    sw.Double(kv.second);
  });
  w.Double(a_total_);
  w.Double(a_heavy_);
}

bool UsefulAlgorithm::RestoreState(StateReader& r) {
  if (r.Double() != config_.p || r.Double() != config_.m_cap ||
      r.Bool() != config_.external_arrivals) {
    return r.Fail();
  }
  std::unordered_set<std::uint64_t, Mix64Hash> seen;
  if (!ReadU64Set(r, &seen)) return false;
  std::size_t buckets = 0;
  std::vector<std::pair<std::uint64_t, double>> heavy;
  if (!ReadUnordered(r, &buckets, &heavy, [](StateReader& sr) {
        const std::uint64_t k = sr.U64();
        return std::make_pair(k, sr.Double());
      })) {
    return false;
  }
  const double a_total = r.Double();
  const double a_heavy = r.Double();
  if (!r.ok()) return false;
  seen_r_ = std::move(seen);
  RestoreUnorderedOrder(heavy_in_r2_, buckets, heavy,
                        [](auto& c, const auto& kv) { c.insert(kv); });
  a_total_ = a_total;
  a_heavy_ = a_heavy;
  return true;
}

}  // namespace cyclestream
