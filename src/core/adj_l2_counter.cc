#include "core/adj_l2_counter.h"

#include <algorithm>
#include <cmath>

#include "graph/types.h"
#include "hash/rng.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

AdjL2FourCycleCounter::AdjL2FourCycleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.num_vertices, 2u);
  CHECK_GT(params.base.epsilon, 0.0);
  CHECK_GE(params.base.t_guess, 1.0);
  const double eps = params.base.epsilon;
  const double n = static_cast<double>(params.num_vertices);
  const double t = params.base.t_guess;

  int copies = params.sampler_copies;
  if (copies <= 0) {
    // Need r = O(ε⁻²·F₂/T) accepted samples and each copy accepts with
    // probability ≈ the sampler's threshold slack; F₂ ≤ n² + 6T.
    const double r = std::min(4096.0, 8.0 / (eps * eps) *
                                          std::max(1.0, (n * n + 6.0 * t) / t));
    copies = static_cast<int>(std::max(32.0, r));
  }
  L2Sampler::Config config;
  config.copies = static_cast<std::size_t>(copies);
  config.sketch_depth = params.sketch_depth;
  config.sketch_width = params.sketch_width;
  config.epsilon = 0.25;
  sampler_ = std::make_unique<L2Sampler>(config, params.base.seed ^ 0x4c32ULL);
}

AdjL2FourCycleCounter::~AdjL2FourCycleCounter() = default;

void AdjL2FourCycleCounter::StartPass(int pass, std::size_t num_lists) {
  (void)pass;
  (void)num_lists;
}

void AdjL2FourCycleCounter::ProcessList(int pass, const AdjacencyList& list,
                                        std::size_t position) {
  CHECK_EQ(pass, 0);
  (void)position;
  max_list_len_ = std::max(max_list_len_, list.neighbors.size());
  // Expand the buffered list into wedge-vector increments.
  for (std::size_t i = 0; i < list.neighbors.size(); ++i) {
    for (std::size_t j = i + 1; j < list.neighbors.size(); ++j) {
      sampler_->Update(PairKey(list.neighbors[i], list.neighbors[j]), 1.0);
    }
  }
  space_.SetComponent("sampler", sampler_->SpaceWords());
  space_.SetComponent("list_buffer", max_list_len_);
}

std::size_t AdjL2FourCycleCounter::AuditSpace() const {
  // The sampler walks its own copies and sketch tables; the Δ term is the
  // longest buffered list.
  return sampler_->SpaceWords() + max_list_len_;
}

void AdjL2FourCycleCounter::EndPass(int pass) {
  CHECK_EQ(pass, 0);
  const double f2 = std::max(sampler_->EstimateF2(), 0.0);
  const auto samples = sampler_->DrawAll();
  samples_used_ = samples.size();

  Rng rng(params_.base.seed ^ 0xbe7ULL);
  double x_sum = 0.0;
  for (const auto& sample : samples) {
    const double x_uv = std::max(sample.value_estimate, 0.0);
    // X = 1 with probability (x−1)/(4x); E[X] = T / F₂.
    const double p = x_uv > 1.0 ? (x_uv - 1.0) / (4.0 * x_uv) : 0.0;
    x_sum += rng.Bernoulli(p) ? 1.0 : 0.0;
  }
  const double x_mean =
      samples.empty() ? 0.0 : x_sum / static_cast<double>(samples.size());

  space_.SetComponent("sampler", sampler_->SpaceWords());
  space_.SetComponent("list_buffer", max_list_len_);
  result_.value = x_mean * f2;
  result_.space_words = space_.Peak();
}

bool AdjL2FourCycleCounter::SaveState(StateWriter& w) const {
  w.U32(params_.num_vertices);
  w.Double(params_.base.epsilon);
  w.Double(params_.base.t_guess);
  w.U64(params_.base.seed);
  w.Size(params_.sketch_width);
  w.Size(params_.sketch_depth);
  sampler_->SaveState(w);
  w.Size(max_list_len_);
  space_.SaveState(w);
  return true;
}

bool AdjL2FourCycleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices ||
      r.Double() != params_.base.epsilon ||
      r.Double() != params_.base.t_guess || r.U64() != params_.base.seed ||
      r.Size() != params_.sketch_width || r.Size() != params_.sketch_depth) {
    return r.Fail();
  }
  if (!sampler_->RestoreState(r)) return false;
  max_list_len_ = r.Size();
  if (!r.ok()) return false;
  return space_.RestoreState(r);
}

Estimate CountFourCyclesAdjL2(const AdjacencyStream& stream,
                              const AdjL2FourCycleCounter::Params& params) {
  AdjL2FourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
