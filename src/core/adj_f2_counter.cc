#include "core/adj_f2_counter.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "hash/kwise_bank.h"
#include "hash/rng.h"
#include "sketch/median_of_means.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

AdjF2FourCycleCounter::AdjF2FourCycleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.num_vertices, 2u);
  CHECK_GT(params.base.epsilon, 0.0);
  CHECK_GE(params.base.t_guess, 1.0);
  const double eps = params.base.epsilon;
  const double n = static_cast<double>(params.num_vertices);
  const double t = params.base.t_guess;

  z_cap_ = static_cast<std::uint32_t>(std::ceil(1.0 / eps));

  // γ = ε·min(1, εT/n²); per-group copies ~ 2/γ².
  const double gamma = eps * std::min(1.0, eps * t / (n * n));
  int per_group = params.copies_per_group;
  if (per_group <= 0) {
    per_group = static_cast<int>(
        std::min(4096.0, std::ceil(2.0 / (gamma * gamma))));
    per_group = std::max(per_group, 1);
  }
  const int groups = std::max(params.groups, 1);
  std::uint64_t seed = params.base.seed ^ 0x41444a46ULL;  // "ADJF"
  num_copies_ = static_cast<std::size_t>(groups * per_group);
  const std::size_t c = num_copies_;
  const std::size_t nv = params.num_vertices;
  // Seed chain: the historical code drew both seeds inside an emplace_back
  // argument list, which gcc evaluates right-to-left — the beta seed came
  // off the splitmix chain first. Preserved verbatim so the sign streams
  // (and therefore all estimates) are unchanged.
  std::vector<std::uint64_t> alpha_seeds(c);
  std::vector<std::uint64_t> beta_seeds(c);
  for (std::size_t i = 0; i < c; ++i) {
    beta_seeds[i] = SplitMix64(seed);
    alpha_seeds[i] = SplitMix64(seed);
  }
  const KWiseHashBank alpha_bank(/*k=*/4, alpha_seeds);
  const KWiseHashBank beta_bank(/*k=*/4, beta_seeds);
  alpha_.resize(nv * c);
  beta_.resize(nv * c);
  for (std::size_t v = 0; v < nv; ++v) {
    alpha_bank.SignAll(v, alpha_.data() + v * c);
    beta_bank.SignAll(v, beta_.data() + v * c);
  }
  acc_a_.assign(c, 0.0);
  acc_b_.assign(c, 0.0);
  acc_c_.assign(c, 0.0);
  z_.assign(c, 0.0);
  params_.groups = groups;
  params_.copies_per_group = per_group;

  // Pair sampling for F1(z): paper rate p = 6·ε⁻⁴·n²·T⁻²·log n, clamped.
  pair_rate_ = params.pair_rate > 0.0
                   ? std::min(1.0, params.pair_rate)
                   : std::min(1.0, 6.0 * std::pow(eps, -4.0) * n * n /
                                       (t * t) * std::log2(n + 2.0));

  // Materialize the pair sample without enumerating all C(n,2) pairs:
  // draw the Binomial count, then distinct uniform pairs.
  Rng rng(params.base.seed ^ 0xf1f1ULL);
  const double total_pairs = n * (n - 1.0) / 2.0;
  std::uint64_t want =
      pair_rate_ >= 1.0
          ? static_cast<std::uint64_t>(total_pairs)
          : rng.Binomial(static_cast<std::uint64_t>(total_pairs), pair_rate_);
  if (pair_rate_ >= 1.0 && total_pairs > 4e6) {
    // Degenerate parameterization (tiny T guess): cap the explicit sample
    // so the simulation stays tractable; the estimate remains unbiased with
    // the adjusted rate.
    want = 4000000;
    pair_rate_ = static_cast<double>(want) / total_pairs;
  }
  std::unordered_set<std::uint64_t, Mix64Hash> chosen;
  chosen.reserve(want * 2);
  while (chosen.size() < want) {
    const VertexId a = static_cast<VertexId>(rng.UniformInt(params.num_vertices));
    const VertexId b = static_cast<VertexId>(rng.UniformInt(params.num_vertices));
    if (a == b) continue;
    if (chosen.insert(PairKey(a, b)).second) {
      SampledPair sp;
      sp.u = std::min(a, b);
      sp.v = std::max(a, b);
      const auto idx = static_cast<std::uint32_t>(pairs_.size());
      pairs_.push_back(sp);
      pairs_by_vertex_[sp.u].push_back(idx);
      pairs_by_vertex_[sp.v].push_back(idx);
    }
  }
}

void AdjF2FourCycleCounter::StartPass(int pass, std::size_t num_lists) {
  (void)pass;
  (void)num_lists;
}

void AdjF2FourCycleCounter::ProcessList(int pass, const AdjacencyList& list,
                                        std::size_t position) {
  CHECK_EQ(pass, 0);
  // F2 copies: stream the list through the four-counter estimator. The
  // copy-minor layout turns the per-neighbor inner loop into three
  // contiguous C-length sweeps; each copy's a/b/c/z sees the same additions
  // in the same order as the historical per-struct loop.
  const std::size_t c = num_copies_;
  std::fill(acc_a_.begin(), acc_a_.end(), 0.0);
  std::fill(acc_b_.begin(), acc_b_.end(), 0.0);
  std::fill(acc_c_.begin(), acc_c_.end(), 0.0);
  for (VertexId u : list.neighbors) {
    const signed char* au = alpha_.data() + static_cast<std::size_t>(u) * c;
    const signed char* bu = beta_.data() + static_cast<std::size_t>(u) * c;
    double* a = acc_a_.data();
    double* b = acc_b_.data();
    double* cc = acc_c_.data();
    for (std::size_t i = 0; i < c; ++i) {
      a[i] += static_cast<double>(au[i]);
    }
    for (std::size_t i = 0; i < c; ++i) {
      b[i] += static_cast<double>(bu[i]);
    }
    for (std::size_t i = 0; i < c; ++i) {
      cc[i] += static_cast<double>(au[i]) * static_cast<double>(bu[i]);
    }
  }
  for (std::size_t i = 0; i < c; ++i) {
    z_[i] += (acc_a_[i] * acc_b_[i] - acc_c_[i]) / 2.0;
  }

  // F1(z) pairs: stamp endpoints as they appear in this list; increment when
  // both endpoints carry this list's stamp.
  const std::uint64_t stamp = position;
  for (VertexId w : list.neighbors) {
    auto it = pairs_by_vertex_.find(w);
    if (it == pairs_by_vertex_.end()) continue;
    for (std::uint32_t idx : it->second) {
      SampledPair& sp = pairs_[idx];
      if (sp.u == w) {
        sp.stamp_u = stamp;
      } else {
        sp.stamp_v = stamp;
      }
      if (sp.stamp_u == stamp && sp.stamp_v == stamp && sp.counted != stamp) {
        sp.counted = stamp;
        if (sp.z < z_cap_) ++sp.z;
      }
    }
  }

  if ((position & 0x3f) == 0) UpdateSpace();
}

void AdjF2FourCycleCounter::UpdateSpace() {
  // Per copy: the four counters (A/B/C/Z) plus the two ±1 sign caches at 8
  // packed signs per word. Pairs: endpoints, z, and the two stamps.
  space_.SetComponent("sketch",
                      num_copies_ * (4 + 2 * params_.num_vertices / 8));
  space_.SetComponent("pairs", pairs_.size() * 5);
}

std::size_t AdjF2FourCycleCounter::AuditSpace() const {
  // Copy count taken from the real Z array and sign-cache size from the
  // real byte buffers, cross-checking the num_copies_/num_vertices-derived
  // accounting formula.
  const std::size_t copies = z_.size();
  const std::size_t signs_per_copy =
      copies == 0 ? 0 : 2 * (alpha_.size() / copies) / 8;
  return copies * (4 + signs_per_copy) + pairs_.size() * 5;
}

void AdjF2FourCycleCounter::EndPass(int pass) {
  CHECK_EQ(pass, 0);
  // E[Z²] = F₂/2: the symmetrized basic estimator
  // Z = Σ_{unordered {u,v}} x_{uv}(α_u β_v + α_v β_u)/2 has per-coordinate
  // second moment 1/2 (the αβ cross term vanishes under 4-wise
  // independence), so the unbiased estimate is 2·Z².
  square_scratch_.resize(num_copies_);
  for (std::size_t i = 0; i < num_copies_; ++i) {
    square_scratch_[i] = 2.0 * z_[i] * z_[i];
  }
  f2_estimate_ =
      MedianOfMeans(square_scratch_, static_cast<std::size_t>(params_.groups));

  double z_sum = 0.0;
  for (const SampledPair& sp : pairs_) z_sum += sp.z;
  f1_estimate_ = pair_rate_ > 0.0 ? z_sum / pair_rate_ : 0.0;

  UpdateSpace();
  result_.value = std::max(0.0, (f2_estimate_ - f1_estimate_) / 4.0);
  result_.space_words = space_.Peak();
}

bool AdjF2FourCycleCounter::SaveState(StateWriter& w) const {
  // Config fingerprint. The sign caches, pair sample identities, and
  // pairs_by_vertex_ index are all constructor-derived from these, so only
  // the running counters and per-pair observations need to travel.
  w.U32(params_.num_vertices);
  w.U32(z_cap_);
  w.Double(pair_rate_);
  w.Size(num_copies_);
  w.I64(params_.groups);
  w.Double(params_.base.epsilon);
  w.Double(params_.base.t_guess);
  w.U64(params_.base.seed);
  w.Vec(z_);
  w.Size(pairs_.size());
  for (const SampledPair& sp : pairs_) {
    // Fields written individually: SampledPair has alignment padding, so a
    // byte-image dump would leak indeterminate bytes into the snapshot.
    w.U32(sp.u);
    w.U32(sp.v);
    w.U32(sp.z);
    w.U64(sp.stamp_u);
    w.U64(sp.stamp_v);
    w.U64(sp.counted);
  }
  space_.SaveState(w);
  return true;
}

bool AdjF2FourCycleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices || r.U32() != z_cap_ ||
      r.Double() != pair_rate_ || r.Size() != num_copies_ ||
      r.I64() != params_.groups || r.Double() != params_.base.epsilon ||
      r.Double() != params_.base.t_guess || r.U64() != params_.base.seed) {
    return r.Fail();
  }
  std::vector<double> z;
  if (!r.Vec(&z) || z.size() != z_.size()) return r.Fail();
  if (r.Size() != pairs_.size()) return r.Fail();
  z_ = std::move(z);
  for (SampledPair& sp : pairs_) {
    if (r.U32() != sp.u || r.U32() != sp.v) return r.Fail();
    sp.z = r.U32();
    sp.stamp_u = r.U64();
    sp.stamp_v = r.U64();
    sp.counted = r.U64();
  }
  if (!r.ok()) return false;
  return space_.RestoreState(r);
}

Estimate CountFourCyclesAdjF2(const AdjacencyStream& stream,
                              const AdjF2FourCycleCounter::Params& params) {
  AdjF2FourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
