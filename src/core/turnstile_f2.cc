#include "core/turnstile_f2.h"

#include <algorithm>
#include <cmath>

#include "hash/kwise_bank.h"
#include "hash/rng.h"
#include "sketch/median_of_means.h"
#include "sketch/sharded.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace cyclestream {

// --- TurnstileF2FourCycleCounter ------------------------------------------

void TurnstileF2FourCycleCounter::StartPass(int pass,
                                            std::size_t stream_length) {
  inner_.StartPass(pass, stream_length);
}

void TurnstileF2FourCycleCounter::ProcessUpdate(int pass,
                                                const TurnstileUpdate& u,
                                                std::size_t position) {
  (void)pass;
  (void)position;
  if (u.op == TurnstileOp::kInsert) {
    inner_.Insert(u.edge);
  } else {
    inner_.Delete(u.edge);
  }
}

void TurnstileF2FourCycleCounter::ProcessUpdateBlock(
    int pass, std::span<const TurnstileUpdate> updates,
    std::size_t base_position) {
  (void)pass;
  (void)base_position;
  edge_scratch_.resize(updates.size());
  sign_scratch_.resize(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    edge_scratch_[i] = updates[i].edge;
    sign_scratch_[i] = TurnstileSign(updates[i].op);
  }
  inner_.ProcessSignedEdgeBlock(edge_scratch_, sign_scratch_);
}

void TurnstileF2FourCycleCounter::EndPass(int pass) { inner_.EndPass(pass); }

bool TurnstileF2FourCycleCounter::Rescale(double factor) {
  inner_.Rescale(factor);
  return true;
}

bool TurnstileF2FourCycleCounter::SaveState(StateWriter& w) const {
  return inner_.SaveState(w);
}

bool TurnstileF2FourCycleCounter::RestoreState(StateReader& r) {
  return inner_.RestoreState(r);
}

bool TurnstileF2FourCycleCounter::MergeFrom(
    const TurnstileStreamAlgorithm& other) {
  if (other.CheckpointId() != CheckpointId()) return false;
  const auto& rhs = static_cast<const TurnstileF2FourCycleCounter&>(other);
  return inner_.MergeFrom(rhs.inner_);
}

// --- TurnstileF2TriangleCounter -------------------------------------------

TurnstileF2TriangleCounter::TurnstileF2TriangleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.num_vertices, 2u);
  CHECK_GT(params.base.epsilon, 0.0);
  const double eps = params.base.epsilon;
  int per_group = params.copies_per_group;
  if (per_group <= 0) {
    per_group =
        static_cast<int>(std::min(512.0, std::ceil(2.0 / (eps * eps))));
    per_group = std::max(per_group, 1);
  }
  const int groups = std::max(params.groups, 1);
  params_.copies_per_group = per_group;
  params_.groups = groups;

  std::uint64_t seed = params.base.seed ^ 0x54524933ULL;  // "TRI3"
  num_copies_ = static_cast<std::size_t>(groups * per_group);
  const std::size_t c = num_copies_;
  const std::size_t n = params.num_vertices;

  std::vector<std::uint64_t> seeds(c);
  for (std::size_t i = 0; i < c; ++i) seeds[i] = SplitMix64(seed);
  const KWiseHashBank bank(/*k=*/6, seeds);
  sigma_.resize(n * c);
  for (std::size_t v = 0; v < n; ++v) {
    bank.SignAll(v, sigma_.data() + v * c);
  }
  z_.assign(c, 0.0);
}

void TurnstileF2TriangleCounter::Apply(const Edge& e, double sign,
                                       double* z) const {
  const std::size_t c = num_copies_;
  const signed char* su = sigma_.data() + static_cast<std::size_t>(e.u) * c;
  const signed char* sv = sigma_.data() + static_cast<std::size_t>(e.v) * c;
  for (std::size_t i = 0; i < c; ++i) {
    z[i] += sign * static_cast<double>(su[i]) * static_cast<double>(sv[i]);
  }
}

void TurnstileF2TriangleCounter::StartPass(int pass,
                                           std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  (void)stream_length;
}

void TurnstileF2TriangleCounter::ProcessUpdate(int pass,
                                               const TurnstileUpdate& u,
                                               std::size_t position) {
  (void)pass;
  (void)position;
  Apply(u.edge, TurnstileSign(u.op), z_.data());
}

void TurnstileF2TriangleCounter::ProcessUpdateBlock(
    int pass, std::span<const TurnstileUpdate> updates,
    std::size_t base_position) {
  (void)pass;
  (void)base_position;
  const std::size_t W = static_cast<std::size_t>(
      std::max(params_.intra_shards, 1));
  if (params_.sketch_backend != SketchBackend::kBlock || W <= 1 ||
      updates.size() < 2 * W) {
    for (const TurnstileUpdate& u : updates) {
      Apply(u.edge, TurnstileSign(u.op), z_.data());
    }
    return;
  }
  if (shard_extras_.empty()) {
    shard_extras_.assign(W - 1, std::vector<double>(num_copies_, 0.0));
  }
  ParallelFor(W, [&](std::size_t s) {
    const ShardSlice slice = MakeShardSlice(updates.size(), W, s);
    double* z = s == 0 ? z_.data() : shard_extras_[s - 1].data();
    for (std::size_t i = slice.begin; i < slice.end; ++i) {
      Apply(updates[i].edge, TurnstileSign(updates[i].op), z);
    }
  });
}

void TurnstileF2TriangleCounter::FoldShardExtras() {
  // Fixed shard order per slot; every Z_c is an exact integer in every
  // shard, so the fold is exact addition (see the arb-f2 fold).
  for (std::size_t i = 0; i < z_.size(); ++i) {
    double z = z_[i];
    for (const std::vector<double>& extra : shard_extras_) z += extra[i];
    z_[i] = z;
  }
  shard_extras_.clear();
  shard_extras_.shrink_to_fit();
}

void TurnstileF2TriangleCounter::EndPass(int pass) {
  (void)pass;
  FoldShardExtras();
}

Estimate TurnstileF2TriangleCounter::Result() const {
  const std::size_t c = num_copies_;
  cube_scratch_.resize(c);
  for (std::size_t i = 0; i < c; ++i) {
    double z = z_[i];
    for (const std::vector<double>& extra : shard_extras_) z += extra[i];
    cube_scratch_[i] = z * z * z / 6.0;
  }
  Estimate result;
  result.value = std::max(
      0.0, MedianOfMeans(cube_scratch_,
                         static_cast<std::size_t>(params_.groups)));
  // One Z word per copy plus the byte-packed ±1 sign cache.
  const std::size_t n = params_.num_vertices;
  result.space_words = num_copies_ * (1 + n / 8 + 1);
  return result;
}

bool TurnstileF2TriangleCounter::Rescale(double factor) {
  FoldShardExtras();
  for (double& z : z_) z *= factor;
  return true;
}

bool TurnstileF2TriangleCounter::SaveState(StateWriter& w) const {
  // Only the Z counters are stream-dependent; the sign cache is
  // constructor-derived from the fingerprinted seed.
  w.U32(params_.num_vertices);
  w.Size(num_copies_);
  w.I64(params_.groups);
  w.Double(params_.base.epsilon);
  w.U64(params_.base.seed);
  if (shard_extras_.empty()) {
    w.Vec(z_);
  } else {
    std::vector<double> z = z_;
    for (const std::vector<double>& extra : shard_extras_) {
      for (std::size_t i = 0; i < z.size(); ++i) z[i] += extra[i];
    }
    w.Vec(z);
  }
  return true;
}

bool TurnstileF2TriangleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices || r.Size() != num_copies_ ||
      r.I64() != params_.groups || r.Double() != params_.base.epsilon ||
      r.U64() != params_.base.seed) {
    return r.Fail();
  }
  std::vector<double> z;
  if (!r.Vec(&z)) return false;
  if (z.size() != z_.size()) return r.Fail();
  z_ = std::move(z);
  shard_extras_.clear();
  shard_extras_.shrink_to_fit();
  return true;
}

bool TurnstileF2TriangleCounter::MergeFrom(
    const TurnstileStreamAlgorithm& other) {
  if (other.CheckpointId() != CheckpointId()) return false;
  const auto& rhs = static_cast<const TurnstileF2TriangleCounter&>(other);
  if (rhs.params_.num_vertices != params_.num_vertices ||
      rhs.num_copies_ != num_copies_ ||
      rhs.params_.groups != params_.groups ||
      rhs.params_.base.epsilon != params_.base.epsilon ||
      rhs.params_.base.seed != params_.base.seed) {
    return false;
  }
  FoldShardExtras();
  if (rhs.shard_extras_.empty()) {
    for (std::size_t i = 0; i < z_.size(); ++i) z_[i] += rhs.z_[i];
  } else {
    std::vector<double> z = rhs.z_;
    for (const std::vector<double>& extra : rhs.shard_extras_) {
      for (std::size_t i = 0; i < z.size(); ++i) z[i] += extra[i];
    }
    for (std::size_t i = 0; i < z_.size(); ++i) z_[i] += z[i];
  }
  return true;
}

}  // namespace cyclestream
