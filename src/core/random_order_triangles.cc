#include "core/random_order_triangles.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "hash/rng.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

using AdjMap = std::unordered_map<VertexId, std::vector<VertexId>>;

void WriteAdjMap(StateWriter& w, const AdjMap& adj) {
  WriteUnordered(w, adj, [](StateWriter& sw, const auto& kv) {
    sw.U32(kv.first);
    sw.Vec(kv.second);
  });
}

bool ReadAdjMap(StateReader& r, AdjMap* adj) {
  std::size_t buckets = 0;
  std::vector<std::pair<VertexId, std::vector<VertexId>>> elems;
  if (!ReadUnordered(r, &buckets, &elems, [](StateReader& sr) {
        const VertexId key = sr.U32();
        std::vector<VertexId> neighbors;
        sr.Vec(&neighbors);
        return std::make_pair(key, std::move(neighbors));
      })) {
    return false;
  }
  RestoreUnorderedOrder(*adj, buckets, elems,
                        [](auto& c, const auto& kv) { c.insert(kv); });
  return true;
}

// Common-neighbor walk over hash-map adjacency: iterates the smaller
// endpoint list and membership-tests the closing edge.
template <typename Adj, typename HasEdgeFn, typename Visit>
void ForEachCommonNeighbor(const Adj& adj, const Edge& e, HasEdgeFn has_edge,
                           Visit visit) {
  auto iu = adj.find(e.u);
  auto iv = adj.find(e.v);
  if (iu == adj.end() || iv == adj.end()) return;
  const bool u_smaller = iu->second.size() <= iv->second.size();
  const VertexId base = u_smaller ? e.u : e.v;
  const VertexId other = u_smaller ? e.v : e.u;
  (void)base;
  const auto& list = u_smaller ? iu->second : iv->second;
  for (VertexId w : list) {
    if (w == e.u || w == e.v) continue;
    if (has_edge(Edge(other, w))) visit(w);
  }
}

}  // namespace

void RandomOrderTriangleCounter::Level::AddEdge(const Edge& e) {
  if (edges.insert(e.Key()).second) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
}

bool RandomOrderTriangleCounter::Level::ClosesTriangle(const Edge& e) const {
  bool found = false;
  ForEachCommonNeighbor(
      adj, e,
      [this](const Edge& f) { return edges.count(f.Key()) > 0; },
      [&found](VertexId) { found = true; });
  return found;
}

RandomOrderTriangleCounter::RandomOrderTriangleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.base.t_guess, 1.0);
  CHECK_GT(params.base.epsilon, 0.0);
  CHECK_GE(params.num_vertices, 1u);

  const double sqrt_t = std::sqrt(params.base.t_guess);
  num_levels_ =
      1 + std::max(0, static_cast<int>(std::ceil(std::log2(std::max(1.0, sqrt_t)))));

  const double eps = params.base.epsilon;
  const double log_n = std::log2(static_cast<double>(params.num_vertices) + 2.0);
  const double cv = params.level_rate > 0.0
                        ? params.level_rate
                        : params.base.c / (eps * eps) * log_n;

  std::uint64_t hash_seed = params.base.seed ^ 0x524f54ULL;  // "ROT"
  levels_.reserve(static_cast<std::size_t>(num_levels_));
  for (int i = 0; i < num_levels_; ++i) {
    const double pi = std::min(1.0, cv / std::pow(2.0, i));
    const double qi = std::min(1.0, std::pow(2.0, i) / sqrt_t);
    levels_.emplace_back(pi, qi, KWiseHash(/*k=*/8, SplitMix64(hash_seed)));
  }
  // The top level serves as the oracle O; it must span the entire stream.
  levels_.back().q = 1.0;
  p_oracle_ = levels_.back().p;
  heavy_cut_ = p_oracle_ * sqrt_t;

  r_ = params.prefix_rate > 0.0
           ? std::min(1.0, params.prefix_rate)
           : std::min(1.0, params.base.c / (eps * sqrt_t));

  // Hash coefficients (8 per level) live for the whole run.
  space_.SetBaseline(static_cast<std::size_t>(num_levels_) * 8);
}

void RandomOrderTriangleCounter::UpdateSpace() {
  std::size_t level_words = 0;
  for (const Level& level : levels_) level_words += 2 * level.edges.size();
  space_.SetComponent("levels", level_words);
  space_.SetComponent("rough_s", 2 * s_edges_.size());
  space_.SetComponent("rough_c", 2 * c_edges_.size());
  space_.SetComponent("candidates_p", 2 * p_edges_.size());
}

std::size_t RandomOrderTriangleCounter::AuditSpace() const {
  // Walk of the real containers, mirroring the accounting contract: 2 words
  // per stored edge plus the hash-coefficient baseline.
  std::size_t words = static_cast<std::size_t>(num_levels_) * 8;
  for (const Level& level : levels_) words += 2 * level.edges.size();
  words += 2 * s_edges_.size() + 2 * c_edges_.size() + 2 * p_edges_.size();
  return words;
}

void RandomOrderTriangleCounter::StartPass(int pass,
                                           std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  for (Level& level : levels_) {
    level.prefix_edges = static_cast<std::size_t>(
        std::ceil(level.q * static_cast<double>(stream_length)));
  }
  s_prefix_edges_ = static_cast<std::size_t>(
      std::ceil(r_ * static_cast<double>(stream_length)));
}

void RandomOrderTriangleCounter::ProcessEdge(int pass, const Edge& e,
                                             std::size_t position) {
  (void)pass;
  // Level structures: grow E_i inside the prefix, test P-membership after.
  bool in_p = p_set_.count(e.Key()) > 0;
  for (Level& level : levels_) {
    if (position < level.prefix_edges) {
      if (level.InVi(e.u) || level.InVi(e.v)) level.AddEdge(e);
    } else if (!in_p && level.ClosesTriangle(e)) {
      p_set_.insert(e.Key());
      p_edges_.push_back(e);
      in_p = true;
    }
  }

  // Rough estimator: store the S prefix; later edges enter C if they close a
  // wedge of S (S is complete once position >= s_prefix_edges_).
  if (position < s_prefix_edges_) {
    s_edges_.push_back(e);
    s_adj_[e.u].push_back(e.v);
    s_adj_[e.v].push_back(e.u);
  } else {
    bool closes = false;
    ForEachCommonNeighbor(
        s_adj_, e,
        [this](const Edge& f) {
          auto it = s_adj_.find(f.u);
          if (it == s_adj_.end()) return false;
          const auto& lst = it->second;
          return std::find(lst.begin(), lst.end(), f.v) != lst.end();
        },
        [&closes](VertexId) { closes = true; });
    if (closes && c_set_.insert(e.Key()).second) c_edges_.push_back(e);
  }

  // Space accounting (words): level edges (2 words each), S, C, P, plus the
  // hash-coefficient baseline charged at construction.
  UpdateSpace();
}

std::vector<VertexId> RandomOrderTriangleCounter::OracleCommonNeighbors(
    const Edge& e) const {
  const Level& oracle = levels_.back();
  std::vector<VertexId> common;
  ForEachCommonNeighbor(
      oracle.adj, e,
      [&oracle](const Edge& f) { return oracle.edges.count(f.Key()) > 0; },
      [&common](VertexId w) { common.push_back(w); });
  return common;
}

std::uint64_t RandomOrderTriangleCounter::OracleTriangleCount(
    const Edge& e) const {
  auto it = oracle_cache_.find(e.Key());
  if (it != oracle_cache_.end()) return it->second;
  const std::uint64_t count = OracleCommonNeighbors(e).size();
  oracle_cache_.emplace(e.Key(), count);
  return count;
}

bool RandomOrderTriangleCounter::IsHeavy(const Edge& e) const {
  return static_cast<double>(OracleTriangleCount(e)) >= heavy_cut_;
}

double RandomOrderTriangleCounter::TermLight() const {
  // (1/3r²)·Σ_{e ∈ C, light} t_e^{S_L}: for each light C edge, count common
  // S-neighbors reachable through two *light* S edges.
  double sum = 0.0;
  auto s_has_edge = [this](const Edge& f) {
    auto it = s_adj_.find(f.u);
    if (it == s_adj_.end()) return false;
    const auto& lst = it->second;
    return std::find(lst.begin(), lst.end(), f.v) != lst.end();
  };
  for (const Edge& e : c_edges_) {
    if (IsHeavy(e)) continue;
    ForEachCommonNeighbor(s_adj_, e, s_has_edge, [&](VertexId w) {
      if (!IsHeavy(Edge(e.u, w)) && !IsHeavy(Edge(e.v, w))) sum += 1.0;
    });
  }
  return sum / (3.0 * r_ * r_);
}

double RandomOrderTriangleCounter::TermHeavy() {
  // (1/p)·Σ_{e ∈ P, heavy} Σ over oracle triangles of e, weighted by
  // 1/(1 + #heavy among the other two edges).
  double sum = 0.0;
  for (const Edge& e : p_edges_) {
    if (!IsHeavy(e)) continue;
    ++diagnostics_.oracle_heavy_in_p;
    for (VertexId w : OracleCommonNeighbors(e)) {
      const int other_heavy =
          (IsHeavy(Edge(e.u, w)) ? 1 : 0) + (IsHeavy(Edge(e.v, w)) ? 1 : 0);
      sum += 1.0 / (1.0 + other_heavy);
    }
  }
  return sum / p_oracle_;
}

void RandomOrderTriangleCounter::EndPass(int pass) {
  CHECK_EQ(pass, 0);
  // Complete C with the S-internal candidates: any S edge closing a wedge of
  // S belongs in C (its t_e^S counts triangles regardless of arrival order
  // inside the prefix).
  auto s_has_edge = [this](const Edge& f) {
    auto it = s_adj_.find(f.u);
    if (it == s_adj_.end()) return false;
    const auto& lst = it->second;
    return std::find(lst.begin(), lst.end(), f.v) != lst.end();
  };
  for (const Edge& e : s_edges_) {
    bool closes = false;
    ForEachCommonNeighbor(s_adj_, e, s_has_edge,
                          [&closes](VertexId) { closes = true; });
    if (closes && c_set_.insert(e.Key()).second) c_edges_.push_back(e);
  }

  diagnostics_.candidate_heavy_edges = p_edges_.size();
  diagnostics_.rough_set_size = c_edges_.size();
  diagnostics_.light_term = TermLight();
  diagnostics_.heavy_term = TermHeavy();

  UpdateSpace();

  result_.value = diagnostics_.light_term + diagnostics_.heavy_term;
  result_.space_words = space_.Peak();
  finished_ = true;
}

bool RandomOrderTriangleCounter::SaveState(StateWriter& w) const {
  w.U32(params_.num_vertices);
  w.I64(num_levels_);
  w.Double(p_oracle_);
  w.Double(heavy_cut_);
  w.Double(r_);
  w.Double(params_.level_rate);
  w.Double(params_.prefix_rate);
  w.Double(params_.base.epsilon);
  w.Double(params_.base.c);
  w.Double(params_.base.t_guess);
  w.U64(params_.base.seed);

  w.Size(s_prefix_edges_);
  for (const Level& level : levels_) {
    w.Double(level.p);
    w.Double(level.q);
    w.Size(level.prefix_edges);
    WriteU64Set(w, level.edges);
    WriteAdjMap(w, level.adj);
  }
  w.Vec(s_edges_);
  WriteAdjMap(w, s_adj_);
  WriteU64Set(w, c_set_);
  w.Vec(c_edges_);
  WriteU64Set(w, p_set_);
  w.Vec(p_edges_);
  space_.SaveState(w);
  return true;
}

bool RandomOrderTriangleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices || r.I64() != num_levels_ ||
      r.Double() != p_oracle_ || r.Double() != heavy_cut_ ||
      r.Double() != r_ || r.Double() != params_.level_rate ||
      r.Double() != params_.prefix_rate ||
      r.Double() != params_.base.epsilon || r.Double() != params_.base.c ||
      r.Double() != params_.base.t_guess || r.U64() != params_.base.seed) {
    return r.Fail();
  }
  s_prefix_edges_ = r.Size();
  for (Level& level : levels_) {
    if (r.Double() != level.p || r.Double() != level.q) return r.Fail();
    level.prefix_edges = r.Size();
    if (!r.ok() || !ReadU64Set(r, &level.edges) ||
        !ReadAdjMap(r, &level.adj)) {
      return false;
    }
  }
  if (!r.Vec(&s_edges_) || !ReadAdjMap(r, &s_adj_) ||
      !ReadU64Set(r, &c_set_) || !r.Vec(&c_edges_) ||
      !ReadU64Set(r, &p_set_) || !r.Vec(&p_edges_)) {
    return false;
  }
  return space_.RestoreState(r);
}

Estimate CountTrianglesRandomOrder(
    const EdgeStream& stream,
    const RandomOrderTriangleCounter::Params& params) {
  RandomOrderTriangleCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
