#include "core/arb_f2_counter.h"

#include <algorithm>
#include <cmath>

#include "hash/rng.h"
#include "sketch/median_of_means.h"
#include "util/check.h"

namespace cyclestream {

ArbF2FourCycleCounter::ArbF2FourCycleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.num_vertices, 2u);
  CHECK_GT(params.base.epsilon, 0.0);
  const double eps = params.base.epsilon;
  int per_group = params.copies_per_group;
  if (per_group <= 0) {
    per_group =
        static_cast<int>(std::min(512.0, std::ceil(2.0 / (eps * eps))));
    per_group = std::max(per_group, 1);
  }
  const int groups = std::max(params.groups, 1);
  params_.copies_per_group = per_group;
  params_.groups = groups;

  std::uint64_t seed = params.base.seed ^ 0x41524246ULL;  // "ARBF"
  copies_.reserve(static_cast<std::size_t>(groups * per_group));
  for (int i = 0; i < groups * per_group; ++i) {
    copies_.emplace_back(SplitMix64(seed), SplitMix64(seed),
                         params.num_vertices);
  }
}

ArbF2FourCycleCounter::Copy::Copy(std::uint64_t sa, std::uint64_t sb,
                                  VertexId n)
    : alpha(n), beta(n), acc(3 * static_cast<std::size_t>(n), 0.0) {
  const KWiseHash ha(4, sa);
  const KWiseHash hb(4, sb);
  for (VertexId v = 0; v < n; ++v) {
    alpha[v] = static_cast<signed char>(ha.Sign(v));
    beta[v] = static_cast<signed char>(hb.Sign(v));
  }
}

void ArbF2FourCycleCounter::Apply(const Edge& e, double sign) {
  const std::size_t n = params_.num_vertices;
  for (Copy& copy : copies_) {
    const double au = copy.alpha[e.u];
    const double bu = copy.beta[e.u];
    const double av = copy.alpha[e.v];
    const double bv = copy.beta[e.v];
    // A_u += α_v etc. (the wedge centered at u gains neighbor v).
    copy.acc[e.u] += sign * av;
    copy.acc[n + e.u] += sign * bv;
    copy.acc[2 * n + e.u] += sign * av * bv;
    copy.acc[e.v] += sign * au;
    copy.acc[n + e.v] += sign * bu;
    copy.acc[2 * n + e.v] += sign * au * bu;
  }
}

void ArbF2FourCycleCounter::StartPass(int pass, std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  (void)stream_length;
}

void ArbF2FourCycleCounter::ProcessEdge(int pass, const Edge& e,
                                        std::size_t position) {
  (void)pass;
  (void)position;
  Insert(e);
}

void ArbF2FourCycleCounter::EndPass(int pass) { (void)pass; }

double ArbF2FourCycleCounter::F2Estimate() const {
  const std::size_t n = params_.num_vertices;
  std::vector<double> squares(copies_.size());
  for (std::size_t i = 0; i < copies_.size(); ++i) {
    const Copy& copy = copies_[i];
    double z = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      z += (copy.acc[t] * copy.acc[n + t] - copy.acc[2 * n + t]) / 2.0;
    }
    // E[Z²] = F₂/2 (see AdjF2FourCycleCounter::EndPass): rescale by 2.
    squares[i] = 2.0 * z * z;
  }
  return MedianOfMeans(squares, static_cast<std::size_t>(params_.groups));
}

Estimate ArbF2FourCycleCounter::Result() const {
  Estimate result;
  result.value =
      std::max(0.0, (F2Estimate() - params_.f1_correction) / 4.0);
  // 3n accumulator words plus the two byte-packed ±1 sign caches per copy.
  const std::size_t n = params_.num_vertices;
  result.space_words = copies_.size() * (3 * n + 2 * n / 8 + 2);
  return result;
}

Estimate CountFourCyclesArbF2(const EdgeStream& stream,
                              const ArbF2FourCycleCounter::Params& params) {
  ArbF2FourCycleCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
