#include "core/arb_f2_counter.h"

#include <algorithm>
#include <cmath>

#include "hash/kwise_bank.h"
#include "hash/rng.h"
#include "sketch/median_of_means.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

ArbF2FourCycleCounter::ArbF2FourCycleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.num_vertices, 2u);
  CHECK_GT(params.base.epsilon, 0.0);
  const double eps = params.base.epsilon;
  int per_group = params.copies_per_group;
  if (per_group <= 0) {
    per_group =
        static_cast<int>(std::min(512.0, std::ceil(2.0 / (eps * eps))));
    per_group = std::max(per_group, 1);
  }
  const int groups = std::max(params.groups, 1);
  params_.copies_per_group = per_group;
  params_.groups = groups;

  std::uint64_t seed = params.base.seed ^ 0x41524246ULL;  // "ARBF"
  num_copies_ = static_cast<std::size_t>(groups * per_group);
  const std::size_t c = num_copies_;
  const std::size_t n = params.num_vertices;

  // Seed chain: the historical code drew both seeds inside an emplace_back
  // argument list, which gcc evaluates right-to-left — the beta seed came
  // off the splitmix chain first. Preserved verbatim so the sign streams
  // (and therefore all estimates) are unchanged.
  std::vector<std::uint64_t> alpha_seeds(c);
  std::vector<std::uint64_t> beta_seeds(c);
  for (std::size_t i = 0; i < c; ++i) {
    beta_seeds[i] = SplitMix64(seed);
    alpha_seeds[i] = SplitMix64(seed);
  }
  const KWiseHashBank alpha_bank(/*k=*/4, alpha_seeds);
  const KWiseHashBank beta_bank(/*k=*/4, beta_seeds);
  alpha_.resize(n * c);
  beta_.resize(n * c);
  for (std::size_t v = 0; v < n; ++v) {
    alpha_bank.SignAll(v, alpha_.data() + v * c);
    beta_bank.SignAll(v, beta_.data() + v * c);
  }
  acc_a_.assign(n * c, 0.0);
  acc_b_.assign(n * c, 0.0);
  acc_c_.assign(n * c, 0.0);
}

void ArbF2FourCycleCounter::Apply(const Edge& e, double sign) {
  const std::size_t c = num_copies_;
  const signed char* au = alpha_.data() + static_cast<std::size_t>(e.u) * c;
  const signed char* bu = beta_.data() + static_cast<std::size_t>(e.u) * c;
  const signed char* av = alpha_.data() + static_cast<std::size_t>(e.v) * c;
  const signed char* bv = beta_.data() + static_cast<std::size_t>(e.v) * c;
  double* accA_u = acc_a_.data() + static_cast<std::size_t>(e.u) * c;
  double* accB_u = acc_b_.data() + static_cast<std::size_t>(e.u) * c;
  double* accC_u = acc_c_.data() + static_cast<std::size_t>(e.u) * c;
  double* accA_v = acc_a_.data() + static_cast<std::size_t>(e.v) * c;
  double* accB_v = acc_b_.data() + static_cast<std::size_t>(e.v) * c;
  double* accC_v = acc_c_.data() + static_cast<std::size_t>(e.v) * c;
  // A_u += α_v etc. (the wedge centered at u gains neighbor v); six
  // contiguous sweeps over the copies.
  for (std::size_t i = 0; i < c; ++i) {
    accA_u[i] += sign * static_cast<double>(av[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accB_u[i] += sign * static_cast<double>(bv[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accC_u[i] +=
        sign * static_cast<double>(av[i]) * static_cast<double>(bv[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accA_v[i] += sign * static_cast<double>(au[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accB_v[i] += sign * static_cast<double>(bu[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accC_v[i] +=
        sign * static_cast<double>(au[i]) * static_cast<double>(bu[i]);
  }
}

void ArbF2FourCycleCounter::StartPass(int pass, std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  (void)stream_length;
}

void ArbF2FourCycleCounter::ProcessEdge(int pass, const Edge& e,
                                        std::size_t position) {
  (void)pass;
  (void)position;
  Insert(e);
}

void ArbF2FourCycleCounter::EndPass(int pass) { (void)pass; }

double ArbF2FourCycleCounter::F2Estimate() const {
  const std::size_t n = params_.num_vertices;
  const std::size_t c = num_copies_;
  square_scratch_.resize(c);
  for (std::size_t i = 0; i < c; ++i) {
    double z = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      z += (acc_a_[t * c + i] * acc_b_[t * c + i] - acc_c_[t * c + i]) / 2.0;
    }
    // E[Z²] = F₂/2 (see AdjF2FourCycleCounter::EndPass): rescale by 2.
    square_scratch_[i] = 2.0 * z * z;
  }
  return MedianOfMeans(square_scratch_,
                       static_cast<std::size_t>(params_.groups));
}

Estimate ArbF2FourCycleCounter::Result() const {
  Estimate result;
  result.value =
      std::max(0.0, (F2Estimate() - params_.f1_correction) / 4.0);
  // 3n accumulator words plus the two byte-packed ±1 sign caches per copy.
  const std::size_t n = params_.num_vertices;
  result.space_words = num_copies_ * (3 * n + 2 * n / 8 + 2);
  return result;
}

bool ArbF2FourCycleCounter::SaveState(StateWriter& w) const {
  // Only the accumulators are stream-dependent; the sign caches are
  // constructor-derived from the fingerprinted seed.
  w.U32(params_.num_vertices);
  w.Size(num_copies_);
  w.I64(params_.groups);
  w.Double(params_.base.epsilon);
  w.U64(params_.base.seed);
  w.Double(params_.f1_correction);
  w.Vec(acc_a_);
  w.Vec(acc_b_);
  w.Vec(acc_c_);
  return true;
}

bool ArbF2FourCycleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices || r.Size() != num_copies_ ||
      r.I64() != params_.groups || r.Double() != params_.base.epsilon ||
      r.U64() != params_.base.seed || r.Double() != params_.f1_correction) {
    return r.Fail();
  }
  std::vector<double> a, b, c;
  if (!r.Vec(&a) || !r.Vec(&b) || !r.Vec(&c)) return false;
  if (a.size() != acc_a_.size() || b.size() != acc_b_.size() ||
      c.size() != acc_c_.size()) {
    return r.Fail();
  }
  acc_a_ = std::move(a);
  acc_b_ = std::move(b);
  acc_c_ = std::move(c);
  return true;
}

Estimate CountFourCyclesArbF2(const EdgeStream& stream,
                              const ArbF2FourCycleCounter::Params& params) {
  ArbF2FourCycleCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
