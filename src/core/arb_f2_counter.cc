#include "core/arb_f2_counter.h"

#include <algorithm>
#include <cmath>

#include "hash/kwise_bank.h"
#include "hash/rng.h"
#include "sketch/median_of_means.h"
#include "sketch/sharded.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace cyclestream {

ArbF2FourCycleCounter::ArbF2FourCycleCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.num_vertices, 2u);
  CHECK_GT(params.base.epsilon, 0.0);
  const double eps = params.base.epsilon;
  int per_group = params.copies_per_group;
  if (per_group <= 0) {
    per_group =
        static_cast<int>(std::min(512.0, std::ceil(2.0 / (eps * eps))));
    per_group = std::max(per_group, 1);
  }
  const int groups = std::max(params.groups, 1);
  params_.copies_per_group = per_group;
  params_.groups = groups;

  std::uint64_t seed = params.base.seed ^ 0x41524246ULL;  // "ARBF"
  num_copies_ = static_cast<std::size_t>(groups * per_group);
  const std::size_t c = num_copies_;
  const std::size_t n = params.num_vertices;

  // Seed chain: the historical code drew both seeds inside an emplace_back
  // argument list, which gcc evaluates right-to-left — the beta seed came
  // off the splitmix chain first. Preserved verbatim so the sign streams
  // (and therefore all estimates) are unchanged.
  std::vector<std::uint64_t> alpha_seeds(c);
  std::vector<std::uint64_t> beta_seeds(c);
  for (std::size_t i = 0; i < c; ++i) {
    beta_seeds[i] = SplitMix64(seed);
    alpha_seeds[i] = SplitMix64(seed);
  }
  const KWiseHashBank alpha_bank(/*k=*/4, alpha_seeds);
  const KWiseHashBank beta_bank(/*k=*/4, beta_seeds);
  alpha_.resize(n * c);
  beta_.resize(n * c);
  for (std::size_t v = 0; v < n; ++v) {
    alpha_bank.SignAll(v, alpha_.data() + v * c);
    beta_bank.SignAll(v, beta_.data() + v * c);
  }
  acc_a_.assign(n * c, 0.0);
  acc_b_.assign(n * c, 0.0);
  acc_c_.assign(n * c, 0.0);
}

void ArbF2FourCycleCounter::Apply(const Edge& e, double sign) {
  ApplyTo(e, sign, acc_a_.data(), acc_b_.data(), acc_c_.data());
}

void ArbF2FourCycleCounter::ApplyTo(const Edge& e, double sign, double* acc_a,
                                    double* acc_b, double* acc_c) const {
  const std::size_t c = num_copies_;
  const signed char* au = alpha_.data() + static_cast<std::size_t>(e.u) * c;
  const signed char* bu = beta_.data() + static_cast<std::size_t>(e.u) * c;
  const signed char* av = alpha_.data() + static_cast<std::size_t>(e.v) * c;
  const signed char* bv = beta_.data() + static_cast<std::size_t>(e.v) * c;
  double* accA_u = acc_a + static_cast<std::size_t>(e.u) * c;
  double* accB_u = acc_b + static_cast<std::size_t>(e.u) * c;
  double* accC_u = acc_c + static_cast<std::size_t>(e.u) * c;
  double* accA_v = acc_a + static_cast<std::size_t>(e.v) * c;
  double* accB_v = acc_b + static_cast<std::size_t>(e.v) * c;
  double* accC_v = acc_c + static_cast<std::size_t>(e.v) * c;
  // A_u += α_v etc. (the wedge centered at u gains neighbor v); six
  // contiguous sweeps over the copies.
  for (std::size_t i = 0; i < c; ++i) {
    accA_u[i] += sign * static_cast<double>(av[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accB_u[i] += sign * static_cast<double>(bv[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accC_u[i] +=
        sign * static_cast<double>(av[i]) * static_cast<double>(bv[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accA_v[i] += sign * static_cast<double>(au[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accB_v[i] += sign * static_cast<double>(bu[i]);
  }
  for (std::size_t i = 0; i < c; ++i) {
    accC_v[i] +=
        sign * static_cast<double>(au[i]) * static_cast<double>(bu[i]);
  }
}

void ArbF2FourCycleCounter::StartPass(int pass, std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  (void)stream_length;
}

void ArbF2FourCycleCounter::ProcessEdge(int pass, const Edge& e,
                                        std::size_t position) {
  (void)pass;
  (void)position;
  Insert(e);
}

void ArbF2FourCycleCounter::ProcessEdgeBlock(int pass,
                                             std::span<const Edge> edges,
                                             std::size_t base_position) {
  (void)pass;
  (void)base_position;
  const std::size_t W = static_cast<std::size_t>(
      std::max(params_.intra_shards, 1));
  if (params_.sketch_backend != SketchBackend::kBlock || W <= 1 ||
      edges.size() < 2 * W) {
    for (const Edge& e : edges) Insert(e);
    return;
  }
  if (shard_extras_.empty()) {
    const std::size_t words = acc_a_.size();
    shard_extras_.resize(W - 1);
    for (ShardAccums& extra : shard_extras_) {
      extra.a.assign(words, 0.0);
      extra.b.assign(words, 0.0);
      extra.c.assign(words, 0.0);
    }
  }
  ParallelFor(W, [&](std::size_t s) {
    const ShardSlice slice = MakeShardSlice(edges.size(), W, s);
    double* a = s == 0 ? acc_a_.data() : shard_extras_[s - 1].a.data();
    double* b = s == 0 ? acc_b_.data() : shard_extras_[s - 1].b.data();
    double* c = s == 0 ? acc_c_.data() : shard_extras_[s - 1].c.data();
    for (std::size_t i = slice.begin; i < slice.end; ++i) {
      ApplyTo(edges[i], +1.0, a, b, c);
    }
  });
}

void ArbF2FourCycleCounter::ProcessSignedEdgeBlock(
    std::span<const Edge> edges, std::span<const double> signs) {
  CHECK_EQ(edges.size(), signs.size());
  const std::size_t W = static_cast<std::size_t>(
      std::max(params_.intra_shards, 1));
  if (params_.sketch_backend != SketchBackend::kBlock || W <= 1 ||
      edges.size() < 2 * W) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      Apply(edges[i], signs[i]);
    }
    return;
  }
  if (shard_extras_.empty()) {
    const std::size_t words = acc_a_.size();
    shard_extras_.resize(W - 1);
    for (ShardAccums& extra : shard_extras_) {
      extra.a.assign(words, 0.0);
      extra.b.assign(words, 0.0);
      extra.c.assign(words, 0.0);
    }
  }
  ParallelFor(W, [&](std::size_t s) {
    const ShardSlice slice = MakeShardSlice(edges.size(), W, s);
    double* a = s == 0 ? acc_a_.data() : shard_extras_[s - 1].a.data();
    double* b = s == 0 ? acc_b_.data() : shard_extras_[s - 1].b.data();
    double* c = s == 0 ? acc_c_.data() : shard_extras_[s - 1].c.data();
    for (std::size_t i = slice.begin; i < slice.end; ++i) {
      ApplyTo(edges[i], signs[i], a, b, c);
    }
  });
}

void ArbF2FourCycleCounter::Rescale(double factor) {
  FoldShardExtras();
  for (double& x : acc_a_) x *= factor;
  for (double& x : acc_b_) x *= factor;
  for (double& x : acc_c_) x *= factor;
}

void ArbF2FourCycleCounter::FoldShardExtras() {
  // Fixed shard order 1..W−1 per slot. Every accumulator slot is an exact
  // integer in every shard (sums of ±1 and ±1·±1 terms), so the fold is
  // exact addition and the result equals the per-edge accumulator bit for
  // bit. Single pass over the canonical arrays: each slot reads its extras
  // in shard order, which performs the identical additions as folding one
  // whole shard at a time but touches acc_* memory only once.
  for (std::size_t i = 0; i < acc_a_.size(); ++i) {
    double a = acc_a_[i], b = acc_b_[i], c = acc_c_[i];
    for (const ShardAccums& extra : shard_extras_) {
      a += extra.a[i];
      b += extra.b[i];
      c += extra.c[i];
    }
    acc_a_[i] = a;
    acc_b_[i] = b;
    acc_c_[i] = c;
  }
  shard_extras_.clear();
  shard_extras_.shrink_to_fit();
}

void ArbF2FourCycleCounter::MergedAccums(std::vector<double>* a,
                                         std::vector<double>* b,
                                         std::vector<double>* c) const {
  *a = acc_a_;
  *b = acc_b_;
  *c = acc_c_;
  for (const ShardAccums& extra : shard_extras_) {
    for (std::size_t i = 0; i < a->size(); ++i) (*a)[i] += extra.a[i];
    for (std::size_t i = 0; i < b->size(); ++i) (*b)[i] += extra.b[i];
    for (std::size_t i = 0; i < c->size(); ++i) (*c)[i] += extra.c[i];
  }
}

void ArbF2FourCycleCounter::EndPass(int pass) {
  (void)pass;
  FoldShardExtras();
}

double ArbF2FourCycleCounter::F2Estimate() const {
  const std::size_t n = params_.num_vertices;
  const std::size_t c = num_copies_;
  const double* pa = acc_a_.data();
  const double* pb = acc_b_.data();
  const double* pc = acc_c_.data();
  std::vector<double> ma, mb, mc;  // Only filled mid-pass with live shards.
  if (!shard_extras_.empty()) {
    MergedAccums(&ma, &mb, &mc);
    pa = ma.data();
    pb = mb.data();
    pc = mc.data();
  }
  square_scratch_.resize(c);
  for (std::size_t i = 0; i < c; ++i) {
    double z = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      z += (pa[t * c + i] * pb[t * c + i] - pc[t * c + i]) / 2.0;
    }
    // E[Z²] = F₂/2 (see AdjF2FourCycleCounter::EndPass): rescale by 2.
    square_scratch_[i] = 2.0 * z * z;
  }
  return MedianOfMeans(square_scratch_,
                       static_cast<std::size_t>(params_.groups));
}

Estimate ArbF2FourCycleCounter::Result() const {
  Estimate result;
  result.value =
      std::max(0.0, (F2Estimate() - params_.f1_correction) / 4.0);
  // 3n accumulator words plus the two byte-packed ±1 sign caches per copy.
  const std::size_t n = params_.num_vertices;
  result.space_words = num_copies_ * (3 * n + 2 * n / 8 + 2);
  return result;
}

bool ArbF2FourCycleCounter::SaveState(StateWriter& w) const {
  // Only the accumulators are stream-dependent; the sign caches are
  // constructor-derived from the fingerprinted seed.
  w.U32(params_.num_vertices);
  w.Size(num_copies_);
  w.I64(params_.groups);
  w.Double(params_.base.epsilon);
  w.U64(params_.base.seed);
  w.Double(params_.f1_correction);
  if (shard_extras_.empty()) {
    w.Vec(acc_a_);
    w.Vec(acc_b_);
    w.Vec(acc_c_);
  } else {
    // Merge-then-save: the snapshot always carries the canonical (folded)
    // accumulators, so it restores into any shard count — including 1.
    std::vector<double> a, b, c;
    MergedAccums(&a, &b, &c);
    w.Vec(a);
    w.Vec(b);
    w.Vec(c);
  }
  return true;
}

bool ArbF2FourCycleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices || r.Size() != num_copies_ ||
      r.I64() != params_.groups || r.Double() != params_.base.epsilon ||
      r.U64() != params_.base.seed || r.Double() != params_.f1_correction) {
    return r.Fail();
  }
  std::vector<double> a, b, c;
  if (!r.Vec(&a) || !r.Vec(&b) || !r.Vec(&c)) return false;
  if (a.size() != acc_a_.size() || b.size() != acc_b_.size() ||
      c.size() != acc_c_.size()) {
    return r.Fail();
  }
  acc_a_ = std::move(a);
  acc_b_ = std::move(b);
  acc_c_ = std::move(c);
  // The snapshot is canonical (merged); any live shard scratch is stale.
  shard_extras_.clear();
  shard_extras_.shrink_to_fit();
  return true;
}

bool ArbF2FourCycleCounter::MergeFrom(const EdgeStreamAlgorithm& other) {
  // Identify by CheckpointId (stable tag, no RTTI dependence), then verify
  // the same config fields RestoreState fingerprints — a merge across
  // mismatched seeds or dimensions would be silent garbage.
  if (other.CheckpointId() != CheckpointId()) return false;
  const auto& rhs = static_cast<const ArbF2FourCycleCounter&>(other);
  if (rhs.params_.num_vertices != params_.num_vertices ||
      rhs.num_copies_ != num_copies_ ||
      rhs.params_.groups != params_.groups ||
      rhs.params_.base.epsilon != params_.base.epsilon ||
      rhs.params_.base.seed != params_.base.seed ||
      rhs.params_.f1_correction != params_.f1_correction) {
    return false;
  }
  // Fold both sides' live intra-process shard scratch first so the merge
  // operates on canonical accumulators (same canonicalization SaveState
  // performs; rhs is const, so its fold goes through MergedAccums copies).
  FoldShardExtras();
  if (rhs.shard_extras_.empty()) {
    for (std::size_t i = 0; i < acc_a_.size(); ++i) acc_a_[i] += rhs.acc_a_[i];
    for (std::size_t i = 0; i < acc_b_.size(); ++i) acc_b_[i] += rhs.acc_b_[i];
    for (std::size_t i = 0; i < acc_c_.size(); ++i) acc_c_[i] += rhs.acc_c_[i];
  } else {
    std::vector<double> a, b, c;
    rhs.MergedAccums(&a, &b, &c);
    for (std::size_t i = 0; i < acc_a_.size(); ++i) acc_a_[i] += a[i];
    for (std::size_t i = 0; i < acc_b_.size(); ++i) acc_b_[i] += b[i];
    for (std::size_t i = 0; i < acc_c_.size(); ++i) acc_c_[i] += c[i];
  }
  return true;
}

Estimate CountFourCyclesArbF2(const EdgeStream& stream,
                              const ArbF2FourCycleCounter::Params& params) {
  ArbF2FourCycleCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
