#ifndef CYCLESTREAM_CORE_ARB_F2_COUNTER_H_
#define CYCLESTREAM_CORE_ARB_F2_COUNTER_H_

#include <cstdint>
#include <vector>

#include "core/config.h"
#include "sketch/sketch_backend.h"
#include "stream/driver.h"

namespace cyclestream {

/// The §5.3 algorithm (Theorem 5.7): one pass over an *arbitrary order* edge
/// stream, Õ(ε⁻²·n) space, (1+ε)-approximation of the 4-cycle count when
/// T = Ω(n²/ε²). Also correct in the dynamic (insert/delete) setting.
///
/// Same F₂-of-the-wedge-vector reduction as §4.2, but because lists are not
/// grouped, each basic estimator maintains the three per-vertex accumulators
/// A_t, B_t, C_t for *every* vertex (3n counters): when edge (u,v) arrives,
/// A_u += α_v, B_u += β_v, C_u += α_v·β_v and symmetrically for v (deletions
/// subtract). At the end, Z = Σ_t (A_t·B_t − C_t)/2 and E[Z²] = F₂(x).
///
/// In the theorem's regime the capped-F₁ term of Lemma 4.4 satisfies
/// F₁(z) ≤ n²/ε ≤ O(ε)·T, so the estimate T̂ = F̂₂/4 is already (1+O(ε));
/// the implementation therefore omits the F₁ correction (callers may
/// subtract a known F₁ via `f1_correction` for out-of-regime studies).
///
/// Memory layout: the estimator copies are stored structure-of-arrays,
/// copy-minor — sign caches as alpha[v·C + c] and accumulators as
/// accA[v·C + c] for C total copies — so the six updates an edge triggers
/// are six contiguous C-length sweeps instead of C strided struct walks.
/// Each accumulator slot receives exactly the same additions in the same
/// order as the historical array-of-structs layout, so estimates are
/// bit-identical.
class ArbF2FourCycleCounter : public EdgeStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    int copies_per_group = -1;  // <= 0 derives ⌈2/ε²⌉ capped at 512.
    int groups = 9;
    double f1_correction = 0.0;  // Optional known F₁(z) to subtract.
    /// kBlock opts into batched ProcessEdgeBlock delivery with per-thread
    /// accumulator shards; kScalar keeps the historical per-edge path.
    /// Either way the estimate is bit-identical (DESIGN.md §13) — these are
    /// throughput knobs, never recorded in deterministic manifests.
    SketchBackend sketch_backend = SketchBackend::kScalar;
    int intra_shards = 1;  // Worker shards per block; <=1 disables sharding.
  };

  explicit ArbF2FourCycleCounter(const Params& params);

  /// Dynamic interface.
  void Insert(const Edge& e) { Apply(e, +1.0); }
  void Delete(const Edge& e) { Apply(e, -1.0); }

  // EdgeStreamAlgorithm (insert-only adapter):
  int NumPasses() const override { return 1; }
  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override;
  /// Batched delivery. With Params{kBlock, intra_shards > 1} the block is
  /// split into contiguous slices, each applied by a pool worker into its
  /// own accumulator shard; EndPass folds the shards back in fixed order.
  /// Every edge delta is an exact small integer, so the fold is exact and
  /// the final accumulators are bit-identical to the per-edge path at any
  /// shard count (the ShardedSketch determinism contract).
  void ProcessEdgeBlock(int pass, std::span<const Edge> edges,
                        std::size_t base_position) override;
  /// Signed batched delivery (the turnstile path): edges[i] enters with
  /// weight signs[i] ∈ {+1, −1}. Same kBlock/intra_shards gating and shard
  /// slicing as ProcessEdgeBlock, and the same contract: bit-identical to
  /// applying Insert/Delete per update at any shard count.
  void ProcessSignedEdgeBlock(std::span<const Edge> edges,
                              std::span<const double> signs);
  /// Multiplies every accumulator by `factor` — the exponential-decay hook.
  /// Folds live shard scratch first (fixed order) so the scale covers the
  /// whole state; with an exact power-of-two factor the multiply is a pure
  /// exponent shift, lossless on every slot.
  void Rescale(double factor);
  void EndPass(int pass) override;
  std::string_view CheckpointId() const override { return "arbf2/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;
  /// Shard-merge: adds `other`'s accumulators into this counter's. The
  /// state is linear in the stream (every edge contributes fixed ±1 /
  /// ±1·±1 deltas), so merging shard-local counters over a partitioned
  /// stream reproduces the whole-stream counters exactly — every slot is
  /// an exact integer far below 2^53, making the addition exact and
  /// associative. False (no mutation) unless `other` is an
  /// ArbF2FourCycleCounter with identical result-affecting configuration.
  bool MergeFrom(const EdgeStreamAlgorithm& other) override;

  /// Computes the estimate from the current counters (may be called at any
  /// time in the dynamic setting).
  Estimate Result() const;

  double F2Estimate() const;

 private:
  void Apply(const Edge& e, double sign);

  /// Apply into an explicit accumulator triple (shard scratch or the
  /// canonical arrays). Same six sweeps as Apply.
  void ApplyTo(const Edge& e, double sign, double* acc_a, double* acc_b,
               double* acc_c) const;

  /// Folds live shard scratch into the canonical accumulators (fixed shard
  /// order) and releases it. No-op when no scratch is live.
  void FoldShardExtras();

  /// a/b/c receive the canonical accumulators with any live shard scratch
  /// folded in (copies only when scratch is live — cold paths only).
  void MergedAccums(std::vector<double>* a, std::vector<double>* b,
                    std::vector<double>* c) const;

  Params params_;
  std::size_t num_copies_ = 0;
  // ±1 sign caches, copy-minor: alpha_[v·C + c] for vertex v, copy c. The
  // 4-wise hashes are evaluated once per vertex at construction through a
  // KWiseHashBank (the vertex universe is known up front).
  std::vector<signed char> alpha_;
  std::vector<signed char> beta_;
  // Accumulators, copy-minor: acc{A,B,C}_[v·C + c].
  std::vector<double> acc_a_;
  std::vector<double> acc_b_;
  std::vector<double> acc_c_;
  // Per-shard accumulator scratch for block delivery: shard s > 0 writes
  // shard_extras_[s-1] while shard 0 writes the canonical arrays above.
  // Lazily allocated on the first sharded block, folded back at pass end.
  // Derived working memory: not serialized (SaveState writes the folded,
  // canonical form — merge-then-save) and not counted in Result().
  struct ShardAccums {
    std::vector<double> a, b, c;
  };
  std::vector<ShardAccums> shard_extras_;
  mutable std::vector<double> square_scratch_;
};

/// Convenience wrapper over an insert-only stream.
Estimate CountFourCyclesArbF2(const EdgeStream& stream,
                              const ArbF2FourCycleCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_CORE_ARB_F2_COUNTER_H_
