#ifndef CYCLESTREAM_HASH_KWISE_KERNELS_H_
#define CYCLESTREAM_HASH_KWISE_KERNELS_H_

#include <cstddef>
#include <cstdint>

// Internal kernel surface for the block (batched-key) k-wise hash paths.
// kwise_kernels.cc owns the portable implementations and the runtime
// dispatch; kwise_kernels_avx2.cc / kwise_kernels_avx512.cc are the only
// TUs compiled with -mavx2 / -mavx512f (present only when the build defines
// CYCLESTREAM_HAVE_AVX2 / CYCLESTREAM_HAVE_AVX512), mirroring the DODG
// exact-kernel layout in graph/dodg_kernels.h. Every kernel tier produces
// bit-identical outputs: all of them compute the same canonical residues
// mod p = 2^61 − 1, so the counters receive the same IEEE additions in the
// same order regardless of ISA.
//
// The SIMD tiers do not evaluate Horner's rule. A k-wise polynomial with
// k ≤ 4 is evaluated in the *power basis*: h = c₃x³ + c₂x² + c₁x + c₀ with
// the powers x, x², x³ computed once per key (scalar, canonical) and every
// coefficient pre-split at bank build time as c = lo31 + hi31·2³¹. Each
// 64×64 product then decomposes into three 32×32 products that
// _mm*_mul_epu32 can form directly, partial products are summed across the
// ≤ 3 terms *before* any modular fold (the deferred-fold trick — bounds in
// kwise_kernels_avx2.cc), and one fold chain per vector finishes the job.
// This removes the loop-carried Horner dependency entirely; k > 4 would
// overflow the 64-bit partial sums and falls back to the scalar tier.

namespace cyclestream {

/// Runtime SIMD selection for the sketch block kernels, mirroring the DODG
/// backend's ExactSimdMode. kAuto picks the widest compiled tier the CPU
/// supports (AVX-512 > AVX2 > scalar); kAvx2 caps the choice at AVX2 (for
/// cross-tier equivalence tests on AVX-512 hosts); kScalar forces the
/// portable kernels. Set once at startup or from tests.
enum class SketchSimdMode { kAuto, kScalar, kAvx2 };
void SetSketchSimdMode(SketchSimdMode mode);
SketchSimdMode GetSketchSimdMode();

/// Name of the kernel tier the next block call will use: "avx512", "avx2"
/// or "scalar". Diagnostic only — keep it out of deterministic manifests,
/// which are compared byte-for-byte across ISAs.
const char* ActiveSketchKernels();

namespace internal {

/// Borrowed view of one KWiseHashBank's coefficient storage plus its
/// derived power-basis split tables (KWiseHashBank::EnsureBlockTables).
/// lo31/hi31 may be null — the SIMD kernels then take the scalar path.
struct SketchBankView {
  int k = 0;
  std::size_t n = 0;
  const std::uint64_t* coeffs = nullptr;  // coeffs[j·n + i] = c_j of hash i.
  const std::uint64_t* lo31 = nullptr;    // c_j & (2³¹−1), same layout.
  const std::uint64_t* hi31 = nullptr;    // c_j >> 31 (< 2³⁰), same layout.
};

/// counters[i] += delta·sign_i(keys[b]) for b = 0..count in key order — the
/// block form of KWiseHashBank::AccumulateSigned. Each counter receives the
/// identical IEEE addition sequence the per-key loop would issue.
using AccumulateSignedBlockFn = void (*)(const SketchBankView& bank,
                                         const std::uint64_t* keys,
                                         std::size_t count, double delta,
                                         double* counters);

/// out[b·bank.n + i] = h_i(keys[b]), canonical in [0, p).
using EvalBlockFn = void (*)(const SketchBankView& bank,
                             const std::uint64_t* keys, std::size_t count,
                             std::uint64_t* out);

struct SketchKernelTable {
  AccumulateSignedBlockFn accumulate_signed_block;
  EvalBlockFn eval_block;
  const char* name;
};

/// The table for the active tier (honors SetSketchSimdMode and CPUID).
const SketchKernelTable& PickSketchKernels();

void AccumulateSignedBlockScalar(const SketchBankView& bank,
                                 const std::uint64_t* keys, std::size_t count,
                                 double delta, double* counters);
void EvalBlockScalar(const SketchBankView& bank, const std::uint64_t* keys,
                     std::size_t count, std::uint64_t* out);

#if defined(CYCLESTREAM_HAVE_AVX2)
void AccumulateSignedBlockAvx2(const SketchBankView& bank,
                               const std::uint64_t* keys, std::size_t count,
                               double delta, double* counters);
void EvalBlockAvx2(const SketchBankView& bank, const std::uint64_t* keys,
                   std::size_t count, std::uint64_t* out);
#endif

#if defined(CYCLESTREAM_HAVE_AVX512)
void AccumulateSignedBlockAvx512(const SketchBankView& bank,
                                 const std::uint64_t* keys, std::size_t count,
                                 double delta, double* counters);
void EvalBlockAvx512(const SketchBankView& bank, const std::uint64_t* keys,
                     std::size_t count, std::uint64_t* out);
#endif

}  // namespace internal
}  // namespace cyclestream

#endif  // CYCLESTREAM_HASH_KWISE_KERNELS_H_
