#ifndef CYCLESTREAM_HASH_KWISE_H_
#define CYCLESTREAM_HASH_KWISE_H_

#include <cstdint>
#include <vector>

namespace cyclestream {

/// k-wise independent hash family: a random degree-(k-1) polynomial over
/// GF(p) with p = 2^61 - 1 (a Mersenne prime, enabling fast modular
/// reduction). For inputs x < p, the values h(x) are exactly k-wise
/// independent and uniform over [0, p).
///
/// The paper's algorithms require limited independence in several places:
/// the level sets V_i of §2.1 are defined via hash functions f_i with "the
/// appropriate degree of independence", and the AMS sign vectors α, β of
/// §4.2 need 4-wise independence. This family serves both.
class KWiseHash {
 public:
  static constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

  /// Constructs a hash drawn from the k-wise independent family, using
  /// `seed` to pick the polynomial coefficients. Requires k >= 1.
  KWiseHash(int k, std::uint64_t seed);

  /// Hash value in [0, kPrime).
  std::uint64_t operator()(std::uint64_t x) const;

  /// Uniform double in [0, 1) derived from the hash value. Together with a
  /// threshold this gives k-wise independent Bernoulli indicators, which is
  /// how the algorithms materialize "sample each vertex with probability p"
  /// in small space (store the seed, not the set).
  double ToUnit(std::uint64_t x) const {
    return static_cast<double>(operator()(x)) / static_cast<double>(kPrime);
  }

  /// k-wise independent Bernoulli indicator with success probability p.
  bool Keep(std::uint64_t x, double p) const { return ToUnit(x) < p; }

  /// Rademacher sign in {-1, +1} from the hash's low bit. With k = 4 this is
  /// the 4-wise independent sign family the AMS estimator needs.
  int Sign(std::uint64_t x) const {
    return (operator()(x) & 1ULL) ? 1 : -1;
  }

  int k() const { return static_cast<int>(coeffs_.size()); }

  /// Number of 64-bit words of state (for space accounting).
  std::size_t SpaceWords() const { return coeffs_.size(); }

 private:
  std::vector<std::uint64_t> coeffs_;  // c_0 .. c_{k-1}, c_{k-1} may be 0.
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_HASH_KWISE_H_
