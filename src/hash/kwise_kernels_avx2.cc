// AVX2 power-basis block kernels (4×64-bit lanes). Compiled with -mavx2 and
// dispatched behind __builtin_cpu_supports("avx2") — see kwise_kernels.h.
//
// Layout and bounds (shared with the AVX-512 TU, which widens the same
// arithmetic): a canonical value v < p = 2^61 − 1 splits as
// v = v0 + v1·2^31 with v0 < 2^31, v1 < 2^30. For a coefficient split
// (a0, a1) and a power split (y0, y1) the product decomposes as
//   a·y = a0·y0 + (a0·y1 + a1·y0)·2^31 + a1·y1·2^62,
// and 2^62 ≡ 2 (mod p) folds the top limb into a1·(y1·2) directly. Per
// 32×32 product: a0·y0 < 2^62, a0·y1 + a1·y0 < 2^62, a1·(2·y1) < 2^61.
// Summing over the ≤ 3 polynomial terms *before* folding keeps every
// partial sum < 3·2^62 < 2^64. The recombination
//   t = fold(Σp00) + ((Σmid & m30) << 31) + (Σmid >> 30) + Σp11s + c0
// is bounded by 2^62 + 2^61 + 2^34 + 3·2^61 + 2^61 < 2^64, two folds bring
// it to s ≤ p, and a subtract-iff-equal finishes the canonicalization —
// exactly the residue the scalar chain computes.

#include <immintrin.h>

#include <cstring>

#include "hash/kwise_kernels.h"
#include "hash/mersenne.h"

namespace cyclestream::internal {
namespace {

constexpr std::uint64_t kP = kMersennePrime61;
constexpr std::uint64_t kMask31 = (1ULL << 31) - 1;
constexpr std::size_t kLanes = 4;

inline __m256i Load(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline __m256i Fold(__m256i t, __m256i m61) {
  return _mm256_add_epi64(_mm256_and_si256(t, m61), _mm256_srli_epi64(t, 61));
}

// Per-key broadcast splits of the powers x^1..x^TERMS (all canonical).
template <int TERMS>
struct KeyPowers {
  __m256i y0[TERMS], y1[TERMS], y1s[TERMS];
};

template <int TERMS>
inline KeyPowers<TERMS> MakeKeyPowers(std::uint64_t x1) {
  KeyPowers<TERMS> kp;
  std::uint64_t xp = x1;
  for (int t = 0; t < TERMS; ++t) {
    if (t > 0) xp = MulMod61(xp, x1);
    kp.y0[t] = _mm256_set1_epi64x(static_cast<long long>(xp & kMask31));
    const std::uint64_t h = xp >> 31;
    kp.y1[t] = _mm256_set1_epi64x(static_cast<long long>(h));
    kp.y1s[t] = _mm256_set1_epi64x(static_cast<long long>(h << 1));
  }
  return kp;
}

// h_{i..i+3}(key) as canonical residues, hash-major (one key, four hashes).
template <int TERMS>
inline __m256i EvalGroup(const SketchBankView& bank,
                         const KeyPowers<TERMS>& kp, std::size_t i,
                         __m256i m61, __m256i m30) {
  const std::size_t n = bank.n;
  __m256i p00 = _mm256_setzero_si256();
  __m256i mid = _mm256_setzero_si256();
  __m256i p11s = _mm256_setzero_si256();
  for (int t = 0; t < TERMS; ++t) {
    const __m256i a0 = Load(bank.lo31 + (t + 1) * n + i);
    const __m256i a1 = Load(bank.hi31 + (t + 1) * n + i);
    p00 = _mm256_add_epi64(p00, _mm256_mul_epu32(a0, kp.y0[t]));
    mid = _mm256_add_epi64(
        mid, _mm256_add_epi64(_mm256_mul_epu32(a0, kp.y1[t]),
                              _mm256_mul_epu32(a1, kp.y0[t])));
    p11s = _mm256_add_epi64(p11s, _mm256_mul_epu32(a1, kp.y1s[t]));
  }
  __m256i t = Fold(p00, m61);
  t = _mm256_add_epi64(t, _mm256_slli_epi64(_mm256_and_si256(mid, m30), 31));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(mid, 30));
  t = _mm256_add_epi64(t, p11s);
  t = _mm256_add_epi64(t, Load(bank.coeffs + i));
  __m256i s = Fold(Fold(t, m61), m61);  // s <= p.
  return _mm256_sub_epi64(s,
                          _mm256_and_si256(_mm256_cmpeq_epi64(s, m61), m61));
}

// Scalar per-hash tail shared by the vector loops: the plain lazy Horner
// chain, canonical on exit (same value as any other tier).
inline std::uint64_t EvalOneHash(const SketchBankView& bank, std::size_t i,
                                 std::uint64_t xm) {
  const std::size_t n = bank.n;
  std::uint64_t acc =
      bank.coeffs[static_cast<std::size_t>(bank.k - 1) * n + i];
  for (int j = bank.k - 2; j >= 0; --j) {
    acc = HornerStepLazy61(acc, xm, bank.coeffs[j * n + i]);
  }
  return CanonicalizeMod61(acc);
}

template <int TERMS>
void AccumulateSignedHashMajor(const SketchBankView& bank,
                               const std::uint64_t* keys, std::size_t count,
                               double delta, double* counters) {
  std::uint64_t delta_bits;
  std::memcpy(&delta_bits, &delta, sizeof(delta));
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kP));
  const __m256i m30 = _mm256_set1_epi64x((1LL << 30) - 1);
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i dsel = _mm256_set1_epi64x(static_cast<long long>(delta_bits));
  const std::size_t n = bank.n;
  for (std::size_t b = 0; b < count; ++b) {
    const std::uint64_t x1 = ReduceMod61(keys[b]);
    const KeyPowers<TERMS> kp = MakeKeyPowers<TERMS>(x1);
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      const __m256i s = EvalGroup<TERMS>(bank, kp, i, m61, m30);
      const __m256i oddv = _mm256_and_si256(s, one);
      const __m256i flip =
          _mm256_slli_epi64(_mm256_xor_si256(oddv, one), 63);
      const __m256i dv = _mm256_xor_si256(dsel, flip);
      _mm256_storeu_pd(counters + i,
                       _mm256_add_pd(_mm256_loadu_pd(counters + i),
                                     _mm256_castsi256_pd(dv)));
    }
    for (; i < n; ++i) {
      const std::uint64_t odd = EvalOneHash(bank, i, x1) & 1ULL;
      const std::uint64_t bits = delta_bits ^ ((odd ^ 1ULL) << 63);
      double signed_delta;
      std::memcpy(&signed_delta, &bits, sizeof(signed_delta));
      counters[i] += signed_delta;
    }
  }
}

template <int TERMS>
void EvalHashMajor(const SketchBankView& bank, const std::uint64_t* keys,
                   std::size_t count, std::uint64_t* out) {
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kP));
  const __m256i m30 = _mm256_set1_epi64x((1LL << 30) - 1);
  const std::size_t n = bank.n;
  for (std::size_t b = 0; b < count; ++b) {
    const std::uint64_t x1 = ReduceMod61(keys[b]);
    const KeyPowers<TERMS> kp = MakeKeyPowers<TERMS>(x1);
    std::uint64_t* o = out + b * n;
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + i),
                          EvalGroup<TERMS>(bank, kp, i, m61, m30));
    }
    for (; i < n; ++i) o[i] = EvalOneHash(bank, i, x1);
  }
}

// --- Key-lanes (transposed) evaluation for small banks --------------------
// When n < 2·kLanes (e.g. CountSketch row hashes, n = depth), hash-major
// vectorization starves; instead vectorize across keys: the lanes hold
// kLanes different keys, coefficients are broadcast per hash.

// Canonical residues of four arbitrary 64-bit keys. After one fold
// t ≤ p + 7, so the subtract needs >= (not just ==): t < 2^62 makes the
// signed compare safe.
inline __m256i VecReduce61(__m256i x, __m256i m61, __m256i pm1) {
  const __m256i t = Fold(x, m61);
  const __m256i ge = _mm256_cmpgt_epi64(t, pm1);
  return _mm256_sub_epi64(t, _mm256_and_si256(ge, m61));
}

// a·b mod p for canonical lane values (result canonical). Same
// decomposition and bounds as EvalGroup with a single term.
inline __m256i VecMulMod61(__m256i a, __m256i b, __m256i m61, __m256i m31,
                           __m256i m30) {
  const __m256i a0 = _mm256_and_si256(a, m31);
  const __m256i a1 = _mm256_srli_epi64(a, 31);
  const __m256i b0 = _mm256_and_si256(b, m31);
  const __m256i b1 = _mm256_srli_epi64(b, 31);
  const __m256i p00 = _mm256_mul_epu32(a0, b0);
  const __m256i mid = _mm256_add_epi64(_mm256_mul_epu32(a0, b1),
                                       _mm256_mul_epu32(a1, b0));
  const __m256i p11s = _mm256_mul_epu32(a1, _mm256_slli_epi64(b1, 1));
  __m256i t = Fold(p00, m61);
  t = _mm256_add_epi64(t, _mm256_slli_epi64(_mm256_and_si256(mid, m30), 31));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(mid, 30));
  t = _mm256_add_epi64(t, p11s);
  __m256i s = Fold(Fold(t, m61), m61);  // s <= p.
  return _mm256_sub_epi64(s,
                          _mm256_and_si256(_mm256_cmpeq_epi64(s, m61), m61));
}

template <int TERMS>
void EvalKeyLanes(const SketchBankView& bank, const std::uint64_t* keys,
                  std::size_t count, std::uint64_t* out) {
  const __m256i m61 = _mm256_set1_epi64x(static_cast<long long>(kP));
  const __m256i m31 = _mm256_set1_epi64x(static_cast<long long>(kMask31));
  const __m256i m30 = _mm256_set1_epi64x((1LL << 30) - 1);
  const __m256i pm1 = _mm256_set1_epi64x(static_cast<long long>(kP - 1));
  const std::size_t n = bank.n;
  std::uint64_t local[2 * kLanes * kLanes];  // n < 2·kLanes rows of kLanes.
  std::size_t b = 0;
  for (; b + kLanes <= count; b += kLanes) {
    // Lane-wise powers of the four keys.
    __m256i y0[TERMS], y1[TERMS], y1s[TERMS];
    __m256i xp = VecReduce61(Load(keys + b), m61, pm1);
    const __m256i x1 = xp;
    for (int t = 0; t < TERMS; ++t) {
      if (t > 0) xp = VecMulMod61(xp, x1, m61, m31, m30);
      y0[t] = _mm256_and_si256(xp, m31);
      y1[t] = _mm256_srli_epi64(xp, 31);
      y1s[t] = _mm256_slli_epi64(y1[t], 1);
    }
    for (std::size_t i = 0; i < n; ++i) {
      __m256i p00 = _mm256_setzero_si256();
      __m256i mid = _mm256_setzero_si256();
      __m256i p11s = _mm256_setzero_si256();
      for (int t = 0; t < TERMS; ++t) {
        const __m256i a0 = _mm256_set1_epi64x(
            static_cast<long long>(bank.lo31[(t + 1) * n + i]));
        const __m256i a1 = _mm256_set1_epi64x(
            static_cast<long long>(bank.hi31[(t + 1) * n + i]));
        p00 = _mm256_add_epi64(p00, _mm256_mul_epu32(a0, y0[t]));
        mid = _mm256_add_epi64(
            mid, _mm256_add_epi64(_mm256_mul_epu32(a0, y1[t]),
                                  _mm256_mul_epu32(a1, y0[t])));
        p11s = _mm256_add_epi64(p11s, _mm256_mul_epu32(a1, y1s[t]));
      }
      __m256i t = Fold(p00, m61);
      t = _mm256_add_epi64(t,
                           _mm256_slli_epi64(_mm256_and_si256(mid, m30), 31));
      t = _mm256_add_epi64(t, _mm256_srli_epi64(mid, 30));
      t = _mm256_add_epi64(t, p11s);
      t = _mm256_add_epi64(
          t, _mm256_set1_epi64x(static_cast<long long>(bank.coeffs[i])));
      __m256i s = Fold(Fold(t, m61), m61);
      s = _mm256_sub_epi64(s,
                           _mm256_and_si256(_mm256_cmpeq_epi64(s, m61), m61));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(local + i * kLanes), s);
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::uint64_t* o = out + (b + l) * n;
      for (std::size_t i = 0; i < n; ++i) o[i] = local[i * kLanes + l];
    }
  }
  for (; b < count; ++b) {
    const std::uint64_t xm = ReduceMod61(keys[b]);
    std::uint64_t* o = out + b * n;
    for (std::size_t i = 0; i < n; ++i) o[i] = EvalOneHash(bank, i, xm);
  }
}

}  // namespace

void AccumulateSignedBlockAvx2(const SketchBankView& bank,
                               const std::uint64_t* keys, std::size_t count,
                               double delta, double* counters) {
  const int terms = bank.k - 1;
  if (bank.lo31 == nullptr || terms < 1 || terms > 3 || bank.n < kLanes) {
    AccumulateSignedBlockScalar(bank, keys, count, delta, counters);
    return;
  }
  switch (terms) {
    case 1:
      AccumulateSignedHashMajor<1>(bank, keys, count, delta, counters);
      return;
    case 2:
      AccumulateSignedHashMajor<2>(bank, keys, count, delta, counters);
      return;
    default:
      AccumulateSignedHashMajor<3>(bank, keys, count, delta, counters);
      return;
  }
}

void EvalBlockAvx2(const SketchBankView& bank, const std::uint64_t* keys,
                   std::size_t count, std::uint64_t* out) {
  const int terms = bank.k - 1;
  if (bank.lo31 == nullptr || terms < 1 || terms > 3) {
    EvalBlockScalar(bank, keys, count, out);
    return;
  }
  if (bank.n < 2 * kLanes) {
    switch (terms) {
      case 1:
        EvalKeyLanes<1>(bank, keys, count, out);
        return;
      case 2:
        EvalKeyLanes<2>(bank, keys, count, out);
        return;
      default:
        EvalKeyLanes<3>(bank, keys, count, out);
        return;
    }
  }
  switch (terms) {
    case 1:
      EvalHashMajor<1>(bank, keys, count, out);
      return;
    case 2:
      EvalHashMajor<2>(bank, keys, count, out);
      return;
    default:
      EvalHashMajor<3>(bank, keys, count, out);
      return;
  }
}

}  // namespace cyclestream::internal
