#include "hash/kwise.h"

#include "hash/mersenne.h"
#include "hash/rng.h"
#include "util/check.h"

namespace cyclestream {

KWiseHash::KWiseHash(int k, std::uint64_t seed) {
  CHECK_GE(k, 1);
  std::uint64_t s = seed;
  coeffs_.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    // Rejection-sample a uniform value in [0, p) from splitmix output.
    std::uint64_t c;
    do {
      c = SplitMix64(s) & ((1ULL << 62) - 1);  // 62 low bits, accept < p.
    } while (c >= kPrime);
    coeffs_.push_back(c);
  }
}

std::uint64_t KWiseHash::operator()(std::uint64_t x) const {
  // Reduce the input first; kwise guarantees hold for x < p, and 64-bit keys
  // folded into [0,p) remain fine for our vertex/edge id domains (< 2^61).
  // ReduceMod61 computes the same canonical residue as x % kPrime.
  std::uint64_t xm = ReduceMod61(x);
  // Horner evaluation: ((c_{k-1} x + c_{k-2}) x + ...) + c_0.
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = AddMod61(MulMod61(acc, xm), coeffs_[i]);
  }
  return acc;
}

}  // namespace cyclestream
