#include "hash/kwise.h"

#include "hash/rng.h"
#include "util/check.h"

namespace cyclestream {
namespace {

// Multiplies a, b < 2^61-1 modulo the Mersenne prime using 128-bit products
// and the identity 2^61 ≡ 1 (mod p).
inline std::uint64_t MulMod(std::uint64_t a, std::uint64_t b) {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  std::uint64_t lo = static_cast<std::uint64_t>(prod) & KWiseHash::kPrime;
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t sum = lo + hi;
  if (sum >= KWiseHash::kPrime) sum -= KWiseHash::kPrime;
  return sum;
}

inline std::uint64_t AddMod(std::uint64_t a, std::uint64_t b) {
  std::uint64_t sum = a + b;  // a, b < 2^61 so no 64-bit overflow.
  if (sum >= KWiseHash::kPrime) sum -= KWiseHash::kPrime;
  return sum;
}

}  // namespace

KWiseHash::KWiseHash(int k, std::uint64_t seed) {
  CHECK_GE(k, 1);
  std::uint64_t s = seed;
  coeffs_.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    // Rejection-sample a uniform value in [0, p) from splitmix output.
    std::uint64_t c;
    do {
      c = SplitMix64(s) & ((1ULL << 62) - 1);  // 62 low bits, accept < p.
    } while (c >= kPrime);
    coeffs_.push_back(c);
  }
}

std::uint64_t KWiseHash::operator()(std::uint64_t x) const {
  // Reduce the input first; kwise guarantees hold for x < p, and 64-bit keys
  // folded into [0,p) remain fine for our vertex/edge id domains (< 2^61).
  std::uint64_t xm = x % kPrime;
  // Horner evaluation: ((c_{k-1} x + c_{k-2}) x + ...) + c_0.
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs_.size(); i-- > 0;) {
    acc = AddMod(MulMod(acc, xm), coeffs_[i]);
  }
  return acc;
}

}  // namespace cyclestream
