#ifndef CYCLESTREAM_HASH_RNG_H_
#define CYCLESTREAM_HASH_RNG_H_

#include <cstdint>
#include <vector>

namespace cyclestream {

class StateWriter;
class StateReader;

/// Deterministic, seedable pseudo-random generator (xoshiro256**),
/// seeded via splitmix64. Every randomized component in the library takes an
/// explicit seed so experiments are reproducible run-to-run.
///
/// Satisfies the C++ UniformRandomBitGenerator concept, so it also works with
/// <random> distributions if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit value.
  std::uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box–Muller (used by a couple of synthetic workloads).
  double Normal();

  /// Binomial(n, p) draw. Exact summation for small n, normal approximation
  /// with rounding for large n (n*p*(1-p) > 100) — accurate enough for the
  /// lower-bound gadget generator that needs Bin(T, p) counts.
  std::uint64_t Binomial(std::uint64_t n, double p);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; stream `i` of the same parent is
  /// stable across runs. Used to give each trial / each sub-structure its own
  /// reproducible randomness.
  Rng Fork(std::uint64_t stream) const;

  /// Checkpoint serialization: the full generator position (xoshiro state,
  /// cached Box–Muller variate, original seed) round-trips so a restored
  /// generator continues the exact output sequence.
  void SaveState(StateWriter& w) const;
  bool RestoreState(StateReader& r);

 private:
  std::uint64_t state_[4];
  // Cached second Box–Muller variate.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
  std::uint64_t seed_ = 0;
};

/// splitmix64 step; exposed because hash-family seeding uses it directly.
std::uint64_t SplitMix64(std::uint64_t& state);

}  // namespace cyclestream

#endif  // CYCLESTREAM_HASH_RNG_H_
