#include "hash/rng.h"

#include <cmath>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Lemire's method: multiply-shift with rejection of the biased low range.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

std::uint64_t Rng::Binomial(std::uint64_t n, double p) {
  if (p <= 0.0 || n == 0) return 0;
  if (p >= 1.0) return n;
  const double variance = static_cast<double>(n) * p * (1.0 - p);
  if (variance > 100.0) {
    const double mean = static_cast<double>(n) * p;
    double draw = mean + std::sqrt(variance) * Normal();
    if (draw < 0.0) draw = 0.0;
    if (draw > static_cast<double>(n)) draw = static_cast<double>(n);
    return static_cast<std::uint64_t>(std::llround(draw));
  }
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < n; ++i) count += Bernoulli(p) ? 1 : 0;
  return count;
}

Rng Rng::Fork(std::uint64_t stream) const {
  // Mix the original seed with the stream id through splitmix so that forks
  // are independent of both each other and the parent's current state.
  std::uint64_t s = seed_ ^ (0x5851f42d4c957f2dULL * (stream + 1));
  return Rng(SplitMix64(s));
}

void Rng::SaveState(StateWriter& w) const {
  for (std::uint64_t s : state_) w.U64(s);
  w.Bool(has_cached_normal_);
  w.Double(cached_normal_);
  w.U64(seed_);
}

bool Rng::RestoreState(StateReader& r) {
  std::uint64_t state[4];
  for (std::uint64_t& s : state) s = r.U64();
  const bool has_cached = r.Bool();
  const double cached = r.Double();
  const std::uint64_t seed = r.U64();
  if (!r.ok()) return false;
  for (int i = 0; i < 4; ++i) state_[i] = state[i];
  has_cached_normal_ = has_cached;
  cached_normal_ = cached;
  seed_ = seed;
  return true;
}

}  // namespace cyclestream
