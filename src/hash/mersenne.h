#ifndef CYCLESTREAM_HASH_MERSENNE_H_
#define CYCLESTREAM_HASH_MERSENNE_H_

#include <cstdint>

namespace cyclestream {

/// Arithmetic over GF(p) with p = 2^61 - 1, shared by the scalar k-wise hash
/// and the batched hash bank. Keeping one definition guarantees the bank is
/// evaluating the *same* field operations as the scalar reference, which is
/// what the bit-identical contract of KWiseHashBank rests on.
inline constexpr std::uint64_t kMersennePrime61 = (1ULL << 61) - 1;

/// a * b mod p via a 128-bit product and the identity 2^61 ≡ 1 (mod p).
/// Requires a, b < p; the result is the canonical residue in [0, p).
inline std::uint64_t MulMod61(std::uint64_t a, std::uint64_t b) {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  const std::uint64_t lo = static_cast<std::uint64_t>(prod) & kMersennePrime61;
  const std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t sum = lo + hi;
  if (sum >= kMersennePrime61) sum -= kMersennePrime61;
  return sum;
}

/// a + b mod p. Requires a, b < p (so the 64-bit sum cannot overflow).
inline std::uint64_t AddMod61(std::uint64_t a, std::uint64_t b) {
  std::uint64_t sum = a + b;
  if (sum >= kMersennePrime61) sum -= kMersennePrime61;
  return sum;
}

/// Canonical residue of an arbitrary 64-bit value: x = hi·2^61 + lo with
/// 2^61 ≡ 1 folds to hi + lo < 2p, so one conditional subtract finishes.
/// Equals x % p for every x, without the division.
inline std::uint64_t ReduceMod61(std::uint64_t x) {
  std::uint64_t sum = (x & kMersennePrime61) + (x >> 61);
  if (sum >= kMersennePrime61) sum -= kMersennePrime61;
  return sum;
}

/// One *lazy* Horner stage acc·x + c (mod p) for hot batched sweeps: two
/// unconditional folds, no compare/subtract, so the compiler emits a pure
/// straight-line multiply-fold chain. The accumulator is relaxed — congruent
/// to the true residue but possibly ≥ p.
///
/// Bounds: requires acc < 2^62 and x, c < p. Then acc·x < 2^123, the first
/// fold gives t < 2^62 + 2^61 + 2^61 < 2^63, and the second fold returns a
/// value < 2^61 + 4 < 2^62 — the invariant is self-sustaining across
/// stages. Feed the final accumulator through CanonicalizeMod61 before
/// using the value.
inline std::uint64_t HornerStepLazy61(std::uint64_t acc, std::uint64_t x,
                                      std::uint64_t c) {
  const __uint128_t prod = static_cast<__uint128_t>(acc) * x;
  const std::uint64_t t =
      (static_cast<std::uint64_t>(prod) & kMersennePrime61) +
      static_cast<std::uint64_t>(prod >> 61) + c;
  return (t & kMersennePrime61) + (t >> 61);
}

/// Single-fold lazy Horner stage: one fold, no compare/subtract — two ALU
/// ops cheaper than HornerStepLazy61, but the accumulator grows across
/// stages. Safe ONLY for chains of at most 3 stages seeded from a canonical
/// coefficient (i.e. k ≤ 4): with acc₀ < p the stage outputs are bounded by
/// t₁ < 2^63, t₂ < 2^63 + 2^62, t₃ ≤ 2^64 − 4 — the last one just fits in
/// 64 bits, and a 4th stage would overflow. Canonicalize before use.
inline std::uint64_t HornerStepLazy1Fold61(std::uint64_t acc, std::uint64_t x,
                                           std::uint64_t c) {
  const __uint128_t prod = static_cast<__uint128_t>(acc) * x;
  return (static_cast<std::uint64_t>(prod) & kMersennePrime61) +
         static_cast<std::uint64_t>(prod >> 61) + c;
}

/// Collapses a lazy accumulator (any 64-bit value) to the canonical residue
/// in [0, p) — the same value the strict AddMod61/MulMod61 chain produces,
/// which is what the hash bank's bit-identical contract requires.
inline std::uint64_t CanonicalizeMod61(std::uint64_t acc) {
  std::uint64_t sum = (acc & kMersennePrime61) + (acc >> 61);
  if (sum >= kMersennePrime61) sum -= kMersennePrime61;
  return sum;
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_HASH_MERSENNE_H_
