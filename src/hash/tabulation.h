#ifndef CYCLESTREAM_HASH_TABULATION_H_
#define CYCLESTREAM_HASH_TABULATION_H_

#include <array>
#include <cstdint>

namespace cyclestream {

/// Simple tabulation hashing over 64-bit keys: the key is split into eight
/// bytes and each byte indexes an independent random table; the results are
/// XORed. Simple tabulation is 3-wise independent and behaves far better than
/// that in practice (Pătraşcu–Thorup); the library uses it where speed matters
/// more than provable independence degree (hash-map mixing, CountSketch
/// bucket choice paired with a k-wise sign).
class TabulationHash {
 public:
  explicit TabulationHash(std::uint64_t seed);

  std::uint64_t operator()(std::uint64_t key) const {
    std::uint64_t h = 0;
    for (int b = 0; b < 8; ++b) {
      h ^= tables_[b][static_cast<std::uint8_t>(key >> (8 * b))];
    }
    return h;
  }

  /// Uniform double in [0, 1).
  double ToUnit(std::uint64_t key) const {
    return static_cast<double>(operator()(key) >> 11) * 0x1.0p-53;
  }

  /// Space in 64-bit words (8 tables of 256 entries).
  static constexpr std::size_t SpaceWords() { return 8 * 256; }

 private:
  std::array<std::array<std::uint64_t, 256>, 8> tables_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_HASH_TABULATION_H_
