#include "hash/kwise_kernels.h"

#include <algorithm>
#include <cstring>

#include "hash/mersenne.h"

namespace cyclestream {
namespace internal {

// The scalar block kernels replay the per-key sweeps of kwise_bank.cc over
// each key of the block: lazy Horner stages, canonicalize on consumption.
// They are the reference the SIMD tiers are tested against, and the
// fallback for k outside the power-basis window (k−1 ∉ [1,3]).

void AccumulateSignedBlockScalar(const SketchBankView& bank,
                                 const std::uint64_t* keys, std::size_t count,
                                 double delta, double* counters) {
  const std::size_t n = bank.n;
  std::uint64_t delta_bits;
  std::memcpy(&delta_bits, &delta, sizeof(delta));
  if (bank.k == 4) {
    // The AMS sign-hash case: fully fused single-fold chain (bounds in
    // HornerStepLazy1Fold61 — exactly 3 stages fit).
    const std::uint64_t* c3 = bank.coeffs + 3 * n;
    const std::uint64_t* c2 = bank.coeffs + 2 * n;
    const std::uint64_t* c1 = bank.coeffs + 1 * n;
    const std::uint64_t* c0 = bank.coeffs;
    for (std::size_t b = 0; b < count; ++b) {
      const std::uint64_t xm = ReduceMod61(keys[b]);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t acc = c3[i];
        acc = HornerStepLazy1Fold61(acc, xm, c2[i]);
        acc = HornerStepLazy1Fold61(acc, xm, c1[i]);
        acc = HornerStepLazy1Fold61(acc, xm, c0[i]);
        const std::uint64_t odd = CanonicalizeMod61(acc) & 1ULL;
        const std::uint64_t bits = delta_bits ^ ((odd ^ 1ULL) << 63);
        double signed_delta;
        std::memcpy(&signed_delta, &bits, sizeof(signed_delta));
        counters[i] += signed_delta;
      }
    }
    return;
  }
  constexpr std::size_t kTile = 64;
  std::uint64_t acc[kTile];
  for (std::size_t b = 0; b < count; ++b) {
    const std::uint64_t xm = ReduceMod61(keys[b]);
    for (std::size_t base = 0; base < n; base += kTile) {
      const std::size_t len = std::min(kTile, n - base);
      const std::uint64_t* top =
          bank.coeffs + static_cast<std::size_t>(bank.k - 1) * n + base;
      for (std::size_t i = 0; i < len; ++i) acc[i] = top[i];
      for (int j = bank.k - 2; j >= 0; --j) {
        const std::uint64_t* row =
            bank.coeffs + static_cast<std::size_t>(j) * n + base;
        for (std::size_t i = 0; i < len; ++i) {
          acc[i] = HornerStepLazy61(acc[i], xm, row[i]);
        }
      }
      double* c = counters + base;
      for (std::size_t i = 0; i < len; ++i) {
        const std::uint64_t odd = CanonicalizeMod61(acc[i]) & 1ULL;
        const std::uint64_t bits = delta_bits ^ ((odd ^ 1ULL) << 63);
        double signed_delta;
        std::memcpy(&signed_delta, &bits, sizeof(signed_delta));
        c[i] += signed_delta;
      }
    }
  }
}

void EvalBlockScalar(const SketchBankView& bank, const std::uint64_t* keys,
                     std::size_t count, std::uint64_t* out) {
  const std::size_t n = bank.n;
  for (std::size_t b = 0; b < count; ++b) {
    const std::uint64_t xm = ReduceMod61(keys[b]);
    std::uint64_t* o = out + b * n;
    const std::uint64_t* top =
        bank.coeffs + static_cast<std::size_t>(bank.k - 1) * n;
    for (std::size_t i = 0; i < n; ++i) o[i] = top[i];
    for (int j = bank.k - 2; j >= 0; --j) {
      const std::uint64_t* row =
          bank.coeffs + static_cast<std::size_t>(j) * n;
      for (std::size_t i = 0; i < n; ++i) {
        o[i] = HornerStepLazy61(o[i], xm, row[i]);
      }
    }
    for (std::size_t i = 0; i < n; ++i) o[i] = CanonicalizeMod61(o[i]);
  }
}

namespace {

constexpr SketchKernelTable kScalarTable{&AccumulateSignedBlockScalar,
                                         &EvalBlockScalar, "scalar"};
#if defined(CYCLESTREAM_HAVE_AVX2)
constexpr SketchKernelTable kAvx2Table{&AccumulateSignedBlockAvx2,
                                       &EvalBlockAvx2, "avx2"};
#endif
#if defined(CYCLESTREAM_HAVE_AVX512)
constexpr SketchKernelTable kAvx512Table{&AccumulateSignedBlockAvx512,
                                         &EvalBlockAvx512, "avx512"};
#endif

SketchSimdMode g_sketch_simd_mode = SketchSimdMode::kAuto;

}  // namespace

const SketchKernelTable& PickSketchKernels() {
#if defined(CYCLESTREAM_HAVE_AVX512)
  if (g_sketch_simd_mode == SketchSimdMode::kAuto &&
      __builtin_cpu_supports("avx512f")) {
    return kAvx512Table;
  }
#endif
#if defined(CYCLESTREAM_HAVE_AVX2)
  if ((g_sketch_simd_mode == SketchSimdMode::kAuto ||
       g_sketch_simd_mode == SketchSimdMode::kAvx2) &&
      __builtin_cpu_supports("avx2")) {
    return kAvx2Table;
  }
#endif
  return kScalarTable;
}

}  // namespace internal

void SetSketchSimdMode(SketchSimdMode mode) {
  internal::g_sketch_simd_mode = mode;
}

SketchSimdMode GetSketchSimdMode() { return internal::g_sketch_simd_mode; }

const char* ActiveSketchKernels() {
  return internal::PickSketchKernels().name;
}

}  // namespace cyclestream
