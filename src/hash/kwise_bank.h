#ifndef CYCLESTREAM_HASH_KWISE_BANK_H_
#define CYCLESTREAM_HASH_KWISE_BANK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hash/kwise.h"

namespace cyclestream {

class StateWriter;
class StateReader;

namespace internal {
struct SketchBankView;
}  // namespace internal

/// A bank of N independent k-wise hashes evaluated together.
///
/// Every sketch in this library runs many independent copies of the same
/// estimator, and each stream element pays one polynomial-hash evaluation
/// *per copy*. Evaluating the copies one at a time through a
/// std::vector<KWiseHash> costs an input reduction (x mod p) per copy and a
/// pointer chase into each hash's own coefficient vector. The bank stores
/// the coefficients of all N hashes coefficient-major in one flat array
/// (coeffs_[j·N + i] = c_j of hash i), reduces the input once, and runs the
/// shared Horner recurrence as k−1 contiguous sweeps over N-length rows —
/// a layout the compiler can keep in cache and vectorize.
///
/// Bit-identical contract: hash i of a bank built from seeds[i] computes
/// exactly the same values as KWiseHash(k, seeds[i]) — the same rejection-
/// sampled coefficients, the same field operations (hash/mersenne.h), the
/// same canonical input reduction. EvalAll(x)[i] == KWiseHash(k, seeds[i])(x)
/// for every x, enforced by kwise_bank_test.
class KWiseHashBank {
 public:
  static constexpr std::uint64_t kPrime = KWiseHash::kPrime;

  KWiseHashBank() = default;

  /// Builds N = seeds.size() hashes; hash i draws its coefficients from
  /// seeds[i] exactly as KWiseHash(k, seeds[i]) would. Requires k >= 1.
  KWiseHashBank(int k, std::span<const std::uint64_t> seeds);

  std::size_t size() const { return n_; }
  int k() const { return k_; }

  /// out[i] = h_i(x) ∈ [0, p) for all i. `out` must hold size() entries.
  void EvalAll(std::uint64_t x, std::uint64_t* out) const;

  /// out[i] = ±1 from the low bit of h_i(x) (odd → +1), matching
  /// KWiseHash::Sign.
  void SignAll(std::uint64_t x, signed char* out) const;

  /// out[i] = h_i(x) / p ∈ [0, 1), matching KWiseHash::ToUnit.
  void ToUnitAll(std::uint64_t x, double* out) const;

  /// counters[i] += delta · sign_i(x) for all i — the fused AMS update.
  /// The Horner tiles feed the counters directly; no scratch needed.
  void AccumulateSigned(std::uint64_t x, double delta, double* counters) const;

  /// Block form of AccumulateSigned over keys[0..count): counters[i]
  /// += delta · sign_i(keys[b]) for every b, applied in key order so each
  /// counter sees the identical IEEE addition sequence the per-key loop
  /// would issue. Routed through the active SIMD tier (SetSketchSimdMode);
  /// every tier is bit-identical to the scalar path.
  void AccumulateSignedBlock(std::span<const std::uint64_t> keys, double delta,
                             double* counters) const;

  /// Block form of EvalAll: out[b·size() + i] = h_i(keys[b]) ∈ [0, p).
  /// `out` must hold keys.size() · size() entries.
  void EvalBlock(std::span<const std::uint64_t> keys, std::uint64_t* out) const;

  /// Scalar evaluation of a single member (for cold paths like query-time
  /// re-derivation of one copy's randomness). Identical value to EvalAll[i].
  std::uint64_t Eval(std::size_t i, std::uint64_t x) const;

  double ToUnit(std::size_t i, std::uint64_t x) const {
    return static_cast<double>(Eval(i, x)) / static_cast<double>(kPrime);
  }

  /// Number of 64-bit words of state (for space accounting): k per hash.
  std::size_t SpaceWords() const { return coeffs_.size(); }

  /// Checkpoint serialization. The bank is immutable after construction, so
  /// RestoreState into a bank rebuilt from the same seeds acts as a config
  /// verification: it fails (without mutating) if (k, n, coefficients)
  /// differ from the snapshot. Restoring into a default-constructed bank
  /// adopts the serialized coefficients.
  void SaveState(StateWriter& w) const;
  bool RestoreState(StateReader& r);

 private:
  /// Builds the view handed to the block kernels, materializing the derived
  /// power-basis split tables on first use. The tables are a cache over
  /// coeffs_ (split_lo_[j·n+i] = c & (2³¹−1), split_hi_ = c >> 31): they are
  /// not counted by SpaceWords and not serialized — a restored bank rebuilds
  /// them lazily. Lazy build mutates the mutable members, so like the sketch
  /// scratch buffers the first block call is not thread-safe; shard workers
  /// share a bank only after it is warm (ShardedSketch merges serially).
  internal::SketchBankView BlockView() const;
  void EnsureBlockTables() const;

  int k_ = 0;
  std::size_t n_ = 0;
  std::vector<std::uint64_t> coeffs_;  // coeffs_[j * n_ + i] = c_j of hash i.
  mutable std::vector<std::uint64_t> split_lo_;  // Derived, lazy; see above.
  mutable std::vector<std::uint64_t> split_hi_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_HASH_KWISE_BANK_H_
