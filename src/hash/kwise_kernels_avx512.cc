// AVX-512F power-basis block kernels (8×64-bit lanes, hash-major loop
// 2x-unrolled). Same arithmetic and bounds as kwise_kernels_avx2.cc — this
// TU only widens the vectors, uses mask registers for the conditional
// subtract / sign select, and unrolls the hash-major sweep so the two
// independent 16-hash half-groups fill the multiply ports. Compiled with
// -mavx512f only (no DQ/BW intrinsics) and dispatched behind
// __builtin_cpu_supports("avx512f").

#include <immintrin.h>

#include <cstring>

#include "hash/kwise_kernels.h"
#include "hash/mersenne.h"

// gcc 12's masked-multiply intrinsics expand with an _mm512_undefined_epi32()
// pass-through operand, and the uninitialized-ness gets misattributed to the
// real multiplicands once the power-basis loops inline (gcc bug 105593).
// Pure false positive — scoped to this kernel TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace cyclestream::internal {
namespace {

constexpr std::uint64_t kP = kMersennePrime61;
constexpr std::uint64_t kMask31 = (1ULL << 31) - 1;
constexpr std::size_t kLanes = 8;

inline __m512i Load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }

inline __m512i Fold(__m512i t, __m512i m61) {
  return _mm512_add_epi64(_mm512_and_si512(t, m61), _mm512_srli_epi64(t, 61));
}

template <int TERMS>
struct KeyPowers {
  __m512i y0[TERMS], y1[TERMS], y1s[TERMS];
};

template <int TERMS>
inline KeyPowers<TERMS> MakeKeyPowers(std::uint64_t x1) {
  KeyPowers<TERMS> kp;
  std::uint64_t xp = x1;
  for (int t = 0; t < TERMS; ++t) {
    if (t > 0) xp = MulMod61(xp, x1);
    kp.y0[t] = _mm512_set1_epi64(static_cast<long long>(xp & kMask31));
    const std::uint64_t h = xp >> 31;
    kp.y1[t] = _mm512_set1_epi64(static_cast<long long>(h));
    kp.y1s[t] = _mm512_set1_epi64(static_cast<long long>(h << 1));
  }
  return kp;
}

template <int TERMS>
inline __m512i EvalGroup(const SketchBankView& bank,
                         const KeyPowers<TERMS>& kp, std::size_t i,
                         __m512i m61, __m512i m30) {
  const std::size_t n = bank.n;
  __m512i p00 = _mm512_setzero_si512();
  __m512i mid = _mm512_setzero_si512();
  __m512i p11s = _mm512_setzero_si512();
  for (int t = 0; t < TERMS; ++t) {
    const __m512i a0 = Load(bank.lo31 + (t + 1) * n + i);
    const __m512i a1 = Load(bank.hi31 + (t + 1) * n + i);
    p00 = _mm512_add_epi64(p00, _mm512_mul_epu32(a0, kp.y0[t]));
    mid = _mm512_add_epi64(
        mid, _mm512_add_epi64(_mm512_mul_epu32(a0, kp.y1[t]),
                              _mm512_mul_epu32(a1, kp.y0[t])));
    p11s = _mm512_add_epi64(p11s, _mm512_mul_epu32(a1, kp.y1s[t]));
  }
  __m512i t = Fold(p00, m61);
  t = _mm512_add_epi64(t, _mm512_slli_epi64(_mm512_and_si512(mid, m30), 31));
  t = _mm512_add_epi64(t, _mm512_srli_epi64(mid, 30));
  t = _mm512_add_epi64(t, p11s);
  t = _mm512_add_epi64(t, Load(bank.coeffs + i));
  __m512i s = Fold(Fold(t, m61), m61);  // s <= p.
  const __mmask8 eq = _mm512_cmpeq_epi64_mask(s, m61);
  return _mm512_mask_sub_epi64(s, eq, s, m61);
}

inline std::uint64_t EvalOneHash(const SketchBankView& bank, std::size_t i,
                                 std::uint64_t xm) {
  const std::size_t n = bank.n;
  std::uint64_t acc =
      bank.coeffs[static_cast<std::size_t>(bank.k - 1) * n + i];
  for (int j = bank.k - 2; j >= 0; --j) {
    acc = HornerStepLazy61(acc, xm, bank.coeffs[j * n + i]);
  }
  return CanonicalizeMod61(acc);
}

// counters[i..i+7] ±= delta from the low bit of s (odd → +delta).
inline void ApplySign(__m512i s, __m512i one, __m512i sbit, __m512i dsel,
                      double* counters) {
  const __mmask8 evenk = _mm512_testn_epi64_mask(s, one);
  const __m512i dv = _mm512_mask_xor_epi64(dsel, evenk, dsel, sbit);
  _mm512_storeu_pd(
      counters, _mm512_add_pd(_mm512_loadu_pd(counters),
                              _mm512_castsi512_pd(dv)));
}

template <int TERMS>
void AccumulateSignedHashMajor(const SketchBankView& bank,
                               const std::uint64_t* keys, std::size_t count,
                               double delta, double* counters) {
  std::uint64_t delta_bits;
  std::memcpy(&delta_bits, &delta, sizeof(delta));
  const __m512i m61 = _mm512_set1_epi64(static_cast<long long>(kP));
  const __m512i m30 = _mm512_set1_epi64((1LL << 30) - 1);
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i sbit = _mm512_set1_epi64(static_cast<long long>(1ULL << 63));
  const __m512i dsel = _mm512_set1_epi64(static_cast<long long>(delta_bits));
  const std::size_t n = bank.n;
  for (std::size_t b = 0; b < count; ++b) {
    const std::uint64_t x1 = ReduceMod61(keys[b]);
    const KeyPowers<TERMS> kp = MakeKeyPowers<TERMS>(x1);
    std::size_t i = 0;
    for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
      const __m512i s0 = EvalGroup<TERMS>(bank, kp, i, m61, m30);
      const __m512i s1 = EvalGroup<TERMS>(bank, kp, i + kLanes, m61, m30);
      ApplySign(s0, one, sbit, dsel, counters + i);
      ApplySign(s1, one, sbit, dsel, counters + i + kLanes);
    }
    for (; i + kLanes <= n; i += kLanes) {
      ApplySign(EvalGroup<TERMS>(bank, kp, i, m61, m30), one, sbit, dsel,
                counters + i);
    }
    for (; i < n; ++i) {
      const std::uint64_t odd = EvalOneHash(bank, i, x1) & 1ULL;
      const std::uint64_t bits = delta_bits ^ ((odd ^ 1ULL) << 63);
      double signed_delta;
      std::memcpy(&signed_delta, &bits, sizeof(signed_delta));
      counters[i] += signed_delta;
    }
  }
}

template <int TERMS>
void EvalHashMajor(const SketchBankView& bank, const std::uint64_t* keys,
                   std::size_t count, std::uint64_t* out) {
  const __m512i m61 = _mm512_set1_epi64(static_cast<long long>(kP));
  const __m512i m30 = _mm512_set1_epi64((1LL << 30) - 1);
  const std::size_t n = bank.n;
  for (std::size_t b = 0; b < count; ++b) {
    const std::uint64_t x1 = ReduceMod61(keys[b]);
    const KeyPowers<TERMS> kp = MakeKeyPowers<TERMS>(x1);
    std::uint64_t* o = out + b * n;
    std::size_t i = 0;
    for (; i + kLanes <= n; i += kLanes) {
      _mm512_storeu_si512(o + i, EvalGroup<TERMS>(bank, kp, i, m61, m30));
    }
    for (; i < n; ++i) o[i] = EvalOneHash(bank, i, x1);
  }
}

// --- Key-lanes (transposed) evaluation for small banks --------------------

inline __m512i VecReduce61(__m512i x, __m512i m61) {
  const __m512i t = Fold(x, m61);  // <= p + 7.
  const __mmask8 ge = _mm512_cmple_epi64_mask(m61, t);  // p <= t (signed ok).
  return _mm512_mask_sub_epi64(t, ge, t, m61);
}

inline __m512i VecMulMod61(__m512i a, __m512i b, __m512i m61, __m512i m31,
                           __m512i m30) {
  const __m512i a0 = _mm512_and_si512(a, m31);
  const __m512i a1 = _mm512_srli_epi64(a, 31);
  const __m512i b0 = _mm512_and_si512(b, m31);
  const __m512i b1 = _mm512_srli_epi64(b, 31);
  const __m512i p00 = _mm512_mul_epu32(a0, b0);
  const __m512i mid = _mm512_add_epi64(_mm512_mul_epu32(a0, b1),
                                       _mm512_mul_epu32(a1, b0));
  const __m512i p11s = _mm512_mul_epu32(a1, _mm512_slli_epi64(b1, 1));
  __m512i t = Fold(p00, m61);
  t = _mm512_add_epi64(t, _mm512_slli_epi64(_mm512_and_si512(mid, m30), 31));
  t = _mm512_add_epi64(t, _mm512_srli_epi64(mid, 30));
  t = _mm512_add_epi64(t, p11s);
  __m512i s = Fold(Fold(t, m61), m61);  // s <= p.
  const __mmask8 eq = _mm512_cmpeq_epi64_mask(s, m61);
  return _mm512_mask_sub_epi64(s, eq, s, m61);
}

template <int TERMS>
void EvalKeyLanes(const SketchBankView& bank, const std::uint64_t* keys,
                  std::size_t count, std::uint64_t* out) {
  const __m512i m61 = _mm512_set1_epi64(static_cast<long long>(kP));
  const __m512i m31 = _mm512_set1_epi64(static_cast<long long>(kMask31));
  const __m512i m30 = _mm512_set1_epi64((1LL << 30) - 1);
  const std::size_t n = bank.n;
  std::uint64_t local[2 * kLanes * kLanes];  // n < 2·kLanes rows of kLanes.
  std::size_t b = 0;
  for (; b + kLanes <= count; b += kLanes) {
    __m512i y0[TERMS], y1[TERMS], y1s[TERMS];
    __m512i xp = VecReduce61(Load(keys + b), m61);
    const __m512i x1 = xp;
    for (int t = 0; t < TERMS; ++t) {
      if (t > 0) xp = VecMulMod61(xp, x1, m61, m31, m30);
      y0[t] = _mm512_and_si512(xp, m31);
      y1[t] = _mm512_srli_epi64(xp, 31);
      y1s[t] = _mm512_slli_epi64(y1[t], 1);
    }
    for (std::size_t i = 0; i < n; ++i) {
      __m512i p00 = _mm512_setzero_si512();
      __m512i mid = _mm512_setzero_si512();
      __m512i p11s = _mm512_setzero_si512();
      for (int t = 0; t < TERMS; ++t) {
        const __m512i a0 = _mm512_set1_epi64(
            static_cast<long long>(bank.lo31[(t + 1) * n + i]));
        const __m512i a1 = _mm512_set1_epi64(
            static_cast<long long>(bank.hi31[(t + 1) * n + i]));
        p00 = _mm512_add_epi64(p00, _mm512_mul_epu32(a0, y0[t]));
        mid = _mm512_add_epi64(
            mid, _mm512_add_epi64(_mm512_mul_epu32(a0, y1[t]),
                                  _mm512_mul_epu32(a1, y0[t])));
        p11s = _mm512_add_epi64(p11s, _mm512_mul_epu32(a1, y1s[t]));
      }
      __m512i t = Fold(p00, m61);
      t = _mm512_add_epi64(t,
                           _mm512_slli_epi64(_mm512_and_si512(mid, m30), 31));
      t = _mm512_add_epi64(t, _mm512_srli_epi64(mid, 30));
      t = _mm512_add_epi64(t, p11s);
      t = _mm512_add_epi64(
          t, _mm512_set1_epi64(static_cast<long long>(bank.coeffs[i])));
      __m512i s = Fold(Fold(t, m61), m61);
      const __mmask8 eq = _mm512_cmpeq_epi64_mask(s, m61);
      s = _mm512_mask_sub_epi64(s, eq, s, m61);
      _mm512_storeu_si512(local + i * kLanes, s);
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::uint64_t* o = out + (b + l) * n;
      for (std::size_t i = 0; i < n; ++i) o[i] = local[i * kLanes + l];
    }
  }
  for (; b < count; ++b) {
    const std::uint64_t xm = ReduceMod61(keys[b]);
    std::uint64_t* o = out + b * n;
    for (std::size_t i = 0; i < n; ++i) o[i] = EvalOneHash(bank, i, xm);
  }
}

}  // namespace

void AccumulateSignedBlockAvx512(const SketchBankView& bank,
                                 const std::uint64_t* keys, std::size_t count,
                                 double delta, double* counters) {
  const int terms = bank.k - 1;
  if (bank.lo31 == nullptr || terms < 1 || terms > 3 || bank.n < kLanes) {
    AccumulateSignedBlockScalar(bank, keys, count, delta, counters);
    return;
  }
  switch (terms) {
    case 1:
      AccumulateSignedHashMajor<1>(bank, keys, count, delta, counters);
      return;
    case 2:
      AccumulateSignedHashMajor<2>(bank, keys, count, delta, counters);
      return;
    default:
      AccumulateSignedHashMajor<3>(bank, keys, count, delta, counters);
      return;
  }
}

void EvalBlockAvx512(const SketchBankView& bank, const std::uint64_t* keys,
                     std::size_t count, std::uint64_t* out) {
  const int terms = bank.k - 1;
  if (bank.lo31 == nullptr || terms < 1 || terms > 3) {
    EvalBlockScalar(bank, keys, count, out);
    return;
  }
  if (bank.n < 2 * kLanes) {
    switch (terms) {
      case 1:
        EvalKeyLanes<1>(bank, keys, count, out);
        return;
      case 2:
        EvalKeyLanes<2>(bank, keys, count, out);
        return;
      default:
        EvalKeyLanes<3>(bank, keys, count, out);
        return;
    }
  }
  switch (terms) {
    case 1:
      EvalHashMajor<1>(bank, keys, count, out);
      return;
    case 2:
      EvalHashMajor<2>(bank, keys, count, out);
      return;
    default:
      EvalHashMajor<3>(bank, keys, count, out);
      return;
  }
}

}  // namespace cyclestream::internal
