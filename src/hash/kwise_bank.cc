#include "hash/kwise_bank.h"

#include <algorithm>
#include <cstring>

#include "hash/kwise_kernels.h"
#include "hash/mersenne.h"
#include "hash/rng.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

KWiseHashBank::KWiseHashBank(int k, std::span<const std::uint64_t> seeds)
    : k_(k), n_(seeds.size()) {
  CHECK_GE(k, 1);
  coeffs_.resize(static_cast<std::size_t>(k) * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    // Identical coefficient derivation to KWiseHash(k, seeds[i]): a
    // splitmix64 chain per hash, rejection-sampled into [0, p).
    std::uint64_t s = seeds[i];
    for (int j = 0; j < k; ++j) {
      std::uint64_t c;
      do {
        c = SplitMix64(s) & ((1ULL << 62) - 1);
      } while (c >= kPrime);
      coeffs_[static_cast<std::size_t>(j) * n_ + i] = c;
    }
  }
}

// All batched sweeps below run the Horner recurrence with *lazy* modular
// stages (HornerStepLazy61: two unconditional folds, no compare/subtract)
// and canonicalize only when a value is consumed. The canonical result is
// identical to the strict AddMod61(MulMod61(...)) chain — both compute the
// same residue mod p and CanonicalizeMod61 picks the unique representative
// in [0, p) — so the bit-identical contract is unaffected.
//
// The accumulator is seeded at c_{k-1}: the scalar reference starts from
// acc = 0 and its first step reduces to acc = c_{k-1}, so the recurrences
// coincide step for step.

void KWiseHashBank::EvalAll(std::uint64_t x, std::uint64_t* out) const {
  const std::uint64_t xm = ReduceMod61(x);
  const std::size_t n = n_;
  const std::uint64_t* top = coeffs_.data() + static_cast<std::size_t>(k_ - 1) * n;
  for (std::size_t i = 0; i < n; ++i) out[i] = top[i];
  for (int j = k_ - 2; j >= 0; --j) {
    const std::uint64_t* row = coeffs_.data() + static_cast<std::size_t>(j) * n;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = HornerStepLazy61(out[i], xm, row[i]);
    }
  }
  for (std::size_t i = 0; i < n; ++i) out[i] = CanonicalizeMod61(out[i]);
}

void KWiseHashBank::SignAll(std::uint64_t x, signed char* out) const {
  const std::uint64_t xm = ReduceMod61(x);
  const std::size_t n = n_;
  // Same recurrence as EvalAll but with a small fixed-size tile of
  // accumulators so no heap scratch is needed.
  constexpr std::size_t kTile = 64;
  std::uint64_t acc[kTile];
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t len = std::min(kTile, n - base);
    const std::uint64_t* top =
        coeffs_.data() + static_cast<std::size_t>(k_ - 1) * n + base;
    for (std::size_t i = 0; i < len; ++i) acc[i] = top[i];
    for (int j = k_ - 2; j >= 0; --j) {
      const std::uint64_t* row =
          coeffs_.data() + static_cast<std::size_t>(j) * n + base;
      for (std::size_t i = 0; i < len; ++i) {
        acc[i] = HornerStepLazy61(acc[i], xm, row[i]);
      }
    }
    for (std::size_t i = 0; i < len; ++i) {
      // Parity needs the canonical value: p is odd, so a lazy representative
      // off by a multiple of p has flipped low bit.
      out[base + i] = (CanonicalizeMod61(acc[i]) & 1ULL) ? 1 : -1;
    }
  }
}

void KWiseHashBank::ToUnitAll(std::uint64_t x, double* out) const {
  const std::uint64_t xm = ReduceMod61(x);
  const std::size_t n = n_;
  constexpr std::size_t kTile = 64;
  std::uint64_t acc[kTile];
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t len = std::min(kTile, n - base);
    const std::uint64_t* top =
        coeffs_.data() + static_cast<std::size_t>(k_ - 1) * n + base;
    for (std::size_t i = 0; i < len; ++i) acc[i] = top[i];
    for (int j = k_ - 2; j >= 0; --j) {
      const std::uint64_t* row =
          coeffs_.data() + static_cast<std::size_t>(j) * n + base;
      for (std::size_t i = 0; i < len; ++i) {
        acc[i] = HornerStepLazy61(acc[i], xm, row[i]);
      }
    }
    for (std::size_t i = 0; i < len; ++i) {
      out[base + i] = static_cast<double>(CanonicalizeMod61(acc[i])) /
                      static_cast<double>(kPrime);
    }
  }
}

void KWiseHashBank::AccumulateSigned(std::uint64_t x, double delta,
                                     double* counters) const {
  const std::uint64_t xm = ReduceMod61(x);
  const std::size_t n = n_;
  // ±delta by sign-bit flip: IEEE negation is exact, so this matches the
  // branchy (h & 1) ? +delta : -delta element for element — without a
  // data-dependent branch on an effectively random hash bit.
  std::uint64_t delta_bits;
  std::memcpy(&delta_bits, &delta, sizeof(delta));
  if (k_ == 4) {
    // The AMS sign-hash case. Fully fused single pass: 3 single-fold lazy
    // Horner stages per element (the k = 4 chain is exactly the depth where
    // single folds still fit in 64 bits — see HornerStepLazy1Fold61), then
    // canonicalize and apply the sign straight to the counter.
    const std::uint64_t* c3 = coeffs_.data() + 3 * n;
    const std::uint64_t* c2 = coeffs_.data() + 2 * n;
    const std::uint64_t* c1 = coeffs_.data() + 1 * n;
    const std::uint64_t* c0 = coeffs_.data();
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t acc = c3[i];
      acc = HornerStepLazy1Fold61(acc, xm, c2[i]);
      acc = HornerStepLazy1Fold61(acc, xm, c1[i]);
      acc = HornerStepLazy1Fold61(acc, xm, c0[i]);
      const std::uint64_t odd = CanonicalizeMod61(acc) & 1ULL;
      const std::uint64_t bits = delta_bits ^ ((odd ^ 1ULL) << 63);
      double signed_delta;
      std::memcpy(&signed_delta, &bits, sizeof(signed_delta));
      counters[i] += signed_delta;
    }
    return;
  }
  // General k: Horner tiles feed the counter updates directly, so the hash
  // values never round-trip through heap scratch.
  constexpr std::size_t kTile = 64;
  std::uint64_t acc[kTile];
  for (std::size_t base = 0; base < n; base += kTile) {
    const std::size_t len = std::min(kTile, n - base);
    const std::uint64_t* top =
        coeffs_.data() + static_cast<std::size_t>(k_ - 1) * n + base;
    for (std::size_t i = 0; i < len; ++i) acc[i] = top[i];
    for (int j = k_ - 2; j >= 0; --j) {
      const std::uint64_t* row =
          coeffs_.data() + static_cast<std::size_t>(j) * n + base;
      for (std::size_t i = 0; i < len; ++i) {
        acc[i] = HornerStepLazy61(acc[i], xm, row[i]);
      }
    }
    double* c = counters + base;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint64_t odd = CanonicalizeMod61(acc[i]) & 1ULL;
      const std::uint64_t bits = delta_bits ^ ((odd ^ 1ULL) << 63);
      double signed_delta;
      std::memcpy(&signed_delta, &bits, sizeof(signed_delta));
      c[i] += signed_delta;
    }
  }
}

void KWiseHashBank::EnsureBlockTables() const {
  if (!split_lo_.empty() || coeffs_.empty()) return;
  split_lo_.resize(coeffs_.size());
  split_hi_.resize(coeffs_.size());
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    split_lo_[i] = coeffs_[i] & ((1ULL << 31) - 1);
    split_hi_[i] = coeffs_[i] >> 31;
  }
}

internal::SketchBankView KWiseHashBank::BlockView() const {
  EnsureBlockTables();
  internal::SketchBankView view;
  view.k = k_;
  view.n = n_;
  view.coeffs = coeffs_.data();
  view.lo31 = split_lo_.empty() ? nullptr : split_lo_.data();
  view.hi31 = split_hi_.empty() ? nullptr : split_hi_.data();
  return view;
}

void KWiseHashBank::AccumulateSignedBlock(std::span<const std::uint64_t> keys,
                                          double delta,
                                          double* counters) const {
  if (keys.empty() || n_ == 0) return;
  internal::PickSketchKernels().accumulate_signed_block(
      BlockView(), keys.data(), keys.size(), delta, counters);
}

void KWiseHashBank::EvalBlock(std::span<const std::uint64_t> keys,
                              std::uint64_t* out) const {
  if (keys.empty() || n_ == 0) return;
  internal::PickSketchKernels().eval_block(BlockView(), keys.data(),
                                           keys.size(), out);
}

std::uint64_t KWiseHashBank::Eval(std::size_t i, std::uint64_t x) const {
  const std::uint64_t xm = ReduceMod61(x);
  std::uint64_t acc = 0;
  for (int j = k_ - 1; j >= 0; --j) {
    acc = AddMod61(MulMod61(acc, xm),
                   coeffs_[static_cast<std::size_t>(j) * n_ + i]);
  }
  return acc;
}

void KWiseHashBank::SaveState(StateWriter& w) const {
  w.U32(static_cast<std::uint32_t>(k_));
  w.Size(n_);
  w.Vec(coeffs_);
}

bool KWiseHashBank::RestoreState(StateReader& r) {
  const int k = static_cast<int>(r.U32());
  const std::size_t n = r.Size();
  std::vector<std::uint64_t> coeffs;
  if (!r.Vec(&coeffs)) return false;
  if (coeffs.size() != static_cast<std::size_t>(k) * n) return r.Fail();
  if (n_ != 0 || k_ != 0) {
    // Constructed bank: the snapshot must describe this exact bank.
    if (k != k_ || n != n_ || coeffs != coeffs_) return r.Fail();
    return true;
  }
  k_ = k;
  n_ = n;
  coeffs_ = std::move(coeffs);
  // Derived split tables are a cache over coeffs_ — drop any stale copy.
  split_lo_.clear();
  split_hi_.clear();
  return true;
}

}  // namespace cyclestream
