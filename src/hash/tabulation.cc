#include "hash/tabulation.h"

#include "hash/rng.h"

namespace cyclestream {

TabulationHash::TabulationHash(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& table : tables_) {
    for (auto& entry : table) entry = SplitMix64(s);
  }
}

}  // namespace cyclestream
