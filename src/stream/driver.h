#ifndef CYCLESTREAM_STREAM_DRIVER_H_
#define CYCLESTREAM_STREAM_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "stream/order.h"
#include "stream/space.h"

namespace cyclestream {

class StateWriter;
class StateReader;
class FaultPlan;

/// Sentinel return of AuditSpace(): the algorithm does not implement the
/// audit walk.
inline constexpr std::size_t kNoSpaceAudit = static_cast<std::size_t>(-1);

/// Interface for algorithms over edge streams (arbitrary / random order).
/// The driver calls, for each pass p in [0, NumPasses()):
///   StartPass(p); ProcessEdge(e, position) for each stream element;
///   EndPass(p).
/// Positions are 0-based and identical across passes (the stream is fixed).
class EdgeStreamAlgorithm {
 public:
  virtual ~EdgeStreamAlgorithm() = default;

  virtual int NumPasses() const = 0;
  virtual void StartPass(int pass, std::size_t stream_length) = 0;
  virtual void ProcessEdge(int pass, const Edge& e, std::size_t position) = 0;
  virtual void EndPass(int pass) = 0;

  /// Batched delivery: edges[i] is the stream element at position
  /// base_position + i. The default forwards to ProcessEdge one element at
  /// a time, so overriding is purely an optimization hook — any override
  /// must leave the algorithm in exactly the state the per-edge loop would
  /// (the block/scalar bit-identity contract; see DESIGN.md §13). The
  /// driver's tight loop and the engine broker deliver through this entry
  /// point; the checkpointing driver path stays strictly per-edge so
  /// snapshot positions remain element-granular.
  virtual void ProcessEdgeBlock(int pass, std::span<const Edge> edges,
                                std::size_t base_position) {
    for (std::size_t i = 0; i < edges.size(); ++i) {
      ProcessEdge(pass, edges[i], base_position + i);
    }
  }

  /// Space-audit hook: recomputes the algorithm's current footprint in
  /// words by walking its *actual stored state* (containers, not
  /// counters). In audit mode the driver cross-checks this walk against
  /// the self-reported SpaceTracker after the final pass; a mismatch is an
  /// accounting bug and aborts. Algorithms keep their tracker current at
  /// end of run, so the two must agree exactly. Return kNoSpaceAudit (the
  /// default) if the walk is not implemented.
  virtual std::size_t AuditSpace() const { return kNoSpaceAudit; }

  /// The algorithm's space tracker, or nullptr if it does not track space.
  /// Used by the audit cross-check and by the metrics layer to export the
  /// peak-space component breakdown.
  virtual const SpaceTracker* space_tracker() const { return nullptr; }

  /// Checkpoint identity: a stable tag naming the algorithm and its state
  /// schema (e.g. "arb3pass/1"). Bump the suffix whenever the SaveState
  /// layout changes. Empty (the default) means the algorithm does not
  /// support checkpointing and the driver skips snapshots for it.
  virtual std::string_view CheckpointId() const { return {}; }

  /// Serializes the stream-dependent mutable state into `w`. Returns false
  /// if unsupported. State derived purely from construction parameters
  /// (hash coefficients, sign caches) is not serialized — RestoreState
  /// verifies it via config fingerprints instead.
  virtual bool SaveState(StateWriter& w) const {
    (void)w;
    return false;
  }

  /// Restores state saved by SaveState into a *freshly constructed*
  /// algorithm with identical Params. Must validate before mutating: on a
  /// fingerprint or decode mismatch it returns false leaving the algorithm
  /// untouched, so the driver can fall back to a from-scratch run.
  virtual bool RestoreState(StateReader& r) {
    (void)r;
    return false;
  }

  /// Folds another instance's stream-dependent state into this one, as if
  /// this instance had also processed every element `other` did. Only
  /// *linear* algorithms can implement it (state = a sum over stream
  /// elements, so shard-local states over a partitioned stream combine by
  /// addition into exactly the single-machine state); the shard coordinator
  /// uses it to fold worker states in fixed shard order. An override must
  /// (a) verify `other` is the same algorithm with result-identical
  /// configuration (same CheckpointId, seed, dimensions — via the same
  /// fields RestoreState fingerprints) and return false otherwise, leaving
  /// this instance untouched, and (b) be exact: for the sketches here every
  /// accumulator slot is an exact integer well under 2^53, so the fold is
  /// integer addition in doubles — associative, and bit-identical to the
  /// unsharded run at any shard count. Default: not mergeable.
  virtual bool MergeFrom(const EdgeStreamAlgorithm& other) {
    (void)other;
    return false;
  }
};

/// Interface for algorithms over adjacency-list streams. Position is the
/// index of the adjacency list (i.e. the vertex arrival index).
class AdjacencyStreamAlgorithm {
 public:
  virtual ~AdjacencyStreamAlgorithm() = default;

  virtual int NumPasses() const = 0;
  virtual void StartPass(int pass, std::size_t num_lists) = 0;
  virtual void ProcessList(int pass, const AdjacencyList& list,
                           std::size_t position) = 0;
  virtual void EndPass(int pass) = 0;

  /// See EdgeStreamAlgorithm::AuditSpace.
  virtual std::size_t AuditSpace() const { return kNoSpaceAudit; }

  /// See EdgeStreamAlgorithm::space_tracker.
  virtual const SpaceTracker* space_tracker() const { return nullptr; }

  /// See EdgeStreamAlgorithm::CheckpointId.
  virtual std::string_view CheckpointId() const { return {}; }

  /// See EdgeStreamAlgorithm::SaveState.
  virtual bool SaveState(StateWriter& w) const {
    (void)w;
    return false;
  }

  /// See EdgeStreamAlgorithm::RestoreState.
  virtual bool RestoreState(StateReader& r) {
    (void)r;
    return false;
  }
};

/// When and where the driver writes snapshots during a run.
struct CheckpointPolicy {
  std::string directory;  // Must exist; files are `<directory>/<stem>.ckpt`.
  /// Snapshot after every k processed elements (counted across passes).
  /// 0 disables the element trigger.
  std::uint64_t every_elements = 0;
  /// Snapshot at each pass boundary (recorded as pass+1, position 0).
  bool at_pass_end = true;
  std::string file_stem = "run";
};

/// Per-run driver options. All pointers are borrowed and may be null.
struct RunOptions {
  const CheckpointPolicy* checkpoint = nullptr;
  FaultPlan* faults = nullptr;
  /// Path of a snapshot to restore before running. Invalid or mismatched
  /// snapshots are rejected (with a warning) and the run restarts from
  /// scratch — never a partial restore.
  std::string resume_from;
};

/// What happened during a Run*Stream call with options.
struct RunOutcome {
  bool completed = true;        // False iff a FaultPlan kill stopped the run.
  bool resumed = false;         // A snapshot was successfully restored.
  bool resume_rejected = false; // resume_from was set but rejected.
  std::string checkpoint_path;  // Last successfully written snapshot.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_failures = 0;
};

/// Runs all passes of `alg` over `stream`.
void RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream);

/// Runs all passes of `alg` over the adjacency stream.
void RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                        const AdjacencyStream& stream);

/// As above, with checkpoint/resume/fault-injection control. Resume
/// semantics: the restored snapshot records (pass, position) of the first
/// unprocessed element; the driver skips StartPass for a mid-pass resume
/// (it already ran before the snapshot) and replays the stream from the
/// recorded position. A resumed run that completes is bit-identical to an
/// uninterrupted run of a freshly constructed algorithm with the same
/// Params over the same stream.
RunOutcome RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream,
                         const RunOptions& options);
RunOutcome RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                              const AdjacencyStream& stream,
                              const RunOptions& options);

/// Process-wide checkpoint configuration consumed by the plain (void)
/// Run*Stream overloads, letting experiment binaries checkpoint every
/// embedded run without plumbing RunOptions through the trial helpers.
/// When active, the Nth Run*Stream call of the process (a deterministic
/// index at --threads=1, which the experiment drivers enforce) snapshots to
/// `<directory>/run-<N>.ckpt` and, when `resume` is set, restores from
/// that file if present. `kill_after` > 0 terminates the process with
/// _Exit(kKilledExitCode) once that many elements have been processed
/// across all runs — the crash half of the crash/resume tests.
struct GlobalCheckpointOptions {
  std::string directory;
  std::uint64_t every_elements = 0;
  bool resume = false;
  std::uint64_t kill_after = 0;
};

/// Exit code of a kill_after-terminated process.
inline constexpr int kKilledExitCode = 86;

/// Installs (or, with an empty directory, clears) the process-wide
/// checkpoint configuration. Call once at startup, like SetSpaceAudit.
void SetGlobalCheckpoint(const GlobalCheckpointOptions& options);

class FlagParser;

/// Reads the robustness flags (--checkpoint_dir, --checkpoint_every,
/// --resume, --kill_after) and installs the process-wide checkpoint
/// configuration. Snapshot files are named by the order in which Run*Stream
/// calls start, so the run sequence must be deterministic: when
/// checkpointing is active the process is forced to serial execution and
/// `*threads` is rewritten to 1. Creates the checkpoint directory if
/// missing. Returns true when checkpointing is active for this process.
bool ApplyCheckpointFlags(FlagParser& flags, int* threads);

/// Enables the space audit: after the final pass of every Run*Stream, the
/// driver cross-checks AuditSpace() against the algorithm's SpaceTracker
/// and aborts on any mismatch. The walk is O(state), so this is meant for
/// Debug / CI smoke runs (`--audit` on the experiment binaries), not
/// benchmarking. Also enabled by the environment variable
/// CYCLESTREAM_AUDIT_SPACE=1. Set once at startup, like SetDefaultThreads.
void SetSpaceAudit(bool enabled);

/// Whether the space audit is active (flag or environment).
bool SpaceAuditEnabled();

/// Process-wide driver counters, aggregated across every Run*Stream call
/// on any thread. Totals are sums of per-run values, so they are
/// deterministic at any thread count (per the util/parallel.h contract the
/// set of runs is scheduling-independent); only the timing fields are
/// wall-clock and excluded from deterministic manifest comparisons.
struct StreamStats {
  std::uint64_t runs = 0;             // Completed Run*Stream calls.
  std::uint64_t passes = 0;           // Passes executed.
  std::uint64_t edges_processed = 0;  // ProcessEdge calls.
  std::uint64_t lists_processed = 0;  // ProcessList calls.
  std::uint64_t updates_processed = 0;  // Turnstile ProcessUpdate calls.
  std::uint64_t audits_passed = 0;    // Successful audit cross-checks.
  // Checkpoint/restore counters. Execution-dependent (they differ between a
  // killed+resumed process pair and an uninterrupted one), so the manifest
  // exports them outside the deterministic section.
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_failures = 0;
  std::uint64_t restores = 0;         // Snapshots successfully restored.
  std::uint64_t restore_rejects = 0;  // Snapshots rejected on validation.
  double pass_seconds[4] = {0, 0, 0, 0};  // Wall time by pass index (3+ folded
                                          // into the last slot). Not
                                          // deterministic.
};

/// Snapshot of the process-wide counters.
StreamStats GlobalStreamStats();

/// Zeroes the process-wide counters (tests; experiment startup).
void ResetStreamStats();

/// Credit for algorithm runs driven *outside* Run*Stream — the engine's
/// shared-pass broker makes the Start/Process/End calls itself (one stream
/// read fans out to many algorithms), so it reports the equivalent per-run
/// totals here and GlobalStreamStats() stays the one process-wide ledger.
/// Only the deterministic fields exist: external drivers own their stream
/// I/O and checkpointing.
struct ExternalRunStats {
  std::uint64_t runs = 0;
  std::uint64_t passes = 0;
  std::uint64_t edges_processed = 0;
  std::uint64_t lists_processed = 0;
  std::uint64_t updates_processed = 0;
  std::uint64_t audits_passed = 0;
};

/// Adds `stats` into the process-wide counters.
void AddExternalRunStats(const ExternalRunStats& stats);

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_DRIVER_H_
