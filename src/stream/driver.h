#ifndef CYCLESTREAM_STREAM_DRIVER_H_
#define CYCLESTREAM_STREAM_DRIVER_H_

#include <cstddef>

#include "stream/order.h"

namespace cyclestream {

/// Interface for algorithms over edge streams (arbitrary / random order).
/// The driver calls, for each pass p in [0, NumPasses()):
///   StartPass(p); ProcessEdge(e, position) for each stream element;
///   EndPass(p).
/// Positions are 0-based and identical across passes (the stream is fixed).
class EdgeStreamAlgorithm {
 public:
  virtual ~EdgeStreamAlgorithm() = default;

  virtual int NumPasses() const = 0;
  virtual void StartPass(int pass, std::size_t stream_length) = 0;
  virtual void ProcessEdge(int pass, const Edge& e, std::size_t position) = 0;
  virtual void EndPass(int pass) = 0;
};

/// Interface for algorithms over adjacency-list streams. Position is the
/// index of the adjacency list (i.e. the vertex arrival index).
class AdjacencyStreamAlgorithm {
 public:
  virtual ~AdjacencyStreamAlgorithm() = default;

  virtual int NumPasses() const = 0;
  virtual void StartPass(int pass, std::size_t num_lists) = 0;
  virtual void ProcessList(int pass, const AdjacencyList& list,
                           std::size_t position) = 0;
  virtual void EndPass(int pass) = 0;
};

/// Runs all passes of `alg` over `stream`.
void RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream);

/// Runs all passes of `alg` over the adjacency stream.
void RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                        const AdjacencyStream& stream);

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_DRIVER_H_
