#ifndef CYCLESTREAM_STREAM_DRIVER_H_
#define CYCLESTREAM_STREAM_DRIVER_H_

#include <cstddef>
#include <cstdint>

#include "stream/order.h"
#include "stream/space.h"

namespace cyclestream {

/// Sentinel return of AuditSpace(): the algorithm does not implement the
/// audit walk.
inline constexpr std::size_t kNoSpaceAudit = static_cast<std::size_t>(-1);

/// Interface for algorithms over edge streams (arbitrary / random order).
/// The driver calls, for each pass p in [0, NumPasses()):
///   StartPass(p); ProcessEdge(e, position) for each stream element;
///   EndPass(p).
/// Positions are 0-based and identical across passes (the stream is fixed).
class EdgeStreamAlgorithm {
 public:
  virtual ~EdgeStreamAlgorithm() = default;

  virtual int NumPasses() const = 0;
  virtual void StartPass(int pass, std::size_t stream_length) = 0;
  virtual void ProcessEdge(int pass, const Edge& e, std::size_t position) = 0;
  virtual void EndPass(int pass) = 0;

  /// Space-audit hook: recomputes the algorithm's current footprint in
  /// words by walking its *actual stored state* (containers, not
  /// counters). In audit mode the driver cross-checks this walk against
  /// the self-reported SpaceTracker after the final pass; a mismatch is an
  /// accounting bug and aborts. Algorithms keep their tracker current at
  /// end of run, so the two must agree exactly. Return kNoSpaceAudit (the
  /// default) if the walk is not implemented.
  virtual std::size_t AuditSpace() const { return kNoSpaceAudit; }

  /// The algorithm's space tracker, or nullptr if it does not track space.
  /// Used by the audit cross-check and by the metrics layer to export the
  /// peak-space component breakdown.
  virtual const SpaceTracker* space_tracker() const { return nullptr; }
};

/// Interface for algorithms over adjacency-list streams. Position is the
/// index of the adjacency list (i.e. the vertex arrival index).
class AdjacencyStreamAlgorithm {
 public:
  virtual ~AdjacencyStreamAlgorithm() = default;

  virtual int NumPasses() const = 0;
  virtual void StartPass(int pass, std::size_t num_lists) = 0;
  virtual void ProcessList(int pass, const AdjacencyList& list,
                           std::size_t position) = 0;
  virtual void EndPass(int pass) = 0;

  /// See EdgeStreamAlgorithm::AuditSpace.
  virtual std::size_t AuditSpace() const { return kNoSpaceAudit; }

  /// See EdgeStreamAlgorithm::space_tracker.
  virtual const SpaceTracker* space_tracker() const { return nullptr; }
};

/// Runs all passes of `alg` over `stream`.
void RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream);

/// Runs all passes of `alg` over the adjacency stream.
void RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                        const AdjacencyStream& stream);

/// Enables the space audit: after the final pass of every Run*Stream, the
/// driver cross-checks AuditSpace() against the algorithm's SpaceTracker
/// and aborts on any mismatch. The walk is O(state), so this is meant for
/// Debug / CI smoke runs (`--audit` on the experiment binaries), not
/// benchmarking. Also enabled by the environment variable
/// CYCLESTREAM_AUDIT_SPACE=1. Set once at startup, like SetDefaultThreads.
void SetSpaceAudit(bool enabled);

/// Whether the space audit is active (flag or environment).
bool SpaceAuditEnabled();

/// Process-wide driver counters, aggregated across every Run*Stream call
/// on any thread. Totals are sums of per-run values, so they are
/// deterministic at any thread count (per the util/parallel.h contract the
/// set of runs is scheduling-independent); only the timing fields are
/// wall-clock and excluded from deterministic manifest comparisons.
struct StreamStats {
  std::uint64_t runs = 0;             // Completed Run*Stream calls.
  std::uint64_t passes = 0;           // Passes executed.
  std::uint64_t edges_processed = 0;  // ProcessEdge calls.
  std::uint64_t lists_processed = 0;  // ProcessList calls.
  std::uint64_t audits_passed = 0;    // Successful audit cross-checks.
  double pass_seconds[4] = {0, 0, 0, 0};  // Wall time by pass index (3+ folded
                                          // into the last slot). Not
                                          // deterministic.
};

/// Snapshot of the process-wide counters.
StreamStats GlobalStreamStats();

/// Zeroes the process-wide counters (tests; experiment startup).
void ResetStreamStats();

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_DRIVER_H_
