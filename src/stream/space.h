#ifndef CYCLESTREAM_STREAM_SPACE_H_
#define CYCLESTREAM_STREAM_SPACE_H_

#include <algorithm>
#include <cstddef>

namespace cyclestream {

/// Peak-space tracker. Streaming algorithms report their space in "words":
/// one word per stored edge endpoint pair, per counter, and per hash-seed
/// coefficient. Algorithms call Update with their current word count (e.g.
/// once per processed element); the space-scaling experiments read Peak().
///
/// This measures the *information the algorithm retains*, which is the
/// quantity the paper's Õ(·) bounds are about — independent of container
/// overheads like hash-table load factors.
class SpaceTracker {
 public:
  /// Records the current footprint and folds it into the peak.
  void Update(std::size_t words) {
    current_ = words;
    peak_ = std::max(peak_, words);
  }

  /// Adds a fixed baseline (e.g. hash seeds) counted in every Update.
  void SetBaseline(std::size_t words) { baseline_ = words; }

  std::size_t Current() const { return current_ + baseline_; }
  std::size_t Peak() const { return peak_ + baseline_; }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  std::size_t baseline_ = 0;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_SPACE_H_
