#ifndef CYCLESTREAM_STREAM_SPACE_H_
#define CYCLESTREAM_STREAM_SPACE_H_

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.h"

namespace cyclestream {

class StateWriter;
class StateReader;

/// Result of a streaming estimation: the estimate plus the peak space the
/// algorithm retained, in words (see SpaceTracker below for the accounting
/// rules). Defined here, at the stream layer, so stream-level interfaces
/// (TurnstileStreamAlgorithm::Result, the windowing wrappers) can speak it
/// without depending on the core layer; core/config.h re-exports it for
/// the algorithm implementations.
struct Estimate {
  double value = 0.0;
  std::size_t space_words = 0;
};

/// Peak-space tracker. Streaming algorithms report their space in "words":
/// one word per stored edge endpoint pair, per counter, and per hash-seed
/// coefficient. The space-scaling experiments read Peak().
///
/// This measures the *information the algorithm retains*, which is the
/// quantity the paper's Õ(·) bounds are about — independent of container
/// overheads like hash-table load factors.
///
/// Space decomposes into *named components* so a peak figure can be
/// explained ("levels: 4096, hash seeds: 64, candidates: 17"):
///
///   space_.SetComponent("levels", 2 * level_edges);   // absolute
///   space_.Charge("reservoir", 2);                    // incremental
///   space_.Release("reservoir", 2);
///
/// Every mutation folds the current total into the peak, and the component
/// breakdown at the moment the peak was (last) attained is kept for the
/// run manifests. The legacy single-bucket `Update(words)` sets the
/// anonymous "state" component and remains exactly equivalent to the
/// historical tracker for algorithms that never name components.
///
/// Incremental accounting (Charge/Release) is exactly what can silently
/// drift from the truth, so algorithms additionally expose an
/// `AuditSpace()` walk of their real containers that the stream driver
/// cross-checks in audit mode (see stream/driver.h).
///
/// Components live in a small flat vector (an algorithm names a handful at
/// most), so the per-stream-element update path allocates nothing once all
/// component names have been seen.
class SpaceTracker {
 public:
  /// Legacy interface: records the current footprint as one anonymous
  /// component and folds it into the peak.
  void Update(std::size_t words) { SetComponent("state", words); }

  /// Sets the current footprint of one named component.
  void SetComponent(std::string_view name, std::size_t words) {
    Slot(name) = words;
    Refresh();
  }

  /// Adds `delta` words to a named component.
  void Charge(std::string_view name, std::size_t delta) {
    Slot(name) += delta;
    Refresh();
  }

  /// Removes `delta` words from a named component. Releasing more than the
  /// component holds is an accounting bug and aborts.
  void Release(std::string_view name, std::size_t delta) {
    std::size_t& slot = Slot(name);
    CHECK_GE(slot, delta) << "SpaceTracker::Release underflow on component '"
                          << std::string(name) << "'";
    slot -= delta;
    Refresh();
  }

  /// Adds a fixed baseline (e.g. hash seeds) counted in every reading.
  void SetBaseline(std::size_t words) { baseline_ = words; }

  std::size_t Current() const { return current_ + baseline_; }
  std::size_t Peak() const { return peak_ + baseline_; }

  /// Current words held by one component (0 if never charged).
  std::size_t Component(std::string_view name) const {
    for (const Entry& e : components_) {
      if (e.name == name) return e.words;
    }
    return 0;
  }

  /// The component breakdown at the moment Peak() was last attained.
  /// The baseline appears under "baseline" when nonzero. Ordered map:
  /// iteration (and hence any serialization) is deterministic.
  std::map<std::string, std::size_t, std::less<>> PeakComponents() const {
    std::map<std::string, std::size_t, std::less<>> out;
    for (const Entry& e : peak_components_) out[e.name] = e.words;
    if (baseline_ > 0) out["baseline"] = baseline_;
    return out;
  }

  /// Returns the tracker to its freshly-constructed state. Clears the
  /// baseline too: a reused tracker must not inherit the previous run's
  /// hash-seed baseline (historically it did, double-counting it into
  /// every subsequent reading).
  void Reset() {
    components_.clear();
    peak_components_.clear();
    baseline_ = 0;
    current_ = 0;
    peak_ = 0;
  }

  /// Checkpoint serialization (defined in stream/checkpoint.cc): the full
  /// tracker round-trips — components in order (Slot() is a linear scan, so
  /// order affects nothing but is preserved anyway), peak breakdown,
  /// baseline, current, and peak.
  void SaveState(StateWriter& w) const;
  bool RestoreState(StateReader& r);

 private:
  struct Entry {
    std::string name;
    std::size_t words = 0;
  };

  std::size_t& Slot(std::string_view name) {
    for (Entry& e : components_) {
      if (e.name == name) return e.words;
    }
    components_.push_back(Entry{std::string(name), 0});
    return components_.back().words;
  }

  void Refresh() {
    std::size_t sum = 0;
    for (const Entry& e : components_) sum += e.words;
    current_ = sum;
    if (sum >= peak_) {
      peak_ = sum;
      // Element-wise copy; reuses capacity (and the strings' storage) after
      // the first snapshot, so steady-state peaks allocate nothing.
      peak_components_ = components_;
    }
  }

  std::vector<Entry> components_;
  std::vector<Entry> peak_components_;
  std::size_t baseline_ = 0;
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_SPACE_H_
