#include "stream/checkpoint.h"

#include <cstdio>
#include <cstring>

#include "graph/types.h"
#include "stream/space.h"
#include "util/crc32.h"
#include "util/io.h"
#include "util/logging.h"

namespace cyclestream {
namespace {

constexpr char kMagic[8] = {'C', 'Y', 'C', 'L', 'S', 'N', 'P', '\x01'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 4;

void PutLE32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutLE64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t GetLE(const char* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string EncodeSnapshot(const Snapshot& snap) {
  StateWriter payload;
  payload.Str(snap.algorithm_id);
  payload.U8(snap.stream_kind);
  payload.U64(snap.stream_fingerprint);
  payload.U64(snap.stream_length);
  payload.U64(snap.pass);
  payload.U64(snap.position);
  payload.U64(snap.elements_processed);
  payload.Str(snap.state);

  const std::string& body = payload.str();
  std::string out;
  out.reserve(kHeaderSize + body.size());
  out.append(kMagic, sizeof(kMagic));
  PutLE32(out, kSnapshotVersion);
  PutLE64(out, static_cast<std::uint64_t>(body.size()));
  PutLE32(out, Crc32(body));
  out.append(body);
  return out;
}

std::optional<Snapshot> DecodeSnapshot(std::string_view encoded,
                                       std::string* error) {
  auto reject = [error](const std::string& why) -> std::optional<Snapshot> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (encoded.size() < kHeaderSize) {
    return reject("snapshot truncated: " + std::to_string(encoded.size()) +
                  " bytes is smaller than the header");
  }
  if (std::memcmp(encoded.data(), kMagic, sizeof(kMagic)) != 0) {
    return reject("bad snapshot magic");
  }
  const auto version =
      static_cast<std::uint32_t>(GetLE(encoded.data() + 8, 4));
  if (version != kSnapshotVersion) {
    return reject("snapshot schema version mismatch: file has v" +
                  std::to_string(version) + ", this binary expects v" +
                  std::to_string(kSnapshotVersion));
  }
  const std::uint64_t payload_size = GetLE(encoded.data() + 12, 8);
  if (payload_size != encoded.size() - kHeaderSize) {
    return reject("snapshot size mismatch: header declares " +
                  std::to_string(payload_size) + " payload bytes, file has " +
                  std::to_string(encoded.size() - kHeaderSize));
  }
  const auto crc = static_cast<std::uint32_t>(GetLE(encoded.data() + 20, 4));
  const std::string_view payload = encoded.substr(kHeaderSize);
  if (Crc32(payload) != crc) {
    return reject("snapshot CRC mismatch (corrupt payload)");
  }

  StateReader r(payload);
  Snapshot snap;
  snap.algorithm_id = r.Str();
  snap.stream_kind = r.U8();
  snap.stream_fingerprint = r.U64();
  snap.stream_length = r.U64();
  snap.pass = r.U64();
  snap.position = r.U64();
  snap.elements_processed = r.U64();
  snap.state = r.Str();
  if (!r.AtEnd()) {
    return reject("snapshot payload malformed (parse did not consume the "
                  "declared payload exactly)");
  }
  return snap;
}

bool SaveSnapshot(const std::string& path, const Snapshot& snap,
                  std::string* error, const WriteFault* fault) {
  if (fault != nullptr && fault->fail_io) {
    if (error != nullptr) {
      *error = "simulated I/O error (EIO) writing " + path;
    }
    return false;
  }
  std::string encoded = EncodeSnapshot(snap);
  if (fault != nullptr && fault->corrupt_byte >= 0 &&
      static_cast<std::size_t>(fault->corrupt_byte) < encoded.size()) {
    encoded[static_cast<std::size_t>(fault->corrupt_byte)] ^= 0x01;
  }
  if (fault != nullptr && fault->truncate_to >= 0 &&
      static_cast<std::size_t>(fault->truncate_to) < encoded.size()) {
    encoded.resize(static_cast<std::size_t>(fault->truncate_to));
  }

  // EINTR-safe durable write: fsyncs the file before the rename and the
  // parent directory after it, so a crash right after the rename cannot
  // lose the snapshot (util/io.h).
  return io::WriteFileAtomic(path, encoded, error);
}

std::optional<Snapshot> LoadSnapshot(const std::string& path,
                                     std::string* error) {
  std::string encoded;
  if (!io::ReadFileToString(path, &encoded, error)) return std::nullopt;
  return DecodeSnapshot(encoded, error);
}

std::uint64_t FingerprintEdgeStream(const EdgeStream& stream) {
  return FingerprintEdgeStream(std::span<const Edge>(stream));
}

std::uint64_t FingerprintEdgeStream(std::span<const Edge> edges) {
  std::uint64_t h = Mix64(0x45444745u ^ edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    h = Mix64(h ^ edges[i].Key());
    h = Mix64(h ^ i);
  }
  return h;
}

std::uint64_t FingerprintAdjacencyStream(const AdjacencyStream& stream) {
  std::uint64_t h = Mix64(0x41444a59u ^ stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const AdjacencyList& list = stream[i];
    h = Mix64(h ^ static_cast<std::uint64_t>(list.vertex));
    h = Mix64(h ^ list.neighbors.size());
    for (VertexId v : list.neighbors) {
      h = Mix64(h ^ static_cast<std::uint64_t>(v));
    }
    h = Mix64(h ^ i);
  }
  return h;
}

void SpaceTracker::SaveState(StateWriter& w) const {
  auto write_entries = [&w](const std::vector<Entry>& entries) {
    w.Size(entries.size());
    for (const Entry& e : entries) {
      w.Str(e.name);
      w.Size(e.words);
    }
  };
  write_entries(components_);
  write_entries(peak_components_);
  w.Size(baseline_);
  w.Size(current_);
  w.Size(peak_);
}

bool SpaceTracker::RestoreState(StateReader& r) {
  auto read_entries = [&r](std::vector<Entry>* entries) {
    const std::size_t n = r.Size();
    if (!r.ok() || n > r.Remaining()) return r.Fail();
    entries->clear();
    entries->reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Entry e;
      e.name = r.Str();
      e.words = r.Size();
      entries->push_back(std::move(e));
    }
    return r.ok();
  };
  std::vector<Entry> components, peak_components;
  if (!read_entries(&components) || !read_entries(&peak_components)) {
    return false;
  }
  const std::size_t baseline = r.Size();
  const std::size_t current = r.Size();
  const std::size_t peak = r.Size();
  if (!r.ok()) return false;
  components_ = std::move(components);
  peak_components_ = std::move(peak_components);
  baseline_ = baseline;
  current_ = current;
  peak_ = peak;
  return true;
}

}  // namespace cyclestream
