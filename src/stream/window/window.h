#ifndef CYCLESTREAM_STREAM_WINDOW_WINDOW_H_
#define CYCLESTREAM_STREAM_WINDOW_WINDOW_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stream/dynamic/turnstile.h"

namespace cyclestream {

/// Time-decay layer over turnstile estimators (DESIGN.md §16). Both
/// wrappers host any TurnstileStreamAlgorithm and rely only on its
/// linearity: window estimates are MergeFrom folds of bucket-local
/// sketches, decay estimates are scheduled Rescale calls — no estimator
/// internals leak in. The two are mutually exclusive per query (the spec
/// layer validates).

/// Builds a fresh, empty estimator instance with the query's exact
/// result-affecting configuration. Called once per bucket opening and once
/// per Result(); must be deterministic (same instance state every call).
using TurnstileAlgorithmFactory =
    std::function<std::unique_ptr<TurnstileStreamAlgorithm>()>;

/// Sliding-window estimation via bucketed sketch instances: the stream is
/// cut into fixed-width buckets of w = window_edges / buckets updates
/// (divisibility is required — enforced at spec validation), each live
/// bucket owns a full sketch instance fed only its slice of the stream,
/// and Result() folds the live buckets (oldest → newest, via MergeFrom)
/// into a fresh instance, yielding the estimate over the suffix the
/// buckets cover. At most `buckets` buckets are live: opening bucket b
/// retires every bucket with index ≤ b − buckets, so the covered suffix
/// spans the last (buckets−1)·w + 1 ... buckets·w updates — the window is
/// exact whenever the stream position is a bucket multiple, and stale by
/// at most one bucket in between (the standard bucketed approximation; a
/// smooth-histogram refinement would vary bucket widths, which the exact
/// divisibility contract here deliberately trades away for bit-exact
/// determinism).
///
/// Determinism: bucket boundaries are fixed stream positions, retirement
/// is a pure function of the bucket index, fold order is fixed, and the
/// hosted sketches are exact-integer linear states — so window estimates
/// are bit-identical at any thread / shard / block-size configuration, and
/// after kill+resume at any point.
class SlidingWindowAlgorithm : public TurnstileStreamAlgorithm {
 public:
  /// `inner_id` is the hosted estimator's CheckpointId (the factory's
  /// product); it is baked into this wrapper's CheckpointId so snapshots
  /// never restore across estimator kinds.
  SlidingWindowAlgorithm(TurnstileAlgorithmFactory factory,
                         std::string_view inner_id,
                         std::uint64_t window_edges, std::uint64_t buckets);

  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessUpdate(int pass, const TurnstileUpdate& u,
                     std::size_t position) override;
  /// Splits the block at bucket boundaries so bucket contents — and hence
  /// retirement points and every estimate — are independent of how the
  /// driver batches the stream.
  void ProcessUpdateBlock(int pass, std::span<const TurnstileUpdate> updates,
                          std::size_t base_position) override;
  void EndPass(int pass) override;
  Estimate Result() const override;
  std::string_view CheckpointId() const override { return checkpoint_id_; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  std::uint64_t window_edges() const { return window_edges_; }
  std::uint64_t buckets() const { return buckets_; }

 private:
  struct Bucket {
    std::uint64_t index = 0;
    std::unique_ptr<TurnstileStreamAlgorithm> alg;
  };

  /// Ensures the bucket owning `position` is open (retiring expired
  /// buckets); returns its algorithm.
  TurnstileStreamAlgorithm& BucketFor(std::uint64_t position);

  TurnstileAlgorithmFactory factory_;
  std::string checkpoint_id_;
  std::uint64_t window_edges_ = 0;
  std::uint64_t buckets_ = 0;
  std::uint64_t bucket_width_ = 0;
  std::vector<Bucket> live_;  // Ascending index; at most buckets_ entries.
};

/// Exponential-decay estimation via scheduled rescaling: before processing
/// position p where p > 0 and p % epoch_edges == 0, the hosted sketch is
/// multiplied by 2^(−decay_log2), so an update that is k epochs old
/// contributes with weight 2^(−k·decay_log2). The factor is an exact
/// power of two: rescaling is a pure IEEE exponent shift (lossless per
/// slot), and epochs are fixed stream positions, so blocks are split at
/// epoch boundaries and the decayed state is bit-identical at any thread /
/// shard / block-size configuration. Exactness of subsequent additions
/// holds while each counter's integer span plus accumulated shift stays
/// within the 53-bit significand — comfortably true for every supported
/// stream size at the capped decay_log2 (spec validation caps it at 32).
class DecayAlgorithm : public TurnstileStreamAlgorithm {
 public:
  DecayAlgorithm(std::unique_ptr<TurnstileStreamAlgorithm> inner,
                 std::uint64_t epoch_edges, std::uint32_t decay_log2);

  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessUpdate(int pass, const TurnstileUpdate& u,
                     std::size_t position) override;
  void ProcessUpdateBlock(int pass, std::span<const TurnstileUpdate> updates,
                          std::size_t base_position) override;
  void EndPass(int pass) override;
  Estimate Result() const override { return inner_->Result(); }
  std::string_view CheckpointId() const override { return checkpoint_id_; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  std::uint64_t epoch_edges() const { return epoch_edges_; }
  std::uint32_t decay_log2() const { return decay_log2_; }

 private:
  /// Rescales if `position` sits on an epoch boundary (> 0).
  void MaybeDecayAt(std::uint64_t position);

  std::unique_ptr<TurnstileStreamAlgorithm> inner_;
  std::string checkpoint_id_;
  std::uint64_t epoch_edges_ = 0;
  std::uint32_t decay_log2_ = 0;
  double factor_ = 1.0;  // ldexp(1.0, -decay_log2), exact.
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_WINDOW_WINDOW_H_
