#include "stream/window/window.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

// --- SlidingWindowAlgorithm -----------------------------------------------

SlidingWindowAlgorithm::SlidingWindowAlgorithm(
    TurnstileAlgorithmFactory factory, std::string_view inner_id,
    std::uint64_t window_edges, std::uint64_t buckets)
    : factory_(std::move(factory)),
      checkpoint_id_("window/1+" + std::string(inner_id)),
      window_edges_(window_edges),
      buckets_(buckets) {
  CHECK_GT(window_edges_, 0u);
  CHECK_GT(buckets_, 0u);
  CHECK_EQ(window_edges_ % buckets_, 0u)
      << "window_edges must be a multiple of the bucket count";
  bucket_width_ = window_edges_ / buckets_;
}

void SlidingWindowAlgorithm::StartPass(int pass, std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  (void)stream_length;  // Buckets open lazily at their first position.
}

TurnstileStreamAlgorithm& SlidingWindowAlgorithm::BucketFor(
    std::uint64_t position) {
  const std::uint64_t index = position / bucket_width_;
  if (!live_.empty() && live_.back().index == index) {
    return *live_.back().alg;
  }
  // Opening bucket `index`: retire everything that fell out of the window
  // (a pure function of the index, so retirement points are identical at
  // any threading or batching).
  while (!live_.empty() && live_.front().index + buckets_ <= index) {
    live_.erase(live_.begin());
  }
  Bucket b;
  b.index = index;
  b.alg = factory_();
  b.alg->StartPass(0, bucket_width_);
  live_.push_back(std::move(b));
  return *live_.back().alg;
}

void SlidingWindowAlgorithm::ProcessUpdate(int pass, const TurnstileUpdate& u,
                                           std::size_t position) {
  BucketFor(position).ProcessUpdate(pass, u, position);
}

void SlidingWindowAlgorithm::ProcessUpdateBlock(
    int pass, std::span<const TurnstileUpdate> updates,
    std::size_t base_position) {
  std::size_t i = 0;
  while (i < updates.size()) {
    const std::uint64_t pos = base_position + i;
    const std::uint64_t bucket_end = (pos / bucket_width_ + 1) * bucket_width_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(updates.size() - i, bucket_end - pos));
    BucketFor(pos).ProcessUpdateBlock(pass, updates.subspan(i, n), pos);
    i += n;
  }
}

void SlidingWindowAlgorithm::EndPass(int pass) {
  for (Bucket& b : live_) b.alg->EndPass(pass);
}

Estimate SlidingWindowAlgorithm::Result() const {
  // Fold the live buckets oldest → newest into a fresh instance; linearity
  // makes the fold exactly the sketch of the concatenated bucket slices.
  std::unique_ptr<TurnstileStreamAlgorithm> merged = factory_();
  for (const Bucket& b : live_) {
    CHECK(merged->MergeFrom(*b.alg))
        << "window bucket fold rejected (factory misconfiguration)";
  }
  Estimate result = merged->Result();
  // Space: every live bucket holds a full instance.
  result.space_words *= std::max<std::size_t>(std::size_t{1}, live_.size());
  return result;
}

bool SlidingWindowAlgorithm::SaveState(StateWriter& w) const {
  w.U64(window_edges_);
  w.U64(buckets_);
  w.Size(live_.size());
  for (const Bucket& b : live_) {
    w.U64(b.index);
    StateWriter bucket_writer;
    if (!b.alg->SaveState(bucket_writer)) return false;
    w.Str(bucket_writer.str());
  }
  return true;
}

bool SlidingWindowAlgorithm::RestoreState(StateReader& r) {
  if (r.U64() != window_edges_ || r.U64() != buckets_) return r.Fail();
  const std::size_t count = r.Size();
  if (!r.ok() || count > buckets_) return r.Fail();
  std::vector<Bucket> restored;
  restored.reserve(count);
  std::uint64_t prev_index = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t index = r.U64();
    const std::string blob = r.Str();
    if (!r.ok()) return false;
    if (i > 0 && index <= prev_index) return r.Fail();  // Must ascend.
    prev_index = index;
    Bucket b;
    b.index = index;
    b.alg = factory_();
    StateReader bucket_reader(blob);
    if (!b.alg->RestoreState(bucket_reader) || !bucket_reader.AtEnd()) {
      return r.Fail();
    }
    restored.push_back(std::move(b));
  }
  live_ = std::move(restored);
  return true;
}

// --- DecayAlgorithm --------------------------------------------------------

DecayAlgorithm::DecayAlgorithm(
    std::unique_ptr<TurnstileStreamAlgorithm> inner,
    std::uint64_t epoch_edges, std::uint32_t decay_log2)
    : inner_(std::move(inner)),
      epoch_edges_(epoch_edges),
      decay_log2_(decay_log2) {
  CHECK(inner_ != nullptr);
  CHECK_GT(epoch_edges_, 0u);
  CHECK_GT(decay_log2_, 0u);
  checkpoint_id_ = "decay/1+" + std::string(inner_->CheckpointId());
  factor_ = std::ldexp(1.0, -static_cast<int>(decay_log2_));
}

void DecayAlgorithm::StartPass(int pass, std::size_t stream_length) {
  inner_->StartPass(pass, stream_length);
}

void DecayAlgorithm::MaybeDecayAt(std::uint64_t position) {
  if (position == 0 || position % epoch_edges_ != 0) return;
  CHECK(inner_->Rescale(factor_))
      << "decay requires a rescalable estimator (" << inner_->CheckpointId()
      << " does not implement Rescale)";
}

void DecayAlgorithm::ProcessUpdate(int pass, const TurnstileUpdate& u,
                                   std::size_t position) {
  MaybeDecayAt(position);
  inner_->ProcessUpdate(pass, u, position);
}

void DecayAlgorithm::ProcessUpdateBlock(
    int pass, std::span<const TurnstileUpdate> updates,
    std::size_t base_position) {
  // Split at epoch boundaries so the rescale lands between exactly the
  // same two updates at any batching.
  std::size_t i = 0;
  while (i < updates.size()) {
    const std::uint64_t pos = base_position + i;
    MaybeDecayAt(pos);
    const std::uint64_t epoch_end = (pos / epoch_edges_ + 1) * epoch_edges_;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(updates.size() - i, epoch_end - pos));
    inner_->ProcessUpdateBlock(pass, updates.subspan(i, n), pos);
    i += n;
  }
}

void DecayAlgorithm::EndPass(int pass) { inner_->EndPass(pass); }

bool DecayAlgorithm::SaveState(StateWriter& w) const {
  w.U64(epoch_edges_);
  w.U32(decay_log2_);
  return inner_->SaveState(w);
}

bool DecayAlgorithm::RestoreState(StateReader& r) {
  if (r.U64() != epoch_edges_ || r.U32() != decay_log2_) return r.Fail();
  return inner_->RestoreState(r);
}

}  // namespace cyclestream
