#ifndef CYCLESTREAM_STREAM_CHECKPOINT_H_
#define CYCLESTREAM_STREAM_CHECKPOINT_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "stream/order.h"
#include "util/serialize.h"

namespace cyclestream {

/// Checkpoint/restore for multi-pass stream algorithms.
///
/// A snapshot captures the *stream-dependent mutable state* of an algorithm
/// mid-run; everything derived purely from its Params (hash coefficients,
/// sign caches, derived rates) is reconstructed by the constructor and only
/// *verified* on restore via config fingerprints. The wire format
/// (documented in DESIGN.md §10):
///
///   magic(8) | version(u32) | payload_size(u64) | crc32(payload) | payload
///
/// payload = algorithm_id | stream_kind | stream_fingerprint |
///           stream_length | pass | position | elements_processed |
///           state blob (length-prefixed)
///
/// Every field of the header is validated on load, the CRC covers the whole
/// payload (any single-byte flip is detected), and the payload parse is
/// bounded and must consume the payload exactly. A snapshot that fails any
/// check is rejected with a descriptive error — never partially restored.
/// Writes are atomic: tmp file + std::rename.

// ---------------------------------------------------------------------------
// Snapshot format
// ---------------------------------------------------------------------------
//
// The state codec (StateWriter/StateReader and the unordered-container
// helpers) lives in util/serialize.h so hash/sketch classes can serialize
// themselves without a dependency on the stream library.

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct Snapshot {
  std::string algorithm_id;  // Includes a per-algorithm schema tag.
  std::uint8_t stream_kind = 0;  // 0 = edge stream, 1 = adjacency stream.
  std::uint64_t stream_fingerprint = 0;
  std::uint64_t stream_length = 0;
  std::uint64_t pass = 0;      // Pass to resume in.
  std::uint64_t position = 0;  // First unprocessed element of that pass.
  std::uint64_t elements_processed = 0;  // Total across passes (cadence).
  std::string state;           // Algorithm state blob.
};

/// Fault hooks applied to a single snapshot write (see stream/fault.h).
struct WriteFault {
  bool fail_io = false;         // Simulated EIO: nothing is written.
  std::int64_t corrupt_byte = -1;  // Flip this byte of the encoded file.
  std::int64_t truncate_to = -1;   // Truncate the encoded file to this size.
};

/// Encodes `snap` to the full wire format (header + payload).
std::string EncodeSnapshot(const Snapshot& snap);

/// Decodes and strictly validates an encoded snapshot. Returns nullopt and
/// sets `*error` on any malformation (bad magic, version mismatch, size
/// mismatch, CRC failure, payload overrun/underrun).
std::optional<Snapshot> DecodeSnapshot(std::string_view encoded,
                                       std::string* error);

/// Atomically writes `snap` to `path` (tmp + rename). Returns false and
/// sets `*error` on I/O failure (or a simulated one via `fault`); the
/// previous file at `path`, if any, is left intact in that case.
bool SaveSnapshot(const std::string& path, const Snapshot& snap,
                  std::string* error, const WriteFault* fault = nullptr);

/// Loads and validates a snapshot. Returns nullopt with `*error` set if
/// the file is missing, unreadable, or fails any validation check.
std::optional<Snapshot> LoadSnapshot(const std::string& path,
                                     std::string* error);

/// Order-sensitive fingerprints binding a snapshot to one exact stream.
std::uint64_t FingerprintEdgeStream(const EdgeStream& stream);
std::uint64_t FingerprintAdjacencyStream(const AdjacencyStream& stream);

/// Span overload producing the identical fingerprint to the EdgeStream one,
/// so mmap'd binary streams (BinaryEdgeReader::edges()) fingerprint without
/// a copy into a vector. The shard coordinator binds worker state files and
/// epoch checkpoints to the stream through this.
std::uint64_t FingerprintEdgeStream(std::span<const Edge> edges);

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_CHECKPOINT_H_
