#include "stream/dynamic/turnstile.h"

#include <unordered_map>
#include <unordered_set>

namespace cyclestream {

// Same construction as FingerprintEdgeStream (checkpoint.cc) with a
// turnstile-specific salt and the op byte folded in per record, so a
// snapshot can never be replayed against the same edges with different
// operations — or against the plain edge stream they came from.
std::uint64_t FingerprintTurnstileStream(
    std::span<const TurnstileUpdate> updates) {
  std::uint64_t h =
      Mix64(0x54524e53ull ^ static_cast<std::uint64_t>(updates.size()));
  for (std::size_t i = 0; i < updates.size(); ++i) {
    h = Mix64(h ^ updates[i].edge.Key());
    h = Mix64(h ^ static_cast<std::uint64_t>(updates[i].op));
    h = Mix64(h ^ static_cast<std::uint64_t>(i));
  }
  return h;
}

std::uint64_t FingerprintTurnstileStream(const TurnstileStream& stream) {
  return FingerprintTurnstileStream(
      std::span<const TurnstileUpdate>(stream.data(), stream.size()));
}

TurnstileStream TurnstileFromEdges(std::span<const Edge> edges) {
  TurnstileStream out;
  out.reserve(edges.size());
  for (const Edge& e : edges) out.emplace_back(e, TurnstileOp::kInsert);
  return out;
}

std::vector<Edge> LiveEdges(std::span<const TurnstileUpdate> updates) {
  std::unordered_map<std::uint64_t, std::int64_t> counts;
  counts.reserve(updates.size());
  std::vector<Edge> order;  // Distinct edges in first-insertion order.
  std::unordered_set<std::uint64_t> seen;
  for (const TurnstileUpdate& u : updates) {
    const std::uint64_t key = u.edge.Key();
    if (u.op == TurnstileOp::kInsert) {
      ++counts[key];
      if (seen.insert(key).second) order.push_back(u.edge);
    } else {
      std::int64_t& c = counts[key];
      if (c > 0) --c;  // Unmatched deletes clamp (see header).
    }
  }
  std::vector<Edge> live;
  live.reserve(order.size());
  for (const Edge& e : order) {
    if (counts[e.Key()] > 0) live.push_back(e);
  }
  return live;
}

}  // namespace cyclestream
