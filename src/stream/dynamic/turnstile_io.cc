#include "stream/dynamic/turnstile_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cstring>
#include <fstream>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "graph/binary_io.h"
#include "util/check.h"
#include "util/crc32.h"

namespace cyclestream {
namespace {

static_assert(std::endian::native == std::endian::little,
              "binary turnstile streams assume a little-endian host");

constexpr char kMagicV2[8] = {'C', 'Y', 'S', 'B', 'I', 'N', '\x02', '\n'};
constexpr char kMagicPrefix[6] = {'C', 'Y', 'S', 'B', 'I', 'N'};

void PutU32(char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }

std::uint32_t GetU32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

bool WriteTurnstileStream(const TurnstileUpdate* updates, std::size_t count,
                          VertexId num_vertices, const std::string& path,
                          std::string* error) {
  std::string payload;
  payload.reserve(count * kTurnstileRecordSize);
  for (std::size_t i = 0; i < count; ++i) {
    const TurnstileUpdate& u = updates[i];
    CHECK(u.edge.u < u.edge.v && u.edge.v < num_vertices)
        << "WriteTurnstileStream: update " << i << " (" << u.edge.u << ","
        << u.edge.v << ") is not canonical for n=" << num_vertices;
    char rec[kTurnstileRecordSize];
    rec[0] = static_cast<char>(static_cast<std::uint8_t>(u.op));
    PutU32(rec + 1, u.edge.u);
    PutU32(rec + 5, u.edge.v);
    payload.append(rec, kTurnstileRecordSize);
  }

  char header[kTurnstileHeaderSize] = {};
  std::memcpy(header, kMagicV2, sizeof(kMagicV2));
  PutU32(header + 8, kBinaryTurnstileVersion);
  PutU32(header + 12, num_vertices);
  PutU64(header + 16, static_cast<std::uint64_t>(count));
  PutU32(header + 24, Crc32(std::string_view(payload)));
  PutU32(header + 28, 0);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(error, "cannot open for writing: " + path);
  out.write(header, sizeof(header));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  out.flush();
  if (!out) return Fail(error, "write failed: " + path);
  return true;
}

bool TurnstileBinaryReader::Open(const std::string& path, std::string* error) {
  stream_.clear();
  num_vertices_ = 0;
  format_version_ = 0;
  open_ = false;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Fail(error, "cannot open: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Fail(error, "cannot stat: " + path);
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  if (file_size < kTurnstileHeaderSize) {
    ::close(fd);
    return Fail(error, path + ": truncated (smaller than the 32-byte header)");
  }
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps the file alive.
  if (map == MAP_FAILED) return Fail(error, "mmap failed: " + path);

  const char* base = static_cast<const char*>(map);
  auto reject = [&](std::string message) {
    ::munmap(map, file_size);
    return Fail(error, path + ": " + std::move(message));
  };
  if (std::memcmp(base, kMagicV2, sizeof(kMagicV2)) != 0) {
    if (std::memcmp(base, kMagicPrefix, sizeof(kMagicPrefix)) == 0) {
      const auto magic_version =
          static_cast<unsigned>(static_cast<unsigned char>(base[6]));
      if (magic_version == kBinaryEdgeVersion) {
        return reject(
            "this is an insert-only (v1) edge stream, not a turnstile "
            "stream; wrap it with edge2bin --turnstile or feed it to an "
            "insert-only query kind");
      }
      return reject("unsupported cyclestream binary magic version " +
                    std::to_string(magic_version) + " (this reader handles v" +
                    std::to_string(kBinaryTurnstileVersion) + ")");
    }
    return reject("not a cyclestream binary turnstile stream (bad magic)");
  }
  const std::uint32_t version = GetU32(base + 8);
  if (version != kBinaryTurnstileVersion) {
    return reject("header version " + std::to_string(version) +
                  " disagrees with the v2 magic (corrupt header)");
  }
  const VertexId num_vertices = GetU32(base + 12);
  const std::uint64_t num_updates = GetU64(base + 16);
  const std::uint32_t crc = GetU32(base + 24);
  // Same forged-count overflow guard as the v1 reader: reject a declared
  // count whose byte size is not representable before computing it.
  constexpr std::uint64_t kMaxDeclaredUpdates =
      (~std::uint64_t{0} - kTurnstileHeaderSize) / kTurnstileRecordSize;
  if (num_updates > kMaxDeclaredUpdates) {
    return reject("header declares " + std::to_string(num_updates) +
                  " updates, which overflows the file-size computation "
                  "(forged or corrupt header)");
  }
  const std::uint64_t expected_size =
      kTurnstileHeaderSize + num_updates * kTurnstileRecordSize;
  if (file_size != expected_size) {
    return reject(
        "size mismatch: header declares " + std::to_string(num_updates) +
        " updates (" + std::to_string(expected_size) +
        " bytes) but the file has " + std::to_string(file_size) +
        " bytes (truncated, trailing garbage, or a concatenated stream)");
  }
  const char* payload = base + kTurnstileHeaderSize;
  const std::size_t payload_size = file_size - kTurnstileHeaderSize;
  if (Crc32(std::string_view(payload, payload_size)) != crc) {
    return reject("payload CRC mismatch (corrupt file)");
  }

  TurnstileStream stream;
  stream.reserve(static_cast<std::size_t>(num_updates));
  // Live insert counts per edge, for the strict unmatched-delete check.
  std::unordered_map<std::uint64_t, std::uint64_t> live;
  if (strict_) live.reserve(static_cast<std::size_t>(num_updates));
  for (std::uint64_t i = 0; i < num_updates; ++i) {
    const char* rec = payload + i * kTurnstileRecordSize;
    const auto op_byte = static_cast<std::uint8_t>(rec[0]);
    if (op_byte > 1) {
      return reject("update " + std::to_string(i) + " has invalid op byte " +
                    std::to_string(static_cast<unsigned>(op_byte)) +
                    " (must be 0=insert or 1=delete)");
    }
    const VertexId u = GetU32(rec + 1);
    const VertexId v = GetU32(rec + 5);
    if (!(u < v && v < num_vertices)) {
      return reject("update " + std::to_string(i) + " (" + std::to_string(u) +
                    "," + std::to_string(v) +
                    ") is not canonical for n=" + std::to_string(num_vertices));
    }
    const auto op = static_cast<TurnstileOp>(op_byte);
    if (strict_) {
      const std::uint64_t key = Edge(u, v).Key();
      if (op == TurnstileOp::kInsert) {
        ++live[key];
      } else {
        auto it = live.find(key);
        if (it == live.end() || it->second == 0) {
          return reject("update " + std::to_string(i) + " deletes edge (" +
                        std::to_string(u) + "," + std::to_string(v) +
                        ") which is not live at that point in the stream "
                        "(unmatched delete; strict mode)");
        }
        --it->second;
      }
    }
    stream.emplace_back(Edge(u, v), op);
  }
  ::munmap(map, file_size);

  stream_ = std::move(stream);
  num_vertices_ = num_vertices;
  format_version_ = version;
  open_ = true;
  return true;
}

}  // namespace cyclestream
