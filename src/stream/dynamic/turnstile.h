#ifndef CYCLESTREAM_STREAM_DYNAMIC_TURNSTILE_H_
#define CYCLESTREAM_STREAM_DYNAMIC_TURNSTILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "stream/driver.h"
#include "stream/order.h"
#include "stream/space.h"

namespace cyclestream {

class StateWriter;
class StateReader;

/// The dynamic (turnstile) stream model: edges arrive *and depart*. The
/// paper's Thm 5.7 estimator (arb-f2) works here unchanged because its
/// state is a linear sketch — a deletion is the insertion with sign −1 —
/// and the same holds for every estimator registered under the turnstile
/// query kinds. See DESIGN.md §16.

/// Per-record operation. The numeric values are the wire encoding of the
/// binary turnstile format (turnstile_io.h); keep them stable.
enum class TurnstileOp : std::uint8_t { kInsert = 0, kDelete = 1 };

/// ±1.0 update sign: every accumulator delta is sign · (±1 term), an exact
/// small integer, which is what makes cancellation, sharding, and merges
/// bit-exact (the ShardedSketch determinism contract).
inline double TurnstileSign(TurnstileOp op) {
  return op == TurnstileOp::kInsert ? +1.0 : -1.0;
}

/// One turnstile stream element: an edge plus its operation.
struct TurnstileUpdate {
  Edge edge;
  TurnstileOp op = TurnstileOp::kInsert;

  TurnstileUpdate() = default;
  TurnstileUpdate(const Edge& e, TurnstileOp o) : edge(e), op(o) {}

  friend bool operator==(const TurnstileUpdate& a,
                         const TurnstileUpdate& b) = default;
};

/// A materialized single-pass turnstile stream.
using TurnstileStream = std::vector<TurnstileUpdate>;

/// Interface for algorithms over turnstile streams. Deliberately mirrors
/// EdgeStreamAlgorithm method-for-method (NumPasses/StartPass/Process*/
/// EndPass plus the checkpoint and merge hooks) so the stream driver's
/// checkpoint loop and the engine broker's wave loop host all three stream
/// families through one template. Turnstile algorithms are single-pass by
/// construction: their state is a linear sketch of the signed stream, so
/// one pass is all the model ever needs (and a deletion-bearing stream has
/// no meaningful "replay for pass 2" semantics for sampling algorithms).
class TurnstileStreamAlgorithm {
 public:
  virtual ~TurnstileStreamAlgorithm() = default;

  int NumPasses() const { return 1; }
  virtual void StartPass(int pass, std::size_t stream_length) = 0;
  virtual void ProcessUpdate(int pass, const TurnstileUpdate& u,
                             std::size_t position) = 0;
  virtual void EndPass(int pass) = 0;

  /// Batched delivery: updates[i] is the stream element at position
  /// base_position + i. Same contract as EdgeStreamAlgorithm — an override
  /// must leave the algorithm in exactly the state the per-update loop
  /// would (block/scalar bit-identity, DESIGN.md §13).
  virtual void ProcessUpdateBlock(int pass,
                                  std::span<const TurnstileUpdate> updates,
                                  std::size_t base_position) {
    for (std::size_t i = 0; i < updates.size(); ++i) {
      ProcessUpdate(pass, updates[i], base_position + i);
    }
  }

  /// The estimate from the current counters. Turnstile estimators are
  /// linear, so this is meaningful at any point in the stream (the
  /// windowing layer queries it between epochs).
  virtual Estimate Result() const = 0;

  /// Multiplies every state counter by `factor` — the exponential-decay
  /// hook. Exact power-of-two factors keep the rescale lossless in IEEE
  /// doubles (a pure exponent shift), which is what makes decayed runs
  /// thread- and block-size-invariant. Returns false (no mutation) if the
  /// algorithm does not support rescaling.
  virtual bool Rescale(double factor) {
    (void)factor;
    return false;
  }

  /// See EdgeStreamAlgorithm::AuditSpace.
  virtual std::size_t AuditSpace() const { return kNoSpaceAudit; }

  /// See EdgeStreamAlgorithm::space_tracker.
  virtual const SpaceTracker* space_tracker() const { return nullptr; }

  /// See EdgeStreamAlgorithm::CheckpointId.
  virtual std::string_view CheckpointId() const { return {}; }

  /// See EdgeStreamAlgorithm::SaveState.
  virtual bool SaveState(StateWriter& w) const {
    (void)w;
    return false;
  }

  /// See EdgeStreamAlgorithm::RestoreState.
  virtual bool RestoreState(StateReader& r) {
    (void)r;
    return false;
  }

  /// See EdgeStreamAlgorithm::MergeFrom: linear state over a partitioned
  /// stream folds by addition into exactly the whole-stream state.
  virtual bool MergeFrom(const TurnstileStreamAlgorithm& other) {
    (void)other;
    return false;
  }
};

/// Runs the single pass of `alg` over `stream` (block delivery, same block
/// width as the engine broker).
void RunTurnstileStream(TurnstileStreamAlgorithm& alg,
                        const TurnstileStream& stream);

/// As above with checkpoint/resume/fault-injection control — the same
/// semantics as the edge/adjacency overloads (stream/driver.h): snapshots
/// are written per the policy with stream-kind tag 2, a resumed run that
/// completes is bit-identical to an uninterrupted run.
RunOutcome RunTurnstileStream(TurnstileStreamAlgorithm& alg,
                              const TurnstileStream& stream,
                              const RunOptions& options);

/// Order-sensitive fingerprint binding a snapshot to one exact turnstile
/// stream (edges *and* ops; mirrors FingerprintEdgeStream).
std::uint64_t FingerprintTurnstileStream(const TurnstileStream& stream);
std::uint64_t FingerprintTurnstileStream(std::span<const TurnstileUpdate> updates);

/// Wraps an insert-only edge stream as a turnstile stream (every element
/// kInsert, order preserved) — how v1/text graphs enter turnstile batches.
TurnstileStream TurnstileFromEdges(std::span<const Edge> edges);

/// The live edge multiset after applying every update: an edge is live
/// while its insert count exceeds its delete count. Returned as distinct
/// edges (duplicates collapsed), in first-insertion order — the ground-
/// truth graph the CLI counts exactly against. Unmatched deletes are legal
/// here (the strict reader rejects them at ingest); a negative count
/// clamps to zero.
std::vector<Edge> LiveEdges(std::span<const TurnstileUpdate> updates);

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_DYNAMIC_TURNSTILE_H_
