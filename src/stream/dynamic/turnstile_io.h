#ifndef CYCLESTREAM_STREAM_DYNAMIC_TURNSTILE_IO_H_
#define CYCLESTREAM_STREAM_DYNAMIC_TURNSTILE_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/types.h"
#include "stream/dynamic/turnstile.h"

namespace cyclestream {

/// Binary turnstile-stream format v2 (".bin"): the dynamic-model sibling of
/// the v1 edge-stream format (graph/binary_io.h). Same magic prefix and
/// header shape, but records carry a per-update op byte and the version
/// byte in the magic/header is 2, so each reader rejects the other's files
/// with a descriptive error instead of misparsing them.
///
/// Wire layout (little-endian, 32-byte header):
///
///   offset  0  magic[8]      = "CYSBIN\x02\n"
///   offset  8  u32 version   = 2
///   offset 12  u32 num_vertices
///   offset 16  u64 num_updates
///   offset 24  u32 crc32     CRC-32 (IEEE) of the payload bytes
///   offset 28  u32 reserved  = 0
///   offset 32  payload       num_updates * 9 bytes:
///                              u8 op (0 = insert, 1 = delete), u32 u, u32 v
///
/// Records are 9 bytes and deliberately unaligned — the turnstile reader
/// materializes (decodes into a TurnstileStream) rather than aliasing the
/// mapping, because validation must walk every record anyway to check op
/// bytes and (in strict mode) delete matching. Every edge must satisfy
/// u < v < num_vertices; every op byte must be 0 or 1. The exact-size
/// check rejects concatenated streams (any trailing bytes after the
/// declared payload), same as v1.

inline constexpr std::size_t kTurnstileHeaderSize = 32;
inline constexpr std::size_t kTurnstileRecordSize = 9;

/// Writes `count` updates (order preserved) as a v2 turnstile stream.
/// Edges must be canonical (u < v < num_vertices); a violation aborts.
/// Returns false and sets `*error` on I/O failure.
bool WriteTurnstileStream(const TurnstileUpdate* updates, std::size_t count,
                          VertexId num_vertices, const std::string& path,
                          std::string* error = nullptr);

inline bool WriteTurnstileStream(const TurnstileStream& stream,
                                 VertexId num_vertices,
                                 const std::string& path,
                                 std::string* error = nullptr) {
  return WriteTurnstileStream(stream.data(), stream.size(), num_vertices,
                              path, error);
}

/// Validating reader for v2 turnstile streams. Open() maps the file
/// read-only, fully validates it (header, exact size, CRC, per-record op
/// byte and canonical edge; in strict mode every delete must have a live
/// matching insert at its stream position), decodes the records into an
/// owned TurnstileStream, and drops the mapping. Strict mode is the
/// default: an unmatched delete is almost always a mis-assembled stream,
/// and the linear sketches would silently absorb the negative count.
class TurnstileBinaryReader {
 public:
  TurnstileBinaryReader() = default;

  /// Reads and validates `path`. False (with `*error` set) on any problem;
  /// the reader is left empty in that case.
  bool Open(const std::string& path, std::string* error);

  /// Disables the unmatched-delete check for the next Open() — for tools
  /// (bin2edge round-trips) that must pass through any well-formed file.
  void set_strict(bool strict) { strict_ = strict; }

  bool is_open() const { return open_; }
  VertexId num_vertices() const { return num_vertices_; }
  std::size_t num_updates() const { return stream_.size(); }

  /// Format version of the open file (kBinaryTurnstileVersion; 0 when not
  /// open). Exported into run manifests as `stream.format_version`.
  std::uint32_t format_version() const { return format_version_; }

  /// The decoded stream, order preserved. Valid until the next Open().
  const TurnstileStream& stream() const { return stream_; }
  TurnstileStream TakeStream() { return std::move(stream_); }

 private:
  TurnstileStream stream_;
  VertexId num_vertices_ = 0;
  std::uint32_t format_version_ = 0;
  bool strict_ = true;
  bool open_ = false;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_DYNAMIC_TURNSTILE_IO_H_
