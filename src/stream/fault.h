#ifndef CYCLESTREAM_STREAM_FAULT_H_
#define CYCLESTREAM_STREAM_FAULT_H_

#include <cstdint>
#include <vector>

#include "stream/checkpoint.h"

namespace cyclestream {

/// Deterministic fault injector the stream driver consults. A FaultPlan
/// describes what goes wrong in one run — kill the process' run loop after
/// the Nth element, fail the Nth checkpoint write with a simulated EIO,
/// flip a byte or truncate the Nth written snapshot — so tests can sweep
/// kill points and corruption offsets and assert the recovery contract:
/// a killed-and-resumed run is bit-identical to an uninterrupted one, and
/// a damaged snapshot is always rejected.
///
/// The driver calls OnElementProcessed() after every processed element and
/// stops the run (returning RunOutcome{completed = false}) when it returns
/// true; NextWriteFault() is consumed once per checkpoint write.
class FaultPlan {
 public:
  /// Stop the run after `n` elements have been processed (counted across
  /// passes). 0 disables the kill.
  void KillAfterElements(std::uint64_t n) { kill_after_ = n; }

  /// Fail the `nth` checkpoint write (0-based) with a simulated EIO. The
  /// driver logs a warning, keeps the previous snapshot file, counts the
  /// failure, and continues the run.
  void FailCheckpointWrite(std::uint64_t nth) {
    Fault(nth).fail_io = true;
  }

  /// XOR-flip byte `byte_index` of the `nth` checkpoint write's encoded
  /// file. The write itself succeeds; the damage must be caught on load.
  void CorruptCheckpointByte(std::uint64_t nth, std::uint64_t byte_index) {
    Fault(nth).corrupt_byte = static_cast<std::int64_t>(byte_index);
  }

  /// Truncate the `nth` checkpoint write's encoded file to `size` bytes.
  void TruncateCheckpoint(std::uint64_t nth, std::uint64_t size) {
    Fault(nth).truncate_to = static_cast<std::int64_t>(size);
  }

  /// Seeded kill-point choice, uniform over [1, total]. Deterministic in
  /// (seed, total) so sweeps are reproducible.
  static std::uint64_t PickKillPoint(std::uint64_t seed, std::uint64_t total);

  // --- Driver hooks ---

  /// Advances the element counter; true once the kill point is reached.
  bool OnElementProcessed() {
    if (kill_after_ == 0) return false;
    return ++elements_seen_ >= kill_after_;
  }

  /// The fault (if any) to apply to the next checkpoint write.
  WriteFault NextWriteFault() {
    const std::uint64_t nth = writes_seen_++;
    if (nth < write_faults_.size()) return write_faults_[nth];
    return WriteFault{};
  }

  std::uint64_t elements_seen() const { return elements_seen_; }

 private:
  WriteFault& Fault(std::uint64_t nth) {
    if (write_faults_.size() <= nth) write_faults_.resize(nth + 1);
    return write_faults_[nth];
  }

  std::uint64_t kill_after_ = 0;
  std::uint64_t elements_seen_ = 0;
  std::uint64_t writes_seen_ = 0;
  std::vector<WriteFault> write_faults_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_FAULT_H_
