#include "stream/fault.h"

#include "graph/types.h"

namespace cyclestream {

std::uint64_t FaultPlan::PickKillPoint(std::uint64_t seed,
                                       std::uint64_t total) {
  if (total == 0) return 0;
  return 1 + Mix64(seed ^ 0xfa017u) % total;
}

}  // namespace cyclestream
