#ifndef CYCLESTREAM_STREAM_ORDER_H_
#define CYCLESTREAM_STREAM_ORDER_H_

#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "hash/rng.h"

namespace cyclestream {

/// The three stream models of the paper (§1):
///  - arbitrary order: edges in any (possibly adversarial) order,
///  - random order:    a uniformly random permutation of the edges,
///  - adjacency list:  each edge appears twice, grouped by endpoint.

/// A materialized single-pass edge stream. Multi-pass algorithms replay the
/// same ordering on every pass (the model fixes the stream across passes).
using EdgeStream = std::vector<Edge>;

/// Random-order stream: uniform permutation of the edges.
EdgeStream MakeRandomOrderStream(const EdgeList& edges, Rng& rng);

/// Arbitrary-order streams used by experiments. `kSorted` is the canonical
/// lexicographic order (a plausibly adversarial, highly local order);
/// `kShuffled` is one fixed random permutation (drawn once — an "arbitrary"
/// order the algorithm cannot rely on being random across repetitions).
enum class ArbitraryOrder {
  kSorted,
  kReverseSorted,
  kShuffled,
};
EdgeStream MakeArbitraryOrderStream(const EdgeList& edges, ArbitraryOrder kind,
                                    Rng& rng);

/// One adjacency list: the owning vertex and its full neighbor list (the
/// neighbors appear consecutively in the stream, per the paper's footnote 1).
struct AdjacencyList {
  VertexId vertex = 0;
  std::vector<VertexId> neighbors;
};

/// Adjacency-list stream: every vertex's list appears exactly once; each
/// edge {u,v} therefore appears twice (in u's list and in v's list).
using AdjacencyStream = std::vector<AdjacencyList>;

/// Builds the adjacency-list stream with a uniformly random vertex order and
/// random order within each list.
AdjacencyStream MakeAdjacencyStream(const Graph& g, Rng& rng);

/// Builds the adjacency-list stream with vertices in id order (deterministic
/// variant for tests).
AdjacencyStream MakeAdjacencyStreamById(const Graph& g);

}  // namespace cyclestream

#endif  // CYCLESTREAM_STREAM_ORDER_H_
