#include "stream/driver.h"

namespace cyclestream {

void RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream) {
  for (int pass = 0; pass < alg.NumPasses(); ++pass) {
    alg.StartPass(pass, stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      alg.ProcessEdge(pass, stream[i], i);
    }
    alg.EndPass(pass);
  }
}

void RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                        const AdjacencyStream& stream) {
  for (int pass = 0; pass < alg.NumPasses(); ++pass) {
    alg.StartPass(pass, stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      alg.ProcessList(pass, stream[i], i);
    }
    alg.EndPass(pass);
  }
}

}  // namespace cyclestream
