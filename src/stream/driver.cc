#include "stream/driver.h"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "util/check.h"

namespace cyclestream {
namespace {

// Audit flag: set once at startup (SetSpaceAudit / environment), read from
// every worker thread. Relaxed atomics keep TSan quiet without cost.
std::atomic<bool> g_audit_enabled{false};

bool AuditFromEnv() {
  const char* env = std::getenv("CYCLESTREAM_AUDIT_SPACE");
  return env != nullptr && env[0] == '1';
}

// Process-wide counters. Each field is a sum of per-run contributions, so
// the totals are scheduling-independent; atomics make the concurrent
// accumulation race-free.
struct AtomicStreamStats {
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> edges_processed{0};
  std::atomic<std::uint64_t> lists_processed{0};
  std::atomic<std::uint64_t> audits_passed{0};
  std::atomic<std::uint64_t> pass_nanos[4] = {};
};

AtomicStreamStats& Stats() {
  static AtomicStreamStats stats;
  return stats;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

// Cross-checks the algorithm's self-reported footprint against a fresh
// walk of its stored state. Called after the final pass, when every
// algorithm's tracker is current.
template <typename Alg>
void MaybeAuditSpace(const Alg& alg) {
  if (!SpaceAuditEnabled()) return;
  const SpaceTracker* tracker = alg.space_tracker();
  const std::size_t walked = alg.AuditSpace();
  if (tracker == nullptr || walked == kNoSpaceAudit) return;
  CHECK_EQ(walked, tracker->Current())
      << "space audit failed: the state walk disagrees with the "
         "self-reported footprint (accounting bug)";
  CHECK_LE(walked, tracker->Peak())
      << "space audit failed: current footprint exceeds the recorded peak";
  Stats().audits_passed.fetch_add(1, kRelaxed);
}

void AddPassTime(int pass, std::chrono::steady_clock::time_point start) {
  const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  const int slot = pass < 3 ? pass : 3;
  Stats().pass_nanos[slot].fetch_add(static_cast<std::uint64_t>(nanos),
                                     kRelaxed);
}

}  // namespace

void SetSpaceAudit(bool enabled) {
  g_audit_enabled.store(enabled, kRelaxed);
}

bool SpaceAuditEnabled() {
  static const bool from_env = AuditFromEnv();
  return from_env || g_audit_enabled.load(kRelaxed);
}

StreamStats GlobalStreamStats() {
  StreamStats out;
  AtomicStreamStats& stats = Stats();
  out.runs = stats.runs.load(kRelaxed);
  out.passes = stats.passes.load(kRelaxed);
  out.edges_processed = stats.edges_processed.load(kRelaxed);
  out.lists_processed = stats.lists_processed.load(kRelaxed);
  out.audits_passed = stats.audits_passed.load(kRelaxed);
  for (int i = 0; i < 4; ++i) {
    out.pass_seconds[i] =
        static_cast<double>(stats.pass_nanos[i].load(kRelaxed)) * 1e-9;
  }
  return out;
}

void ResetStreamStats() {
  AtomicStreamStats& stats = Stats();
  stats.runs.store(0, kRelaxed);
  stats.passes.store(0, kRelaxed);
  stats.edges_processed.store(0, kRelaxed);
  stats.lists_processed.store(0, kRelaxed);
  stats.audits_passed.store(0, kRelaxed);
  for (auto& nanos : stats.pass_nanos) nanos.store(0, kRelaxed);
}

void RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream) {
  const int num_passes = alg.NumPasses();
  for (int pass = 0; pass < num_passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    alg.StartPass(pass, stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      alg.ProcessEdge(pass, stream[i], i);
    }
    alg.EndPass(pass);
    AddPassTime(pass, start);
  }
  MaybeAuditSpace(alg);
  Stats().runs.fetch_add(1, kRelaxed);
  Stats().passes.fetch_add(static_cast<std::uint64_t>(num_passes), kRelaxed);
  Stats().edges_processed.fetch_add(
      static_cast<std::uint64_t>(num_passes) * stream.size(), kRelaxed);
}

void RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                        const AdjacencyStream& stream) {
  const int num_passes = alg.NumPasses();
  for (int pass = 0; pass < num_passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    alg.StartPass(pass, stream.size());
    for (std::size_t i = 0; i < stream.size(); ++i) {
      alg.ProcessList(pass, stream[i], i);
    }
    alg.EndPass(pass);
    AddPassTime(pass, start);
  }
  MaybeAuditSpace(alg);
  Stats().runs.fetch_add(1, kRelaxed);
  Stats().passes.fetch_add(static_cast<std::uint64_t>(num_passes), kRelaxed);
  Stats().lists_processed.fetch_add(
      static_cast<std::uint64_t>(num_passes) * stream.size(), kRelaxed);
}

}  // namespace cyclestream
