#include "stream/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <system_error>

#include "stream/checkpoint.h"
#include "stream/dynamic/turnstile.h"
#include "stream/fault.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

// Audit flag: set once at startup (SetSpaceAudit / environment), read from
// every worker thread. Relaxed atomics keep TSan quiet without cost.
std::atomic<bool> g_audit_enabled{false};

bool AuditFromEnv() {
  const char* env = std::getenv("CYCLESTREAM_AUDIT_SPACE");
  return env != nullptr && env[0] == '1';
}

// Process-wide counters. Each field is a sum of per-run contributions, so
// the totals are scheduling-independent; atomics make the concurrent
// accumulation race-free.
struct AtomicStreamStats {
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> edges_processed{0};
  std::atomic<std::uint64_t> lists_processed{0};
  std::atomic<std::uint64_t> updates_processed{0};
  std::atomic<std::uint64_t> audits_passed{0};
  std::atomic<std::uint64_t> checkpoints_written{0};
  std::atomic<std::uint64_t> checkpoint_failures{0};
  std::atomic<std::uint64_t> restores{0};
  std::atomic<std::uint64_t> restore_rejects{0};
  std::atomic<std::uint64_t> pass_nanos[4] = {};
};

AtomicStreamStats& Stats() {
  static AtomicStreamStats stats;
  return stats;
}

constexpr auto kRelaxed = std::memory_order_relaxed;

// Process-wide checkpoint configuration (SetGlobalCheckpoint), consumed by
// the plain Run*Stream overloads. run_seq names the snapshot file of each
// Run*Stream call; elements drives kill_after across all runs.
struct GlobalCheckpointState {
  std::atomic<bool> active{false};
  GlobalCheckpointOptions opts;
  std::atomic<std::uint64_t> run_seq{0};
  std::atomic<std::uint64_t> elements{0};
};

GlobalCheckpointState& GlobalCkpt() {
  static GlobalCheckpointState state;
  return state;
}

// Cross-checks the algorithm's self-reported footprint against a fresh
// walk of its stored state. Called after the final pass, when every
// algorithm's tracker is current.
template <typename Alg>
void MaybeAuditSpace(const Alg& alg) {
  if (!SpaceAuditEnabled()) return;
  const SpaceTracker* tracker = alg.space_tracker();
  const std::size_t walked = alg.AuditSpace();
  if (tracker == nullptr || walked == kNoSpaceAudit) return;
  CHECK_EQ(walked, tracker->Current())
      << "space audit failed: the state walk disagrees with the "
         "self-reported footprint (accounting bug)";
  CHECK_LE(walked, tracker->Peak())
      << "space audit failed: current footprint exceeds the recorded peak";
  Stats().audits_passed.fetch_add(1, kRelaxed);
}

void AddPassTime(int pass, std::chrono::steady_clock::time_point start) {
  const auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  const int slot = pass < 3 ? pass : 3;
  Stats().pass_nanos[slot].fetch_add(static_cast<std::uint64_t>(nanos),
                                     kRelaxed);
}

// Per-stream-kind plumbing for the shared run loop.
struct EdgeKind {
  static constexpr std::uint8_t kTag = 0;
  using Alg = EdgeStreamAlgorithm;
  using Stream = EdgeStream;
  static std::uint64_t Fingerprint(const Stream& s) {
    return FingerprintEdgeStream(s);
  }
  static void Process(Alg& alg, int pass, const Stream& s, std::size_t i) {
    alg.ProcessEdge(pass, s[i], i);
  }
  static void ProcessBlock(Alg& alg, int pass, const Stream& s, std::size_t i,
                           std::size_t n) {
    alg.ProcessEdgeBlock(pass, std::span<const Edge>(s.data() + i, n), i);
  }
  static void AddProcessed(std::uint64_t n) {
    Stats().edges_processed.fetch_add(n, kRelaxed);
  }
};

struct AdjacencyKind {
  static constexpr std::uint8_t kTag = 1;
  using Alg = AdjacencyStreamAlgorithm;
  using Stream = AdjacencyStream;
  static std::uint64_t Fingerprint(const Stream& s) {
    return FingerprintAdjacencyStream(s);
  }
  static void Process(Alg& alg, int pass, const Stream& s, std::size_t i) {
    alg.ProcessList(pass, s[i], i);
  }
  static void ProcessBlock(Alg& alg, int pass, const Stream& s, std::size_t i,
                           std::size_t n) {
    // Adjacency algorithms have no batched entry point; deliver per list.
    for (std::size_t j = 0; j < n; ++j) alg.ProcessList(pass, s[i + j], i + j);
  }
  static void AddProcessed(std::uint64_t n) {
    Stats().lists_processed.fetch_add(n, kRelaxed);
  }
};

struct TurnstileKind {
  static constexpr std::uint8_t kTag = 2;
  using Alg = TurnstileStreamAlgorithm;
  using Stream = TurnstileStream;
  static std::uint64_t Fingerprint(const Stream& s) {
    return FingerprintTurnstileStream(s);
  }
  static void Process(Alg& alg, int pass, const Stream& s, std::size_t i) {
    alg.ProcessUpdate(pass, s[i], i);
  }
  static void ProcessBlock(Alg& alg, int pass, const Stream& s, std::size_t i,
                           std::size_t n) {
    alg.ProcessUpdateBlock(
        pass, std::span<const TurnstileUpdate>(s.data() + i, n), i);
  }
  static void AddProcessed(std::uint64_t n) {
    Stats().updates_processed.fetch_add(n, kRelaxed);
  }
};

// Writes one snapshot per the policy. Returns true if a file landed (even
// a deliberately damaged one — corruption faults must be caught on load,
// not hidden at write time); false on (possibly simulated) I/O failure.
template <typename Kind>
bool WriteCheckpoint(typename Kind::Alg& alg, const RunOptions& options,
                     const std::string& path, std::uint64_t fingerprint,
                     std::uint64_t stream_length, std::uint64_t pass,
                     std::uint64_t position, std::uint64_t elements_done,
                     RunOutcome* out) {
  Snapshot snap;
  snap.algorithm_id = std::string(alg.CheckpointId());
  snap.stream_kind = Kind::kTag;
  snap.stream_fingerprint = fingerprint;
  snap.stream_length = stream_length;
  snap.pass = pass;
  snap.position = position;
  snap.elements_processed = elements_done;
  StateWriter w;
  if (!alg.SaveState(w)) return false;
  snap.state = w.Take();

  WriteFault fault;
  if (options.faults != nullptr) fault = options.faults->NextWriteFault();
  std::string error;
  if (!SaveSnapshot(path, snap, &error, &fault)) {
    LOG(WARNING) << "checkpoint write failed: " << error
                 << " (keeping previous snapshot, run continues)";
    ++out->checkpoint_failures;
    Stats().checkpoint_failures.fetch_add(1, kRelaxed);
    return false;
  }
  out->checkpoint_path = path;
  ++out->checkpoints_written;
  Stats().checkpoints_written.fetch_add(1, kRelaxed);
  return true;
}

// Attempts to restore `alg` from options.resume_from. On success sets the
// resume point; on any validation failure logs why and leaves the
// algorithm untouched (restart from scratch).
template <typename Kind>
void TryResume(typename Kind::Alg& alg, const typename Kind::Stream& stream,
               const RunOptions& options, int num_passes,
               std::uint64_t fingerprint, std::uint64_t* start_pass,
               std::uint64_t* start_pos, std::uint64_t* elements_done,
               RunOutcome* out) {
  std::string error;
  std::optional<Snapshot> snap = LoadSnapshot(options.resume_from, &error);
  bool ok = false;
  if (snap.has_value()) {
    if (snap->algorithm_id != alg.CheckpointId()) {
      error = "snapshot is for algorithm '" + snap->algorithm_id +
              "', expected '" + std::string(alg.CheckpointId()) + "'";
    } else if (snap->stream_kind != Kind::kTag) {
      error = "snapshot stream kind mismatch";
    } else if (snap->stream_length != stream.size() ||
               snap->stream_fingerprint != fingerprint) {
      error = "snapshot was taken against a different stream";
    } else if (snap->pass >= static_cast<std::uint64_t>(num_passes) ||
               snap->position > stream.size()) {
      error = "snapshot resume point out of range";
    } else {
      StateReader r(snap->state);
      if (alg.RestoreState(r) && r.AtEnd()) {
        ok = true;
      } else {
        error = "algorithm state blob rejected";
      }
    }
  }
  if (ok) {
    *start_pass = snap->pass;
    *start_pos = snap->position;
    *elements_done = snap->elements_processed;
    out->resumed = true;
    Stats().restores.fetch_add(1, kRelaxed);
  } else {
    LOG(WARNING) << "resume from " << options.resume_from << " rejected: "
                 << error << "; restarting from scratch";
    out->resume_rejected = true;
    Stats().restore_rejects.fetch_add(1, kRelaxed);
  }
}

// The shared options-aware run loop. Completion stats are added only when
// the run finishes, and always as the full-run totals — a killed run
// contributes nothing and a resumed run contributes the same totals as an
// uninterrupted one, keeping the manifest's deterministic section
// identical across the two.
template <typename Kind>
RunOutcome RunWithOptions(typename Kind::Alg& alg,
                          const typename Kind::Stream& stream,
                          const RunOptions& options) {
  RunOutcome out;
  const int num_passes = alg.NumPasses();
  const bool can_checkpoint = !alg.CheckpointId().empty();
  const CheckpointPolicy* policy =
      can_checkpoint ? options.checkpoint : nullptr;

  std::uint64_t fingerprint = 0;
  if (policy != nullptr ||
      (can_checkpoint && !options.resume_from.empty())) {
    fingerprint = Kind::Fingerprint(stream);
  }

  std::uint64_t start_pass = 0;
  std::uint64_t start_pos = 0;
  std::uint64_t elements_done = 0;
  if (can_checkpoint && !options.resume_from.empty()) {
    TryResume<Kind>(alg, stream, options, num_passes, fingerprint,
                    &start_pass, &start_pos, &elements_done, &out);
  }

  std::string path;
  if (policy != nullptr) {
    path = policy->directory + "/" + policy->file_stem + ".ckpt";
  }

  GlobalCheckpointState& global = GlobalCkpt();
  const std::uint64_t global_kill =
      global.active.load(kRelaxed) ? global.opts.kill_after : 0;

  for (int pass = static_cast<int>(start_pass); pass < num_passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    const std::size_t begin =
        pass == static_cast<int>(start_pass)
            ? static_cast<std::size_t>(start_pos)
            : 0;
    // A mid-pass resume skips StartPass: it already ran before the
    // snapshot was taken and its effects are part of the restored state.
    if (begin == 0) alg.StartPass(pass, stream.size());
    for (std::size_t i = begin; i < stream.size(); ++i) {
      Kind::Process(alg, pass, stream, i);
      ++elements_done;
      if (policy != nullptr && policy->every_elements > 0 &&
          elements_done % policy->every_elements == 0) {
        WriteCheckpoint<Kind>(alg, options, path, fingerprint, stream.size(),
                              static_cast<std::uint64_t>(pass), i + 1,
                              elements_done, &out);
      }
      if (options.faults != nullptr &&
          options.faults->OnElementProcessed()) {
        out.completed = false;
        AddPassTime(pass, start);
        return out;
      }
      if (global_kill > 0 &&
          global.elements.fetch_add(1, kRelaxed) + 1 >= global_kill) {
        // Simulated crash: no cleanup, no further output. The checkpoint
        // for this element (if due) is already on disk.
        std::_Exit(kKilledExitCode);
      }
    }
    alg.EndPass(pass);
    AddPassTime(pass, start);
    if (policy != nullptr && policy->at_pass_end && pass + 1 < num_passes) {
      WriteCheckpoint<Kind>(alg, options, path, fingerprint, stream.size(),
                            static_cast<std::uint64_t>(pass) + 1, 0,
                            elements_done, &out);
    }
  }
  MaybeAuditSpace(alg);
  Stats().runs.fetch_add(1, kRelaxed);
  Stats().passes.fetch_add(static_cast<std::uint64_t>(num_passes), kRelaxed);
  Kind::AddProcessed(static_cast<std::uint64_t>(num_passes) * stream.size());
  return out;
}

// The plain overloads route through the options loop only when the
// process-wide checkpoint configuration is active; otherwise they run the
// original tight loop with zero per-element overhead.
template <typename Kind>
void RunPlain(typename Kind::Alg& alg, const typename Kind::Stream& stream) {
  GlobalCheckpointState& global = GlobalCkpt();
  if (global.active.load(kRelaxed)) {
    const std::uint64_t seq = global.run_seq.fetch_add(1, kRelaxed);
    CheckpointPolicy policy;
    policy.directory = global.opts.directory;
    policy.every_elements = global.opts.every_elements;
    policy.at_pass_end = true;
    policy.file_stem = "run-" + std::to_string(seq);
    RunOptions options;
    options.checkpoint = &policy;
    if (global.opts.resume) {
      const std::string path =
          policy.directory + "/" + policy.file_stem + ".ckpt";
      std::ifstream probe(path, std::ios::binary);
      if (probe.good()) options.resume_from = path;
    }
    RunWithOptions<Kind>(alg, stream, options);
    return;
  }

  const int num_passes = alg.NumPasses();
  for (int pass = 0; pass < num_passes; ++pass) {
    const auto start = std::chrono::steady_clock::now();
    alg.StartPass(pass, stream.size());
    // Block delivery (same width as the engine broker): algorithms that
    // override ProcessEdgeBlock get batches; the default forwards per
    // element, keeping this loop equivalent to the historical one.
    constexpr std::size_t kBlock = 4096;
    for (std::size_t i = 0; i < stream.size(); i += kBlock) {
      const std::size_t n = std::min(kBlock, stream.size() - i);
      Kind::ProcessBlock(alg, pass, stream, i, n);
    }
    alg.EndPass(pass);
    AddPassTime(pass, start);
  }
  MaybeAuditSpace(alg);
  Stats().runs.fetch_add(1, kRelaxed);
  Stats().passes.fetch_add(static_cast<std::uint64_t>(num_passes), kRelaxed);
  Kind::AddProcessed(static_cast<std::uint64_t>(num_passes) * stream.size());
}

}  // namespace

void SetSpaceAudit(bool enabled) {
  g_audit_enabled.store(enabled, kRelaxed);
}

bool SpaceAuditEnabled() {
  static const bool from_env = AuditFromEnv();
  return from_env || g_audit_enabled.load(kRelaxed);
}

void SetGlobalCheckpoint(const GlobalCheckpointOptions& options) {
  GlobalCheckpointState& global = GlobalCkpt();
  global.opts = options;
  global.run_seq.store(0, kRelaxed);
  global.elements.store(0, kRelaxed);
  global.active.store(!options.directory.empty(), kRelaxed);
}

bool ApplyCheckpointFlags(FlagParser& flags, int* threads) {
  GlobalCheckpointOptions options;
  options.directory = flags.GetString("checkpoint_dir", "");
  options.every_elements = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, flags.GetInt("checkpoint_every", 0)));
  options.resume = flags.GetBool("resume", false);
  options.kill_after = static_cast<std::uint64_t>(
      std::max<std::int64_t>(0, flags.GetInt("kill_after", 0)));
  if (options.directory.empty()) {
    if (options.every_elements > 0 || options.resume ||
        options.kill_after > 0) {
      LOG(WARNING) << "--checkpoint_every/--resume/--kill_after have no "
                      "effect without --checkpoint_dir";
    }
    SetGlobalCheckpoint(GlobalCheckpointOptions{});
    return false;
  }
  if (threads != nullptr && *threads != 1) {
    LOG(INFO) << "checkpointing needs a deterministic run sequence; "
                 "forcing --threads=1";
    SetDefaultThreads(1);
    *threads = 1;
  }
  std::error_code ec;
  std::filesystem::create_directories(options.directory, ec);
  if (ec) {
    LOG(WARNING) << "cannot create checkpoint directory '"
                 << options.directory << "': " << ec.message();
  }
  SetGlobalCheckpoint(options);
  return true;
}

StreamStats GlobalStreamStats() {
  StreamStats out;
  AtomicStreamStats& stats = Stats();
  out.runs = stats.runs.load(kRelaxed);
  out.passes = stats.passes.load(kRelaxed);
  out.edges_processed = stats.edges_processed.load(kRelaxed);
  out.lists_processed = stats.lists_processed.load(kRelaxed);
  out.updates_processed = stats.updates_processed.load(kRelaxed);
  out.audits_passed = stats.audits_passed.load(kRelaxed);
  out.checkpoints_written = stats.checkpoints_written.load(kRelaxed);
  out.checkpoint_failures = stats.checkpoint_failures.load(kRelaxed);
  out.restores = stats.restores.load(kRelaxed);
  out.restore_rejects = stats.restore_rejects.load(kRelaxed);
  for (int i = 0; i < 4; ++i) {
    out.pass_seconds[i] =
        static_cast<double>(stats.pass_nanos[i].load(kRelaxed)) * 1e-9;
  }
  return out;
}

void ResetStreamStats() {
  AtomicStreamStats& stats = Stats();
  stats.runs.store(0, kRelaxed);
  stats.passes.store(0, kRelaxed);
  stats.edges_processed.store(0, kRelaxed);
  stats.lists_processed.store(0, kRelaxed);
  stats.updates_processed.store(0, kRelaxed);
  stats.audits_passed.store(0, kRelaxed);
  stats.checkpoints_written.store(0, kRelaxed);
  stats.checkpoint_failures.store(0, kRelaxed);
  stats.restores.store(0, kRelaxed);
  stats.restore_rejects.store(0, kRelaxed);
  for (auto& nanos : stats.pass_nanos) nanos.store(0, kRelaxed);
}

void AddExternalRunStats(const ExternalRunStats& s) {
  AtomicStreamStats& stats = Stats();
  stats.runs.fetch_add(s.runs, kRelaxed);
  stats.passes.fetch_add(s.passes, kRelaxed);
  stats.edges_processed.fetch_add(s.edges_processed, kRelaxed);
  stats.lists_processed.fetch_add(s.lists_processed, kRelaxed);
  stats.updates_processed.fetch_add(s.updates_processed, kRelaxed);
  stats.audits_passed.fetch_add(s.audits_passed, kRelaxed);
}

void RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream) {
  RunPlain<EdgeKind>(alg, stream);
}

void RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                        const AdjacencyStream& stream) {
  RunPlain<AdjacencyKind>(alg, stream);
}

RunOutcome RunEdgeStream(EdgeStreamAlgorithm& alg, const EdgeStream& stream,
                         const RunOptions& options) {
  return RunWithOptions<EdgeKind>(alg, stream, options);
}

RunOutcome RunAdjacencyStream(AdjacencyStreamAlgorithm& alg,
                              const AdjacencyStream& stream,
                              const RunOptions& options) {
  return RunWithOptions<AdjacencyKind>(alg, stream, options);
}

void RunTurnstileStream(TurnstileStreamAlgorithm& alg,
                        const TurnstileStream& stream) {
  RunPlain<TurnstileKind>(alg, stream);
}

RunOutcome RunTurnstileStream(TurnstileStreamAlgorithm& alg,
                              const TurnstileStream& stream,
                              const RunOptions& options) {
  return RunWithOptions<TurnstileKind>(alg, stream, options);
}

}  // namespace cyclestream
