#include "stream/order.h"

#include <algorithm>
#include <numeric>

namespace cyclestream {

EdgeStream MakeRandomOrderStream(const EdgeList& edges, Rng& rng) {
  EdgeStream stream = edges.edges();
  rng.Shuffle(stream);
  return stream;
}

EdgeStream MakeArbitraryOrderStream(const EdgeList& edges, ArbitraryOrder kind,
                                    Rng& rng) {
  EdgeStream stream = edges.edges();  // Already sorted (canonical).
  switch (kind) {
    case ArbitraryOrder::kSorted:
      break;
    case ArbitraryOrder::kReverseSorted:
      std::reverse(stream.begin(), stream.end());
      break;
    case ArbitraryOrder::kShuffled:
      rng.Shuffle(stream);
      break;
  }
  return stream;
}

AdjacencyStream MakeAdjacencyStream(const Graph& g, Rng& rng) {
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  AdjacencyStream stream;
  stream.reserve(order.size());
  for (VertexId v : order) {
    AdjacencyList list;
    list.vertex = v;
    const auto nbrs = g.Neighbors(v);
    list.neighbors.assign(nbrs.begin(), nbrs.end());
    rng.Shuffle(list.neighbors);
    stream.push_back(std::move(list));
  }
  return stream;
}

AdjacencyStream MakeAdjacencyStreamById(const Graph& g) {
  AdjacencyStream stream;
  stream.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    AdjacencyList list;
    list.vertex = v;
    const auto nbrs = g.Neighbors(v);
    list.neighbors.assign(nbrs.begin(), nbrs.end());
    stream.push_back(std::move(list));
  }
  return stream;
}

}  // namespace cyclestream
