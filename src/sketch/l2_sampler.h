#ifndef CYCLESTREAM_SKETCH_L2_SAMPLER_H_
#define CYCLESTREAM_SKETCH_L2_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hash/kwise_bank.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"

namespace cyclestream {

class StateWriter;
class StateReader;

/// Approximate ℓ₂ sampler in the style of Jowhari–Saglam–Tardos: draws a
/// coordinate i with probability ≈ x_i² / F₂(x) from a turnstile stream of
/// (key, delta) updates, and reports an estimate of x_i.
///
/// Mechanism (per independent copy): each coordinate is scaled by
/// z_i = x_i / √u_i where u_i ∈ (0,1) is a hash of i. Then
/// P[z_i² ≥ F₂(x)/ε] = P[u_i ≤ ε·x_i²/F₂] = ε·x_i²/F₂ — so conditioned on a
/// copy producing exactly one coordinate above the threshold, that
/// coordinate is an ℓ₂ sample. A CountSketch of z recovers the passing
/// coordinate; an AMS sketch of x supplies F₂. Running O(ε⁻¹·log(1/δ))
/// copies makes at least one succeed with probability 1-δ.
///
/// Candidate tracking: recovering argmax|z| from a CountSketch needs a
/// candidate set; we track, per copy, the key whose sketched |ẑ| is largest
/// at any update touching it (standard practical heavy-hitter bookkeeping;
/// exhaustive decoding would give the same answer at higher cost).
///
/// Hot-path layout: the per-copy scaling hashes u_i live in one
/// KWiseHashBank (one batched sweep per update instead of one hash call per
/// copy), and each copy's sketch touch is a fused UpdateAndQuery (one round
/// of bucket/sign hashing instead of two). Outputs are bit-identical to the
/// scalar per-copy formulation.
class L2Sampler {
 public:
  struct Config {
    std::size_t copies = 64;        // Independent repetition count.
    std::size_t sketch_depth = 5;   // CountSketch rows per copy.
    std::size_t sketch_width = 256; // CountSketch buckets per row.
    double epsilon = 0.25;          // Threshold slack (smaller = purer).
  };

  L2Sampler(const Config& config, std::uint64_t seed);

  /// x[key] += delta.
  void Update(std::uint64_t key, double delta);

  /// x[keys[b]] += delta for every key of the block. Batches the F₂ sketch
  /// and the scaling-hash evaluations through the block kernels; the
  /// per-copy CountSketch touches stay sequential per key because each
  /// UpdateAndQuery reads state the previous key wrote. Final sampler state
  /// (and thus SaveState bytes) is identical to per-key Update calls. Note
  /// the candidate bookkeeping makes the sampler order-dependent, so it is
  /// NOT mergeable — no MergeFrom, and ShardedSketch must not wrap it.
  void UpdateBlock(std::span<const std::uint64_t> keys, double delta);

  struct Sample {
    std::uint64_t key = 0;
    double value_estimate = 0.0;  // Estimate of x[key].
  };

  /// Returns a sample from the first successful copy, or nullopt if every
  /// copy failed (no coordinate passed its threshold).
  std::optional<Sample> Draw() const;

  /// All successful copies' samples (useful when many samples are needed;
  /// copies are independent).
  std::vector<Sample> DrawAll() const;

  /// Estimate of F₂(x) from the shared AMS sketch.
  double EstimateF2() const { return f2_.Estimate(); }

  std::size_t SpaceWords() const;

  /// Checkpoint serialization: per-copy sketches and candidates plus the
  /// shared F₂ sketch round-trip; config and the scaling bank are written
  /// for verification and a mismatch is rejected without mutating.
  void SaveState(StateWriter& w) const;
  bool RestoreState(StateReader& r);

 private:
  struct Copy {
    CountSketch sketch;     // Sketch of the scaled vector z.
    std::uint64_t best_key = 0;
    double best_z = 0.0;    // |ẑ(best_key)| at its last touch.
    bool has_candidate = false;
  };

  /// 1/√u for copy `i` at `key` (clamped away from u = 0).
  double ScaledWeight(std::size_t i, std::uint64_t key) const;
  static double ClampedScale(double u);

  Config config_;
  KWiseHashBank u_bank_;  // Scaling randomness u_i per copy (k=2 suffices).
  std::vector<Copy> copies_;
  AmsF2 f2_;
  std::vector<double> unit_scratch_;  // Per-update u values, all copies.
  mutable std::vector<std::uint64_t> block_unit_scratch_;  // UpdateBlock.
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_L2_SAMPLER_H_
