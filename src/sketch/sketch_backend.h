#ifndef CYCLESTREAM_SKETCH_SKETCH_BACKEND_H_
#define CYCLESTREAM_SKETCH_SKETCH_BACKEND_H_

#include <optional>
#include <string_view>

namespace cyclestream {

/// Which update path a sketch-backed query drives.
///
/// kScalar is the historical per-edge path: each stream element calls
/// Update(key, delta) as it arrives. kBlock batches the broker's edge
/// blocks through the UpdateBlock entry points (hash/kwise_kernels block
/// evaluation plus optional per-thread shards — see sketch/sharded.h).
/// Both backends produce bit-identical sketch state; the choice is purely
/// a throughput knob, which is why it is never recorded in deterministic
/// manifests.
enum class SketchBackend { kScalar, kBlock };

inline const char* SketchBackendName(SketchBackend b) {
  return b == SketchBackend::kBlock ? "block" : "scalar";
}

inline std::optional<SketchBackend> ParseSketchBackend(std::string_view s) {
  if (s == "scalar") return SketchBackend::kScalar;
  if (s == "block") return SketchBackend::kBlock;
  return std::nullopt;
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_SKETCH_BACKEND_H_
