#include "sketch/count_sketch.h"

#include <algorithm>
#include <bit>

#include "hash/rng.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

CountSketch::CountSketch(std::size_t depth, std::size_t width,
                         std::uint64_t seed)
    : depth_(depth), width_(width) {
  CHECK_GE(depth, 1u);
  CHECK_GE(width, 1u);
  if ((width & (width - 1)) == 0) mask_ = width - 1;
  std::uint64_t s = seed;
  std::vector<std::uint64_t> bucket_seeds(depth);
  std::vector<std::uint64_t> sign_seeds(depth);
  for (std::size_t r = 0; r < depth; ++r) {
    // Same interleaved seed chain as the historical per-row construction:
    // bucket seed first, then sign seed, row by row.
    bucket_seeds[r] = SplitMix64(s);
    sign_seeds[r] = SplitMix64(s);
  }
  bucket_hashes_ = KWiseHashBank(/*k=*/2, bucket_seeds);
  sign_hashes_ = KWiseHashBank(/*k=*/4, sign_seeds);
  table_.assign(depth * width, 0.0);
  bucket_scratch_.resize(depth);
  sign_scratch_.resize(depth);
  row_scratch_.resize(depth);
}

void CountSketch::HashKey(std::uint64_t key) const {
  bucket_hashes_.EvalAll(key, bucket_scratch_.data());
  sign_hashes_.EvalAll(key, sign_scratch_.data());
  if (mask_ != 0) {
    for (std::size_t r = 0; r < depth_; ++r) bucket_scratch_[r] &= mask_;
  } else {
    for (std::size_t r = 0; r < depth_; ++r) bucket_scratch_[r] %= width_;
  }
}

void CountSketch::Update(std::uint64_t key, double delta) {
  HashKey(key);
  for (std::size_t r = 0; r < depth_; ++r) {
    table_[r * width_ + bucket_scratch_[r]] +=
        (sign_scratch_[r] & 1ULL) ? delta : -delta;
  }
}

void CountSketch::UpdateBlock(std::span<const std::uint64_t> keys,
                              double delta) {
  // Bound the hash scratch to a fixed chunk of keys so a 4096-edge broker
  // block with depth 5 stays within ~2×40 KiB regardless of block size.
  constexpr std::size_t kChunk = 1024;
  while (!keys.empty()) {
    const std::size_t n = std::min(kChunk, keys.size());
    const std::span<const std::uint64_t> chunk = keys.first(n);
    block_bucket_scratch_.resize(n * depth_);
    block_sign_scratch_.resize(n * depth_);
    bucket_hashes_.EvalBlock(chunk, block_bucket_scratch_.data());
    sign_hashes_.EvalBlock(chunk, block_sign_scratch_.data());
    // Branchless sign select: the sign bits are random, so a `? delta :
    // -delta` ternary mispredicts half the time; flipping the IEEE sign bit
    // directly produces the identical double without a branch.
    const std::uint64_t delta_bits = std::bit_cast<std::uint64_t>(delta);
    for (std::size_t b = 0; b < n; ++b) {
      const std::uint64_t* buckets = block_bucket_scratch_.data() + b * depth_;
      const std::uint64_t* signs = block_sign_scratch_.data() + b * depth_;
      if (mask_ != 0) {
        for (std::size_t r = 0; r < depth_; ++r) {
          const std::uint64_t bucket = buckets[r] & mask_;
          const double signed_delta = std::bit_cast<double>(
              delta_bits ^ (((signs[r] & 1ULL) ^ 1ULL) << 63));
          table_[r * width_ + bucket] += signed_delta;
        }
      } else {
        for (std::size_t r = 0; r < depth_; ++r) {
          const std::uint64_t bucket = buckets[r] % width_;
          const double signed_delta = std::bit_cast<double>(
              delta_bits ^ (((signs[r] & 1ULL) ^ 1ULL) << 63));
          table_[r * width_ + bucket] += signed_delta;
        }
      }
    }
    keys = keys.subspan(n);
  }
}

void CountSketch::MergeFrom(const CountSketch& other) {
  CHECK_EQ(depth_, other.depth_);
  CHECK_EQ(width_, other.width_);
  for (std::size_t i = 0; i < table_.size(); ++i) {
    table_[i] += other.table_[i];
  }
}

double CountSketch::MedianOfRows() const {
  std::nth_element(row_scratch_.begin(),
                   row_scratch_.begin() + row_scratch_.size() / 2,
                   row_scratch_.end());
  return row_scratch_[row_scratch_.size() / 2];
}

double CountSketch::Query(std::uint64_t key) const {
  HashKey(key);
  for (std::size_t r = 0; r < depth_; ++r) {
    const double cell = table_[r * width_ + bucket_scratch_[r]];
    row_scratch_[r] = (sign_scratch_[r] & 1ULL) ? cell : -cell;
  }
  return MedianOfRows();
}

double CountSketch::UpdateAndQuery(std::uint64_t key, double delta) {
  HashKey(key);
  for (std::size_t r = 0; r < depth_; ++r) {
    double& cell = table_[r * width_ + bucket_scratch_[r]];
    if (sign_scratch_[r] & 1ULL) {
      cell += delta;
      row_scratch_[r] = cell;
    } else {
      cell += -delta;
      row_scratch_[r] = -cell;
    }
  }
  return MedianOfRows();
}

void CountSketch::SaveState(StateWriter& w) const {
  w.Size(depth_);
  w.Size(width_);
  bucket_hashes_.SaveState(w);
  sign_hashes_.SaveState(w);
  w.Vec(table_);
}

bool CountSketch::RestoreState(StateReader& r) {
  if (r.Size() != depth_ || r.Size() != width_) return r.Fail();
  if (!bucket_hashes_.RestoreState(r) || !sign_hashes_.RestoreState(r)) {
    return false;
  }
  std::vector<double> table;
  if (!r.Vec(&table)) return false;
  if (table.size() != table_.size()) return r.Fail();
  table_ = std::move(table);
  return true;
}

}  // namespace cyclestream
