#include "sketch/count_sketch.h"

#include <algorithm>

#include "hash/rng.h"
#include "util/check.h"

namespace cyclestream {

CountSketch::CountSketch(std::size_t depth, std::size_t width,
                         std::uint64_t seed)
    : depth_(depth), width_(width) {
  CHECK_GE(depth, 1u);
  CHECK_GE(width, 1u);
  std::uint64_t s = seed;
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (std::size_t r = 0; r < depth; ++r) {
    bucket_hashes_.emplace_back(/*k=*/2, SplitMix64(s));
    sign_hashes_.emplace_back(/*k=*/4, SplitMix64(s));
  }
  table_.assign(depth * width, 0.0);
}

void CountSketch::Update(std::uint64_t key, double delta) {
  for (std::size_t r = 0; r < depth_; ++r) {
    const std::size_t bucket = bucket_hashes_[r](key) % width_;
    const double sign = static_cast<double>(sign_hashes_[r].Sign(key));
    table_[r * width_ + bucket] += sign * delta;
  }
}

double CountSketch::Query(std::uint64_t key) const {
  std::vector<double> row_estimates(depth_);
  for (std::size_t r = 0; r < depth_; ++r) {
    const std::size_t bucket = bucket_hashes_[r](key) % width_;
    const double sign = static_cast<double>(sign_hashes_[r].Sign(key));
    row_estimates[r] = sign * table_[r * width_ + bucket];
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + row_estimates.size() / 2,
                   row_estimates.end());
  return row_estimates[row_estimates.size() / 2];
}

}  // namespace cyclestream
