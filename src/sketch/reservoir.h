#ifndef CYCLESTREAM_SKETCH_RESERVOIR_H_
#define CYCLESTREAM_SKETCH_RESERVOIR_H_

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "hash/rng.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

/// Classic reservoir sampler: maintains a uniform sample (without
/// replacement) of fixed capacity from a stream of unknown length. This is
/// the storage discipline behind the TRIEST baseline.
template <typename T>
class Reservoir {
 public:
  Reservoir(std::size_t capacity, Rng rng)
      : capacity_(capacity), rng_(rng) {
    CHECK_GE(capacity, 1u);
    items_.reserve(capacity);
  }

  /// Result of offering one element. The evicted item is carried in an
  /// optional so T need not be default-constructible (edge-pair wrappers
  /// without default ctors work).
  struct Offer {
    bool inserted = false;
    bool evicted = false;
    std::optional<T> evicted_item;  // Engaged exactly when evicted.
  };

  /// Offers the t-th stream element (t counts from 1 internally).
  Offer Add(const T& item) {
    ++seen_;
    Offer result;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      result.inserted = true;
      return result;
    }
    // Keep with probability capacity/seen, evicting a uniform victim.
    if (rng_.UniformDouble() <
        static_cast<double>(capacity_) / static_cast<double>(seen_)) {
      const std::size_t victim =
          static_cast<std::size_t>(rng_.UniformInt(capacity_));
      result.evicted = true;
      result.evicted_item.emplace(items_[victim]);
      items_[victim] = item;
      result.inserted = true;
    }
    return result;
  }

  const std::vector<T>& items() const { return items_; }
  std::size_t seen() const { return seen_; }
  std::size_t capacity() const { return capacity_; }

  /// Checkpoint serialization. The element codec is supplied by the caller
  /// (T is arbitrary): `write_item(w, item)` and `read_item(r) -> T`.
  /// Restores read-then-commit: a malformed blob leaves the sampler
  /// untouched.
  template <typename WriteItem>
  void SaveState(StateWriter& w, WriteItem write_item) const {
    w.Size(capacity_);
    rng_.SaveState(w);
    w.Size(seen_);
    w.Size(items_.size());
    for (const T& item : items_) write_item(w, item);
  }
  template <typename ReadItem>
  bool RestoreState(StateReader& r, ReadItem read_item) {
    if (r.Size() != capacity_) return r.Fail();
    Rng rng = rng_;
    if (!rng.RestoreState(r)) return false;
    const std::size_t seen = r.Size();
    const std::size_t n = r.Size();
    if (!r.ok() || n > capacity_ || n > seen) return r.Fail();
    std::vector<T> items;
    items.reserve(capacity_);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(read_item(r));
      if (!r.ok()) return false;
    }
    rng_ = rng;
    seen_ = seen;
    items_ = std::move(items);
    return true;
  }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::size_t seen_ = 0;
  std::vector<T> items_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_RESERVOIR_H_
