#ifndef CYCLESTREAM_SKETCH_RESERVOIR_H_
#define CYCLESTREAM_SKETCH_RESERVOIR_H_

#include <cstddef>
#include <vector>

#include "hash/rng.h"
#include "util/check.h"

namespace cyclestream {

/// Classic reservoir sampler: maintains a uniform sample (without
/// replacement) of fixed capacity from a stream of unknown length. This is
/// the storage discipline behind the TRIEST baseline.
template <typename T>
class Reservoir {
 public:
  Reservoir(std::size_t capacity, Rng rng)
      : capacity_(capacity), rng_(rng) {
    CHECK_GE(capacity, 1u);
    items_.reserve(capacity);
  }

  /// Result of offering one element.
  struct Offer {
    bool inserted = false;
    bool evicted = false;
    T evicted_item{};  // Valid only when evicted.
  };

  /// Offers the t-th stream element (t counts from 1 internally).
  Offer Add(const T& item) {
    ++seen_;
    Offer result;
    if (items_.size() < capacity_) {
      items_.push_back(item);
      result.inserted = true;
      return result;
    }
    // Keep with probability capacity/seen, evicting a uniform victim.
    if (rng_.UniformDouble() <
        static_cast<double>(capacity_) / static_cast<double>(seen_)) {
      const std::size_t victim =
          static_cast<std::size_t>(rng_.UniformInt(capacity_));
      result.evicted = true;
      result.evicted_item = items_[victim];
      items_[victim] = item;
      result.inserted = true;
    }
    return result;
  }

  const std::vector<T>& items() const { return items_; }
  std::size_t seen() const { return seen_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  Rng rng_;
  std::size_t seen_ = 0;
  std::vector<T> items_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_RESERVOIR_H_
