#include "sketch/ams_f2.h"

#include "hash/rng.h"
#include "sketch/median_of_means.h"
#include "util/check.h"

namespace cyclestream {

AmsF2::AmsF2(std::size_t groups, std::size_t per_group, std::uint64_t seed)
    : groups_(groups) {
  CHECK_GE(groups, 1u);
  CHECK_GE(per_group, 1u);
  const std::size_t total = groups * per_group;
  std::uint64_t s = seed;
  signs_.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    signs_.emplace_back(/*k=*/4, SplitMix64(s));
  }
  counters_.assign(total, 0.0);
}

void AmsF2::Update(std::uint64_t key, double delta) {
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += static_cast<double>(signs_[i].Sign(key)) * delta;
  }
}

double AmsF2::Estimate() const {
  std::vector<double> squares(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    squares[i] = counters_[i] * counters_[i];
  }
  return MedianOfMeans(squares, groups_);
}

}  // namespace cyclestream
