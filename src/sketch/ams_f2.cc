#include "sketch/ams_f2.h"

#include "hash/rng.h"
#include "sketch/median_of_means.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

AmsF2::AmsF2(std::size_t groups, std::size_t per_group, std::uint64_t seed)
    : groups_(groups) {
  CHECK_GE(groups, 1u);
  CHECK_GE(per_group, 1u);
  const std::size_t total = groups * per_group;
  std::uint64_t s = seed;
  std::vector<std::uint64_t> seeds(total);
  for (std::size_t i = 0; i < total; ++i) seeds[i] = SplitMix64(s);
  signs_ = KWiseHashBank(/*k=*/4, seeds);
  counters_.assign(total, 0.0);
}

void AmsF2::Update(std::uint64_t key, double delta) {
  signs_.AccumulateSigned(key, delta, counters_.data());
}

void AmsF2::UpdateBlock(std::span<const std::uint64_t> keys, double delta) {
  signs_.AccumulateSignedBlock(keys, delta, counters_.data());
}

void AmsF2::MergeFrom(const AmsF2& other) {
  CHECK_EQ(groups_, other.groups_);
  CHECK_EQ(counters_.size(), other.counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

double AmsF2::Estimate() const {
  square_scratch_.resize(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    square_scratch_[i] = counters_[i] * counters_[i];
  }
  return MedianOfMeans(square_scratch_, groups_);
}

void AmsF2::SaveState(StateWriter& w) const {
  w.Size(groups_);
  signs_.SaveState(w);
  w.Vec(counters_);
}

bool AmsF2::RestoreState(StateReader& r) {
  if (r.Size() != groups_) return r.Fail();
  if (!signs_.RestoreState(r)) return false;
  std::vector<double> counters;
  if (!r.Vec(&counters)) return false;
  if (counters.size() != counters_.size()) return r.Fail();
  counters_ = std::move(counters);
  return true;
}

}  // namespace cyclestream
