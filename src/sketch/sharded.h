#ifndef CYCLESTREAM_SKETCH_SHARDED_H_
#define CYCLESTREAM_SKETCH_SHARDED_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/parallel.h"

namespace cyclestream {

class StateWriter;
class StateReader;

/// Contiguous slice [begin, end) of a `count`-key block owned by shard `s`
/// of `shards`. Slices partition the block and preserve key order within
/// each shard.
struct ShardSlice {
  std::size_t begin = 0;
  std::size_t end = 0;
};

inline ShardSlice MakeShardSlice(std::size_t count, std::size_t shards,
                                 std::size_t s) {
  return ShardSlice{s * count / shards, (s + 1) * count / shards};
}

/// Splits one logical sketch into per-thread shards that absorb disjoint
/// slices of each update block in parallel and merge by addition.
///
/// Determinism contract (DESIGN.md §13): the wrapped sketch must be
/// *linear* — its state is a vector of double counters, each update adds
/// ±delta (or delta·scale fixed per key) into some counters, and
/// Sketch::MergeFrom adds states element-wise. When every delta is
/// integer-valued (all current engine queries use ±1 edge deltas) the
/// counter sums are integers below 2⁵³, IEEE addition on them is exact and
/// therefore associative, and the merged state is bit-identical to a
/// single-threaded run regardless of shard count or SIMD tier. The merge
/// itself always walks shards in fixed index order 0..W−1 anyway, so even
/// non-integer deltas give runs that are reproducible for a fixed shard
/// count.
///
/// All shards are built from the same factory, hence share seeds: shard s
/// is the same estimator fed a sub-stream, and addition recombines the
/// sub-streams. Serialization is canonical merge-then-save: SaveState
/// writes the *merged* state only, so a checkpoint taken at any shard count
/// restores into any other shard count (the restored state lands in shard 0
/// and the rest reset to factory-fresh zero states).
template <typename Sketch>
class ShardedSketch {
 public:
  ShardedSketch(std::function<Sketch()> factory, int shards)
      : factory_(std::move(factory)) {
    CHECK_GE(shards, 1);
    shards_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) shards_.push_back(factory_());
  }

  std::size_t shard_count() const { return shards_.size(); }

  /// x[keys[b]] += delta across the shards: shard s takes slice s of the
  /// block. With one shard this is a plain UpdateBlock (no pool dispatch).
  void UpdateBlock(std::span<const std::uint64_t> keys, double delta) {
    if (keys.empty()) return;
    const std::size_t W = shards_.size();
    if (W == 1) {
      shards_[0].UpdateBlock(keys, delta);
      return;
    }
    ParallelFor(W, [&](std::size_t s) {
      const ShardSlice slice = MakeShardSlice(keys.size(), W, s);
      if (slice.begin < slice.end) {
        shards_[s].UpdateBlock(keys.subspan(slice.begin, slice.end - slice.begin),
                               delta);
      }
    });
  }

  /// The merged logical sketch: shard 0's state plus every other shard's,
  /// added in fixed index order. Cold path — copies shard 0.
  Sketch Merged() const {
    Sketch merged = shards_[0];
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      merged.MergeFrom(shards_[s]);
    }
    return merged;
  }

  /// Canonical serialization: merge-then-save (see class comment).
  void SaveState(StateWriter& w) const { Merged().SaveState(w); }

  /// Restores a canonical (merged) snapshot: shard 0 adopts it, the other
  /// shards reset to factory-fresh (zero) states.
  bool RestoreState(StateReader& r) {
    Sketch restored = factory_();
    if (!restored.RestoreState(r)) return false;
    shards_[0] = std::move(restored);
    for (std::size_t s = 1; s < shards_.size(); ++s) shards_[s] = factory_();
    return true;
  }

 private:
  std::function<Sketch()> factory_;
  std::vector<Sketch> shards_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_SHARDED_H_
