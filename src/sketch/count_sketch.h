#ifndef CYCLESTREAM_SKETCH_COUNT_SKETCH_H_
#define CYCLESTREAM_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "hash/kwise.h"

namespace cyclestream {

/// CountSketch (Charikar–Chen–Farach-Colton): `depth` rows of `width`
/// buckets. Each row hashes a key to a bucket (2-wise) and a sign (4-wise);
/// Query returns the median over rows of sign·bucket, an unbiased estimate
/// of x[key] with error O(√(F₂/width)) per row. Supports turnstile updates.
class CountSketch {
 public:
  CountSketch(std::size_t depth, std::size_t width, std::uint64_t seed);

  /// x[key] += delta.
  void Update(std::uint64_t key, double delta);

  /// Median-over-rows point estimate of x[key].
  double Query(std::uint64_t key) const;

  /// Space in words: counters plus hash coefficients.
  std::size_t SpaceWords() const {
    return table_.size() + (bucket_hashes_.size() + sign_hashes_.size()) * 4;
  }

  std::size_t depth() const { return depth_; }
  std::size_t width() const { return width_; }

 private:
  std::size_t depth_;
  std::size_t width_;
  std::vector<KWiseHash> bucket_hashes_;  // One per row (2-wise).
  std::vector<KWiseHash> sign_hashes_;    // One per row (4-wise).
  std::vector<double> table_;             // depth × width, row-major.
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_COUNT_SKETCH_H_
