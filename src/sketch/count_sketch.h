#ifndef CYCLESTREAM_SKETCH_COUNT_SKETCH_H_
#define CYCLESTREAM_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hash/kwise_bank.h"

namespace cyclestream {

class StateWriter;
class StateReader;

/// CountSketch (Charikar–Chen–Farach-Colton): `depth` rows of `width`
/// buckets. Each row hashes a key to a bucket (2-wise) and a sign (4-wise);
/// Query returns the median over rows of sign·bucket, an unbiased estimate
/// of x[key] with error O(√(F₂/width)) per row. Supports turnstile updates.
///
/// The per-row bucket and sign hashes live in two KWiseHashBanks so an
/// update is two batched sweeps instead of 2·depth scalar hash calls. When
/// `width` is a power of two the bucket reduction uses a mask instead of a
/// division — bit-identical, since h % 2^b == h & (2^b − 1). Query and
/// UpdateAndQuery use internal scratch buffers, so an instance must not be
/// shared across threads without external synchronization.
class CountSketch {
 public:
  CountSketch(std::size_t depth, std::size_t width, std::uint64_t seed);

  /// x[key] += delta.
  void Update(std::uint64_t key, double delta);

  /// x[keys[b]] += delta for every key of the block, in key order. Hashes
  /// the whole block through both banks at once (chunked to bound scratch),
  /// then applies the bucket updates scalar, row-ascending per key — the
  /// exact IEEE addition sequence the per-key loop issues.
  void UpdateBlock(std::span<const std::uint64_t> keys, double delta);

  /// Adds `other`'s table into this sketch. Both must share (depth, width,
  /// seed); see AmsF2::MergeFrom for the determinism contract.
  void MergeFrom(const CountSketch& other);

  /// Median-over-rows point estimate of x[key].
  double Query(std::uint64_t key) const;

  /// Update followed by Query of the same key, sharing one round of hash
  /// evaluations. Exactly equal to Update(key, delta); Query(key).
  double UpdateAndQuery(std::uint64_t key, double delta);

  /// Space in words: counters plus hash coefficients (4 words per row-hash,
  /// the historical accounting — kept so reported space is unchanged).
  std::size_t SpaceWords() const { return table_.size() + 8 * depth_; }

  std::size_t depth() const { return depth_; }
  std::size_t width() const { return width_; }

  /// Checkpoint serialization: the counter table round-trips; shape and
  /// hash banks are written for verification and RestoreState rejects a
  /// mismatched snapshot without mutating.
  void SaveState(StateWriter& w) const;
  bool RestoreState(StateReader& r);

 private:
  /// Buckets/signs for `key` into the scratch arrays; returns nothing —
  /// bucket_scratch_[r] is the row-r bucket index, sign_scratch_[r] the hash
  /// value whose low bit is the sign.
  void HashKey(std::uint64_t key) const;

  /// Median over row_scratch_[0..depth); clobbers row_scratch_.
  double MedianOfRows() const;

  std::size_t depth_;
  std::size_t width_;
  std::uint64_t mask_ = 0;             // width−1 when width is a power of 2.
  KWiseHashBank bucket_hashes_;        // One per row (2-wise).
  KWiseHashBank sign_hashes_;          // One per row (4-wise).
  std::vector<double> table_;          // depth × width, row-major.
  mutable std::vector<std::uint64_t> bucket_scratch_;
  mutable std::vector<std::uint64_t> sign_scratch_;
  mutable std::vector<double> row_scratch_;
  // Block scratch: one chunk of hashed buckets/signs (UpdateBlock).
  mutable std::vector<std::uint64_t> block_bucket_scratch_;
  mutable std::vector<std::uint64_t> block_sign_scratch_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_COUNT_SKETCH_H_
