#ifndef CYCLESTREAM_SKETCH_MEDIAN_OF_MEANS_H_
#define CYCLESTREAM_SKETCH_MEDIAN_OF_MEANS_H_

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace cyclestream {

/// Median-of-means combiner: `estimates` holds groups · per_group basic
/// estimates laid out group-major; returns the median of the group means.
/// The standard amplification: means shrink variance, the median boosts the
/// success probability exponentially in the number of groups.
inline double MedianOfMeans(const std::vector<double>& estimates,
                            std::size_t groups) {
  CHECK_GE(groups, 1u);
  CHECK_EQ(estimates.size() % groups, 0u);
  const std::size_t per_group = estimates.size() / groups;
  CHECK_GE(per_group, 1u);
  std::vector<double> means(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    double sum = 0.0;
    for (std::size_t i = 0; i < per_group; ++i) {
      sum += estimates[g * per_group + i];
    }
    means[g] = sum / static_cast<double>(per_group);
  }
  std::nth_element(means.begin(), means.begin() + means.size() / 2,
                   means.end());
  return means[means.size() / 2];
}

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_MEDIAN_OF_MEANS_H_
