#include "sketch/l2_sampler.h"

#include <cmath>

#include "hash/rng.h"
#include "util/check.h"

namespace cyclestream {

L2Sampler::L2Sampler(const Config& config, std::uint64_t seed)
    : config_(config),
      f2_(/*groups=*/9, /*per_group=*/64, seed ^ 0xf2f2f2f2ULL) {
  CHECK_GE(config.copies, 1u);
  CHECK_GT(config.epsilon, 0.0);
  std::uint64_t s = seed;
  copies_.reserve(config.copies);
  for (std::size_t c = 0; c < config.copies; ++c) {
    copies_.push_back(Copy{
        KWiseHash(/*k=*/2, SplitMix64(s)),
        CountSketch(config.sketch_depth, config.sketch_width, SplitMix64(s)),
        0, 0.0, false});
  }
}

double L2Sampler::ScaledWeight(const Copy& copy, std::uint64_t key) const {
  // u in (0, 1]; clamp away from 0 so 1/√u stays finite.
  double u = copy.u_hash.ToUnit(key);
  if (u < 1e-12) u = 1e-12;
  return 1.0 / std::sqrt(u);
}

void L2Sampler::Update(std::uint64_t key, double delta) {
  f2_.Update(key, delta);
  for (Copy& copy : copies_) {
    const double scale = ScaledWeight(copy, key);
    copy.sketch.Update(key, delta * scale);
    const double z = std::abs(copy.sketch.Query(key));
    // Track the largest sketched |z|; refresh the stored value whenever the
    // current best key is touched again (its magnitude may have changed).
    if (!copy.has_candidate || z > copy.best_z || key == copy.best_key) {
      copy.best_key = key;
      copy.best_z = z;
      copy.has_candidate = true;
    }
  }
}

std::vector<L2Sampler::Sample> L2Sampler::DrawAll() const {
  std::vector<Sample> samples;
  const double f2 = std::max(EstimateF2(), 0.0);
  const double threshold = std::sqrt(f2 / config_.epsilon);
  for (const Copy& copy : copies_) {
    if (!copy.has_candidate) continue;
    const double z = std::abs(copy.sketch.Query(copy.best_key));
    if (z >= threshold && threshold > 0.0) {
      const double scale = ScaledWeight(copy, copy.best_key);
      samples.push_back(Sample{copy.best_key, z / scale});
    }
  }
  return samples;
}

std::optional<L2Sampler::Sample> L2Sampler::Draw() const {
  auto all = DrawAll();
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::size_t L2Sampler::SpaceWords() const {
  std::size_t words = f2_.SpaceWords();
  for (const Copy& copy : copies_) {
    words += copy.sketch.SpaceWords() + copy.u_hash.SpaceWords() + 2;
  }
  return words;
}

}  // namespace cyclestream
