#include "sketch/l2_sampler.h"

#include <algorithm>
#include <cmath>

#include "hash/rng.h"
#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

L2Sampler::L2Sampler(const Config& config, std::uint64_t seed)
    : config_(config),
      f2_(/*groups=*/9, /*per_group=*/64, seed ^ 0xf2f2f2f2ULL) {
  CHECK_GE(config.copies, 1u);
  CHECK_GT(config.epsilon, 0.0);
  std::uint64_t s = seed;
  std::vector<std::uint64_t> u_seeds(config.copies);
  copies_.reserve(config.copies);
  for (std::size_t c = 0; c < config.copies; ++c) {
    // Same seed chain as the historical per-copy construction: the scaling
    // hash draws first, then the copy's sketch.
    u_seeds[c] = SplitMix64(s);
    copies_.push_back(Copy{
        CountSketch(config.sketch_depth, config.sketch_width, SplitMix64(s)),
        0, 0.0, false});
  }
  u_bank_ = KWiseHashBank(/*k=*/2, u_seeds);
  unit_scratch_.resize(config.copies);
}

double L2Sampler::ClampedScale(double u) {
  // u in (0, 1]; clamp away from 0 so 1/√u stays finite.
  if (u < 1e-12) u = 1e-12;
  return 1.0 / std::sqrt(u);
}

double L2Sampler::ScaledWeight(std::size_t i, std::uint64_t key) const {
  return ClampedScale(u_bank_.ToUnit(i, key));
}

void L2Sampler::Update(std::uint64_t key, double delta) {
  f2_.Update(key, delta);
  u_bank_.ToUnitAll(key, unit_scratch_.data());
  for (std::size_t c = 0; c < copies_.size(); ++c) {
    Copy& copy = copies_[c];
    const double scale = ClampedScale(unit_scratch_[c]);
    const double z = std::abs(copy.sketch.UpdateAndQuery(key, delta * scale));
    // Track the largest sketched |z|; refresh the stored value whenever the
    // current best key is touched again (its magnitude may have changed).
    if (!copy.has_candidate || z > copy.best_z || key == copy.best_key) {
      copy.best_key = key;
      copy.best_z = z;
      copy.has_candidate = true;
    }
  }
}

void L2Sampler::UpdateBlock(std::span<const std::uint64_t> keys,
                            double delta) {
  f2_.UpdateBlock(keys, delta);
  constexpr std::size_t kChunk = 256;
  const std::size_t copies = copies_.size();
  while (!keys.empty()) {
    const std::size_t n = std::min(kChunk, keys.size());
    block_unit_scratch_.resize(n * copies);
    u_bank_.EvalBlock(keys.first(n), block_unit_scratch_.data());
    for (std::size_t b = 0; b < n; ++b) {
      const std::uint64_t key = keys[b];
      const std::uint64_t* units = block_unit_scratch_.data() + b * copies;
      for (std::size_t c = 0; c < copies; ++c) {
        Copy& copy = copies_[c];
        // units[c] is canonical, so dividing by p gives the same double
        // ToUnitAll produces.
        const double u = static_cast<double>(units[c]) /
                         static_cast<double>(KWiseHashBank::kPrime);
        const double scale = ClampedScale(u);
        const double z =
            std::abs(copy.sketch.UpdateAndQuery(key, delta * scale));
        if (!copy.has_candidate || z > copy.best_z || key == copy.best_key) {
          copy.best_key = key;
          copy.best_z = z;
          copy.has_candidate = true;
        }
      }
    }
    keys = keys.subspan(n);
  }
}

std::vector<L2Sampler::Sample> L2Sampler::DrawAll() const {
  std::vector<Sample> samples;
  const double f2 = std::max(EstimateF2(), 0.0);
  const double threshold = std::sqrt(f2 / config_.epsilon);
  for (std::size_t c = 0; c < copies_.size(); ++c) {
    const Copy& copy = copies_[c];
    if (!copy.has_candidate) continue;
    const double z = std::abs(copy.sketch.Query(copy.best_key));
    if (z >= threshold && threshold > 0.0) {
      const double scale = ScaledWeight(c, copy.best_key);
      samples.push_back(Sample{copy.best_key, z / scale});
    }
  }
  return samples;
}

std::optional<L2Sampler::Sample> L2Sampler::Draw() const {
  auto all = DrawAll();
  if (all.empty()) return std::nullopt;
  return all.front();
}

std::size_t L2Sampler::SpaceWords() const {
  // 2 words of u-hash coefficients per copy (the bank), plus each copy's
  // sketch and candidate bookkeeping — the same accounting as the historical
  // per-copy layout.
  std::size_t words = f2_.SpaceWords();
  for (const Copy& copy : copies_) {
    words += copy.sketch.SpaceWords() + 2 + 2;
  }
  return words;
}

void L2Sampler::SaveState(StateWriter& w) const {
  w.Size(config_.copies);
  w.Size(config_.sketch_depth);
  w.Size(config_.sketch_width);
  w.Double(config_.epsilon);
  u_bank_.SaveState(w);
  for (const Copy& copy : copies_) {
    copy.sketch.SaveState(w);
    w.U64(copy.best_key);
    w.Double(copy.best_z);
    w.Bool(copy.has_candidate);
  }
  f2_.SaveState(w);
}

bool L2Sampler::RestoreState(StateReader& r) {
  if (r.Size() != config_.copies || r.Size() != config_.sketch_depth ||
      r.Size() != config_.sketch_width || r.Double() != config_.epsilon) {
    return r.Fail();
  }
  if (!u_bank_.RestoreState(r)) return false;
  // Copy sketches restore in place; their RestoreState verifies shape and
  // hash banks before mutating, so a mismatch part-way through can only
  // leave earlier (valid) copies restored — and the driver discards the
  // whole algorithm on any restore failure anyway.
  for (Copy& copy : copies_) {
    if (!copy.sketch.RestoreState(r)) return false;
    copy.best_key = r.U64();
    copy.best_z = r.Double();
    copy.has_candidate = r.Bool();
  }
  if (!r.ok()) return false;
  return f2_.RestoreState(r);
}

}  // namespace cyclestream
