#ifndef CYCLESTREAM_SKETCH_AMS_F2_H_
#define CYCLESTREAM_SKETCH_AMS_F2_H_

#include <cstdint>
#include <span>
#include <vector>

#include "hash/kwise_bank.h"

namespace cyclestream {

class StateWriter;
class StateReader;

/// Alon–Matias–Szegedy F₂ sketch over a vector x indexed by 64-bit keys and
/// updated by (key, delta) increments (deltas may be negative — turnstile).
///
/// Each basic estimator keeps Z = Σ_i σ(i)·x_i with a 4-wise independent
/// sign σ; Z² is an unbiased estimate of F₂(x) with variance ≤ 2·F₂².
/// The sketch runs `groups` × `per_group` independent estimators and returns
/// the median of the group means: a (1+γ) approximation needs
/// per_group = O(1/γ²) and groups = O(log 1/δ).
///
/// The sign hashes of all estimators live in one KWiseHashBank, so an
/// Update is a single batched polynomial sweep instead of one hash call per
/// estimator. Outputs are bit-identical to the per-copy formulation (the
/// bank's contract). Update/Estimate use internal scratch buffers, so a
/// sketch instance must not be shared across threads without external
/// synchronization (the parallel layer's one-instance-per-trial contract).
class AmsF2 {
 public:
  AmsF2(std::size_t groups, std::size_t per_group, std::uint64_t seed);

  /// x[key] += delta.
  void Update(std::uint64_t key, double delta);

  /// x[keys[b]] += delta for every key of the block, in key order. Routed
  /// through the block kernels (hash/kwise_kernels.h); bit-identical to
  /// calling Update per key regardless of the active SIMD tier.
  void UpdateBlock(std::span<const std::uint64_t> keys, double delta);

  /// Adds `other`'s counters into this sketch. Both must share (groups,
  /// per_group, seed): a sketch fed the union of two disjoint update
  /// sequences equals the merge of two sketches fed the halves, because
  /// integer-valued signed sums commute exactly in doubles (the ShardedSketch
  /// determinism contract — DESIGN.md §13).
  void MergeFrom(const AmsF2& other);

  /// Median-of-means estimate of F₂(x).
  double Estimate() const;

  /// Space in words: one counter plus one 4-wise hash (4 coefficients) per
  /// basic estimator.
  std::size_t SpaceWords() const { return counters_.size() * 5; }

  std::size_t groups() const { return groups_; }

  /// Checkpoint serialization: the counters round-trip; the sign bank is
  /// written for verification and RestoreState rejects (without mutating)
  /// a snapshot whose configuration differs from this sketch's.
  void SaveState(StateWriter& w) const;
  bool RestoreState(StateReader& r);

 private:
  std::size_t groups_;
  KWiseHashBank signs_;            // One 4-wise hash per basic estimator.
  std::vector<double> counters_;   // Z per basic estimator.
  // Reusable scratch (no per-call allocation on the estimate path).
  mutable std::vector<double> square_scratch_;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_SKETCH_AMS_F2_H_
