#include "baselines/cormode_jowhari.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

CormodeJowhariCounter::CormodeJowhariCounter(const Params& params)
    : params_(params) {
  CHECK_GE(params.base.t_guess, 1.0);
  CHECK_GT(params.base.epsilon, 0.0);
  const double sqrt_t = std::sqrt(params.base.t_guess);
  r_ = params.prefix_rate > 0.0
           ? std::min(1.0, params.prefix_rate)
           : std::min(1.0, params.base.c / (params.base.epsilon * sqrt_t));
  cap_ = params.cap > 0.0 ? params.cap
                          : std::max(1.0, params.base.c * r_ * sqrt_t);
  // Scalar state: r, cap, prefix bound, running sum.
  space_.SetBaseline(4);
}

void CormodeJowhariCounter::StartPass(int pass, std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  stream_length_ = stream_length;
  prefix_edges_ = static_cast<std::size_t>(
      std::ceil(r_ * static_cast<double>(stream_length)));
}

void CormodeJowhariCounter::ProcessEdge(int pass, const Edge& e,
                                        std::size_t position) {
  (void)pass;
  if (position < prefix_edges_) {
    prefix_adj_[e.u].push_back(e.v);
    prefix_adj_[e.v].push_back(e.u);
    ++prefix_count_;
  } else {
    auto iu = prefix_adj_.find(e.u);
    auto iv = prefix_adj_.find(e.v);
    if (iu != prefix_adj_.end() && iv != prefix_adj_.end()) {
      const auto& small =
          iu->second.size() <= iv->second.size() ? iu->second : iv->second;
      const auto& large_owner =
          iu->second.size() <= iv->second.size() ? e.v : e.u;
      double t_e = 0.0;
      for (VertexId w : small) {
        if (w == e.u || w == e.v) continue;
        const auto io = prefix_adj_.find(w);
        if (io == prefix_adj_.end()) continue;
        if (std::find(io->second.begin(), io->second.end(), large_owner) !=
            io->second.end()) {
          t_e += 1.0;
        }
      }
      capped_sum_ += std::min(t_e, cap_);
    }
  }
  space_.SetComponent("prefix", 2 * prefix_count_);
}

std::size_t CormodeJowhariCounter::AuditSpace() const {
  // Walks the prefix adjacency lists instead of trusting prefix_count_
  // (each prefix edge appears in both endpoint lists), plus the 4-word
  // scalar baseline.
  std::size_t stored = 0;
  for (const auto& [v, nbrs] : prefix_adj_) {
    (void)v;
    stored += nbrs.size();
  }
  return stored + 4;
}

void CormodeJowhariCounter::EndPass(int pass) {
  CHECK_EQ(pass, 0);
  const double m = static_cast<double>(stream_length_);
  const double s = static_cast<double>(prefix_count_);
  double estimate = 0.0;
  if (s >= 2.0 && m > s) {
    // A triangle is seen iff two of its edges land in the prefix and the
    // completing edge arrives after: probability 3·(s/m)²·(1−s/m) per
    // triangle (up to lower-order terms).
    const double per_triangle = 3.0 * (s / m) * (s / m) * (1.0 - s / m);
    estimate = capped_sum_ / per_triangle;
  } else if (s >= m) {
    // Degenerate: the whole stream is the prefix; nothing completes wedges.
    estimate = 0.0;
  }
  result_.value = estimate;
  result_.space_words = space_.Peak();
}

bool CormodeJowhariCounter::SaveState(StateWriter& w) const {
  w.Double(r_);
  w.Double(cap_);
  w.Double(params_.base.epsilon);
  w.Double(params_.base.c);
  w.Double(params_.base.t_guess);
  w.U64(params_.base.seed);
  w.Size(prefix_edges_);
  w.Size(stream_length_);
  WriteUnordered(w, prefix_adj_, [](StateWriter& sw, const auto& kv) {
    sw.U32(kv.first);
    sw.Vec(kv.second);
  });
  w.Size(prefix_count_);
  w.Double(capped_sum_);
  space_.SaveState(w);
  return true;
}

bool CormodeJowhariCounter::RestoreState(StateReader& r) {
  if (r.Double() != r_ || r.Double() != cap_ ||
      r.Double() != params_.base.epsilon || r.Double() != params_.base.c ||
      r.Double() != params_.base.t_guess || r.U64() != params_.base.seed) {
    return r.Fail();
  }
  prefix_edges_ = r.Size();
  stream_length_ = r.Size();
  std::size_t buckets = 0;
  std::vector<std::pair<VertexId, std::vector<VertexId>>> elems;
  if (!ReadUnordered(r, &buckets, &elems, [](StateReader& sr) {
        const VertexId key = sr.U32();
        std::vector<VertexId> neighbors;
        sr.Vec(&neighbors);
        return std::make_pair(key, std::move(neighbors));
      })) {
    return false;
  }
  RestoreUnorderedOrder(prefix_adj_, buckets, elems,
                        [](auto& c, const auto& kv) { c.insert(kv); });
  prefix_count_ = r.Size();
  capped_sum_ = r.Double();
  if (!r.ok()) return false;
  return space_.RestoreState(r);
}

Estimate CountTrianglesCormodeJowhari(
    const EdgeStream& stream, const CormodeJowhariCounter::Params& params) {
  CormodeJowhariCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
