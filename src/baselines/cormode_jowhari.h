#ifndef CYCLESTREAM_BASELINES_CORMODE_JOWHARI_H_
#define CYCLESTREAM_BASELINES_CORMODE_JOWHARI_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "graph/types.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// Cormode–Jowhari-style random-order triangle counter (Theor. Comput. Sci.
/// 2017) — the (3+ε)-approximation in Õ(ε^{-4.5}·m/√T) space that §2.1
/// improves on. This is the paper's stated prior state of the art in the
/// random-order model.
///
/// Mechanism: the first s = r·m stream edges of a random-order stream are a
/// uniform edge sample; each later edge e that completes a wedge of the
/// prefix contributes min(t_e^S, cap) with cap Θ(r√T) — the cap bounds the
/// variance that heavy edges would otherwise inject, and is precisely where
/// the factor (up to) 3 is lost: a triangle is observable from up to three
/// of its edges but capping can suppress all but a fraction of the heavy
/// ones. The estimate rescales by m²/(3s²)·1/(1−s/m).
class CormodeJowhariCounter : public EdgeStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;        // epsilon, c, t_guess, seed.
    /// Override for the prefix fraction r (<= 0 means c·ε⁻¹/√T).
    double prefix_rate = -1.0;
    /// Override for the per-edge contribution cap (<= 0 means r·√T·c).
    double cap = -1.0;
  };

  explicit CormodeJowhariCounter(const Params& params);

  // EdgeStreamAlgorithm:
  int NumPasses() const override { return 1; }
  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "cj/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  Estimate Result() const { return result_; }

 private:
  Params params_;
  double r_ = 1.0;
  double cap_ = 0.0;
  std::size_t prefix_edges_ = 0;
  std::size_t stream_length_ = 0;

  std::unordered_map<VertexId, std::vector<VertexId>> prefix_adj_;
  std::size_t prefix_count_ = 0;
  double capped_sum_ = 0.0;
  SpaceTracker space_;
  Estimate result_;
};

/// Convenience wrapper.
Estimate CountTrianglesCormodeJowhari(const EdgeStream& stream,
                                      const CormodeJowhariCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_BASELINES_CORMODE_JOWHARI_H_
