#include "baselines/naive_sampling.h"

#include "graph/edge_list.h"
#include "graph/exact.h"
#include "graph/graph.h"
#include "hash/kwise.h"
#include "util/check.h"

namespace cyclestream {
namespace {

EdgeList SampleStream(const EdgeStream& stream, const NaiveSamplingParams& params) {
  CHECK_GT(params.p, 0.0);
  CHECK_LE(params.p, 1.0);
  KWiseHash hash(8, params.seed ^ 0x4e53ULL);
  EdgeList sample;
  for (const Edge& e : stream) {
    if (hash.ToUnit(e.Key()) < params.p) sample.Add(e.u, e.v);
  }
  sample.Finalize();
  return sample;
}

}  // namespace

Estimate NaiveSampleTriangles(const EdgeStream& stream,
                              const NaiveSamplingParams& params) {
  const EdgeList sample = SampleStream(stream, params);
  const Graph g(sample);
  Estimate result;
  result.value = static_cast<double>(CountTriangles(g)) /
                 (params.p * params.p * params.p);
  result.space_words = 2 * sample.num_edges();
  return result;
}

Estimate NaiveSampleFourCycles(const EdgeStream& stream,
                               const NaiveSamplingParams& params) {
  const EdgeList sample = SampleStream(stream, params);
  const Graph g(sample);
  Estimate result;
  result.value = static_cast<double>(CountFourCycles(g)) /
                 (params.p * params.p * params.p * params.p);
  result.space_words = 2 * sample.num_edges();
  return result;
}

}  // namespace cyclestream
