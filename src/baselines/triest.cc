#include "baselines/triest.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {

Triest::Triest(const Params& params)
    : params_(params), rng_(params.seed ^ 0x7269657374ULL) {
  CHECK_GE(params.reservoir_capacity, 3u);
  reservoir_.reserve(params.reservoir_capacity);
}

void Triest::StartPass(int pass, std::size_t stream_length) {
  CHECK_EQ(pass, 0);
  (void)stream_length;
}

std::uint64_t Triest::CountReservoirTriangles(const Edge& e) const {
  auto iu = adj_.find(e.u);
  auto iv = adj_.find(e.v);
  if (iu == adj_.end() || iv == adj_.end()) return 0;
  const auto& small = iu->second.size() <= iv->second.size() ? iu->second
                                                             : iv->second;
  const auto& large = iu->second.size() <= iv->second.size() ? iv->second
                                                             : iu->second;
  std::uint64_t count = 0;
  for (VertexId w : small) {
    if (large.count(w) > 0) ++count;
  }
  return count;
}

void Triest::AddToReservoir(const Edge& e) {
  reservoir_.push_back(e);
  adj_[e.u].insert(e.v);
  adj_[e.v].insert(e.u);
}

void Triest::RemoveFromReservoir(const Edge& e) {
  adj_[e.u].erase(e.v);
  adj_[e.v].erase(e.u);
}

void Triest::ProcessEdge(int pass, const Edge& e, std::size_t position) {
  (void)pass;
  (void)position;
  ++time_;
  const double t = static_cast<double>(time_);
  const double m = static_cast<double>(params_.reservoir_capacity);

  if (params_.variant == Variant::kImproved) {
    // Count first, with the time-dependent weight; never decrement.
    const double eta = std::max(1.0, (t - 1.0) * (t - 2.0) / (m * (m - 1.0)));
    tau_ += eta * static_cast<double>(CountReservoirTriangles(e));
  }

  // Reservoir step.
  if (reservoir_.size() < params_.reservoir_capacity) {
    if (params_.variant == Variant::kBase) {
      tau_ += static_cast<double>(CountReservoirTriangles(e));
    }
    AddToReservoir(e);
    return;
  }
  if (rng_.UniformDouble() < m / t) {
    const std::size_t victim =
        static_cast<std::size_t>(rng_.UniformInt(reservoir_.size()));
    const Edge evicted = reservoir_[victim];
    RemoveFromReservoir(evicted);
    if (params_.variant == Variant::kBase) {
      tau_ -= static_cast<double>(CountReservoirTriangles(evicted));
      tau_ += static_cast<double>(CountReservoirTriangles(e));
    }
    reservoir_[victim] = e;
    adj_[e.u].insert(e.v);
    adj_[e.v].insert(e.u);
  }
}

void Triest::EndPass(int pass) { CHECK_EQ(pass, 0); }

double Triest::EstimateTriangles() const {
  const double t = static_cast<double>(time_);
  const double m = static_cast<double>(params_.reservoir_capacity);
  if (params_.variant == Variant::kImproved) return tau_;
  const double xi =
      std::max(1.0, t * (t - 1.0) * (t - 2.0) / (m * (m - 1.0) * (m - 2.0)));
  return tau_ * xi;
}

bool Triest::SaveState(StateWriter& w) const {
  w.Size(params_.reservoir_capacity);
  w.U8(params_.variant == Variant::kImproved ? 1 : 0);
  w.U64(params_.seed);
  rng_.SaveState(w);
  w.Size(time_);
  w.Vec(reservoir_);
  WriteUnordered(w, adj_, [](StateWriter& sw, const auto& kv) {
    sw.U32(kv.first);
    WriteUnordered(sw, kv.second,
                   [](StateWriter& sw2, VertexId v) { sw2.U32(v); });
  });
  w.Double(tau_);
  return true;
}

bool Triest::RestoreState(StateReader& r) {
  if (r.Size() != params_.reservoir_capacity ||
      r.U8() != (params_.variant == Variant::kImproved ? 1 : 0) ||
      r.U64() != params_.seed) {
    return r.Fail();
  }
  if (!rng_.RestoreState(r)) return false;
  time_ = r.Size();
  if (!r.Vec(&reservoir_)) return false;
  struct AdjEntry {
    VertexId key = 0;
    std::size_t buckets = 0;
    std::vector<VertexId> members;
  };
  std::size_t adj_buckets = 0;
  std::vector<AdjEntry> adj_elems;
  if (!ReadUnordered(r, &adj_buckets, &adj_elems, [](StateReader& sr) {
        AdjEntry entry;
        entry.key = sr.U32();
        ReadUnordered(sr, &entry.buckets, &entry.members,
                      [](StateReader& sr2) { return sr2.U32(); });
        return entry;
      })) {
    return false;
  }
  RestoreUnorderedOrder(adj_, adj_buckets, adj_elems,
                        [](auto& c, const AdjEntry& entry) {
                          auto& inner = c[entry.key];
                          RestoreUnorderedOrder(
                              inner, entry.buckets, entry.members,
                              [](auto& s, VertexId v) { s.insert(v); });
                        });
  tau_ = r.Double();
  return r.ok();
}

Estimate Triest::Result() const {
  Estimate result;
  result.value = EstimateTriangles();
  result.space_words = 2 * params_.reservoir_capacity + 2;
  return result;
}

}  // namespace cyclestream
