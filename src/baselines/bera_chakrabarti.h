#ifndef CYCLESTREAM_BASELINES_BERA_CHAKRABARTI_H_
#define CYCLESTREAM_BASELINES_BERA_CHAKRABARTI_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "graph/types.h"
#include "hash/rng.h"
#include "stream/driver.h"

namespace cyclestream {

/// Bera–Chakrabarti-style multi-pass 4-cycle counter (STACS 2017): the
/// Õ(ε⁻²·m²/T)-space prior state of the art that §5.1 improves on for
/// T ≤ m^{4/3}.
///
/// Estimator: each 4-cycle contains exactly two unordered pairs of
/// vertex-disjoint ("opposite") edges, so with D = #{edge pairs that are
/// opposite edges of some 4-cycle counted with multiplicity} we have
/// T = Σ over sampled pairs ... Concretely: sample k ordered pairs of
/// distinct stream edges uniformly (two independent reservoir samples per
/// slot, pass 1); for slot i with pair (e, e′), pass 2 counts
/// c_i = #4-cycles containing e and e′ as opposite edges (0, 1, or 2 — one
/// membership probe per connecting edge, O(1) state). Then
/// E[c_i] = 2T / (m(m−1)/2) / ... — rescaling by C(m,2)/2 makes the mean
/// unbiased for T. Space O(k) with k = Θ(ε⁻²·m²/T).
class BeraChakrabartiCounter : public EdgeStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;  // epsilon, c, t_guess, seed.
    /// Number of sampled pairs; <= 0 derives c·ε⁻²·m²/T (capped at 2²²)
    /// once the stream length is known.
    std::int64_t num_pairs = -1;
  };

  explicit BeraChakrabartiCounter(const Params& params);

  // EdgeStreamAlgorithm:
  int NumPasses() const override { return 2; }
  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override;
  void EndPass(int pass) override;
  std::string_view CheckpointId() const override { return "berachak/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  Estimate Result() const { return result_; }

 private:
  struct Slot {
    Edge first;
    Edge second;
    bool have[4] = {false, false, false, false};  // Connector edges seen.
    Edge connectors[4];
    bool valid = false;  // Pair is vertex-disjoint.
  };

  Params params_;
  Rng rng_;
  std::size_t stream_length_ = 0;
  std::size_t num_pairs_ = 0;

  // Pass 1: two independent uniform edge choices per slot, selected by
  // precomputed stream positions.
  std::vector<Slot> slots_;
  std::unordered_map<std::size_t, std::vector<std::pair<std::size_t, int>>>
      picks_;  // Position -> (slot, which).

  // Pass 2: connector-membership probes.
  std::unordered_map<std::uint64_t, std::vector<std::pair<std::size_t, int>>,
                     Mix64Hash>
      probes_;  // Edge key -> (slot, connector index).

  Estimate result_;
};

/// Convenience wrapper.
Estimate CountFourCyclesBeraChakrabarti(
    const EdgeStream& stream, const BeraChakrabartiCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_BASELINES_BERA_CHAKRABARTI_H_
