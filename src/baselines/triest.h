#ifndef CYCLESTREAM_BASELINES_TRIEST_H_
#define CYCLESTREAM_BASELINES_TRIEST_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/config.h"
#include "graph/types.h"
#include "hash/rng.h"
#include "stream/driver.h"

namespace cyclestream {

/// TRIEST (De Stefani et al., KDD 2016): practical one-pass triangle
/// counting over arbitrary-order streams with a fixed edge-reservoir budget.
/// Implemented as the paper's comparison point from the practical streaming
/// literature (the "novelty" axis: reservoir methods exist; the §2.1
/// random-order algorithm is what's new).
///
/// Two variants:
///  - base: counters track triangles *inside* the reservoir; the final count
///    is rescaled by the inverse probability ξ(t) that a triangle's three
///    edges are all retained.
///  - impr: every arriving edge counts its reservoir triangles immediately
///    with weight η(t) = max(1, (t−1)(t−2)/(M(M−1))); no decrements on
///    eviction. Lower variance, never-decreasing estimate.
class Triest : public EdgeStreamAlgorithm {
 public:
  enum class Variant { kBase, kImproved };

  struct Params {
    std::size_t reservoir_capacity = 1000;  // M.
    Variant variant = Variant::kImproved;
    std::uint64_t seed = 0;
  };

  explicit Triest(const Params& params);

  // EdgeStreamAlgorithm:
  int NumPasses() const override { return 1; }
  void StartPass(int pass, std::size_t stream_length) override;
  void ProcessEdge(int pass, const Edge& e, std::size_t position) override;
  void EndPass(int pass) override;
  std::string_view CheckpointId() const override { return "triest/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  /// Current estimate of the global triangle count (valid at any time).
  double EstimateTriangles() const;

  Estimate Result() const;

 private:
  std::uint64_t CountReservoirTriangles(const Edge& e) const;
  void AddToReservoir(const Edge& e);
  void RemoveFromReservoir(const Edge& e);

  Params params_;
  Rng rng_;
  std::size_t time_ = 0;  // Stream elements seen.
  std::vector<Edge> reservoir_;
  std::unordered_map<VertexId, std::unordered_set<VertexId>> adj_;
  double tau_ = 0.0;  // Global triangle counter (semantics per variant).
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_BASELINES_TRIEST_H_
