#include "baselines/bera_chakrabarti.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

// (slot, which) reference lists hang off both pick and probe maps.
using RefList = std::vector<std::pair<std::size_t, int>>;

void WriteRefList(StateWriter& w, const RefList& refs) {
  w.Size(refs.size());
  for (const auto& [slot, which] : refs) {
    w.Size(slot);
    w.I64(which);
  }
}

bool ReadRefList(StateReader& r, RefList* refs) {
  const std::size_t n = r.Size();
  if (!r.ok() || n > r.Remaining() / 16) return r.Fail();
  refs->clear();
  refs->reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = r.Size();
    refs->emplace_back(slot, static_cast<int>(r.I64()));
  }
  return r.ok();
}

}  // namespace

BeraChakrabartiCounter::BeraChakrabartiCounter(const Params& params)
    : params_(params), rng_(params.base.seed ^ 0x4243ULL) {
  CHECK_GE(params.base.t_guess, 1.0);
  CHECK_GT(params.base.epsilon, 0.0);
}

void BeraChakrabartiCounter::StartPass(int pass, std::size_t stream_length) {
  if (pass != 0) return;
  stream_length_ = stream_length;
  if (stream_length < 2) return;

  const double m = static_cast<double>(stream_length);
  std::int64_t k = params_.num_pairs;
  if (k <= 0) {
    const double derived = params_.base.c * m * m /
                           (params_.base.epsilon * params_.base.epsilon *
                            params_.base.t_guess);
    k = static_cast<std::int64_t>(std::min(derived, 4194304.0));
    k = std::max<std::int64_t>(k, 16);
  }
  num_pairs_ = static_cast<std::size_t>(k);

  slots_.assign(num_pairs_, Slot{});
  picks_.clear();
  for (std::size_t i = 0; i < num_pairs_; ++i) {
    const std::size_t pos1 =
        static_cast<std::size_t>(rng_.UniformInt(stream_length));
    std::size_t pos2 = pos1;
    while (pos2 == pos1) {
      pos2 = static_cast<std::size_t>(rng_.UniformInt(stream_length));
    }
    picks_[pos1].emplace_back(i, 0);
    picks_[pos2].emplace_back(i, 1);
  }
}

void BeraChakrabartiCounter::ProcessEdge(int pass, const Edge& e,
                                         std::size_t position) {
  if (pass == 0) {
    auto it = picks_.find(position);
    if (it == picks_.end()) return;
    for (const auto& [slot, which] : it->second) {
      if (which == 0) {
        slots_[slot].first = e;
      } else {
        slots_[slot].second = e;
      }
    }
    return;
  }
  // Pass 2: resolve connector probes.
  auto it = probes_.find(e.Key());
  if (it == probes_.end()) return;
  for (const auto& [slot, connector] : it->second) {
    slots_[slot].have[connector] = true;
  }
}

void BeraChakrabartiCounter::EndPass(int pass) {
  if (pass == 0) {
    // Register the four possible connector edges per vertex-disjoint pair:
    // with e = (u,v), e' = (x,y), the two completions are
    // {(v,x),(u,y)} and {(v,y),(u,x)}.
    probes_.clear();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      const Edge& a = slot.first;
      const Edge& b = slot.second;
      slot.valid = a.u != b.u && a.u != b.v && a.v != b.u && a.v != b.v &&
                   !(a == b);
      if (!slot.valid) continue;
      slot.connectors[0] = Edge(a.v, b.u);
      slot.connectors[1] = Edge(a.u, b.v);
      slot.connectors[2] = Edge(a.v, b.v);
      slot.connectors[3] = Edge(a.u, b.u);
      for (int c = 0; c < 4; ++c) {
        probes_[slot.connectors[c].Key()].emplace_back(i, c);
      }
    }
    return;
  }
  // Final estimate.
  double c_sum = 0.0;
  for (const Slot& slot : slots_) {
    if (!slot.valid) continue;
    c_sum += (slot.have[0] && slot.have[1]) ? 1.0 : 0.0;
    c_sum += (slot.have[2] && slot.have[3]) ? 1.0 : 0.0;
  }
  const double m = static_cast<double>(stream_length_);
  const double pairs_total = m * (m - 1.0) / 2.0;
  const double mean = slots_.empty()
                          ? 0.0
                          : c_sum / static_cast<double>(slots_.size());
  result_.value = mean * pairs_total / 2.0;
  result_.space_words = 12 * slots_.size();
}

bool BeraChakrabartiCounter::SaveState(StateWriter& w) const {
  // The RNG travels too: StartPass(0) consumes it to place the pair picks,
  // and a mid-pass-0 resume skips StartPass.
  w.I64(params_.num_pairs);
  w.Double(params_.base.epsilon);
  w.Double(params_.base.c);
  w.Double(params_.base.t_guess);
  w.U64(params_.base.seed);
  rng_.SaveState(w);
  w.Size(stream_length_);
  w.Size(num_pairs_);
  w.Size(slots_.size());
  for (const Slot& slot : slots_) {
    // Field-by-field: Slot has alignment padding, so a byte-image dump
    // would leak indeterminate bytes into the snapshot.
    w.U32(slot.first.u);
    w.U32(slot.first.v);
    w.U32(slot.second.u);
    w.U32(slot.second.v);
    for (bool h : slot.have) w.Bool(h);
    for (const Edge& c : slot.connectors) {
      w.U32(c.u);
      w.U32(c.v);
    }
    w.Bool(slot.valid);
  }
  WriteUnordered(w, picks_, [](StateWriter& sw, const auto& kv) {
    sw.Size(kv.first);
    WriteRefList(sw, kv.second);
  });
  WriteUnordered(w, probes_, [](StateWriter& sw, const auto& kv) {
    sw.U64(kv.first);
    WriteRefList(sw, kv.second);
  });
  return true;
}

bool BeraChakrabartiCounter::RestoreState(StateReader& r) {
  if (r.I64() != params_.num_pairs || r.Double() != params_.base.epsilon ||
      r.Double() != params_.base.c || r.Double() != params_.base.t_guess ||
      r.U64() != params_.base.seed) {
    return r.Fail();
  }
  if (!rng_.RestoreState(r)) return false;
  stream_length_ = r.Size();
  num_pairs_ = r.Size();
  const std::size_t num_slots = r.Size();
  if (!r.ok() || num_slots > r.Remaining() / 40) return r.Fail();
  slots_.assign(num_slots, Slot{});
  for (Slot& slot : slots_) {
    slot.first.u = r.U32();
    slot.first.v = r.U32();
    slot.second.u = r.U32();
    slot.second.v = r.U32();
    for (bool& h : slot.have) h = r.Bool();
    for (Edge& c : slot.connectors) {
      c.u = r.U32();
      c.v = r.U32();
    }
    slot.valid = r.Bool();
  }
  std::size_t picks_buckets = 0;
  std::vector<std::pair<std::size_t, RefList>> picks_elems;
  if (!ReadUnordered(r, &picks_buckets, &picks_elems, [](StateReader& sr) {
        const std::size_t pos = sr.Size();
        RefList refs;
        ReadRefList(sr, &refs);
        return std::make_pair(pos, std::move(refs));
      })) {
    return false;
  }
  RestoreUnorderedOrder(picks_, picks_buckets, picks_elems,
                        [](auto& c, const auto& kv) { c.insert(kv); });
  std::size_t probes_buckets = 0;
  std::vector<std::pair<std::uint64_t, RefList>> probes_elems;
  if (!ReadUnordered(r, &probes_buckets, &probes_elems, [](StateReader& sr) {
        const std::uint64_t key = sr.U64();
        RefList refs;
        ReadRefList(sr, &refs);
        return std::make_pair(key, std::move(refs));
      })) {
    return false;
  }
  RestoreUnorderedOrder(probes_, probes_buckets, probes_elems,
                        [](auto& c, const auto& kv) { c.insert(kv); });
  return r.ok();
}

Estimate CountFourCyclesBeraChakrabarti(
    const EdgeStream& stream, const BeraChakrabartiCounter::Params& params) {
  BeraChakrabartiCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
