#include "baselines/bera_chakrabarti.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace cyclestream {

BeraChakrabartiCounter::BeraChakrabartiCounter(const Params& params)
    : params_(params), rng_(params.base.seed ^ 0x4243ULL) {
  CHECK_GE(params.base.t_guess, 1.0);
  CHECK_GT(params.base.epsilon, 0.0);
}

void BeraChakrabartiCounter::StartPass(int pass, std::size_t stream_length) {
  if (pass != 0) return;
  stream_length_ = stream_length;
  if (stream_length < 2) return;

  const double m = static_cast<double>(stream_length);
  std::int64_t k = params_.num_pairs;
  if (k <= 0) {
    const double derived = params_.base.c * m * m /
                           (params_.base.epsilon * params_.base.epsilon *
                            params_.base.t_guess);
    k = static_cast<std::int64_t>(std::min(derived, 4194304.0));
    k = std::max<std::int64_t>(k, 16);
  }
  num_pairs_ = static_cast<std::size_t>(k);

  slots_.assign(num_pairs_, Slot{});
  picks_.clear();
  for (std::size_t i = 0; i < num_pairs_; ++i) {
    const std::size_t pos1 =
        static_cast<std::size_t>(rng_.UniformInt(stream_length));
    std::size_t pos2 = pos1;
    while (pos2 == pos1) {
      pos2 = static_cast<std::size_t>(rng_.UniformInt(stream_length));
    }
    picks_[pos1].emplace_back(i, 0);
    picks_[pos2].emplace_back(i, 1);
  }
}

void BeraChakrabartiCounter::ProcessEdge(int pass, const Edge& e,
                                         std::size_t position) {
  if (pass == 0) {
    auto it = picks_.find(position);
    if (it == picks_.end()) return;
    for (const auto& [slot, which] : it->second) {
      if (which == 0) {
        slots_[slot].first = e;
      } else {
        slots_[slot].second = e;
      }
    }
    return;
  }
  // Pass 2: resolve connector probes.
  auto it = probes_.find(e.Key());
  if (it == probes_.end()) return;
  for (const auto& [slot, connector] : it->second) {
    slots_[slot].have[connector] = true;
  }
}

void BeraChakrabartiCounter::EndPass(int pass) {
  if (pass == 0) {
    // Register the four possible connector edges per vertex-disjoint pair:
    // with e = (u,v), e' = (x,y), the two completions are
    // {(v,x),(u,y)} and {(v,y),(u,x)}.
    probes_.clear();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      const Edge& a = slot.first;
      const Edge& b = slot.second;
      slot.valid = a.u != b.u && a.u != b.v && a.v != b.u && a.v != b.v &&
                   !(a == b);
      if (!slot.valid) continue;
      slot.connectors[0] = Edge(a.v, b.u);
      slot.connectors[1] = Edge(a.u, b.v);
      slot.connectors[2] = Edge(a.v, b.v);
      slot.connectors[3] = Edge(a.u, b.u);
      for (int c = 0; c < 4; ++c) {
        probes_[slot.connectors[c].Key()].emplace_back(i, c);
      }
    }
    return;
  }
  // Final estimate.
  double c_sum = 0.0;
  for (const Slot& slot : slots_) {
    if (!slot.valid) continue;
    c_sum += (slot.have[0] && slot.have[1]) ? 1.0 : 0.0;
    c_sum += (slot.have[2] && slot.have[3]) ? 1.0 : 0.0;
  }
  const double m = static_cast<double>(stream_length_);
  const double pairs_total = m * (m - 1.0) / 2.0;
  const double mean = slots_.empty()
                          ? 0.0
                          : c_sum / static_cast<double>(slots_.size());
  result_.value = mean * pairs_total / 2.0;
  result_.space_words = 12 * slots_.size();
}

Estimate CountFourCyclesBeraChakrabarti(
    const EdgeStream& stream, const BeraChakrabartiCounter::Params& params) {
  BeraChakrabartiCounter counter(params);
  RunEdgeStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
