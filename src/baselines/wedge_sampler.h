#ifndef CYCLESTREAM_BASELINES_WEDGE_SAMPLER_H_
#define CYCLESTREAM_BASELINES_WEDGE_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "graph/types.h"
#include "hash/kwise.h"
#include "stream/driver.h"
#include "stream/space.h"

namespace cyclestream {

/// Per-cycle wedge-sampling baseline for 4-cycle counting in the
/// adjacency-list model (two passes): the "count 4-cycles individually"
/// strategy that §4.1's diamond grouping improves on (prior work in the
/// Kallaugher-et-al. line samples structures of this kind).
///
/// Pass 1: sample vertices at rate pv; on each sampled vertex's list,
/// sample incident edges at rate pe, retaining the sampled wedges (pairs of
/// sampled edges at the same center).
/// Pass 2: when v's list arrives, a sampled wedge w1–u–w2 with
/// w1, w2 ∈ Γ(v), v ∉ {u}, witnesses the 4-cycle (u, w1, v, w2). Each
/// 4-cycle has 4 possible witness centers, so
///   T̂ = X / (4·pv·pe²).
///
/// Unbiased, but cycles sharing a wedge (large diamonds!) produce
/// correlated detections — the variance the diamond grouping collapses.
class WedgeSamplingFourCycleCounter : public AdjacencyStreamAlgorithm {
 public:
  struct Params {
    ApproxConfig base;
    VertexId num_vertices = 0;
    double vertex_rate = 0.5;  // pv.
    double edge_rate = 0.5;    // pe.
  };

  explicit WedgeSamplingFourCycleCounter(const Params& params);

  // AdjacencyStreamAlgorithm:
  int NumPasses() const override { return 2; }
  void StartPass(int pass, std::size_t num_lists) override;
  void ProcessList(int pass, const AdjacencyList& list,
                   std::size_t position) override;
  void EndPass(int pass) override;
  std::size_t AuditSpace() const override;
  const SpaceTracker* space_tracker() const override { return &space_; }
  std::string_view CheckpointId() const override { return "wedge/1"; }
  bool SaveState(StateWriter& w) const override;
  bool RestoreState(StateReader& r) override;

  Estimate Result() const { return result_; }

 private:
  Params params_;
  KWiseHash vertex_hash_;
  KWiseHash edge_hash_;

  // Pass-1 collections: for each sampled center u, its sampled neighbors;
  // plus a reverse index neighbor -> centers for pass-2 matching.
  std::unordered_map<VertexId, std::vector<VertexId>> sampled_nbrs_;
  std::unordered_map<VertexId, std::vector<VertexId>> rev_;
  std::size_t sampled_edges_ = 0;

  double detections_ = 0.0;
  SpaceTracker space_;
  Estimate result_;
};

/// Convenience wrapper.
Estimate CountFourCyclesWedgeSampling(
    const AdjacencyStream& stream,
    const WedgeSamplingFourCycleCounter::Params& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_BASELINES_WEDGE_SAMPLER_H_
