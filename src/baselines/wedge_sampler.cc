#include "baselines/wedge_sampler.h"

#include <utility>
#include <vector>

#include "util/check.h"
#include "util/serialize.h"

namespace cyclestream {
namespace {

using AdjMap = std::unordered_map<VertexId, std::vector<VertexId>>;

void WriteAdjMap(StateWriter& w, const AdjMap& adj) {
  WriteUnordered(w, adj, [](StateWriter& sw, const auto& kv) {
    sw.U32(kv.first);
    sw.Vec(kv.second);
  });
}

bool ReadAdjMap(StateReader& r, AdjMap* adj) {
  std::size_t buckets = 0;
  std::vector<std::pair<VertexId, std::vector<VertexId>>> elems;
  if (!ReadUnordered(r, &buckets, &elems, [](StateReader& sr) {
        const VertexId key = sr.U32();
        std::vector<VertexId> neighbors;
        sr.Vec(&neighbors);
        return std::make_pair(key, std::move(neighbors));
      })) {
    return false;
  }
  RestoreUnorderedOrder(*adj, buckets, elems,
                        [](auto& c, const auto& kv) { c.insert(kv); });
  return true;
}

}  // namespace

WedgeSamplingFourCycleCounter::WedgeSamplingFourCycleCounter(
    const Params& params)
    : params_(params),
      vertex_hash_(8, params.base.seed ^ 0x5753ULL),
      edge_hash_(8, params.base.seed ^ 0x5745ULL) {
  CHECK_GT(params.vertex_rate, 0.0);
  CHECK_LE(params.vertex_rate, 1.0);
  CHECK_GT(params.edge_rate, 0.0);
  CHECK_LE(params.edge_rate, 1.0);
  // The two 8-wise hash banks (vertex + edge sampling) live for the run.
  space_.SetBaseline(16);
}

void WedgeSamplingFourCycleCounter::StartPass(int pass,
                                              std::size_t num_lists) {
  (void)pass;
  (void)num_lists;
}

void WedgeSamplingFourCycleCounter::ProcessList(int pass,
                                                const AdjacencyList& list,
                                                std::size_t position) {
  if (pass == 0) {
    if (vertex_hash_.ToUnit(list.vertex) >= params_.vertex_rate) return;
    for (VertexId w : list.neighbors) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(list.vertex) << 32) | w;
      if (edge_hash_.ToUnit(key) < params_.edge_rate) {
        sampled_nbrs_[list.vertex].push_back(w);
        rev_[w].push_back(list.vertex);
        ++sampled_edges_;
      }
    }
  } else {
    // a(u, v) = |sampled Γ(u) ∩ Γ(v)| accumulated through the reverse
    // index; every pair of matched wedge-arms at the same center closes one
    // witnessed 4-cycle.
    std::unordered_map<VertexId, std::uint32_t> matches;
    for (VertexId w : list.neighbors) {
      auto it = rev_.find(w);
      if (it == rev_.end()) continue;
      for (VertexId center : it->second) {
        if (center != list.vertex) ++matches[center];
      }
    }
    for (const auto& [center, a] : matches) {
      (void)center;
      detections_ += static_cast<double>(a) * (a - 1) / 2.0;
    }
  }
  if ((position & 0xff) == 0) {
    space_.SetComponent("sampled", 2 * sampled_edges_);
  }
}

std::size_t WedgeSamplingFourCycleCounter::AuditSpace() const {
  // Each sampled edge is stored twice (center list + reverse index); the
  // walk sizes the real lists rather than trusting the sampled_edges_
  // counter. The baseline covers the two hash-seed banks.
  std::size_t stored = 0;
  for (const auto& [center, nbrs] : sampled_nbrs_) {
    (void)center;
    stored += nbrs.size();
  }
  for (const auto& [w, centers] : rev_) {
    (void)w;
    stored += centers.size();
  }
  return stored + 16;
}

void WedgeSamplingFourCycleCounter::EndPass(int pass) {
  if (pass != 1) return;
  const double scale = 4.0 * params_.vertex_rate * params_.edge_rate *
                       params_.edge_rate;
  space_.SetComponent("sampled", 2 * sampled_edges_);
  result_.value = detections_ / scale;
  result_.space_words = space_.Peak();
}

bool WedgeSamplingFourCycleCounter::SaveState(StateWriter& w) const {
  w.U32(params_.num_vertices);
  w.Double(params_.vertex_rate);
  w.Double(params_.edge_rate);
  w.U64(params_.base.seed);
  WriteAdjMap(w, sampled_nbrs_);
  WriteAdjMap(w, rev_);
  w.Size(sampled_edges_);
  w.Double(detections_);
  space_.SaveState(w);
  return true;
}

bool WedgeSamplingFourCycleCounter::RestoreState(StateReader& r) {
  if (r.U32() != params_.num_vertices ||
      r.Double() != params_.vertex_rate || r.Double() != params_.edge_rate ||
      r.U64() != params_.base.seed) {
    return r.Fail();
  }
  if (!ReadAdjMap(r, &sampled_nbrs_) || !ReadAdjMap(r, &rev_)) return false;
  sampled_edges_ = r.Size();
  detections_ = r.Double();
  if (!r.ok()) return false;
  return space_.RestoreState(r);
}

Estimate CountFourCyclesWedgeSampling(
    const AdjacencyStream& stream,
    const WedgeSamplingFourCycleCounter::Params& params) {
  WedgeSamplingFourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
