#include "baselines/wedge_sampler.h"

#include "util/check.h"

namespace cyclestream {

WedgeSamplingFourCycleCounter::WedgeSamplingFourCycleCounter(
    const Params& params)
    : params_(params),
      vertex_hash_(8, params.base.seed ^ 0x5753ULL),
      edge_hash_(8, params.base.seed ^ 0x5745ULL) {
  CHECK_GT(params.vertex_rate, 0.0);
  CHECK_LE(params.vertex_rate, 1.0);
  CHECK_GT(params.edge_rate, 0.0);
  CHECK_LE(params.edge_rate, 1.0);
  // The two 8-wise hash banks (vertex + edge sampling) live for the run.
  space_.SetBaseline(16);
}

void WedgeSamplingFourCycleCounter::StartPass(int pass,
                                              std::size_t num_lists) {
  (void)pass;
  (void)num_lists;
}

void WedgeSamplingFourCycleCounter::ProcessList(int pass,
                                                const AdjacencyList& list,
                                                std::size_t position) {
  if (pass == 0) {
    if (vertex_hash_.ToUnit(list.vertex) >= params_.vertex_rate) return;
    for (VertexId w : list.neighbors) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(list.vertex) << 32) | w;
      if (edge_hash_.ToUnit(key) < params_.edge_rate) {
        sampled_nbrs_[list.vertex].push_back(w);
        rev_[w].push_back(list.vertex);
        ++sampled_edges_;
      }
    }
  } else {
    // a(u, v) = |sampled Γ(u) ∩ Γ(v)| accumulated through the reverse
    // index; every pair of matched wedge-arms at the same center closes one
    // witnessed 4-cycle.
    std::unordered_map<VertexId, std::uint32_t> matches;
    for (VertexId w : list.neighbors) {
      auto it = rev_.find(w);
      if (it == rev_.end()) continue;
      for (VertexId center : it->second) {
        if (center != list.vertex) ++matches[center];
      }
    }
    for (const auto& [center, a] : matches) {
      (void)center;
      detections_ += static_cast<double>(a) * (a - 1) / 2.0;
    }
  }
  if ((position & 0xff) == 0) {
    space_.SetComponent("sampled", 2 * sampled_edges_);
  }
}

std::size_t WedgeSamplingFourCycleCounter::AuditSpace() const {
  // Each sampled edge is stored twice (center list + reverse index); the
  // walk sizes the real lists rather than trusting the sampled_edges_
  // counter. The baseline covers the two hash-seed banks.
  std::size_t stored = 0;
  for (const auto& [center, nbrs] : sampled_nbrs_) {
    (void)center;
    stored += nbrs.size();
  }
  for (const auto& [w, centers] : rev_) {
    (void)w;
    stored += centers.size();
  }
  return stored + 16;
}

void WedgeSamplingFourCycleCounter::EndPass(int pass) {
  if (pass != 1) return;
  const double scale = 4.0 * params_.vertex_rate * params_.edge_rate *
                       params_.edge_rate;
  space_.SetComponent("sampled", 2 * sampled_edges_);
  result_.value = detections_ / scale;
  result_.space_words = space_.Peak();
}

Estimate CountFourCyclesWedgeSampling(
    const AdjacencyStream& stream,
    const WedgeSamplingFourCycleCounter::Params& params) {
  WedgeSamplingFourCycleCounter counter(params);
  RunAdjacencyStream(counter, stream);
  return counter.Result();
}

}  // namespace cyclestream
