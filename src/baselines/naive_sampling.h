#ifndef CYCLESTREAM_BASELINES_NAIVE_SAMPLING_H_
#define CYCLESTREAM_BASELINES_NAIVE_SAMPLING_H_

#include <cstdint>

#include "core/config.h"
#include "stream/driver.h"

namespace cyclestream {

/// Naïve subgraph-sampling baseline: keep each stream edge independently
/// with probability p, count the target subgraphs inside the sample
/// offline, and rescale by p^{-k} (k = 3 for triangles, 4 for 4-cycles).
/// Unbiased but with variance that explodes as p shrinks — the control
/// every sophisticated algorithm must beat at equal space.
struct NaiveSamplingParams {
  double p = 0.1;
  std::uint64_t seed = 0;
};

/// One pass; returns the rescaled triangle estimate and the sample size (in
/// words) as the space.
Estimate NaiveSampleTriangles(const EdgeStream& stream,
                              const NaiveSamplingParams& params);

/// One pass; rescaled 4-cycle estimate.
Estimate NaiveSampleFourCycles(const EdgeStream& stream,
                               const NaiveSamplingParams& params);

}  // namespace cyclestream

#endif  // CYCLESTREAM_BASELINES_NAIVE_SAMPLING_H_
