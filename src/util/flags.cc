#include "util/flags.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "util/check.h"
#include "util/parallel.h"

namespace cyclestream {
namespace {

bool IsFlag(const char* arg) { return std::strncmp(arg, "--", 2) == 0; }

}  // namespace

int ApplyThreadsFlag(FlagParser& flags) {
  const std::int64_t n = flags.GetInt("threads", 0);
  CHECK_GE(n, 0) << "--threads expects a non-negative count";
  SetDefaultThreads(static_cast<int>(n));
  return DefaultThreads();
}

FlagParser::FlagParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (!IsFlag(arg)) {
      positional_.emplace_back(arg);
      continue;
    }
    std::string body(arg + 2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !IsFlag(argv[i + 1])) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";  // Bare boolean flag.
    }
  }
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& def) {
  used_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t FlagParser::GetInt(const std::string& name, std::int64_t def) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
  // strtoll consumes no characters on an empty value (`--flag=`), leaving
  // *end == '\0' — require at least one consumed character so the flag
  // cannot silently read as 0.
  CHECK(end != nullptr && end != it->second.c_str() && *end == '\0')
      << "flag --" << name << " expects an integer, got '" << it->second
      << "'";
  return v;
}

std::uint64_t FlagParser::GetCount(const std::string& name,
                                   std::uint64_t def) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& raw = it->second;
  // Reject the sign explicitly rather than going through strtoull, which
  // would wrap "-1" to 2^64-1 without complaint.
  CHECK(!raw.empty() && raw[0] != '-' && raw[0] != '+')
      << "flag --" << name << " expects a non-negative integer, got '" << raw
      << "'";
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  CHECK(errno != ERANGE && end != nullptr && end != raw.c_str() &&
        *end == '\0')
      << "flag --" << name << " expects a non-negative integer, got '" << raw
      << "'";
  return static_cast<std::uint64_t>(v);
}

double FlagParser::GetDouble(const std::string& name, double def) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  CHECK(end != nullptr && end != it->second.c_str() && *end == '\0')
      << "flag --" << name << " expects a number, got '" << it->second << "'";
  return v;
}

bool FlagParser::GetBool(const std::string& name, bool def) {
  used_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  CHECK(false) << "flag --" << name << " expects a boolean, got '" << v << "'";
  return def;
}

std::vector<std::string> FlagParser::Unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (used_.find(name) == used_.end()) out.push_back(name);
  }
  // The backing container is ordered today, but the warning output (and
  // anything diffing it) must stay deterministic regardless of how the
  // storage evolves — sort explicitly.
  std::sort(out.begin(), out.end());
  return out;
}

void WarnUnusedFlags(const FlagParser& flags, std::ostream& os) {
  for (const std::string& name : flags.Unused()) {
    os << "warning: unused flag --" << name << "\n";
  }
}

}  // namespace cyclestream
