#ifndef CYCLESTREAM_UTIL_STATS_H_
#define CYCLESTREAM_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace cyclestream {

/// Summary statistics over a sample of doubles. Used by the experiment
/// harnesses to aggregate per-trial estimates and relative errors.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p10 = 0.0;  // 10th percentile.
  double p90 = 0.0;  // 90th percentile.
};

/// Computes summary statistics of `values`. An empty input yields a
/// zero-initialized Summary.
Summary Summarize(std::vector<double> values);

/// Returns the q-quantile (0 <= q <= 1) of a *sorted* sample using linear
/// interpolation between order statistics.
double QuantileSorted(const std::vector<double>& sorted, double q);

/// |estimate - truth| / truth. Returns |estimate| when truth == 0 so that a
/// correct zero estimate scores 0 and anything else scores its magnitude.
double RelativeError(double estimate, double truth);

/// Accumulates mean/variance online (Welford). Useful inside estimators that
/// repeat a basic estimator many times.
class RunningStat {
 public:
  void Add(double x);
  std::size_t Count() const { return n_; }
  double Mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double Variance() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_STATS_H_
