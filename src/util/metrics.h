#ifndef CYCLESTREAM_UTIL_METRICS_H_
#define CYCLESTREAM_UTIL_METRICS_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cyclestream {

class JsonWriter;
class Table;

/// Deterministic, ordered registry of named counters and gauges, the
/// machine-readable side of every experiment run. Two classes of entries:
///
///  - *metrics*: counters / gauges / labels whose values are pure functions
///    of the run's inputs (seeds, flags, workload). These must be
///    bit-identical at any thread count — manifests produced at
///    --threads=1 and --threads=8 are diffed against each other in tests.
///  - *timings*: wall-clock measurements. Inherently noisy, so they live in
///    a separate section that deterministic comparisons exclude.
///
/// Storage is an ordered map, so iteration (and the emitted JSON) never
/// depends on insertion order or hashing.
class MetricsRegistry {
 public:
  /// Adds `delta` to an integer counter (creating it at zero).
  void Inc(const std::string& name, std::int64_t delta = 1);

  /// Sets an integer gauge.
  void SetInt(const std::string& name, std::int64_t value);

  /// Sets a floating-point gauge.
  void Set(const std::string& name, double value);

  /// Sets a string label.
  void SetStr(const std::string& name, std::string value);

  /// Records a wall-clock measurement (seconds), kept out of the
  /// deterministic section.
  void SetTiming(const std::string& name, double seconds);

  /// Records an execution counter — facts about *how* the run executed
  /// (checkpoints written, restores performed) rather than what it computed.
  /// Like timings, these live outside the deterministic section: a killed
  /// and resumed run must produce a byte-identical deterministic payload to
  /// an uninterrupted one, and these counters legitimately differ.
  void SetExecution(const std::string& name, std::int64_t value);

  /// Reads an integer counter/gauge (0 when absent; doubles truncate).
  std::int64_t GetInt(const std::string& name) const;

  /// Reads a floating-point gauge (0.0 when absent).
  double GetDouble(const std::string& name) const;

  bool Has(const std::string& name) const;
  bool empty() const { return values_.empty() && timings_.empty(); }
  void Clear();

  /// Writes the deterministic section as a JSON object value (the caller
  /// positions the writer after a Key).
  void WriteJson(JsonWriter& w) const;

  /// Writes the timings section as a JSON object value.
  void WriteTimingsJson(JsonWriter& w) const;

  /// Writes the execution section as a JSON object value.
  void WriteExecutionJson(JsonWriter& w) const;
  bool has_execution() const { return !execution_.empty(); }

  /// Standalone deterministic JSON object (tests).
  std::string DeterministicJson() const;

 private:
  struct Value {
    enum class Kind { kInt, kDouble, kString };
    Kind kind = Kind::kInt;
    std::int64_t i = 0;
    double d = 0.0;
    std::string s;
  };

  std::map<std::string, Value> values_;
  std::map<std::string, double> timings_;
  std::map<std::string, std::int64_t> execution_;
};

/// Structured description of one experiment (or CLI) run: configuration,
/// environment, deterministic metrics, the emitted tables, and wall-clock
/// timings. Serialized with --json_out next to the human-readable text
/// table so every EXPERIMENTS.md claim is a regenerable, diffable artifact.
///
/// `Write` emits the full manifest; `DeterministicJson` omits the
/// environment stamp (git revision) and the timings section, yielding a
/// byte-identical string for equal-seed runs at any thread count.
class RunManifest {
 public:
  explicit RunManifest(std::string experiment_id);

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Records the run configuration (typically FlagParser::values()).
  void SetConfig(std::map<std::string, std::string> config);

  /// Records the resolved worker-thread count.
  void SetThreads(int threads);

  /// Captures a rendered result table (header + rows) under `name`.
  void AddTable(const std::string& name, const Table& table);

  /// Records one engine query's metrics as a named sub-section, emitted
  /// under "queries" in both the full and deterministic payloads (ordered
  /// by name). Only the deterministic side of `metrics` is emitted, so the
  /// section is thread-count-invariant by construction. Re-adding a name
  /// replaces the section.
  void AddQuerySection(const std::string& name, MetricsRegistry metrics);

  /// Writes the full manifest JSON.
  void Write(std::ostream& os) const;

  /// Writes the full manifest to `path`; false (with a logged warning) on
  /// I/O failure.
  bool WriteFile(const std::string& path) const;

  /// Thread-count-invariant serialization (tests, diffing).
  std::string DeterministicJson() const;

 private:
  void WriteImpl(std::ostream& os, bool deterministic_only) const;

  struct StoredTable {
    std::string name;
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };

  std::string experiment_id_;
  int threads_ = 0;
  std::map<std::string, std::string> config_;
  std::vector<StoredTable> tables_;
  MetricsRegistry metrics_;
  std::map<std::string, MetricsRegistry> query_sections_;
};

/// The `git describe --always --dirty` stamp baked in at configure time
/// ("unknown" when built outside a git checkout).
const char* BuildGitDescribe();

}  // namespace cyclestream

#endif  // CYCLESTREAM_UTIL_METRICS_H_
