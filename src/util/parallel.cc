#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "util/check.h"

namespace cyclestream {
namespace {

// True while the current thread is executing a ParallelFor item; nested
// parallel regions detect this and run inline (deadlock-free by
// construction, and the inline order matches the serial order).
thread_local bool t_in_parallel_region = false;

std::mutex g_pool_mu;
int g_default_threads = 0;  // 0 = unset: resolve to hardware concurrency.
std::unique_ptr<ThreadPool> g_pool;

int ResolveThreads(int n) {
  if (n > 0) return n;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// The default pool runs one worker fewer than the budget because the
// ParallelFor caller participates; with a budget of 1 every region runs
// inline and the pool is never built.
ThreadPool& PoolForBudget(int budget) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  const int workers = budget - 1;
  if (g_pool == nullptr || g_pool->num_threads() != workers) {
    g_pool = std::make_unique<ThreadPool>(workers);
  }
  return *g_pool;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : ResolveThreads(0);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CHECK(!stopping_) << "ThreadPool::Submit after Shutdown";
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void SetDefaultThreads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_default_threads = ResolveThreads(n);
  // Drop a stale pool; the next parallel region rebuilds at the new size.
  if (g_pool != nullptr && g_pool->num_threads() != g_default_threads - 1) {
    g_pool.reset();
  }
}

int DefaultThreads() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  return ResolveThreads(g_default_threads);
}

void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  const int budget = DefaultThreads();
  if (n <= 1 || budget <= 1 || t_in_parallel_region) {
    struct RegionGuard {
      bool saved = t_in_parallel_region;
      RegionGuard() { t_in_parallel_region = true; }
      ~RegionGuard() { t_in_parallel_region = saved; }
    } guard;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex error_mu;
    std::exception_ptr error;
  } shared;

  auto drain = [&shared, n, &fn] {
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t i =
          shared.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || shared.abort.load(std::memory_order_relaxed)) break;
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(shared.error_mu);
          if (shared.error == nullptr) shared.error = std::current_exception();
        }
        shared.abort.store(true, std::memory_order_relaxed);
        break;
      }
    }
    t_in_parallel_region = false;
  };

  ThreadPool& pool = PoolForBudget(budget);
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(pool.num_threads()),
                            n - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) pending.push_back(pool.Submit(drain));
  drain();  // The caller participates.
  for (std::future<void>& f : pending) f.get();
  if (shared.error != nullptr) std::rethrow_exception(shared.error);
}

}  // namespace cyclestream
